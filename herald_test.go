package herald

import (
	"testing"
)

// TestPublicAPISurface exercises the facade end to end: build a model,
// an HDA, a schedule, and a small co-design through exported names
// only.
func TestPublicAPISurface(t *testing.T) {
	// The paper's nine evaluated networks plus the variant extensions
	// (ResNet18/34, VGG16, width-scaled MobileNets).
	if len(ModelNames()) != 15 {
		t.Errorf("zoo size = %d, want 15", len(ModelNames()))
	}
	m, err := ModelByName("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLayers() != 54 {
		t.Errorf("resnet50 layers = %d", m.NumLayers())
	}

	fda, err := NewFDA(Edge, NVDLA)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCostCache(DefaultEnergyTable())
	s, err := NewScheduler(cache, DefaultSchedOptions())
	if err != nil {
		t.Fatal(err)
	}
	w, err := SingleDNN("mobilenetv1", 2)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := s.Schedule(fda, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}

	hda, err := NewHDA("m", Edge, []Partition{
		{Style: NVDLA, PEs: 512, BWGBps: 8},
		{Style: ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := NewFramework()
	e, err := h.EvalHDA(hda, w)
	if err != nil {
		t.Fatal(err)
	}
	if e.EDP <= 0 {
		t.Error("EDP not computed")
	}

	d, err := h.CoDesign(Edge, MaelstromStyles(), w, 8, 4, Exhaustive)
	if err != nil {
		t.Fatal(err)
	}
	if d.Explored != 21 {
		t.Errorf("explored %d, want 21", d.Explored)
	}

	rda, err := NewRDA(Edge)
	if err != nil {
		t.Fatal(err)
	}
	l := &m.Layers[0]
	cost, style := rda.LayerCost(cache, l)
	if cost.Cycles <= 0 || !style.Valid() {
		t.Error("RDA layer cost incomplete")
	}

	if _, err := ParseStyle("nvdla"); err != nil {
		t.Error(err)
	}
	if _, err := ParseClass("mobile"); err != nil {
		t.Error(err)
	}
	if got := len(Classes()); got != 3 {
		t.Errorf("classes = %d", got)
	}
	if got := len(AllStyles()); got != 3 {
		t.Errorf("styles = %d", got)
	}
	if ARVRA().NumInstances() != 10 || ARVRB().NumInstances() != 12 || MLPerf(1).NumInstances() != 5 {
		t.Error("workload construction broken")
	}
}

func TestEstimateLayerFacade(t *testing.T) {
	l := Layer{Op: Conv2D, K: 64, C: 64, Y: 56, X: 56, R: 3, S: 3, Stride: 1, Pad: 1}
	c := EstimateLayer(&l, ShiDiannao, HW{PEs: 256, BWGBps: 32, L2Bytes: 4 << 20}, DefaultEnergyTable())
	if c.Cycles <= 0 || c.EnergyPJ() <= 0 {
		t.Error("cost incomplete")
	}
}
