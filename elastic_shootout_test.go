package herald

// The elastic-vs-migration controller shoot-out: every committed
// scenario replays under both control arms — the PR 5 migration
// controller (re-sweep + full generation migration) and the elastic
// controller (intra-HDA PE reassignment at layer boundaries, escalation
// only on persistent unreachable drift) — and the deterministic replay
// digest adjudicates. Each arm must render byte-identical digests
// across two runs and conserve every request; the flip-flop scenario
// must show the headline result: the elastic controller serves the
// alternating mix with cheap reassignments (zero full migrations)
// while the migration controller's hysteresis holds, at a steady-tenant
// p99 no worse than the migration arm's. The comparison table is
// pinned in testdata/elastic_shootout.golden (regenerate with
// UPDATE_SHOOTOUT=1 go test -run ElasticVsMigrationShootout).

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// shootoutWindow paces both arms identically: the controllers step at
// every 16-entry quiesce boundary.
const shootoutWindow = 16

func shootoutHDAs(t *testing.T) []*HDA {
	t.Helper()
	hda, err := NewHDA("shootout", Edge, []Partition{
		{Style: NVDLA, PEs: 512, BWGBps: 8},
		{Style: ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return []*HDA{hda, hda, hda}
}

// shootoutFleet mirrors the replay drill's fleet: a sweeper over the
// Edge 4/2 space (both arms get one — the migration controller needs
// it to act, the elastic controller only for escalation) and an EWMA
// mix short enough to track the flip-flop alternation.
func shootoutFleet(t *testing.T, cache *CostCache) FleetOptions {
	t.Helper()
	so := DefaultSearchOptions()
	so.Objective = ObjectiveEDP
	so.BestOnly = true
	so.Prune = true
	sw, err := NewSweeper(cache, SearchSpace{
		Class: Edge, Styles: MaelstromStyles(), PEUnits: 4, BWUnits: 2,
	}, so)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultFleetOptions()
	o.Serve.MaxQueue = 4096
	o.Sweeper = sw
	o.MixHalfLife = 64
	return o
}

func TestElasticVsMigrationShootout(t *testing.T) {
	dir := filepath.Join("testdata", "scenarios")
	cache := NewCostCache(DefaultEnergyTable())
	hdas := shootoutHDAs(t)

	migration := func() ReplayOptions {
		return ReplayOptions{
			Fleet:  shootoutFleet(t, cache),
			Window: shootoutWindow,
			// Stock controller defaults: 5% threshold, 2-step
			// confirmation, 3-step cooldown.
			Controller: &RepartitionOptions{},
		}
	}
	elastic := func() ReplayOptions {
		return ReplayOptions{
			Fleet:  shootoutFleet(t, cache),
			Window: shootoutWindow,
			// PEQuantum 256 puts the mobilenet-optimal 768/256 split one
			// reassignment from the even start, mirroring the sweep space
			// the migration arm searches.
			Elastic: &ElasticOptions{PEQuantum: 256},
		}
	}

	// runTwice replays one arm twice and gates on the offline-A/B
	// contract: byte-identical digests (identical decisions included)
	// and conservation.
	runTwice := func(name, arm string, tr *Trace, mk func() ReplayOptions) *ReplayDigest {
		t.Helper()
		d1, err := Replay(context.Background(), cache, hdas, tr, mk())
		if err != nil {
			t.Fatalf("%s/%s: %v", name, arm, err)
		}
		b1, err := d1.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		d2, err := Replay(context.Background(), cache, hdas, tr, mk())
		if err != nil {
			t.Fatalf("%s/%s (second run): %v", name, arm, err)
		}
		b2, err := d2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			lines, _ := DiffDigests(b1, b2)
			if len(lines) > 20 {
				lines = lines[:20]
			}
			t.Fatalf("%s/%s: two replays rendered different digests:\n%s", name, arm, strings.Join(lines, "\n"))
		}
		if !d1.Conservation.Holds {
			t.Fatalf("%s/%s: conservation violated: %+v", name, arm, d1.Conservation)
		}
		return d1
	}

	steadyP99 := func(d *ReplayDigest) int64 {
		for _, ts := range d.Tenants {
			if ts.Tenant == "steady" {
				return ts.P99LatencyCycles
			}
		}
		return 0
	}

	var table strings.Builder
	fmt.Fprintf(&table, "# Elastic vs migration controller over the committed scenario corpus\n")
	fmt.Fprintf(&table, "# window=%d; both arms byte-deterministic across two runs, conservation holds\n", shootoutWindow)
	fmt.Fprintf(&table, "%-12s %-10s %9s %11s %10s %8s %11s\n",
		"scenario", "arm", "completed", "migrations", "reassigns", "preempt", "steady-p99")
	for _, name := range corpusSpecs(t) {
		f, err := os.Open(filepath.Join(dir, name+".trace.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := ReadTrace(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}

		mig := runTwice(name, "migration", tr, migration)
		ela := runTwice(name, "elastic", tr, elastic)
		fmt.Fprintf(&table, "%-12s %-10s %9d %11d %10d %8d %11d\n", name, "migration",
			mig.Counters.Completed, mig.Counters.Migrations, mig.Counters.PEReassigns,
			mig.Counters.Preemptions, steadyP99(mig))
		fmt.Fprintf(&table, "%-12s %-10s %9d %11d %10d %8d %11d\n", name, "elastic",
			ela.Counters.Completed, ela.Counters.Migrations, ela.Counters.PEReassigns,
			ela.Counters.Preemptions, steadyP99(ela))

		if ela.Counters.Migrations != 0 {
			t.Errorf("%s: elastic arm escalated to %d migrations", name, ela.Counters.Migrations)
		}
		if name == "flipflop" {
			// The headline acceptance: the alternating mix is served by
			// cheap in-place reassignments while the migration
			// controller's hysteresis holds the fleet still — at a
			// steady-tenant p99 no worse than the migration arm's.
			if ela.Counters.PEReassigns < 1 {
				t.Errorf("flipflop: elastic controller never reassigned (digest %+v)", ela.Counters)
			}
			if mig.Counters.Migrations != 0 {
				t.Errorf("flipflop: migration controller migrated %d times (expected hysteresis hold)", mig.Counters.Migrations)
			}
			if ep, mp := steadyP99(ela), steadyP99(mig); ep <= 0 || ep > mp {
				t.Errorf("flipflop: elastic steady p99 %d worse than migration arm's %d", ep, mp)
			}
		}
	}

	goldenPath := filepath.Join("testdata", "elastic_shootout.golden")
	if os.Getenv("UPDATE_SHOOTOUT") != "" {
		if err := os.WriteFile(goldenPath, []byte(table.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_SHOOTOUT=1)", err)
	}
	if got := table.String(); got != string(want) {
		t.Errorf("comparison table drifted from %s (regenerate with UPDATE_SHOOTOUT=1):\ngot:\n%swant:\n%s",
			goldenPath, got, want)
	}
}
