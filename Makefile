GO ?= go

.PHONY: build test race bench bench-json bench-gate vet heraldvet smoke chaos replay doclint staticcheck vulncheck

build:
	$(GO) build ./...

# vet is the tier-1 static gate: the stock toolchain vet plus
# heraldvet, the repo's own analyzer suite (determinism, lock
# discipline, JSON zero-value contracts — see internal/analysis).
vet:
	$(GO) vet ./...
	$(MAKE) heraldvet

# heraldvet runs the four repo-specific analyzers (detmap, wallclock,
# lockguard, jsonzero) over the whole module. Dependency-free: built
# on the standard library only, so it runs offline.
heraldvet:
	$(GO) run ./cmd/heraldvet ./...

test:
	$(GO) test ./...

# race runs the concurrency-sensitive packages under the race detector
# (the sharded cost cache, the scheduler, the DSE worker pool, the
# serving engine, the fleet dispatcher).
race:
	$(GO) test -race ./internal/maestro ./internal/sched ./internal/dse ./internal/serve ./internal/fleet

# smoke builds and runs the end-to-end examples that exercise the
# serving stack (fast, deterministic; CI runs this per PR): fleet
# dispatch, the repartitioning controller's live migration, and
# layer-fused segment serving.
smoke:
	$(GO) run ./examples/fleet
	$(GO) run ./examples/repartition
	$(GO) run ./examples/segments
	$(MAKE) chaos
	$(MAKE) replay

# chaos drives a replicated fleet through a seeded fault schedule
# (stall, admission-failure burst, crash with queued requests,
# recovery) and exits non-zero unless conservation holds, survivor p99
# stays bounded, and the fault-handling decision log replays
# bit-identically. CI gates on it per PR.
chaos:
	$(GO) run ./examples/chaos

# replay drills the committed adversarial-scenario corpus
# (testdata/scenarios) through the deterministic replay harness: the
# corpus must regenerate byte-identically, every replay (fault-free,
# faulted, repartitioning) must render byte-identical digests twice
# with conservation intact, and the steady tenant's p99 must stay
# inside a bounded envelope of the smooth control. Non-zero exit on
# any violation; CI gates on it per PR.
replay:
	$(GO) run ./examples/replay

# staticcheck / vulncheck fetch their tools at run time (CI has
# network; local offline runs can skip them — make vet covers the
# tier-1 gate). Both versions are pinned so a tool release cannot
# change what CI enforces mid-flight.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1 ./...

vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@v1.1.4 ./...

# doclint fails on broken intra-repo markdown links (file + anchor)
# and on exported identifiers in the serving-tier packages missing
# doc comments. CI runs this per PR.
doclint:
	$(GO) run ./cmd/doclint -md . -pkgs internal/fleet,internal/serve,internal/dse,internal/sched,internal/analysis,internal/capture,internal/scenario,internal/replay,cmd/heraldplay

# bench runs the full benchmark suite once per benchmark (short form:
# the perf trajectory gate wants per-PR numbers, not nanosecond-grade
# stability) and writes the machine-readable BENCH_PR4.json.
BENCH_OUT ?= BENCH_PR6.json
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . | tee bench.out
	$(GO) run ./cmd/benchjson -o $(BENCH_OUT) < bench.out
	@rm -f bench.out

# bench-gate fails on >25% ns/op regressions of the DSE / figure-sweep
# benchmarks against the previous PR's committed baseline. Only the
# sweep-scale benchmarks (tens of ms and up) are gated: single-
# iteration runs of the microsecond-scale figure artifacts swing well
# past any sane threshold on machine noise alone.
BENCH_BASE ?= BENCH_PR4.json
bench-gate:
	$(GO) run ./cmd/benchgate -old $(BENCH_BASE) -new $(BENCH_OUT) \
		-match 'BenchmarkDSE|BenchmarkFigure6|BenchmarkFigure11|BenchmarkFigure13|BenchmarkResweep|BenchmarkFusedServing|BenchmarkReplayThroughput|BenchmarkElasticReassign' -max-pct 25
