GO ?= go

.PHONY: build test race bench bench-json bench-gate vet smoke chaos doclint staticcheck vulncheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the concurrency-sensitive packages under the race detector
# (the sharded cost cache, the scheduler, the DSE worker pool, the
# serving engine, the fleet dispatcher).
race:
	$(GO) test -race ./internal/maestro ./internal/sched ./internal/dse ./internal/serve ./internal/fleet

# smoke builds and runs the end-to-end examples that exercise the
# serving stack (fast, deterministic; CI runs this per PR): fleet
# dispatch, the repartitioning controller's live migration, and
# layer-fused segment serving.
smoke:
	$(GO) run ./examples/fleet
	$(GO) run ./examples/repartition
	$(GO) run ./examples/segments
	$(MAKE) chaos

# chaos drives a replicated fleet through a seeded fault schedule
# (stall, admission-failure burst, crash with queued requests,
# recovery) and exits non-zero unless conservation holds, survivor p99
# stays bounded, and the fault-handling decision log replays
# bit-identically. CI gates on it per PR.
chaos:
	$(GO) run ./examples/chaos

# staticcheck / vulncheck fetch their tools at run time (CI has
# network; local offline runs can skip them — go vet covers the
# tier-1 gate).
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1 ./...

vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

# doclint fails on broken intra-repo markdown links (file + anchor)
# and on exported identifiers in the serving-tier packages missing
# doc comments. CI runs this per PR.
doclint:
	$(GO) run ./cmd/doclint -md . -pkgs internal/fleet,internal/serve,internal/dse,internal/sched

# bench runs the full benchmark suite once per benchmark (short form:
# the perf trajectory gate wants per-PR numbers, not nanosecond-grade
# stability) and writes the machine-readable BENCH_PR4.json.
BENCH_OUT ?= BENCH_PR6.json
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . | tee bench.out
	$(GO) run ./cmd/benchjson -o $(BENCH_OUT) < bench.out
	@rm -f bench.out

# bench-gate fails on >25% ns/op regressions of the DSE / figure-sweep
# benchmarks against the previous PR's committed baseline. Only the
# sweep-scale benchmarks (tens of ms and up) are gated: single-
# iteration runs of the microsecond-scale figure artifacts swing well
# past any sane threshold on machine noise alone.
BENCH_BASE ?= BENCH_PR4.json
bench-gate:
	$(GO) run ./cmd/benchgate -old $(BENCH_BASE) -new $(BENCH_OUT) \
		-match 'BenchmarkDSE|BenchmarkFigure6|BenchmarkFigure11|BenchmarkFigure13|BenchmarkResweep|BenchmarkFusedServing' -max-pct 25
