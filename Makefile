GO ?= go

.PHONY: build test race bench bench-json vet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the concurrency-sensitive packages under the race detector
# (the sharded cost cache, the scheduler, the DSE worker pool, the
# serving engine).
race:
	$(GO) test -race ./internal/maestro ./internal/sched ./internal/dse ./internal/serve

# bench runs the full benchmark suite once per benchmark (short form:
# the perf trajectory gate wants per-PR numbers, not nanosecond-grade
# stability) and writes the machine-readable BENCH_PR2.json.
BENCH_OUT ?= BENCH_PR2.json
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . | tee bench.out
	$(GO) run ./cmd/benchjson -o $(BENCH_OUT) < bench.out
	@rm -f bench.out
