package herald

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation section. Each benchmark regenerates its
// artifact end to end (workload construction, cost modeling, DSE,
// scheduling) and reports domain-specific metrics alongside ns/op.
// Run with:
//
//	go test -bench=. -benchmem
//
// The underlying drivers print the full paper-vs-measured tables via
// cmd/experiments; the benchmarks here measure the cost of regenerating
// each artifact and record headline metrics with b.ReportMetric.

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

// quickCfg builds a fresh coarse-granularity configuration (benchmarks
// measure regeneration cost; a shared memo would hide it).
func quickCfg() *experiments.Config { return experiments.NewQuick() }

func BenchmarkTableI_ModelZoo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.MaxSpreadFactor, "ratio-spread")
		}
	}
}

func BenchmarkFigure2_FDAStyleEDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		r, err := cfg.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if !r.NVDLABestOnResNet || !r.NVDLAWorstOnUNet || !r.ShiBestOnUNet {
			b.Fatal("Figure 2 orderings regressed")
		}
	}
}

func BenchmarkFigure5_LayerPreference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		r, err := cfg.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if !r.UtilizationsMatch || !r.PreferenceSigns {
			b.Fatal("Figure 5 claims regressed")
		}
	}
}

func BenchmarkFigure6_PEPartitionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		r, err := cfg.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.SpreadFactor, "edp-spread")
		}
	}
}

func BenchmarkFigure11_DesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		r, err := cfg.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		// At the benchmark's coarse DSE granularity a scenario can slip
		// off the optimum; the full-granularity run (cmd/experiments)
		// achieves 9/9.
		if r.HDABeatsFDACount < len(r.Scenarios)-1 {
			b.Fatalf("HDA beats FDA in only %d/%d scenarios", r.HDABeatsFDACount, len(r.Scenarios))
		}
		if i == 0 {
			b.ReportMetric(float64(r.HDABeatsFDACount), "hda-beats-fda")
			b.ReportMetric(float64(r.BestHDAOnPareto), "hda-on-pareto")
			b.ReportMetric(float64(r.MaelstromBestCount), "maelstrom-best")
		}
	}
}

func BenchmarkTableV_MaelstromPartitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		r, err := cfg.TableV()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.NonTrivialCount), "nontrivial-partitions")
			b.ReportMetric(100*r.CloudNVDLAPEShare, "cloud-nvdla-pe-pct")
		}
	}
}

func BenchmarkFigure12_SingleDNN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		r, err := cfg.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(r.Cases) == 2 {
			b.ReportMetric(r.Cases[0].MaelstromEDPGainPct, "unet-edp-gain-pct")
			b.ReportMetric(r.Cases[1].MaelstromEDPGainPct, "resnet-edp-gain-pct")
		}
	}
}

func BenchmarkTableVI_BatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		r, err := cfg.TableVI()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 6 {
			b.Fatal("incomplete Table VI")
		}
	}
}

func BenchmarkFigure13_WorkloadChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		r, err := cfg.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.AvgMismatchEnergyPct, "mismatch-energy-pct")
		}
	}
}

func BenchmarkTableVII_SchedulingTime(b *testing.B) {
	cfg := quickCfg() // designs memoized; the bench then times scheduling
	for i := 0; i < b.N; i++ {
		r, err := cfg.TableVII()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.AvgMsPerLayer, "ms/layer")
		}
	}
}

func BenchmarkSchedulerAblation(b *testing.B) {
	cfg := quickCfg()
	for i := 0; i < b.N; i++ {
		r, err := cfg.SchedulerAblation()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.AvgEDPReductionPct, "edp-reduction-pct")
		}
	}
}

func BenchmarkHeadlineSummary(b *testing.B) {
	cfg := quickCfg()
	for i := 0; i < b.N; i++ {
		r, err := cfg.Headline()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.VsFDALatencyPct, "lat-vs-fda-pct")
			b.ReportMetric(r.EDPImprovementPct, "edp-vs-fda-pct")
		}
	}
}

// BenchmarkAblations runs the five design-choice ablation studies
// (load-balance factor, look-ahead depth, ordering, context penalty,
// search strategy).
func BenchmarkAblations(b *testing.B) {
	cfg := quickCfg()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AblationsReport(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostModel measures the raw analytical cost model: one layer
// estimate without caching (the innermost primitive every experiment
// rests on).
func BenchmarkCostModel(b *testing.B) {
	l := Layer{Op: Conv2D, K: 512, C: 512, Y: 14, X: 14, R: 3, S: 3, Stride: 1, Pad: 1}
	hw := HW{PEs: 4096, BWGBps: 64, L2Bytes: 8 << 20}
	et := DefaultEnergyTable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := EstimateLayer(&l, NVDLA, hw, et)
		if c.Cycles <= 0 {
			b.Fatal("bad cost")
		}
	}
}

// BenchmarkScheduler measures one full Herald scheduling pass of the
// AR/VR-B workload (438 layers) on a 2-way edge HDA with a warm cost
// cache — the Table VII primitive.
func BenchmarkScheduler(b *testing.B) {
	cache := NewCostCache(DefaultEnergyTable())
	hda, err := NewHDA("bench", Edge, []Partition{
		{Style: NVDLA, PEs: 128, BWGBps: 4},
		{Style: ShiDiannao, PEs: 896, BWGBps: 12},
	})
	if err != nil {
		b.Fatal(err)
	}
	w := ARVRB()
	s, err := NewScheduler(cache, DefaultSchedOptions())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Schedule(hda, w); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch, err := s.Schedule(hda, w)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(sch.MakespanCycles), "makespan-cycles")
		}
	}
}

// BenchmarkServingThroughput measures the online serving engine: 100
// interleaved requests from two tenants admitted through the full
// submit → incremental-schedule → stats pipeline on a fixed edge HDA
// with a warm cost cache. Reports both wall-clock admission
// throughput (req/s of the engine itself) and simulated serving
// throughput (req/s of the modeled accelerator at 1 GHz).
func BenchmarkServingThroughput(b *testing.B) {
	cache := NewCostCache(DefaultEnergyTable())
	hda, err := NewHDA("bench-serve", Edge, []Partition{
		{Style: NVDLA, PEs: 128, BWGBps: 4},
		{Style: ShiDiannao, PEs: 896, BWGBps: 12},
	})
	if err != nil {
		b.Fatal(err)
	}
	const perTenant = 50
	run := func() ServingStats {
		engine, err := NewServingEngine(cache, hda, DefaultServingOptions())
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		for _, tenant := range []string{"arvr", "mlperf"} {
			model := map[string]string{"arvr": "brq-handpose", "mlperf": "mobilenetv1"}[tenant]
			wg.Add(1)
			go func(tenant, model string) {
				defer wg.Done()
				for i := 0; i < perTenant; i++ {
					ticket, err := engine.Submit(InferenceRequest{
						Tenant:       tenant,
						Model:        model,
						ArrivalCycle: int64(i) * 1_000_000,
					})
					if err != nil {
						b.Error(err)
						return
					}
					if _, err := ticket.Wait(context.Background()); err != nil {
						b.Error(err)
						return
					}
				}
			}(tenant, model)
		}
		wg.Wait()
		stats, err := engine.Drain(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if stats.Completed != 2*perTenant {
			b.Fatalf("completed %d of %d", stats.Completed, 2*perTenant)
		}
		return stats
	}
	run() // warm the cost cache outside the timed region
	b.ResetTimer()
	// wall-req/s must come from a per-iteration timer: dividing one
	// iteration's request count by b.Elapsed() across all iterations
	// shrinks the metric as b.N grows.
	var served int64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		iterStart := time.Now()
		stats := run()
		wall += time.Since(iterStart)
		served += stats.Completed
		if i == 0 {
			b.ReportMetric(stats.SimThroughputRPS, "sim-req/s")
		}
	}
	b.ReportMetric(float64(served)/wall.Seconds(), "wall-req/s")
}

// BenchmarkFleetThroughput measures the multi-HDA serving tier: a
// 4-replica cost-aware fleet serving a skewed heavy/light request mix
// (resnet50 and mobilenetv1 alternating 1:1) through the full
// dispatch → submit → incremental-schedule → aggregate-stats
// pipeline, every replica sharing one cost cache. Before the timed
// loop it runs the single-engine baseline and the round-robin policy
// once and reports the acceptance metrics:
//
//	scaling-x             4-replica / 1-engine simulated throughput
//	rr-p99-cycles         heavy-tenant p99 under round-robin
//	costaware-p99-cycles  heavy-tenant p99 under cost-aware ETA routing
//
// The timed region reports the fleet's wall-clock admission rate
// (wall-req/s) and simulated serving throughput (sim-req/s).
func BenchmarkFleetThroughput(b *testing.B) {
	cache := NewCostCache(DefaultEnergyTable())
	hda, err := NewHDA("bench-fleet", Edge, []Partition{
		{Style: NVDLA, PEs: 128, BWGBps: 4},
		{Style: ShiDiannao, PEs: 896, BWGBps: 12},
	})
	if err != nil {
		b.Fatal(err)
	}
	const pairs = 24
	run := func(replicas int, policy FleetPolicy) FleetStats {
		opts := DefaultFleetOptions()
		opts.Policy = policy
		f, err := NewReplicatedFleet(cache, hda, replicas, opts)
		if err != nil {
			b.Fatal(err)
		}
		tickets := make([]*FleetTicket, 0, 2*pairs)
		for i := 0; i < pairs; i++ {
			for _, rm := range [][2]string{{"heavy", "resnet50"}, {"light", "mobilenetv1"}} {
				t, err := f.Submit(InferenceRequest{Tenant: rm[0], Model: rm[1], ArrivalCycle: 0})
				if err != nil {
					b.Fatal(err)
				}
				tickets = append(tickets, t)
			}
		}
		for _, t := range tickets {
			if _, err := t.Wait(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		stats, err := f.Drain(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if stats.Completed != 2*pairs {
			b.Fatalf("completed %d of %d", stats.Completed, 2*pairs)
		}
		return stats
	}
	heavyP99 := func(st FleetStats) float64 {
		for _, ts := range st.Tenants {
			if ts.Tenant == "heavy" {
				return float64(ts.P99LatencyCycles)
			}
		}
		b.Fatal("heavy tenant missing")
		return 0
	}

	// Acceptance runs (also warm the shared cost cache); reported
	// after ResetTimer, which clears earlier metrics.
	single := run(1, RouteCostAware)
	quad := run(4, RouteCostAware)
	rr := run(4, RouteRoundRobin)

	b.ResetTimer()
	b.ReportMetric(quad.SimThroughputRPS/single.SimThroughputRPS, "scaling-x")
	b.ReportMetric(heavyP99(rr), "rr-p99-cycles")
	b.ReportMetric(heavyP99(quad), "costaware-p99-cycles")
	var served int64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		iterStart := time.Now()
		stats := run(4, RouteCostAware)
		wall += time.Since(iterStart)
		served += stats.Completed
		if i == 0 {
			b.ReportMetric(stats.SimThroughputRPS, "sim-req/s")
		}
	}
	b.ReportMetric(float64(served)/wall.Seconds(), "wall-req/s")
}

// BenchmarkDSE measures one exhaustive 2-way partition search (the
// Figure 6 / Table V primitive) at coarse granularity.
func BenchmarkDSE(b *testing.B) {
	cache := NewCostCache(DefaultEnergyTable())
	w := MLPerf(1)
	sp := SearchSpace{Class: Edge, Styles: MaelstromStyles(), PEUnits: 8, BWUnits: 4}
	for i := 0; i < b.N; i++ {
		r, err := Search(cache, sp, w, DefaultSearchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(r.Points)), "design-points")
		}
	}
}

// BenchmarkDSEPruned is BenchmarkDSE in best-only pruned mode: the
// design cloud is streamed instead of retained and partitions whose
// objective lower bound cannot win are never scheduled. The Best point
// is bit-identical to BenchmarkDSE's (the equivalence tests pin it).
func BenchmarkDSEPruned(b *testing.B) {
	cache := NewCostCache(DefaultEnergyTable())
	w := MLPerf(1)
	sp := SearchSpace{Class: Edge, Styles: MaelstromStyles(), PEUnits: 8, BWUnits: 4}
	opts := DefaultSearchOptions()
	opts.BestOnly = true
	opts.Prune = true
	for i := 0; i < b.N; i++ {
		r, err := Search(cache, sp, w, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.Explored), "evaluated-points")
			b.ReportMetric(float64(r.Pruned), "pruned-points")
		}
	}
}

// BenchmarkResweep measures the online repartitioning probe: repeated
// pruned best-only sweeps of the Figure 6-scale space on ONE reusable
// Sweeper (warm schedulers, HDAs, cost columns and bound memos) — the
// cost a serving fleet pays each time fleet.Resweep re-searches the
// partition space for the observed tenant mix.
func BenchmarkResweep(b *testing.B) {
	cache := NewCostCache(DefaultEnergyTable())
	sp := SearchSpace{Class: Edge, Styles: MaelstromStyles(), PEUnits: 8, BWUnits: 4}
	opts := DefaultSearchOptions()
	opts.BestOnly = true
	opts.Prune = true
	sw, err := NewSweeper(cache, sp, opts)
	if err != nil {
		b.Fatal(err)
	}
	w := MLPerf(1)
	if _, err := sw.Sweep(w); err != nil { // warm the handle
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sw.Sweep(w)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.Explored), "evaluated-points")
			b.ReportMetric(float64(r.Pruned), "pruned-points")
		}
	}
}

// BenchmarkFusedServing measures layer-fused segment serving against
// whole-request dispatch on a dataflow-specialized fleet: one NVDLA
// FDA replica plus one Shi-diannao FDA replica serving a back-to-back
// AR/VR burst (mobilenetv2 + mobilenetv1 pairs). Unfused, every
// request runs end to end on one dataflow; fused, each request's
// segment chain routes every layer range to the replica whose
// dataflow prefers it and consecutive requests pipeline across the
// fleet. Before the timed loop it runs both modes once and reports
// the acceptance metric the perf gate tracks:
//
//	fused-speedup-x   unfused / fused burst makespan (>= 1.15 pinned
//	                  by TestFusedServingImprovement)
//
// The timed region reports the fused fleet's wall-clock admission
// rate (wall-req/s) and the simulated burst makespan (sim-ms).
func BenchmarkFusedServing(b *testing.B) {
	cache := NewCostCache(DefaultEnergyTable())
	hdas, plans := fusedFleetSetup(b, cache)
	const pairs = 16

	// Acceptance runs (also warm the shared cost cache).
	unfusedSpan, _ := driveFusedBurst(b, cache, hdas, nil, pairs)
	fusedSpan, _ := driveFusedBurst(b, cache, hdas, plans, pairs)

	b.ResetTimer()
	b.ReportMetric(float64(unfusedSpan)/float64(fusedSpan), "fused-speedup-x")
	b.ReportMetric(float64(fusedSpan)/1e6, "sim-ms")
	var served int64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		iterStart := time.Now()
		_, st := driveFusedBurst(b, cache, hdas, plans, pairs)
		wall += time.Since(iterStart)
		served += st.Segments.FusedCompleted
	}
	b.ReportMetric(float64(served)/wall.Seconds(), "wall-req/s")
}

// BenchmarkReplayThroughput measures the deterministic replay harness
// end to end: the committed zipf scenario trace (96 hostile requests +
// 32 steady probes) replayed against a 2-replica cost-aware fleet in
// 16-entry quiesce windows. One iteration is one full replay — fleet
// construction, windowed admission, drain, digest rendering — so the
// metric tracks the offline-A/B turnaround an operator actually waits
// for. Reports wall-clock replayed requests per second.
func BenchmarkReplayThroughput(b *testing.B) {
	cache := NewCostCache(DefaultEnergyTable())
	hda, err := NewHDA("bench-replay", Edge, []Partition{
		{Style: NVDLA, PEs: 512, BWGBps: 8},
		{Style: ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		b.Fatal(err)
	}
	hdas := []*HDA{hda, hda}
	f, err := os.Open(filepath.Join("testdata", "scenarios", "zipf.trace.jsonl"))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := ReadTrace(f)
	f.Close()
	if err != nil {
		b.Fatal(err)
	}
	run := func() *ReplayDigest {
		o := ReplayOptions{Fleet: DefaultFleetOptions(), Window: 16}
		o.Fleet.Serve.MaxQueue = 4096
		d, err := Replay(context.Background(), cache, hdas, tr, o)
		if err != nil {
			b.Fatal(err)
		}
		if !d.Conservation.Holds {
			b.Fatalf("conservation violated: %+v", d.Conservation)
		}
		return d
	}
	run() // warm the shared cost cache
	b.ResetTimer()
	var replayed int64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		iterStart := time.Now()
		d := run()
		wall += time.Since(iterStart)
		replayed += d.Counters.Completed
	}
	b.ReportMetric(float64(replayed)/wall.Seconds(), "wall-req/s")
}

// BenchmarkElasticReassign measures one intra-HDA PE reassignment on a
// live serving engine — the cost the elastic controller pays per
// REASSIGNED step, and the number to weigh against a full migration
// (generation spawn + drain). The engine carries a committed schedule
// of mobilenet work; each iteration toggles it between the even
// 512/512 split and the skewed 768/256 split, which swaps the HDA at
// the layer boundary, re-interns the cost table for the new slices and
// re-resolves every admitted instance's cost rows.
func BenchmarkElasticReassign(b *testing.B) {
	cache := NewCostCache(DefaultEnergyTable())
	even := []Partition{
		{Style: NVDLA, PEs: 512, BWGBps: 8},
		{Style: ShiDiannao, PEs: 512, BWGBps: 8},
	}
	skew := []Partition{
		{Style: NVDLA, PEs: 768, BWGBps: 12},
		{Style: ShiDiannao, PEs: 256, BWGBps: 4},
	}
	hda, err := NewHDA("bench-elastic", Edge, even)
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultServingOptions()
	opts.Elastic = true
	engine, err := NewServingEngine(cache, hda, opts)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 16; i++ {
		ticket, err := engine.Submit(InferenceRequest{
			Tenant: "bench", Model: "mobilenetv1", ArrivalCycle: 0,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ticket.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
	// Warm both partitions' interned cost tables: the steady-state
	// controller cost is the swap + row re-resolution, not the first
	// cold cost-model evaluation.
	if err := engine.Reassign(skew); err != nil {
		b.Fatal(err)
	}
	if err := engine.Reassign(even); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := even
		if i%2 == 0 {
			parts = skew
		}
		if err := engine.Reassign(parts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := engine.Drain(ctx); err != nil {
		b.Fatal(err)
	}
}
