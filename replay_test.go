package herald

// Facade-level tests of the capture/replay/scenario stack: the
// committed corpus regenerates byte for byte, and fault plans compose
// with scenario traces deterministically (the offline incident-replay
// contract CI's make replay drill also gates on).

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// corpusSpecs returns the committed scenario names (spec files without
// the generated .trace.jsonl companions).
func corpusSpecs(t *testing.T) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no committed scenario specs under testdata/scenarios")
	}
	names := make([]string, 0, len(matches))
	for _, m := range matches {
		names = append(names, strings.TrimSuffix(filepath.Base(m), ".json"))
	}
	return names
}

// TestScenarioCorpusReproducible: regenerating every committed spec
// renders the committed trace byte for byte, so the corpus can never
// silently drift from the generator (or vice versa).
func TestScenarioCorpusReproducible(t *testing.T) {
	dir := filepath.Join("testdata", "scenarios")
	for _, name := range corpusSpecs(t) {
		sf, err := os.Open(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		spec, err := ParseScenarioSpec(sf)
		sf.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		entries, err := GenerateScenario(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var got strings.Builder
		if err := WriteTrace(&got, spec.Note(), entries); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := os.ReadFile(filepath.Join(dir, name+".trace.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != string(want) {
			t.Errorf("%s: regenerated trace differs from the committed %s.trace.jsonl (regenerate with heraldplay -gen and commit, or fix the generator)", name, name)
		}
	}
}

// TestFaultPlanScenarioComposition: a parsed fault plan composed with
// a generated scenario trace replays to DeepEqual digests — decisions,
// counters, tenants and all — and byte-identical canonical renderings,
// twice. This is the satellite contract: ParseFaultPlan × scenario ×
// replay is closed under determinism.
func TestFaultPlanScenarioComposition(t *testing.T) {
	entries, err := GenerateScenario(ScenarioSpec{
		Name: "compose", Kind: ScenarioFlash, Seed: 21, Requests: 48, Tenants: 4,
		SLACycles: 60_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{Note: "compose", Entries: entries}
	plan, err := ParseFaultPlan("2000000:1:stall:3,5000000:1:crash,9000000:1:recover")
	if err != nil {
		t.Fatal(err)
	}

	cache := NewCostCache(DefaultEnergyTable())
	hda, err := NewHDA("compose", Edge, []Partition{
		{Style: NVDLA, PEs: 512, BWGBps: 8},
		{Style: ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*ReplayDigest, []byte) {
		o := ReplayOptions{Fleet: DefaultFleetOptions(), Window: 12}
		o.Fleet.Faults = plan
		d, err := Replay(context.Background(), cache, []*HDA{hda, hda}, tr, o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		return d, b
	}
	d1, b1 := run()
	d2, b2 := run()
	if !bytes.Equal(b1, b2) {
		lines, _ := DiffDigests(b1, b2)
		t.Fatalf("composed replay not byte-deterministic:\n%s", strings.Join(lines, "\n"))
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("composed replay digests not DeepEqual")
	}
	if !d1.Conservation.Holds {
		t.Fatalf("conservation violated: %+v", d1.Conservation)
	}
	if len(d1.FaultDecisions) == 0 {
		t.Fatal("fault plan fired no decisions")
	}
	if d1.Counters.Crashes != 1 || d1.Counters.Recoveries != 1 {
		t.Fatalf("crash/recover not applied: %+v", d1.Counters)
	}
}

// TestExportedFaultPlanReplays: the full incident loop through the
// facade — run with an injected plan, export the decision log back
// into a plan (ExportFaultPlan), and verify the exported plan replays
// to the same injectable schedule.
func TestExportedFaultPlanReplays(t *testing.T) {
	entries, err := GenerateScenario(ScenarioSpec{
		Name: "incident", Kind: ScenarioZipf, Seed: 5, Requests: 32, Tenants: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{Note: "incident", Entries: entries}
	plan, err := ParseFaultPlan("3000000:0:stall:4,6000000:0:crash,9000000:0:recover")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCostCache(DefaultEnergyTable())
	hda, err := NewHDA("incident", Edge, []Partition{
		{Style: NVDLA, PEs: 512, BWGBps: 8},
		{Style: ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	o := ReplayOptions{Fleet: DefaultFleetOptions()}
	o.Fleet.Faults = plan
	d, err := Replay(context.Background(), cache, []*HDA{hda, hda}, tr, o)
	if err != nil {
		t.Fatal(err)
	}
	exported, err := ExportFaultPlan(d.FaultDecisions)
	if err != nil {
		t.Fatal(err)
	}
	if exported == nil {
		t.Fatal("decision log exported no injectable events")
	}
	if got, want := FormatFaultPlan(exported), FormatFaultPlan(plan); got != want {
		t.Fatalf("exported plan %q, want the injected %q", got, want)
	}
}
