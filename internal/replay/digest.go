package replay

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/fleet"
	"repro/internal/serve"
)

// DigestVersion is the digest-format version this package writes.
const DigestVersion = 1

// Digest is the deterministic result of replaying one trace against
// one candidate configuration: counters, conservation, per-tenant
// latency percentiles, the fault-handling decision log, and any
// repartitioning decisions. Two runs of the same trace + config render
// byte-identical digests (Canonical), so configs A/B by diffing
// digests and CI asserts reproducibility by comparing bytes.
type Digest struct {
	// Version tags the digest format.
	Version int `json:"herald_digest"`
	// Trace identifies the replayed input.
	Trace TraceInfo `json:"trace"`
	// Setup summarizes the candidate configuration.
	Setup Setup `json:"setup"`
	// Counters is the deterministic slice of the final fleet
	// statistics (wall-clock fields like uptime are excluded).
	Counters Counters `json:"counters"`
	// Conservation restates the invariant the drill gates on.
	Conservation Conservation `json:"conservation"`
	// Rejects counts submissions the dispatch layer refused, keyed by
	// reason (shed, queue-full, draining, no-replicas, client).
	Rejects map[string]int64 `json:"rejects,omitempty"`
	// Tenants aggregates each tenant across every replica, sorted by
	// tenant name; percentiles are over the merged sample windows.
	Tenants []serve.TenantStats `json:"tenants"`
	// FaultDecisions is the fleet's fault-handling decision log.
	FaultDecisions []fleet.FaultDecision `json:"fault_decisions,omitempty"`
	// Repartitions is every controller step taken during the replay.
	Repartitions []fleet.Decision `json:"repartitions,omitempty"`
	// ElasticDecisions is every elastic-controller step taken during
	// the replay (the intra-HDA A/B arm; see Options.Elastic).
	ElasticDecisions []fleet.ElasticDecision `json:"elastic_decisions,omitempty"`
}

// TraceInfo identifies the replayed trace.
type TraceInfo struct {
	// Note is the trace header's free-form capture note.
	Note string `json:"note,omitempty"`
	// Entries counts trace entries; FirstCycle/LastCycle span the
	// arrival horizon.
	Entries    int   `json:"entries"`
	FirstCycle int64 `json:"first_cycle"`
	LastCycle  int64 `json:"last_cycle"`
}

// Setup summarizes the replayed configuration.
type Setup struct {
	// Policy and Replicas mirror the fleet configuration; HDAs names
	// each replica's substrate in replica order.
	Policy   string   `json:"policy"`
	Replicas int      `json:"replicas"`
	HDAs     []string `json:"hdas"`
	// FusedModels lists engine-fused models (sorted).
	FusedModels []string `json:"fused_models,omitempty"`
	// FaultEvents counts injected fault-plan events.
	FaultEvents int `json:"fault_events,omitempty"` //herald:jsonzero 0 means a fault-free replay; absent means the same
	// ShedSLAFactor echoes the shedding knob.
	ShedSLAFactor float64 `json:"shed_sla_factor,omitempty"` //herald:jsonzero 0 means shedding off; absent means the same
	// Window is the quiesce-window size in accepted submissions
	// (0 = the whole trace in one window).
	Window int `json:"window,omitempty"` //herald:jsonzero 0 means one window; absent means the same
	// Repartition reports whether a controller stepped at window
	// boundaries.
	Repartition bool `json:"repartition,omitempty"` //herald:jsonzero false means no controller; absent means the same
	// Elastic reports whether an elastic (intra-HDA) controller
	// stepped at window boundaries.
	Elastic bool `json:"elastic,omitempty"` //herald:jsonzero false means no elastic controller; absent means the same
}

// Counters is the deterministic slice of fleet.Stats. Zero values are
// all meaningful (a clean run has 0 failures), so no field carries
// omitempty.
type Counters struct {
	Submitted            int64              `json:"submitted"`
	Completed            int64              `json:"completed"`
	Failed               int64              `json:"failed"`
	Rejected             int64              `json:"rejected"`
	Pending              int64              `json:"pending"`
	Shed                 int64              `json:"shed"`
	Failovers            int64              `json:"failovers"`
	Lost                 int64              `json:"lost"`
	Crashes              int64              `json:"crashes"`
	Recoveries           int64              `json:"recoveries"`
	BreakerTrips         int64              `json:"breaker_trips"`
	Migrations           int64              `json:"migrations"`
	Preemptions          int64              `json:"preemptions"`
	Resumes              int64              `json:"resumes"`
	PEReassigns          int64              `json:"pe_reassigns"`
	Generation           int                `json:"generation"`
	MakespanCycles       int64              `json:"makespan_cycles"`
	CrossReplicaHandoffs int64              `json:"cross_replica_handoffs"`
	Segments             serve.SegmentStats `json:"segments"`
}

// Conservation restates the serving invariant: every accepted request
// is completed or terminally failed, nothing pending after drain.
type Conservation struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Pending   int64 `json:"pending"`
	// Holds is Submitted == Completed + Failed && Pending == 0.
	Holds bool `json:"holds"`
}

// Canonical renders the digest's canonical byte form: indented JSON
// with sorted map keys (encoding/json sorts them) and a trailing
// newline. Byte-comparing two Canonical renderings is the digest
// equality the drill and CI gate on.
func (d *Digest) Canonical() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	return append(b, '\n'), nil
}

// Hash returns the SHA-256 of the canonical rendering, hex-encoded —
// a compact identity for logs and diff headers.
func (d *Digest) Hash() (string, error) {
	b, err := d.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Diff compares two digests structurally and returns one line per
// differing leaf ("path: a -> b"), empty when identical. It round-
// trips both through JSON so the comparison sees exactly what
// Canonical renders.
func Diff(a, b *Digest) ([]string, error) {
	ab, err := a.Canonical()
	if err != nil {
		return nil, err
	}
	bb, err := b.Canonical()
	if err != nil {
		return nil, err
	}
	return DiffJSON(ab, bb)
}

// DiffJSON diffs two JSON documents (digest files on disk) leaf by
// leaf; see Diff.
func DiffJSON(a, b []byte) ([]string, error) {
	var av, bv any
	if err := json.Unmarshal(a, &av); err != nil {
		return nil, fmt.Errorf("replay: left document: %w", err)
	}
	if err := json.Unmarshal(b, &bv); err != nil {
		return nil, fmt.Errorf("replay: right document: %w", err)
	}
	var lines []string
	diffAny("", av, bv, &lines)
	return lines, nil
}

// render compacts a leaf value for a diff line.
func render(v any) string {
	if v == nil {
		return "<absent>"
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	if len(b) > 80 {
		return string(b[:77]) + "..."
	}
	return string(b)
}

// diffAny walks two decoded JSON trees in parallel, appending one line
// per differing leaf. Keys are visited in sorted order, so the diff
// itself is deterministic.
func diffAny(path string, a, b any, out *[]string) {
	am, aok := a.(map[string]any)
	bm, bok := b.(map[string]any)
	if aok && bok {
		keys := make(map[string]bool, len(am)+len(bm))
		for k := range am { //herald:nondet set insertion only; emission below iterates sorted keys
			keys[k] = true
		}
		for k := range bm { //herald:nondet set insertion only; emission below iterates sorted keys
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys { //herald:nondet collect-then-sort
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			p := k
			if path != "" {
				p = path + "." + k
			}
			diffAny(p, am[k], bm[k], out)
		}
		return
	}
	as, aok := a.([]any)
	bs, bok := b.([]any)
	if aok && bok {
		n := max(len(as), len(bs))
		for i := 0; i < n; i++ {
			var av, bv any
			if i < len(as) {
				av = as[i]
			}
			if i < len(bs) {
				bv = bs[i]
			}
			diffAny(fmt.Sprintf("%s[%d]", path, i), av, bv, out)
		}
		return
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		*out = append(*out, fmt.Sprintf("%s: %s -> %s", path, render(a), render(b)))
	}
}
