package replay

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/capture"
	"repro/internal/dataflow"
	"repro/internal/dse"
	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/maestro"
	"repro/internal/scenario"
)

func newTestCache() *maestro.Cache { return maestro.NewCache(energy.Default28nm()) }

func testHDAs(t testing.TB, n int) []*accel.HDA {
	t.Helper()
	h, err := accel.New("replay-test", accel.Edge, []accel.Partition{
		{Style: dataflow.NVDLA, PEs: 512, BWGBps: 8},
		{Style: dataflow.ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	hdas := make([]*accel.HDA, n)
	for i := range hdas {
		hdas[i] = h
	}
	return hdas
}

func testTrace(t testing.TB) *capture.Trace {
	t.Helper()
	spec := scenario.Spec{Name: "replay-test", Kind: scenario.Zipf, Seed: 7, Requests: 24, Tenants: 3}
	entries, err := scenario.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return &capture.Trace{Note: spec.Note(), Entries: entries}
}

func mustRun(t *testing.T, tr *capture.Trace, o Options) (*Digest, []byte) {
	t.Helper()
	d, err := Run(context.Background(), newTestCache(), testHDAs(t, 2), tr, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return d, b
}

func TestRunDeterministic(t *testing.T) {
	tr := testTrace(t)
	d1, b1 := mustRun(t, tr, Options{Fleet: fleet.DefaultOptions()})
	_, b2 := mustRun(t, tr, Options{Fleet: fleet.DefaultOptions()})
	if !bytes.Equal(b1, b2) {
		lines, _ := DiffJSON(b1, b2)
		t.Fatalf("same trace + config produced different digests:\n%s", strings.Join(lines, "\n"))
	}
	if !d1.Conservation.Holds {
		t.Fatalf("conservation violated: %+v", d1.Conservation)
	}
	if d1.Counters.Completed == 0 {
		t.Fatal("no completions")
	}
	if got := int64(len(tr.Entries)); d1.Counters.Submitted+d1.Counters.Shed+sum(d1.Rejects) != got {
		t.Fatalf("accounting gap: submitted %d + shed %d + rejects %v != %d entries",
			d1.Counters.Submitted, d1.Counters.Shed, d1.Rejects, got)
	}
}

func sum(m map[string]int64) int64 {
	var s int64
	for _, v := range m { //herald:nondet additive fold; sums commute
		s += v
	}
	return s
}

func TestRunWithFaultsDeterministic(t *testing.T) {
	tr := testTrace(t)
	horizon := tr.Entries[len(tr.Entries)-1].ArrivalCycle
	plan, err := fleet.ParseFaultPlan(
		"100:0:stall:4," +
			itoa(horizon/3) + ":1:admit-fail:2," +
			itoa(horizon/2) + ":0:crash," +
			itoa(horizon*3/4) + ":0:recover")
	if err != nil {
		t.Fatal(err)
	}
	opts := func() Options {
		o := Options{Fleet: fleet.DefaultOptions()}
		o.Fleet.Faults = plan
		return o
	}
	d1, b1 := mustRun(t, tr, opts())
	_, b2 := mustRun(t, tr, opts())
	if !bytes.Equal(b1, b2) {
		lines, _ := DiffJSON(b1, b2)
		t.Fatalf("faulted replay not deterministic:\n%s", strings.Join(lines, "\n"))
	}
	if !d1.Conservation.Holds {
		t.Fatalf("conservation violated under faults: %+v", d1.Conservation)
	}
	if len(d1.FaultDecisions) == 0 {
		t.Fatal("fault plan produced no decisions")
	}
	if d1.Setup.FaultEvents != 4 {
		t.Fatalf("setup records %d fault events, want 4", d1.Setup.FaultEvents)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestRunWindowed(t *testing.T) {
	tr := testTrace(t)
	_, b1 := mustRun(t, tr, Options{Fleet: fleet.DefaultOptions(), Window: 8})
	_, b2 := mustRun(t, tr, Options{Fleet: fleet.DefaultOptions(), Window: 8})
	if !bytes.Equal(b1, b2) {
		lines, _ := DiffJSON(b1, b2)
		t.Fatalf("windowed replay not deterministic:\n%s", strings.Join(lines, "\n"))
	}
}

func TestDiffSpotsChange(t *testing.T) {
	tr := testTrace(t)
	d1, _ := mustRun(t, tr, Options{Fleet: fleet.DefaultOptions()})
	rr := Options{Fleet: fleet.DefaultOptions()}
	rr.Fleet.Policy = fleet.RoundRobin
	d2, _ := mustRun(t, tr, rr)
	lines, err := Diff(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "setup.policy:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diff missed the policy change: %v", lines)
	}
	same, err := Diff(d1, d1)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != 0 {
		t.Fatalf("self-diff not empty: %v", same)
	}
}

func TestRunValidation(t *testing.T) {
	tr := testTrace(t)
	cache := newTestCache()
	hdas := testHDAs(t, 2)
	ctx := context.Background()

	if _, err := Run(ctx, cache, hdas, nil, Options{Fleet: fleet.DefaultOptions()}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := Run(ctx, cache, hdas, &capture.Trace{}, Options{Fleet: fleet.DefaultOptions()}); err == nil {
		t.Error("empty trace accepted")
	}
	bad := &capture.Trace{Entries: []capture.Entry{{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: -1}}}
	if _, err := Run(ctx, cache, hdas, bad, Options{Fleet: fleet.DefaultOptions()}); err == nil {
		t.Error("negative arrival accepted")
	}
	fused := Options{Fleet: fleet.DefaultOptions()}
	fused.Fleet.Plans = make(map[string]dse.SegmentPlan)
	if _, err := Run(ctx, cache, hdas, tr, fused); err == nil ||
		!strings.Contains(err.Error(), "fleet-level fusion") {
		t.Errorf("fleet-level fusion not rejected: %v", err)
	}
	ctl := Options{Fleet: fleet.DefaultOptions(), Controller: &fleet.ControllerOptions{}}
	if _, err := Run(ctx, cache, hdas, tr, ctl); err == nil ||
		!strings.Contains(err.Error(), "window") {
		t.Errorf("controller without window not rejected: %v", err)
	}
	neg := Options{Fleet: fleet.DefaultOptions(), Window: -1}
	if _, err := Run(ctx, cache, hdas, tr, neg); err == nil {
		t.Error("negative window accepted")
	}
}

func TestHashStable(t *testing.T) {
	tr := testTrace(t)
	d, _ := mustRun(t, tr, Options{Fleet: fleet.DefaultOptions()})
	h1, err := d.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := d.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("hash unstable or malformed: %q vs %q", h1, h2)
	}
}
