// Package replay re-runs a captured or generated request trace
// (internal/capture) against a candidate fleet configuration and
// renders a deterministic digest of everything that happened:
// counters, conservation, per-tenant latency percentiles, the
// fault-handling decision log and any repartitioning decisions.
//
// Determinism is the whole point: the same trace, fault plan and
// configuration produce byte-identical digests run after run, so an
// operator can export a live incident (trace + decision log), re-run
// it offline under a changed partition, routing policy, fusion plan or
// shedding knob, and byte-compare the outcomes. The harness gets there
// by replaying in quiesce windows: every replica engine starts paused
// (fleet.Options.StartPaused), a window of trace entries is submitted
// against frozen engines — a static queue, so tenant-round-robin batch
// composition is a pure function of the submissions — then the fleet
// is resumed, the window's tickets are awaited, an optional
// repartitioning controller steps at the (now idle) boundary, and the
// engines are paused again for the next window. Submission order is
// the trace order, the fault clock advances only on arrival cycles,
// and nothing reads the wall clock.
//
// Fleet-level fusion (fleet.Options.Plans) is completion-paced —
// segment k+1's submission races the dispatcher clock by design — so
// Run rejects it; engine-level fusion (serve.Options.Plans) is
// schedule-paced and replays exactly.
package replay

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/accel"
	"repro/internal/capture"
	"repro/internal/fleet"
	"repro/internal/maestro"
	"repro/internal/serve"
)

// Options configures one replay run.
type Options struct {
	// Fleet is the candidate configuration under test. StartPaused is
	// forced on (the windowed protocol requires it); Plans (fleet-level
	// fusion) must be nil — set Fleet.Serve.Plans to replay fused
	// serving.
	Fleet fleet.Options

	// Window is the quiesce-window size in trace entries: after every
	// Window submissions the engines run the admitted work to
	// completion before the next batch is admitted. 0 replays the
	// whole trace as one window. Smaller windows interleave admission
	// with execution more finely (closer to live arrival pacing);
	// either way the composition of every scheduling round is a pure
	// function of trace order, so any fixed Window is deterministic.
	Window int

	// Controller, when set, attaches a repartitioning controller
	// (requires Fleet.Sweeper) and steps it once at every window
	// boundary — the deterministic stand-in for the live ticker.
	// Requires Window > 0.
	Controller *fleet.ControllerOptions

	// Elastic, when set, attaches an elastic (intra-HDA) controller
	// instead and steps it at every window boundary. Fleet.Serve.Elastic
	// is forced on so the SLA-risk preemption trigger can act. Requires
	// Window > 0; mutually exclusive with Controller — the two are the
	// A/B arms of a shoot-out, not a stack.
	Elastic *fleet.ElasticOptions
}

// Run replays the trace and returns its digest. See the package
// comment for the windowed protocol and its determinism argument.
func Run(ctx context.Context, cache *maestro.Cache, hdas []*accel.HDA, tr *capture.Trace, o Options) (*Digest, error) {
	if tr == nil || len(tr.Entries) == 0 {
		return nil, fmt.Errorf("replay: empty trace")
	}
	if o.Fleet.Plans != nil {
		return nil, fmt.Errorf("replay: fleet-level fusion (fleet.Options.Plans) is completion-paced and not bit-reproducible; use engine-level fusion (Fleet.Serve.Plans) instead")
	}
	if o.Window < 0 {
		return nil, fmt.Errorf("replay: window must be >= 0 (got %d)", o.Window)
	}
	if o.Controller != nil && o.Window <= 0 {
		return nil, fmt.Errorf("replay: a repartitioning controller needs a window (set Options.Window)")
	}
	if o.Elastic != nil && o.Window <= 0 {
		return nil, fmt.Errorf("replay: an elastic controller needs a window (set Options.Window)")
	}
	if o.Elastic != nil && o.Controller != nil {
		return nil, fmt.Errorf("replay: Elastic and Controller are mutually exclusive (A/B them in separate runs)")
	}
	for i, e := range tr.Entries {
		if e.ArrivalCycle < 0 {
			return nil, fmt.Errorf("replay: entry %d: negative arrival cycle %d (traces must carry explicit arrivals)", i, e.ArrivalCycle)
		}
	}

	o.Fleet.StartPaused = true
	if o.Elastic != nil {
		o.Fleet.Serve.Elastic = true
	}
	f, err := fleet.New(cache, hdas, o.Fleet)
	if err != nil {
		return nil, err
	}
	var ctrl *fleet.Controller
	if o.Controller != nil {
		ctrl, err = fleet.NewController(f, *o.Controller)
		if err != nil {
			return nil, err
		}
	}
	var ectrl *fleet.ElasticController
	if o.Elastic != nil {
		ectrl, err = fleet.NewElasticController(f, *o.Elastic)
		if err != nil {
			return nil, err
		}
	}

	d := &Digest{
		Version: DigestVersion,
		Trace: TraceInfo{
			Note:       tr.Note,
			Entries:    len(tr.Entries),
			FirstCycle: tr.Entries[0].ArrivalCycle,
			LastCycle:  tr.Entries[0].ArrivalCycle,
		},
		Setup: Setup{
			Policy:        f.Policy().String(),
			Replicas:      len(hdas),
			ShedSLAFactor: o.Fleet.Health.ShedSLAFactor,
			Window:        o.Window,
			Repartition:   ctrl != nil,
			Elastic:       ectrl != nil,
		},
	}
	for _, e := range tr.Entries {
		if e.ArrivalCycle < d.Trace.FirstCycle {
			d.Trace.FirstCycle = e.ArrivalCycle
		}
		if e.ArrivalCycle > d.Trace.LastCycle {
			d.Trace.LastCycle = e.ArrivalCycle
		}
	}
	for _, h := range hdas {
		d.Setup.HDAs = append(d.Setup.HDAs, h.Name)
	}
	fused := make([]string, 0, len(o.Fleet.Serve.Plans))
	for name := range o.Fleet.Serve.Plans { //herald:nondet collect-then-sort
		fused = append(fused, name)
	}
	sort.Strings(fused)
	d.Setup.FusedModels = fused
	if o.Fleet.Faults != nil {
		d.Setup.FaultEvents = len(o.Fleet.Faults.Events)
	}

	// The windowed loop: submit against paused engines, resume, wait
	// the window's tickets, step the controller at the idle boundary,
	// freeze again.
	rejects := make(map[string]int64)
	var tickets []*fleet.Ticket
	flush := func(step bool) error {
		f.ResumeAll()
		for _, t := range tickets {
			if _, err := t.Wait(ctx); err != nil {
				// Ticket resolution errors (timeout/cancel) abort the
				// replay; scheduling failures resolve with a failed
				// record, not an error, and stay in the counters.
				return fmt.Errorf("replay: awaiting window ticket %d: %w", t.ID, err)
			}
		}
		tickets = tickets[:0]
		if step && ctrl != nil {
			dec, err := ctrl.Step(ctx)
			if err != nil {
				return fmt.Errorf("replay: controller step: %w", err)
			}
			d.Repartitions = append(d.Repartitions, dec)
		}
		if step && ectrl != nil {
			dec, err := ectrl.Step(ctx)
			if err != nil {
				return fmt.Errorf("replay: elastic step: %w", err)
			}
			d.ElasticDecisions = append(d.ElasticDecisions, dec)
		}
		f.PauseAll()
		return nil
	}
	for i, e := range tr.Entries {
		t, err := f.Submit(serve.Request{
			Tenant:       e.Tenant,
			Model:        e.Model,
			Priority:     e.Priority,
			SLACycles:    e.SLACycles,
			ArrivalCycle: e.ArrivalCycle,
		})
		switch {
		case err == nil:
			tickets = append(tickets, t)
		case errors.As(err, new(*fleet.ShedError)):
			// Shed arrivals are already counted (Counters.Shed and the
			// per-tenant rows); no separate reject bucket.
		case errors.Is(err, serve.ErrQueueFull):
			rejects["queue-full"]++
		case errors.Is(err, serve.ErrDraining):
			rejects["draining"]++
		case errors.Is(err, fleet.ErrNoReplicas):
			rejects["no-replicas"]++
		default:
			rejects["client"]++
		}
		if o.Window > 0 && (i+1)%o.Window == 0 {
			if err := flush(true); err != nil {
				return nil, err
			}
		}
	}
	// Flush the final partial window without a controller step (the
	// step cadence is one per full window, so a trace of length k·W
	// steps exactly k times).
	if err := flush(false); err != nil {
		return nil, err
	}

	f.ResumeAll()
	st, err := f.Drain(ctx)
	if err != nil {
		return nil, fmt.Errorf("replay: drain: %w", err)
	}

	d.Counters = Counters{
		Submitted:            st.Submitted,
		Completed:            st.Completed,
		Failed:               st.Failed,
		Rejected:             st.Rejected,
		Pending:              st.Pending,
		Shed:                 st.Shed,
		Failovers:            st.Failovers,
		Lost:                 st.Lost,
		Crashes:              st.Crashes,
		Recoveries:           st.Recoveries,
		BreakerTrips:         st.BreakerTrips,
		Migrations:           st.Migrations,
		Preemptions:          st.Preemptions,
		Resumes:              st.Resumes,
		PEReassigns:          st.PEReassigns,
		Generation:           st.Generation,
		MakespanCycles:       st.MakespanCycles,
		CrossReplicaHandoffs: st.CrossReplicaHandoffs,
		Segments:             st.Segments,
	}
	// Fleet-level Segments only counts dispatcher-decomposed chains;
	// with engine-level fusion (the replayable kind) the counters live
	// per replica — fold them in so the digest sees fused activity
	// either way.
	for _, rs := range st.PerReplica {
		d.Counters.Segments.Add(rs.Engine.Segments)
	}
	d.Conservation = Conservation{
		Submitted: st.Submitted,
		Completed: st.Completed,
		Failed:    st.Failed,
		Pending:   st.Pending,
		Holds:     st.Submitted == st.Completed+st.Failed && st.Pending == 0,
	}
	if len(rejects) > 0 {
		d.Rejects = rejects
	}
	d.Tenants = st.Tenants
	d.FaultDecisions = f.Decisions()
	return d, nil
}
