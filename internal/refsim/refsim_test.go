package refsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataflow"
	"repro/internal/dnn"
)

// genLayer produces small-but-varied valid layers so the tile walk
// stays fast while covering edge-clamping cases (bounds not divisible
// by spatial extents, single-row maps, FC degeneracy, UpConv phases).
func genLayer(r *rand.Rand) dnn.Layer {
	ops := []dnn.Op{dnn.Conv2D, dnn.PWConv, dnn.DWConv, dnn.FC, dnn.UpConv}
	op := ops[r.Intn(len(ops))]
	l := dnn.Layer{Op: op, Stride: 1}
	switch op {
	case dnn.FC:
		l.K, l.C, l.Y, l.X, l.R, l.S = 1+r.Intn(300), 1+r.Intn(300), 1, 1, 1, 1
	case dnn.PWConv:
		l.K, l.C, l.R, l.S = 1+r.Intn(130), 1+r.Intn(130), 1, 1
		l.Y, l.X = 1+r.Intn(40), 1+r.Intn(40)
	case dnn.DWConv:
		ch := 1 + r.Intn(130)
		l.K, l.C, l.R, l.S, l.Pad = ch, ch, 3, 3, 1
		l.Y, l.X = 3+r.Intn(40), 3+r.Intn(40)
	case dnn.UpConv:
		l.K, l.C = 1+r.Intn(60), 1+r.Intn(60)
		l.R, l.S = 2+r.Intn(2), 2+r.Intn(2) // 2 or 3 taps
		l.Stride = 2
		l.Y, l.X = 1+r.Intn(16), 1+r.Intn(16)
	default:
		l.K, l.C, l.R, l.S, l.Pad = 1+r.Intn(90), 1+r.Intn(90), 3, 3, 1
		l.Y, l.X = 3+r.Intn(40), 3+r.Intn(40)
		if r.Intn(2) == 0 {
			l.Stride = 2
		}
	}
	if r.Intn(10) == 0 {
		l.Repeat = 1 + r.Intn(4)
	}
	return l
}

// TestAnalyticalCyclesMatchSimulation is the cost model's validation
// centerpiece: for every dataflow style over random layers and array
// sizes, the closed-form ComputeCycles must equal the tile-walk count
// exactly.
func TestAnalyticalCyclesMatchSimulation(t *testing.T) {
	pesChoices := []int{4, 16, 64, 128, 256, 1024}
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := genLayer(r)
		if err := l.Validate(); err != nil {
			return false
		}
		pes := pesChoices[r.Intn(len(pesChoices))]
		for _, style := range dataflow.AllStyles() {
			m := dataflow.Map(style, &l, pes)
			sim := Simulate(style, &l, pes)
			if sim.ComputeCycles != m.ComputeCycles {
				t.Logf("%v on %s @%dPE: analytical %d cycles, simulated %d",
					style, l.String(), pes, m.ComputeCycles, sim.ComputeCycles)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestBusySlotsCoverExactWork: the busy-PE integral must equal the
// exact MAC count for every operator whose effective taps are not
// phase-rounded (everything except UpConv with stride∤taps), proving
// the mapping neither skips nor duplicates work.
func TestBusySlotsCoverExactWork(t *testing.T) {
	pesChoices := []int{4, 16, 64, 256}
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := genLayer(r)
		if err := l.Validate(); err != nil {
			return false
		}
		pes := pesChoices[r.Intn(len(pesChoices))]
		for _, style := range dataflow.AllStyles() {
			sim := Simulate(style, &l, pes)
			if l.Op == dnn.UpConv {
				// Phase rounding makes slots an upper bound.
				if sim.BusySlots < sim.ExactMACs {
					t.Logf("%v upconv: slots %d < MACs %d", style, sim.BusySlots, sim.ExactMACs)
					return false
				}
				continue
			}
			if sim.BusySlots != sim.ExactMACs {
				t.Logf("%v on %s: busy slots %d != exact MACs %d",
					style, l.String(), sim.BusySlots, sim.ExactMACs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPeakOccupancyMatchesMapping: the simulator's peak per-step
// occupancy must equal the mapping's ActivePEs (the first tile is
// always full by construction of the spatial extents).
func TestPeakOccupancyMatchesMapping(t *testing.T) {
	pesChoices := []int{4, 16, 64, 256}
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := genLayer(r)
		if err := l.Validate(); err != nil {
			return false
		}
		pes := pesChoices[r.Intn(len(pesChoices))]
		for _, style := range dataflow.AllStyles() {
			m := dataflow.Map(style, &l, pes)
			sim := Simulate(style, &l, pes)
			if sim.PeakActivePEs != m.ActivePEs {
				t.Logf("%v on %s: peak %d != ActivePEs %d", style, l.String(), sim.PeakActivePEs, m.ActivePEs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestExactMACsAgreesWithLayer: the simulator's independent MAC count
// must agree with dnn.Layer.MACs (two independently-written formulas).
func TestExactMACsAgreesWithLayer(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := genLayer(r)
		if err := l.Validate(); err != nil {
			return false
		}
		return exactMACs(&l) == l.MACs()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestKnownTiles pins a hand-computed case: a 6x6 conv (K=2,C=3,3x3)
// on a 16-PE NVDLA array (Fig. 5 layer 1). Spatial extents are
// (K2,C3); the walk covers 1x1 k,c tiles over 4x4 outputs x 3 filter
// rows x 3 columns = 144 steps, busy 6 PEs each.
func TestKnownTiles(t *testing.T) {
	l := dnn.Layer{Op: dnn.Conv2D, K: 2, C: 3, Y: 6, X: 6, R: 3, S: 3, Stride: 1}
	sim := Simulate(dataflow.NVDLA, &l, 16)
	if sim.ComputeCycles != 4*4*3*3 {
		t.Errorf("cycles = %d, want 144", sim.ComputeCycles)
	}
	if sim.PeakActivePEs != 6 {
		t.Errorf("peak = %d, want 6", sim.PeakActivePEs)
	}
	if sim.BusySlots != l.MACs() {
		t.Errorf("busy slots = %d, want %d", sim.BusySlots, l.MACs())
	}
}
