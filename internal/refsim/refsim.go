// Package refsim is a tile-level reference simulator used to validate
// the analytical cost model. Where the mapper computes closed-form
// fold and cycle counts, refsim literally iterates the tiled loop nest
// — output-channel tiles × input-channel tiles × spatial tiles ×
// filter-row tiles — clamping each tile at the dimension borders and
// accumulating cycles and the busy-PE integral step by step.
//
// It is deliberately slow and simple (explicit nested loops, no
// algebra shared with the mapper beyond the spatial extents): the
// original MAESTRO was validated against RTL simulation; we validate
// against this simulator instead. Property tests assert that, for
// every style over a wide range of layer shapes:
//
//   - the analytical ComputeCycles equals the simulated cycle count
//     (catches ceil-division and fold-dimension bugs),
//   - the busy-PE integral equals the layer's exact MAC count for all
//     non-upscale operators (the mapping covers exactly the work), and
//   - the first tile saturates exactly ActivePEs processing elements.
package refsim

import (
	"repro/internal/dataflow"
	"repro/internal/dnn"
)

// Result is what the simulator measures by walking tiles.
type Result struct {
	// ComputeCycles is the total number of array time steps, counted
	// one tile at a time.
	ComputeCycles int64
	// BusySlots is the busy-PE integral: Σ over time steps of the
	// number of PEs doing real (non-clamped) work that step.
	BusySlots int64
	// ExactMACs is the ground-truth MAC count from the operator
	// definition.
	ExactMACs int64
	// PeakActivePEs is the largest per-step PE occupancy observed.
	PeakActivePEs int
}

// Simulate walks the tile space of layer l mapped with style onto a
// pes-wide array. It iterates every tile (not every MAC), so the cost
// is O(number of tiles); use moderately-sized layers in tests.
func Simulate(style dataflow.Style, l *dnn.Layer, pes int) Result {
	m := dataflow.Map(style, l, pes)
	var r Result
	r.ExactMACs = exactMACs(l)

	reps := 1
	if l.Repeat > 1 {
		reps = l.Repeat
	}
	er, es := effTaps(l)

	// Dimension bounds the mapping must cover. The input-channel
	// dimension disappears for depth-wise layers.
	kBound := l.K
	cBound := l.C
	if l.Op == dnn.DWConv {
		cBound = 1
	}
	yBound := l.OutY()
	xBound := l.OutX()
	rBound := er

	// Walk the loop nest tile by tile. Every (k,c,y,x,r) tile runs for
	// `es` cycles (the filter-column loop is always temporal), with
	// the clamped tile volume of PEs busy.
	for rep := 0; rep < reps; rep++ {
		for k := 0; k < kBound; k += m.SpatK {
			kw := clamp(kBound-k, m.SpatK)
			for c := 0; c < cBound; c += m.SpatC {
				cw := clamp(cBound-c, m.SpatC)
				for y := 0; y < yBound; y += m.SpatY {
					yw := clamp(yBound-y, m.SpatY)
					for x := 0; x < xBound; x += m.SpatX {
						xw := clamp(xBound-x, m.SpatX)
						for rr := 0; rr < rBound; rr += m.SpatR {
							rw := clamp(rBound-rr, m.SpatR)
							active := kw * cw * yw * xw * rw
							r.ComputeCycles += int64(es)
							r.BusySlots += int64(es) * int64(active)
							if active > r.PeakActivePEs {
								r.PeakActivePEs = active
							}
						}
					}
				}
			}
		}
	}
	return r
}

func clamp(remaining, width int) int {
	if remaining < width {
		return remaining
	}
	return width
}

// exactMACs counts MACs from the operator definition — the slow,
// obviously-correct ground truth.
func exactMACs(l *dnn.Layer) int64 {
	reps := int64(1)
	if l.Repeat > 1 {
		reps = int64(l.Repeat)
	}
	switch l.Op {
	case dnn.UpConv:
		return int64(l.K) * int64(l.C) * int64(l.Y) * int64(l.X) * int64(l.R) * int64(l.S) * reps
	case dnn.DWConv:
		return int64(l.K) * int64(l.OutY()) * int64(l.OutX()) * int64(l.R) * int64(l.S) * reps
	default:
		return int64(l.K) * int64(l.C) * int64(l.OutY()) * int64(l.OutX()) * int64(l.R) * int64(l.S) * reps
	}
}

// effTaps mirrors the mapper's effective-filter accounting for UpConv
// (the kernel is distributed over stride² output phases).
func effTaps(l *dnn.Layer) (int, int) {
	if l.Op == dnn.UpConv {
		return ceilDiv(l.R, l.Stride), ceilDiv(l.S, l.Stride)
	}
	return l.R, l.S
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
