package workload

import "testing"

func TestTableIIWorkloads(t *testing.T) {
	a := ARVRA()
	if a.Name != "AR/VR-A" || a.NumInstances() != 10 {
		t.Errorf("AR/VR-A: %s, %d instances", a.Name, a.NumInstances())
	}
	b := ARVRB()
	if b.NumInstances() != 12 {
		t.Errorf("AR/VR-B instances = %d", b.NumInstances())
	}
	m := MLPerf(1)
	if m.NumInstances() != 5 {
		t.Errorf("MLPerf instances = %d", m.NumInstances())
	}
	if MLPerf(8).NumInstances() != 40 {
		t.Error("MLPerf batch-8 instances")
	}
	if got := len(Evaluated()); got != 3 {
		t.Errorf("Evaluated() = %d workloads", got)
	}
}

func TestAggregates(t *testing.T) {
	a := ARVRA()
	if a.TotalLayers() != 2*54+4*23+4*53 {
		t.Errorf("AR/VR-A layers = %d", a.TotalLayers())
	}
	if a.TotalMACs() <= 0 {
		t.Error("MACs")
	}
	// UNet x4 dominates AR/VR-A's MACs.
	var unet int64
	for _, in := range a.Instances {
		if in.Model.Name == "unet" {
			unet += in.Model.MACs()
		}
	}
	if float64(unet)/float64(a.TotalMACs()) < 0.8 {
		t.Errorf("UNet share = %.2f, expected dominant", float64(unet)/float64(a.TotalMACs()))
	}
}

func TestInstanceNaming(t *testing.T) {
	w := MustNew("n", []Entry{{Model: "unet", Batches: 2}})
	if w.Instances[0].Name() != "unet#1" || w.Instances[1].Name() != "unet#2" {
		t.Errorf("names = %s, %s", w.Instances[0].Name(), w.Instances[1].Name())
	}
}

func TestPeriodicArrivals(t *testing.T) {
	w := MustNew("p", []Entry{{Model: "mobilenetv1", Batches: 3, PeriodCycles: 1000}})
	for i, in := range w.Instances {
		if want := int64(i) * 1000; in.ArrivalCycle != want {
			t.Errorf("instance %d arrival = %d, want %d", i, in.ArrivalCycle, want)
		}
	}
	if _, err := New("bad", []Entry{{Model: "unet", Batches: 1, PeriodCycles: -5}}); err == nil {
		t.Error("negative period accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := New("e", nil); err == nil {
		t.Error("empty entries accepted")
	}
	if _, err := New("e", []Entry{{Model: "unknown", Batches: 1}}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := New("e", []Entry{{Model: "unet", Batches: 0}}); err == nil {
		t.Error("zero batches accepted")
	}
	if _, err := SingleDNN("resnet50", 4); err != nil {
		t.Error(err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid input")
		}
	}()
	MustNew("bad", nil)
}
