package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dnn"
)

// StreamEntry describes one periodic request stream of a model — the
// serving-time generalization of Entry.PeriodCycles: arrival i lands
// at OffsetCycles + i×PeriodCycles plus a seeded uniform jitter in
// [0, JitterCycles). This models multi-stream serving traffic (MLPerf
// multi-stream, AR/VR frame pipelines) where frames arrive at a
// target processing rate rather than all at once.
type StreamEntry struct {
	Model        string
	Count        int   // number of arrivals (>= 1)
	PeriodCycles int64 // inter-arrival period (>= 1)
	OffsetCycles int64 // stream start offset (>= 0)
	JitterCycles int64 // uniform per-arrival jitter bound (>= 0)
}

// Arrival is one streamed model-instance request.
type Arrival struct {
	Model string
	Cycle int64
}

// Stream merges the entries' periodic arrival sequences into one
// cycle-ordered request stream. The jitter is drawn from a seeded
// generator, so a (entries, seed) pair is fully deterministic.
func Stream(entries []StreamEntry, seed int64) ([]Arrival, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("workload: stream has no entries")
	}
	r := rand.New(rand.NewSource(seed))
	var out []Arrival
	for _, e := range entries {
		if e.Count < 1 {
			return nil, fmt.Errorf("workload: stream %s: count must be >= 1 (got %d)", e.Model, e.Count)
		}
		if e.PeriodCycles < 1 {
			return nil, fmt.Errorf("workload: stream %s: period must be >= 1 (got %d)", e.Model, e.PeriodCycles)
		}
		if e.OffsetCycles < 0 || e.JitterCycles < 0 {
			return nil, fmt.Errorf("workload: stream %s: offset and jitter must be >= 0", e.Model)
		}
		if _, err := dnn.ByName(e.Model); err != nil {
			return nil, err
		}
		for i := 0; i < e.Count; i++ {
			cycle := e.OffsetCycles + int64(i)*e.PeriodCycles
			if e.JitterCycles > 0 {
				cycle += r.Int63n(e.JitterCycles)
			}
			out = append(out, Arrival{Model: e.Model, Cycle: cycle})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out, nil
}

// ToWorkload converts an arrival stream into a schedulable Workload:
// every arrival becomes one model instance with its arrival cycle set.
// This bridges streamed serving traffic back to the offline scheduler
// and DSE (e.g. to co-design an HDA for the traffic it will serve).
func ToWorkload(name string, arrivals []Arrival) (*Workload, error) {
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("workload: %q has no arrivals", name)
	}
	w := &Workload{Name: name}
	batch := map[string]int{}
	for _, a := range arrivals {
		m, err := dnn.ByName(a.Model)
		if err != nil {
			return nil, fmt.Errorf("workload %q: %w", name, err)
		}
		if a.Cycle < 0 {
			return nil, fmt.Errorf("workload %q: negative arrival cycle %d", name, a.Cycle)
		}
		batch[a.Model]++
		w.Instances = append(w.Instances, Instance{
			Model: m, Batch: batch[a.Model], ArrivalCycle: a.Cycle,
		})
	}
	return w, nil
}
