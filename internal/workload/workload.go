// Package workload builds the heterogeneous multi-DNN workloads of
// Table II: a set of model instances (model × batch count) whose
// layers form independent linear dependence chains. Instances of the
// same model share layer shapes (and therefore cost-model cache
// entries) but are scheduled independently — the layer parallelism
// HDAs exploit (§III-B).
package workload

import (
	"fmt"

	"repro/internal/dnn"
)

// Entry requests a number of batch instances of one zoo model, as in
// Table II's "# of batches" column.
type Entry struct {
	Model   string
	Batches int

	// PeriodCycles optionally staggers the instances as a periodic
	// stream: batch i arrives at (i-1) × PeriodCycles. Zero means all
	// instances are ready at cycle 0 (the paper's setting). This
	// models the multi-stream MLPerf scenario more faithfully: frames
	// of a sub-task arrive at its target processing rate rather than
	// all at once.
	PeriodCycles int64
}

// Instance is one independently-scheduled copy of a model.
type Instance struct {
	Model *dnn.Model
	Batch int // 1-based batch index within the model

	// ArrivalCycle is the earliest cycle the instance's first layer
	// may start (0 = ready immediately).
	ArrivalCycle int64
}

// Name identifies the instance, e.g. "unet#3".
func (in Instance) Name() string { return fmt.Sprintf("%s#%d", in.Model.Name, in.Batch) }

// Workload is a named multi-DNN workload.
type Workload struct {
	Name      string
	Instances []Instance
}

// New builds a workload from zoo entries.
func New(name string, entries []Entry) (*Workload, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("workload: %q has no entries", name)
	}
	w := &Workload{Name: name}
	for _, e := range entries {
		if e.Batches < 1 {
			return nil, fmt.Errorf("workload: %q: %s batches must be >= 1 (got %d)", name, e.Model, e.Batches)
		}
		if e.PeriodCycles < 0 {
			return nil, fmt.Errorf("workload: %q: %s period must be >= 0 (got %d)", name, e.Model, e.PeriodCycles)
		}
		m, err := dnn.ByName(e.Model)
		if err != nil {
			return nil, fmt.Errorf("workload %q: %w", name, err)
		}
		for b := 1; b <= e.Batches; b++ {
			w.Instances = append(w.Instances, Instance{
				Model: m, Batch: b,
				ArrivalCycle: int64(b-1) * e.PeriodCycles,
			})
		}
	}
	return w, nil
}

// MustNew is New for statically-known entries.
func MustNew(name string, entries []Entry) *Workload {
	w, err := New(name, entries)
	if err != nil {
		panic(err)
	}
	return w
}

// NumInstances returns the number of model instances.
func (w *Workload) NumInstances() int { return len(w.Instances) }

// TotalLayers returns the total number of layers across all instances
// (the paper's per-workload layer counts in Table VII).
func (w *Workload) TotalLayers() int {
	var n int
	for _, in := range w.Instances {
		n += in.Model.NumLayers()
	}
	return n
}

// TotalMACs returns the workload's total multiply-accumulate count.
func (w *Workload) TotalMACs() int64 {
	var n int64
	for _, in := range w.Instances {
		n += in.Model.MACs()
	}
	return n
}

// ARVRA returns the AR/VR-A workload of Table II:
// ResNet50 ×2, UNet ×4, MobileNetV2 ×4.
func ARVRA() *Workload {
	return MustNew("AR/VR-A", []Entry{
		{Model: "resnet50", Batches: 2},
		{Model: "unet", Batches: 4},
		{Model: "mobilenetv2", Batches: 4},
	})
}

// ARVRB returns the AR/VR-B workload of Table II: ResNet50 ×2, UNet
// ×2, MobileNetV2 ×4, Br-Q Handpose ×2, Focal-Length DepthNet ×2.
func ARVRB() *Workload {
	return MustNew("AR/VR-B", []Entry{
		{Model: "resnet50", Batches: 2},
		{Model: "unet", Batches: 2},
		{Model: "mobilenetv2", Batches: 4},
		{Model: "brq-handpose", Batches: 2},
		{Model: "fl-depthnet", Batches: 2},
	})
}

// MLPerf returns the MLPerf multi-stream inference workload of
// Table II with the given per-model batch count (1 in the main
// evaluation, 8 in the batch-size study of Table VI): ResNet50,
// MobileNetV1, SSD-ResNet34, SSD-MobileNetV1 and GNMT.
func MLPerf(batches int) *Workload {
	return MustNew(fmt.Sprintf("MLPerf-b%d", batches), []Entry{
		{Model: "resnet50", Batches: batches},
		{Model: "mobilenetv1", Batches: batches},
		{Model: "ssd-resnet34", Batches: batches},
		{Model: "ssd-mobilenetv1", Batches: batches},
		{Model: "gnmt", Batches: batches},
	})
}

// SingleDNN returns a single-model workload with the given batch count
// (the Fig. 12 single-DNN case study).
func SingleDNN(model string, batches int) (*Workload, error) {
	return New(model+"-single", []Entry{{Model: model, Batches: batches}})
}

// Evaluated returns the three Table II workloads at their main
// evaluation batch sizes.
func Evaluated() []*Workload {
	return []*Workload{ARVRA(), ARVRB(), MLPerf(1)}
}
