package workload

import (
	"testing"
)

func TestStreamDeterministicAndSorted(t *testing.T) {
	entries := []StreamEntry{
		{Model: "mobilenetv1", Count: 10, PeriodCycles: 1000, JitterCycles: 400},
		{Model: "brq-handpose", Count: 5, PeriodCycles: 2500, OffsetCycles: 300, JitterCycles: 100},
	}
	a, err := Stream(entries, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stream(entries, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 15 {
		t.Fatalf("%d arrivals, want 15", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across same-seed runs: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].Cycle < a[i-1].Cycle {
			t.Fatalf("arrivals not cycle-sorted at %d", i)
		}
	}
	c, err := Stream(entries, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
}

func TestStreamPeriodicWithoutJitter(t *testing.T) {
	a, err := Stream([]StreamEntry{{Model: "unet", Count: 4, PeriodCycles: 100, OffsetCycles: 50}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, arr := range a {
		if want := int64(50 + 100*i); arr.Cycle != want {
			t.Errorf("arrival %d at %d, want %d", i, arr.Cycle, want)
		}
	}
}

func TestStreamRejectsBadEntries(t *testing.T) {
	cases := []StreamEntry{
		{Model: "unet", Count: 0, PeriodCycles: 1},
		{Model: "unet", Count: 1, PeriodCycles: 0},
		{Model: "unet", Count: 1, PeriodCycles: 1, OffsetCycles: -1},
		{Model: "unet", Count: 1, PeriodCycles: 1, JitterCycles: -1},
		{Model: "no-such-model", Count: 1, PeriodCycles: 1},
	}
	for i, e := range cases {
		if _, err := Stream([]StreamEntry{e}, 0); err == nil {
			t.Errorf("case %d (%+v) accepted", i, e)
		}
	}
	if _, err := Stream(nil, 0); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestToWorkload(t *testing.T) {
	arrivals, err := Stream([]StreamEntry{
		{Model: "mobilenetv2", Count: 3, PeriodCycles: 500},
		{Model: "resnet50", Count: 2, PeriodCycles: 700, OffsetCycles: 100},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ToWorkload("stream-wl", arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumInstances() != 5 {
		t.Fatalf("%d instances, want 5", w.NumInstances())
	}
	batches := map[string][]int{}
	for i, in := range w.Instances {
		if in.ArrivalCycle != arrivals[i].Cycle {
			t.Errorf("instance %d arrival %d != stream %d", i, in.ArrivalCycle, arrivals[i].Cycle)
		}
		batches[in.Model.Name] = append(batches[in.Model.Name], in.Batch)
	}
	for model, bs := range batches {
		for i, b := range bs {
			if b != i+1 {
				t.Errorf("%s batch numbering %v", model, bs)
			}
		}
	}
	if _, err := ToWorkload("empty", nil); err == nil {
		t.Error("empty arrival set accepted")
	}
}

// TestStreamGoldenArrivals pins the exact arrival sequence of a fixed
// (entries, seed) pair. Go 1's compatibility promise fixes math/rand's
// sequences, so these cycles can only change if Stream's jitter stops
// drawing every value, in order, from the seeded source — exactly the
// regression this test exists to catch: a wall-clock or global-rand
// sneaking in would desync every committed trace and replay digest.
func TestStreamGoldenArrivals(t *testing.T) {
	got, err := Stream([]StreamEntry{
		{Model: "mobilenetv1", Count: 6, PeriodCycles: 1000, JitterCycles: 400},
		{Model: "brq-handpose", Count: 3, PeriodCycles: 2500, OffsetCycles: 300, JitterCycles: 100},
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := []Arrival{
		{"mobilenetv1", 275},
		{"brq-handpose", 347},
		{"mobilenetv1", 1011},
		{"mobilenetv1", 2360},
		{"brq-handpose", 2808},
		{"mobilenetv1", 3009},
		{"mobilenetv1", 4057},
		{"mobilenetv1", 5061},
		{"brq-handpose", 5368},
	}
	if len(got) != len(want) {
		t.Fatalf("%d arrivals, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrival %d = %+v, want %+v (seeded jitter sequence changed)", i, got[i], want[i])
		}
	}
}
