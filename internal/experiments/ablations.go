package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/accel"
	"repro/internal/dse"
	"repro/internal/sched"
	"repro/internal/workload"
)

// This file holds ablation studies for the design choices DESIGN.md
// calls out: the load-balancing factor, the post-processing look-ahead
// depth, the layer-ordering heuristic, the per-layer context-change
// penalty the paper's §IV-A mentions, and the search-strategy
// quality/time trade-off of §IV-C.

// LbFPoint is one load-balance-factor setting.
type LbFPoint struct {
	LbF      float64
	Latency  float64
	EnergyMJ float64
	EDP      float64
}

// LbFAblation sweeps the maximum allowed load-unbalancing factor on a
// fixed Maelstrom edge design with AR/VR-B (the knob of §IV-D).
// +Inf disables balancing entirely (pure dataflow preference).
func (c *Config) LbFAblation() ([]LbFPoint, error) {
	hda, err := edgeMaelstrom()
	if err != nil {
		return nil, err
	}
	w := workload.ARVRB()
	var out []LbFPoint
	for _, lbf := range []float64{1.0, 1.25, 1.5, 2, 4, 8, math.Inf(1)} {
		opts := sched.DefaultOptions()
		opts.LoadBalanceFactor = lbf
		s := sched.MustNew(c.H.Cache(), opts)
		sch, err := s.Schedule(hda, w)
		if err != nil {
			return nil, err
		}
		out = append(out, LbFPoint{
			LbF: lbf, Latency: sch.LatencySeconds(1.0),
			EnergyMJ: sch.EnergyMJ(), EDP: sch.EDP(1.0),
		})
	}
	return out, nil
}

// LookAheadPoint is one post-processing depth setting.
type LookAheadPoint struct {
	LookAhead int
	EDP       float64
	SchedTime time.Duration
}

// LookAheadAblation sweeps the Fig. 9 look-ahead depth (0 disables the
// post-processing pass).
func (c *Config) LookAheadAblation() ([]LookAheadPoint, error) {
	hda, err := edgeMaelstrom()
	if err != nil {
		return nil, err
	}
	w := workload.ARVRB()
	var out []LookAheadPoint
	for _, la := range []int{0, 1, 2, 4, 8, 16} {
		opts := sched.DefaultOptions()
		opts.LookAhead = la
		opts.PostProcess = la > 0
		s := sched.MustNew(c.H.Cache(), opts)
		sch, err := s.Schedule(hda, w)
		if err != nil {
			return nil, err
		}
		out = append(out, LookAheadPoint{LookAhead: la, EDP: sch.EDP(1.0), SchedTime: sch.SchedulingTime})
	}
	return out, nil
}

// OrderingPoint compares breadth-first vs depth-first initial layer
// ordering (§IV-D's two heuristics) on one scenario.
type OrderingPoint struct {
	Ordering sched.Ordering
	Latency  float64
	EDP      float64
}

// OrderingAblation runs both orderings on the fixed edge Maelstrom.
func (c *Config) OrderingAblation() ([]OrderingPoint, error) {
	hda, err := edgeMaelstrom()
	if err != nil {
		return nil, err
	}
	w := workload.ARVRB()
	var out []OrderingPoint
	for _, ord := range []sched.Ordering{sched.BreadthFirst, sched.DepthFirst} {
		opts := sched.DefaultOptions()
		opts.Ordering = ord
		s := sched.MustNew(c.H.Cache(), opts)
		sch, err := s.Schedule(hda, w)
		if err != nil {
			return nil, err
		}
		out = append(out, OrderingPoint{Ordering: ord, Latency: sch.LatencySeconds(1.0), EDP: sch.EDP(1.0)})
	}
	return out, nil
}

// ContextPenaltyPoint is one per-layer context-change penalty setting.
type ContextPenaltyPoint struct {
	PenaltyCycles int64
	Latency       float64
	EDP           float64
}

// ContextPenaltyAblation charges every layer a per-layer context
// penalty (the §IV-A data-layout / context-change option) and measures
// the schedule degradation. The paper argues HDAs avoid this cost by
// keeping a common inner-loop order across sub-accelerators; this
// quantifies what is avoided.
func (c *Config) ContextPenaltyAblation() ([]ContextPenaltyPoint, error) {
	w := workload.ARVRB()
	var out []ContextPenaltyPoint
	for _, pen := range []int64{0, 1_000, 10_000, 100_000} {
		hda, err := edgeMaelstrom()
		if err != nil {
			return nil, err
		}
		for i := range hda.Subs {
			hda.Subs[i].HW.ContextCycles = pen
			hda.Subs[i].HW.ContextPJ = float64(pen) * 100 // 100 pJ per penalty cycle
		}
		s := sched.MustNew(c.H.Cache(), sched.DefaultOptions())
		sch, err := s.Schedule(hda, w)
		if err != nil {
			return nil, err
		}
		out = append(out, ContextPenaltyPoint{PenaltyCycles: pen, Latency: sch.LatencySeconds(1.0), EDP: sch.EDP(1.0)})
	}
	return out, nil
}

// StrategyPoint compares DSE strategies (§IV-C): search quality vs the
// number of evaluated points.
type StrategyPoint struct {
	Strategy dse.Strategy
	Points   int
	BestEDP  float64
	Elapsed  time.Duration
}

// StrategyAblation runs exhaustive, binary and random searches of the
// same Maelstrom space (MLPerf on edge) and compares best-EDP quality.
func (c *Config) StrategyAblation() ([]StrategyPoint, error) {
	sp := dse.Space{Class: accel.Edge, Styles: MaelstromStyles(), PEUnits: 16, BWUnits: 8}
	w := workload.MLPerf(1)
	var out []StrategyPoint
	for _, strat := range []dse.Strategy{dse.Exhaustive, dse.Binary, dse.Random} {
		opts := dse.DefaultOptions()
		opts.Strategy = strat
		opts.Samples = 12
		opts.Seed = 7
		t0 := time.Now()
		r, err := dse.Search(c.H.Cache(), sp, w, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, StrategyPoint{
			Strategy: strat, Points: len(r.Points),
			BestEDP: r.Best.EDP, Elapsed: time.Since(t0),
		})
	}
	return out, nil
}

// edgeMaelstrom returns the fixed Table V edge partition used by the
// scheduler-side ablations.
func edgeMaelstrom() (*accel.HDA, error) {
	return accel.New("maelstrom-edge", accel.Edge, []accel.Partition{
		{Style: MaelstromStyles()[0], PEs: 128, BWGBps: 4},
		{Style: MaelstromStyles()[1], PEs: 896, BWGBps: 12},
	})
}

// AblationsReport renders all five ablations as one text report.
func (c *Config) AblationsReport() (string, error) {
	var b strings.Builder
	b.WriteString("Design-choice ablations (fixed Maelstrom edge design, AR/VR-B unless noted)\n\n")

	lbf, err := c.LbFAblation()
	if err != nil {
		return "", err
	}
	t := &table{header: []string{"load-balance factor", "latency", "energy", "EDP"}}
	for _, p := range lbf {
		name := fmt.Sprintf("%.2f", p.LbF)
		if math.IsInf(p.LbF, 1) {
			name = "disabled (+Inf)"
		}
		t.add(name, ms(p.Latency), mj(p.EnergyMJ), f3(p.EDP))
	}
	b.WriteString(t.String() + "\n")

	la, err := c.LookAheadAblation()
	if err != nil {
		return "", err
	}
	t = &table{header: []string{"look-ahead depth", "EDP", "sched time"}}
	for _, p := range la {
		t.add(fmt.Sprintf("%d", p.LookAhead), f3(p.EDP), p.SchedTime.String())
	}
	b.WriteString(t.String() + "\n")

	ords, err := c.OrderingAblation()
	if err != nil {
		return "", err
	}
	t = &table{header: []string{"initial ordering", "latency", "EDP"}}
	for _, p := range ords {
		t.add(p.Ordering.String(), ms(p.Latency), f3(p.EDP))
	}
	b.WriteString(t.String() + "\n")

	pens, err := c.ContextPenaltyAblation()
	if err != nil {
		return "", err
	}
	t = &table{header: []string{"context penalty (cycles/layer)", "latency", "EDP"}}
	for _, p := range pens {
		t.add(fmt.Sprintf("%d", p.PenaltyCycles), ms(p.Latency), f3(p.EDP))
	}
	b.WriteString(t.String() + "\n")

	strats, err := c.StrategyAblation()
	if err != nil {
		return "", err
	}
	t = &table{header: []string{"search strategy", "points", "best EDP", "time"}}
	for _, p := range strats {
		t.add(p.Strategy.String(), fmt.Sprintf("%d", p.Points), f3(p.BestEDP), p.Elapsed.Round(time.Millisecond).String())
	}
	b.WriteString(t.String())
	return b.String(), nil
}
