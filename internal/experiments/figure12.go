package experiments

import (
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/workload"
)

// Fig12Case is one single-DNN case study (UNet or ResNet50, batch 4,
// cloud accelerator).
type Fig12Case struct {
	Model string

	FDAs      []core.Eval
	BestFDA   core.Eval
	Maelstrom HDAEval
	RDA       core.Eval

	// The paper's observations for this case.
	MaelstromEDPGainPct      float64 // vs best FDA (paper: 26.4% UNet, 48.1% ResNet50)
	PaperMaelstromEDPGainPct float64
	RDALatencyGainPct        float64 // RDA vs Maelstrom (paper: 22.5% / 29.0%)
	PaperRDALatencyGainPct   float64
	RDAEnergyCostPct         float64 // RDA extra energy vs Maelstrom (paper: 11.7% / 15.8%)
	PaperRDAEnergyCostPct    float64
	BestFDAOnPareto          bool // paper: in the single-DNN case the best FDA is Pareto-optimal
}

// Fig12Result is the Figure 12 single-DNN study.
type Fig12Result struct {
	Cases []Fig12Case
}

// Figure12 runs UNet and ResNet50 at batch size four on the cloud
// class across FDAs, the Maelstrom HDA (with Herald-optimized
// partitioning) and the RDA.
func (c *Config) Figure12() (*Fig12Result, error) {
	paper := map[string][3]float64{
		// {Maelstrom EDP gain, RDA latency gain, RDA energy cost}
		"unet":     {26.4, 22.5, 11.7},
		"resnet50": {48.1, 29.0, 15.8},
	}
	res := &Fig12Result{}
	for _, model := range []string{"unet", "resnet50"} {
		w, err := workload.SingleDNN(model, 4)
		if err != nil {
			return nil, err
		}
		cs := Fig12Case{Model: model,
			PaperMaelstromEDPGainPct: paper[model][0],
			PaperRDALatencyGainPct:   paper[model][1],
			PaperRDAEnergyCostPct:    paper[model][2],
		}
		for _, s := range dataflow.AllStyles() {
			e, err := c.H.EvalFDA(accel.Cloud, s, w)
			if err != nil {
				return nil, err
			}
			cs.FDAs = append(cs.FDAs, e)
			if cs.BestFDA.Name == "" || e.EDP < cs.BestFDA.EDP {
				cs.BestFDA = e
			}
		}
		d, err := c.Maelstrom(accel.Cloud, w)
		if err != nil {
			return nil, err
		}
		cs.Maelstrom = HDAEval{Combo: "Maelstrom", Design: d, Eval: core.Eval{
			Name: "maelstrom", LatencySec: d.LatencySec, EnergyMJ: d.EnergyMJ, EDP: d.EDP,
		}}
		rda, err := c.H.EvalRDA(accel.Cloud, w)
		if err != nil {
			return nil, err
		}
		cs.RDA = rda

		cs.MaelstromEDPGainPct = pctVal(cs.Maelstrom.Eval.EDP, cs.BestFDA.EDP)
		cs.RDALatencyGainPct = pctVal(cs.RDA.LatencySec, cs.Maelstrom.Eval.LatencySec)
		cs.RDAEnergyCostPct = -pctVal(cs.RDA.EnergyMJ, cs.Maelstrom.Eval.EnergyMJ)

		all := append(append([]core.Eval(nil), cs.FDAs...), cs.Maelstrom.Eval, cs.RDA)
		cs.BestFDAOnPareto = onPareto(all, cs.BestFDA)
		res.Cases = append(res.Cases, cs)
	}
	return res, nil
}

func (r *Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 12 — single-DNN case study (batch 4, cloud accelerator)\n")
	for _, cs := range r.Cases {
		fmt.Fprintf(&b, "--- %s ---\n", cs.Model)
		t := &table{header: []string{"organization", "latency", "energy", "EDP (J*s)"}}
		for _, e := range cs.FDAs {
			t.add("FDA "+e.Name, ms(e.LatencySec), mj(e.EnergyMJ), f3(e.EDP))
		}
		t.add("HDA Maelstrom", ms(cs.Maelstrom.Eval.LatencySec), mj(cs.Maelstrom.Eval.EnergyMJ), f3(cs.Maelstrom.Eval.EDP))
		t.add("RDA", ms(cs.RDA.LatencySec), mj(cs.RDA.EnergyMJ), f3(cs.RDA.EDP))
		b.WriteString(t.String())
		fmt.Fprintf(&b, "paper: Maelstrom EDP gain vs best FDA %.1f%% -> measured %.1f%%\n",
			cs.PaperMaelstromEDPGainPct, cs.MaelstromEDPGainPct)
		fmt.Fprintf(&b, "paper: RDA latency gain vs Maelstrom %.1f%%  -> measured %.1f%%\n",
			cs.PaperRDALatencyGainPct, cs.RDALatencyGainPct)
		fmt.Fprintf(&b, "paper: RDA energy cost vs Maelstrom %.1f%%   -> measured %.1f%%\n",
			cs.PaperRDAEnergyCostPct, cs.RDAEnergyCostPct)
		fmt.Fprintf(&b, "paper: best FDA on Pareto curve (single-DNN) -> measured %v\n", cs.BestFDAOnPareto)
	}
	return b.String()
}
