package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/dnn"
	"repro/internal/maestro"
)

// Fig5Row is one (layer, style) cell of Figure 5's comparison.
type Fig5Row struct {
	Layer       string
	Style       dataflow.Style
	Utilization float64
	EDP         float64

	PaperUtilization float64 // the utilization the paper reports
}

// Fig5Result reproduces Figure 5: the impact of dataflow style on the
// three example layers (early-classification CONV2D, late-
// classification CONV2D, depth-wise CONV2D) on a 16-PE toy
// accelerator.
type Fig5Result struct {
	Rows []Fig5Row

	// UtilizationsMatch reports whether all six mapping utilizations
	// equal the paper's values exactly.
	UtilizationsMatch bool
	// PreferenceSigns reports whether the EDP preferences match the
	// figure: Shi-diannao wins layers 1 and 3, NVDLA wins layer 2.
	PreferenceSigns bool
}

// fig5Layers returns the figure's three example layers.
func fig5Layers() []dnn.Layer {
	return []dnn.Layer{
		{Name: "L1 early-CONV2D", Op: dnn.Conv2D, K: 2, C: 3, Y: 6, X: 6, R: 3, S: 3, Stride: 1},
		{Name: "L2 late-CONV2D", Op: dnn.Conv2D, K: 3, C: 16, Y: 4, X: 4, R: 3, S: 3, Stride: 1},
		{Name: "L3 DWCONV", Op: dnn.DWConv, K: 2, C: 2, Y: 6, X: 6, R: 3, S: 3, Stride: 1},
	}
}

// Figure5 evaluates the figure's layers on NVDLA- and Shi-diannao-
// style 16-PE accelerators.
func (c *Config) Figure5() (*Fig5Result, error) {
	hw := maestro.HW{PEs: 16, BWGBps: 4, L2Bytes: 64 << 10}
	paperUtil := map[string]map[dataflow.Style]float64{
		"L1 early-CONV2D": {dataflow.NVDLA: 0.375, dataflow.ShiDiannao: 1.0},
		"L2 late-CONV2D":  {dataflow.NVDLA: 1.0, dataflow.ShiDiannao: 0.25},
		"L3 DWCONV":       {dataflow.NVDLA: 0.125, dataflow.ShiDiannao: 1.0},
	}
	res := &Fig5Result{UtilizationsMatch: true}
	edp := map[string]map[dataflow.Style]float64{}
	layers := fig5Layers()
	for i := range layers {
		l := &layers[i]
		if err := l.Validate(); err != nil {
			return nil, err
		}
		edp[l.Name] = map[dataflow.Style]float64{}
		for _, s := range []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao} {
			cost := maestro.Estimate(l, s, hw, c.H.Cache().Table())
			row := Fig5Row{
				Layer:            l.Name,
				Style:            s,
				Utilization:      cost.Mapping.Utilization,
				EDP:              cost.EDP(1.0),
				PaperUtilization: paperUtil[l.Name][s],
			}
			if row.Utilization != row.PaperUtilization {
				res.UtilizationsMatch = false
			}
			res.Rows = append(res.Rows, row)
			edp[l.Name][s] = row.EDP
		}
	}
	res.PreferenceSigns = edp["L1 early-CONV2D"][dataflow.ShiDiannao] < edp["L1 early-CONV2D"][dataflow.NVDLA] &&
		edp["L2 late-CONV2D"][dataflow.NVDLA] < edp["L2 late-CONV2D"][dataflow.ShiDiannao] &&
		edp["L3 DWCONV"][dataflow.ShiDiannao] < edp["L3 DWCONV"][dataflow.NVDLA]
	return res, nil
}

func (r *Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5 — dataflow style impact on three example layers (16 PEs)\n")
	t := &table{header: []string{"layer", "style", "util", "paper util", "EDP"}}
	for _, row := range r.Rows {
		t.add(row.Layer, row.Style.String(),
			fmt.Sprintf("%.1f%%", 100*row.Utilization),
			fmt.Sprintf("%.1f%%", 100*row.PaperUtilization),
			f3(row.EDP))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "paper: all six utilizations            -> measured match: %v\n", r.UtilizationsMatch)
	fmt.Fprintf(&b, "paper: Shi wins L1/L3, NVDLA wins L2   -> measured match: %v\n", r.PreferenceSigns)
	return b.String()
}
