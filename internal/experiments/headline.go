package experiments

import (
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/sched"
)

// HeadlineResult aggregates the paper's §I / §V-B summary comparison:
// Maelstrom vs the best FDA, the SM-FDA, and the RDA, averaged across
// the three workloads × three accelerator classes.
type HeadlineResult struct {
	// Average percentage reductions (positive = Maelstrom lower).
	VsFDALatencyPct, VsFDAEnergyPct     float64
	VsSMFDALatencyPct, VsSMFDAEnergyPct float64
	VsRDALatencyPct, VsRDAEnergyPct     float64
	// Best-HDA EDP improvement over best FDA (paper: 73.6%).
	EDPImprovementPct float64

	// Paper-reported values for the same cells.
	PaperVsFDALatency, PaperVsFDAEnergy     float64
	PaperVsSMFDALatency, PaperVsSMFDAEnergy float64
	PaperVsRDALatency, PaperVsRDAEnergy     float64
	PaperEDPImprovement                     float64

	Scenarios int
}

// Headline computes the summary over all nine scenarios.
func (c *Config) Headline() (*HeadlineResult, error) {
	res := &HeadlineResult{
		PaperVsFDALatency: 65.3, PaperVsFDAEnergy: 5.0,
		PaperVsSMFDALatency: 63.1, PaperVsSMFDAEnergy: 4.1,
		PaperVsRDALatency: -20.7, PaperVsRDAEnergy: 22.0,
		PaperEDPImprovement: 73.6,
	}
	for _, w := range Workloads() {
		for _, class := range accel.Classes() {
			se, err := c.EvalScenario(class, w)
			if err != nil {
				return nil, err
			}
			m := se.Maelstrom.Eval
			res.VsFDALatencyPct += pctVal(m.LatencySec, se.BestFDA.LatencySec)
			res.VsFDAEnergyPct += pctVal(m.EnergyMJ, se.BestFDA.EnergyMJ)
			res.VsSMFDALatencyPct += pctVal(m.LatencySec, se.BestSMFDA.LatencySec)
			res.VsSMFDAEnergyPct += pctVal(m.EnergyMJ, se.BestSMFDA.EnergyMJ)
			res.VsRDALatencyPct += pctVal(m.LatencySec, se.RDA.LatencySec)
			res.VsRDAEnergyPct += pctVal(m.EnergyMJ, se.RDA.EnergyMJ)
			res.EDPImprovementPct += pctVal(se.BestHDA.Eval.EDP, se.BestFDA.EDP)
			res.Scenarios++
		}
	}
	n := float64(res.Scenarios)
	res.VsFDALatencyPct /= n
	res.VsFDAEnergyPct /= n
	res.VsSMFDALatencyPct /= n
	res.VsSMFDAEnergyPct /= n
	res.VsRDALatencyPct /= n
	res.VsRDAEnergyPct /= n
	res.EDPImprovementPct /= n
	return res, nil
}

func (r *HeadlineResult) String() string {
	var b strings.Builder
	b.WriteString("Headline summary — Maelstrom vs baselines, averaged over all scenarios\n")
	t := &table{header: []string{"comparison", "measured", "paper"}}
	row := func(name string, got, want float64) {
		t.add(name, fmt.Sprintf("%+.1f%%", got), fmt.Sprintf("%+.1f%%", want))
	}
	row("latency reduction vs best FDA", r.VsFDALatencyPct, r.PaperVsFDALatency)
	row("energy  reduction vs best FDA", r.VsFDAEnergyPct, r.PaperVsFDAEnergy)
	row("latency reduction vs SM-FDA", r.VsSMFDALatencyPct, r.PaperVsSMFDALatency)
	row("energy  reduction vs SM-FDA", r.VsSMFDAEnergyPct, r.PaperVsSMFDAEnergy)
	row("latency reduction vs RDA", r.VsRDALatencyPct, r.PaperVsRDALatency)
	row("energy  reduction vs RDA", r.VsRDAEnergyPct, r.PaperVsRDAEnergy)
	row("best-HDA EDP gain vs best FDA", r.EDPImprovementPct, r.PaperEDPImprovement)
	b.WriteString(t.String())
	b.WriteString("(signs are the reproduction target: HDA loses latency to RDA but wins energy)\n")
	return b.String()
}

// AblationResult compares Herald's scheduler against the naive greedy
// scheduler on the Maelstrom designs (§V-B "Efficacy of Scheduling
// Algorithm"; paper: 24.1% less EDP).
type AblationResult struct {
	Rows []AblationRow

	AvgEDPReductionPct   float64
	PaperEDPReductionPct float64
}

// AblationRow is one scenario of the scheduler comparison.
type AblationRow struct {
	Workload, Class      string
	HeraldEDP, GreedyEDP float64
}

// SchedulerAblation schedules every Maelstrom design with both
// schedulers.
func (c *Config) SchedulerAblation() (*AblationResult, error) {
	res := &AblationResult{PaperEDPReductionPct: 24.1}
	greedy := sched.MustNew(c.H.Cache(), sched.GreedyOptions())
	for _, w := range Workloads() {
		for _, class := range accel.Classes() {
			d, err := c.Maelstrom(class, w)
			if err != nil {
				return nil, err
			}
			gs, err := greedy.Schedule(d.HDA, w)
			if err != nil {
				return nil, err
			}
			row := AblationRow{
				Workload: w.Name, Class: class.Name,
				HeraldEDP: d.EDP, GreedyEDP: gs.EDP(1.0),
			}
			res.Rows = append(res.Rows, row)
			res.AvgEDPReductionPct += pctVal(row.HeraldEDP, row.GreedyEDP)
		}
	}
	res.AvgEDPReductionPct /= float64(len(res.Rows))
	return res, nil
}

func (r *AblationResult) String() string {
	var b strings.Builder
	b.WriteString("Scheduler ablation — Herald scheduler vs greedy scheduler on Maelstrom designs\n")
	t := &table{header: []string{"scenario", "Herald EDP", "greedy EDP", "reduction"}}
	for _, row := range r.Rows {
		t.add(row.Workload+", "+row.Class, f3(row.HeraldEDP), f3(row.GreedyEDP),
			fmt.Sprintf("%.1f%%", pctVal(row.HeraldEDP, row.GreedyEDP)))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "paper: Herald scheduler %.1f%% less EDP than greedy -> measured avg: %.1f%%\n",
		r.PaperEDPReductionPct, r.AvgEDPReductionPct)
	return b.String()
}
