package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/maestro"
	"repro/internal/workload"
)

// PreferenceRow is one workload's layer-preference census on one
// substrate size: what fraction of layers (and of MACs) has each
// dataflow style as its per-layer EDP winner.
type PreferenceRow struct {
	Workload string
	PEs      int

	LayerShare map[dataflow.Style]float64
	MACShare   map[dataflow.Style]float64
}

// PreferenceReport computes the census §V-B argues from ("more number
// of layers in the workloads prefer NVDLA style than Shi-diannao
// style"): for each workload, every layer is evaluated under all three
// styles on a full-class substrate and assigned to its EDP winner.
func (c *Config) PreferenceReport(pes int, bw float64, l2 int64) ([]PreferenceRow, error) {
	hw := maestro.HW{PEs: pes, BWGBps: bw, L2Bytes: l2}
	var out []PreferenceRow
	for _, w := range Workloads() {
		row := PreferenceRow{
			Workload:   w.Name,
			PEs:        pes,
			LayerShare: map[dataflow.Style]float64{},
			MACShare:   map[dataflow.Style]float64{},
		}
		var layers, macs float64
		for _, in := range w.Instances {
			for i := range in.Model.Layers {
				l := &in.Model.Layers[i]
				var best dataflow.Style
				bestEDP := 0.0
				for _, s := range dataflow.AllStyles() {
					cost := c.H.Cache().Estimate(l, s, hw)
					if edp := cost.EDP(1.0); bestEDP == 0 || edp < bestEDP {
						bestEDP, best = edp, s
					}
				}
				row.LayerShare[best]++
				row.MACShare[best] += float64(l.MACs())
				layers++
				macs += float64(l.MACs())
			}
		}
		for s := range row.LayerShare {
			row.LayerShare[s] /= layers
		}
		for s := range row.MACShare {
			row.MACShare[s] /= macs
		}
		out = append(out, row)
	}
	return out, nil
}

// PreferenceReportString renders the census for the cloud class.
func (c *Config) PreferenceReportString() (string, error) {
	rows, err := c.PreferenceReport(16384, 256, 16<<20)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Layer dataflow-preference census (per-layer EDP winner, cloud substrate)\n")
	t := &table{header: []string{"workload", "style", "layer share", "MAC share"}}
	for _, row := range rows {
		for _, s := range dataflow.AllStyles() {
			t.add(row.Workload, s.String(),
				fmt.Sprintf("%.1f%%", 100*row.LayerShare[s]),
				fmt.Sprintf("%.1f%%", 100*row.MACShare[s]))
		}
	}
	b.WriteString(t.String())
	b.WriteString("(the paper's §V-B observes most layers prefer NVDLA while the MAC-heavy\n" +
		" spatial layers prefer Shi-diannao — the tension Herald's partitioning resolves)\n")
	return b.String(), nil
}

var _ = workload.ARVRA // doc reference
