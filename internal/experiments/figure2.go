package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/dnn"
	"repro/internal/maestro"
)

// Fig2Point is one bar of Figure 2: a dataflow style running a model
// on the 256-PE / 32 GB/s accelerator.
type Fig2Point struct {
	Model      string
	Style      dataflow.Style
	LatencySec float64
	EnergyMJ   float64
	EDP        float64 // joule-seconds
}

// Fig2Result holds both plots of Figure 2.
type Fig2Result struct {
	Points []Fig2Point

	// The figure's qualitative claims.
	NVDLABestOnResNet bool // Fig. 2a: NVDLA lowest EDP on ResNet50
	NVDLAWorstOnUNet  bool // Fig. 2b: NVDLA highest EDP on UNet
	ShiBestOnUNet     bool // Fig. 2b: Shi-diannao lowest EDP on UNet
}

// Figure2 reproduces Figure 2: the EDP of ShiDianNao-, NVDLA- and
// Eyeriss-style FDAs on ResNet50 and UNet at 256 PEs and 32 GB/s NoC
// bandwidth, modeled within the common MAESTRO-style framework.
func (c *Config) Figure2() (*Fig2Result, error) {
	hw := maestro.HW{PEs: 256, BWGBps: 32, L2Bytes: 4 << 20}
	res := &Fig2Result{}
	edp := map[string]map[dataflow.Style]float64{}
	for _, model := range []string{"resnet50", "unet"} {
		m, err := dnn.ByName(model)
		if err != nil {
			return nil, err
		}
		edp[model] = map[dataflow.Style]float64{}
		for _, s := range dataflow.AllStyles() {
			mc := maestro.EstimateModel(m, s, hw, c.H.Cache().Table())
			p := Fig2Point{
				Model:      model,
				Style:      s,
				LatencySec: mc.Seconds(1.0),
				EnergyMJ:   mc.EnergyPJ * 1e-9,
				EDP:        mc.EDP(1.0),
			}
			res.Points = append(res.Points, p)
			edp[model][s] = p.EDP
		}
	}
	rn := edp["resnet50"]
	un := edp["unet"]
	res.NVDLABestOnResNet = rn[dataflow.NVDLA] < rn[dataflow.ShiDiannao] && rn[dataflow.NVDLA] < rn[dataflow.Eyeriss]
	res.NVDLAWorstOnUNet = un[dataflow.NVDLA] > un[dataflow.ShiDiannao] && un[dataflow.NVDLA] > un[dataflow.Eyeriss]
	res.ShiBestOnUNet = un[dataflow.ShiDiannao] < un[dataflow.NVDLA] && un[dataflow.ShiDiannao] < un[dataflow.Eyeriss]
	return res, nil
}

// String renders the figure as a table with the paper's claims.
func (r *Fig2Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 2 — FDA style EDP on ResNet50 and UNet (256 PEs, 32 GB/s)\n")
	t := &table{header: []string{"model", "style", "latency", "energy", "EDP (J*s)"}}
	for _, p := range r.Points {
		t.add(p.Model, p.Style.String(), ms(p.LatencySec), mj(p.EnergyMJ), f3(p.EDP))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "paper: NVDLA best on ResNet50            -> measured: %v\n", r.NVDLABestOnResNet)
	fmt.Fprintf(&b, "paper: NVDLA worst on UNet (by far)      -> measured: %v\n", r.NVDLAWorstOnUNet)
	fmt.Fprintf(&b, "paper: Shi-diannao best on UNet          -> measured: %v\n", r.ShiBestOnUNet)
	return b.String()
}
