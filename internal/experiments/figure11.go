package experiments

import (
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/workload"
)

// HDAEval is one co-designed HDA architecture evaluated on a scenario.
type HDAEval struct {
	Combo  string
	Eval   core.Eval
	Design *core.Design
}

// ScenarioEval evaluates every accelerator organization of Table III
// on one (workload, class) scenario: three FDAs, three 2-way SM-FDAs,
// the four HDA style combinations (each with Herald-optimized
// partitioning), and the MAERI-style RDA.
type ScenarioEval struct {
	Workload *workload.Workload
	Class    accel.Class

	FDAs   []core.Eval
	SMFDAs []core.Eval
	HDAs   []HDAEval
	RDA    core.Eval

	BestFDA   core.Eval
	BestSMFDA core.Eval
	BestHDA   HDAEval
	Maelstrom HDAEval
}

// EvalScenario evaluates (and memoizes via design caching) one
// scenario.
func (c *Config) EvalScenario(class accel.Class, w *workload.Workload) (*ScenarioEval, error) {
	se := &ScenarioEval{Workload: w, Class: class}

	for _, s := range dataflow.AllStyles() {
		e, err := c.H.EvalFDA(class, s, w)
		if err != nil {
			return nil, err
		}
		se.FDAs = append(se.FDAs, e)
		if se.BestFDA.Name == "" || e.EDP < se.BestFDA.EDP {
			se.BestFDA = e
		}

		sm, err := accel.NewSMFDA(class, s, 2)
		if err != nil {
			return nil, err
		}
		sme, err := c.H.EvalHDA(sm, w)
		if err != nil {
			return nil, err
		}
		se.SMFDAs = append(se.SMFDAs, sme)
		if se.BestSMFDA.Name == "" || sme.EDP < se.BestSMFDA.EDP {
			se.BestSMFDA = sme
		}
	}

	for _, combo := range HDACombos() {
		d, err := c.Design(class, combo.Styles, w)
		if err != nil {
			return nil, err
		}
		he := HDAEval{
			Combo:  combo.Name,
			Design: d,
			Eval: core.Eval{
				Name:       combo.Name,
				LatencySec: d.LatencySec,
				EnergyMJ:   d.EnergyMJ,
				EDP:        d.EDP,
			},
		}
		se.HDAs = append(se.HDAs, he)
		if se.BestHDA.Combo == "" || he.Eval.EDP < se.BestHDA.Eval.EDP {
			se.BestHDA = he
		}
		if strings.Contains(combo.Name, "Maelstrom") {
			se.Maelstrom = he
		}
	}

	rda, err := c.H.EvalRDA(class, w)
	if err != nil {
		return nil, err
	}
	se.RDA = rda
	return se, nil
}

// Fig11Result is the full nine-scenario design space of Figure 11.
type Fig11Result struct {
	Scenarios []*ScenarioEval

	// Per-scenario Pareto membership of the best HDA and the RDA over
	// the set {FDAs, SM-FDAs, HDAs, RDA} (the figure's headline: well
	// optimized HDA and RDA points are always on the Pareto curve).
	BestHDAOnPareto int
	RDAOnPareto     int
	// Scenarios where the best HDA beats the best FDA on EDP.
	HDABeatsFDACount int
	// Scenarios where the Maelstrom pair is the best of the four HDAs.
	MaelstromBestCount int
}

// classes evaluated by Figure 11 (all three in the paper).
func fig11Classes() []accel.Class { return accel.Classes() }

// Figure11 evaluates the complete design space: three workloads ×
// three accelerator classes × {FDA, SM-FDA, 4 HDAs, RDA}.
func (c *Config) Figure11() (*Fig11Result, error) {
	res := &Fig11Result{}
	for _, w := range Workloads() {
		for _, class := range fig11Classes() {
			se, err := c.EvalScenario(class, w)
			if err != nil {
				return nil, fmt.Errorf("scenario %s/%s: %w", w.Name, class.Name, err)
			}
			res.Scenarios = append(res.Scenarios, se)

			all := se.allEvals()
			if onPareto(all, se.BestHDA.Eval) {
				res.BestHDAOnPareto++
			}
			if onPareto(all, se.RDA) {
				res.RDAOnPareto++
			}
			if se.BestHDA.Eval.EDP < se.BestFDA.EDP {
				res.HDABeatsFDACount++
			}
			if se.BestHDA.Combo == se.Maelstrom.Combo {
				res.MaelstromBestCount++
			}
		}
	}
	return res, nil
}

// allEvals flattens every organization's point for Pareto checks.
func (se *ScenarioEval) allEvals() []core.Eval {
	var out []core.Eval
	out = append(out, se.FDAs...)
	out = append(out, se.SMFDAs...)
	for _, h := range se.HDAs {
		out = append(out, h.Eval)
	}
	out = append(out, se.RDA)
	return out
}

// onPareto reports whether e is non-dominated in the latency-energy
// plane among all points.
func onPareto(all []core.Eval, e core.Eval) bool {
	for _, p := range all {
		if p.LatencySec < e.LatencySec && p.EnergyMJ < e.EnergyMJ {
			return false
		}
	}
	return true
}

func (se *ScenarioEval) render(b *strings.Builder) {
	fmt.Fprintf(b, "--- %s on %s accelerator ---\n", se.Workload.Name, se.Class.Name)
	t := &table{header: []string{"organization", "latency", "energy", "EDP (J*s)", "partition"}}
	for _, e := range se.FDAs {
		t.add("FDA "+e.Name, ms(e.LatencySec), mj(e.EnergyMJ), f3(e.EDP), "")
	}
	for _, e := range se.SMFDAs {
		t.add("SM-FDA "+e.Name, ms(e.LatencySec), mj(e.EnergyMJ), f3(e.EDP), "")
	}
	for _, h := range se.HDAs {
		part := ""
		for i, sub := range h.Design.HDA.Subs {
			if i > 0 {
				part += " + "
			}
			part += fmt.Sprintf("%d PE/%g GBps", sub.HW.PEs, sub.HW.BWGBps)
		}
		t.add("HDA "+h.Combo, ms(h.Eval.LatencySec), mj(h.Eval.EnergyMJ), f3(h.Eval.EDP), part)
	}
	t.add("RDA (MAERI-style)", ms(se.RDA.LatencySec), mj(se.RDA.EnergyMJ), f3(se.RDA.EDP), "")
	b.WriteString(t.String())
}

func (r *Fig11Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 11 — design space of FDA / SM-FDA / HDA / RDA across workloads and classes\n")
	for _, se := range r.Scenarios {
		se.render(&b)
	}
	n := len(r.Scenarios)
	fmt.Fprintf(&b, "paper: well-optimized HDA always on Pareto curve -> measured: %d/%d scenarios\n", r.BestHDAOnPareto, n)
	fmt.Fprintf(&b, "paper: RDA always on Pareto curve                -> measured: %d/%d scenarios\n", r.RDAOnPareto, n)
	fmt.Fprintf(&b, "paper: best HDA beats best FDA (EDP)             -> measured: %d/%d scenarios\n", r.HDABeatsFDACount, n)
	fmt.Fprintf(&b, "paper: NVDLA+Shi (Maelstrom) best of 4 HDAs      -> measured: %d/%d scenarios\n", r.MaelstromBestCount, n)
	return b.String()
}
