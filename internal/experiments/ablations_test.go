package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dse"
)

func TestLbFAblation(t *testing.T) {
	c := NewQuick()
	pts, err := c.LbFAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("points = %d", len(pts))
	}
	// Disabled balancing (pure greedy preference) must not beat the
	// best balanced setting — the feedback loop earns its keep.
	var bestBalanced, disabled float64
	for _, p := range pts {
		if math.IsInf(p.LbF, 1) {
			disabled = p.EDP
		} else if bestBalanced == 0 || p.EDP < bestBalanced {
			bestBalanced = p.EDP
		}
	}
	if disabled < bestBalanced {
		t.Errorf("disabled balancing EDP %.4g beats best balanced %.4g", disabled, bestBalanced)
	}
}

func TestLookAheadAblation(t *testing.T) {
	c := NewQuick()
	pts, err := c.LookAheadAblation()
	if err != nil {
		t.Fatal(err)
	}
	// Post-processing must never regress EDP relative to depth 0.
	base := pts[0].EDP
	for _, p := range pts[1:] {
		if p.EDP > base*1.0001 {
			t.Errorf("look-ahead %d regressed EDP: %.4g > %.4g", p.LookAhead, p.EDP, base)
		}
	}
}

func TestOrderingAblation(t *testing.T) {
	c := NewQuick()
	pts, err := c.OrderingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.EDP <= 0 {
			t.Error("bad ordering point")
		}
	}
}

func TestContextPenaltyAblation(t *testing.T) {
	c := NewQuick()
	pts, err := c.ContextPenaltyAblation()
	if err != nil {
		t.Fatal(err)
	}
	// Per-layer costs are monotone in the penalty, but the *scheduled*
	// makespan need not be (a cost perturbation can nudge the greedy
	// assignment into a better global schedule), so we assert only the
	// meaningful end-to-end property: a large per-layer penalty must
	// make the schedule strictly worse than no penalty.
	first, last := pts[0], pts[len(pts)-1]
	if last.Latency <= first.Latency {
		t.Errorf("penalty %d should raise latency: %.4g <= %.4g",
			last.PenaltyCycles, last.Latency, first.Latency)
	}
	if last.EDP <= first.EDP {
		t.Errorf("penalty %d should raise EDP: %.4g <= %.4g",
			last.PenaltyCycles, last.EDP, first.EDP)
	}
}

func TestStrategyAblation(t *testing.T) {
	c := NewQuick()
	pts, err := c.StrategyAblation()
	if err != nil {
		t.Fatal(err)
	}
	var ex, bin, rnd StrategyPoint
	for _, p := range pts {
		switch p.Strategy {
		case dse.Exhaustive:
			ex = p
		case dse.Binary:
			bin = p
		case dse.Random:
			rnd = p
		}
	}
	if bin.Points >= ex.Points || rnd.Points >= ex.Points {
		t.Error("sampling strategies should evaluate fewer points than exhaustive")
	}
	// Sampled strategies cannot beat the exhaustive optimum.
	if bin.BestEDP < ex.BestEDP*0.9999 || rnd.BestEDP < ex.BestEDP*0.9999 {
		t.Errorf("sampled best beats exhaustive: ex %.4g bin %.4g rnd %.4g",
			ex.BestEDP, bin.BestEDP, rnd.BestEDP)
	}
}

func TestAblationsReport(t *testing.T) {
	c := NewQuick()
	rep, err := c.AblationsReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"load-balance factor", "look-ahead depth", "initial ordering", "context penalty", "search strategy"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
