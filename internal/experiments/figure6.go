package experiments

import (
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/dse"
	"repro/internal/workload"
)

// Fig6Point is one PE-partitioning design point of Figure 6.
type Fig6Point struct {
	ShiPEs, NVDLAPEs int
	EDP              float64
}

// Fig6Result reproduces Figure 6: the EDP of a two-sub-accelerator
// cloud HDA (ACC1 Shi-diannao, ACC2 NVDLA) across PE partitionings
// with naive (even) bandwidth partitioning, on AR/VR-A.
type Fig6Result struct {
	Points []Fig6Point
	Best   Fig6Point
	Even   Fig6Point

	// EvenPenaltyPct is how much worse the even 8K/8K split is than
	// the optimum of the PE-only sweep (the paper reports 17%; in our
	// cost model the PE-only optimum for this scenario lands on the
	// even split, so the non-triviality shows up in the joint PE+BW
	// space instead — see JointOptimumNonTrivial).
	EvenPenaltyPct      float64
	PaperEvenPenaltyPct float64
	// SpreadFactor is worst/best EDP across the sweep: how much the
	// partition choice matters (the motivation for systematic search).
	SpreadFactor float64
	// JointOptimumNonTrivial reports whether the full co-designed
	// Maelstrom for this scenario (PE and BW swept together) uses a
	// non-even partition.
	JointOptimumNonTrivial bool
}

// Figure6 sweeps PE partitions of the cloud class at naive 128/128
// GB/s bandwidth halving, scheduling AR/VR-A on every point.
func (c *Config) Figure6() (*Fig6Result, error) {
	sp := dse.Space{
		Class:   accel.Cloud,
		Styles:  []dataflow.Style{dataflow.ShiDiannao, dataflow.NVDLA},
		PEUnits: 16,
		BWUnits: 2, // naive halving: 128/128 GB/s
	}
	opts := dse.DefaultOptions()
	opts.Sched = c.H.SchedOptions()
	r, err := dse.Search(c.H.Cache(), sp, workload.ARVRA(), opts)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{PaperEvenPenaltyPct: 17}
	for _, p := range r.Points {
		// Keep only the even-bandwidth row of the sweep.
		if p.HDA.Subs[0].HW.BWGBps != p.HDA.Subs[1].HW.BWGBps {
			continue
		}
		fp := Fig6Point{
			ShiPEs:   p.HDA.Subs[0].HW.PEs,
			NVDLAPEs: p.HDA.Subs[1].HW.PEs,
			EDP:      p.EDP,
		}
		res.Points = append(res.Points, fp)
		if res.Best.EDP == 0 || fp.EDP < res.Best.EDP {
			res.Best = fp
		}
		if fp.ShiPEs == fp.NVDLAPEs {
			res.Even = fp
		}
	}
	if res.Best.EDP > 0 {
		res.EvenPenaltyPct = (res.Even.EDP - res.Best.EDP) / res.Best.EDP * 100
		worst := res.Best.EDP
		for _, p := range res.Points {
			if p.EDP > worst {
				worst = p.EDP
			}
		}
		res.SpreadFactor = worst / res.Best.EDP
	}
	// The joint PE+BW optimum at the paper's granularity (independent
	// of this Config's coarser test granularity). Only the winning
	// partition is read, so the 105-point sweep runs best-only with
	// bound pruning.
	d, err := c.H.CoDesignBest(accel.Cloud, MaelstromStyles(), workload.ARVRA(), 16, 8, dse.Exhaustive)
	if err != nil {
		return nil, err
	}
	res.JointOptimumNonTrivial = d.HDA.Subs[0].HW.PEs != d.HDA.Subs[1].HW.PEs ||
		d.HDA.Subs[0].HW.BWGBps != d.HDA.Subs[1].HW.BWGBps
	return res, nil
}

func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6 — PE partitioning sweep (cloud, AR/VR-A, Shi+NVDLA, naive 128/128 GB/s)\n")
	t := &table{header: []string{"Shi PEs", "NVDLA PEs", "EDP (J*s)", ""}}
	for _, p := range r.Points {
		mark := ""
		if p == r.Best {
			mark = "<- best"
		} else if p.ShiPEs == p.NVDLAPEs {
			mark = "<- even split"
		}
		t.add(fmt.Sprintf("%d", p.ShiPEs), fmt.Sprintf("%d", p.NVDLAPEs), f3(p.EDP), mark)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "paper: even 8K/8K split %.0f%% worse than PE-sweep optimum -> measured: %.1f%% worse\n",
		r.PaperEvenPenaltyPct, r.EvenPenaltyPct)
	fmt.Fprintf(&b, "paper: partitioning choice matters (wide EDP range)       -> measured spread: %.2fx worst/best\n",
		r.SpreadFactor)
	fmt.Fprintf(&b, "paper: optimal partitioning is non-trivial                -> measured joint PE+BW optimum non-even: %v\n",
		r.JointOptimumNonTrivial)
	return b.String()
}
