package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/workload"
)

// T7Row is one row of Table VII: the scheduling time for one workload
// on an HDA with a given number of sub-accelerators.
type T7Row struct {
	Workload string
	Layers   int
	SubAccs  int

	SchedulingTime time.Duration
	MsPerLayer     float64

	PaperSeconds float64 // the paper's laptop-measured seconds
}

// T7Result is the scheduling-time study. The paper reports seconds on
// an i9-9880H laptop (11.09 ms per layer per design point on average);
// our native-Go scheduler is orders of magnitude faster, so the
// comparison is informative, not matched.
type T7Result struct {
	Rows            []T7Row
	AvgMsPerLayer   float64
	PaperMsPerLayer float64
}

// TableVII measures Herald's scheduling time for each workload on 2-
// and 3-way cloud HDAs (Maelstrom styles and the 3-way combo).
func (c *Config) TableVII() (*T7Result, error) {
	paper := map[string]map[int]float64{
		"AR/VR-A":   {2: 2.89, 3: 4.32},
		"AR/VR-B":   {2: 3.98, 3: 10.74},
		"MLPerf-b1": {2: 1.61, 3: 3.22},
	}
	res := &T7Result{PaperMsPerLayer: 11.09}
	var totalMs, totalLayers float64
	for _, w := range Workloads() {
		for _, styles := range [][]dataflow.Style{
			MaelstromStyles(),
			{dataflow.NVDLA, dataflow.ShiDiannao, dataflow.Eyeriss},
		} {
			d, err := c.Design(accel.Cloud, styles, w)
			if err != nil {
				return nil, err
			}
			// Re-schedule on the optimized design to time scheduling in
			// isolation (co-design amortizes cost-model cache warmup).
			sch, err := c.H.Compile(d.HDA, w)
			if err != nil {
				return nil, err
			}
			row := T7Row{
				Workload:       w.Name,
				Layers:         w.TotalLayers(),
				SubAccs:        len(styles),
				SchedulingTime: sch.SchedulingTime,
				MsPerLayer:     float64(sch.SchedulingTime.Microseconds()) / 1000 / float64(w.TotalLayers()),
				PaperSeconds:   paper[w.Name][len(styles)],
			}
			res.Rows = append(res.Rows, row)
			totalMs += float64(sch.SchedulingTime.Microseconds()) / 1000
			totalLayers += float64(w.TotalLayers())
		}
	}
	if totalLayers > 0 {
		res.AvgMsPerLayer = totalMs / totalLayers
	}
	return res, nil
}

func (r *T7Result) String() string {
	var b strings.Builder
	b.WriteString("Table VII — scheduling time per workload and sub-accelerator count\n")
	t := &table{header: []string{"workload", "# layers", "# sub-accs", "sched time (ours)", "paper (s)"}}
	for _, row := range r.Rows {
		t.add(row.Workload, fmt.Sprintf("%d", row.Layers), fmt.Sprintf("%d", row.SubAccs),
			row.SchedulingTime.String(), fmt.Sprintf("%.2f", row.PaperSeconds))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "paper: 11.09 ms/layer on an i9 laptop -> measured avg: %.4f ms/layer\n", r.AvgMsPerLayer)
	return b.String()
}

// TableII renders the workload inventory.
func TableII() string {
	var b strings.Builder
	b.WriteString("Table II — heterogeneous multi-DNN workloads\n")
	t := &table{header: []string{"workload", "instances", "layers", "GMACs"}}
	for _, w := range Workloads() {
		t.add(w.Name, fmt.Sprintf("%d", w.NumInstances()), fmt.Sprintf("%d", w.TotalLayers()),
			fmt.Sprintf("%.1f", float64(w.TotalMACs())/1e9))
	}
	w8 := workload.MLPerf(8)
	t.add(w8.Name, fmt.Sprintf("%d", w8.NumInstances()), fmt.Sprintf("%d", w8.TotalLayers()),
		fmt.Sprintf("%.1f", float64(w8.TotalMACs())/1e9))
	b.WriteString(t.String())
	return b.String()
}

// TableIV renders the accelerator classes.
func TableIV() string {
	var b strings.Builder
	b.WriteString("Table IV — accelerator classes\n")
	t := &table{header: []string{"class", "PEs", "NoC BW", "global memory"}}
	for _, cl := range accel.Classes() {
		t.add(cl.Name, fmt.Sprintf("%d", cl.PEs), fmt.Sprintf("%g GB/s", cl.BWGBps),
			fmt.Sprintf("%d MiB", cl.GlobalBufBytes>>20))
	}
	b.WriteString(t.String())
	return b.String()
}
