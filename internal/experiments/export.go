package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteFigure11CSV exports every design point of the Figure 11 space
// as CSV (one row per organization per scenario), ready for external
// plotting of the latency-energy planes.
func WriteFigure11CSV(w io.Writer, r *Fig11Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "class", "organization", "kind",
		"latency_s", "energy_mj", "edp_js", "partition"}); err != nil {
		return err
	}
	for _, se := range r.Scenarios {
		write := func(kind, name, partition string, lat, e, edp float64) error {
			return cw.Write([]string{
				se.Workload.Name, se.Class.Name, name, kind,
				fmt.Sprintf("%.6g", lat), fmt.Sprintf("%.6g", e), fmt.Sprintf("%.6g", edp),
				partition,
			})
		}
		for _, ev := range se.FDAs {
			if err := write("fda", ev.Name, "", ev.LatencySec, ev.EnergyMJ, ev.EDP); err != nil {
				return err
			}
		}
		for _, ev := range se.SMFDAs {
			if err := write("sm-fda", ev.Name, "", ev.LatencySec, ev.EnergyMJ, ev.EDP); err != nil {
				return err
			}
		}
		for _, h := range se.HDAs {
			part := ""
			for i, sub := range h.Design.HDA.Subs {
				if i > 0 {
					part += " + "
				}
				part += fmt.Sprintf("%s:%dPE/%gGBps", sub.Style, sub.HW.PEs, sub.HW.BWGBps)
			}
			if err := write("hda", h.Combo, part, h.Eval.LatencySec, h.Eval.EnergyMJ, h.Eval.EDP); err != nil {
				return err
			}
		}
		if err := write("rda", se.RDA.Name, "", se.RDA.LatencySec, se.RDA.EnergyMJ, se.RDA.EDP); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
