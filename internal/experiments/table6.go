package experiments

import (
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/workload"
)

// T6Row is one (class, batch size) row of Table VI: the HDA's latency
// and energy gain against the best-EDP FDA and against the RDA on the
// MLPerf workload.
type T6Row struct {
	Class string
	Batch int

	LatencyGainVsFDA float64
	EnergyGainVsFDA  float64
	LatencyGainVsRDA float64
	EnergyGainVsRDA  float64

	PaperLatVsFDA, PaperEVsFDA float64
	PaperLatVsRDA, PaperEVsRDA float64
}

// T6Result is the Table VI batch-size study.
type T6Result struct {
	Rows []T6Row

	// HDA's edge over the RDA must grow with batch size (the paper's
	// takeaway: "HDA prefers large batch sizes").
	GainGrowsWithBatch bool
}

// TableVI evaluates the MLPerf workload at batch sizes 1 and 8 on all
// three classes: the Maelstrom HDA (Herald-optimized per scenario)
// against the best FDA and the RDA.
func (c *Config) TableVI() (*T6Result, error) {
	paper := map[string][4]float64{
		// class|batch -> {lat vs FDA, E vs FDA, lat vs RDA, E vs RDA}
		"edge|1":   {12.4, 0.2, -8.2, 20.4},
		"edge|8":   {21.28, 10.8, 26.7, 22.9},
		"mobile|1": {12.4, 0.2, -8.2, 17.1},
		"mobile|8": {56.0, 1.3, 76.1, 43.5},
		"cloud|1":  {20.2, 10.8, 25.7, 26.8},
		"cloud|8":  {63.9, 1.34, 80.4, 41.3},
	}
	res := &T6Result{}
	sumGain := map[int]float64{}
	for _, class := range accel.Classes() {
		for _, batch := range []int{1, 8} {
			w := workload.MLPerf(batch)
			d, err := c.Maelstrom(class, w)
			if err != nil {
				return nil, err
			}
			var bestFDA struct {
				lat, e, edp float64
			}
			for _, s := range dataflow.AllStyles() {
				e, err := c.H.EvalFDA(class, s, w)
				if err != nil {
					return nil, err
				}
				if bestFDA.edp == 0 || e.EDP < bestFDA.edp {
					bestFDA.lat, bestFDA.e, bestFDA.edp = e.LatencySec, e.EnergyMJ, e.EDP
				}
			}
			rda, err := c.H.EvalRDA(class, w)
			if err != nil {
				return nil, err
			}
			p := paper[class.Name+"|"+itoa(batch)]
			row := T6Row{
				Class: class.Name, Batch: batch,
				LatencyGainVsFDA: pctVal(d.LatencySec, bestFDA.lat),
				EnergyGainVsFDA:  pctVal(d.EnergyMJ, bestFDA.e),
				LatencyGainVsRDA: pctVal(d.LatencySec, rda.LatencySec),
				EnergyGainVsRDA:  pctVal(d.EnergyMJ, rda.EnergyMJ),
				PaperLatVsFDA:    p[0], PaperEVsFDA: p[1],
				PaperLatVsRDA: p[2], PaperEVsRDA: p[3],
			}
			res.Rows = append(res.Rows, row)
			sumGain[batch] += row.LatencyGainVsRDA + row.EnergyGainVsRDA
		}
	}
	res.GainGrowsWithBatch = sumGain[8] > sumGain[1]
	return res, nil
}

func itoa(i int) string { return fmt.Sprintf("%d", i) }

func (r *T6Result) String() string {
	var b strings.Builder
	b.WriteString("Table VI — Maelstrom gains vs best FDA and RDA across MLPerf batch sizes\n")
	t := &table{header: []string{"class", "batch",
		"lat vs FDA (ours/paper)", "E vs FDA (ours/paper)",
		"lat vs RDA (ours/paper)", "E vs RDA (ours/paper)"}}
	for _, row := range r.Rows {
		t.add(row.Class, itoa(row.Batch),
			fmt.Sprintf("%+.1f%% / %+.1f%%", row.LatencyGainVsFDA, row.PaperLatVsFDA),
			fmt.Sprintf("%+.1f%% / %+.1f%%", row.EnergyGainVsFDA, row.PaperEVsFDA),
			fmt.Sprintf("%+.1f%% / %+.1f%%", row.LatencyGainVsRDA, row.PaperLatVsRDA),
			fmt.Sprintf("%+.1f%% / %+.1f%%", row.EnergyGainVsRDA, row.PaperEVsRDA))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "paper: HDA's edge over RDA grows with batch size -> measured: %v\n", r.GainGrowsWithBatch)
	return b.String()
}
