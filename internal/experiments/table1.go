package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dnn"
)

// T1Row is one model row of Table I.
type T1Row struct {
	Task, Model string
	Stats       dnn.RatioStats
	Ops         []dnn.Op

	PaperMin, PaperMedian, PaperMax float64
}

// T1Result reproduces Table I: the heterogeneity of the AR/VR models'
// channel-activation size ratios and operator sets.
type T1Result struct {
	Rows []T1Row

	// MaxSpreadFactor is the ratio between the workload-wide largest
	// and smallest channel-activation ratios (the paper quotes
	// 315,076x for its model suite).
	MaxSpreadFactor      float64
	PaperMaxSpreadFactor float64
}

// TableI computes the shape statistics of the five AR/VR models.
func TableI() (*T1Result, error) {
	rows := []T1Row{
		{Task: "Object Detection", Model: "mobilenetv2", PaperMin: 0.013, PaperMedian: 13.714, PaperMax: 1280},
		{Task: "Object Classification", Model: "resnet50", PaperMin: 0.013, PaperMedian: 18.286, PaperMax: 292.571},
		{Task: "Hand Tracking", Model: "unet", PaperMin: 0.002, PaperMedian: 1.855, PaperMax: 34.133},
		{Task: "Hand Pose Estimation", Model: "brq-handpose", PaperMin: 0.016, PaperMedian: 1024, PaperMax: 1024},
		{Task: "Depth Estimation", Model: "fl-depthnet", PaperMin: 0.013, PaperMedian: 4.571, PaperMax: 4096},
	}
	res := &T1Result{PaperMaxSpreadFactor: 315076}
	min, max := 0.0, 0.0
	for i := range rows {
		m, err := dnn.ByName(rows[i].Model)
		if err != nil {
			return nil, err
		}
		rows[i].Stats = m.RatioStats()
		rows[i].Ops = m.Ops()
		if min == 0 || rows[i].Stats.Min < min {
			min = rows[i].Stats.Min
		}
		if rows[i].Stats.Max > max {
			max = rows[i].Stats.Max
		}
	}
	res.Rows = rows
	if min > 0 {
		res.MaxSpreadFactor = max / min
	}
	return res, nil
}

func (r *T1Result) String() string {
	var b strings.Builder
	b.WriteString("Table I — heterogeneity in DNN models used in AR/VR workloads\n")
	t := &table{header: []string{"task", "model", "min (ours/paper)", "median (ours/paper)", "max (ours/paper)", "operators"}}
	for _, row := range r.Rows {
		ops := make([]string, len(row.Ops))
		for i, o := range row.Ops {
			ops[i] = o.String()
		}
		t.add(row.Task, row.Model,
			fmt.Sprintf("%.3f / %.3f", row.Stats.Min, row.PaperMin),
			fmt.Sprintf("%.3f / %.3f", row.Stats.Median, row.PaperMedian),
			fmt.Sprintf("%.3f / %.3f", row.Stats.Max, row.PaperMax),
			strings.Join(ops, ","))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "paper: largest/smallest ratio spread %.0fx -> measured %.0fx\n",
		r.PaperMaxSpreadFactor, r.MaxSpreadFactor)
	return b.String()
}
