// Package experiments regenerates every table and figure of the
// paper's evaluation (§V). Each driver returns a structured result and
// renders a text table that places our measured values next to the
// values the paper reports, so EXPERIMENTS.md can record the
// comparison. Absolute numbers are not expected to match (our cost
// model is a reimplementation, not the authors' testbed); orderings
// and rough factors are.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dse"
	"repro/internal/workload"
)

// Config carries the shared Herald instance, search granularities, and
// a memo of co-designed HDAs so the many drivers that need "the best
// Maelstrom for scenario X" pay for each search once.
type Config struct {
	H *core.Herald

	// DSE granularity for 2-way and 3-way HDAs.
	PEUnits2, BWUnits2 int
	PEUnits3, BWUnits3 int

	mu       sync.Mutex
	designs  map[string]*core.Design
	sweepers map[string]*sweeperEntry
}

// sweeperEntry is one memoized dse.Sweeper plus its own lock: a
// Sweeper is not safe for concurrent Sweeps, and serializing per
// (class, styles) handle — instead of per Config — keeps unrelated
// scenario searches parallel.
type sweeperEntry struct {
	mu sync.Mutex
	sw *dse.Sweeper
}

// New returns the full-fidelity configuration used by cmd/experiments
// and the benchmarks.
func New() *Config {
	return &Config{
		H:        core.Default(),
		PEUnits2: 16, BWUnits2: 8,
		PEUnits3: 8, BWUnits3: 4,
		designs:  map[string]*core.Design{},
		sweepers: map[string]*sweeperEntry{},
	}
}

// NewQuick returns a coarse-granularity configuration for unit tests.
func NewQuick() *Config {
	return &Config{
		H:        core.Default(),
		PEUnits2: 8, BWUnits2: 4,
		PEUnits3: 4, BWUnits3: 3,
		designs:  map[string]*core.Design{},
		sweepers: map[string]*sweeperEntry{},
	}
}

// StyleCombo names one HDA style combination of Table III.
type StyleCombo struct {
	Name   string
	Styles []dataflow.Style
}

// HDACombos returns the four HDA architectures of Table III, with the
// paper's name for the NVDLA+Shi-diannao pair.
func HDACombos() []StyleCombo {
	return []StyleCombo{
		{"NVDLA+Shi (Maelstrom)", []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao}},
		{"Shi+Eyeriss", []dataflow.Style{dataflow.ShiDiannao, dataflow.Eyeriss}},
		{"Eyeriss+NVDLA", []dataflow.Style{dataflow.Eyeriss, dataflow.NVDLA}},
		{"NVDLA+Shi+Eyeriss", []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao, dataflow.Eyeriss}},
	}
}

// MaelstromStyles is the dataflow pair of the paper's identified
// architecture.
func MaelstromStyles() []dataflow.Style {
	return []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao}
}

// Workloads returns the three Table II workloads at main-evaluation
// batch sizes.
func Workloads() []*workload.Workload { return workload.Evaluated() }

// Design co-designs (and memoizes) the best HDA for a style combo on a
// workload and class. The search runs on a memoized per-(class,
// styles) dse.Sweeper in pruned best-only mode: the figure drivers
// only read the winning partition and its metrics, so the cloud is
// streamed rather than retained, provably-losing partitions are bound-
// pruned, and re-designs of the same space for another workload (the
// Figure 11/13 grids) reuse warm schedulers, HDAs and cost columns.
func (c *Config) Design(class accel.Class, styles []dataflow.Style, w *workload.Workload) (*core.Design, error) {
	key := class.Name + "|" + w.Name + "|" + comboKey(styles)
	c.mu.Lock()
	d, ok := c.designs[key]
	c.mu.Unlock()
	if ok {
		return d, nil
	}
	entry, err := c.sweeper(class, styles)
	if err != nil {
		return nil, err
	}
	entry.mu.Lock()
	res, err := entry.sw.Sweep(w)
	entry.mu.Unlock()
	if err != nil {
		return nil, err
	}
	d = core.DesignFromResult(res)
	c.mu.Lock()
	c.designs[key] = d
	c.mu.Unlock()
	return d, nil
}

// sweeper returns (building and memoizing) the pruned best-only
// Sweeper of one (class, styles) space.
func (c *Config) sweeper(class accel.Class, styles []dataflow.Style) (*sweeperEntry, error) {
	pe, bw := c.PEUnits2, c.BWUnits2
	if len(styles) >= 3 {
		pe, bw = c.PEUnits3, c.BWUnits3
	}
	key := class.Name + "|" + comboKey(styles)
	c.mu.Lock()
	entry, ok := c.sweepers[key]
	c.mu.Unlock()
	if ok {
		return entry, nil
	}
	sp := dse.Space{Class: class, Styles: styles, PEUnits: pe, BWUnits: bw}
	opts := dse.Options{Strategy: dse.Exhaustive, Sched: c.H.SchedOptions(), BestOnly: true, Prune: true}
	sw, err := dse.NewSweeper(c.H.Cache(), sp, opts)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if prev, ok := c.sweepers[key]; ok {
		entry = prev // lost the build race; keep one canonical handle
	} else {
		entry = &sweeperEntry{sw: sw}
		c.sweepers[key] = entry
	}
	c.mu.Unlock()
	return entry, nil
}

// Maelstrom co-designs the NVDLA+Shi-diannao HDA for a scenario.
func (c *Config) Maelstrom(class accel.Class, w *workload.Workload) (*core.Design, error) {
	return c.Design(class, MaelstromStyles(), w)
}

func comboKey(styles []dataflow.Style) string {
	parts := make([]string, len(styles))
	for i, s := range styles {
		parts[i] = s.String()
	}
	return strings.Join(parts, "+")
}

// pct renders a relative difference (a vs b) as "x% lower/higher".
func pct(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	d := (b - a) / b * 100
	if d >= 0 {
		return fmt.Sprintf("%.1f%% lower", d)
	}
	return fmt.Sprintf("%.1f%% higher", -d)
}

// pctVal returns the relative reduction of a vs b in percent (positive
// means a is lower than b).
func pctVal(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (b - a) / b * 100
}

// table is a minimal aligned-text table writer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.4g", v) }

func ms(sec float64) string { return fmt.Sprintf("%.2f ms", sec*1e3) }

func mj(v float64) string { return fmt.Sprintf("%.1f mJ", v) }
