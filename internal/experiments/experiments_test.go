package experiments

import (
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/workload"
)

func TestTableI(t *testing.T) {
	r, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The spread is the paper's qualitative point: several orders of
	// magnitude of shape heterogeneity.
	if r.MaxSpreadFactor < 1e5 {
		t.Errorf("spread factor %.0f, want > 1e5", r.MaxSpreadFactor)
	}
	if !strings.Contains(r.String(), "Table I") {
		t.Error("render")
	}
}

func TestFigure2Claims(t *testing.T) {
	c := NewQuick()
	r, err := c.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if !r.NVDLABestOnResNet {
		t.Error("Fig. 2a claim failed: NVDLA not best on ResNet50")
	}
	if !r.NVDLAWorstOnUNet {
		t.Error("Fig. 2b claim failed: NVDLA not worst on UNet")
	}
	if !r.ShiBestOnUNet {
		t.Error("Fig. 2b claim failed: Shi-diannao not best on UNet")
	}
	if len(r.Points) != 6 {
		t.Errorf("points = %d, want 6", len(r.Points))
	}
	_ = r.String()
}

func TestFigure5Claims(t *testing.T) {
	c := NewQuick()
	r, err := c.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if !r.UtilizationsMatch {
		t.Error("Fig. 5 utilizations do not match the paper exactly")
	}
	if !r.PreferenceSigns {
		t.Error("Fig. 5 EDP preference signs do not match")
	}
	_ = r.String()
}

func TestFigure6Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("cloud sweep")
	}
	c := NewQuick()
	r, err := c.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if r.SpreadFactor < 1.3 {
		t.Errorf("Fig. 6: partition choice should matter (spread %.2fx, want > 1.3x)", r.SpreadFactor)
	}
	if len(r.Points) != 15 {
		t.Errorf("Fig. 6: %d sweep points, want 15", len(r.Points))
	}
	_ = r.String()
}

func TestScenarioEvalEdgeMLPerf(t *testing.T) {
	c := NewQuick()
	se, err := c.EvalScenario(accel.Edge, workload.MLPerf(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(se.FDAs) != 3 || len(se.SMFDAs) != 3 || len(se.HDAs) != 4 {
		t.Fatalf("incomplete scenario: %d FDAs %d SMFDAs %d HDAs", len(se.FDAs), len(se.SMFDAs), len(se.HDAs))
	}
	// Paper sign: the best HDA beats the best FDA on EDP.
	if se.BestHDA.Eval.EDP >= se.BestFDA.EDP {
		t.Errorf("best HDA EDP %.4g should beat best FDA %.4g", se.BestHDA.Eval.EDP, se.BestFDA.EDP)
	}
	// Paper sign: RDA is latency-lean, energy-expensive vs Maelstrom.
	if se.RDA.EnergyMJ <= se.Maelstrom.Eval.EnergyMJ {
		t.Errorf("RDA energy %.4g should exceed Maelstrom's %.4g", se.RDA.EnergyMJ, se.Maelstrom.Eval.EnergyMJ)
	}
}

func TestDesignMemoized(t *testing.T) {
	c := NewQuick()
	w := workload.MLPerf(1)
	d1, err := c.Maelstrom(accel.Edge, w)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.Maelstrom(accel.Edge, w)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("co-designs should be memoized")
	}
}

func TestTableVIIFast(t *testing.T) {
	if testing.Short() {
		t.Skip("full DSE")
	}
	c := NewQuick()
	r, err := c.TableVII()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 workloads x 2 sub-acc counts)", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.SchedulingTime <= 0 {
			t.Errorf("%s/%d: no scheduling time recorded", row.Workload, row.SubAccs)
		}
	}
	if r.AvgMsPerLayer <= 0 {
		t.Error("ms/layer not computed")
	}
	_ = r.String()
}

func TestInventoryRenders(t *testing.T) {
	if !strings.Contains(TableII(), "AR/VR-A") {
		t.Error("Table II render")
	}
	if !strings.Contains(TableIV(), "cloud") {
		t.Error("Table IV render")
	}
}
