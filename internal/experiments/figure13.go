package experiments

import (
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/workload"
)

// Fig13Cell is the average latency/energy of one accelerator
// organization running one workload (averaged across the three
// accelerator classes), as in Figure 13's bars.
type Fig13Cell struct {
	Accelerator string
	Workload    string
	LatencySec  float64
	EnergyMJ    float64
}

// Fig13Result is the workload-change robustness study: HDA designs
// optimized for workload X are fixed and re-scheduled (layer scheduling
// only) for workloads Y and Z.
type Fig13Result struct {
	Cells []Fig13Cell

	// AvgMismatchLatencyPct / AvgMismatchEnergyPct: the average
	// latency/energy increase of running a mismatched HDA (optimized
	// for another workload) relative to the matched one (paper: 4.0%
	// and 0.1% on average).
	AvgMismatchLatencyPct float64
	AvgMismatchEnergyPct  float64
	PaperMismatchLatency  float64
	PaperMismatchEnergy   float64
}

// Figure13 fixes HDA-A/HDA-B/HDA-M (Maelstrom designs optimized for
// AR/VR-A, AR/VR-B and MLPerf) and runs every workload on each,
// alongside the FDA, SM-FDA and RDA references.
func (c *Config) Figure13() (*Fig13Result, error) {
	res := &Fig13Result{PaperMismatchLatency: 4.0, PaperMismatchEnergy: 0.1}
	workloads := Workloads()
	names := []string{"HDA-A", "HDA-B", "HDA-M"}

	var mismatchLat, mismatchE float64
	var mismatchN int

	for wi, target := range workloads {
		// Reference organizations, averaged across classes.
		var fdaLat, fdaE, smLat, smE, rdaLat, rdaE float64
		for _, class := range accel.Classes() {
			se, err := c.EvalScenario(class, target)
			if err != nil {
				return nil, err
			}
			fdaLat += se.BestFDA.LatencySec
			fdaE += se.BestFDA.EnergyMJ
			smLat += se.BestSMFDA.LatencySec
			smE += se.BestSMFDA.EnergyMJ
			rdaLat += se.RDA.LatencySec
			rdaE += se.RDA.EnergyMJ
		}
		n := float64(len(accel.Classes()))
		res.Cells = append(res.Cells,
			Fig13Cell{"FDA", target.Name, fdaLat / n, fdaE / n},
			Fig13Cell{"SFDA", target.Name, smLat / n, smE / n},
			Fig13Cell{"RDA", target.Name, rdaLat / n, rdaE / n})

		// The three fixed HDA designs (per class, designs optimized
		// for each source workload), re-scheduled for the target.
		for si, source := range workloads {
			var lat, e float64
			for _, class := range accel.Classes() {
				d, err := c.Maelstrom(class, source)
				if err != nil {
					return nil, err
				}
				sch, err := c.H.Compile(d.HDA, target)
				if err != nil {
					return nil, err
				}
				lat += sch.LatencySeconds(1.0)
				e += sch.EnergyMJ()
			}
			cell := Fig13Cell{names[si], target.Name, lat / n, e / n}
			res.Cells = append(res.Cells, cell)
			if si != wi {
				// Mismatch penalty vs the matched design.
				var mLat, mE float64
				for _, class := range accel.Classes() {
					d, err := c.Maelstrom(class, target)
					if err != nil {
						return nil, err
					}
					mLat += d.LatencySec
					mE += d.EnergyMJ
				}
				mLat /= n
				mE /= n
				mismatchLat += -pctVal(cell.LatencySec, mLat)
				mismatchE += -pctVal(cell.EnergyMJ, mE)
				mismatchN++
			}
		}
	}
	if mismatchN > 0 {
		res.AvgMismatchLatencyPct = mismatchLat / float64(mismatchN)
		res.AvgMismatchEnergyPct = mismatchE / float64(mismatchN)
	}
	return res, nil
}

func (r *Fig13Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 13 — workload-change robustness (averages across classes)\n")
	t := &table{header: []string{"accelerator", "workload", "latency", "energy"}}
	for _, cell := range r.Cells {
		t.add(cell.Accelerator, cell.Workload, ms(cell.LatencySec), mj(cell.EnergyMJ))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "paper: mismatched-HDA latency penalty %.1f%% -> measured %.1f%%\n",
		r.PaperMismatchLatency, r.AvgMismatchLatencyPct)
	fmt.Fprintf(&b, "paper: mismatched-HDA energy penalty %.1f%%  -> measured %.1f%%\n",
		r.PaperMismatchEnergy, r.AvgMismatchEnergyPct)
	return b.String()
}

// ensure workload import is used in docs-only builds
var _ = workload.ARVRA
