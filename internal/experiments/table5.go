package experiments

import (
	"fmt"
	"strings"

	"repro/internal/accel"
)

// T5Row is one scenario row of Table V: the Herald-optimized Maelstrom
// resource partition.
type T5Row struct {
	Workload, Class   string
	NVDLABW, ShiBW    float64
	NVDLAPEs, ShiPEs  int
	PaperBW, PaperPEs string // the paper's reported partition, for side-by-side
}

// T5Result is Table V plus the paper's aggregate observations about
// the partitions.
type T5Result struct {
	Rows []T5Row

	// AvgNVDLAPEShare is the average fraction of PEs given to the
	// NVDLA-style sub-accelerator (the paper: 111.12% more PEs to
	// NVDLA on average, i.e. share > 0.5).
	AvgNVDLAPEShare float64
	// CloudNVDLAPEShare isolates the cloud scenarios (the paper:
	// cloud leans hardest toward NVDLA).
	CloudNVDLAPEShare float64
	// NonTrivialCount: partitions that are not the even split.
	NonTrivialCount int
}

// paperTable5 lists the paper's reported Maelstrom partitions
// (BW NVDLA/Shi in GB/s, PEs NVDLA/Shi).
var paperTable5 = map[string]struct{ bw, pe string }{
	"AR/VR-A|edge":     {"4 / 12", "128 / 896"},
	"AR/VR-A|mobile":   {"40 / 24", "1792 / 2304"},
	"AR/VR-A|cloud":    {"224 / 32", "9728 / 6656"},
	"AR/VR-B|edge":     {"4 / 12", "128 / 896"},
	"AR/VR-B|mobile":   {"48 / 16", "1536 / 2560"},
	"AR/VR-B|cloud":    {"128 / 128", "12032 / 4352"},
	"MLPerf-b1|edge":   {"4 / 12", "64 / 960"},
	"MLPerf-b1|mobile": {"32 / 32", "1280 / 2816"},
	"MLPerf-b1|cloud":  {"160 / 96", "8192 / 8192"},
}

// TableV reports the optimized Maelstrom hardware partitions found by
// Herald for every workload × class scenario.
func (c *Config) TableV() (*T5Result, error) {
	res := &T5Result{}
	var peShareSum, cloudShareSum float64
	var cloudN int
	for _, w := range Workloads() {
		for _, class := range accel.Classes() {
			d, err := c.Maelstrom(class, w)
			if err != nil {
				return nil, err
			}
			nv := d.HDA.Subs[0] // Maelstrom styles: NVDLA first
			shi := d.HDA.Subs[1]
			paper := paperTable5[w.Name+"|"+class.Name]
			row := T5Row{
				Workload: w.Name, Class: class.Name,
				NVDLABW: nv.HW.BWGBps, ShiBW: shi.HW.BWGBps,
				NVDLAPEs: nv.HW.PEs, ShiPEs: shi.HW.PEs,
				PaperBW: paper.bw, PaperPEs: paper.pe,
			}
			res.Rows = append(res.Rows, row)
			share := float64(nv.HW.PEs) / float64(class.PEs)
			peShareSum += share
			if class.Name == "cloud" {
				cloudShareSum += share
				cloudN++
			}
			if nv.HW.PEs != shi.HW.PEs || nv.HW.BWGBps != shi.HW.BWGBps {
				res.NonTrivialCount++
			}
		}
	}
	res.AvgNVDLAPEShare = peShareSum / float64(len(res.Rows))
	if cloudN > 0 {
		res.CloudNVDLAPEShare = cloudShareSum / float64(cloudN)
	}
	return res, nil
}

func (r *T5Result) String() string {
	var b strings.Builder
	b.WriteString("Table V — Maelstrom: optimized HW resource partition found by Herald\n")
	t := &table{header: []string{"scenario", "BW NVDLA/Shi (ours)", "BW (paper)", "PE NVDLA/Shi (ours)", "PE (paper)"}}
	for _, row := range r.Rows {
		t.add(row.Workload+", "+row.Class,
			fmt.Sprintf("%g / %g", row.NVDLABW, row.ShiBW), row.PaperBW,
			fmt.Sprintf("%d / %d", row.NVDLAPEs, row.ShiPEs), row.PaperPEs)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "paper: optimal partitioning is non-trivial -> measured: %d/%d non-even partitions\n",
		r.NonTrivialCount, len(r.Rows))
	fmt.Fprintf(&b, "paper: NVDLA receives more PEs on average  -> measured avg NVDLA PE share: %.1f%%\n",
		100*r.AvgNVDLAPEShare)
	fmt.Fprintf(&b, "paper: cloud leans hardest toward NVDLA    -> measured cloud NVDLA PE share: %.1f%%\n",
		100*r.CloudNVDLAPEShare)
	return b.String()
}
