package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/dataflow"
)

// The driver tests below run at NewQuick granularity; their assertions
// are the paper's directional claims, which must hold even with coarse
// DSE.

func TestFigure11Full(t *testing.T) {
	if testing.Short() {
		t.Skip("nine-scenario sweep")
	}
	c := NewQuick()
	r, err := c.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 9 {
		t.Fatalf("scenarios = %d", len(r.Scenarios))
	}
	if r.HDABeatsFDACount < 8 {
		t.Errorf("HDA beats FDA in only %d/9 scenarios", r.HDABeatsFDACount)
	}
	if r.BestHDAOnPareto < 8 {
		t.Errorf("best HDA on Pareto in only %d/9 scenarios", r.BestHDAOnPareto)
	}
	for _, se := range r.Scenarios {
		// Every scenario's RDA must cost more energy than its
		// Maelstrom (the flexibility tax).
		if se.RDA.EnergyMJ <= se.Maelstrom.Eval.EnergyMJ {
			t.Errorf("%s/%s: RDA energy %.4g <= Maelstrom %.4g",
				se.Workload.Name, se.Class.Name, se.RDA.EnergyMJ, se.Maelstrom.Eval.EnergyMJ)
		}
	}
	if !strings.Contains(r.String(), "Figure 11") {
		t.Error("render")
	}

	// CSV export round-trip.
	var buf bytes.Buffer
	if err := WriteFigure11CSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 1 + 9*(3+3+4+1) // header + scenarios x organizations
	if len(recs) != wantRows {
		t.Errorf("csv rows = %d, want %d", len(recs), wantRows)
	}
}

func TestTableVClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("nine co-designs")
	}
	c := NewQuick()
	r, err := c.TableV()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.NonTrivialCount < 5 {
		t.Errorf("only %d/9 non-trivial partitions", r.NonTrivialCount)
	}
	// §V-B: cloud leans harder toward NVDLA than the edge class.
	var edgeShare, cloudShare float64
	var edgeN, cloudN int
	for _, row := range r.Rows {
		share := float64(row.NVDLAPEs) / float64(row.NVDLAPEs+row.ShiPEs)
		switch row.Class {
		case "edge":
			edgeShare += share
			edgeN++
		case "cloud":
			cloudShare += share
			cloudN++
		}
	}
	if cloudShare/float64(cloudN) <= edgeShare/float64(edgeN) {
		t.Errorf("cloud NVDLA share %.2f should exceed edge %.2f",
			cloudShare/float64(cloudN), edgeShare/float64(edgeN))
	}
	if !strings.Contains(r.String(), "Table V") {
		t.Error("render")
	}
}

func TestFigure12Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("cloud co-designs")
	}
	c := NewQuick()
	r, err := c.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cases) != 2 {
		t.Fatalf("cases = %d", len(r.Cases))
	}
	for _, cs := range r.Cases {
		// Maelstrom still beats the best monolithic design in the
		// single-DNN batch-4 case (paper: 26.4% / 48.1%).
		if cs.MaelstromEDPGainPct <= 0 {
			t.Errorf("%s: Maelstrom EDP gain %.1f%% should be positive", cs.Model, cs.MaelstromEDPGainPct)
		}
		// And the RDA costs more energy than Maelstrom.
		if cs.RDAEnergyCostPct <= 0 {
			t.Errorf("%s: RDA energy cost %.1f%% should be positive", cs.Model, cs.RDAEnergyCostPct)
		}
	}
	_ = r.String()
}

func TestTableVIClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("six co-designs incl. batch 8")
	}
	c := NewQuick()
	r, err := c.TableVI()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// The HDA must beat the best FDA's latency at every class and
		// batch size on MLPerf (paper: all Table VI latency gains
		// positive).
		if row.LatencyGainVsFDA <= 0 {
			t.Errorf("%s b%d: latency gain vs FDA %.1f%% should be positive",
				row.Class, row.Batch, row.LatencyGainVsFDA)
		}
		// And cost less energy than the RDA.
		if row.EnergyGainVsRDA <= 0 {
			t.Errorf("%s b%d: energy gain vs RDA %.1f%% should be positive",
				row.Class, row.Batch, row.EnergyGainVsRDA)
		}
	}
	_ = r.String()
}

func TestFigure13Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-workload compiles")
	}
	c := NewQuick()
	r, err := c.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	// 3 workloads x (FDA + SFDA + RDA + 3 HDAs) cells.
	if len(r.Cells) != 3*6 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	// The energy-robustness claim: mismatched designs cost little
	// energy (paper 0.1%; we allow a few percent).
	if r.AvgMismatchEnergyPct > 5 {
		t.Errorf("mismatch energy penalty %.1f%% too large", r.AvgMismatchEnergyPct)
	}
	_ = r.String()
}

func TestHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario matrix")
	}
	c := NewQuick()
	r, err := c.Headline()
	if err != nil {
		t.Fatal(err)
	}
	if r.Scenarios != 9 {
		t.Fatalf("scenarios = %d", r.Scenarios)
	}
	// Directional claims that must survive coarse granularity:
	if r.VsFDALatencyPct <= 0 {
		t.Errorf("Maelstrom should cut latency vs best FDA (got %+.1f%%)", r.VsFDALatencyPct)
	}
	if r.EDPImprovementPct <= 0 {
		t.Errorf("best HDA should cut EDP vs best FDA (got %+.1f%%)", r.EDPImprovementPct)
	}
	if r.VsRDAEnergyPct <= 0 {
		t.Errorf("Maelstrom should cut energy vs RDA (got %+.1f%%)", r.VsRDAEnergyPct)
	}
	_ = r.String()
}

func TestSchedulerAblationClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("nine scheduling comparisons")
	}
	c := NewQuick()
	r, err := c.SchedulerAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.AvgEDPReductionPct <= 0 {
		t.Errorf("Herald should beat greedy on average (got %.1f%%)", r.AvgEDPReductionPct)
	}
	for _, row := range r.Rows {
		if row.HeraldEDP > row.GreedyEDP*1.001 {
			t.Errorf("%s/%s: Herald EDP %.4g worse than greedy %.4g",
				row.Workload, row.Class, row.HeraldEDP, row.GreedyEDP)
		}
	}
	_ = r.String()
}

func TestPreferenceReport(t *testing.T) {
	c := NewQuick()
	rows, err := c.PreferenceReport(16384, 256, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		var layerSum, macSum float64
		for _, s := range dataflow.AllStyles() {
			layerSum += row.LayerShare[s]
			macSum += row.MACShare[s]
		}
		if layerSum < 0.999 || layerSum > 1.001 || macSum < 0.999 || macSum > 1.001 {
			t.Errorf("%s: shares do not sum to 1 (%.3f layers, %.3f MACs)", row.Workload, layerSum, macSum)
		}
		// GNMT/FC-heavy MLPerf must have an NVDLA layer majority on
		// the cloud substrate.
		if row.Workload == "MLPerf-b1" && row.LayerShare[dataflow.NVDLA] < 0.4 {
			t.Errorf("MLPerf NVDLA layer share %.2f suspiciously low", row.LayerShare[dataflow.NVDLA])
		}
	}
	s, err := c.PreferenceReportString()
	if err != nil || !strings.Contains(s, "census") {
		t.Error("render")
	}
}
