package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/energy"
	"repro/internal/maestro"
)

func testHDA(t testing.TB) *accel.HDA {
	t.Helper()
	h, err := accel.New("serve-test", accel.Edge, []accel.Partition{
		{Style: dataflow.NVDLA, PEs: 512, BWGBps: 8},
		{Style: dataflow.ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func testEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := New(maestro.NewCache(energy.Default28nm()), testHDA(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSubmitScheduleStats walks one request through the whole admit →
// incremental schedule → stats pipeline.
func TestSubmitScheduleStats(t *testing.T) {
	e := testEngine(t)
	ticket, err := e.Submit(Request{Tenant: "a", Model: "mobilenetv1", SLACycles: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ticket.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusDone {
		t.Fatalf("status %q, want done (err %q)", rec.Status, rec.Err)
	}
	if rec.FinishCycle <= rec.StartCycle || rec.LatencyCycles <= 0 || rec.BusyCycles <= 0 {
		t.Errorf("degenerate placement: %+v", rec)
	}
	if rec.SLAViolated {
		t.Errorf("absurdly generous SLA violated: latency %d", rec.LatencyCycles)
	}

	st, err := e.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 1 || st.Completed != 1 || st.Pending != 0 {
		t.Errorf("stats %+v, want 1 submitted/completed", st)
	}
	if len(st.Tenants) != 1 || st.Tenants[0].Tenant != "a" {
		t.Fatalf("tenant stats %+v", st.Tenants)
	}
	ts := st.Tenants[0]
	if ts.P50LatencyCycles != rec.LatencyCycles || ts.MeanLatencyCycles != rec.LatencyCycles {
		t.Errorf("single-request percentiles %+v != latency %d", ts, rec.LatencyCycles)
	}
	if ts.SLATracked != 1 || ts.SLAViolations != 0 {
		t.Errorf("SLA accounting %+v", ts)
	}
	if err := e.Snapshot().Validate(); err != nil {
		t.Errorf("final schedule invalid: %v", err)
	}
}

// TestMultiTenantInterleaved drives the acceptance scenario: >= 100
// interleaved requests from multiple tenants submitted concurrently,
// every one completing with per-request latency stats, and the
// committed schedule staying valid.
func TestMultiTenantInterleaved(t *testing.T) {
	e := testEngine(t)
	type stream struct {
		tenant string
		models []string
		count  int
		prio   int
	}
	streams := []stream{
		{tenant: "arvr", models: []string{"mobilenetv2", "brq-handpose"}, count: 40, prio: 1},
		{tenant: "mlperf", models: []string{"mobilenetv1", "ssd-mobilenetv1"}, count: 40},
		{tenant: "batch", models: []string{"resnet50"}, count: 24},
	}

	var wg sync.WaitGroup
	recs := make(chan Record, 200)
	errs := make(chan error, 200)
	for _, s := range streams {
		wg.Add(1)
		go func(s stream) {
			defer wg.Done()
			for i := 0; i < s.count; i++ {
				ticket, err := e.Submit(Request{
					Tenant:       s.tenant,
					Model:        s.models[i%len(s.models)],
					Priority:     s.prio,
					SLACycles:    1 << 50,
					ArrivalCycle: int64(i) * 1_000_000,
				})
				if err != nil {
					errs <- err
					return
				}
				rec, err := ticket.Wait(context.Background())
				if err != nil {
					errs <- err
					return
				}
				recs <- rec
			}
		}(s)
	}
	wg.Wait()
	close(recs)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := 0
	for rec := range recs {
		total++
		if rec.Status != StatusDone {
			t.Fatalf("request %d: status %q err %q", rec.ID, rec.Status, rec.Err)
		}
		if rec.LatencyCycles <= 0 || rec.LatencyCycles < rec.BusyCycles {
			t.Errorf("request %d: implausible latency %d (busy %d)", rec.ID, rec.LatencyCycles, rec.BusyCycles)
		}
		if rec.QueueCycles < 0 {
			t.Errorf("request %d: negative queueing", rec.ID)
		}
	}
	if want := 40 + 40 + 24; total != want {
		t.Fatalf("%d records, want %d", total, want)
	}

	st, err := e.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != int64(total) || st.Failed != 0 || st.Rejected != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if len(st.Tenants) != 3 {
		t.Fatalf("%d tenant groups, want 3", len(st.Tenants))
	}
	for _, ts := range st.Tenants {
		if ts.Completed == 0 || ts.P50LatencyCycles <= 0 || ts.P99LatencyCycles < ts.P50LatencyCycles {
			t.Errorf("tenant %s: degenerate stats %+v", ts.Tenant, ts)
		}
	}
	if st.SimThroughputRPS <= 0 {
		t.Error("no simulated throughput")
	}
	if st.CostCacheEntries == 0 {
		t.Error("cost cache unused across requests")
	}

	snap := e.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatalf("committed schedule invalid after %d requests: %v", total, err)
	}
	if snap.Workload.NumInstances() != total {
		t.Errorf("schedule has %d instances, want %d", snap.Workload.NumInstances(), total)
	}
}

// TestAdmissionControl: full queues and unknown models are rejected
// and accounted.
func TestAdmissionControl(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxQueue = 1
	// A throttled engine would drain the queue instantly; block it by
	// not starting... instead, use a huge first request so later ones
	// queue behind it briefly. Simpler: submit from a stopped clock is
	// not possible, so rely on MaxQueue=1 with rapid submission.
	e, err := New(maestro.NewCache(energy.Default28nm()), testHDA(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(Request{Tenant: "a", Model: "nope"}); err == nil {
		t.Error("unknown model accepted")
	}
	var rejected bool
	for i := 0; i < 64; i++ {
		if _, err := e.Submit(Request{Tenant: "a", Model: "resnet50"}); err != nil {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Log("queue never filled (scheduler outpaced submission); admission control untested here")
	}
	st, err := e.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 {
		t.Error("rejections not accounted (unknown model should count)")
	}
	if _, err := e.Submit(Request{Tenant: "a", Model: "resnet50"}); err == nil {
		t.Error("submission accepted after drain")
	}
}

// TestDrainTimeout: a cancelled context unblocks Drain.
func TestDrainTimeout(t *testing.T) {
	e := testEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// No pending work: drain should win the race and return nil error
	// almost always; either way it must return promptly.
	done := make(chan struct{})
	go func() {
		_, _ = e.Drain(ctx)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain hung")
	}
}
