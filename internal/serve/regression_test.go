package serve

// Regression tests for the serving-engine bug-fix batch: each test
// exercises the exact failure mode of the old behavior and fails
// against the pre-fix engine.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/maestro"
	"repro/internal/workload"
)

func newTestCache() *maestro.Cache { return maestro.NewCache(energy.Default28nm()) }

// TestAdmitPartialBatchFailure: one infeasible admission must not
// poison the whole batch. The old admit failed every request in the
// batch when inc.Extend rejected it as a unit; now the batch is
// retried one by one and only the truly infeasible request fails. The
// poison here is a layer-less model — unschedulable by construction,
// and exactly the per-admission rejection Extend raises as a
// whole-batch error.
func TestAdmitPartialBatchFailure(t *testing.T) {
	e := testEngine(t)
	good, err := dnn.ByName("mobilenetv1")
	if err != nil {
		t.Fatal(err)
	}
	bad := &dnn.Model{Name: "empty"}

	mk := func(id int64, tenant string, m *dnn.Model) *pending {
		return &pending{
			rec:  &Record{ID: id, Tenant: tenant, Model: m.Name, Status: StatusQueued},
			inst: workload.Instance{Model: m, Batch: 1},
			done: make(chan struct{}),
		}
	}
	batch := []*pending{
		mk(1, "innocent-a", good),
		mk(2, "guilty", bad),
		mk(3, "innocent-b", good),
	}
	e.admit(batch)

	for _, p := range []*pending{batch[0], batch[2]} {
		if p.rec.Status != StatusDone {
			t.Errorf("innocent tenant %s: status %q err %q — poisoned by another tenant's infeasible request",
				p.rec.Tenant, p.rec.Status, p.rec.Err)
		}
		if p.rec.FinishCycle <= 0 {
			t.Errorf("innocent tenant %s: no placement: %+v", p.rec.Tenant, p.rec)
		}
	}
	if batch[1].rec.Status != StatusFailed || batch[1].rec.Err == "" {
		t.Errorf("infeasible request: status %q err %q, want failed", batch[1].rec.Status, batch[1].rec.Err)
	}
	if err := e.Snapshot().Validate(); err != nil {
		t.Errorf("schedule invalid after partial batch failure: %v", err)
	}
	if _, err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPopBatchRotationFairness: when the batch fills mid-pass, the
// rotation must resume from where the pass stopped. The old code only
// rotated after a *complete* pass, so under load (MaxBatch < number of
// tenants) the rotation never advanced and tenants at the tail of rr
// starved until the head tenants' queues drained.
func TestPopBatchRotationFairness(t *testing.T) {
	const perTenant = 4
	e := &Engine{
		opts:   Options{MaxBatch: 2, MaxQueue: 64, MaxRecords: 64, ClockGHz: 1},
		queues: make(map[string][]*pending),
	}
	tenants := []string{"a", "b", "c"}
	for _, tn := range tenants {
		for i := 0; i < perTenant; i++ {
			e.queues[tn] = append(e.queues[tn], &pending{rec: &Record{Tenant: tn}})
			e.npending++
		}
		e.rr = append(e.rr, tn)
	}

	served := map[string]int{}
	var firstThree []string
	for batchNo := 0; e.npending > 0; batchNo++ {
		batch := e.popBatchLocked()
		if len(batch) == 0 {
			t.Fatal("empty batch with pending work")
		}
		for _, p := range batch {
			served[p.rec.Tenant]++
			if batchNo < 3 {
				firstThree = append(firstThree, p.rec.Tenant)
			}
		}
	}

	// Three batches of two cover every tenant exactly twice under a
	// fair rotation; the old code served a,b three times and c never.
	count := map[string]int{}
	for _, tn := range firstThree {
		count[tn]++
	}
	for _, tn := range tenants {
		if count[tn] != 2 {
			t.Errorf("tenant %s served %d times in the first 3 saturated batches, want 2 (histogram %v)",
				tn, count[tn], count)
		}
	}
	for _, tn := range tenants {
		if served[tn] != perTenant {
			t.Errorf("tenant %s: %d total pops, want %d", tn, served[tn], perTenant)
		}
	}
}

// TestRecordInstanceZeroJSON: a placement at instance index 0 (and a
// start/queue of cycle 0) is a legitimate schedule position and must
// survive a JSON round trip. The old omitempty tags dropped the zero
// values, making "placed at instance 0" indistinguishable from "not
// scheduled".
func TestRecordInstanceZeroJSON(t *testing.T) {
	rec := Record{
		ID: 1, Tenant: "a", Model: "mobilenetv1", Status: StatusDone,
		Instance: 0, ArrivalCycle: 0, StartCycle: 0, FinishCycle: 100,
		QueueCycles: 0, BusyCycles: 100, LatencyCycles: 100,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"instance":0`, `"start_cycle":0`, `"queue_cycles":0`, `"arrival_cycle":0`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("marshaled record drops %s: %s", field, data)
		}
	}
	var back Record
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rec) {
		t.Errorf("JSON round trip mutated the record:\n got %+v\nwant %+v", back, rec)
	}
}

// TestTicketWaitEvictionRace: with a tiny MaxRecords the eviction FIFO
// discards finished records faster than their waiters wake. The old
// Wait re-looked the record up in the engine's table and returned
// "record vanished"; the ticket now captures the final record at
// completion, so every Wait returns it regardless of eviction.
func TestTicketWaitEvictionRace(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxRecords = 1
	e, err := New(newTestCache(), testHDA(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ticket, err := e.Submit(Request{
				Tenant: "a", Model: "mobilenetv1", ArrivalCycle: int64(i) * 100_000,
			})
			if err != nil {
				errs <- err
				return
			}
			rec, err := ticket.Wait(context.Background())
			if err != nil {
				errs <- fmt.Errorf("request %d: %w", ticket.ID, err)
				return
			}
			if rec.Status != StatusDone || rec.ID != ticket.ID {
				errs <- fmt.Errorf("request %d: bad final record %+v", ticket.ID, rec)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if _, err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPArrivalCycleZero: an explicit "arrival_cycle": 0 over HTTP
// is a deterministic cycle-0 arrival, not "now". The old handler
// rewrote 0 to the wall clock, so replay traces could never reproduce
// a run bit-for-bit.
func TestHTTPArrivalCycleZero(t *testing.T) {
	_, srv := testServer(t)

	post := func(body string) Record {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/requests", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: HTTP %d", body, resp.StatusCode)
		}
		var rec Record
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			t.Fatal(err)
		}
		return rec
	}

	rec := post(`{"tenant":"replay","model":"mobilenetv1","arrival_cycle":0,"wait":true}`)
	if rec.ArrivalCycle != 0 {
		t.Errorf("explicit arrival_cycle 0 rewritten to %d; replay traces are not reproducible", rec.ArrivalCycle)
	}
	if rec.Status != StatusDone {
		t.Errorf("cycle-0 request not served: %+v", rec)
	}

	// Omitting the field still means "now" (a strictly positive wall
	// arrival on an engine that has been up for a nonzero time).
	rec = post(`{"tenant":"replay","model":"mobilenetv1","wait":true}`)
	if rec.ArrivalCycle <= 0 {
		t.Errorf("omitted arrival_cycle should mean now, got %d", rec.ArrivalCycle)
	}
}

// TestSubmitRequestWireFormat pins the shadowing of the embedded
// arrival field: marshaling a SubmitRequest emits the pointer field,
// and decoding an explicit value lands in the pointer, never silently
// in the embedded Request.
func TestSubmitRequestWireFormat(t *testing.T) {
	var sr SubmitRequest
	if err := json.Unmarshal([]byte(`{"tenant":"a","model":"m","arrival_cycle":7}`), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.ArrivalCycle == nil || *sr.ArrivalCycle != 7 {
		t.Fatalf("explicit arrival not decoded into the pointer: %+v", sr)
	}
	sr.Normalize()
	if sr.Request.ArrivalCycle != 7 {
		t.Errorf("Normalize: arrival %d, want 7", sr.Request.ArrivalCycle)
	}
	var omitted SubmitRequest
	if err := json.Unmarshal([]byte(`{"tenant":"a","model":"m"}`), &omitted); err != nil {
		t.Fatal(err)
	}
	omitted.Normalize()
	if omitted.Request.ArrivalCycle != -1 {
		t.Errorf("omitted arrival should normalize to -1 (now), got %d", omitted.Request.ArrivalCycle)
	}
}
