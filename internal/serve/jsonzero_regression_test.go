package serve

import (
	"encoding/json"
	"testing"
)

// requireKeys marshals v and fails if any of the listed JSON keys is
// absent — the regression the jsonzero analyzer guards against:
// omitempty on a numeric or bool field silently drops the zero value,
// making "counter is 0" indistinguishable from "field not reported".
func requireKeys(t *testing.T, v any, keys ...string) {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	for _, k := range keys {
		if _, ok := m[k]; !ok {
			t.Errorf("%T: zero-valued field %q missing from JSON %s", v, k, raw)
		}
	}
}

// TestZeroValuedStatsFieldsSurviveJSON pins the jsonzero triage for
// this package: every counter and flag below is meaningful at zero
// and must round-trip through JSON even when zero.
func TestZeroValuedStatsFieldsSurviveJSON(t *testing.T) {
	requireKeys(t, Stats{}, "failed", "rejected", "lost", "crashed")
	requireKeys(t, TenantStats{},
		"failed", "rejected", "shed", "sla_tracked", "sla_violations",
		"mean_latency_cycles", "p50_latency_cycles", "p95_latency_cycles",
		"p99_latency_cycles", "mean_queue_cycles", "energy_pj")
	// SLAViolated false and segment replica index 0 are both real
	// placements — the SegmentRecord.Replica omitempty was a live bug.
	requireKeys(t, Record{}, "sla_violated", "instance", "start_cycle")
	requireKeys(t, SegmentRecord{}, "replica")
}
