// Package serve is Herald's online multi-tenant serving engine: the
// runtime counterpart of the paper's compile-time scheduler. Where the
// batch pipeline receives a whole multi-DNN workload up front, serve
// admits inference requests as they arrive, keeps one queue per
// tenant, and extends the committed schedule incrementally
// (sched.Incremental) over a fixed HDA — the design point a
// dse.Search picked at deploy time. The shared maestro.Cache carries
// cost-model results across requests, so steady-state admission cost
// is dominated by the assignment loop, not the analytical model.
//
// The engine is event-driven: submissions enqueue and wake a single
// scheduling goroutine, which drains tenant queues round-robin (at
// most one request per tenant per pass, so a chatty tenant cannot
// starve a quiet one), admits a small batch to the incremental
// scheduler, and publishes per-request latency/SLA statistics.
//
// Lifecycle: New starts the scheduling goroutine; Quiesce stops
// admissions while in-flight work finishes (Done observes the loop
// exiting); Drain is Quiesce plus the wait. An engine is never
// restarted — a fleet migration retires quiesced engines and routes
// to freshly-built ones instead (see internal/fleet). Prewarm hands a
// fresh engine the cost columns of an expected workload so its first
// admissions hit warm scheduler tables.
//
// Probes for dispatchers and monitors: Load (pending count + committed
// backlog horizon), Stats / TenantWindows (aggregate and per-tenant
// raw statistics; fleets merge windows across replicas), Snapshot (the
// committed schedule), and Options.OnRequestDone (a per-completion
// callback outside the engine's locks). Handler exposes the same
// surface as a JSON-over-HTTP API.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/accel"
	"repro/internal/dnn"
	"repro/internal/dse"
	"repro/internal/maestro"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Options configures an Engine.
type Options struct {
	// Sched configures the underlying Herald scheduler. PostProcess
	// is forced off (online commitments are non-revocable) and
	// Priorities must be unset (priorities arrive per request).
	Sched sched.Options

	// ClockGHz converts cycles to wall seconds in reports (default 1).
	ClockGHz float64

	// MaxQueue caps each tenant's pending queue; submissions beyond
	// it are rejected (admission control). Default 1024.
	MaxQueue int

	// MaxBatch bounds how many requests one scheduling round admits
	// (coalescing amortizes the assignment loop). Default 8.
	MaxBatch int

	// MaxRecords caps retained finished-request records; the oldest
	// finished records are evicted first (a long-running daemon must
	// not grow without bound). Default 65536.
	MaxRecords int

	// OnRequestDone, when set, is called with a copy of every
	// request's final record (done or failed) after it is published.
	// It runs on the scheduling goroutine outside the engine's locks:
	// callbacks may call back into the engine but must not block, or
	// they stall admission. Dispatchers (internal/fleet) use it to
	// track per-engine in-flight work.
	OnRequestDone func(Record)

	// Plans maps model names to fusion plans (a dse search's
	// SegmentPlans). A request whose model has a multi-segment plan is
	// admitted as a chain of per-segment instances — segment models
	// are interned slices of the parent, segment k+1 carries a
	// scheduling precedence on segment k, and the inter-segment
	// activation rides the scheduler's handoff ledger — under one
	// ticket whose latency is the last segment's completion. Models
	// without a plan (or with a single-segment plan), and nil Plans,
	// serve whole-model requests exactly as before.
	Plans map[string]dse.SegmentPlan

	// Elastic enables the elastic intra-HDA surface: Preempt (revoke
	// the scheduled-but-future suffix of low-priority requests at a
	// layer boundary and re-queue them for Resume) and Reassign
	// (re-size the sub-accelerator slices between committed layers).
	// Off by default; a disabled engine's scheduling is bit-identical
	// to one built before the elastic surface existed (the golden
	// fingerprints pin it).
	Elastic bool

	// OnAccept, when set, is called once per accepted submission with
	// the normalized request — model name resolved, live-clock
	// arrivals pinned to an explicit cycle — and the fusion-plan id
	// ("model/segments", "" when unfused). It fires under the engine
	// lock, so callback order is exactly the admission order; trace
	// capture (internal/capture) hooks here. Callbacks must be fast
	// and must not call back into the engine. A fleet wires
	// fleet.Options.OnAccept instead: engine-level hooks on fleet
	// replicas would also see failover re-admissions and dispatched
	// segments, double-counting requests.
	OnAccept func(req Request, plan string)
}

// Overload conditions: submissions failing with one of these should
// be retried later; anything else is a bad request.
var (
	// ErrDraining rejects submissions to a draining engine.
	ErrDraining = errors.New("serve: engine is draining")
	// ErrQueueFull rejects submissions beyond a tenant's queue cap.
	ErrQueueFull = errors.New("serve: tenant queue full")
)

// DefaultOptions returns the engine defaults over Herald's standard
// scheduler configuration.
func DefaultOptions() Options {
	return Options{Sched: sched.DefaultOptions(), ClockGHz: 1.0, MaxQueue: 1024, MaxBatch: 8}
}

func (o Options) withDefaults() Options {
	if o.ClockGHz <= 0 {
		o.ClockGHz = 1.0
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 1024
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.MaxRecords <= 0 {
		o.MaxRecords = 65536
	}
	return o
}

// maxLatencySamples bounds each tenant's percentile window: the stats
// report percentiles over the most recent samples, not all history.
const maxLatencySamples = 4096

// Request is one inference submission.
type Request struct {
	Tenant   string `json:"tenant"`
	Model    string `json:"model"`
	Priority int    `json:"priority,omitempty"` //herald:jsonzero zero is the default priority; absent and 0 mean the same on this input struct

	// SLACycles is the relative response-time target (cycles from
	// arrival to completion); 0 disables SLA tracking.
	SLACycles int64 `json:"sla_cycles,omitempty"` //herald:jsonzero 0 is the no-SLA sentinel on this input struct; absent means the same

	// ArrivalCycle is the request's arrival on the engine's cycle
	// clock. Negative means "now" (wall clock scaled by ClockGHz).
	// Arrivals in the committed past are clamped to the admission
	// floor at scheduling time.
	ArrivalCycle int64 `json:"arrival_cycle,omitempty"` //herald:jsonzero 0 is the live-clock sentinel on this input struct; HTTP replays use SubmitRequest's pointer field
}

// Status is a request's lifecycle state.
type Status string

// Request lifecycle states.
const (
	// StatusQueued: accepted, waiting for a scheduling round.
	StatusQueued Status = "queued"
	// StatusDone: scheduled; the record carries the placement.
	StatusDone Status = "done"
	// StatusFailed: could not be scheduled; the record carries the error.
	StatusFailed Status = "failed"
	// StatusLost: the request was accepted but its engine crashed
	// (Crash) before serving it. Lost requests are erased from the
	// crashed engine's accounting — a fleet dispatcher re-admits them
	// on a surviving replica, where they are counted exactly once.
	StatusLost Status = "lost"
)

// Record is the engine's view of one request, including its schedule
// placement and latency statistics once served.
type Record struct {
	ID       int64  `json:"id"`
	Tenant   string `json:"tenant"`
	Model    string `json:"model"`
	Priority int    `json:"priority"`
	Status   Status `json:"status"`

	ArrivalCycle int64 `json:"arrival_cycle"`
	SLACycles    int64 `json:"sla_cycles,omitempty"` //herald:jsonzero echoes the request's no-SLA sentinel; 0 and absent both mean untracked

	// Set once Status == StatusDone. None of the placement fields may
	// carry omitempty: instance index 0, start cycle 0 and queueing
	// delay 0 are all legitimate placements, and dropping them from
	// JSON would be indistinguishable from "not scheduled" (clients
	// must read Status for that).
	Instance      int     `json:"instance"` // schedule instance index
	StartCycle    int64   `json:"start_cycle"`
	FinishCycle   int64   `json:"finish_cycle"`
	QueueCycles   int64   `json:"queue_cycles"`
	BusyCycles    int64   `json:"busy_cycles"`
	LatencyCycles int64   `json:"latency_cycles"`
	EnergyPJ      float64 `json:"energy_pj"`
	SLAViolated   bool    `json:"sla_violated"`

	Err string `json:"error,omitempty"`

	// Segments holds the per-segment placements of a fused request,
	// in segment order (nil for unfused requests). The request-level
	// placement fields summarize them: Instance and StartCycle come
	// from the first segment, FinishCycle from the last, BusyCycles
	// and EnergyPJ are sums.
	Segments []SegmentRecord `json:"segments,omitempty"`
}

// SegmentRecord is one segment's placement within a fused request.
type SegmentRecord struct {
	Index    int    `json:"index"`
	Model    string `json:"model"` // the sliced segment model, e.g. "unet[0:5]"
	Instance int    `json:"instance"`

	// Replica is set only by fleet-level fusion (segments dispatched
	// across replica engines); engine-level fusion runs on one HDA.
	Replica int `json:"replica"`

	StartCycle  int64   `json:"start_cycle"`
	FinishCycle int64   `json:"finish_cycle"`
	BusyCycles  int64   `json:"busy_cycles"`
	EnergyPJ    float64 `json:"energy_pj"`

	Err string `json:"error,omitempty"`
}

// Ticket tracks an accepted submission.
type Ticket struct {
	ID int64
	// rec is the request's record; the engine finishes every write to
	// it before closing done, so after done the ticket reads it
	// without locks. Holding the record here (instead of re-looking it
	// up in the engine's table) keeps Wait immune to the MaxRecords
	// eviction FIFO: under load a record can be evicted before its
	// waiter wakes.
	rec  *Record
	done chan struct{}
}

// Done is closed when the request has been scheduled (or failed).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the request completes or ctx is cancelled, and
// returns the final record.
func (t *Ticket) Wait(ctx context.Context) (Record, error) {
	select {
	case <-t.done:
		return *t.rec, nil
	case <-ctx.Done():
		return Record{}, ctx.Err()
	}
}

// pending is one queued submission plus its completion signal. A
// fused request enqueues one pending per segment (chain != nil); the
// chain's done channel replaces the per-pending one, which is nil.
type pending struct {
	rec  *Record
	inst workload.Instance
	done chan struct{}

	// onDone, when set, receives the final record after finalization
	// (including a StatusLost record on Crash) — the per-request
	// counterpart of Options.OnRequestDone, used by fleet dispatchers
	// to resolve their tickets and detect lost work.
	onDone func(Record)

	chain    *chainState
	segIndex int

	// resume marks a preempted request re-queued for resumption: the
	// scheduling round routes it through Incremental.Resume instead of
	// Extend, and its completion merges with the checkpointed prefix
	// without re-firing any hooks (the original completion already
	// fired them; see Engine.Preempt).
	resume *resumeState
}

// chainState is the scheduling-goroutine-private bookkeeping of one
// fused request's segment chain. It is created by Submit before the
// pendings become visible and touched only by the single scheduling
// goroutine afterwards, so it needs no lock of its own.
type chainState struct {
	rec    *Record
	done   chan struct{}
	onDone func(Record)

	// placed[k] is segment k's global schedule instance index, -1
	// until admitted — the value segment k+1's Admission.After names.
	placed []int

	// left counts segments not yet published; the chain finalizes (and
	// done closes) when it reaches zero.
	left int

	// failed marks a broken chain: once any segment fails, every later
	// segment fails fast without touching the scheduler.
	failed bool

	// lost marks a chain finalized by Crash: some of its segments were
	// extracted from the queues, the record is already terminal and
	// done is closed. Segments of a lost chain still in the admitting
	// batch only update the segment counters — they must not touch the
	// published record or re-finalize the chain.
	lost bool
}

// errChainBroken fails the remaining segments of a chain whose
// predecessor segment could not be scheduled.
var errChainBroken = errors.New("serve: predecessor segment failed")

// tenantAgg accumulates per-tenant serving statistics. Latencies are
// a sliding window (ring) of the most recent completions.
type tenantAgg struct {
	submitted, completed, failed, rejected int64
	slaTracked, slaViolations              int64
	latencies                              []int64 // ring buffer, cycles
	latNext                                int     // next ring write position
	latSum, queueSum                       int64   // all-time, for means
	energyPJ                               float64
}

// addLatency records one completed latency in the sliding window.
func (ta *tenantAgg) addLatency(l int64) {
	if len(ta.latencies) < maxLatencySamples {
		ta.latencies = append(ta.latencies, l)
		return
	}
	ta.latencies[ta.latNext] = l
	ta.latNext = (ta.latNext + 1) % maxLatencySamples
}

// Engine is the online serving engine over one fixed HDA.
type Engine struct {
	opts Options
	// hda is the serving accelerator. It is atomic because Reassign
	// swaps it for a re-sliced HDA while lock-free readers (feasible,
	// HDA) hold no engine lock; the pointed-to HDA is immutable.
	hda   atomic.Pointer[accel.HDA]
	cache *maestro.Cache
	start time.Time

	// schedMu serializes incremental-schedule access (the scheduling
	// loop's Extend vs. snapshot readers).
	schedMu sync.Mutex
	inc     *sched.Incremental // guarded by schedMu

	mu          sync.Mutex
	cond        *sync.Cond
	queues      map[string][]*pending // guarded by mu
	rr          []string              // tenant round-robin rotation; guarded by mu
	npending    int                   // guarded by mu
	records     map[int64]*Record     // guarded by mu
	doneFIFO    []int64               // finished record ids in completion order (eviction); guarded by mu
	modelCounts map[string]int        // guarded by mu
	tenants     map[string]*tenantAgg // guarded by mu
	// rejectedOther counts rejections whose tenant never had an
	// admitted request (no aggregate is created for them — an
	// unauthenticated client cycling junk tenant names must not grow
	// the tenant table).
	rejectedOther int64 // guarded by mu
	nextID        int64 // guarded by mu
	draining      bool  // guarded by mu
	paused        bool  // guarded by mu
	crashed       bool  // guarded by mu
	lost          int64 // requests extracted by Crash (observability); guarded by mu
	loopDone      chan struct{}

	maxFinishCycle int64 // latest committed finish cycle; guarded by mu

	// segStats accumulates fused-serving counters (under e.mu).
	segStats SegmentStats

	// preemptible tracks finalized-but-future unfused requests (their
	// placements end past the admission floor, so a Preempt can still
	// revoke layers) in admission order; only populated when
	// Options.Elastic is set. Guarded by mu.
	preemptible []*preemptee
	// Elastic counters (see Stats); guarded by mu.
	preemptions, resumptions, reassigns int64
}

// New starts a serving engine over the given cost cache and HDA. The
// engine owns a scheduling goroutine until Drain is called.
func New(cache *maestro.Cache, hda *accel.HDA, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	opts.Sched.PostProcess = false
	opts.Sched.Priorities = nil
	scheduler, err := sched.New(cache, opts.Sched)
	if err != nil {
		return nil, err
	}
	if hda == nil {
		return nil, fmt.Errorf("serve: nil HDA")
	}
	inc, err := scheduler.Incremental(hda, "serve:"+hda.Name)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		opts:        opts,
		cache:       cache,
		start:       time.Now(), //herald:nondet live-mode clock anchor; replays pass explicit arrival_cycle
		inc:         inc,
		queues:      make(map[string][]*pending),
		records:     make(map[int64]*Record),
		modelCounts: make(map[string]int),
		tenants:     make(map[string]*tenantAgg),
		loopDone:    make(chan struct{}),
	}
	e.hda.Store(hda)
	e.cond = sync.NewCond(&e.mu)
	go e.loop()
	return e, nil
}

// HDA returns the fixed accelerator the engine serves on.
func (e *Engine) HDA() *accel.HDA { return e.hda.Load() }

// ClockGHz returns the cycle clock used for second-domain stats.
func (e *Engine) ClockGHz() float64 { return e.opts.ClockGHz }

// NowCycles maps the wall clock onto the engine's cycle clock.
func (e *Engine) NowCycles() int64 {
	//herald:nondet live-mode arrival fallback by design; bit-reproducible replays pass explicit arrival_cycle
	return int64(time.Since(e.start).Seconds() * e.opts.ClockGHz * 1e9)
}

// Submit admits a request to its tenant's queue. It returns a Ticket
// immediately; scheduling happens asynchronously. Submissions are
// rejected when the tenant/model is invalid, the model cannot fit
// the HDA's global buffer, the tenant queue is full, or the engine
// is draining. A model with a multi-segment plan (Options.Plans) is
// admitted as a precedence-chained segment pipeline under one ticket.
func (e *Engine) Submit(req Request) (*Ticket, error) {
	return e.SubmitTracked(req, nil)
}

// SubmitTracked is Submit plus a per-request completion callback:
// onDone (when non-nil) receives the final record exactly once — a
// done/failed record after the scheduling round that finalizes it, or
// a StatusLost record when the engine crashes (Crash) with the request
// still queued. Like Options.OnRequestDone it runs on the engine's
// scheduling goroutine (or the Crash caller's) outside the engine's
// locks and must not block. Fleet dispatchers use it to resolve their
// tickets without polling and to collect lost requests for failover.
func (e *Engine) SubmitTracked(req Request, onDone func(Record)) (*Ticket, error) {
	if req.Tenant == "" {
		return nil, fmt.Errorf("serve: request needs a tenant")
	}
	model, err := dnn.ByName(req.Model)
	if err != nil {
		e.countRejected(req.Tenant)
		return nil, fmt.Errorf("serve: %w", err)
	}
	if plan, ok := e.opts.Plans[model.Name]; ok && plan.NumSegments() > 1 {
		return e.submitFused(req, model, plan, onDone)
	}
	return e.submitModel(req, model, onDone)
}

// SubmitModel is Submit for a caller-resolved model: fleet dispatchers
// submitting plan segments use it, because sliced segment models are
// not in the zoo. The request's Model field is ignored in favor of m,
// and no fusion plan applies (the caller already decomposed).
func (e *Engine) SubmitModel(req Request, m *dnn.Model) (*Ticket, error) {
	if req.Tenant == "" {
		return nil, fmt.Errorf("serve: request needs a tenant")
	}
	if m == nil || m.NumLayers() == 0 {
		e.countRejected(req.Tenant)
		return nil, fmt.Errorf("serve: nil or empty model")
	}
	return e.submitModel(req, m, nil)
}

// submitModel admits one whole-model request.
func (e *Engine) submitModel(req Request, model *dnn.Model, onDone func(Record)) (*Ticket, error) {
	if err := e.feasible(model); err != nil {
		e.countRejected(req.Tenant)
		return nil, err
	}
	arrival := req.ArrivalCycle
	if arrival < 0 {
		arrival = e.NowCycles()
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining {
		e.rejectLocked(req.Tenant)
		return nil, ErrDraining
	}
	if len(e.queues[req.Tenant]) >= e.opts.MaxQueue {
		e.rejectLocked(req.Tenant)
		return nil, fmt.Errorf("%w: tenant %q has %d pending", ErrQueueFull, req.Tenant, e.opts.MaxQueue)
	}

	e.nextID++
	ta := e.agg(req.Tenant)
	ta.submitted++
	e.modelCounts[model.Name]++
	rec := &Record{
		ID:           e.nextID,
		Tenant:       req.Tenant,
		Model:        model.Name,
		Priority:     req.Priority,
		Status:       StatusQueued,
		ArrivalCycle: arrival,
		SLACycles:    req.SLACycles,
	}
	p := &pending{
		rec: rec,
		// Batch is the 1-based per-model index across the whole
		// engine (the committed schedule is one workload), so trace
		// names like "unet#3" stay unique.
		inst:   workload.Instance{Model: model, Batch: e.modelCounts[model.Name], ArrivalCycle: arrival},
		done:   make(chan struct{}),
		onDone: onDone,
	}
	e.records[rec.ID] = rec
	if len(e.queues[req.Tenant]) == 0 {
		e.rr = append(e.rr, req.Tenant)
	}
	e.queues[req.Tenant] = append(e.queues[req.Tenant], p)
	e.npending++
	if e.opts.OnAccept != nil {
		ar := req
		ar.Model, ar.ArrivalCycle = model.Name, arrival
		e.opts.OnAccept(ar, "")
	}
	e.cond.Signal()
	return &Ticket{ID: rec.ID, rec: rec, done: p.done}, nil
}

// submitFused admits one fused request: one pending per plan segment,
// enqueued consecutively on the tenant's queue (FIFO pops guarantee a
// predecessor is admitted no later than its successor), all under one
// record and one ticket.
func (e *Engine) submitFused(req Request, model *dnn.Model, plan dse.SegmentPlan, onDone func(Record)) (*Ticket, error) {
	segModels, err := segmentModels(model, plan)
	if err != nil {
		e.countRejected(req.Tenant)
		return nil, err
	}
	if err := e.feasible(model); err != nil {
		e.countRejected(req.Tenant)
		return nil, err
	}
	arrival := req.ArrivalCycle
	if arrival < 0 {
		arrival = e.NowCycles()
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining {
		e.rejectLocked(req.Tenant)
		return nil, ErrDraining
	}
	if len(e.queues[req.Tenant])+len(segModels) > e.opts.MaxQueue {
		e.rejectLocked(req.Tenant)
		return nil, fmt.Errorf("%w: tenant %q has %d pending", ErrQueueFull, req.Tenant, len(e.queues[req.Tenant]))
	}

	e.nextID++
	ta := e.agg(req.Tenant)
	ta.submitted++
	rec := &Record{
		ID:           e.nextID,
		Tenant:       req.Tenant,
		Model:        model.Name,
		Priority:     req.Priority,
		Status:       StatusQueued,
		ArrivalCycle: arrival,
		SLACycles:    req.SLACycles,
		Segments:     make([]SegmentRecord, len(segModels)),
	}
	ch := &chainState{
		rec:    rec,
		done:   make(chan struct{}),
		onDone: onDone,
		placed: make([]int, len(segModels)),
		left:   len(segModels),
	}
	for i := range ch.placed {
		ch.placed[i] = -1
	}
	e.segStats.FusedRequests++
	e.segStats.Segments += int64(len(segModels))
	e.records[rec.ID] = rec
	if len(e.queues[req.Tenant]) == 0 {
		e.rr = append(e.rr, req.Tenant)
	}
	for i, sm := range segModels {
		e.modelCounts[sm.Name]++
		e.queues[req.Tenant] = append(e.queues[req.Tenant], &pending{
			rec:      rec,
			inst:     workload.Instance{Model: sm, Batch: e.modelCounts[sm.Name], ArrivalCycle: arrival},
			chain:    ch,
			segIndex: i,
		})
	}
	e.npending += len(segModels)
	if e.opts.OnAccept != nil {
		ar := req
		ar.Model, ar.ArrivalCycle = model.Name, arrival
		e.opts.OnAccept(ar, fmt.Sprintf("%s/%d", model.Name, len(segModels)))
	}
	e.cond.Signal()
	return &Ticket{ID: rec.ID, rec: rec, done: ch.done}, nil
}

// segmentModels resolves a plan's interned segment models, validating
// that the segments tile the model's layers exactly.
func segmentModels(model *dnn.Model, plan dse.SegmentPlan) ([]*dnn.Model, error) {
	out, err := plan.Slices(model)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return out, nil
}

// feasible rejects models with a layer whose buffer occupancy exceeds
// the global buffer on every sub-accelerator — admitting one would
// deadlock the assignment loop (the incremental scheduler rolls back,
// but the request can never be served on this HDA).
func (e *Engine) feasible(model *dnn.Model) error {
	hda := e.hda.Load()
	buf := hda.Class.GlobalBufBytes
	for li := range model.Layers {
		fits := false
		for _, sub := range hda.Subs {
			if e.cache.EstimateRef(&model.Layers[li], sub.Style, sub.HW).OccupancyBytes <= buf {
				fits = true
				break
			}
		}
		if !fits {
			return fmt.Errorf("serve: %s layer %d cannot fit the %d-byte global buffer on any sub-accelerator",
				model.Name, li, buf)
		}
	}
	return nil
}

func (e *Engine) countRejected(tenant string) {
	e.mu.Lock()
	e.rejectLocked(tenant)
	e.mu.Unlock()
}

// rejectLocked accounts a rejection without creating tenant state for
// never-admitted tenant names. e.mu held.
func (e *Engine) rejectLocked(tenant string) {
	if ta := e.tenants[tenant]; ta != nil {
		ta.rejected++
		return
	}
	e.rejectedOther++
}

// agg returns (creating if needed) a tenant's aggregate. e.mu held.
func (e *Engine) agg(tenant string) *tenantAgg {
	ta := e.tenants[tenant]
	if ta == nil {
		ta = &tenantAgg{}
		e.tenants[tenant] = ta
	}
	return ta
}

// loop is the single scheduling goroutine: wake on submissions, pop a
// fair batch, extend the incremental schedule, publish results.
func (e *Engine) loop() {
	for {
		e.mu.Lock()
		for (e.npending == 0 || e.paused) && !e.draining {
			e.cond.Wait()
		}
		if e.npending == 0 && e.draining {
			e.mu.Unlock()
			close(e.loopDone)
			return
		}
		batch := e.popBatchLocked()
		e.mu.Unlock()

		e.admit(batch)
	}
}

// popBatchLocked removes up to MaxBatch pending requests, visiting
// tenants round-robin, one request per tenant per pass. e.mu held.
func (e *Engine) popBatchLocked() []*pending {
	var batch []*pending
	for len(batch) < e.opts.MaxBatch && e.npending > 0 {
		took := false
		i := 0
		for i < len(e.rr) && len(batch) < e.opts.MaxBatch {
			t := e.rr[i]
			q := e.queues[t]
			if len(q) == 0 {
				e.rr = append(e.rr[:i], e.rr[i+1:]...)
				continue
			}
			batch = append(batch, q[0])
			e.queues[t] = q[1:]
			e.npending--
			took = true
			if len(e.queues[t]) == 0 {
				e.rr = append(e.rr[:i], e.rr[i+1:]...)
				continue
			}
			i++
		}
		if !took {
			break
		}
		// Rotate from where the pass actually stopped, so the tenant
		// that was next in line leads the following batch. When the
		// batch fills mid-pass (i < len(rr)) the unserved tenants move
		// to the front — rotating by a fixed 1 here would restart every
		// saturated batch at rr[0] and starve the tail of the rotation.
		// After a complete pass everyone was served once; advance the
		// leader by one so no tenant is systematically first.
		switch {
		case i < len(e.rr):
			if i > 0 {
				e.rr = append(e.rr[i:], e.rr[:i]...)
			}
		case len(e.rr) > 1:
			e.rr = append(e.rr[1:], e.rr[0])
		}
	}
	return batch
}

// admit extends the incremental schedule with one popped batch and
// publishes each request's placement. Fused-chain segments publish
// into their shared record; the request itself finalizes (ticket
// closes, hook fires) only when its last segment lands.
func (e *Engine) admit(batch []*pending) {
	if len(batch) == 0 {
		return
	}
	e.schedMu.Lock()
	placements, errs := e.extendElastic(batch)
	// floor snapshots the admission floor the batch was placed against;
	// preemptible tracking below uses it to prune entries whose
	// placements already fully precede it (nothing left to revoke).
	floor := e.inc.Floor()
	e.schedMu.Unlock()

	// finalized collects the records that reached a terminal status in
	// this round (every unfused request; a fused request only with its
	// final segment) for the completion hooks outside the locks.
	var finalized []doneEvent
	e.mu.Lock()
	for i, p := range batch {
		if p.chain != nil {
			e.admitSegmentLocked(p, placements[i], errs[i], &finalized)
			continue
		}
		if p.resume != nil {
			e.admitResumeLocked(p, placements[i], errs[i], floor)
			continue
		}
		rec := p.rec
		if errs[i] != nil {
			rec.Status = StatusFailed
			rec.Err = errs[i].Error()
			e.agg(rec.Tenant).failed++
			e.finishLocked(rec.ID)
			close(p.done)
			finalized = append(finalized, doneEvent{rec, p.onDone})
			continue
		}
		pl := placements[i]
		rec.Status = StatusDone
		rec.Instance = pl.Instance
		rec.StartCycle = pl.StartCycle
		rec.FinishCycle = pl.FinishCycle
		rec.BusyCycles = pl.BusyCycles
		rec.EnergyPJ = pl.EnergyPJ
		// Latency is measured from the *requested* arrival, so floor
		// clamping shows up as queueing delay, as it should.
		rec.LatencyCycles = pl.FinishCycle - rec.ArrivalCycle
		rec.QueueCycles = pl.StartCycle - rec.ArrivalCycle
		if rec.SLACycles > 0 {
			rec.SLAViolated = rec.LatencyCycles > rec.SLACycles
		}
		ta := e.agg(rec.Tenant)
		ta.completed++
		ta.addLatency(rec.LatencyCycles)
		ta.latSum += rec.LatencyCycles
		ta.queueSum += rec.QueueCycles
		ta.energyPJ += rec.EnergyPJ
		if rec.SLACycles > 0 {
			ta.slaTracked++
			if rec.SLAViolated {
				ta.slaViolations++
			}
		}
		if pl.FinishCycle > e.maxFinishCycle {
			e.maxFinishCycle = pl.FinishCycle
		}
		e.finishLocked(rec.ID)
		close(p.done)
		finalized = append(finalized, doneEvent{rec, p.onDone})
		if e.opts.Elastic {
			e.trackPreemptibleLocked(p, pl, floor)
		}
	}
	e.mu.Unlock()

	e.fireHooks(finalized)
}

// doneEvent pairs a finalized record with its per-request callback.
type doneEvent struct {
	rec    *Record
	onDone func(Record)
}

// fireHooks delivers finalized records to the global OnRequestDone
// hook and each request's onDone callback, outside the engine's locks.
func (e *Engine) fireHooks(events []doneEvent) {
	hook := e.opts.OnRequestDone
	for _, ev := range events {
		if hook != nil {
			hook(*ev.rec)
		}
		if ev.onDone != nil {
			ev.onDone(*ev.rec)
		}
	}
}

// admitSegmentLocked publishes one fused-chain segment's outcome into
// the shared record and finalizes the request when its last segment
// lands. e.mu held.
func (e *Engine) admitSegmentLocked(p *pending, pl sched.Placement, err error, finalized *[]doneEvent) {
	ch := p.chain
	rec := ch.rec
	if ch.lost {
		// The chain was finalized by Crash while this segment was in
		// the admitting batch: the record is already terminal (and its
		// waiters released), so only the segment counters move.
		if err != nil {
			e.segStats.SegmentsFailed++
		} else {
			e.segStats.SegmentsCompleted++
		}
		return
	}
	sr := &rec.Segments[p.segIndex]
	sr.Index = p.segIndex
	sr.Model = p.inst.Model.Name
	if err != nil {
		ch.failed = true
		e.segStats.SegmentsFailed++
		sr.Err = err.Error()
		if rec.Err == "" {
			rec.Err = fmt.Sprintf("segment %d: %s", p.segIndex, err)
		}
	} else {
		e.segStats.SegmentsCompleted++
		sr.Instance = pl.Instance
		sr.StartCycle = pl.StartCycle
		sr.FinishCycle = pl.FinishCycle
		sr.BusyCycles = pl.BusyCycles
		sr.EnergyPJ = pl.EnergyPJ
		rec.BusyCycles += pl.BusyCycles
		rec.EnergyPJ += pl.EnergyPJ
		if pl.FinishCycle > e.maxFinishCycle {
			e.maxFinishCycle = pl.FinishCycle
		}
	}

	ch.left--
	if ch.left > 0 {
		return
	}

	// Last segment: finalize the request.
	ta := e.agg(rec.Tenant)
	if ch.failed {
		rec.Status = StatusFailed
		ta.failed++
		e.segStats.FusedFailed++
	} else {
		n := len(rec.Segments)
		first, last := &rec.Segments[0], &rec.Segments[n-1]
		rec.Status = StatusDone
		rec.Instance = first.Instance
		rec.StartCycle = first.StartCycle
		rec.FinishCycle = last.FinishCycle
		rec.LatencyCycles = last.FinishCycle - rec.ArrivalCycle
		rec.QueueCycles = first.StartCycle - rec.ArrivalCycle
		if rec.SLACycles > 0 {
			rec.SLAViolated = rec.LatencyCycles > rec.SLACycles
			ta.slaTracked++
			if rec.SLAViolated {
				ta.slaViolations++
			}
		}
		ta.completed++
		ta.addLatency(rec.LatencyCycles)
		ta.latSum += rec.LatencyCycles
		ta.queueSum += rec.QueueCycles
		ta.energyPJ += rec.EnergyPJ
		e.segStats.FusedCompleted++
		e.segStats.SegmentSpanCycles += last.FinishCycle - first.StartCycle
		e.segStats.SegmentBusyCycles += rec.BusyCycles
		for k := 1; k < n; k++ {
			e.segStats.HandoffBubbleCycles += rec.Segments[k].StartCycle - rec.Segments[k-1].FinishCycle
		}
	}
	e.finishLocked(rec.ID)
	close(ch.done)
	*finalized = append(*finalized, doneEvent{rec, ch.onDone})
}

// extendBatch admits the whole batch to the incremental schedule in
// one Extend, and returns per-request placements/errors. A batched
// Extend fails as a unit (it rolls back every admission), so on error
// the admissions are retried one by one: only the truly infeasible
// requests fail, instead of one bad admission poisoning up to
// MaxBatch-1 innocent tenants' requests. Fused-chain segments carry
// an Admission.After on their predecessor's placed instance (or its
// in-batch admission slot — tenant FIFO pops guarantee the
// predecessor appears earlier in the batch); segments whose chain
// already failed are failed fast without touching the scheduler.
// e.schedMu held.
func (e *Engine) extendBatch(batch []*pending) ([]sched.Placement, []error) {
	placements := make([]sched.Placement, len(batch))
	errs := make([]error, len(batch))

	// base is the global instance index the batch's first admission
	// will receive — what in-batch After references are built from.
	base := e.inc.NumInstances()
	live := make([]int, 0, len(batch)) // batch indices actually admitted
	adms := make([]sched.Admission, 0, len(batch))
	for i, p := range batch {
		if p.chain != nil && p.chain.failed {
			errs[i] = errChainBroken
			continue
		}
		a := sched.Admission{Instance: e.clampFloor(p.inst), Priority: p.rec.Priority}
		if p.chain != nil && p.segIndex > 0 {
			if gi := p.chain.placed[p.segIndex-1]; gi >= 0 {
				a.After = gi + 1
			} else {
				found := false
				for k, j := range live {
					q := batch[j]
					if q.chain == p.chain && q.segIndex == p.segIndex-1 {
						a.After = base + k + 1
						found = true
						break
					}
				}
				if !found {
					// The predecessor is neither placed nor in this batch:
					// it must have failed admission. Break the chain.
					p.chain.failed = true
					errs[i] = errChainBroken
					continue
				}
			}
		}
		live = append(live, i)
		adms = append(adms, a)
	}
	if len(adms) == 0 {
		return placements, errs
	}

	ps, err := e.inc.Extend(adms)
	if err == nil {
		for k, i := range live {
			placements[i] = ps[k]
			if p := batch[i]; p.chain != nil {
				p.chain.placed[p.segIndex] = ps[k].Instance
			}
		}
		return placements, errs
	}
	if len(adms) == 1 {
		i := live[0]
		errs[i] = err
		if p := batch[i]; p.chain != nil {
			p.chain.failed = true
		}
		return placements, errs
	}

	// One-by-one retry, in batch order so a chain's predecessor is
	// either placed (After resolves through placed) or failed (the
	// chain breaks) before its successor is attempted.
	for _, i := range live {
		p := batch[i]
		if p.chain != nil && p.chain.failed {
			errs[i] = errChainBroken
			continue
		}
		// Re-clamp: a successful earlier retry may have advanced the
		// admission floor past this arrival.
		a := sched.Admission{Instance: e.clampFloor(p.inst), Priority: p.rec.Priority}
		if p.chain != nil && p.segIndex > 0 {
			a.After = p.chain.placed[p.segIndex-1] + 1 // placed, or the chain would be failed
		}
		one, err := e.inc.Extend([]sched.Admission{a})
		if err != nil {
			errs[i] = err
			if p.chain != nil {
				p.chain.failed = true
			}
			continue
		}
		placements[i] = one[0]
		if p.chain != nil {
			p.chain.placed[p.segIndex] = one[0].Instance
		}
	}
	return placements, errs
}

// clampFloor lifts an instance's arrival to the incremental schedule's
// admission floor: the committed schedule may have moved past it, and
// online engines cannot place work in the past. e.schedMu held.
func (e *Engine) clampFloor(inst workload.Instance) workload.Instance {
	if floor := e.inc.Floor(); inst.ArrivalCycle < floor {
		inst.ArrivalCycle = floor
	}
	return inst
}

// finishLocked appends a finished record to the eviction FIFO and
// evicts the oldest finished records beyond MaxRecords. e.mu held.
func (e *Engine) finishLocked(id int64) {
	e.doneFIFO = append(e.doneFIFO, id)
	for len(e.doneFIFO) > e.opts.MaxRecords {
		delete(e.records, e.doneFIFO[0])
		e.doneFIFO = e.doneFIFO[1:]
	}
}

// Load is a point-in-time load probe, cheap enough for a dispatcher
// to read on every routing decision.
type Load struct {
	// Pending counts accepted submissions not yet admitted to the
	// schedule.
	Pending int `json:"pending"`
	// BacklogCycles is the committed schedule's horizon: the latest
	// finish cycle of any admitted request. Work dispatched to this
	// engine completes no earlier.
	BacklogCycles int64 `json:"backlog_cycles"`
	// Draining reports whether the engine still accepts work.
	Draining bool `json:"draining"`
}

// Load returns the engine's current load probe.
func (e *Engine) Load() Load {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Load{Pending: e.npending, BacklogCycles: e.maxFinishCycle, Draining: e.draining}
}

// Lookup returns a copy of a request's record.
func (e *Engine) Lookup(id int64) (Record, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.records[id]
	if !ok {
		return Record{}, false
	}
	return *rec, true
}

// Snapshot materializes the committed schedule so far (every admitted
// instance), suitable for validation, Gantt rendering and export.
func (e *Engine) Snapshot() *sched.Schedule {
	e.schedMu.Lock()
	defer e.schedMu.Unlock()
	return e.inc.Snapshot()
}

// Pause suspends the scheduling loop: requests admitted while paused
// stay queued until Resume, though Submit keeps accepting them.
// Quiesce, Drain and Crash override a pause, so lifecycle transitions
// never hang on a frozen engine. Pausing is the determinism handle for
// fault injection: the scheduling goroutine normally races ahead of
// the submitter in wall time, so which requests a Crash finds queued
// depends on goroutine progress — but on an idle, paused engine the
// extracted set is exactly the requests admitted since the pause,
// bit-replayable run to run.
func (e *Engine) Pause() {
	e.mu.Lock()
	e.paused = true
	e.mu.Unlock()
}

// Resume lifts a Pause and wakes the scheduling loop.
func (e *Engine) Resume() {
	e.mu.Lock()
	e.paused = false
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Quiesce stops admissions without waiting: every later Submit fails
// with ErrDraining, while the scheduling loop keeps running until the
// already-accepted queues are empty. It is idempotent. Use Done to
// observe completion; Drain is Quiesce plus the wait. A fleet
// migration quiesces a whole retiring generation at once before
// joining on the individual engines.
func (e *Engine) Quiesce() {
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// Done is closed once a quiesced (or draining) engine has finished
// every accepted request and its scheduling goroutine has exited. It
// never closes before Quiesce, Drain or Crash is called.
func (e *Engine) Done() <-chan struct{} { return e.loopDone }

// Crash simulates an abrupt replica failure: admissions stop (like
// Quiesce), but instead of serving the accepted queues, every queued
// request is extracted — finalized as StatusLost, erased from the
// engine's accounting (its tenant's submitted count rolls back, so a
// crashed engine's statistics cover only requests it actually
// terminated), its waiters released, and its completion hooks fired
// with the lost record. A fleet dispatcher re-admits lost requests on
// surviving replicas, so each is counted exactly once fleet-wide.
//
// The scheduling goroutine finishes the batch it is currently
// admitting (those requests complete normally — they made it under
// the wire) and then exits; wait on Done to observe that every
// completion hook has fired. A fused chain with extracted segments
// can never complete: it is finalized immediately (StatusLost, or
// StatusFailed if it had already broken) and its remaining in-batch
// segments only update the segment counters. Extraction order is the
// tenant round-robin rotation then FIFO within each tenant, so a
// fleet's failover re-dispatch order is deterministic. Idempotent;
// returns the number of lost requests (0 on repeat calls).
func (e *Engine) Crash() int {
	e.mu.Lock()
	if e.crashed {
		e.mu.Unlock()
		return 0
	}
	e.crashed = true
	e.draining = true

	var events []doneEvent
	lostChains := make(map[*chainState]int)
	var chainOrder []*chainState
	requests := 0
	for _, tenant := range e.rr {
		for _, p := range e.queues[tenant] {
			if p.chain != nil {
				if lostChains[p.chain] == 0 {
					chainOrder = append(chainOrder, p.chain)
				}
				lostChains[p.chain]++
				continue
			}
			if p.resume != nil {
				// A preempted request awaiting resumption dies with the
				// crashed schedule: its prefix already completed (and was
				// reported), the suspended suffix is unrecoverable. Erase
				// it like any lost request, but fire no hooks — the
				// original completion already fired them, and a second
				// delivery would double-count at the dispatcher.
				requests++
				rec := p.rec
				e.agg(rec.Tenant).submitted--
				delete(e.records, rec.ID)
				rec.Status = StatusLost
				rec.Err = "replica crashed"
				close(p.done)
				continue
			}
			requests++
			rec := p.rec
			e.agg(rec.Tenant).submitted--
			delete(e.records, rec.ID)
			rec.Status = StatusLost
			rec.Err = "replica crashed"
			close(p.done)
			events = append(events, doneEvent{rec, p.onDone})
		}
		delete(e.queues, tenant)
	}
	e.rr = e.rr[:0]
	e.npending = 0
	for _, ch := range chainOrder {
		requests++
		extracted := lostChains[ch]
		ch.lost = true
		rec := ch.rec
		delete(e.records, rec.ID)
		if ch.failed {
			// The chain had already broken; finalize with the failure
			// it would have reported.
			rec.Status = StatusFailed
			e.agg(rec.Tenant).failed++
			e.segStats.FusedFailed++
			e.segStats.SegmentsFailed += int64(extracted)
		} else {
			rec.Status = StatusLost
			rec.Err = "replica crashed"
			e.agg(rec.Tenant).submitted--
			e.segStats.FusedLost++
			e.segStats.SegmentsLost += int64(extracted)
		}
		close(ch.done)
		events = append(events, doneEvent{rec, ch.onDone})
	}
	e.lost += int64(requests)
	e.cond.Broadcast()
	e.mu.Unlock()

	e.fireHooks(events)
	return requests
}

// Crashed reports whether Crash has been called.
func (e *Engine) Crashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

// Prewarm resolves the cost columns of every model in w on the
// engine's HDA, so the first admissions after a cold start (or a
// fleet migration handing tenants to fresh engines) hit a hot
// scheduler table instead of paying the cost-model walk inline.
func (e *Engine) Prewarm(w *workload.Workload) {
	if w == nil {
		return
	}
	e.schedMu.Lock()
	e.inc.Prewarm(w)
	e.schedMu.Unlock()
}

// Drain stops admissions, waits for the queues to empty (or ctx), and
// returns the final statistics.
func (e *Engine) Drain(ctx context.Context) (Stats, error) {
	e.Quiesce()
	select {
	case <-e.loopDone:
		return e.Stats(), nil
	case <-ctx.Done():
		return e.Stats(), ctx.Err()
	}
}
