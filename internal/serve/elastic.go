package serve

// Elastic serving surface: Preempt revokes the scheduled-but-future
// suffix of low-priority completed placements at the current layer
// boundary and re-queues them for resumption; Reassign re-sizes the
// HDA's sub-accelerator slices between committed layers. Both build on
// the sched-layer primitives (Incremental.Preempt/Resume/Reassign) and
// keep the engine's conservation invariant: a preempted request moves
// from Completed back to in-flight and lands in Completed (or Failed)
// exactly once more when its suffix is rescheduled.
//
// Determinism: Preempt picks victims by (latest finish, then highest
// id) over a slice maintained in admission order, and resumptions are
// admitted by the same single scheduling goroutine as everything else,
// so identical call sequences yield identical schedules.

import (
	"fmt"
	"sort"

	"repro/internal/accel"
	"repro/internal/sched"
)

// StatusPreempted marks a request whose placement was revoked at a
// layer boundary (Engine.Preempt): its already-executed prefix stands,
// its remaining layers are re-queued for resumption. The status is
// internal-transient — the record returns to StatusDone (or
// StatusFailed) when the resumption is scheduled — but it is exported
// so record dumps taken mid-preemption are self-describing.
const StatusPreempted Status = "preempted"

// preemptee tracks one revocable placement: an unfused request whose
// committed placement still extends past the admission floor, so a
// Preempt can roll back layers. Guarded by e.mu.
type preemptee struct {
	id        int64
	rec       *Record // the record backing e.records[id] at registration
	schedInst int     // global schedule instance index
	finish    int64   // committed finish cycle
	prio      int
}

// resumeState carries a preempted request's checkpoint through the
// queue to its resumption round. prefix* hold the surviving
// already-executed prefix's contribution, merged back into the record
// when the suffix lands; prefixStart is the prefix's original start
// cycle, or -1 when the whole instance was rolled back (no prefix).
type resumeState struct {
	cp           sched.Checkpoint
	prefixBusy   int64
	prefixEnergy float64
	prefixStart  int64
}

// extendElastic is the scheduling round's admission step: resume
// pendings go through Incremental.Resume one by one, everything else
// through the batched extendBatch. With no resumptions in the batch it
// is exactly extendBatch — the elastic-off fast path the golden
// fingerprints pin. e.schedMu held.
func (e *Engine) extendElastic(batch []*pending) ([]sched.Placement, []error) {
	hasResume := false
	for _, p := range batch {
		if p.resume != nil {
			hasResume = true
			break
		}
	}
	if !hasResume {
		return e.extendBatch(batch)
	}

	placements := make([]sched.Placement, len(batch))
	errs := make([]error, len(batch))
	rest := make([]*pending, 0, len(batch))
	restIdx := make([]int, 0, len(batch))
	for i, p := range batch {
		if p.resume == nil {
			rest = append(rest, p)
			restIdx = append(restIdx, i)
			continue
		}
		placements[i], errs[i] = e.inc.Resume(p.resume.cp, p.rec.Priority, e.inc.Floor())
	}
	if len(rest) > 0 {
		ps, es := e.extendBatch(rest)
		for k, i := range restIdx {
			placements[i], errs[i] = ps[k], es[k]
		}
	}
	return placements, errs
}

// Preempt revokes up to max committed placements of requests with
// priority strictly below belowPriority, rolling each back to the
// current layer boundary (the admission floor) and re-queuing the
// remainder for resumption on its tenant's queue. Victims are chosen
// latest-finish-first (ties: newest request first) — the work that
// frees the most future capacity per preemption. Requests whose
// placements end at or before the boundary effectively finished and
// are skipped. Fused chains are never preempted (their handoff buffers
// tie segments together). Returns the number of requests preempted;
// always 0 unless Options.Elastic is set.
//
// A preempted request's ticket has typically already been released
// with the original completion; the revised placement is visible
// through Lookup and the engine statistics, which treat the request as
// in-flight again until its resumption lands. Completion hooks do NOT
// re-fire on resumption — the original delivery was the only one.
func (e *Engine) Preempt(belowPriority, max int) int {
	if max <= 0 {
		return 0
	}
	e.schedMu.Lock()
	defer e.schedMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.opts.Elastic || e.crashed {
		return 0
	}

	boundary := e.inc.Floor()
	e.prunePreemptibleLocked(boundary)
	cands := make([]*preemptee, 0, len(e.preemptible))
	for _, pe := range e.preemptible {
		if pe.prio < belowPriority {
			cands = append(cands, pe)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].finish != cands[j].finish {
			return cands[i].finish > cands[j].finish
		}
		return cands[i].id > cands[j].id
	})

	n := 0
	for _, pe := range cands {
		if n >= max {
			break
		}
		cp, err := e.inc.Preempt(pe.schedInst, boundary)
		if err != nil {
			// Nothing revocable (the boundary only ever advances, so
			// this entry is permanently exhausted): drop it.
			e.removePreemptibleLocked(pe.id)
			continue
		}
		e.applyPreemptLocked(pe, cp)
		n++
	}
	if n > 0 {
		e.cond.Signal()
	}
	return n
}

// applyPreemptLocked moves one preempted request from completed back
// to in-flight: reverses its completion statistics, replaces its
// published record with a StatusPreempted copy (ticket holders keep
// the original — records handed out are never mutated after their
// done channel closed), and enqueues a resume pending carrying the
// checkpoint. e.mu and e.schedMu held.
func (e *Engine) applyPreemptLocked(pe *preemptee, cp sched.Checkpoint) {
	rec := pe.rec
	ta := e.agg(rec.Tenant)
	ta.completed--
	ta.latSum -= rec.LatencyCycles
	ta.queueSum -= rec.QueueCycles
	ta.energyPJ -= rec.EnergyPJ
	ta.dropLatency(rec.LatencyCycles)
	if rec.SLACycles > 0 {
		ta.slaTracked--
		if rec.SLAViolated {
			ta.slaViolations--
		}
	}
	for i, id := range e.doneFIFO {
		if id == rec.ID {
			e.doneFIFO = append(e.doneFIFO[:i], e.doneFIFO[i+1:]...)
			break
		}
	}

	rs := &resumeState{
		cp:           cp,
		prefixBusy:   rec.BusyCycles - cp.FreedBusyCycles,
		prefixEnergy: rec.EnergyPJ - cp.FreedEnergyPJ,
		prefixStart:  rec.StartCycle,
	}
	if cp.NextLayer == 0 {
		rs.prefixStart = -1 // the whole instance rolled back
	}
	nrec := new(Record)
	*nrec = *rec
	nrec.Status = StatusPreempted
	nrec.StartCycle = 0
	nrec.FinishCycle = 0
	nrec.QueueCycles = 0
	nrec.LatencyCycles = 0
	nrec.BusyCycles = rs.prefixBusy
	nrec.EnergyPJ = rs.prefixEnergy
	nrec.SLAViolated = false
	e.records[nrec.ID] = nrec

	p := &pending{
		rec:    nrec,
		done:   make(chan struct{}),
		resume: rs,
	}
	if len(e.queues[rec.Tenant]) == 0 {
		e.rr = append(e.rr, rec.Tenant)
	}
	e.queues[rec.Tenant] = append(e.queues[rec.Tenant], p)
	e.npending++
	e.preemptions++
	e.removePreemptibleLocked(rec.ID)
}

// admitResumeLocked publishes a resumption's outcome: the resumed
// suffix's placement merges with the checkpointed prefix into the
// record, completion statistics are re-applied, and the done channel
// closes. No completion hook fires — the original completion already
// delivered this request. A failed resumption (the suffix cannot be
// rescheduled) finalizes the request as failed; the sched layer keeps
// it suspended, conserving the busy/ledger accounting. e.mu held.
func (e *Engine) admitResumeLocked(p *pending, pl sched.Placement, err error, floor int64) {
	rec := p.rec
	rs := p.resume
	if err != nil {
		rec.Status = StatusFailed
		rec.Err = err.Error()
		e.agg(rec.Tenant).failed++
		e.finishLocked(rec.ID)
		close(p.done)
		return
	}
	rec.Status = StatusDone
	rec.Instance = pl.Instance
	rec.StartCycle = pl.StartCycle
	if rs.prefixStart >= 0 {
		rec.StartCycle = rs.prefixStart
	}
	rec.FinishCycle = pl.FinishCycle
	rec.BusyCycles = rs.prefixBusy + pl.BusyCycles
	rec.EnergyPJ = rs.prefixEnergy + pl.EnergyPJ
	rec.LatencyCycles = pl.FinishCycle - rec.ArrivalCycle
	rec.QueueCycles = rec.StartCycle - rec.ArrivalCycle
	rec.SLAViolated = rec.SLACycles > 0 && rec.LatencyCycles > rec.SLACycles
	ta := e.agg(rec.Tenant)
	ta.completed++
	ta.addLatency(rec.LatencyCycles)
	ta.latSum += rec.LatencyCycles
	ta.queueSum += rec.QueueCycles
	ta.energyPJ += rec.EnergyPJ
	if rec.SLACycles > 0 {
		ta.slaTracked++
		if rec.SLAViolated {
			ta.slaViolations++
		}
	}
	if pl.FinishCycle > e.maxFinishCycle {
		e.maxFinishCycle = pl.FinishCycle
	}
	e.resumptions++
	e.finishLocked(rec.ID)
	close(p.done)
	e.trackPreemptibleLocked(p, pl, floor) // a resumed request is revocable again
}

// trackPreemptibleLocked registers a freshly-placed unfused request as
// a preemption candidate and prunes entries whose placements the
// admission floor has fully passed. Only called when Options.Elastic
// is set. e.mu held.
func (e *Engine) trackPreemptibleLocked(p *pending, pl sched.Placement, floor int64) {
	e.prunePreemptibleLocked(floor)
	if pl.FinishCycle <= floor {
		return
	}
	e.preemptible = append(e.preemptible, &preemptee{
		id:        p.rec.ID,
		rec:       p.rec,
		schedInst: pl.Instance,
		finish:    pl.FinishCycle,
		prio:      p.rec.Priority,
	})
}

// prunePreemptibleLocked drops candidates whose placements end at or
// before the floor: their every layer is committed history. e.mu held.
func (e *Engine) prunePreemptibleLocked(floor int64) {
	live := e.preemptible[:0]
	for _, pe := range e.preemptible {
		if pe.finish > floor {
			live = append(live, pe)
		}
	}
	e.preemptible = live
}

// removePreemptibleLocked removes one candidate by record id. e.mu
// held.
func (e *Engine) removePreemptibleLocked(id int64) {
	for i, pe := range e.preemptible {
		if pe.id == id {
			e.preemptible = append(e.preemptible[:i], e.preemptible[i+1:]...)
			return
		}
	}
}

// dropLatency removes the most recent occurrence of one sample from
// the sliding window (a preempted completion's latency is no longer a
// served latency). The ring is rebuilt in chronological order; if the
// sample already slid out of the window nothing changes.
func (ta *tenantAgg) dropLatency(l int64) {
	chrono := make([]int64, 0, len(ta.latencies))
	chrono = append(chrono, ta.latencies[ta.latNext:]...)
	chrono = append(chrono, ta.latencies[:ta.latNext]...)
	for i := len(chrono) - 1; i >= 0; i-- {
		if chrono[i] == l {
			chrono = append(chrono[:i], chrono[i+1:]...)
			break
		}
	}
	// latNext 0 keeps ring semantics: position 0 now holds the oldest
	// sample, so a still-full window (sample not found) overwrites
	// oldest-first and a shortened one appends.
	ta.latencies = chrono
	ta.latNext = 0
}

// Reassign re-sizes the engine's sub-accelerator slices at the current
// layer boundary: committed layers keep their historical costs,
// everything scheduled afterwards is costed on the new slice sizes
// (see sched.Incremental.Reassign). The partition count must match the
// HDA's sub count — changing the number of slices is a migration, not
// a reassignment. Reassign does not require Options.Elastic: an engine
// that is never reassigned is bit-identical to one without the
// capability.
func (e *Engine) Reassign(parts []accel.Partition) error {
	e.schedMu.Lock()
	defer e.schedMu.Unlock()
	e.mu.Lock()
	crashed := e.crashed
	e.mu.Unlock()
	if crashed {
		return fmt.Errorf("serve: reassign on a crashed engine")
	}
	nh, err := e.inc.Reassign(parts)
	if err != nil {
		return err
	}
	e.hda.Store(nh)
	e.mu.Lock()
	e.reassigns++
	e.mu.Unlock()
	return nil
}
