package serve

// Tests of the fused (segment-pipeline) serving path: a request whose
// model has a multi-segment plan is admitted as a precedence-chained
// sequence of sliced-model instances under one ticket.

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/dnn"
	"repro/internal/dse"
	"repro/internal/maestro"
)

// fusedPlans computes segment plans for the named models on the test
// HDA, failing the test unless every plan actually splits.
func fusedPlans(t testing.TB, cache *maestro.Cache, e *dse.Objective, names ...string) map[string]dse.SegmentPlan {
	t.Helper()
	h := testHDA(t)
	o := dse.ObjectiveEDP
	if e != nil {
		o = *e
	}
	plans := make(map[string]dse.SegmentPlan)
	for _, name := range names {
		m, err := dnn.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := dse.PlanSegments(cache, h, m, o, 4)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumSegments() < 2 {
			t.Fatalf("%s does not split on the test HDA; pick another model", name)
		}
		plans[name] = p
	}
	return plans
}

// TestFusedRequestLifecycle walks one fused request end to end: the
// record carries one SegmentRecord per plan segment, segments respect
// chain precedence, and the request-level summary is consistent.
func TestFusedRequestLifecycle(t *testing.T) {
	cache := newTestCache()
	plans := fusedPlans(t, cache, nil, "mobilenetv2")
	opts := DefaultOptions()
	opts.Plans = plans
	e, err := New(cache, testHDA(t), opts)
	if err != nil {
		t.Fatal(err)
	}

	ticket, err := e.Submit(Request{Tenant: "a", Model: "mobilenetv2", SLACycles: 1 << 50})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ticket.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusDone {
		t.Fatalf("status %q err %q", rec.Status, rec.Err)
	}
	plan := plans["mobilenetv2"]
	if len(rec.Segments) != plan.NumSegments() {
		t.Fatalf("%d segment records, want %d", len(rec.Segments), plan.NumSegments())
	}
	for i, sr := range rec.Segments {
		if sr.Index != i {
			t.Errorf("segment %d: index %d", i, sr.Index)
		}
		if !strings.HasPrefix(sr.Model, "mobilenetv2[") {
			t.Errorf("segment %d: model %q, want a mobilenetv2 slice", i, sr.Model)
		}
		if sr.FinishCycle <= sr.StartCycle || sr.BusyCycles <= 0 {
			t.Errorf("segment %d: degenerate placement %+v", i, sr)
		}
		if i > 0 && sr.StartCycle < rec.Segments[i-1].FinishCycle {
			t.Errorf("segment %d starts at %d before predecessor finishes at %d",
				i, sr.StartCycle, rec.Segments[i-1].FinishCycle)
		}
	}
	first, last := rec.Segments[0], rec.Segments[len(rec.Segments)-1]
	if rec.StartCycle != first.StartCycle || rec.FinishCycle != last.FinishCycle {
		t.Errorf("summary span [%d,%d] != segment span [%d,%d]",
			rec.StartCycle, rec.FinishCycle, first.StartCycle, last.FinishCycle)
	}
	if rec.LatencyCycles != last.FinishCycle-rec.ArrivalCycle {
		t.Errorf("latency %d, want %d", rec.LatencyCycles, last.FinishCycle-rec.ArrivalCycle)
	}
	var busy int64
	var energy float64
	for _, sr := range rec.Segments {
		busy += sr.BusyCycles
		energy += sr.EnergyPJ
	}
	if rec.BusyCycles != busy || rec.EnergyPJ != energy {
		t.Errorf("summary busy/energy %d/%.0f != segment sums %d/%.0f",
			rec.BusyCycles, rec.EnergyPJ, busy, energy)
	}

	st, err := e.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sg := st.Segments
	if sg.FusedRequests != 1 || sg.FusedCompleted != 1 || sg.FusedFailed != 0 {
		t.Errorf("fused counters %+v", sg)
	}
	n := int64(plan.NumSegments())
	if sg.Segments != n || sg.SegmentsCompleted != n || sg.SegmentsFailed != 0 {
		t.Errorf("segment counters %+v, want %d", sg, n)
	}
	if sg.SegmentSpanCycles != rec.FinishCycle-rec.StartCycle {
		t.Errorf("span %d, want %d", sg.SegmentSpanCycles, rec.FinishCycle-rec.StartCycle)
	}
	if sg.HandoffBubbleCycles != sg.SegmentSpanCycles-sg.SegmentBusyCycles {
		// One request, sequential segments: span decomposes exactly
		// into busy + bubble.
		t.Errorf("bubble %d != span %d - busy %d",
			sg.HandoffBubbleCycles, sg.SegmentSpanCycles, sg.SegmentBusyCycles)
	}
	if err := e.Snapshot().Validate(); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

// TestFusedConservation pins request- and segment-level conservation
// under a concurrent fused + unfused mix: after a drain, submitted ==
// completed + failed at request granularity and segments ==
// segments_completed + segments_failed at segment granularity. Run
// under -race this also exercises the chain bookkeeping for data
// races.
func TestFusedConservation(t *testing.T) {
	cache := newTestCache()
	plans := fusedPlans(t, cache, nil, "mobilenetv2", "mobilenetv1")
	opts := DefaultOptions()
	opts.Plans = plans
	e, err := New(cache, testHDA(t), opts)
	if err != nil {
		t.Fatal(err)
	}

	type stream struct {
		tenant string
		model  string
		count  int
	}
	streams := []stream{
		{tenant: "ar", model: "mobilenetv2", count: 20},   // fused, 4 segments
		{tenant: "vr", model: "mobilenetv1", count: 20},   // fused, 2 segments
		{tenant: "batch", model: "resnet18", count: 12},   // unfused (no plan)
		{tenant: "mixed", model: "mobilenetv2", count: 8}, // fused
	}
	var wg sync.WaitGroup
	for _, s := range streams {
		wg.Add(1)
		go func(s stream) {
			defer wg.Done()
			for i := 0; i < s.count; i++ {
				ticket, err := e.Submit(Request{
					Tenant: s.tenant, Model: s.model,
					ArrivalCycle: int64(i) * 500_000,
				})
				if err != nil {
					t.Error(err)
					return
				}
				rec, err := ticket.Wait(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				if rec.Status != StatusDone {
					t.Errorf("request %d (%s): %q err %q", rec.ID, s.model, rec.Status, rec.Err)
				}
			}
		}(s)
	}
	wg.Wait()

	st, err := e.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := int64(20 + 20 + 12 + 8)
	if st.Submitted != want || st.Completed+st.Failed != want {
		t.Errorf("request conservation: submitted %d completed %d failed %d, want %d",
			st.Submitted, st.Completed, st.Failed, want)
	}
	sg := st.Segments
	if sg.FusedRequests != 48 || sg.FusedCompleted+sg.FusedFailed != 48 {
		t.Errorf("fused conservation: %+v", sg)
	}
	wantSegs := int64(20*plans["mobilenetv2"].NumSegments() +
		20*plans["mobilenetv1"].NumSegments() +
		8*plans["mobilenetv2"].NumSegments())
	if sg.Segments != wantSegs || sg.SegmentsCompleted+sg.SegmentsFailed != wantSegs {
		t.Errorf("segment conservation: %+v, want %d segments", sg, wantSegs)
	}

	snap := e.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatalf("committed schedule invalid: %v", err)
	}
	if got, want := snap.Workload.NumInstances(), int(wantSegs)+12; got != want {
		t.Errorf("schedule has %d instances, want %d (segments + unfused)", got, want)
	}
}

// TestFusedQuiesceInFlight quiesces the engine while multi-segment
// chains are still queued: every accepted ticket must still resolve
// (Quiesce stops admissions, not accepted work), and conservation
// must hold afterwards.
func TestFusedQuiesceInFlight(t *testing.T) {
	cache := newTestCache()
	plans := fusedPlans(t, cache, nil, "mobilenetv2")
	opts := DefaultOptions()
	opts.Plans = plans
	e, err := New(cache, testHDA(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for i := 0; i < 16; i++ {
		ticket, err := e.Submit(Request{Tenant: "a", Model: "mobilenetv2", ArrivalCycle: int64(i) * 100_000})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, ticket)
	}
	e.Quiesce()
	if _, err := e.Submit(Request{Tenant: "a", Model: "mobilenetv2"}); err == nil {
		t.Error("submission accepted after Quiesce")
	}
	for i, ticket := range tickets {
		rec, err := ticket.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rec.Status != StatusDone {
			t.Errorf("ticket %d: %q err %q", i, rec.Status, rec.Err)
		}
	}
	<-e.Done()
	st := e.Stats()
	if st.Segments.FusedCompleted != 16 || st.Pending != 0 {
		t.Errorf("post-quiesce stats: %+v", st.Segments)
	}
}

// TestFusedPlanValidation rejects submissions whose plan does not tile
// the model (gaps, wrong coverage) instead of admitting a corrupt
// chain.
func TestFusedPlanValidation(t *testing.T) {
	cache := newTestCache()
	m, err := dnn.ByName("mobilenetv1")
	if err != nil {
		t.Fatal(err)
	}
	L := m.NumLayers()
	bad := map[string]dse.SegmentPlan{
		"mobilenetv1": {Model: "mobilenetv1", Segments: []dse.Segment{
			{From: 0, To: 5}, {From: 6, To: L}, // gap at layer 5
		}},
	}
	opts := DefaultOptions()
	opts.Plans = bad
	e, err := New(cache, testHDA(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(Request{Tenant: "a", Model: "mobilenetv1"}); err == nil {
		t.Fatal("gap plan accepted")
	}
	short := map[string]dse.SegmentPlan{
		"mobilenetv1": {Model: "mobilenetv1", Segments: []dse.Segment{
			{From: 0, To: 5}, {From: 5, To: L - 1}, // misses the last layer
		}},
	}
	e2, err := New(cache, testHDA(t), Options{Sched: DefaultOptions().Sched, Plans: short})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Submit(Request{Tenant: "a", Model: "mobilenetv1"}); err == nil {
		t.Fatal("short plan accepted")
	}
	if _, err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
