package serve

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/energy"
	"repro/internal/maestro"
)

func elasticEngine(t testing.TB) *Engine {
	t.Helper()
	opts := DefaultOptions()
	opts.Elastic = true
	e, err := New(maestro.NewCache(energy.Default28nm()), testHDA(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// waitIdle blocks until the engine has no pending work (the scheduling
// loop has drained every queue), without stopping admissions.
func waitIdle(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if e.Load().Pending == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("engine did not go idle")
}

// TestEnginePreemptResume walks one request through the full preempt →
// re-queue → resume cycle and checks the record, the counters and the
// committed schedule all line up.
func TestEnginePreemptResume(t *testing.T) {
	e := elasticEngine(t)
	ticket, err := e.Submit(Request{Tenant: "batch", Model: "resnet50", ArrivalCycle: 0})
	if err != nil {
		t.Fatal(err)
	}
	first, err := ticket.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != StatusDone {
		t.Fatalf("status %q, want done (err %q)", first.Status, first.Err)
	}

	if n := e.Preempt(1, 1); n != 1 {
		t.Fatalf("Preempt revoked %d placements, want 1", n)
	}
	// The ticket's record is immutable after done: the revision lives
	// in the engine's table.
	if first.Status != StatusDone {
		t.Fatalf("ticket record mutated by preemption: %+v", first)
	}

	st, err := e.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Preemptions != 1 || st.Resumes != 1 {
		t.Fatalf("counters: %d preemptions, %d resumes, want 1/1", st.Preemptions, st.Resumes)
	}
	if st.Submitted != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("conservation broken after preempt/resume: %+v", st)
	}
	rec, ok := e.Lookup(first.ID)
	if !ok {
		t.Fatal("record evicted")
	}
	if rec.Status != StatusDone {
		t.Fatalf("resumed record status %q (err %q), want done", rec.Status, rec.Err)
	}
	// Preemption at the floor (0) rolled the whole instance back, so
	// the resumed placement re-runs every layer on the same slices:
	// busy and energy must match the original placement exactly.
	if rec.BusyCycles != first.BusyCycles {
		t.Errorf("resumed busy %d != original %d", rec.BusyCycles, first.BusyCycles)
	}
	if err := e.Snapshot().Validate(); err != nil {
		t.Errorf("schedule invalid after preempt/resume: %v", err)
	}
	snap := e.Snapshot()
	layers := 0
	for range snap.Assignments {
		layers++
	}
	if want := snap.Workload.Instances[0].Model.NumLayers(); layers != want {
		t.Errorf("schedule holds %d layer assignments, want %d (no double-run, no loss)", layers, want)
	}
}

// TestEnginePreemptPriorityFilter checks the victim filter: only
// requests with priority strictly below the threshold are revocable,
// and the latest-finishing victim goes first.
func TestEnginePreemptPriorityFilter(t *testing.T) {
	e := elasticEngine(t)
	high, err := e.Submit(Request{Tenant: "arvr", Model: "brq-handpose", Priority: 2, ArrivalCycle: 0})
	if err != nil {
		t.Fatal(err)
	}
	low, err := e.Submit(Request{Tenant: "batch", Model: "mobilenetv1", Priority: 0, ArrivalCycle: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := high.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := low.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	if n := e.Preempt(2, 8); n != 1 {
		t.Fatalf("Preempt revoked %d placements, want exactly the low-priority one", n)
	}
	rec, _ := e.Lookup(high.ID)
	if rec.Status != StatusDone {
		t.Errorf("high-priority record disturbed: %q", rec.Status)
	}
	if st, err := e.Drain(context.Background()); err != nil || st.Completed != 2 {
		t.Fatalf("drain: %v, stats %+v", err, st)
	}
	if err := e.Snapshot().Validate(); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

// TestEnginePreemptNoCandidates: an engine with elasticity off, or
// with only exhausted candidates, preempts nothing.
func TestEnginePreemptNoCandidates(t *testing.T) {
	plain := testEngine(t)
	tk, err := plain.Submit(Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := plain.Preempt(10, 8); n != 0 {
		t.Fatalf("non-elastic engine preempted %d", n)
	}
	if _, err := plain.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	e := elasticEngine(t)
	if n := e.Preempt(10, 8); n != 0 {
		t.Fatalf("empty engine preempted %d", n)
	}
	if _, err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestEngineReassign swaps the slice sizes mid-stream and checks the
// engine keeps serving on the re-sized HDA.
func TestEngineReassign(t *testing.T) {
	e := elasticEngine(t)
	tk, err := e.Submit(Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	if err := e.Reassign([]accel.Partition{
		{Style: dataflow.NVDLA, PEs: 768, BWGBps: 12},
		{Style: dataflow.ShiDiannao, PEs: 256, BWGBps: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if got := e.HDA().Subs[0].HW.PEs; got != 768 {
		t.Fatalf("HDA not swapped: sub 0 has %d PEs, want 768", got)
	}
	if err := e.Reassign([]accel.Partition{{Style: dataflow.NVDLA, PEs: 512, BWGBps: 8}}); err == nil {
		t.Fatal("sub-count change accepted; want migration-required error")
	}

	tk2, err := e.Submit(Request{Tenant: "a", Model: "mobilenetv2", ArrivalCycle: 0})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tk2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusDone {
		t.Fatalf("post-reassign request: %q (%s)", rec.Status, rec.Err)
	}
	st, err := e.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.PEReassigns != 1 {
		t.Errorf("PEReassigns %d, want 1", st.PEReassigns)
	}
	if err := e.Snapshot().Validate(); err != nil {
		t.Errorf("schedule invalid after reassign: %v", err)
	}
}

// TestElasticConservationSeeded is the engine-level preemption
// conservation property test: randomized (seeded) preempt points and
// slice reassignments across a multi-tenant stream must keep
// Submitted == Completed + Failed after a drain, fire each request's
// completion hook exactly once, and leave a valid committed schedule
// (no double-run layers, non-negative ledger — Validate checks both).
func TestElasticConservationSeeded(t *testing.T) {
	models := []string{"mobilenetv1", "mobilenetv2", "brq-handpose", "ssd-mobilenetv1"}
	parts := [][]accel.Partition{
		{{Style: dataflow.NVDLA, PEs: 512, BWGBps: 8}, {Style: dataflow.ShiDiannao, PEs: 512, BWGBps: 8}},
		{{Style: dataflow.NVDLA, PEs: 768, BWGBps: 12}, {Style: dataflow.ShiDiannao, PEs: 256, BWGBps: 4}},
		{{Style: dataflow.NVDLA, PEs: 256, BWGBps: 4}, {Style: dataflow.ShiDiannao, PEs: 768, BWGBps: 12}},
	}
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		opts := DefaultOptions()
		opts.Elastic = true
		var hooks atomic.Int64
		opts.OnRequestDone = func(Record) { hooks.Add(1) }
		e, err := New(maestro.NewCache(energy.Default28nm()), testHDA(t), opts)
		if err != nil {
			t.Fatal(err)
		}

		submitted := 0
		for i := 0; i < 30; i++ {
			_, err := e.Submit(Request{
				Tenant:       []string{"arvr", "mlperf", "batch"}[i%3],
				Model:        models[rng.Intn(len(models))],
				Priority:     rng.Intn(3),
				ArrivalCycle: int64(i) * 500_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			submitted++
			switch rng.Intn(5) {
			case 0:
				e.Preempt(1+rng.Intn(3), 1+rng.Intn(2))
			case 1:
				if err := e.Reassign(parts[rng.Intn(len(parts))]); err != nil {
					t.Fatalf("seed %d: reassign: %v", seed, err)
				}
			}
		}
		waitIdle(t, e)
		e.Preempt(3, 4) // final sweep: preempt whatever is still revocable

		st, err := e.Drain(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Submitted != int64(submitted) {
			t.Fatalf("seed %d: submitted %d != %d", seed, st.Submitted, submitted)
		}
		if st.Submitted != st.Completed+st.Failed {
			t.Fatalf("seed %d: conservation broken: submitted %d != completed %d + failed %d (preempt %d resume %d)",
				seed, st.Submitted, st.Completed, st.Failed, st.Preemptions, st.Resumes)
		}
		if got := hooks.Load(); got != int64(submitted) {
			t.Fatalf("seed %d: completion hooks fired %d times for %d requests (must be exactly once each)",
				seed, got, submitted)
		}
		if st.Preemptions > 0 && st.Resumes+st.Failed == 0 {
			t.Fatalf("seed %d: %d preemptions but no resumption outcome", seed, st.Preemptions)
		}
		if err := e.Snapshot().Validate(); err != nil {
			t.Fatalf("seed %d: schedule invalid: %v", seed, err)
		}
	}
}

// TestElasticRaceHammer runs concurrent submit × preempt × reassign ×
// stats against one elastic engine — the `make race` workout for the
// elastic locking (schedMu before mu everywhere).
func TestElasticRaceHammer(t *testing.T) {
	e := elasticEngine(t)
	const perWorker = 12
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := []string{"arvr", "mlperf", "batch"}[w]
			for i := 0; i < perWorker; i++ {
				_, err := e.Submit(Request{
					Tenant:       tenant,
					Model:        []string{"mobilenetv1", "mobilenetv2"}[i%2],
					Priority:     i % 3,
					ArrivalCycle: int64(i) * 400_000,
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			e.Preempt(2, 2)
			e.Stats()
		}
	}()
	go func() {
		defer wg.Done()
		flip := [][]accel.Partition{
			{{Style: dataflow.NVDLA, PEs: 640, BWGBps: 10}, {Style: dataflow.ShiDiannao, PEs: 384, BWGBps: 6}},
			{{Style: dataflow.NVDLA, PEs: 512, BWGBps: 8}, {Style: dataflow.ShiDiannao, PEs: 512, BWGBps: 8}},
		}
		for i := 0; i < 10; i++ {
			if err := e.Reassign(flip[i%2]); err != nil {
				t.Error(err)
				return
			}
			e.Load()
		}
	}()
	wg.Wait()

	st, err := e.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != st.Completed+st.Failed {
		t.Fatalf("conservation broken under concurrency: %+v", st)
	}
	if err := e.Snapshot().Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
}
