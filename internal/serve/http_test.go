package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func testServer(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	e := testEngine(t)
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(srv.Close)
	return e, srv
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPEndToEnd exercises the full JSON API: health, models, HDA,
// 100+ concurrent submissions from two tenants, per-request lookup,
// stats, schedule export, and drain.
func TestHTTPEndToEnd(t *testing.T) {
	_, srv := testServer(t)

	var health map[string]any
	if code := getJSON(t, srv.URL+"/v1/healthz", &health); code != http.StatusOK || health["ok"] != true {
		t.Fatalf("healthz: code %d body %v", code, health)
	}
	var models struct {
		Models []string `json:"models"`
	}
	if code := getJSON(t, srv.URL+"/v1/models", &models); code != http.StatusOK || len(models.Models) == 0 {
		t.Fatalf("models: code %d %v", code, models)
	}
	var hda hdaView
	if code := getJSON(t, srv.URL+"/v1/hda", &hda); code != http.StatusOK || len(hda.Subs) != 2 {
		t.Fatalf("hda: code %d %+v", code, hda)
	}

	// 2 tenants × 52 synchronous submissions each, concurrently.
	const perTenant = 52
	var wg sync.WaitGroup
	records := make(chan Record, 2*perTenant)
	fails := make(chan string, 2*perTenant)
	for _, tenant := range []string{"arvr", "mlperf"} {
		model := map[string]string{"arvr": "brq-handpose", "mlperf": "mobilenetv1"}[tenant]
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant, model string, i int) {
				defer wg.Done()
				var rec Record
				arrival := int64(i+1) * 500_000
				code := postJSON(t, srv.URL+"/v1/requests", SubmitRequest{
					Request: Request{
						Tenant:    tenant,
						Model:     model,
						SLACycles: 1 << 50,
					},
					ArrivalCycle: &arrival,
					Wait:         true,
				}, &rec)
				if code != http.StatusOK || rec.Status != StatusDone {
					fails <- fmt.Sprintf("tenant %s req %d: code %d status %q err %q", tenant, i, code, rec.Status, rec.Err)
					return
				}
				records <- rec
			}(tenant, model, i)
		}
	}
	wg.Wait()
	close(records)
	close(fails)
	for f := range fails {
		t.Fatal(f)
	}

	n := 0
	var lastID int64
	for rec := range records {
		n++
		lastID = rec.ID
		if rec.LatencyCycles <= 0 || rec.FinishCycle <= rec.StartCycle {
			t.Errorf("request %d: missing latency stats: %+v", rec.ID, rec)
		}
	}
	if n != 2*perTenant {
		t.Fatalf("%d completions, want %d", n, 2*perTenant)
	}

	var rec Record
	if code := getJSON(t, fmt.Sprintf("%s/v1/requests/%d", srv.URL, lastID), &rec); code != http.StatusOK || rec.Status != StatusDone {
		t.Fatalf("lookup %d: code %d %+v", lastID, code, rec)
	}
	if code := getJSON(t, srv.URL+"/v1/requests/999999", nil); code != http.StatusNotFound {
		t.Errorf("missing id: code %d, want 404", code)
	}

	var st Stats
	if code := getJSON(t, srv.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: code %d", code)
	}
	if st.Completed != 2*perTenant || len(st.Tenants) != 2 {
		t.Fatalf("stats: %+v", st)
	}
	for _, ts := range st.Tenants {
		if ts.Completed != perTenant || ts.P95LatencyCycles <= 0 {
			t.Errorf("tenant %s: %+v", ts.Tenant, ts)
		}
	}

	var schedule struct {
		Assignments []map[string]any `json:"assignments"`
	}
	if code := getJSON(t, srv.URL+"/v1/schedule", &schedule); code != http.StatusOK || len(schedule.Assignments) == 0 {
		t.Fatalf("schedule: code %d, %d assignments", code, len(schedule.Assignments))
	}

	var final Stats
	if code := postJSON(t, srv.URL+"/v1/drain", struct{}{}, &final); code != http.StatusOK {
		t.Fatalf("drain: code %d", code)
	}
	if final.Pending != 0 || final.Completed != 2*perTenant {
		t.Fatalf("final stats: %+v", final)
	}
	// Draining engines refuse new work over HTTP too: 503, the engine
	// is going away (unlike a 429 full queue, retrying here is futile).
	if code := postJSON(t, srv.URL+"/v1/requests", SubmitRequest{Request: Request{Tenant: "x", Model: "resnet50"}}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: code %d, want 503", code)
	}
}

// TestHTTPBadRequests covers malformed submissions.
func TestHTTPBadRequests(t *testing.T) {
	_, srv := testServer(t)
	resp, err := http.Post(srv.URL+"/v1/requests", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: code %d, want 400", resp.StatusCode)
	}
	if code := postJSON(t, srv.URL+"/v1/requests", SubmitRequest{Request: Request{Tenant: "a", Model: "not-a-model"}}, nil); code == http.StatusOK {
		t.Error("unknown model accepted over HTTP")
	}
	if code := getJSON(t, srv.URL+"/v1/requests/abc", nil); code != http.StatusBadRequest {
		t.Errorf("non-numeric id: code %d, want 400", code)
	}
}
