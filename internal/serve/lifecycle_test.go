package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDrainZeroOutstanding: draining an engine that never admitted a
// request completes immediately instead of hanging on an empty queue.
func TestDrainZeroOutstanding(t *testing.T) {
	e := testEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := e.Drain(ctx)
	if err != nil {
		t.Fatalf("zero-outstanding drain: %v", err)
	}
	if st.Submitted != 0 || st.Pending != 0 {
		t.Fatalf("zero-outstanding drain stats: %+v", st)
	}
}

// TestQuiesceIdempotent: Quiesce and Drain may be called repeatedly in
// any order; every call after the first is a no-op that still
// completes, and every submission after the first Quiesce fails with
// ErrDraining — deterministically, not just eventually.
func TestQuiesceIdempotent(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Submit(Request{Tenant: "a", Model: "mobilenetv1"}); err != nil {
		t.Fatal(err)
	}

	e.Quiesce()
	e.Quiesce() // double-Quiesce: no panic, no second broadcast needed

	for i := 0; i < 3; i++ {
		if _, err := e.Submit(Request{Tenant: "a", Model: "mobilenetv1"}); !errors.Is(err, ErrDraining) {
			t.Fatalf("post-Quiesce submit %d: err %v, want ErrDraining", i, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st1, err := e.Drain(ctx)
	if err != nil {
		t.Fatalf("drain after quiesce: %v", err)
	}
	// Drain after Done: idempotent, returns the same final counters.
	st2, err := e.Drain(ctx)
	if err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if st1.Submitted != st2.Submitted || st1.Completed != st2.Completed || st2.Pending != 0 {
		t.Fatalf("drain not idempotent: first %+v, second %+v", st1, st2)
	}
	if st1.Completed != 1 {
		t.Fatalf("completed %d, want 1", st1.Completed)
	}

	// Post-Done submission still fails with ErrDraining.
	if _, err := e.Submit(Request{Tenant: "a", Model: "mobilenetv1"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-Done submit: err %v, want ErrDraining", err)
	}
}

// TestPauseResume: a paused engine keeps admitting but schedules
// nothing; Resume releases the queued work.
func TestPauseResume(t *testing.T) {
	e := testEngine(t)
	e.Pause()
	ticket, err := e.Submit(Request{Tenant: "a", Model: "mobilenetv1"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ticket.Done():
		t.Fatal("paused engine scheduled a request")
	case <-time.After(50 * time.Millisecond):
	}
	e.Resume()
	rec, err := ticket.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusDone {
		t.Fatalf("status %q after resume, want done (err %q)", rec.Status, rec.Err)
	}
}

// TestCrashExtractsQueued: crashing a paused engine extracts exactly
// the queued requests as StatusLost — tickets resolve, completion
// hooks fire, and the engine's own accounting erases them so a
// fleet-side re-admission counts each exactly once.
func TestCrashExtractsQueued(t *testing.T) {
	e := testEngine(t)
	e.Pause() // freeze scheduling so the queued set is exact

	const n = 4
	var tickets []*Ticket
	var hooks []Record
	for i := 0; i < n; i++ {
		ticket, err := e.SubmitTracked(Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: int64(i)},
			func(rec Record) { hooks = append(hooks, rec) })
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, ticket)
	}

	if got := e.Crash(); got != n {
		t.Fatalf("Crash extracted %d, want %d", got, n)
	}
	if !e.Crashed() {
		t.Fatal("Crashed() false after Crash")
	}
	// Crash fires hooks synchronously on the caller's goroutine.
	if len(hooks) != n {
		t.Fatalf("%d completion hooks fired, want %d", len(hooks), n)
	}
	for i, ticket := range tickets {
		rec, err := ticket.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rec.Status != StatusLost || rec.Err == "" {
			t.Fatalf("ticket %d: status %q (err %q), want lost", i, rec.Status, rec.Err)
		}
		if hooks[i].Status != StatusLost {
			t.Fatalf("hook %d: status %q, want lost", i, hooks[i].Status)
		}
	}
	// Extraction order is tenant round-robin then FIFO: one tenant here,
	// so hooks fire in submission order.
	for i := 1; i < len(hooks); i++ {
		if hooks[i].ArrivalCycle < hooks[i-1].ArrivalCycle {
			t.Fatalf("extraction out of order: %v", hooks)
		}
	}

	st := e.Stats()
	if st.Lost != n || !st.Crashed {
		t.Fatalf("stats after crash: lost %d crashed %v, want %d true", st.Lost, st.Crashed, n)
	}
	// The lost requests are erased from Submitted, so engine-level
	// conservation holds with no pending work left.
	if st.Submitted != 0 || st.Pending != 0 || st.Completed != 0 || st.Failed != 0 {
		t.Fatalf("crashed engine accounting not rolled back: %+v", st)
	}

	// Idempotent: a second crash extracts nothing.
	if got := e.Crash(); got != 0 {
		t.Fatalf("second Crash extracted %d, want 0", got)
	}
	// Post-crash submissions are refused like any draining engine.
	if _, err := e.Submit(Request{Tenant: "a", Model: "mobilenetv1"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-crash submit: err %v, want ErrDraining", err)
	}
	// The scheduling goroutine exits: Done closes.
	select {
	case <-e.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("Done did not close after Crash")
	}
}

// TestCrashSparesScheduledWork: requests already scheduled before the
// crash complete normally — only queued work is extracted.
func TestCrashSparesScheduledWork(t *testing.T) {
	e := testEngine(t)
	done, err := e.Submit(Request{Tenant: "a", Model: "mobilenetv1"})
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := done.Wait(context.Background()); err != nil || rec.Status != StatusDone {
		t.Fatalf("pre-crash request: %v %+v", err, rec)
	}

	e.Pause()
	doomed, err := e.Submit(Request{Tenant: "a", Model: "mobilenetv1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Crash(); got != 1 {
		t.Fatalf("Crash extracted %d, want 1", got)
	}
	if rec, _ := doomed.Wait(context.Background()); rec.Status != StatusLost {
		t.Fatalf("queued request status %q, want lost", rec.Status)
	}

	st := e.Stats()
	if st.Completed != 1 || st.Submitted != 1 || st.Lost != 1 {
		t.Fatalf("crash erased served work: %+v", st)
	}
}
