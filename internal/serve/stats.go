package serve

import (
	"sort"
	"time"
)

// TenantStats summarizes one tenant's served traffic.
type TenantStats struct {
	Tenant    string `json:"tenant"`
	Submitted int64  `json:"submitted"`
	Completed int64  `json:"completed"`
	Failed    int64  `json:"failed"`
	Rejected  int64  `json:"rejected"`

	// Shed counts arrivals turned away by fleet-level overload
	// shedding (admission control ahead of the engines; engines never
	// see shed requests, so only fleet aggregation fills this).
	Shed int64 `json:"shed"`

	SLATracked    int64 `json:"sla_tracked"`
	SLAViolations int64 `json:"sla_violations"`

	// Latency percentiles over the most recent completions (sliding
	// window), in cycles (arrival to completion: queueing +
	// execution); means are all-time.
	MeanLatencyCycles int64 `json:"mean_latency_cycles"`
	P50LatencyCycles  int64 `json:"p50_latency_cycles"`
	P95LatencyCycles  int64 `json:"p95_latency_cycles"`
	P99LatencyCycles  int64 `json:"p99_latency_cycles"`
	MeanQueueCycles   int64 `json:"mean_queue_cycles"`

	EnergyPJ float64 `json:"energy_pj"`
}

// Stats is an aggregate engine snapshot.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	ClockGHz      float64 `json:"clock_ghz"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	Pending   int64 `json:"pending"`

	// Lost counts requests extracted by Crash. They are erased from
	// Submitted (and the per-tenant counters) when extracted, so
	// conservation (Submitted == Completed + Failed + Pending) holds
	// on the crashed engine and a failover re-admission elsewhere
	// counts each lost request exactly once; Lost only records how
	// much work the crash orphaned.
	Lost int64 `json:"lost"`

	// Crashed marks an engine stopped by Crash.
	Crashed bool `json:"crashed"`

	// MakespanCycles is the committed schedule's horizon; simulated
	// throughput is completions per simulated second over it.
	MakespanCycles   int64   `json:"makespan_cycles"`
	SimThroughputRPS float64 `json:"sim_throughput_rps"`

	// Utilization is each sub-accelerator's busy fraction of the
	// committed makespan.
	Utilization []float64 `json:"utilization"`

	// CostCacheEntries counts memoized cost-model results shared
	// across requests.
	CostCacheEntries int `json:"cost_cache_entries"`

	// Elastic counters (Options.Elastic): Preemptions counts revoked
	// placements, Resumes successful re-schedules of preempted work,
	// PEReassigns sub-accelerator slice re-sizings. None carries
	// omitempty — 0 is a meaningful reading (elastic on, never
	// triggered) distinct from the field being absent.
	Preemptions int64 `json:"preemptions"`
	Resumes     int64 `json:"resumes"`
	PEReassigns int64 `json:"pe_reassigns"`

	// Segments reports fused-serving (segment pipeline) counters.
	Segments SegmentStats `json:"segments"`

	Tenants []TenantStats `json:"tenants"`
}

// SegmentStats counts fused-request (segment pipeline) activity. A
// fused request is one submission decomposed into plan segments;
// request-granularity conservation (Submitted == Completed + Failed +
// Rejected after a drain) holds at the request level, and segment
// counters conserve independently (Segments == SegmentsCompleted +
// SegmentsFailed after a drain). No field carries omitempty: zero is
// a meaningful reading on every counter.
type SegmentStats struct {
	// FusedRequests counts accepted submissions that were decomposed
	// into a multi-segment chain.
	FusedRequests int64 `json:"fused_requests"`
	// FusedCompleted / FusedFailed split finished fused requests;
	// FusedLost counts chains orphaned by an engine Crash (their
	// fleet-level retry, if any, is a fresh chain elsewhere).
	FusedCompleted int64 `json:"fused_completed"`
	FusedFailed    int64 `json:"fused_failed"`
	FusedLost      int64 `json:"fused_lost"`

	// Segments counts admitted chain segments; completed/failed/lost
	// split the finished ones (lost = extracted by Crash before
	// scheduling). Conservation after a drain: Segments ==
	// SegmentsCompleted + SegmentsFailed + SegmentsLost.
	Segments          int64 `json:"segments"`
	SegmentsCompleted int64 `json:"segments_completed"`
	SegmentsFailed    int64 `json:"segments_failed"`
	SegmentsLost      int64 `json:"segments_lost"`

	// HandoffBubbleCycles sums inter-segment gaps (successor start
	// minus predecessor finish) across completed fused requests: the
	// pipeline's dead time. SegmentSpanCycles sums first-start to
	// last-finish spans, and SegmentBusyCycles the pure execution time
	// inside them — bubble/span is the overlap-loss fraction.
	HandoffBubbleCycles int64 `json:"handoff_bubble_cycles"`
	SegmentSpanCycles   int64 `json:"segment_span_cycles"`
	SegmentBusyCycles   int64 `json:"segment_busy_cycles"`
}

// Add merges another engine's segment counters — the fleet-side merge
// rule, mirroring TenantWindow.Add.
func (s *SegmentStats) Add(o SegmentStats) {
	s.FusedRequests += o.FusedRequests
	s.FusedCompleted += o.FusedCompleted
	s.FusedFailed += o.FusedFailed
	s.FusedLost += o.FusedLost
	s.Segments += o.Segments
	s.SegmentsCompleted += o.SegmentsCompleted
	s.SegmentsFailed += o.SegmentsFailed
	s.SegmentsLost += o.SegmentsLost
	s.HandoffBubbleCycles += o.HandoffBubbleCycles
	s.SegmentSpanCycles += o.SegmentSpanCycles
	s.SegmentBusyCycles += o.SegmentBusyCycles
}

// TenantWindow is one tenant's raw counters plus its latency sample
// window — the pre-percentile form of TenantStats. Fleet dispatchers
// read these from every replica and aggregate across engines (merged
// percentiles cannot be computed from per-engine percentiles).
type TenantWindow struct {
	Tenant                                 string
	Submitted, Completed, Failed, Rejected int64
	SLATracked, SLAViolations              int64
	LatencySum, QueueSum                   int64 // all-time, cycles
	EnergyPJ                               float64
	Latencies                              []int64 // copy of the sliding window
}

// Add merges another window's counters into w and appends its latency
// samples — the single merge rule every aggregator (fleet Stats
// across replicas, retired-generation history folding) must share, so
// a new TenantWindow field only ever needs one merge site.
func (w *TenantWindow) Add(o *TenantWindow) {
	w.Submitted += o.Submitted
	w.Completed += o.Completed
	w.Failed += o.Failed
	w.Rejected += o.Rejected
	w.SLATracked += o.SLATracked
	w.SLAViolations += o.SLAViolations
	w.LatencySum += o.LatencySum
	w.QueueSum += o.QueueSum
	w.EnergyPJ += o.EnergyPJ
	w.Latencies = append(w.Latencies, o.Latencies...)
}

// TenantWindows returns every tenant's raw statistics window, sorted
// by tenant name.
func (e *Engine) TenantWindows() []TenantWindow {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.tenants))
	for name := range e.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]TenantWindow, 0, len(names))
	for _, name := range names {
		ta := e.tenants[name]
		out = append(out, TenantWindow{
			Tenant:        name,
			Submitted:     ta.submitted,
			Completed:     ta.completed,
			Failed:        ta.failed,
			Rejected:      ta.rejected,
			SLATracked:    ta.slaTracked,
			SLAViolations: ta.slaViolations,
			LatencySum:    ta.latSum,
			QueueSum:      ta.queueSum,
			EnergyPJ:      ta.energyPJ,
			Latencies:     append([]int64(nil), ta.latencies...),
		})
	}
	return out
}

// Stats returns the engine's current aggregate statistics.
func (e *Engine) Stats() Stats {
	e.schedMu.Lock()
	snap := e.inc.Snapshot()
	e.schedMu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()

	st := Stats{
		UptimeSeconds:    time.Since(e.start).Seconds(), //herald:nondet wall-clock uptime is reporting-only
		ClockGHz:         e.opts.ClockGHz,
		Lost:             e.lost,
		Crashed:          e.crashed,
		Pending:          int64(e.npending),
		MakespanCycles:   snap.MakespanCycles,
		Utilization:      snap.Utilization(),
		CostCacheEntries: e.cache.Len(),
		Preemptions:      e.preemptions,
		Resumes:          e.resumptions,
		PEReassigns:      e.reassigns,
		Segments:         e.segStats,
	}
	names := make([]string, 0, len(e.tenants))
	for name := range e.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ta := e.tenants[name]
		ts := TenantStats{
			Tenant:        name,
			Submitted:     ta.submitted,
			Completed:     ta.completed,
			Failed:        ta.failed,
			Rejected:      ta.rejected,
			SLATracked:    ta.slaTracked,
			SLAViolations: ta.slaViolations,
			EnergyPJ:      ta.energyPJ,
		}
		if ta.completed > 0 {
			sorted := append([]int64(nil), ta.latencies...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			ts.MeanLatencyCycles = ta.latSum / ta.completed
			ts.P50LatencyCycles = Percentile(sorted, 50)
			ts.P95LatencyCycles = Percentile(sorted, 95)
			ts.P99LatencyCycles = Percentile(sorted, 99)
			ts.MeanQueueCycles = ta.queueSum / ta.completed
		}
		st.Submitted += ta.submitted
		st.Completed += ta.completed
		st.Failed += ta.failed
		st.Rejected += ta.rejected
		st.Tenants = append(st.Tenants, ts)
	}
	// Rejections from tenants that never had an admitted request.
	st.Rejected += e.rejectedOther
	if st.MakespanCycles > 0 {
		simSeconds := float64(st.MakespanCycles) / (e.opts.ClockGHz * 1e9)
		st.SimThroughputRPS = float64(st.Completed) / simSeconds
	}
	return st
}

// Percentile returns the nearest-rank percentile of sorted samples
// (0 for an empty slice). Exported so fleet-level aggregation computes
// cross-replica percentiles with the identical rank convention.
func Percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100 // ceil(p*n/100), nearest-rank
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}
