package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/dnn"
	"repro/internal/trace"
)

// SubmitRequest is the POST /v1/requests body: a Request plus
// transport options.
type SubmitRequest struct {
	Request

	// ArrivalCycle shadows Request.ArrivalCycle so the wire format
	// distinguishes an omitted field (nil: arrive "now") from an
	// explicit 0 (a deterministic cycle-0 arrival). Replay traces must
	// stay bit-reproducible, so an explicit 0 is honored verbatim.
	ArrivalCycle *int64 `json:"arrival_cycle,omitempty"`

	// Wait makes the call synchronous: the response carries the
	// final record instead of a queued acknowledgement.
	Wait bool `json:"wait,omitempty"` //herald:jsonzero absent and false both mean fire-and-forget on this input struct
}

// Normalize folds the wire-level arrival into the embedded Request:
// omitted means "now" (the engine's wall clock).
func (sr *SubmitRequest) Normalize() {
	if sr.ArrivalCycle != nil {
		sr.Request.ArrivalCycle = *sr.ArrivalCycle
	} else {
		sr.Request.ArrivalCycle = -1
	}
}

// submitAck acknowledges an asynchronous submission.
type submitAck struct {
	ID     int64  `json:"id"`
	Status Status `json:"status"`
}

// httpError is the JSON error body of every engine endpoint. Code is
// a stable machine-readable discriminator (clients branch on it, not
// on the message text): bad_request, queue_full, draining, not_found,
// timeout.
type httpError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// writeError emits the JSON error body. Retryable rejections carry a
// Retry-After header: overload (429) suggests a short backoff.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, httpError{Error: msg, Code: code})
}

// SubmitErrorStatus maps a Submit error to its HTTP status and stable
// error code: a full tenant queue is retryable overload (429), a
// draining engine is going away (503), anything else is the client's
// bug (400). Exported so the fleet surface speaks the same error
// contract (layering its own shed/no-replica codes on top).
func SubmitErrorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	}
	return http.StatusBadRequest, "bad_request"
}

// Handler returns the engine's JSON-over-HTTP API:
//
//	POST /v1/requests      submit a model instance ({tenant, model,
//	                       priority, sla_cycles, arrival_cycle, wait})
//	GET  /v1/requests/{id} per-request record (latency/SLA stats)
//	GET  /v1/stats         aggregate + per-tenant statistics
//	GET  /v1/schedule      committed schedule as JSON (trace format)
//	POST /v1/drain         stop admissions, wait, return final stats
//	GET  /v1/models        servable model zoo
//	GET  /v1/hda           the fixed HDA being served
//	GET  /v1/healthz       liveness
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/requests", e.handleSubmit)
	mux.HandleFunc("GET /v1/requests/{id}", e.handleLookup)
	mux.HandleFunc("GET /v1/stats", e.handleStats)
	mux.HandleFunc("GET /v1/schedule", e.handleSchedule)
	mux.HandleFunc("POST /v1/drain", e.handleDrain)
	mux.HandleFunc("GET /v1/models", e.handleModels)
	mux.HandleFunc("GET /v1/hda", e.handleHDA)
	mux.HandleFunc("GET /v1/healthz", e.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad request body: %v", err))
		return
	}
	req.Normalize()
	ticket, err := e.Submit(req.Request)
	if err != nil {
		status, code := SubmitErrorStatus(err)
		writeError(w, status, code, err.Error())
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, submitAck{ID: ticket.ID, Status: StatusQueued})
		return
	}
	rec, err := ticket.Wait(r.Context())
	if err != nil {
		writeError(w, http.StatusRequestTimeout, "timeout", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (e *Engine) handleLookup(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad request id")
		return
	}
	rec, ok := e.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no request %d", id))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (e *Engine) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, e.Stats())
}

func (e *Engine) handleSchedule(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := trace.WriteJSON(w, e.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (e *Engine) handleDrain(w http.ResponseWriter, r *http.Request) {
	st, err := e.Drain(r.Context())
	if err != nil {
		writeError(w, http.StatusRequestTimeout, "timeout", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (e *Engine) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": dnn.Names()})
}

// hdaView describes the served accelerator.
type hdaView struct {
	Name  string    `json:"name"`
	Class string    `json:"class"`
	Subs  []subView `json:"sub_accelerators"`
}

type subView struct {
	Name   string  `json:"name"`
	Style  string  `json:"style"`
	PEs    int     `json:"pes"`
	BWGBps float64 `json:"bw_gbps"`
}

func (e *Engine) handleHDA(w http.ResponseWriter, r *http.Request) {
	h := e.HDA()
	v := hdaView{Name: h.Name, Class: h.Class.Name}
	for _, s := range h.Subs {
		v.Subs = append(v.Subs, subView{Name: s.Name, Style: s.Style.String(), PEs: s.HW.PEs, BWGBps: s.HW.BWGBps})
	}
	writeJSON(w, http.StatusOK, v)
}

func (e *Engine) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":     true,
		"uptime": time.Since(e.start).String(), //herald:nondet wall-clock uptime is reporting-only
	})
}
