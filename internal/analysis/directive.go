package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A Directive is one parsed //herald:<kind> comment.
type Directive struct {
	// Pos is the comment's position.
	Pos token.Pos
	// Line is the comment's source line.
	Line int
	// Kind is the directive name after "herald:" (nondet, nolock,
	// jsonzero).
	Kind string
	// Reason is the mandatory justification text after the kind;
	// empty means the directive is malformed (bare) and suppresses
	// nothing.
	Reason string
}

// directivePrefix is the comment marker all suppression directives
// share. Like go:build directives, the comment must start exactly
// with it — no space between // and herald.
const directivePrefix = "//herald:"

// ParseDirectives extracts every herald directive from a parsed
// file's comments, in source order.
func ParseDirectives(fset *token.FileSet, f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			kind, reason, _ := strings.Cut(rest, " ")
			kind = strings.TrimSpace(kind)
			if kind == "" {
				continue
			}
			out = append(out, Directive{
				Pos:    c.Pos(),
				Line:   fset.Position(c.Pos()).Line,
				Kind:   kind,
				Reason: strings.TrimSpace(reason),
			})
		}
	}
	return out
}

// CheckDirectives reports malformed herald directives of the given
// kinds in the pass's files: a bare directive (no reason) is a
// finding, because suppressions must document why the invariant does
// not apply at the site. Exactly one analyzer owns each kind (detmap
// owns nondet, lockguard owns nolock, jsonzero owns jsonzero) so a
// malformed directive is reported once, not once per analyzer it
// would have silenced.
func CheckDirectives(pass *Pass, kinds ...string) {
	for _, f := range pass.Files {
		for _, d := range ParseDirectives(pass.Fset, f) {
			for _, k := range kinds {
				if d.Kind == k && d.Reason == "" {
					pass.Reportf(d.Pos, "bare //herald:%s directive: a suppression must carry a reason (//herald:%s <why>)", k, k)
				}
			}
		}
	}
}
