package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked module package, ready to be
// handed to analyzers via NewPass.
type Package struct {
	// Path is the package's import path (e.g. repro/internal/fleet).
	Path string
	// Dir is the package's source directory.
	Dir string
	// Fset is the loader-wide file set (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's facts for Files.
	Info *types.Info
}

// NewPass builds an analyzer Pass over the package, delivering
// diagnostics (stamped with the analyzer's name) to report.
func NewPass(a *Analyzer, pkg *Package, report func(Diagnostic)) *Pass {
	return &Pass{
		Fset:  pkg.Fset,
		Files: pkg.Files,
		Pkg:   pkg.Types,
		Info:  pkg.Info,
		report: func(d Diagnostic) {
			d.Analyzer = a.Name
			report(d)
		},
	}
}

// A Loader parses and type-checks packages of one module from
// source, resolving in-module imports itself and standard-library
// imports via GOROOT source (no compiled export data, no network, no
// external dependencies). Not safe for concurrent use.
type Loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
}

// NewLoader returns a loader rooted at the module directory
// (containing go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	modPath, err := modulePathOf(moduleDir)
	if err != nil {
		return nil, err
	}
	// The standard library is type-checked from GOROOT source; cgo
	// bodies cannot be type-checked that way, so resolve the pure-Go
	// variants (exported APIs are identical).
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleDir:  moduleDir,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePathOf extracts the module path from dir/go.mod.
func modulePathOf(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s/go.mod: no module directive", dir)
}

// Load resolves the patterns ("./...", "./internal/fleet", or plain
// relative directories) to module packages, loading each at most
// once, and returns them sorted by import path.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	var dirs []string
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "." {
			pat = "..."
		}
		if rest, ok := strings.CutSuffix(pat, "/..."); ok || pat == "..." {
			root := l.moduleDir
			if ok && rest != "" {
				root = filepath.Join(l.moduleDir, rest)
			}
			sub, err := goDirsUnder(root)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, sub...)
			continue
		}
		dirs = append(dirs, filepath.Join(l.moduleDir, pat))
	}
	var out []*Package
	seen := make(map[string]bool)
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.moduleDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.modulePath
		if rel != "." {
			path = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		if seen[path] {
			continue
		}
		seen[path] = true
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// goDirsUnder lists directories under root that contain at least one
// non-test .go file, skipping testdata, vendored and hidden trees.
func goDirsUnder(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goSources(p)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	return dirs, err
}

// goSources lists dir's non-test .go files, sorted.
func goSources(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// load parses and type-checks the module package with the given
// import path, memoized.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	dir := filepath.Join(l.moduleDir, filepath.FromSlash(rel))
	srcs, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, src := range srcs {
		f, err := parser.ParseFile(l.fset, src, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := &types.Config{Importer: importerFunc(l.importFor)}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importFor resolves one import: module-internal paths recurse into
// the loader, everything else (the standard library) goes to the
// GOROOT source importer.
func (l *Loader) importFor(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

// Import implements types.Importer.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
