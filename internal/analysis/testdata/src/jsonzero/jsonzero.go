// Package jsonzero is the analysistest fixture for the jsonzero
// analyzer: omitempty on numeric/bool fields of exported JSON structs
// is flagged; strings, pointers, unexported types and reasoned
// //herald:jsonzero sites pass.
package jsonzero

// Stats is an exported output struct.
type Stats struct {
	Count int  `json:"count,omitempty"` // want "omitempty on Stats.Count"
	OK    bool `json:"ok,omitempty"`    // want "omitempty on Stats.OK"

	Name string `json:"name,omitempty"` // strings: empty genuinely means absent
	Ptr  *int   `json:"ptr,omitempty"`  // a pointer is the sanctioned optional number
	Tags []int  `json:"tags,omitempty"` // slices: nil means absent

	Plain   int `json:"plain"` // no omitempty: fine
	ignored int `json:"x,omitempty"`
}

// internal is unexported, so its JSON shape is not a public contract.
type internal struct {
	Count int `json:"count,omitempty"`
}

// Request is an input struct whose zero is a documented sentinel.
type Request struct {
	SLACycles int64 `json:"sla_cycles,omitempty"` //herald:jsonzero fixture: 0 is the no-SLA sentinel on this input struct
}

func use(s Stats, i internal, r Request) (int, int, int64) {
	return s.ignored, i.Count, r.SLACycles
}
