// Package detmap is the analysistest fixture for the detmap
// analyzer: map ranges are flagged unless they follow the
// collect-then-sort idiom or carry a reasoned //herald:nondet.
package detmap

import "sort"

func flaggedSum(m map[string]int) int {
	total := 0
	for _, v := range m { // want "non-deterministic iteration over map m"
		total += v
	}
	return total
}

func collectThenSortOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func slicesStyleSortOK(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func collectWithoutSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "non-deterministic iteration over map m"
		keys = append(keys, k)
	}
	return keys
}

func mixedBodyNotCollect(m map[string]int) ([]string, int) {
	var keys []string
	n := 0
	for k := range m { // want "non-deterministic iteration over map m"
		keys = append(keys, k)
		n++
	}
	sort.Strings(keys)
	return keys, n
}

func suppressed(m map[string]int) int {
	n := 0
	for range m { //herald:nondet fixture: an exact count is order-independent
		n++
	}
	return n
}

func sliceRangeNotFlagged(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
