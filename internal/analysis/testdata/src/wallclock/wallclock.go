// Package wallclock is the analysistest fixture for the wallclock
// analyzer: wall-clock reads and unseeded math/rand draws are
// flagged; seeded generators and reasoned //herald:nondet sites pass.
package wallclock

import (
	"math/rand"
	"time"
)

func flaggedNow() time.Time {
	return time.Now() // want "wall-clock time.Now in a determinism-critical package"
}

func flaggedSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock time.Since in a determinism-critical package"
}

func flaggedUntil(t0 time.Time) time.Duration {
	return time.Until(t0) // want "wall-clock time.Until in a determinism-critical package"
}

func flaggedGlobalRand() int {
	return rand.Intn(10) // want "unseeded rand.Intn draws from the process-global source"
}

func seededOK() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

func constructorsOK(d time.Duration) time.Time {
	// Non-clock time functions (construction, parsing, arithmetic on
	// explicit inputs) are deterministic and stay legal.
	return time.Unix(0, 0).Add(d)
}

func suppressedNow() time.Time {
	return time.Now() //herald:nondet fixture: uptime diagnostics only, never a scheduling input
}

func suppressedRand() int {
	return rand.Int() //herald:nondet fixture: jitter on a reporting path only
}
