// Package suppress pins the suppression contract the analyzers
// share: //herald:nondet with a reason silences the finding at its
// line, while a bare //herald:nondet both fails to suppress and is
// itself a finding (reported once, by detmap, which owns the nondet
// kind). The standalone want comment below a line binds to the line
// above it — the bare directive occupies the line's only comment slot.
package suppress

func reasoned(m map[string]int) int {
	n := 0
	for range m { //herald:nondet fixture: an exact count is order-independent
		n++
	}
	return n
}

func bare(m map[string]int) int {
	n := 0
	for range m { //herald:nondet
		// want "bare //herald:nondet directive: a suppression must carry a reason" want "non-deterministic iteration over map m"
		n++
	}
	return n
}
