// Package lockguard is the analysistest fixture for the lockguard
// analyzer: accesses to guarded-by-mu fields are flagged unless the
// method locks first, is a documented with-lock helper, ends in
// Locked, or carries a reasoned //herald:nolock.
package lockguard

import "sync"

// Counter is a guarded struct: n and label may only be touched under mu.
type Counter struct {
	mu    sync.Mutex
	n     int    // guarded by mu
	label string // under mu
}

func (c *Counter) Bad() int {
	return c.n // want "c.n is guarded by mu but accessed in Bad"
}

func (c *Counter) BadBeforeLock() int {
	v := c.n // want "c.n is guarded by mu but accessed in BadBeforeLock"
	c.mu.Lock()
	defer c.mu.Unlock()
	return v + c.n
}

func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *Counter) GoodLabel() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.label
}

// snapshotLocked returns the count. The Locked suffix marks the
// caller-holds-mu contract.
func (c *Counter) snapshotLocked() int {
	return c.n
}

// peek returns the count without locking: c.mu held.
func (c *Counter) peek() int {
	return c.n
}

func (c *Counter) suppressed() int {
	return c.n //herald:nolock fixture: single-goroutine setup before the counter is shared
}

// Window is read-locked: RLock counts as acquiring the guard.
type Window struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

func (w *Window) Read() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.v
}

// TwoLocks narrates its locking protocol on the mutex field itself; a
// mutex is never registered as guarded by another mutex, so locking
// mu from any method is legal.
type TwoLocks struct {
	stepMu sync.Mutex
	mu     sync.Mutex // writes to the state below happen under stepMu
	x      int        // guarded by mu
}

func (t *TwoLocks) Get() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.x
}
