package analysis

import (
	"go/ast"
	"go/types"
)

// Detmap flags `for range` iteration over maps in
// determinism-critical packages. Go's map iteration order is
// deliberately randomized, so any map range whose effects are
// order-dependent (feeding scheduling decisions, logged output,
// serialized state) breaks the repo's bit-reproducibility guarantees
// — the replay-stable controller decisions and FaultDecision logs
// rest on there being none.
//
// A site is accepted without a directive only in the canonical
// collect-then-sort idiom: the loop body does nothing but append the
// key (or value) to slices, and a later statement in the same block
// sorts each collected slice (sort.* or slices.*). Every other map
// range needs a //herald:nondet <reason> justification stating why
// iteration order cannot reach decisions or output.
var Detmap = &Analyzer{
	Name: "detmap",
	Doc:  "flags map iteration whose order can leak into decisions or output; require collect-then-sort or //herald:nondet",
	Run:  runDetmap,
}

func runDetmap(pass *Pass) {
	CheckDirectives(pass, "nondet")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmts := stmtList(n)
			if stmts == nil {
				return true
			}
			for i, s := range stmts {
				rng, ok := s.(*ast.RangeStmt)
				if !ok || !isMapType(pass, rng.X) {
					continue
				}
				if pass.Suppressed("nondet", rng.Pos()) {
					continue
				}
				if collectThenSort(rng, stmts[i+1:]) {
					continue
				}
				pass.Reportf(rng.Pos(), "non-deterministic iteration over map %s: sort the keys first or justify with //herald:nondet <reason>", exprString(rng.X))
			}
			return true
		})
	}
}

// stmtList returns the statement list a node holds, if any (blocks
// and switch/select case bodies).
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// isMapType reports whether the expression's type is a map.
func isMapType(pass *Pass, x ast.Expr) bool {
	tv, ok := pass.Info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// collectThenSort reports whether rng is a pure collect loop (every
// body statement appends to a slice variable) and every collected
// slice is sorted by a later statement in the same block.
func collectThenSort(rng *ast.RangeStmt, rest []ast.Stmt) bool {
	if len(rng.Body.List) == 0 {
		return false
	}
	collected := make(map[string]bool)
	for _, s := range rng.Body.List {
		name, ok := appendTarget(s)
		if !ok {
			return false
		}
		collected[name] = true
	}
	for _, s := range rest {
		if name, ok := sortCallTarget(s); ok {
			delete(collected, name)
		}
	}
	return len(collected) == 0
}

// appendTarget matches `x = append(x, ...)` (or :=) and returns x's
// name.
func appendTarget(s ast.Stmt) (string, bool) {
	as, ok := s.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return "", false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) < 2 {
		return "", false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return "", false
	}
	return lhs.Name, true
}

// sortCallTarget matches a statement calling into package sort or
// slices with an identifier argument (sort.Strings(keys),
// slices.Sort(keys), sort.Slice(keys, ...)) and returns that
// identifier's name.
func sortCallTarget(s ast.Stmt) (string, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
		return "", false
	}
	if len(call.Args) == 0 {
		return "", false
	}
	if arg, ok := call.Args[0].(*ast.Ident); ok {
		return arg.Name, true
	}
	return "", false
}

// exprString renders a short source-ish form of simple expressions
// for diagnostics.
func exprString(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "expression"
}
