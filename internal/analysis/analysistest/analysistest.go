// Package analysistest runs an internal/analysis analyzer over a
// self-contained fixture package and checks its diagnostics against
// `// want "regexp"` comments — the same convention as
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// standard library so fixtures run offline with no module
// dependencies.
//
// Fixture layout mirrors x/tools: testdata/src/<pkg>/*.go, each file
// annotating every line expected to produce a finding with one or
// more `// want "re"` fragments. A want comment standing alone on its
// line binds to the line above it — needed when the expected finding
// is on a line that already carries a line comment (a bare
// //herald: directive, which is itself a finding). The fixture
// package may import only the standard library (type-checked from
// GOROOT source). The test fails on any unmatched diagnostic and any
// unmet expectation.
package analysistest

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe matches one `want "regexp"` fragment inside a comment.
var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` annotation: a pattern expected to
// match a diagnostic on its line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run applies the analyzer to the fixture package at
// <testdata>/src/<pkg> and reports mismatches between its
// diagnostics and the fixture's want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	build.Default.CgoEnabled = false // std is type-checked from source
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := cfg.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	expects := collectWants(t, fset, files)
	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, &analysis.Package{
		Path: pkg, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info,
	}, func(d analysis.Diagnostic) { diags = append(diags, d) })
	a.Run(pass)

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, e := range expects {
			if e.met || e.file != pos.Filename || e.line != pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// collectWants extracts every want annotation with its file and
// line. A want comment with nothing but whitespace before it binds to
// the previous line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	srcLines := make(map[string][]string)
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := fset.Position(c.Pos())
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					line := pos.Line
					if standaloneComment(t, srcLines, pos) {
						line--
					}
					out = append(out, &expectation{file: pos.Filename, line: line, re: re})
				}
			}
		}
	}
	return out
}

// standaloneComment reports whether only whitespace precedes the
// comment on its source line.
func standaloneComment(t *testing.T, cache map[string][]string, pos token.Position) bool {
	t.Helper()
	lines, ok := cache[pos.Filename]
	if !ok {
		data, err := os.ReadFile(pos.Filename)
		if err != nil {
			t.Fatalf("reading fixture source: %v", err)
		}
		lines = strings.Split(string(data), "\n")
		cache[pos.Filename] = lines
	}
	if pos.Line-1 >= len(lines) {
		return false
	}
	return strings.TrimSpace(lines[pos.Line-1][:pos.Column-1]) == ""
}
