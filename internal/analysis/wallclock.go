package analysis

import (
	"go/ast"
	"go/types"
)

// Wallclock bans wall-clock reads and unseeded randomness in
// determinism-critical packages: `arrival_cycle` is the only clock a
// scheduling or dispatch decision may observe, and every random draw
// must come from an explicitly seeded generator, or fixed traces stop
// replaying bit-identically.
//
// Flagged: time.Now / time.Since / time.Until, and package-level
// math/rand (and math/rand/v2) functions, which draw from the
// process-global, non-deterministically seeded source. Constructing a
// seeded generator (rand.New(rand.NewSource(seed))) and calling its
// methods is fine. Diagnostic-only uses (uptime strings, perf
// timings) are suppressed site-by-site with //herald:nondet <reason>.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "bans time.Now/Since/Until and unseeded math/rand in determinism-critical packages; arrival_cycle is the only clock",
	Run:  runWallclock,
}

// wallclockBanned lists the time package functions that read the wall
// clock.
var wallclockBanned = map[string]bool{"Now": true, "Since": true, "Until": true}

// randAllowed lists math/rand package-level constructors that build
// explicitly seeded state rather than drawing from the global source.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

func runWallclock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallclockBanned[fn.Name()] && !pass.Suppressed("nondet", id.Pos()) {
					pass.Reportf(id.Pos(), "wall-clock time.%s in a determinism-critical package: arrival_cycle is the only clock (justify diagnostics with //herald:nondet <reason>)", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randAllowed[fn.Name()] && !pass.Suppressed("nondet", id.Pos()) {
					pass.Reportf(id.Pos(), "unseeded rand.%s draws from the process-global source: use rand.New(rand.NewSource(seed)) or justify with //herald:nondet <reason>", fn.Name())
				}
			}
			return true
		})
	}
}
