package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Lockguard checks the repo's documented lock discipline: a struct
// field whose comment says it is guarded by a sibling mutex
// ("guarded by mu", "under mu") may only be touched from a method
// that either acquired that mutex earlier in its body, or is
// documented as a with-lock helper ("f.mu held." in its doc comment,
// or a name ending in Locked).
//
// The check is a deliberate approximation, not a dominator analysis:
// an access is accepted if any textually earlier statement of the
// same method calls <recv>.<mu>.Lock or RLock (function literals are
// skipped entirely — goroutine and callback bodies have their own
// locking contracts). That still catches the real bug class — a
// method reading or writing guarded state with no locking at all, or
// before it locks — without false-flagging branchy unlock/return
// shapes. Intentional lock-free accesses (constructors via receiver
// helpers, atomics, single-goroutine setup) are justified
// site-by-site with //herald:nolock <reason>.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc:  "guarded-by-mu struct fields must be accessed under their mutex or from a documented with-lock helper",
	Run:  runLockguard,
}

// guardedRe matches a field comment declaring its guard:
// "guarded by mu", "under f.mu", "(under outMu)".
var guardedRe = regexp.MustCompile(`(?i)\b(?:guarded by|under)\s+([A-Za-z_][A-Za-z0-9_.]*)`)

func runLockguard(pass *Pass) {
	CheckDirectives(pass, "nolock")
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			structName := receiverTypeName(fd.Recv.List[0].Type)
			fieldGuards, ok := guards[structName]
			if !ok {
				continue
			}
			var recvName string
			if names := fd.Recv.List[0].Names; len(names) > 0 {
				recvName = names[0].Name
			}
			if recvName == "" || recvName == "_" {
				continue
			}
			checkMethod(pass, fd, recvName, fieldGuards)
		}
	}
}

// collectGuards scans struct declarations for guarded-field comments
// and returns, per struct type name, the map from guarded field name
// to the sibling mutex field guarding it.
func collectGuards(pass *Pass) map[string]map[string]string {
	out := make(map[string]map[string]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			mutexes := mutexFields(pass, st)
			if len(mutexes) == 0 {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardOf(field, mutexes)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					// A mutex is never guarded by another mutex: its
					// doc often narrates the locking protocol ("writes
					// happen under stepMu") without meaning guardianship.
					if mutexes[name.Name] {
						continue
					}
					if out[ts.Name.Name] == nil {
						out[ts.Name.Name] = make(map[string]string)
					}
					out[ts.Name.Name][name.Name] = mu
				}
			}
			return true
		})
	}
	return out
}

// mutexFields returns the names of the struct's fields whose type is
// sync.Mutex or sync.RWMutex (possibly behind a pointer).
func mutexFields(pass *Pass, st *ast.StructType) map[string]bool {
	out := make(map[string]bool)
	for _, field := range st.Fields.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
			continue
		}
		if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
			continue
		}
		for _, n := range field.Names {
			out[n.Name] = true
		}
	}
	return out
}

// guardOf extracts the guarding mutex named in the field's doc or
// line comment, if it names a sibling mutex field. Qualified names
// ("f.mu") match on their last segment.
func guardOf(field *ast.Field, mutexes map[string]bool) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, m := range guardedRe.FindAllStringSubmatch(cg.Text(), -1) {
			name := m[1]
			if i := strings.LastIndexByte(name, '.'); i >= 0 {
				name = name[i+1:]
			}
			name = strings.TrimRight(name, ".,;:")
			if mutexes[name] {
				return name
			}
		}
	}
	return ""
}

// receiverTypeName returns the base type name of a method receiver
// expression (*Fleet -> Fleet).
func receiverTypeName(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return receiverTypeName(x.X)
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(x.X)
	case *ast.IndexListExpr:
		return receiverTypeName(x.X)
	}
	return ""
}

// heldDoc reports whether the method's doc comment documents the
// caller-holds-the-lock contract for mu ("f.mu held", "mu held",
// "caller holds mu").
func heldDoc(doc *ast.CommentGroup, mu string) bool {
	if doc == nil {
		return false
	}
	text := doc.Text()
	re := regexp.MustCompile(`(?i)(?:\b[A-Za-z_][A-Za-z0-9_]*\.)?\b` + regexp.QuoteMeta(mu) + `\b\s+(?:is\s+)?held|\bholds\s+(?:[A-Za-z_][A-Za-z0-9_]*\.)?` + regexp.QuoteMeta(mu) + `\b`)
	return re.MatchString(text)
}

// checkMethod walks one method body in source order and reports
// guarded-field accesses not preceded by a Lock/RLock of the guarding
// mutex.
func checkMethod(pass *Pass, fd *ast.FuncDecl, recvName string, fieldGuards map[string]string) {
	// lockedAt records the earliest position at which each mutex was
	// acquired in this method body.
	lockedAt := make(map[string]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate locking context
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if mu, locks := lockCallOn(call, recvName); locks {
				if at, ok := lockedAt[mu]; !ok || call.Pos() < at {
					lockedAt[mu] = call.Pos()
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || base.Name != recvName {
			return true
		}
		mu, guarded := fieldGuards[sel.Sel.Name]
		if !guarded {
			return true
		}
		if at, ok := lockedAt[mu]; ok && at < sel.Pos() {
			return true
		}
		if fd.Name != nil && strings.HasSuffix(fd.Name.Name, "Locked") {
			return true
		}
		if heldDoc(fd.Doc, mu) {
			return true
		}
		if pass.Suppressed("nolock", sel.Pos()) {
			return true
		}
		pass.Reportf(sel.Pos(), "%s.%s is guarded by %s but accessed in %s without %s.%s.Lock (document the contract with %q, suffix the method Locked, or justify with //herald:nolock <reason>)",
			recvName, sel.Sel.Name, mu, fd.Name.Name, recvName, mu, mu+" held")
		return true
	})
}

// lockCallOn matches <recv>.<mu>.Lock() / RLock() and returns the
// mutex field name.
func lockCallOn(call *ast.CallExpr, recvName string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return "", false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base, ok := inner.X.(*ast.Ident)
	if !ok || base.Name != recvName {
		return "", false
	}
	return inner.Sel.Name, true
}
