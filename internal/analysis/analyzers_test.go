package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer runs over its fixture package under testdata/src,
// which pairs flagged sites with the accepted idiom (collect-then-
// sort, seeded rand, lock-before-access, pointer-for-optional) and a
// reasoned suppression.

func TestDetmap(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Detmap, "detmap")
}

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Wallclock, "wallclock")
}

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Lockguard, "lockguard")
}

func TestJsonzero(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Jsonzero, "jsonzero")
}

// TestSuppressionContract pins the directive semantics end to end: a
// reasoned //herald:nondet silences the finding at its line, and a
// bare //herald:nondet both fails to suppress and is itself reported
// (once, by detmap, the analyzer that owns the nondet kind).
func TestSuppressionContract(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Detmap, "suppress")
}
