package analysis

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// Jsonzero flags `omitempty` on numeric and bool fields of exported
// structs with JSON tags. For those kinds Go's encoder drops the zero
// value, so a client cannot distinguish "instance 0, start cycle 0,
// zero failures" from "field absent" — the exact bug class PR 3 fixed
// in serve.Record placement fields and PR 6 re-fixed in
// fleet.Decision / ControllerStatus. Strings, pointers, slices and
// maps are exempt: their empty value genuinely means "absent" in this
// codebase (and a pointer is the sanctioned way to express an
// optional number, as http's arrival_cycle does).
//
// Fields whose zero value is a true "unset" sentinel on an input
// struct (a request's optional SLA, a fault event's unused factor)
// are justified site-by-site with //herald:jsonzero <reason>.
var Jsonzero = &Analyzer{
	Name: "jsonzero",
	Doc:  "flags omitempty on numeric/bool JSON fields of exported structs, where zero is indistinguishable from absent",
	Run:  runJsonzero,
}

func runJsonzero(pass *Pass) {
	CheckDirectives(pass, "jsonzero")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				checkJSONField(pass, ts.Name.Name, field)
			}
			return true
		})
	}
}

// checkJSONField reports one struct field if it is an exported
// numeric/bool field tagged json:"...,omitempty".
func checkJSONField(pass *Pass, structName string, field *ast.Field) {
	if field.Tag == nil || len(field.Names) == 0 {
		return
	}
	raw, err := reflectStructTag(field.Tag.Value)
	if err {
		return
	}
	jsonTag, ok := raw.Lookup("json")
	if !ok {
		return
	}
	parts := strings.Split(jsonTag, ",")
	if parts[0] == "-" && len(parts) == 1 {
		return
	}
	omitempty := false
	for _, opt := range parts[1:] {
		if opt == "omitempty" {
			omitempty = true
		}
	}
	if !omitempty || !zeroMeaningfulType(pass, field.Type) {
		return
	}
	for _, name := range field.Names {
		if !name.IsExported() {
			continue
		}
		if pass.Suppressed("jsonzero", name.Pos()) {
			continue
		}
		pass.Reportf(name.Pos(), "omitempty on %s.%s (%s) drops the zero value from JSON, making 0 indistinguishable from absent: drop omitempty, use a pointer for optional, or justify with //herald:jsonzero <reason>",
			structName, name.Name, typeString(pass, field.Type))
	}
}

// reflectStructTag parses a raw backtick/quoted struct tag literal.
func reflectStructTag(lit string) (reflect.StructTag, bool) {
	if len(lit) < 2 {
		return "", true
	}
	return reflect.StructTag(lit[1 : len(lit)-1]), false
}

// zeroMeaningfulType reports whether the field type is a kind whose
// zero value carries meaning under omitempty: numeric or bool
// (possibly via a named type like time.Duration).
func zeroMeaningfulType(pass *Pass, t ast.Expr) bool {
	tv, ok := pass.Info.Types[t]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&(types.IsNumeric|types.IsBoolean) != 0
}

// typeString renders the field type for diagnostics.
func typeString(pass *Pass, t ast.Expr) string {
	if tv, ok := pass.Info.Types[t]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return exprString(t)
}
