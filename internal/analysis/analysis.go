// Package analysis is heraldvet's stdlib-only analyzer framework: a
// deliberately small reimplementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, Diagnostic) that the repo's
// four invariant checkers — detmap, wallclock, lockguard, jsonzero —
// are written against.
//
// Why not depend on golang.org/x/tools? The repo builds and vets in
// hermetic, network-less environments (the same property the
// bit-reproducibility suites rely on), and x/tools would be its first
// external module dependency. The subset these analyzers need — one
// type-checked package at a time, position-addressed diagnostics, and
// comment-directive suppression — fits in a few hundred lines of
// go/ast + go/types, so the framework is vendored as plain code
// instead. Loader (load.go) resolves in-module imports itself and
// type-checks the standard library from GOROOT source, so `go run
// ./cmd/heraldvet ./...` works offline.
//
// # Suppression directives
//
// Findings are silenced site-by-site with herald directives in line
// comments, each carrying a mandatory human-readable justification:
//
//	//herald:nondet <reason>   - detmap, wallclock
//	//herald:nolock <reason>   - lockguard
//	//herald:jsonzero <reason> - jsonzero
//
// A directive applies to findings on its own line or, when written on
// a line of its own, to the line directly below it. A bare directive
// with no reason is itself a finding: the whole point is that every
// suppression documents *why* the invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker: a name (stable, used
// in diagnostics and the heraldvet -analyzers flag), a one-line Doc,
// and the Run function applied to each package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run analyzes one package, reporting findings via pass.Report.
	Run func(pass *Pass)
}

// A Pass is one analyzer's view of one type-checked package. All
// slices and maps are read-only from the analyzer's perspective.
type Pass struct {
	// Fset maps token.Pos values in Files to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression and object facts.
	Info *types.Info
	// report receives diagnostics; nil panics loudly in tests.
	report func(Diagnostic)

	directives map[*ast.File][]Directive
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	// Pos is the finding's source position.
	Pos token.Pos
	// Analyzer is the reporting analyzer's Name.
	Analyzer string
	// Message states the violated invariant and the offending site.
	Message string
}

// Reportf reports a finding at pos with a formatted message. The
// analyzer name is stamped on by the driver.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Suppressed reports whether a herald directive of the given kind
// (with a non-empty reason) covers the source line of pos in the file
// containing it: either on the same line, or alone on the line above.
func (p *Pass) Suppressed(kind string, pos token.Pos) bool {
	line := p.Fset.Position(pos).Line
	for _, d := range p.fileDirectives(pos) {
		if d.Kind != kind || d.Reason == "" {
			continue
		}
		if d.Line == line || d.Line == line-1 {
			return true
		}
	}
	return false
}

// Directives returns the herald directives of the file containing
// pos, parsing (and caching) them on first use.
func (p *Pass) Directives(pos token.Pos) []Directive {
	return p.fileDirectives(pos)
}

func (p *Pass) fileDirectives(pos token.Pos) []Directive {
	tf := p.Fset.File(pos)
	if tf == nil {
		return nil
	}
	for _, f := range p.Files {
		if p.Fset.File(f.Pos()) != tf {
			continue
		}
		if p.directives == nil {
			p.directives = make(map[*ast.File][]Directive)
		}
		ds, ok := p.directives[f]
		if !ok {
			ds = ParseDirectives(p.Fset, f)
			p.directives[f] = ds
		}
		return ds
	}
	return nil
}
