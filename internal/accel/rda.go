package accel

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/dnn"
	"repro/internal/maestro"
)

// RDA energy/latency overhead defaults. The paper measured MAERI at
// 11.7% more energy on average than an NVDLA-style FDA (§I), from the
// switches, fat-tree interconnect and reconfiguration controller; and
// notes that per-layer reconfiguration "adds additional latency and
// power costs at the end of each layer" (§I). The reconfiguration
// latency scales with the number of switches, i.e. with the PE count.
const (
	// DefaultRDAEnergyOverhead multiplies every energy component of a
	// layer executed on the RDA.
	DefaultRDAEnergyOverhead = 1.117
	// DefaultReconfigCyclesPerPE: configuration bits are distributed
	// through the tree once per layer.
	DefaultReconfigCyclesPerPE = 2
	// DefaultReconfigPJPerPE: energy to drive the configuration
	// distribution network once per layer.
	DefaultReconfigPJPerPE = 50
)

// RDA models a MAERI-style reconfigurable dataflow accelerator: the
// full class budget on one substrate that can adopt, per layer, any of
// the evaluated dataflow styles. Flexibility costs a constant energy
// factor on all activity plus a per-layer reconfiguration penalty.
// Like FDAs, an RDA runs one layer at a time (§III-B).
type RDA struct {
	Name  string
	Class Class

	// EnergyOverhead multiplies layer energy (>= 1).
	EnergyOverhead float64
	// ReconfigCycles / ReconfigPJ are charged once per layer.
	ReconfigCycles int64
	ReconfigPJ     float64

	hw maestro.HW
}

// NewRDA builds an RDA over the class with the paper-calibrated
// overhead defaults.
func NewRDA(class Class) (*RDA, error) {
	if err := class.Validate(); err != nil {
		return nil, err
	}
	return &RDA{
		Name:           "rda-maeri",
		Class:          class,
		EnergyOverhead: DefaultRDAEnergyOverhead,
		ReconfigCycles: int64(DefaultReconfigCyclesPerPE) * int64(class.PEs),
		ReconfigPJ:     DefaultReconfigPJPerPE * float64(class.PEs),
		hw: maestro.HW{
			PEs:     class.PEs,
			BWGBps:  class.BWGBps,
			L2Bytes: class.GlobalBufBytes,
		},
	}, nil
}

// HW returns the RDA's monolithic substrate description.
func (r *RDA) HW() maestro.HW { return r.hw }

// LayerCost evaluates the layer under every dataflow style on the full
// substrate and returns the cost of the best mapping with the RDA's
// flexibility taxes applied, along with the chosen style. "Best"
// minimizes latency (EDP as tie-break): RDAs reconfigure per layer for
// throughput, which is why the paper finds them latency-optimal but
// energy-expensive relative to HDAs (§V-B).
func (r *RDA) LayerCost(cache *maestro.Cache, l *dnn.Layer) (maestro.Cost, dataflow.Style) {
	var best maestro.Cost
	var bestStyle dataflow.Style
	first := true
	for _, s := range dataflow.AllStyles() {
		c := cache.Estimate(l, s, r.hw)
		better := first || c.Cycles < best.Cycles ||
			(c.Cycles == best.Cycles && c.EDP(1.0) < best.EDP(1.0))
		if better {
			best, bestStyle, first = c, s, false
		}
	}
	// Flexibility taxes: energy factor on all activity, plus the
	// per-layer reconfiguration latency and energy.
	best.Cycles += r.ReconfigCycles
	best.Energy.MAC *= r.EnergyOverhead
	best.Energy.RF *= r.EnergyOverhead
	best.Energy.NoC *= r.EnergyOverhead
	best.Energy.Buffer *= r.EnergyOverhead
	best.Energy.DRAM *= r.EnergyOverhead
	best.Energy.Context += r.ReconfigPJ
	return best, bestStyle
}

// Validate checks the RDA's configuration.
func (r *RDA) Validate() error {
	if r.EnergyOverhead < 1 {
		return fmt.Errorf("accel: RDA %q: energy overhead must be >= 1 (got %g)", r.Name, r.EnergyOverhead)
	}
	if r.ReconfigCycles < 0 || r.ReconfigPJ < 0 {
		return fmt.Errorf("accel: RDA %q: reconfiguration penalties must be >= 0", r.Name)
	}
	return r.Class.Validate()
}
