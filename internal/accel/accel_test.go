package accel

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/maestro"
)

func TestTableIVClasses(t *testing.T) {
	want := []struct {
		name string
		pes  int
		bw   float64
		buf  int64
	}{
		{"edge", 1024, 16, 4 << 20},
		{"mobile", 4096, 64, 8 << 20},
		{"cloud", 16384, 256, 16 << 20},
	}
	cs := Classes()
	if len(cs) != len(want) {
		t.Fatalf("got %d classes", len(cs))
	}
	for i, w := range want {
		c := cs[i]
		if c.Name != w.name || c.PEs != w.pes || c.BWGBps != w.bw || c.GlobalBufBytes != w.buf {
			t.Errorf("class %d = %+v, want %+v (Table IV)", i, c, w)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("class %s: %v", c.Name, err)
		}
		parsed, err := ParseClass(w.name)
		if err != nil || parsed != c {
			t.Errorf("ParseClass(%q) = %+v, %v", w.name, parsed, err)
		}
	}
	if _, err := ParseClass("datacenter"); err == nil {
		t.Error("ParseClass should reject unknown names")
	}
}

func TestNewHDADefinition1(t *testing.T) {
	// The Table V AR/VR-A cloud Maelstrom point: 9728/6656 PEs,
	// 224/32 GB/s.
	h, err := New("maelstrom", Cloud, []Partition{
		{Style: dataflow.NVDLA, PEs: 9728, BWGBps: 224},
		{Style: dataflow.ShiDiannao, PEs: 6656, BWGBps: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumSubs() != 2 || !h.Heterogeneous() {
		t.Error("expected a 2-way heterogeneous HDA")
	}
	if got := h.Subs[0].HW.PEs + h.Subs[1].HW.PEs; got != Cloud.PEs {
		t.Errorf("PE sum %d != %d", got, Cloud.PEs)
	}
	if got := h.Subs[0].HW.BWGBps + h.Subs[1].HW.BWGBps; got != Cloud.BWGBps {
		t.Errorf("BW sum %g != %g", got, Cloud.BWGBps)
	}
	// The global scratchpad is shared (time-multiplexed): every
	// sub-accelerator sees the full buffer, and the scheduler enforces
	// the joint occupancy constraint.
	if h.Subs[0].HW.L2Bytes != Cloud.GlobalBufBytes || h.Subs[1].HW.L2Bytes != Cloud.GlobalBufBytes {
		t.Error("sub-accelerators should share the full global buffer")
	}
	if !strings.Contains(h.String(), "NVDLA") || !strings.Contains(h.String(), "9728") {
		t.Errorf("String() = %q", h.String())
	}
}

func TestNewHDARejectsBadPartitions(t *testing.T) {
	cases := []struct {
		name  string
		parts []Partition
	}{
		{"empty", nil},
		{"pe-sum", []Partition{{dataflow.NVDLA, 512, 8}, {dataflow.ShiDiannao, 256, 8}}},
		{"bw-sum", []Partition{{dataflow.NVDLA, 512, 8}, {dataflow.ShiDiannao, 512, 4}}},
		{"zero-pe", []Partition{{dataflow.NVDLA, 0, 8}, {dataflow.ShiDiannao, 1024, 8}}},
		{"zero-bw", []Partition{{dataflow.NVDLA, 512, 0}, {dataflow.ShiDiannao, 512, 16}}},
		{"bad-style", []Partition{{dataflow.Style(9), 512, 8}, {dataflow.ShiDiannao, 512, 8}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.name, Edge, tc.parts); err == nil {
			t.Errorf("%s: New accepted invalid partitioning", tc.name)
		}
	}
}

func TestNewFDA(t *testing.T) {
	f, err := NewFDA(Edge, dataflow.Eyeriss)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumSubs() != 1 || f.Heterogeneous() {
		t.Error("FDA should be a single homogeneous substrate")
	}
	if f.Subs[0].HW.PEs != Edge.PEs || f.Subs[0].HW.BWGBps != Edge.BWGBps {
		t.Error("FDA should hold the full class budget")
	}
	if f.Subs[0].HW.L2Bytes != Edge.GlobalBufBytes {
		t.Errorf("FDA buffer share = %d, want full %d", f.Subs[0].HW.L2Bytes, Edge.GlobalBufBytes)
	}
}

func TestNewSMFDA(t *testing.T) {
	s, err := NewSMFDA(Mobile, dataflow.NVDLA, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSubs() != 2 || s.Heterogeneous() {
		t.Error("SM-FDA should be homogeneous with n subs")
	}
	for _, sub := range s.Subs {
		if sub.HW.PEs != Mobile.PEs/2 || sub.HW.BWGBps != Mobile.BWGBps/2 {
			t.Errorf("SM-FDA sub share = %+v, want even split", sub.HW)
		}
	}
	if _, err := NewSMFDA(Mobile, dataflow.NVDLA, 0); err == nil {
		t.Error("n=0 should be rejected")
	}
	if _, err := NewSMFDA(Mobile, dataflow.NVDLA, 3); err == nil {
		t.Error("non-divisible split should be rejected")
	}
}

func TestRDAPicksBestStyleAndTaxes(t *testing.T) {
	r, err := NewRDA(Edge)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	cache := maestro.NewCache(energy.Default28nm())

	// FC strongly prefers NVDLA; a shallow large conv prefers
	// Shi-diannao. The RDA must pick accordingly.
	fc := dnn.Layer{Op: dnn.FC, K: 4096, C: 4096, Y: 1, X: 1, R: 1, S: 1, Stride: 1}
	_, style := r.LayerCost(cache, &fc)
	if style != dataflow.NVDLA {
		t.Errorf("RDA picked %v for FC, want NVDLA", style)
	}
	// A shallow-channel, large-spatial conv prefers an activation-
	// parallel style (Shi-diannao or Eyeriss), never NVDLA.
	shallow := dnn.Layer{Op: dnn.Conv2D, K: 64, C: 1, Y: 580, X: 580, R: 3, S: 3, Stride: 1}
	_, style = r.LayerCost(cache, &shallow)
	if style == dataflow.NVDLA {
		t.Errorf("RDA picked NVDLA for shallow conv, want a spatial style")
	}

	// Taxes: RDA energy must exceed the best raw style energy by at
	// least the overhead factor, and latency by the reconfig cycles.
	raw := cache.Estimate(&fc, dataflow.NVDLA, r.HW())
	taxed, _ := r.LayerCost(cache, &fc)
	if taxed.Cycles != raw.Cycles+r.ReconfigCycles {
		t.Errorf("reconfig latency not charged: %d vs %d", taxed.Cycles, raw.Cycles)
	}
	wantE := raw.EnergyPJ()*DefaultRDAEnergyOverhead + r.ReconfigPJ
	if got := taxed.EnergyPJ(); got < wantE*0.999 || got > wantE*1.001 {
		t.Errorf("taxed energy = %g, want %g", got, wantE)
	}
}

func TestRDAValidate(t *testing.T) {
	r, _ := NewRDA(Cloud)
	r.EnergyOverhead = 0.5
	if err := r.Validate(); err == nil {
		t.Error("overhead < 1 should be rejected")
	}
	r, _ = NewRDA(Cloud)
	r.ReconfigCycles = -1
	if err := r.Validate(); err == nil {
		t.Error("negative reconfig cycles should be rejected")
	}
}
