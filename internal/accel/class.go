// Package accel defines the accelerator organizations the paper
// evaluates (Table III) over the edge/mobile/cloud resource classes of
// Table IV:
//
//   - FDA: a monolithic fixed-dataflow accelerator (one substrate, one
//     dataflow, all resources).
//   - SM-FDA: a scaled-out multi-FDA — n identical sub-accelerators
//     running the same dataflow with evenly partitioned resources.
//   - HDA: the paper's contribution — sub-accelerators with *different*
//     dataflows and freely partitioned PEs/bandwidth (Definition 1).
//   - RDA: a MAERI-style reconfigurable accelerator — full resources,
//     per-layer choice of the best dataflow, paid for with a
//     flexible-hardware energy overhead and a per-layer
//     reconfiguration penalty.
package accel

import "fmt"

// Class is an accelerator resource budget (Table IV).
type Class struct {
	Name           string
	PEs            int
	BWGBps         float64
	GlobalBufBytes int64
}

// The paper's three deployment scenarios (Table IV).
var (
	Edge   = Class{Name: "edge", PEs: 1024, BWGBps: 16, GlobalBufBytes: 4 << 20}
	Mobile = Class{Name: "mobile", PEs: 4096, BWGBps: 64, GlobalBufBytes: 8 << 20}
	Cloud  = Class{Name: "cloud", PEs: 16384, BWGBps: 256, GlobalBufBytes: 16 << 20}
)

// Classes returns the three Table IV classes in scale order.
func Classes() []Class { return []Class{Edge, Mobile, Cloud} }

// ParseClass resolves a class by name.
func ParseClass(name string) (Class, error) {
	for _, c := range Classes() {
		if c.Name == name {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("accel: unknown accelerator class %q (want edge, mobile or cloud)", name)
}

// Validate reports whether the class describes a usable budget.
func (c Class) Validate() error {
	if c.PEs < 1 {
		return fmt.Errorf("accel: class %q: PEs must be >= 1", c.Name)
	}
	if c.BWGBps <= 0 {
		return fmt.Errorf("accel: class %q: bandwidth must be positive", c.Name)
	}
	if c.GlobalBufBytes < 1024 {
		return fmt.Errorf("accel: class %q: global buffer must be >= 1 KiB", c.Name)
	}
	return nil
}
