package accel

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/maestro"
)

// Partition assigns one sub-accelerator its dataflow style and resource
// shares — one (δi, Ni, BWi) triple of Definition 1.
type Partition struct {
	Style  dataflow.Style
	PEs    int
	BWGBps float64
}

// HDA is a heterogeneous dataflow accelerator: sub-accelerators with
// (potentially) different dataflow styles sharing a global buffer and
// a hard-partitioned global NoC (Definition 1). FDAs and SM-FDAs are
// represented as degenerate HDAs (one sub-accelerator, or n identical
// ones), which lets the scheduler and DSE treat all organizations
// uniformly.
type HDA struct {
	Name  string
	Class Class
	Subs  []SubAccelerator
}

// SubAccelerator is one fixed-dataflow substrate inside an HDA.
type SubAccelerator struct {
	Name  string
	Style dataflow.Style
	HW    maestro.HW
}

// New builds an HDA over the given class from explicit partitions,
// enforcing Definition 1: ΣNi = N_PE and ΣBWi = BW_G. The global
// scratchpad is shared (time-multiplexed) across sub-accelerators
// (§III-C), so every substrate sees the full buffer for residency
// decisions while the scheduler enforces the total-occupancy
// constraint across concurrently-running layers.
func New(name string, class Class, parts []Partition) (*HDA, error) {
	if err := class.Validate(); err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("accel: HDA %q needs at least one sub-accelerator", name)
	}
	var sumPE int
	var sumBW float64
	for i, p := range parts {
		if !p.Style.Valid() {
			return nil, fmt.Errorf("accel: HDA %q partition %d: invalid style", name, i)
		}
		if p.PEs < 1 {
			return nil, fmt.Errorf("accel: HDA %q partition %d: PEs must be >= 1 (got %d)", name, i, p.PEs)
		}
		if p.BWGBps <= 0 {
			return nil, fmt.Errorf("accel: HDA %q partition %d: bandwidth must be positive (got %g)", name, i, p.BWGBps)
		}
		sumPE += p.PEs
		sumBW += p.BWGBps
	}
	if sumPE != class.PEs {
		return nil, fmt.Errorf("accel: HDA %q: PE partition sums to %d, class %q has %d (Definition 1)",
			name, sumPE, class.Name, class.PEs)
	}
	if diff := sumBW - class.BWGBps; diff > 1e-9 || diff < -1e-9 {
		return nil, fmt.Errorf("accel: HDA %q: bandwidth partition sums to %g, class %q has %g (Definition 1)",
			name, sumBW, class.Name, class.BWGBps)
	}

	h := &HDA{Name: name, Class: class, Subs: make([]SubAccelerator, len(parts))}
	for i, p := range parts {
		h.Subs[i] = SubAccelerator{
			Name:  fmt.Sprintf("acc%d-%s", i+1, p.Style),
			Style: p.Style,
			HW: maestro.HW{
				PEs:     p.PEs,
				BWGBps:  p.BWGBps,
				L2Bytes: class.GlobalBufBytes,
			},
		}
	}
	return h, nil
}

// NewFDA builds a monolithic fixed-dataflow accelerator: one
// sub-accelerator holding the entire class budget.
func NewFDA(class Class, style dataflow.Style) (*HDA, error) {
	return New("fda-"+style.String(), class,
		[]Partition{{Style: style, PEs: class.PEs, BWGBps: class.BWGBps}})
}

// NewSMFDA builds a scaled-out multi-FDA (Baek et al.): n identical
// sub-accelerators running the same dataflow with evenly partitioned
// resources.
func NewSMFDA(class Class, style dataflow.Style, n int) (*HDA, error) {
	if n < 1 {
		return nil, fmt.Errorf("accel: SM-FDA needs n >= 1 (got %d)", n)
	}
	if class.PEs%n != 0 {
		return nil, fmt.Errorf("accel: SM-FDA: %d PEs not divisible by %d", class.PEs, n)
	}
	parts := make([]Partition, n)
	for i := range parts {
		parts[i] = Partition{Style: style, PEs: class.PEs / n, BWGBps: class.BWGBps / float64(n)}
	}
	return New(fmt.Sprintf("smfda-%dx%s", n, style), class, parts)
}

// NumSubs returns the number of sub-accelerators.
func (h *HDA) NumSubs() int { return len(h.Subs) }

// Styles returns the per-sub-accelerator dataflow styles.
func (h *HDA) Styles() []dataflow.Style {
	out := make([]dataflow.Style, len(h.Subs))
	for i := range h.Subs {
		out[i] = h.Subs[i].Style
	}
	return out
}

// SamePartition reports whether two HDAs describe the identical
// partitioning — same class and the same (style, PEs, bandwidth)
// triple per sub-accelerator in order — regardless of their names.
// The repartitioning controller uses it to recognize that a sweep
// winner is the partition already being served.
func (h *HDA) SamePartition(o *HDA) bool {
	if h == nil || o == nil {
		return h == o
	}
	if h.Class.Name != o.Class.Name || len(h.Subs) != len(o.Subs) {
		return false
	}
	for i := range h.Subs {
		a, b := &h.Subs[i], &o.Subs[i]
		if a.Style != b.Style || a.HW.PEs != b.HW.PEs || a.HW.BWGBps != b.HW.BWGBps {
			return false
		}
	}
	return true
}

// Heterogeneous reports whether the HDA combines at least two distinct
// dataflow styles (a true HDA rather than an FDA/SM-FDA).
func (h *HDA) Heterogeneous() bool {
	for i := 1; i < len(h.Subs); i++ {
		if h.Subs[i].Style != h.Subs[0].Style {
			return true
		}
	}
	return false
}

// String renders the partitioning compactly, e.g.
// "maelstrom[cloud]{NVDLA:9728PE/224GBps + Shi-diannao:6656PE/32GBps}".
func (h *HDA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s]{", h.Name, h.Class.Name)
	for i, s := range h.Subs {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%s:%dPE/%gGBps", s.Style, s.HW.PEs, s.HW.BWGBps)
	}
	b.WriteString("}")
	return b.String()
}
