package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/energy"
	"repro/internal/maestro"
	"repro/internal/sched"
	"repro/internal/workload"
)

func testSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	h, err := accel.New("t", accel.Edge, []accel.Partition{
		{Style: dataflow.NVDLA, PEs: 512, BWGBps: 8},
		{Style: dataflow.ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := workload.MustNew("trace", []workload.Entry{
		{Model: "mobilenetv1", Batches: 2},
		{Model: "brq-handpose", Batches: 1},
	})
	s := sched.MustNew(maestro.NewCache(energy.Default28nm()), sched.DefaultOptions())
	sch, err := s.Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func TestGantt(t *testing.T) {
	sch := testSchedule(t)
	g := Gantt(sch, 80)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	// header + one lane per sub-acc + legend
	if len(lines) != 2+len(sch.HDA.Subs) {
		t.Fatalf("gantt lines = %d, want %d:\n%s", len(lines), 2+len(sch.HDA.Subs), g)
	}
	if !strings.Contains(g, "acc1-NVDLA") || !strings.Contains(g, "acc2-Shi-diannao") {
		t.Error("lane labels missing")
	}
	if !strings.Contains(g, "mobilenetv1#1") {
		t.Error("legend missing instance names")
	}
	// Every instance mark should appear somewhere.
	for i := range sch.Workload.Instances {
		if !strings.ContainsRune(g, markFor(i)) {
			t.Errorf("instance %d mark %c absent from gantt", i, markFor(i))
		}
	}
	if out := Gantt(&sched.Schedule{HDA: sch.HDA, Workload: sch.Workload}, 40); !strings.Contains(out, "empty") {
		t.Error("empty schedule should render a placeholder")
	}
}

func TestOccupancyTimeline(t *testing.T) {
	sch := testSchedule(t)
	tl := OccupancyTimeline(sch)
	if len(tl) == 0 {
		t.Fatal("empty timeline")
	}
	var peak int64
	prev := int64(-1)
	for _, s := range tl {
		if s.Cycle < prev {
			t.Fatal("timeline not sorted")
		}
		prev = s.Cycle
		if s.Bytes < 0 {
			t.Fatalf("negative occupancy %d at %d", s.Bytes, s.Cycle)
		}
		if s.Bytes > peak {
			peak = s.Bytes
		}
	}
	if peak != sch.PeakOccupancyBytes() {
		t.Errorf("timeline peak %d != schedule peak %d", peak, sch.PeakOccupancyBytes())
	}
	if last := tl[len(tl)-1]; last.Bytes != 0 {
		t.Errorf("occupancy should return to zero at the end, got %d", last.Bytes)
	}
}

func TestInstances(t *testing.T) {
	sch := testSchedule(t)
	sums := Instances(sch)
	if len(sums) != sch.Workload.NumInstances() {
		t.Fatalf("summaries = %d", len(sums))
	}
	var layers int
	var maxFinish int64
	for i, s := range sums {
		layers += s.Layers
		if s.FinishedAt > maxFinish {
			maxFinish = s.FinishedAt
		}
		if i > 0 && s.FinishedAt < sums[i-1].FinishedAt {
			t.Error("summaries not sorted by finish time")
		}
		if s.BusyCycles <= 0 || s.EnergyMJ <= 0 {
			t.Errorf("%s: empty summary", s.Instance)
		}
	}
	if layers != sch.Workload.TotalLayers() {
		t.Errorf("summary layers %d != workload %d", layers, sch.Workload.TotalLayers())
	}
	if maxFinish != sch.MakespanCycles {
		t.Errorf("latest finish %d != makespan %d", maxFinish, sch.MakespanCycles)
	}
}

func TestWriteCSV(t *testing.T) {
	sch := testSchedule(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sch); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+len(sch.Assignments) {
		t.Fatalf("csv rows = %d, want %d", len(recs), 1+len(sch.Assignments))
	}
	if recs[0][0] != "instance" || len(recs[1]) != 10 {
		t.Error("csv shape unexpected")
	}
}

func TestWriteJSON(t *testing.T) {
	sch := testSchedule(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sch); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Makespan    int64 `json:"makespan_cycles"`
		Assignments []struct {
			Instance string `json:"instance"`
			End      int64  `json:"end"`
		} `json:"assignments"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Makespan != sch.MakespanCycles {
		t.Error("makespan mismatch in JSON")
	}
	if len(decoded.Assignments) != len(sch.Assignments) {
		t.Error("assignment count mismatch in JSON")
	}
}
