// Package trace renders and exports layer execution schedules: text
// Gantt charts per sub-accelerator, shared-buffer occupancy timelines,
// per-instance completion summaries, and CSV/JSON dumps for external
// tooling. The paper's Fig. 7 visualizes schedules exactly this way
// (time × sub-accelerator with per-layer boxes).
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sched"
)

// Gantt renders the schedule as one text lane per sub-accelerator,
// `width` characters wide. Each layer occupies a proportional span
// labeled with its instance index; idle time renders as dots.
func Gantt(s *sched.Schedule, width int) string {
	if width < 16 {
		width = 16
	}
	if s.MakespanCycles == 0 || len(s.Assignments) == 0 {
		return "(empty schedule)\n"
	}
	lanes := make([][]rune, len(s.HDA.Subs))
	for i := range lanes {
		lanes[i] = []rune(strings.Repeat(".", width))
	}
	scale := float64(width) / float64(s.MakespanCycles)
	for _, a := range s.Assignments {
		lo := int(float64(a.Start) * scale)
		hi := int(float64(a.End) * scale)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		mark := markFor(a.Instance)
		for p := lo; p < hi; p++ {
			lanes[a.SubAcc][p] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %d cycles (%.4f s @1GHz); one column = %.0f cycles\n",
		s.MakespanCycles, s.LatencySeconds(1.0), 1/scale)
	for i, lane := range lanes {
		fmt.Fprintf(&b, "%-22s |%s|\n", s.HDA.Subs[i].Name, string(lane))
	}
	b.WriteString(legend(s))
	return b.String()
}

// markFor maps an instance index to a stable rune (0-9, a-z, A-Z, #).
func markFor(inst int) rune {
	const syms = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if inst < len(syms) {
		return rune(syms[inst])
	}
	return '#'
}

func legend(s *sched.Schedule) string {
	var b strings.Builder
	b.WriteString("legend:")
	for i, in := range s.Workload.Instances {
		fmt.Fprintf(&b, " %c=%s", markFor(i), in.Name())
		if i >= 61 {
			b.WriteString(" ...")
			break
		}
	}
	b.WriteString("\n")
	return b.String()
}

// Sample is one point of the occupancy timeline.
type Sample struct {
	Cycle int64
	Bytes int64
}

// OccupancyTimeline returns the shared-global-buffer occupancy as a
// step function: a sample at every instant it changes.
func OccupancyTimeline(s *sched.Schedule) []Sample {
	type ev struct {
		t int64
		d int64
	}
	evs := make([]ev, 0, 2*len(s.Assignments))
	for _, a := range s.Assignments {
		evs = append(evs, ev{a.Start, a.Cost.OccupancyBytes}, ev{a.End, -a.Cost.OccupancyBytes})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].d < evs[j].d // releases before claims at the same instant
	})
	var out []Sample
	var cur int64
	for _, e := range evs {
		cur += e.d
		if n := len(out); n > 0 && out[n-1].Cycle == e.t {
			out[n-1].Bytes = cur
			continue
		}
		out = append(out, Sample{Cycle: e.t, Bytes: cur})
	}
	return out
}

// InstanceSummary is the completion view of one model instance — the
// per-sub-task latency an AR/VR system integrator would read off.
type InstanceSummary struct {
	Instance   string
	Layers     int
	FinishedAt int64   // cycle of last layer completion
	BusyCycles int64   // sum of its layers' cycles
	EnergyMJ   float64 // energy attributed to its layers
}

// Instances summarizes per-instance completion, sorted by finish time.
func Instances(s *sched.Schedule) []InstanceSummary {
	sums := make([]InstanceSummary, len(s.Workload.Instances))
	for i, in := range s.Workload.Instances {
		sums[i].Instance = in.Name()
	}
	for _, a := range s.Assignments {
		sm := &sums[a.Instance]
		sm.Layers++
		if a.End > sm.FinishedAt {
			sm.FinishedAt = a.End
		}
		sm.BusyCycles += a.Cost.Cycles
		sm.EnergyMJ += a.Cost.EnergyPJ() * 1e-9
	}
	sort.Slice(sums, func(i, j int) bool { return sums[i].FinishedAt < sums[j].FinishedAt })
	return sums
}

// WriteCSV dumps every assignment as one CSV row (instance, layer,
// sub-accelerator, start, end, cycles, energy pJ, occupancy bytes).
func WriteCSV(w io.Writer, s *sched.Schedule) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"instance", "layer", "layer_name", "sub_acc", "style",
		"start_cycle", "end_cycle", "cycles", "energy_pj", "occupancy_bytes"}); err != nil {
		return err
	}
	for _, a := range s.Assignments {
		in := s.Workload.Instances[a.Instance]
		sub := s.HDA.Subs[a.SubAcc]
		rec := []string{
			in.Name(),
			strconv.Itoa(a.Layer),
			in.Model.Layers[a.Layer].Name,
			sub.Name,
			sub.Style.String(),
			strconv.FormatInt(a.Start, 10),
			strconv.FormatInt(a.End, 10),
			strconv.FormatInt(a.Cost.Cycles, 10),
			strconv.FormatFloat(a.Cost.EnergyPJ(), 'f', 1, 64),
			strconv.FormatInt(a.Cost.OccupancyBytes, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonSchedule is the exported JSON shape.
type jsonSchedule struct {
	HDA         string           `json:"hda"`
	Workload    string           `json:"workload"`
	Makespan    int64            `json:"makespan_cycles"`
	EnergyPJ    float64          `json:"energy_pj"`
	PeakBytes   int64            `json:"peak_occupancy_bytes"`
	Assignments []jsonAssignment `json:"assignments"`
}

type jsonAssignment struct {
	Instance string  `json:"instance"`
	Layer    int     `json:"layer"`
	SubAcc   string  `json:"sub_acc"`
	Start    int64   `json:"start"`
	End      int64   `json:"end"`
	EnergyPJ float64 `json:"energy_pj"`
}

// WriteJSON dumps the schedule as indented JSON.
func WriteJSON(w io.Writer, s *sched.Schedule) error {
	out := jsonSchedule{
		HDA:       s.HDA.String(),
		Workload:  s.Workload.Name,
		Makespan:  s.MakespanCycles,
		EnergyPJ:  s.EnergyPJ,
		PeakBytes: s.PeakOccupancyBytes(),
	}
	for _, a := range s.Assignments {
		out.Assignments = append(out.Assignments, jsonAssignment{
			Instance: s.Workload.Instances[a.Instance].Name(),
			Layer:    a.Layer,
			SubAcc:   s.HDA.Subs[a.SubAcc].Name,
			Start:    a.Start,
			End:      a.End,
			EnergyPJ: a.Cost.EnergyPJ(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
