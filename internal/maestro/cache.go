package maestro

import (
	"hash/maphash"
	"sync"

	"repro/internal/dataflow"
	"repro/internal/dnn"
	"repro/internal/energy"
)

// The cache is two-level (see the package comment):
//
//	L1 mapping cache:  (shape, style, PEs)        -> dataflow.Mapping
//	L1 cost cache:     (shape, style, full HW)    -> Cost, sharded
//
// The mapping level exists because dataflow.Map depends only on the
// layer shape, the style and the PE count — not on the bandwidth or
// buffer shares. A DSE sweep evaluates the same (shape, style, PEs)
// triple under dozens of bandwidth/buffer partitions; those cost-cache
// misses all reuse one memoized mapping instead of re-running the
// fold/multicast analysis. The cost level is sharded by key hash so
// the DSE worker pool and a concurrently-running serving engine do
// not serialize on a single lock. (Schedulers additionally keep a
// private unsynchronized L0 in front of this cache.)

// costShards is the cost-cache shard count. Shard selection hashes
// the full key, so any power of two comfortably above the typical
// core count spreads contention; 64 keeps the fixed footprint small.
const costShards = 64

// costKey identifies a cost query: layer shape × style × substrate.
// Multi-batch workloads re-evaluate identical layer shapes constantly
// and the DSE re-schedules the same workload across hundreds of
// partition points, so memoization is what keeps full-paper runs in
// seconds.
type costKey struct {
	shape dnn.ShapeKey
	style dataflow.Style
	hw    HW
}

// mapKey identifies a mapping query: the subset of costKey that
// dataflow.Map actually reads.
type mapKey struct {
	shape dnn.ShapeKey
	style dataflow.Style
	pes   int
}

type costShard struct {
	mu sync.RWMutex
	m  map[costKey]*Cost
}

// Cache memoizes Estimate results for a fixed energy table. It is safe
// for concurrent use.
type Cache struct {
	table energy.Table
	seed  maphash.Seed

	// mappings is the shared (shape, style, PEs) -> dataflow.Mapping
	// level; sync.Map suits its read-mostly, write-once population.
	mappings sync.Map

	shards [costShards]costShard
}

// NewCache returns an empty cost cache bound to the given energy table.
func NewCache(et energy.Table) *Cache {
	c := &Cache{table: et, seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].m = make(map[costKey]*Cost)
	}
	return c
}

// Table returns the energy table this cache is bound to.
func (c *Cache) Table() energy.Table { return c.table }

func (c *Cache) shard(key costKey) *costShard {
	return &c.shards[maphash.Comparable(c.seed, key)&(costShards-1)]
}

// Estimate returns the (possibly memoized) cost of layer l under style
// on substrate hw.
func (c *Cache) Estimate(l *dnn.Layer, style dataflow.Style, hw HW) Cost {
	return *c.EstimateRef(l, style, hw)
}

// EstimateRef is Estimate returning the interned cache entry itself,
// sparing hot callers (the scheduler's inner loop) a ~250-byte struct
// copy per query. The pointee is shared and must not be modified.
func (c *Cache) EstimateRef(l *dnn.Layer, style dataflow.Style, hw HW) *Cost {
	key := costKey{shape: l.Key(), style: style, hw: hw}
	sh := c.shard(key)
	sh.mu.RLock()
	p, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		return p
	}
	cost := EstimateMapping(l, c.Mapping(l, style, hw.PEs), hw, c.table)
	sh.mu.Lock()
	if q, ok := sh.m[key]; ok {
		p = q // another goroutine won the race; keep one canonical entry
	} else {
		p = &cost
		sh.m[key] = p
	}
	sh.mu.Unlock()
	return p
}

// Mapping returns the (possibly memoized) dataflow mapping of layer l
// under style on a pes-sized array — the expensive half of a cost
// query, shared across substrates that differ only in bandwidth or
// buffer shares.
func (c *Cache) Mapping(l *dnn.Layer, style dataflow.Style, pes int) dataflow.Mapping {
	mk := mapKey{shape: l.Key(), style: style, pes: pes}
	if v, ok := c.mappings.Load(mk); ok {
		return v.(dataflow.Mapping)
	}
	m := dataflow.Map(style, l, pes)
	c.mappings.Store(mk, m)
	return m
}

// Len returns the number of memoized cost entries (diagnostics).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}

// MappingLen returns the number of memoized mappings (diagnostics).
func (c *Cache) MappingLen() int {
	n := 0
	c.mappings.Range(func(any, any) bool { n++; return true })
	return n
}

// ModelCost aggregates the sequential execution of a whole model on a
// single monolithic substrate (the FDA execution model: one layer
// after another).
type ModelCost struct {
	Cycles   int64
	EnergyPJ float64
	PerLayer []Cost
}

// Seconds converts the total latency to seconds.
func (mc ModelCost) Seconds(clockGHz float64) float64 {
	if clockGHz <= 0 {
		clockGHz = 1.0
	}
	return float64(mc.Cycles) / (clockGHz * 1e9)
}

// EDP returns the model-level energy-delay product in joule-seconds.
func (mc ModelCost) EDP(clockGHz float64) float64 {
	return mc.EnergyPJ * 1e-12 * mc.Seconds(clockGHz)
}

// EstimateModel runs every layer of m sequentially under one style on
// one substrate, as a fixed dataflow accelerator would (Fig. 2's
// experiment shape).
func EstimateModel(m *dnn.Model, style dataflow.Style, hw HW, et energy.Table) ModelCost {
	mc := ModelCost{PerLayer: make([]Cost, len(m.Layers))}
	for i := range m.Layers {
		cost := Estimate(&m.Layers[i], style, hw, et)
		mc.PerLayer[i] = cost
		mc.Cycles += cost.Cycles
		mc.EnergyPJ += cost.EnergyPJ()
	}
	return mc
}
