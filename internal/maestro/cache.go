package maestro

import (
	"math"
	"sync"

	"repro/internal/dataflow"
	"repro/internal/dnn"
	"repro/internal/energy"
)

// The cache is two-level (see the package comment):
//
//	L1 mapping cache:  (shape, style, PEs)        -> dataflow.Mapping
//	L1 cost cache:     (shape, style, full HW)    -> Cost, sharded
//	column cache:      (model, style, full HW)    -> []*Cost
//
// The mapping level exists because dataflow.Map depends only on the
// layer shape, the style and the PE count — not on the bandwidth or
// buffer shares. A DSE sweep evaluates the same (shape, style, PEs)
// triple under dozens of bandwidth/buffer partitions; those cost-cache
// misses all reuse one memoized mapping instead of re-running the
// fold/multicast analysis. The cost level is sharded by key hash so
// the DSE worker pool and a concurrently-running serving engine do
// not serialize on a single lock. (Schedulers additionally keep a
// private unsynchronized L0 in front of this cache.)

// costShards is the cost-cache shard count. Shard selection hashes
// the full key, so any power of two comfortably above the typical
// core count spreads contention; 64 keeps the fixed footprint small.
const costShards = 64

// costKey identifies a cost query: layer shape × style × substrate.
// Multi-batch workloads re-evaluate identical layer shapes constantly
// and the DSE re-schedules the same workload across hundreds of
// partition points, so memoization is what keeps full-paper runs in
// seconds.
type costKey struct {
	shape dnn.ShapeKey
	style dataflow.Style
	hw    HW
}

// mapKey identifies a mapping query: the subset of costKey that
// dataflow.Map actually reads.
type mapKey struct {
	shape dnn.ShapeKey
	style dataflow.Style
	pes   int
}

// columnKey identifies a whole-model cost column. Zoo models are
// interned (dnn.ByName caches), so the pointer is a stable identity.
type columnKey struct {
	model *dnn.Model
	style dataflow.Style
	hw    HW
}

type costShard struct {
	mu sync.RWMutex
	m  map[costKey]*Cost
}

// Cache memoizes Estimate results for a fixed energy table. It is safe
// for concurrent use.
type Cache struct {
	table energy.Table

	// mappings is the shared (shape, style, PEs) -> *dataflow.Mapping
	// level. A typed RWMutex map, not a sync.Map: lookups happen only
	// on cost-entry misses, where sync.Map's per-Load interface boxing
	// and type hashing profiled as a double-digit share of a cold DSE
	// sweep.
	mappings struct {
		mu sync.RWMutex
		m  map[mapKey]*dataflow.Mapping
	}

	// columns interns whole-model cost rows: (model, style, HW) ->
	// []*Cost, one interned entry per layer. Schedulers and DSE bound
	// computations that walk a model's layers on one substrate share a
	// single column instead of re-hashing one cost key per layer; like
	// mappings, the population is read-mostly and write-once.
	columns struct {
		mu sync.RWMutex
		m  map[columnKey][]*Cost
	}

	shards [costShards]costShard
}

// NewCache returns an empty cost cache bound to the given energy table.
func NewCache(et energy.Table) *Cache {
	c := &Cache{table: et}
	c.mappings.m = make(map[mapKey]*dataflow.Mapping)
	c.columns.m = make(map[columnKey][]*Cost)
	for i := range c.shards {
		c.shards[i].m = make(map[costKey]*Cost)
	}
	return c
}

// Table returns the energy table this cache is bound to.
func (c *Cache) Table() energy.Table { return c.table }

func (c *Cache) shard(key costKey) *costShard {
	// Shard selection only needs to spread contention, not be a
	// cryptographic hash: a multiplicative mix of the fields that
	// actually vary (layer shape, style, substrate) replaces a full
	// maphash over the ~100-byte key, which profiled at several
	// percent of a DSE sweep on its own.
	h := uint64(key.shape.K)
	h = h*0x9E3779B97F4A7C15 + uint64(key.shape.C)
	h = h*0x9E3779B97F4A7C15 + uint64(key.shape.Y)
	h = h*0x9E3779B97F4A7C15 + uint64(key.shape.X+key.shape.R+key.shape.S)
	h = h*0x9E3779B97F4A7C15 + uint64(key.shape.Op)<<8 + uint64(key.style)
	h = h*0x9E3779B97F4A7C15 + uint64(key.hw.PEs)
	h = h*0x9E3779B97F4A7C15 + math.Float64bits(key.hw.BWGBps)
	h ^= h >> 29
	return &c.shards[(h*0x9E3779B97F4A7C15>>52)&(costShards-1)]
}

// Estimate returns the (possibly memoized) cost of layer l under style
// on substrate hw.
func (c *Cache) Estimate(l *dnn.Layer, style dataflow.Style, hw HW) Cost {
	return *c.EstimateRef(l, style, hw)
}

// EstimateRef is Estimate returning the interned cache entry itself,
// sparing hot callers (the scheduler's inner loop) a ~250-byte struct
// copy per query. The pointee is shared and must not be modified.
func (c *Cache) EstimateRef(l *dnn.Layer, style dataflow.Style, hw HW) *Cost {
	key := costKey{shape: l.Key(), style: style, hw: hw}
	sh := c.shard(key)
	sh.mu.RLock()
	p, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		return p
	}
	cost := estimate(l, c.mappingRef(l, style, hw.PEs), hw, c.table)
	sh.mu.Lock()
	if q, ok := sh.m[key]; ok {
		p = q // another goroutine won the race; keep one canonical entry
	} else {
		p = &cost
		sh.m[key] = p
	}
	sh.mu.Unlock()
	return p
}

// CostColumn returns model m's per-layer interned costs under style on
// substrate hw — the scheduling-free "busy-cycle row" view that the
// scheduler's L0 tables, the DSE's objective lower bounds, and fleet
// ETA estimates consume. The column (and each entry) is shared and
// must not be modified.
//
// Misses are filled through fixed-size slab blocks instead of one
// heap object per layer: a DSE sweep interns tens of thousands of
// Cost entries, and slab-backed entries cut both the allocation count
// and the garbage collector's scan set. A block never reallocates
// once a pointer into it is published (appends move to a fresh block
// when one fills), so interned pointers stay valid.
func (c *Cache) CostColumn(m *dnn.Model, style dataflow.Style, hw HW) []*Cost {
	key := columnKey{model: m, style: style, hw: hw}
	c.columns.mu.RLock()
	col, ok := c.columns.m[key]
	c.columns.mu.RUnlock()
	if ok {
		return col
	}
	const slabBlock = 16
	col = make([]*Cost, len(m.Layers))
	var slab []Cost
	for i := range m.Layers {
		l := &m.Layers[i]
		ck := costKey{shape: l.Key(), style: style, hw: hw}
		sh := c.shard(ck)
		sh.mu.RLock()
		p, ok := sh.m[ck]
		sh.mu.RUnlock()
		if !ok {
			cost := estimate(l, c.mappingRef(l, style, hw.PEs), hw, c.table)
			sh.mu.Lock()
			if q, ok := sh.m[ck]; ok {
				p = q // another goroutine won the race; keep one canonical entry
			} else {
				if len(slab) == cap(slab) {
					slab = make([]Cost, 0, min(slabBlock, len(m.Layers)-i))
				}
				slab = append(slab, cost)
				p = &slab[len(slab)-1]
				sh.m[ck] = p
			}
			sh.mu.Unlock()
		}
		col[i] = p
	}
	c.columns.mu.Lock()
	if q, ok := c.columns.m[key]; ok {
		col = q // another goroutine won the race; keep one canonical column
	} else {
		c.columns.m[key] = col
	}
	c.columns.mu.Unlock()
	return col
}

// Mapping returns the (possibly memoized) dataflow mapping of layer l
// under style on a pes-sized array — the expensive half of a cost
// query, shared across substrates that differ only in bandwidth or
// buffer shares.
func (c *Cache) Mapping(l *dnn.Layer, style dataflow.Style, pes int) dataflow.Mapping {
	return *c.mappingRef(l, style, pes)
}

// mappingRef is Mapping returning the interned entry itself — the
// pointer Cost.Mapping carries, so every cost of a (shape, style,
// PEs) triple shares one mapping struct. The pointee must not be
// modified.
func (c *Cache) mappingRef(l *dnn.Layer, style dataflow.Style, pes int) *dataflow.Mapping {
	mk := mapKey{shape: l.Key(), style: style, pes: pes}
	c.mappings.mu.RLock()
	p, ok := c.mappings.m[mk]
	c.mappings.mu.RUnlock()
	if ok {
		return p
	}
	m := dataflow.Map(style, l, pes)
	c.mappings.mu.Lock()
	if q, ok := c.mappings.m[mk]; ok {
		p = q // another goroutine won the race; keep one canonical entry
	} else {
		p = &m
		c.mappings.m[mk] = p
	}
	c.mappings.mu.Unlock()
	return p
}

// Len returns the number of memoized cost entries (diagnostics).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}

// MappingLen returns the number of memoized mappings (diagnostics).
func (c *Cache) MappingLen() int {
	c.mappings.mu.RLock()
	defer c.mappings.mu.RUnlock()
	return len(c.mappings.m)
}

// ModelCost aggregates the sequential execution of a whole model on a
// single monolithic substrate (the FDA execution model: one layer
// after another).
type ModelCost struct {
	Cycles   int64
	EnergyPJ float64
	PerLayer []Cost
}

// Seconds converts the total latency to seconds.
func (mc ModelCost) Seconds(clockGHz float64) float64 {
	if clockGHz <= 0 {
		clockGHz = 1.0
	}
	return float64(mc.Cycles) / (clockGHz * 1e9)
}

// EDP returns the model-level energy-delay product in joule-seconds.
func (mc ModelCost) EDP(clockGHz float64) float64 {
	return mc.EnergyPJ * 1e-12 * mc.Seconds(clockGHz)
}

// EstimateModel runs every layer of m sequentially under one style on
// one substrate, as a fixed dataflow accelerator would (Fig. 2's
// experiment shape).
func EstimateModel(m *dnn.Model, style dataflow.Style, hw HW, et energy.Table) ModelCost {
	mc := ModelCost{PerLayer: make([]Cost, len(m.Layers))}
	for i := range m.Layers {
		cost := Estimate(&m.Layers[i], style, hw, et)
		mc.PerLayer[i] = cost
		mc.Cycles += cost.Cycles
		mc.EnergyPJ += cost.EnergyPJ()
	}
	return mc
}
