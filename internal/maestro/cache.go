package maestro

import (
	"sync"

	"repro/internal/dataflow"
	"repro/internal/dnn"
	"repro/internal/energy"
)

// cacheKey identifies a cost query: layer shape × style × substrate.
// Multi-batch workloads re-evaluate identical layer shapes constantly
// and the DSE re-schedules the same workload across hundreds of
// partition points, so memoization is what keeps full-paper runs in
// seconds.
type cacheKey struct {
	shape dnn.ShapeKey
	style dataflow.Style
	hw    HW
}

// Cache memoizes Estimate results for a fixed energy table. It is safe
// for concurrent use.
type Cache struct {
	table energy.Table

	mu sync.RWMutex
	m  map[cacheKey]Cost
}

// NewCache returns an empty cost cache bound to the given energy table.
func NewCache(et energy.Table) *Cache {
	return &Cache{table: et, m: make(map[cacheKey]Cost)}
}

// Table returns the energy table this cache is bound to.
func (c *Cache) Table() energy.Table { return c.table }

// Estimate returns the (possibly memoized) cost of layer l under style
// on substrate hw.
func (c *Cache) Estimate(l *dnn.Layer, style dataflow.Style, hw HW) Cost {
	key := cacheKey{shape: l.Key(), style: style, hw: hw}
	c.mu.RLock()
	cost, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		return cost
	}
	cost = Estimate(l, style, hw, c.table)
	c.mu.Lock()
	c.m[key] = cost
	c.mu.Unlock()
	return cost
}

// Len returns the number of memoized entries (diagnostics).
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// ModelCost aggregates the sequential execution of a whole model on a
// single monolithic substrate (the FDA execution model: one layer
// after another).
type ModelCost struct {
	Cycles   int64
	EnergyPJ float64
	PerLayer []Cost
}

// Seconds converts the total latency to seconds.
func (mc ModelCost) Seconds(clockGHz float64) float64 {
	if clockGHz <= 0 {
		clockGHz = 1.0
	}
	return float64(mc.Cycles) / (clockGHz * 1e9)
}

// EDP returns the model-level energy-delay product in joule-seconds.
func (mc ModelCost) EDP(clockGHz float64) float64 {
	return mc.EnergyPJ * 1e-12 * mc.Seconds(clockGHz)
}

// EstimateModel runs every layer of m sequentially under one style on
// one substrate, as a fixed dataflow accelerator would (Fig. 2's
// experiment shape).
func EstimateModel(m *dnn.Model, style dataflow.Style, hw HW, et energy.Table) ModelCost {
	mc := ModelCost{PerLayer: make([]Cost, len(m.Layers))}
	for i := range m.Layers {
		cost := Estimate(&m.Layers[i], style, hw, et)
		mc.PerLayer[i] = cost
		mc.Cycles += cost.Cycles
		mc.EnergyPJ += cost.EnergyPJ()
	}
	return mc
}
