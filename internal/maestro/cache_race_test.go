package maestro

import (
	"sync"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/dnn"
	"repro/internal/energy"
)

// raceLayers returns a mixed bag of layer shapes for cache hammering.
func raceLayers() []dnn.Layer {
	return []dnn.Layer{
		{Op: dnn.Conv2D, K: 64, C: 3, Y: 224, X: 224, R: 7, S: 7, Stride: 2, Pad: 3},
		{Op: dnn.Conv2D, K: 128, C: 64, Y: 56, X: 56, R: 3, S: 3, Stride: 1, Pad: 1},
		{Op: dnn.PWConv, K: 256, C: 128, Y: 28, X: 28, R: 1, S: 1, Stride: 1},
		{Op: dnn.DWConv, K: 128, C: 128, Y: 28, X: 28, R: 3, S: 3, Stride: 1, Pad: 1},
		{Op: dnn.FC, K: 1000, C: 2048, Y: 1, X: 1, R: 1, S: 1, Stride: 1},
	}
}

// TestCacheConcurrentHammer drives the sharded cost cache from many
// goroutines at once — the DSE-worker-pool-plus-serving-engine access
// pattern — and checks every concurrent answer against an uncached
// reference estimate. Run with -race (CI does) to catch shard or
// mapping-level synchronization bugs.
func TestCacheConcurrentHammer(t *testing.T) {
	et := energy.Default28nm()
	cache := NewCache(et)
	layers := raceLayers()
	styles := []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao, dataflow.Eyeriss}
	hws := []HW{
		{PEs: 128, BWGBps: 4, L2Bytes: 1 << 20},
		{PEs: 896, BWGBps: 12, L2Bytes: 3 << 20},
		{PEs: 1024, BWGBps: 16, L2Bytes: 4 << 20},
	}

	const goroutines = 16
	const rounds = 40
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Each goroutine walks the key space in a different
				// order so cold misses race on every shard.
				for i := 0; i < len(layers)*len(styles)*len(hws); i++ {
					j := (i*7 + g*13 + r) % (len(layers) * len(styles) * len(hws))
					l := &layers[j%len(layers)]
					st := styles[(j/len(layers))%len(styles)]
					hw := hws[j/(len(layers)*len(styles))]
					got := cache.Estimate(l, st, hw)
					ref := cache.EstimateRef(l, st, hw)
					if got != *ref {
						errs <- "Estimate and EstimateRef disagree"
						return
					}
					want := Estimate(l, st, hw, et)
					// The cache interns the mapping; the direct path
					// builds a fresh one. Value-compare the mapping,
					// bit-compare the rest.
					if *got.Mapping != *want.Mapping {
						errs <- "cached mapping differs from direct estimate"
						return
					}
					got.Mapping, want.Mapping = nil, nil
					if got != want {
						errs <- "cached cost differs from direct estimate"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	maxKeys := len(layers) * len(styles) * len(hws)
	if n := cache.Len(); n == 0 || n > maxKeys {
		t.Errorf("cache holds %d entries, want 1..%d (racing writers must dedupe)", n, maxKeys)
	}
	if n := cache.MappingLen(); n == 0 || n > len(layers)*len(styles)*len(hws) {
		t.Errorf("mapping cache holds %d entries", n)
	}
}

// TestCacheInterning: concurrent queries for one key must converge on
// a single interned *Cost (the racing-writer dedup in EstimateRef).
func TestCacheInterning(t *testing.T) {
	cache := NewCache(energy.Default28nm())
	l := raceLayers()[0]
	hw := HW{PEs: 256, BWGBps: 8, L2Bytes: 2 << 20}

	const goroutines = 8
	ptrs := make([]*Cost, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ptrs[g] = cache.EstimateRef(&l, dataflow.NVDLA, hw)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if ptrs[g] != ptrs[0] {
			t.Fatal("EstimateRef returned distinct pointers for one key")
		}
	}
	if n := cache.Len(); n != 1 {
		t.Fatalf("cache holds %d entries for a single hammered key", n)
	}
}
