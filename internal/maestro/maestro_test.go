package maestro

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataflow"
	"repro/internal/dnn"
	"repro/internal/energy"
)

// fig2HW is the Figure 2 configuration: 256 PEs, 32 GB/s NoC bandwidth,
// with a generous shared buffer.
var fig2HW = HW{PEs: 256, BWGBps: 32, L2Bytes: 4 << 20}

func et() energy.Table { return energy.Default28nm() }

func TestHWValidate(t *testing.T) {
	good := fig2HW
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []HW{
		{PEs: 0, BWGBps: 32, L2Bytes: 1 << 20},
		{PEs: 256, BWGBps: 0, L2Bytes: 1 << 20},
		{PEs: 256, BWGBps: 32, L2Bytes: 10},
		{PEs: 256, BWGBps: 32, L2Bytes: 1 << 20, ContextCycles: -1},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, h)
		}
	}
	if (HW{}).Clock() != 1.0 {
		t.Error("zero clock should default to 1 GHz")
	}
}

func TestEnergyTableValidate(t *testing.T) {
	if err := et().Validate(); err != nil {
		t.Fatal(err)
	}
	badTable := et()
	badTable.DRAM = badTable.RF / 2
	if err := badTable.Validate(); err == nil {
		t.Error("inverted hierarchy should fail validation")
	}
	neg := et()
	neg.MAC = 0
	if err := neg.Validate(); err == nil {
		t.Error("zero MAC energy should fail validation")
	}
	scaled := et().Scale(2)
	if scaled.MAC != 2*et().MAC || scaled.DRAM != 2*et().DRAM {
		t.Error("Scale should multiply every entry")
	}
}

// TestFigure2Orderings reproduces the qualitative content of Figure 2:
// on ResNet50 (deep channels) the NVDLA style has the lowest EDP of the
// three styles; on UNet (shallow channels, huge activations) NVDLA has
// the highest EDP and Shi-diannao the lowest.
func TestFigure2Orderings(t *testing.T) {
	resnet := dnn.MustByName("resnet50")
	unet := dnn.MustByName("unet")

	edp := func(m *dnn.Model, s dataflow.Style) float64 {
		return EstimateModel(m, s, fig2HW, et()).EDP(1.0)
	}

	rn := edp(resnet, dataflow.NVDLA)
	rs := edp(resnet, dataflow.ShiDiannao)
	re := edp(resnet, dataflow.Eyeriss)
	if !(rn < rs && rn < re) {
		t.Errorf("ResNet50 EDP: NVDLA %.3g should beat Shi %.3g and Eyeriss %.3g (Fig. 2a)", rn, rs, re)
	}

	un := edp(unet, dataflow.NVDLA)
	us := edp(unet, dataflow.ShiDiannao)
	ue := edp(unet, dataflow.Eyeriss)
	if !(us < un) {
		t.Errorf("UNet EDP: Shi %.3g should beat NVDLA %.3g (Fig. 2b)", us, un)
	}
	if !(un > us && un > ue) {
		t.Errorf("UNet EDP: NVDLA %.3g should be the worst (Shi %.3g, Eyeriss %.3g)", un, us, ue)
	}

	// Figure 2's axes differ by orders of magnitude: UNet's EDP dwarfs
	// ResNet50's on every style (the workload itself is ~15x the MACs
	// at 4x the batch in AR/VR-A; here instance-for-instance).
	if us < rs {
		t.Errorf("UNet EDP (%.3g) should exceed ResNet50's (%.3g) on the same style", us, rs)
	}
}

// TestFigure5EDPOrderings checks the per-layer preference signs of
// Figure 5: Shi-diannao wins layers 1 (early-classification conv) and
// 3 (depth-wise), NVDLA wins layer 2 (late-classification conv).
func TestFigure5EDPOrderings(t *testing.T) {
	hw := HW{PEs: 16, BWGBps: 4, L2Bytes: 64 << 10}
	layers := []dnn.Layer{
		{Name: "l1", Op: dnn.Conv2D, K: 2, C: 3, Y: 6, X: 6, R: 3, S: 3, Stride: 1},
		{Name: "l2", Op: dnn.Conv2D, K: 3, C: 16, Y: 4, X: 4, R: 3, S: 3, Stride: 1},
		{Name: "l3", Op: dnn.DWConv, K: 2, C: 2, Y: 6, X: 6, R: 3, S: 3, Stride: 1},
	}
	edp := func(i int, s dataflow.Style) float64 {
		return Estimate(&layers[i], s, hw, et()).EDP(1.0)
	}
	if !(edp(0, dataflow.ShiDiannao) < edp(0, dataflow.NVDLA)) {
		t.Error("Fig. 5 layer 1: Shi-diannao should have lower EDP than NVDLA")
	}
	if !(edp(1, dataflow.NVDLA) < edp(1, dataflow.ShiDiannao)) {
		t.Error("Fig. 5 layer 2: NVDLA should have lower EDP than Shi-diannao")
	}
	if !(edp(2, dataflow.ShiDiannao) < edp(2, dataflow.NVDLA)) {
		t.Error("Fig. 5 layer 3: Shi-diannao should have lower EDP than NVDLA")
	}
}

func TestContextPenaltyApplied(t *testing.T) {
	l := dnn.Layer{Op: dnn.Conv2D, K: 64, C: 64, Y: 28, X: 28, R: 3, S: 3, Stride: 1, Pad: 1}
	base := Estimate(&l, dataflow.NVDLA, fig2HW, et())
	hw := fig2HW
	hw.ContextCycles = 10000
	hw.ContextPJ = 5e6
	pen := Estimate(&l, dataflow.NVDLA, hw, et())
	if pen.Cycles != base.Cycles+10000 {
		t.Errorf("context cycles not charged: %d vs %d", pen.Cycles, base.Cycles)
	}
	if pen.EnergyPJ() != base.EnergyPJ()+5e6 {
		t.Errorf("context energy not charged: %g vs %g", pen.EnergyPJ(), base.EnergyPJ())
	}
}

func TestDoubleBufferedLatency(t *testing.T) {
	// A compute-heavy layer must be compute-bound; starving its
	// bandwidth must flip it to memory-bound with higher latency.
	l := dnn.Layer{Op: dnn.Conv2D, K: 512, C: 512, Y: 14, X: 14, R: 3, S: 3, Stride: 1, Pad: 1}
	rich := Estimate(&l, dataflow.NVDLA, HW{PEs: 256, BWGBps: 256, L2Bytes: 8 << 20}, et())
	if rich.Cycles-rich.FillCycles != rich.ComputeCycles {
		t.Errorf("with ample bandwidth the layer should be compute-bound: %+v", rich)
	}
	poor := Estimate(&l, dataflow.NVDLA, HW{PEs: 256, BWGBps: 0.5, L2Bytes: 8 << 20}, et())
	if poor.Cycles <= rich.Cycles {
		t.Error("starved bandwidth should increase latency")
	}
	if poor.MemoryCycles <= poor.ComputeCycles {
		t.Error("starved bandwidth should make the layer memory-bound")
	}
}

func TestSmallBufferIncreasesDRAMTraffic(t *testing.T) {
	// When neither weights nor inputs fit the resident budget, DRAM
	// traffic must exceed the compulsory footprint.
	l := dnn.Layer{Op: dnn.Conv2D, K: 512, C: 512, Y: 56, X: 56, R: 3, S: 3, Stride: 1, Pad: 1}
	compulsory := l.InputElems() + l.WeightElems() + l.OutputElems()
	big := Estimate(&l, dataflow.NVDLA, HW{PEs: 256, BWGBps: 32, L2Bytes: 32 << 20}, et())
	if big.DRAMBytes != compulsory {
		t.Errorf("ample buffer: DRAM bytes %d, want compulsory %d", big.DRAMBytes, compulsory)
	}
	small := Estimate(&l, dataflow.NVDLA, HW{PEs: 256, BWGBps: 32, L2Bytes: 256 << 10}, et())
	if small.DRAMBytes <= compulsory {
		t.Errorf("tiny buffer: DRAM bytes %d should exceed compulsory %d", small.DRAMBytes, compulsory)
	}
	if small.Energy.DRAM <= big.Energy.DRAM {
		t.Error("tiny buffer should cost more DRAM energy")
	}
}

func TestRepeatScalesCost(t *testing.T) {
	base := dnn.Layer{Op: dnn.FC, K: 4096, C: 2048, Y: 1, X: 1, R: 1, S: 1, Stride: 1}
	rep := base
	rep.Repeat = 25
	c1 := Estimate(&base, dataflow.NVDLA, fig2HW, et())
	c25 := Estimate(&rep, dataflow.NVDLA, fig2HW, et())
	if c25.ComputeCycles != 25*c1.ComputeCycles {
		t.Errorf("repeat compute cycles: %d, want %d", c25.ComputeCycles, 25*c1.ComputeCycles)
	}
	if c25.Energy.MAC != 25*c1.Energy.MAC {
		t.Errorf("repeat MAC energy: %g, want %g", c25.Energy.MAC, 25*c1.Energy.MAC)
	}
	// Weights that fit the global buffer are fetched from DRAM once
	// regardless of repeats.
	small := dnn.Layer{Op: dnn.FC, K: 1024, C: 1024, Y: 1, X: 1, R: 1, S: 1, Stride: 1, Repeat: 25}
	cs := Estimate(&small, dataflow.NVDLA, fig2HW, et())
	wantDRAM := small.TotalInputElems() + small.WeightElems() + small.TotalOutputElems()
	if cs.DRAMBytes != wantDRAM {
		t.Errorf("resident-weight repeat DRAM bytes: %d, want %d", cs.DRAMBytes, wantDRAM)
	}
	// Weights that exceed the global buffer re-stream from DRAM every
	// timestep — the RNN weight-streaming wall that makes GNMT
	// memory-bound at batch 1.
	if c25.DRAMBytes <= rep.WeightElems()*2 {
		t.Errorf("oversized weights should re-stream from DRAM per repeat: %d", c25.DRAMBytes)
	}
}

func TestOccupancyCapped(t *testing.T) {
	l := dnn.Layer{Op: dnn.Conv2D, K: 64, C: 64, Y: 578, X: 578, R: 3, S: 3, Stride: 1}
	c := Estimate(&l, dataflow.ShiDiannao, HW{PEs: 256, BWGBps: 32, L2Bytes: 4 << 20}, et())
	if c.OccupancyBytes > 4<<20 {
		t.Errorf("occupancy %d exceeds L2 share", c.OccupancyBytes)
	}
	tiny := dnn.Layer{Op: dnn.FC, K: 16, C: 16, Y: 1, X: 1, R: 1, S: 1, Stride: 1}
	ct := Estimate(&tiny, dataflow.NVDLA, fig2HW, et())
	want := tiny.InputElems() + tiny.OutputElems() + tiny.WeightElems()
	if ct.OccupancyBytes != want {
		t.Errorf("small-layer occupancy %d, want exact working set %d", ct.OccupancyBytes, want)
	}
}

func TestCacheMemoizes(t *testing.T) {
	c := NewCache(et())
	l1 := dnn.Layer{Name: "a", Op: dnn.Conv2D, K: 64, C: 64, Y: 28, X: 28, R: 3, S: 3, Stride: 1, Pad: 1}
	l2 := l1
	l2.Name = "b" // same shape, different name

	cost1 := c.Estimate(&l1, dataflow.NVDLA, fig2HW)
	if c.Len() != 1 {
		t.Fatalf("cache size = %d, want 1", c.Len())
	}
	cost2 := c.Estimate(&l2, dataflow.NVDLA, fig2HW)
	if c.Len() != 1 {
		t.Errorf("same shape should hit cache; size = %d", c.Len())
	}
	if cost1 != cost2 {
		t.Error("cache must return identical costs for identical shapes")
	}
	_ = c.Estimate(&l1, dataflow.ShiDiannao, fig2HW)
	if c.Len() != 2 {
		t.Errorf("different style should miss cache; size = %d", c.Len())
	}
	hw2 := fig2HW
	hw2.PEs = 128
	_ = c.Estimate(&l1, dataflow.NVDLA, hw2)
	if c.Len() != 3 {
		t.Errorf("different HW should miss cache; size = %d", c.Len())
	}
	if c.Table() != et() {
		t.Error("Table accessor mismatch")
	}
}

func TestEstimateModelSumsLayers(t *testing.T) {
	m := dnn.MustByName("mobilenetv1")
	mc := EstimateModel(m, dataflow.NVDLA, fig2HW, et())
	if len(mc.PerLayer) != m.NumLayers() {
		t.Fatalf("per-layer costs: %d, want %d", len(mc.PerLayer), m.NumLayers())
	}
	var cyc int64
	var pj float64
	for _, c := range mc.PerLayer {
		cyc += c.Cycles
		pj += c.EnergyPJ()
	}
	if cyc != mc.Cycles {
		t.Errorf("cycles sum mismatch: %d vs %d", cyc, mc.Cycles)
	}
	if pj != mc.EnergyPJ {
		t.Errorf("energy sum mismatch: %g vs %g", pj, mc.EnergyPJ)
	}
	if mc.Seconds(1.0) <= 0 || mc.EDP(1.0) <= 0 {
		t.Error("model seconds/EDP must be positive")
	}
}

func genCostLayer(r *rand.Rand) dnn.Layer {
	ops := []dnn.Op{dnn.Conv2D, dnn.PWConv, dnn.DWConv, dnn.FC, dnn.UpConv}
	op := ops[r.Intn(len(ops))]
	l := dnn.Layer{Op: op, Stride: 1}
	switch op {
	case dnn.FC:
		l.K, l.C, l.Y, l.X, l.R, l.S = 1+r.Intn(2048), 1+r.Intn(2048), 1, 1, 1, 1
	case dnn.PWConv:
		l.K, l.C, l.R, l.S = 1+r.Intn(256), 1+r.Intn(256), 1, 1
		l.Y, l.X = 1+r.Intn(128), 1+r.Intn(128)
	case dnn.DWConv:
		ch := 1 + r.Intn(256)
		l.K, l.C, l.R, l.S, l.Pad = ch, ch, 3, 3, 1
		l.Y, l.X = 3+r.Intn(128), 3+r.Intn(128)
	case dnn.UpConv:
		l.K, l.C, l.R, l.S, l.Stride = 1+r.Intn(128), 1+r.Intn(128), 2, 2, 2
		l.Y, l.X = 1+r.Intn(64), 1+r.Intn(64)
	default:
		l.K, l.C, l.R, l.S, l.Pad = 1+r.Intn(256), 1+r.Intn(256), 3, 3, 1
		l.Y, l.X = 3+r.Intn(128), 3+r.Intn(128)
	}
	return l
}

// TestCostInvariants property-checks the cost model: positive latency
// and energy, latency at least the compute lower bound, DRAM traffic
// at least compulsory, array traffic at least DRAM traffic, and energy
// components all non-negative.
func TestCostInvariants(t *testing.T) {
	hws := []HW{
		{PEs: 64, BWGBps: 8, L2Bytes: 512 << 10},
		{PEs: 256, BWGBps: 32, L2Bytes: 4 << 20},
		{PEs: 1024, BWGBps: 16, L2Bytes: 4 << 20},
		{PEs: 16384, BWGBps: 256, L2Bytes: 16 << 20},
	}
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := genCostLayer(r)
		if err := l.Validate(); err != nil {
			return false
		}
		hw := hws[r.Intn(len(hws))]
		for _, s := range dataflow.AllStyles() {
			c := Estimate(&l, s, hw, et())
			if c.Cycles < c.ComputeCycles {
				t.Logf("%v: latency below compute bound", s)
				return false
			}
			compulsory := l.InputElems() + l.WeightElems() + l.OutputElems()
			if c.DRAMBytes < compulsory {
				t.Logf("%v on %v: DRAM %d < compulsory %d", s, l.String(), c.DRAMBytes, compulsory)
				return false
			}
			if c.ArrayBytes < c.DRAMBytes && c.ArrayBytes < compulsory {
				t.Logf("%v: array traffic below both DRAM and compulsory", s)
				return false
			}
			e := c.Energy
			if e.MAC <= 0 || e.RF <= 0 || e.NoC <= 0 || e.Buffer <= 0 || e.DRAM <= 0 || e.Context < 0 {
				return false
			}
			if c.EnergyPJ() < e.MAC+e.DRAM {
				return false
			}
			if c.OccupancyBytes <= 0 || c.OccupancyBytes > hw.L2Bytes {
				return false
			}
			if c.Seconds(1.0) <= 0 || c.EDP(1.0) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestMoreBandwidthNeverHurts: latency is monotonically non-increasing
// in bandwidth for a fixed mapping.
func TestMoreBandwidthNeverHurts(t *testing.T) {
	l := dnn.Layer{Op: dnn.Conv2D, K: 128, C: 128, Y: 56, X: 56, R: 3, S: 3, Stride: 1, Pad: 1}
	prev := int64(1 << 62)
	for _, bw := range []float64{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		c := Estimate(&l, dataflow.ShiDiannao, HW{PEs: 256, BWGBps: bw, L2Bytes: 4 << 20}, et())
		if c.Cycles > prev {
			t.Errorf("bandwidth %g: latency %d rose above %d", bw, c.Cycles, prev)
		}
		prev = c.Cycles
	}
}
