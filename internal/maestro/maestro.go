// Package maestro reimplements the MAESTRO-style analytical cost model
// the paper uses (§IV-B): given a layer, a dataflow style, and the
// hardware parameters of one (sub-)accelerator, it estimates latency
// and energy from data-reuse-derived access counts, exactly at the
// altitude of the original model — no cycle-accurate simulation, pure
// arithmetic over the mapping's fold/multicast structure.
//
// The pipeline is:
//
//	layer + style + PEs  ──dataflow.Map──▶  Mapping (folds, multicast)
//	Mapping + HW + energy.Table ──Estimate──▶ Cost (cycles, pJ, bytes)
//
// Latency follows the paper's execution model (§IV-A): compute and
// data movement overlap via double buffering, so steady-state latency
// is max(computeCycles, memoryCycles), plus a non-overlapped prologue
// for the first tile fill, plus an optional per-layer context-change
// penalty (§IV-A gives Herald an option to charge data-layout and
// context-switch costs).
//
// # Caching
//
// Cost queries are memoized by a two-level Cache. The upper level maps
// (layer shape, style, PEs) to the dataflow.Mapping — the expensive
// fold/multicast analysis, which is independent of bandwidth and
// buffer shares, so DSE partition points that differ only in those
// reuse one mapping. The lower level maps the full (layer shape,
// style, HW) key to the finished Cost and is sharded by key hash, so
// a DSE worker pool and the online serving engine never contend on a
// single lock. Single-threaded hot loops (the scheduler) keep a
// private unsynchronized L0 map in front of the shared cache; see
// internal/sched.
package maestro

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/dnn"
	"repro/internal/energy"
)

// HW describes the hardware resources of one (sub-)accelerator
// substrate: a PE array, its share of global NoC/memory bandwidth,
// and its share of the global scratchpad.
type HW struct {
	PEs      int     // number of processing elements
	BWGBps   float64 // global NoC + DRAM bandwidth share, GB/s
	L2Bytes  int64   // global buffer share, bytes
	L1Bytes  int64   // sub-accelerator local buffer; 0 = min(512 KiB, L2/4)
	ClockGHz float64 // PE clock; 0 defaults to 1 GHz

	// ContextCycles and ContextPJ are charged once per layer executed
	// on this substrate, modeling layer-switch reconfiguration or
	// data-layout adjustment (zero for FDA/HDA sub-accelerators with a
	// shared inner-loop order; nonzero for RDAs that reconfigure per
	// layer).
	ContextCycles int64
	ContextPJ     float64
}

// Clock returns the effective clock in GHz.
func (h HW) Clock() float64 {
	if h.ClockGHz <= 0 {
		return 1.0
	}
	return h.ClockGHz
}

// bytesPerCycle converts the bandwidth share into bytes per PE clock
// cycle (1 GB/s at 1 GHz = 1 byte/cycle).
func (h HW) bytesPerCycle() float64 {
	return h.BWGBps / h.Clock()
}

// L1 returns the effective local-buffer size: each sub-accelerator
// carries its own buffer (Fig. 3c) that serves intra-layer tensor
// re-streaming without touching the partitioned global NoC.
func (h HW) L1() int64 {
	if h.L1Bytes > 0 {
		return h.L1Bytes
	}
	l1 := h.L2Bytes / 4
	if l1 > 2<<20 {
		l1 = 2 << 20
	}
	if l1 < 1024 {
		l1 = 1024
	}
	return l1
}

// Validate reports whether the hardware description is usable.
func (h HW) Validate() error {
	if h.PEs < 1 {
		return fmt.Errorf("maestro: PEs must be >= 1 (got %d)", h.PEs)
	}
	if h.BWGBps <= 0 {
		return fmt.Errorf("maestro: bandwidth must be positive (got %g)", h.BWGBps)
	}
	if h.L2Bytes < 1024 {
		return fmt.Errorf("maestro: L2 share must be >= 1 KiB (got %d)", h.L2Bytes)
	}
	if h.ContextCycles < 0 || h.ContextPJ < 0 {
		return fmt.Errorf("maestro: context penalties must be >= 0")
	}
	return nil
}

// EnergyBreakdown itemizes layer energy by hierarchy level, in pJ.
type EnergyBreakdown struct {
	MAC, RF, NoC, Buffer, DRAM, Context float64
}

// Total returns the summed energy in pJ.
func (b EnergyBreakdown) Total() float64 {
	return b.MAC + b.RF + b.NoC + b.Buffer + b.DRAM + b.Context
}

// Cost is the estimated execution cost of one layer on one
// (sub-)accelerator.
type Cost struct {
	// Mapping is the dataflow mapping the cost was derived from —
	// shared with the mapping cache (a Cost used to embed the whole
	// ~150-byte struct by value, which doubled the interned cost
	// cache's footprint); treat the pointee as immutable.
	Mapping *dataflow.Mapping

	ComputeCycles int64 // PE-array busy cycles
	MemoryCycles  int64 // NoC/DRAM streaming cycles (overlapped)
	FillCycles    int64 // non-overlapped first-tile prologue
	Cycles        int64 // total latency: max(compute, memory) + fill + context

	DRAMBytes   int64 // DRAM <-> global buffer traffic
	GlobalBytes int64 // global buffer <-> sub-accelerator traffic (partitioned NoC)
	ArrayBytes  int64 // local buffer <-> PE array traffic (local interconnect)

	Energy EnergyBreakdown

	// OccupancyBytes is the global-buffer footprint the layer holds
	// while executing (its working set, capped at the substrate's L2
	// share); the scheduler's memory-size constraint sums these across
	// concurrently-running layers.
	OccupancyBytes int64
}

// Seconds converts the latency to seconds at the given clock.
func (c Cost) Seconds(clockGHz float64) float64 {
	if clockGHz <= 0 {
		clockGHz = 1.0
	}
	return float64(c.Cycles) / (clockGHz * 1e9)
}

// EnergyPJ returns total energy in picojoules.
func (c Cost) EnergyPJ() float64 { return c.Energy.Total() }

// EDP returns the energy-delay product in joule-seconds at the given
// clock (the paper's primary efficiency metric).
func (c Cost) EDP(clockGHz float64) float64 {
	return c.EnergyPJ() * 1e-12 * c.Seconds(clockGHz)
}

// Estimate computes the cost of layer l under the given dataflow style
// on substrate hw with energy table et. The layer must be valid.
func Estimate(l *dnn.Layer, style dataflow.Style, hw HW, et energy.Table) Cost {
	m := dataflow.Map(style, l, hw.PEs)
	return estimate(l, &m, hw, et)
}

// EstimateMapping is Estimate for a pre-computed mapping (callers that
// cache mappings per layer shape).
func EstimateMapping(l *dnn.Layer, m dataflow.Mapping, hw HW, et energy.Table) Cost {
	return estimate(l, &m, hw, et)
}

func estimate(l *dnn.Layer, m *dataflow.Mapping, hw HW, et energy.Table) Cost {
	reps := int64(1)
	if l.Repeat > 1 {
		reps = int64(l.Repeat)
	}

	// Tensor footprints in bytes (8-bit words: 1 element = 1 byte).
	inBytes1 := l.InputElems()
	wBytes := l.WeightElems()
	outBytes1 := l.OutputElems()
	inBytes := inBytes1 * reps
	outBytes := outBytes1 * reps

	// --- Global buffer <-> PE array traffic (execution-model steps 2
	// and 4: distribute weight tiles, stream activation tiles). The
	// mapping's stream-fold counts say how many times each tensor
	// element re-enters the array; spatial multicast is already folded
	// into them (a fold that feeds SpatK lanes streams each element
	// once for all of them).
	inArray := inBytes * m.InputStreamFolds
	wArray := wBytes * m.WeightStreamFolds * reps
	outArray := outBytes // outputs leave the array exactly once
	array := inArray + wArray + outArray

	// --- Traffic placement across the hierarchy. A tensor whose
	// re-streamed working set fits the sub-accelerator's local buffer
	// is fetched from the global side once and re-streamed locally;
	// otherwise every re-stream crosses the global NoC. Likewise a
	// tensor that fits the global-buffer share crosses DRAM once;
	// otherwise its global-side streams spill to DRAM. This coupling is
	// what makes weight-stationary dataflows (input re-streamed per
	// output-channel fold) pay dearly on activation-dominated networks
	// whose feature maps exceed the buffers (Fig. 2b), while
	// output-stationary dataflows pay on weight-dominated ones.
	l1res := hw.L1()
	l2res := hw.L2Bytes
	budget := hw.L2Bytes / 2 // streamed-tile budget under double buffering
	if budget < 1 {
		budget = 1
	}
	globalIn := inBytes
	if inBytes1 > l1res {
		globalIn = inArray
	}
	globalW := wBytes
	if wBytes > l1res {
		globalW = wArray
	}
	global := globalIn + globalW + outBytes

	dramIn := inBytes
	if inBytes1 > l2res {
		dramIn = globalIn
	}
	dramW := wBytes
	if wBytes > l2res {
		dramW = globalW
	}
	dram := dramIn + dramW + outBytes

	// --- Latency. The partitioned global NoC carries the global-side
	// streams and the DRAM fills; local re-streaming is served by the
	// sub-accelerator's own interconnect at array rate. Compulsory
	// traffic overlaps with compute under double buffering, but spill
	// re-streams (working sets that overflow the buffers) cannot be
	// prefetched into buffer space that does not exist — they serialize
	// with compute. This is the latency tax weight-stationary dataflows
	// pay on activation-dominated layers.
	bpc := hw.bytesPerCycle()
	compulsory := inBytes + wBytes + outBytes
	spill := global - compulsory
	if spill < 0 {
		spill = 0
	}
	memCycles := int64(float64(max(global, dram)) / bpc)
	spillCycles := int64(float64(spill) / bpc)
	fill := int64(float64(min(inBytes1+wBytes, budget)) / bpc)
	steady := max(m.ComputeCycles, int64(float64(compulsory)/bpc))
	total := steady + spillCycles + fill + hw.ContextCycles

	// --- Energy.
	var e EnergyBreakdown
	macs := l.MACs()
	e.MAC = float64(macs) * et.MAC
	// Each MAC reads its input and weight operands from the PE-local
	// RF (2 events); partial sums cost a read+write per *accumulation
	// step*, and spatial reduction (NVDLA's adder tree across c0,
	// Eyeriss's row set across r0) combines PsumReduce MAC results per
	// step. Output-stationary Shi-diannao accumulates every MAC
	// temporally (PsumReduce = 1).
	psumEvents := 2.0 // read + write per accumulation step
	if m.PsumAccumulator {
		psumEvents = 1.0 // in-place accumulator update
	}
	psumSteps := float64(macs) / float64(m.PsumReduce)
	e.RF = (2*float64(macs) + psumEvents*psumSteps) * et.RF
	// Every word entering or leaving the array traverses the local
	// interconnect; global-side streams and DRAM fills each touch the
	// global buffer.
	e.NoC = float64(array) * et.NoC
	e.Buffer = float64(global+dram) * et.Buffer
	e.DRAM = float64(dram) * et.DRAM
	e.Context = hw.ContextPJ

	// --- Scheduler-visible occupancy: the slice of the shared global
	// buffer a running layer holds. Tensors stream through in tiles
	// (execution-model steps 2-6), so a layer pins at most a local-
	// buffer-scale window of double-buffered tiles — not its full
	// working set — in the global buffer at any instant.
	occ := inBytes1 + outBytes1 + min(wBytes, budget)
	if l1 := hw.L1(); occ > l1 {
		occ = l1
	}

	return Cost{
		Mapping:        m,
		ComputeCycles:  m.ComputeCycles,
		MemoryCycles:   memCycles,
		FillCycles:     fill,
		Cycles:         total,
		DRAMBytes:      dram,
		GlobalBytes:    global,
		ArrayBytes:     array,
		Energy:         e,
		OccupancyBytes: occ,
	}
}
