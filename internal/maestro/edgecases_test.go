package maestro

import (
	"sync"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/dnn"
)

// TestTinyAndDegenerateLayers: 1x1x1 shapes, single-PE arrays and
// minimum buffers must all produce positive, consistent costs.
func TestTinyAndDegenerateLayers(t *testing.T) {
	layers := []dnn.Layer{
		{Op: dnn.FC, K: 1, C: 1, Y: 1, X: 1, R: 1, S: 1, Stride: 1},
		{Op: dnn.PWConv, K: 1, C: 1, Y: 1, X: 1, R: 1, S: 1, Stride: 1},
		{Op: dnn.Conv2D, K: 1, C: 1, Y: 3, X: 3, R: 3, S: 3, Stride: 1},
		{Op: dnn.DWConv, K: 1, C: 1, Y: 3, X: 3, R: 3, S: 3, Stride: 1},
	}
	hws := []HW{
		{PEs: 1, BWGBps: 0.5, L2Bytes: 1024},
		{PEs: 2, BWGBps: 1, L2Bytes: 2048},
		{PEs: 16384, BWGBps: 256, L2Bytes: 16 << 20},
	}
	for _, l := range layers {
		if err := l.Validate(); err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		for _, hw := range hws {
			for _, s := range dataflow.AllStyles() {
				c := Estimate(&l, s, hw, et())
				if c.Cycles < 1 {
					t.Errorf("%v on %v @%dPE: zero-cycle cost", s, l, hw.PEs)
				}
				if c.EnergyPJ() <= 0 {
					t.Errorf("%v on %v: zero energy", s, l)
				}
				if c.OccupancyBytes < 1 || c.OccupancyBytes > hw.L2Bytes {
					t.Errorf("%v on %v: occupancy %d out of range", s, l, c.OccupancyBytes)
				}
			}
		}
	}
}

// TestNoOverflowOnHugeLayers: GNMT-scale repeats and the largest
// workload layers must not overflow int64 cycle or byte accounting.
func TestNoOverflowOnHugeLayers(t *testing.T) {
	huge := dnn.Layer{Op: dnn.FC, K: 32000, C: 4096, Y: 1, X: 1, R: 1, S: 1, Stride: 1, Repeat: 1000}
	hw := HW{PEs: 64, BWGBps: 1, L2Bytes: 1 << 20}
	c := Estimate(&huge, dataflow.ShiDiannao, hw, et())
	if c.Cycles <= 0 || c.DRAMBytes <= 0 || c.ArrayBytes <= 0 {
		t.Errorf("overflow suspected: %+v", c)
	}
	// 32000*4096*1000 = 1.31e11 MACs on one PE.
	if c.ComputeCycles < 1e11 {
		t.Errorf("compute cycles %d implausibly small", c.ComputeCycles)
	}
}

// TestCacheConcurrentAccess hammers one cache from many goroutines;
// run under -race this validates the locking discipline the parallel
// DSE relies on.
func TestCacheConcurrentAccess(t *testing.T) {
	cache := NewCache(et())
	m := dnn.MustByName("mobilenetv1")
	hws := []HW{
		{PEs: 256, BWGBps: 16, L2Bytes: 4 << 20},
		{PEs: 512, BWGBps: 16, L2Bytes: 4 << 20},
		{PEs: 1024, BWGBps: 16, L2Bytes: 4 << 20},
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l := &m.Layers[(seed+i)%len(m.Layers)]
				hw := hws[(seed+i)%len(hws)]
				style := dataflow.AllStyles()[(seed+i)%3]
				if c := cache.Estimate(l, style, hw); c.Cycles <= 0 {
					t.Errorf("bad concurrent estimate")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Every distinct (shape, style, hw) key estimated once.
	if cache.Len() == 0 || cache.Len() > m.NumLayers()*3*len(hws) {
		t.Errorf("cache size %d out of expected range", cache.Len())
	}
}

// TestCostConsistentWithCacheBypass: the cache must return bitwise the
// same cost as a direct estimate.
func TestCostConsistentWithCacheBypass(t *testing.T) {
	cache := NewCache(et())
	l := dnn.Layer{Op: dnn.Conv2D, K: 96, C: 48, Y: 30, X: 30, R: 3, S: 3, Stride: 1, Pad: 1}
	hw := HW{PEs: 896, BWGBps: 12, L2Bytes: 4 << 20}
	for _, s := range dataflow.AllStyles() {
		direct := Estimate(&l, s, hw, et())
		cached := cache.Estimate(&l, s, hw)
		// The mapping is interned by the cache but freshly built by the
		// direct path: compare it by value, everything else bitwise.
		if *direct.Mapping != *cached.Mapping {
			t.Errorf("%v: cached mapping differs from direct", s)
		}
		direct.Mapping, cached.Mapping = nil, nil
		if direct != cached {
			t.Errorf("%v: cached cost differs from direct", s)
		}
	}
}

// TestL1DefaultRule pins the local-buffer sizing rule the calibration
// depends on (Fig. 2 relies on 1 MiB at a 4 MiB global buffer).
func TestL1DefaultRule(t *testing.T) {
	cases := []struct {
		l2   int64
		want int64
	}{
		{4 << 20, 1 << 20},
		{8 << 20, 2 << 20},
		{16 << 20, 2 << 20}, // capped
		{2 << 10, 1 << 10},  // floored
	}
	for _, c := range cases {
		hw := HW{PEs: 1, BWGBps: 1, L2Bytes: c.l2}
		if got := hw.L1(); got != c.want {
			t.Errorf("L1(L2=%d) = %d, want %d", c.l2, got, c.want)
		}
	}
	explicit := HW{PEs: 1, BWGBps: 1, L2Bytes: 4 << 20, L1Bytes: 3 << 20}
	if explicit.L1() != 3<<20 {
		t.Error("explicit L1 not honored")
	}
}
