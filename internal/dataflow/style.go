// Package dataflow models DNN accelerator dataflows — the loop
// ordering and spatial unrolling choices of §II-B — and constructs
// concrete mappings (dataflow + tile/fold sizes) of a layer onto a PE
// array.
//
// Three fixed dataflow styles from the paper are provided:
//
//   - NVDLA style: weight-stationary; parallelizes across input and
//     output channels (pfor k0, pfor c0 in Fig. 4a) with a spatial
//     adder-tree reduction across input channels.
//   - Shi-diannao style: output-stationary; parallelizes across output
//     activation rows and columns (pfor y0, pfor x0 in Fig. 4b) with
//     temporal partial-sum accumulation inside each PE.
//   - Eyeriss style: row-stationary; parallelizes filter rows × output
//     rows, replicating PE sets across filters/channels to fill the
//     array.
//
// All three share the same inner-loop order in our mappings, matching
// the paper's choice that eliminates data-layout conversion between
// sub-accelerators (§IV-A).
package dataflow

import "fmt"

// Style identifies a fixed dataflow style.
type Style int

const (
	// NVDLA is the weight-stationary, channel-parallel style of the
	// NVIDIA Deep Learning Accelerator.
	NVDLA Style = iota
	// ShiDiannao is the output-stationary, activation-parallel style of
	// Du et al.'s ShiDianNao.
	ShiDiannao
	// Eyeriss is the row-stationary style of Chen et al.'s Eyeriss.
	Eyeriss
	numStyles = iota
)

var styleNames = [...]string{"NVDLA", "Shi-diannao", "Eyeriss"}

// String returns the style's name as used in the paper's figures.
func (s Style) String() string {
	if s < 0 || int(s) >= len(styleNames) {
		return fmt.Sprintf("Style(%d)", int(s))
	}
	return styleNames[s]
}

// Valid reports whether s is a defined style.
func (s Style) Valid() bool { return s >= 0 && s < numStyles }

// AllStyles returns the dataflow styles evaluated in the paper, in a
// stable order.
func AllStyles() []Style { return []Style{NVDLA, ShiDiannao, Eyeriss} }

// ParseStyle maps common spellings to a Style.
func ParseStyle(name string) (Style, error) {
	switch normalize(name) {
	case "nvdla":
		return NVDLA, nil
	case "shidiannao", "shi", "shidianao":
		return ShiDiannao, nil
	case "eyeriss":
		return Eyeriss, nil
	}
	return 0, fmt.Errorf("dataflow: unknown style %q (want nvdla, shi-diannao or eyeriss)", name)
}

func normalize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out = append(out, c)
		}
	}
	return string(out)
}
