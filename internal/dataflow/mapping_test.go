package dataflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dnn"
)

// Figure 5's three example layers on a 16-PE toy accelerator. The
// paper reports exact mapping utilizations for NVDLA- and
// Shi-diannao-style dataflows; our mappers must reproduce all six.
func fig5Layers() []dnn.Layer {
	return []dnn.Layer{
		// Layer 1: CONV2D with early-classification aspect ratio
		// (C=3, K=2, 6×6 input, 3×3 filter → 4×4 output).
		{Name: "fig5-l1", Op: dnn.Conv2D, K: 2, C: 3, Y: 6, X: 6, R: 3, S: 3, Stride: 1},
		// Layer 2: CONV2D with late-classification aspect ratio
		// (C=16, K=3, 4×4 input → 2×2 output).
		{Name: "fig5-l2", Op: dnn.Conv2D, K: 3, C: 16, Y: 4, X: 4, R: 3, S: 3, Stride: 1},
		// Layer 3: depth-wise CONV2D, same size as Layer 1
		// (K=C=2, 6×6 input → 4×4 output).
		{Name: "fig5-l3", Op: dnn.DWConv, K: 2, C: 2, Y: 6, X: 6, R: 3, S: 3, Stride: 1},
	}
}

func TestFigure5Utilizations(t *testing.T) {
	const pes = 16
	layers := fig5Layers()
	for i := range layers {
		if err := layers[i].Validate(); err != nil {
			t.Fatalf("fig5 layer %d: %v", i, err)
		}
	}
	want := []struct {
		nvdla, shi float64
	}{
		{0.375, 1.0}, // Layer 1: NVDLA 37.5%, Shi-diannao 100%
		{1.0, 0.25},  // Layer 2: NVDLA 100%,  Shi-diannao 25%
		{0.125, 1.0}, // Layer 3: NVDLA 12.5%, Shi-diannao 100%
	}
	for i := range layers {
		n := Map(NVDLA, &layers[i], pes)
		s := Map(ShiDiannao, &layers[i], pes)
		if n.Utilization != want[i].nvdla {
			t.Errorf("layer %d NVDLA utilization = %.3f, want %.3f (Fig. 5)", i+1, n.Utilization, want[i].nvdla)
		}
		if s.Utilization != want[i].shi {
			t.Errorf("layer %d Shi-diannao utilization = %.3f, want %.3f (Fig. 5)", i+1, s.Utilization, want[i].shi)
		}
	}
}

func TestNVDLALaneWidth(t *testing.T) {
	// Atomic-C is 64 at the 1K-PE NVDLA-large design point, shrinking
	// as a power of two for toy arrays and deepening proportionally for
	// larger arrays (the channel-parallelism scaling axis of §V-B).
	cases := map[int]int{1: 1, 2: 1, 4: 2, 16: 8, 64: 32, 128: 64, 256: 64, 1024: 64, 4096: 256, 16384: 1024}
	for pes, want := range cases {
		if got := nvdlaLaneWidth(pes); got != want {
			t.Errorf("nvdlaLaneWidth(%d) = %d, want %d", pes, got, want)
		}
	}
}

func TestBalancedFactor(t *testing.T) {
	cases := []struct{ p, h, w int }{
		{256, 16, 16}, {16, 4, 4}, {896, 28, 32}, {1, 1, 1}, {2, 1, 2},
		{1024, 32, 32}, {6656, 64, 104}, {0, 1, 1},
	}
	for _, c := range cases {
		h, w := balancedFactor(c.p)
		if h != c.h || w != c.w {
			t.Errorf("balancedFactor(%d) = (%d,%d), want (%d,%d)", c.p, h, w, c.h, c.w)
		}
		if c.p > 0 && h*w != c.p {
			t.Errorf("balancedFactor(%d): %d*%d != %d", c.p, h, w, c.p)
		}
	}
}

func TestStyleParsing(t *testing.T) {
	for _, s := range AllStyles() {
		got, err := ParseStyle(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStyle(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStyle("tpu"); err == nil {
		t.Error("ParseStyle should reject unknown styles")
	}
	if Style(42).String() == "" || Style(42).Valid() {
		t.Error("invalid style should stringify and report invalid")
	}
}

// TestFCMappingExtremes checks the dataflow-preference mechanism behind
// the paper's Maelstrom synergy: FC layers park Shi-diannao at a single
// active PE while NVDLA fills the array; large-spatial shallow layers
// do the reverse.
func TestFCMappingExtremes(t *testing.T) {
	fc := dnn.Layer{Op: dnn.FC, K: 4096, C: 4096, Y: 1, X: 1, R: 1, S: 1, Stride: 1}
	shi := Map(ShiDiannao, &fc, 1024)
	if shi.ActivePEs != 1 {
		t.Errorf("Shi-diannao on FC: ActivePEs = %d, want 1", shi.ActivePEs)
	}
	nv := Map(NVDLA, &fc, 1024)
	if nv.ActivePEs != 1024 {
		t.Errorf("NVDLA on FC: ActivePEs = %d, want 1024", nv.ActivePEs)
	}
	if nv.ComputeCycles >= shi.ComputeCycles {
		t.Errorf("NVDLA should be far faster on FC: %d vs %d cycles", nv.ComputeCycles, shi.ComputeCycles)
	}

	big := dnn.Layer{Op: dnn.Conv2D, K: 64, C: 1, Y: 580, X: 580, R: 3, S: 3, Stride: 1}
	shiBig := Map(ShiDiannao, &big, 1024)
	nvBig := Map(NVDLA, &big, 1024)
	if shiBig.Utilization < 0.97 {
		t.Errorf("Shi-diannao on UNet conv1: util = %.3f, want ~1.0", shiBig.Utilization)
	}
	if nvBig.Utilization >= shiBig.Utilization {
		t.Errorf("NVDLA should under-utilize on shallow-channel conv: %.3f vs %.3f",
			nvBig.Utilization, shiBig.Utilization)
	}
	if shiBig.ComputeCycles >= nvBig.ComputeCycles {
		t.Errorf("Shi-diannao should be faster on UNet conv1: %d vs %d", shiBig.ComputeCycles, nvBig.ComputeCycles)
	}
}

// TestDWConvPreference: depth-wise layers must prefer Shi-diannao over
// NVDLA at realistic sizes (MobileNet dw layers), per §V-B.
func TestDWConvPreference(t *testing.T) {
	dw := dnn.Layer{Op: dnn.DWConv, K: 32, C: 32, Y: 112, X: 112, R: 3, S: 3, Stride: 1, Pad: 1}
	nv := Map(NVDLA, &dw, 1024)
	shi := Map(ShiDiannao, &dw, 1024)
	if nv.ComputeCycles <= shi.ComputeCycles {
		t.Errorf("NVDLA should be slower on dwconv: %d vs %d", nv.ComputeCycles, shi.ComputeCycles)
	}
}

func genMappingLayer(r *rand.Rand) dnn.Layer {
	ops := []dnn.Op{dnn.Conv2D, dnn.PWConv, dnn.DWConv, dnn.FC, dnn.UpConv}
	op := ops[r.Intn(len(ops))]
	l := dnn.Layer{Op: op, Stride: 1}
	switch op {
	case dnn.FC:
		l.K, l.C, l.Y, l.X, l.R, l.S = 1+r.Intn(4096), 1+r.Intn(4096), 1, 1, 1, 1
	case dnn.PWConv:
		l.K, l.C, l.R, l.S = 1+r.Intn(512), 1+r.Intn(512), 1, 1
		l.Y, l.X = 1+r.Intn(256), 1+r.Intn(256)
	case dnn.DWConv:
		ch := 1 + r.Intn(512)
		l.K, l.C, l.R, l.S, l.Pad = ch, ch, 3, 3, 1
		l.Y, l.X = 3+r.Intn(256), 3+r.Intn(256)
	case dnn.UpConv:
		l.K, l.C, l.R, l.S, l.Stride = 1+r.Intn(256), 1+r.Intn(256), 2, 2, 2
		l.Y, l.X = 1+r.Intn(64), 1+r.Intn(64)
	default:
		l.K, l.C, l.R, l.S, l.Pad = 1+r.Intn(256), 1+r.Intn(256), 3, 3, 1
		l.Y, l.X = 3+r.Intn(256), 3+r.Intn(256)
		if r.Intn(2) == 0 {
			l.Stride = 2
		}
	}
	if r.Intn(8) == 0 {
		l.Repeat = 1 + r.Intn(30)
	}
	return l
}

// TestMappingInvariants property-checks every style over random layers
// and array sizes: spatial extents fit the array, utilization is in
// (0,1], cycle counts cover the MAC workload, and all reuse factors
// are at least 1.
func TestMappingInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	pesChoices := []int{1, 16, 64, 128, 256, 896, 1024, 4096, 16384}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := genMappingLayer(r)
		if err := l.Validate(); err != nil {
			t.Logf("invalid generated layer: %v", err)
			return false
		}
		pes := pesChoices[r.Intn(len(pesChoices))]
		for _, st := range AllStyles() {
			m := Map(st, &l, pes)
			if m.ActivePEs < 1 || m.ActivePEs > pes {
				t.Logf("%v on %v: ActivePEs %d out of range", st, l, m.ActivePEs)
				return false
			}
			if m.Utilization <= 0 || m.Utilization > 1 {
				t.Logf("%v: utilization %f", st, m.Utilization)
				return false
			}
			// The array must perform at least the layer's MACs:
			// cycles * activePEs >= MACs.
			if m.ComputeCycles*int64(m.ActivePEs) < l.MACs() {
				t.Logf("%v on %v: cycles %d * active %d < MACs %d",
					st, l.String(), m.ComputeCycles, m.ActivePEs, l.MACs())
				return false
			}
			// And not overshoot by more than the worst-case ceil
			// rounding (each of the five folded dims can round up by
			// at most 2x, but folds are small; allow 16x slack).
			if m.ComputeCycles > 16*(l.MACs()/int64(m.ActivePEs)+int64(l.MACs())) {
				return false
			}
			if m.InputMulticast < 1 || m.WeightMulticast < 1 {
				return false
			}
			if m.InputStreamFolds < 1 || m.WeightStreamFolds < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestRepeatScalesCycles: an RNN-style repeated layer must scale
// compute cycles linearly without changing utilization.
func TestRepeatScalesCycles(t *testing.T) {
	base := dnn.Layer{Op: dnn.FC, K: 4096, C: 2048, Y: 1, X: 1, R: 1, S: 1, Stride: 1}
	rep := base
	rep.Repeat = 25
	for _, st := range AllStyles() {
		m1 := Map(st, &base, 1024)
		m25 := Map(st, &rep, 1024)
		if m25.ComputeCycles != 25*m1.ComputeCycles {
			t.Errorf("%v: repeat cycles %d, want %d", st, m25.ComputeCycles, 25*m1.ComputeCycles)
		}
		if m25.Utilization != m1.Utilization {
			t.Errorf("%v: repeat changed utilization", st)
		}
	}
}

func TestMappingString(t *testing.T) {
	l := fig5Layers()[0]
	m := Map(NVDLA, &l, 16)
	if m.String() == "" {
		t.Error("String should render")
	}
}
