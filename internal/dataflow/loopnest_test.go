package dataflow

import (
	"strings"
	"testing"

	"repro/internal/dnn"
)

func TestLoopNestRendersAllStyles(t *testing.T) {
	l := dnn.Layer{Name: "probe", Op: dnn.Conv2D, K: 64, C: 64, Y: 28, X: 28, R: 3, S: 3, Stride: 1, Pad: 1}
	for _, style := range AllStyles() {
		m := Map(style, &l, 256)
		nest := m.LoopNest(&l)
		if !strings.Contains(nest, "pfor") {
			t.Errorf("%v: no spatial loop rendered:\n%s", style, nest)
		}
		if !strings.Contains(nest, "O[k][y][x] += I[c][y+r][x+s] * W[k][c][r][s];") {
			t.Errorf("%v: body missing", style)
		}
		if !strings.Contains(nest, style.String()) {
			t.Errorf("%v: header missing style name", style)
		}
	}
}

func TestLoopNestRepeat(t *testing.T) {
	l := dnn.Layer{Name: "rnn", Op: dnn.FC, K: 4096, C: 2048, Y: 1, X: 1, R: 1, S: 1, Stride: 1, Repeat: 25}
	m := Map(NVDLA, &l, 1024)
	nest := m.LoopNest(&l)
	if !strings.Contains(nest, "t < 25") {
		t.Errorf("repeat loop missing:\n%s", nest)
	}
}

// TestLoopNestBoundsConsistent: the product of every rendered `for`
// and `pfor` bound must equal ComputeCycles × ActivePEs (the nest is
// exactly what the model charges).
func TestLoopNestBoundsConsistent(t *testing.T) {
	l := dnn.Layer{Name: "c", Op: dnn.Conv2D, K: 32, C: 16, Y: 14, X: 14, R: 3, S: 3, Stride: 1, Pad: 1}
	for _, style := range AllStyles() {
		m := Map(style, &l, 64)
		_, es := effTaps(&l)
		slots := int64(m.FoldK) * int64(m.FoldC) * int64(m.FoldY) * int64(m.FoldX) * int64(m.FoldR) * int64(es) *
			int64(m.SpatK) * int64(m.SpatC) * int64(m.SpatY) * int64(m.SpatX) * int64(m.SpatR)
		if slots != m.ComputeCycles*int64(m.ActivePEs) {
			t.Errorf("%v: nest slots %d != cycles*active %d", style, slots, m.ComputeCycles*int64(m.ActivePEs))
		}
	}
}
