package dataflow

import (
	"fmt"
	"strings"

	"repro/internal/dnn"
)

// LoopNest renders a mapping in the paper's Fig. 4 loop-nest notation:
// temporal loops as `for`, spatially-unrolled loops as `pfor`, with
// the mapping's concrete bounds filled in. Useful for documentation,
// debugging and teaching — the rendered nest is exactly what the cost
// model accounts for.
func (m Mapping) LoopNest(l *dnn.Layer) string {
	var b strings.Builder
	indent := 0
	line := func(format string, args ...any) {
		b.WriteString(strings.Repeat(" ", indent))
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
		indent++
	}

	fmt.Fprintf(&b, "// %s mapping of %s on %d PEs (util %.1f%%)\n",
		m.Style, l.Name, m.PEs, 100*m.Utilization)
	if l.Repeat > 1 {
		line("for (t = 0; t < %d; t++)        // sequential invocations", l.Repeat)
	}

	switch m.Style {
	case NVDLA:
		line("for (k1 = 0; k1 < %d; k1++)      // output-channel folds", m.FoldK)
		line("pfor (k0 = 0; k0 < %d; k0++)     // output-channel lanes", m.SpatK)
		line("for (c1 = 0; c1 < %d; c1++)      // input-channel folds", m.FoldC)
		line("for (y = 0; y < %d; y++)", m.FoldY)
		line("for (x = 0; x < %d; x++)", m.FoldX)
		line("pfor (c0 = 0; c0 < %d; c0++)     // adder-tree lane (spatial reduce)", m.SpatC)
		line("for (r = 0; r < %d; r++)", m.FoldR)
		line("for (s = 0; s < %d; s++)", effS(l))
	case ShiDiannao:
		line("for (k = 0; k < %d; k++)         // output channels (psum-blocked x%d)", m.FoldK*spatOr1(m.SpatK), shiAccDepth)
		line("for (c = 0; c < %d; c++)", m.FoldC)
		line("for (y1 = 0; y1 < %d; y1++)      // output-tile rows", m.FoldY)
		line("for (x1 = 0; x1 < %d; x1++)      // output-tile cols", m.FoldX)
		line("pfor (y0 = 0; y0 < %d; y0++)", m.SpatY)
		line("pfor (x0 = 0; x0 < %d; x0++)", m.SpatX)
		line("for (r = 0; r < %d; r++)", m.FoldR)
		line("for (s = 0; s < %d; s++)", effS(l))
	case Eyeriss:
		line("for (k1 = 0; k1 < %d; k1++)      // filter replication folds", m.FoldK)
		line("pfor (k0 = 0; k0 < %d; k0++)", m.SpatK)
		line("for (c1 = 0; c1 < %d; c1++)", m.FoldC)
		line("pfor (c0 = 0; c0 < %d; c0++)", m.SpatC)
		line("for (y1 = 0; y1 < %d; y1++)      // output-row folds", m.FoldY)
		line("pfor (y0 = 0; y0 < %d; y0++)     // row-stationary PE set", m.SpatY)
		line("pfor (r0 = 0; r0 < %d; r0++)     // filter rows (spatial reduce)", m.SpatR)
		line("for (x = 0; x < %d; x++)", m.FoldX)
		line("for (s = 0; s < %d; s++)", effS(l))
	}
	b.WriteString(strings.Repeat(" ", indent))
	b.WriteString("O[k][y][x] += I[c][y+r][x+s] * W[k][c][r][s];\n")
	return b.String()
}

func effS(l *dnn.Layer) int {
	_, es := effTaps(l)
	return es
}

func spatOr1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}
