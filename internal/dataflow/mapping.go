package dataflow

import (
	"fmt"
	"math"

	"repro/internal/dnn"
)

// Mapping is a concrete instance of a dataflow for one layer on one PE
// array (§II-B: "by providing valid loop bounds to the representation,
// we obtain mapping"). It records the spatial unrolling extents, the
// temporal fold counts of each dimension, and the reuse factors the
// cost model consumes.
type Mapping struct {
	Style Style
	PEs   int // total PEs in the (sub-)accelerator

	// Spatial extents: how many instances of each dimension are
	// unrolled across PEs (the pfor bounds). Extents of dimensions a
	// style does not unroll are 1.
	SpatK, SpatC, SpatY, SpatX, SpatR int

	// Temporal folds: ceil(bound/extent) iterations needed to cover
	// each dimension that exceeds its spatial extent or is walked
	// temporally.
	FoldK, FoldC, FoldY, FoldX, FoldR int

	// ActivePEs is the number of PEs the mapping occupies
	// (= product of spatial extents), and Utilization the mapping
	// utilization of Fig. 5: ActivePEs / PEs.
	ActivePEs   int
	Utilization float64

	// ComputeCycles is the number of cycles the PE array needs for the
	// layer's MACs under this mapping at one MAC/PE/cycle, including
	// dimension-fold rounding and the layer's Repeat factor.
	ComputeCycles int64

	// InputMulticast and WeightMulticast are the spatial reuse factors
	// of §III-C: how many PEs one delivered input/weight element serves
	// simultaneously. They divide NoC and buffer read traffic.
	InputMulticast  float64
	WeightMulticast float64

	// InputStreamFolds and WeightStreamFolds count how many times each
	// tensor is re-streamed from the global buffer into the PE array,
	// a consequence of the style's loop order (e.g. NVDLA re-streams
	// input activations once per output-channel fold; Shi-diannao
	// re-broadcasts filter weights once per spatial tile). When a
	// tensor's working set exceeds the global-buffer share, these
	// re-streams spill to DRAM — the mechanism behind weight-stationary
	// dataflows' poor fit for activation-dominated networks like UNet.
	InputStreamFolds  int64
	WeightStreamFolds int64

	// PsumReduce is the spatial partial-sum reduction width: how many
	// MAC results are combined spatially (adder tree / inter-PE
	// accumulation) before touching a register file. NVDLA reduces
	// across its SpatC lanes; Eyeriss across its SpatR row set;
	// output-stationary Shi-diannao accumulates purely temporally
	// (PsumReduce = 1). Divides psum RF traffic.
	PsumReduce int

	// PsumAccumulator marks output-stationary mappings whose partial
	// sums live in a dedicated in-place accumulator register: one RF
	// event per update instead of a read+write pair. This is the
	// energy essence of Shi-diannao's output stationarity.
	PsumAccumulator bool
}

// Per-style accumulator depth: how many output channels' partial sums
// one PE can hold resident (its psum register file), which blocks the
// K loop and divides input re-streaming. ShiDianNao's PEs were designed
// around exactly this output-stationarity; Eyeriss PEs hold a smaller
// set; NVDLA holds weights instead (no psum K-blocking).
const (
	shiAccDepth     = 64
	eyerissAccDepth = 16

	// Eyeriss's row-stationary PE sets replicate across filters and
	// channels to fill the array, but the replication is bounded by
	// the tagged multicast NoC and per-PE RF capacity — it does not
	// scale to arbitrarily wide arrays. These caps only bind at
	// mobile/cloud scale; at Fig. 2/5 scale the array-size quotient is
	// smaller than either cap.
	eyerissMaxKRepl = 16
	eyerissMaxCRepl = 2
)

// nvdlaMaxKLanes caps the number of output-channel lanes: each lane
// needs its own accumulator path and shares the input broadcast, and
// the fan-out does not scale arbitrarily (NVDLA's Atomic-K is 16-32).
const nvdlaMaxKLanes = 32

// nvdlaLaneWidth returns the width of NVDLA's input-channel MAC vector
// lanes for a given array size: 64 lanes at the 1K-PE NVDLA-large
// design point (Atomic-C), scaling down as a power of two for tiny
// arrays so at least two output-channel lanes exist, and scaling *up*
// proportionally for larger arrays (bigger arrays deepen the
// spatial-reduction vector — the channel parallelism that §V-B
// identifies as NVDLA's scaling axis).
func nvdlaLaneWidth(pes int) int {
	if pes > 1024 {
		w := 64
		for w < pes/16 {
			w <<= 1
		}
		return w
	}
	w := 64
	for w > 1 && w > pes/2 {
		w >>= 1
	}
	if w < 1 {
		w = 1
	}
	return w
}

// balancedFactor returns (h, w) with h*w == p and h the largest divisor
// of p not exceeding sqrt(p): the most-square PE grid for a
// Shi-diannao-style 2D array.
func balancedFactor(p int) (h, w int) {
	if p < 1 {
		return 1, 1
	}
	h = int(math.Sqrt(float64(p)))
	for h > 1 && p%h != 0 {
		h--
	}
	return h, p / h
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Map constructs the mapping of layer l onto a PE array of size pes
// under the given dataflow style. It panics only on programmer error
// (invalid style); invalid layers should be rejected by
// dnn.Layer.Validate beforehand.
func Map(style Style, l *dnn.Layer, pes int) Mapping {
	if pes < 1 {
		pes = 1
	}
	switch style {
	case NVDLA:
		return mapNVDLA(l, pes)
	case ShiDiannao:
		return mapShiDiannao(l, pes)
	case Eyeriss:
		return mapEyeriss(l, pes)
	}
	panic(fmt.Sprintf("dataflow: Map called with invalid style %d", style))
}

func repeat(l *dnn.Layer) int64 {
	if l.Repeat <= 1 {
		return 1
	}
	return int64(l.Repeat)
}

// effTaps returns the effective per-output-pixel filter extent. For
// up-scale convolution the R×S kernel is distributed over stride²
// output phases, so each output pixel receives only ceil(R/stride) ×
// ceil(S/stride) taps; walking the (larger) output domain with the
// effective taps keeps cycle counts consistent with dnn.Layer.MACs.
func effTaps(l *dnn.Layer) (er, es int) {
	if l.Op == dnn.UpConv {
		return ceilDiv(l.R, l.Stride), ceilDiv(l.S, l.Stride)
	}
	return l.R, l.S
}

// mapNVDLA: weight-stationary, spatial dims (K, C). The array is
// organized as (pes/lane) output-channel lanes, each with `lane`
// input-channel MAC units feeding an adder tree. Depth-wise layers
// cannot reduce across input channels, so they occupy one MAC unit per
// lane — the under-utilization of Fig. 5's Layer 3.
func mapNVDLA(l *dnn.Layer, pes int) Mapping {
	lane := nvdlaLaneWidth(pes)
	lanes := pes / lane
	if lanes < 1 {
		lanes = 1
	}

	var c0, k0 int
	if l.Op == dnn.DWConv {
		// Depth-wise layers cannot share an input vector across a lane
		// (each output channel consumes a distinct input channel), so
		// only one MAC per lane is fed — Fig. 5 Layer 3's 12.5%.
		c0 = 1
		k0 = minInt(minInt(l.K, lanes), nvdlaMaxKLanes)
	} else {
		// Channel post-extension: when C is shallower than a lane, the
		// freed MACs serve additional output channels (k0 grows toward
		// P/c0, bounded by the lane fan-out), as in NVDLA's
		// shallow-input operation mode.
		c0 = minInt(l.C, lane)
		k0 = minInt(minInt(l.K, pes/c0), nvdlaMaxKLanes)
	}

	m := Mapping{
		Style: NVDLA, PEs: pes,
		SpatK: k0, SpatC: c0, SpatY: 1, SpatX: 1, SpatR: 1,
	}
	m.FoldK = ceilDiv(l.K, k0)
	if l.Op == dnn.DWConv {
		m.FoldC = 1
	} else {
		m.FoldC = ceilDiv(l.C, c0)
	}
	er, _ := effTaps(l)
	m.FoldY = l.OutY()
	m.FoldX = l.OutX()
	m.FoldR = er
	m.finish(l)

	// Inputs are multicast to all output-channel lanes; weights are
	// private per PE. Inputs are re-streamed once per output-channel
	// fold (the weight-stationary loop order offers no psum blocking);
	// weights stay resident across the spatial walk. Partial sums
	// reduce spatially across the c0 adder tree.
	m.InputMulticast = float64(k0)
	m.WeightMulticast = 1
	m.InputStreamFolds = int64(m.FoldK)
	m.WeightStreamFolds = 1
	m.PsumReduce = c0
	return m
}

// shiTile picks the output-tile factorization (y0, x0) that minimizes
// the spatial walk's slot count (tiles × tile area), i.e. the edge
// rounding waste, over a small candidate set. ShiDianNao's mapper
// configures the output tile per layer; the dataflow itself — output
// stationarity over a 2D spatial unrolling — is fixed.
func shiTile(outY, outX, pes int) (y0, x0 int) {
	bestTiles := int64(1) << 62
	consider := func(cy int) {
		if cy < 1 {
			cy = 1
		}
		if cy > outY {
			cy = outY
		}
		if cy > pes {
			cy = pes
		}
		cx := minInt(outX, pes/cy)
		if cx < 1 {
			cx = 1
		}
		tiles := int64(ceilDiv(outY, cy)) * int64(ceilDiv(outX, cx))
		if tiles < bestTiles || (tiles == bestTiles && cy*cx > y0*x0) {
			bestTiles, y0, x0 = tiles, cy, cx
		}
	}
	// Candidates: whole rows, per-fold even splits, and the square grid.
	consider(outY)
	for folds := 2; folds <= 64 && folds <= outY; folds++ {
		consider(ceilDiv(outY, folds))
	}
	h, _ := balancedFactor(pes)
	consider(h)
	return y0, x0
}

// mapShiDiannao: output-stationary, spatial dims (Y', X') on a 2D PE
// grid with a per-layer tile factorization. Partial sums accumulate
// temporally inside each PE; inputs propagate between neighbours
// (convolutional reuse) and each weight is broadcast to the grid.
func mapShiDiannao(l *dnn.Layer, pes int) Mapping {
	y0, x0 := shiTile(l.OutY(), l.OutX(), pes)

	m := Mapping{
		Style: ShiDiannao, PEs: pes,
		SpatK: 1, SpatC: 1, SpatY: y0, SpatX: x0, SpatR: 1,
	}
	m.FoldK = l.K
	if l.Op == dnn.DWConv {
		m.FoldC = 1
	} else {
		m.FoldC = l.C
	}
	er, es := effTaps(l)
	m.FoldY = ceilDiv(l.OutY(), y0)
	m.FoldX = ceilDiv(l.OutX(), x0)
	m.FoldR = er
	m.finish(l)

	// Neighbour forwarding lets one input delivery serve up to R*S
	// overlapping windows; one weight broadcast feeds every active PE.
	// Each PE holds partial sums for up to shiAccDepth output channels
	// (the output-stationary design point), so inputs re-stream only
	// once per K-block; weights are re-broadcast once per spatial tile.
	// Partial sums accumulate temporally (no spatial reduction).
	m.InputMulticast = math.Min(float64(er*es), float64(m.ActivePEs))
	m.WeightMulticast = float64(m.ActivePEs)
	m.InputStreamFolds = int64(ceilDiv(l.K, shiAccDepth))
	m.WeightStreamFolds = int64(m.FoldY) * int64(m.FoldX)
	m.PsumReduce = 1
	m.PsumAccumulator = true
	return m
}

// mapEyeriss: row-stationary, spatial dims (R, Y') forming PE sets
// that each compute a 1D row convolution, replicated across output
// then input channels until the array fills.
func mapEyeriss(l *dnn.Layer, pes int) Mapping {
	er, _ := effTaps(l)
	r0 := minInt(er, pes)
	y0 := minInt(l.OutY(), pes/r0)
	if y0 < 1 {
		y0 = 1
	}
	k0 := minInt(minInt(l.K, pes/(r0*y0)), eyerissMaxKRepl)
	if k0 < 1 {
		k0 = 1
	}
	var c0 int
	if l.Op == dnn.DWConv {
		c0 = 1
	} else {
		c0 = minInt(minInt(l.C, pes/(r0*y0*k0)), eyerissMaxCRepl)
		if c0 < 1 {
			c0 = 1
		}
	}

	m := Mapping{
		Style: Eyeriss, PEs: pes,
		SpatK: k0, SpatC: c0, SpatY: y0, SpatX: 1, SpatR: r0,
	}
	m.FoldK = ceilDiv(l.K, k0)
	if l.Op == dnn.DWConv {
		m.FoldC = 1
	} else {
		m.FoldC = ceilDiv(l.C, c0)
	}
	m.FoldY = ceilDiv(l.OutY(), y0)
	m.FoldX = l.OutX()
	m.FoldR = ceilDiv(er, r0)
	m.finish(l)

	// Inputs reuse diagonally across the (r, y) PE set; weight rows are
	// broadcast across the y dimension. Each PE set keeps a modest
	// block of output-channel psums resident (Eyeriss's psum RF), so
	// inputs re-stream once per K-fold block; weights re-stream per
	// output-row fold. Partial sums reduce spatially across the r0 row
	// set.
	m.InputMulticast = math.Max(1, float64(minInt(r0, y0)))
	m.WeightMulticast = float64(y0)
	m.InputStreamFolds = int64(ceilDiv(m.FoldK, eyerissAccDepth))
	m.WeightStreamFolds = int64(m.FoldY)
	m.PsumReduce = r0
	return m
}

// finish derives ActivePEs, Utilization and ComputeCycles from the
// spatial extents and folds. The per-rep cycle count is the product of
// all fold counts and the style's residual temporal loops (already
// folded into FoldY/FoldX/FoldR), times the filter column loop S for
// styles that walk it temporally.
func (m *Mapping) finish(l *dnn.Layer) {
	m.ActivePEs = m.SpatK * m.SpatC * m.SpatY * m.SpatX * m.SpatR
	if m.ActivePEs > m.PEs {
		// Spatial extents never exceed the array by construction; guard
		// against future mapper bugs.
		panic(fmt.Sprintf("dataflow: mapping overflows array: %d > %d", m.ActivePEs, m.PEs))
	}
	m.Utilization = float64(m.ActivePEs) / float64(m.PEs)

	_, es := effTaps(l)
	cycles := int64(m.FoldK) * int64(m.FoldC) * int64(m.FoldY) * int64(m.FoldX) * int64(m.FoldR) * int64(es)
	m.ComputeCycles = cycles * repeat(l)
}

// String renders the mapping compactly for diagnostics.
func (m Mapping) String() string {
	return fmt.Sprintf("%s[%dPE] spat(K%d C%d Y%d X%d R%d) act=%d util=%.1f%% cyc=%d",
		m.Style, m.PEs, m.SpatK, m.SpatC, m.SpatY, m.SpatX, m.SpatR,
		m.ActivePEs, 100*m.Utilization, m.ComputeCycles)
}
