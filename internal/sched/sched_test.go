package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/energy"
	"repro/internal/maestro"
	"repro/internal/workload"
)

func newCache() *maestro.Cache { return maestro.NewCache(energy.Default28nm()) }

func maelstromEdge(t testing.TB) *accel.HDA {
	t.Helper()
	// Table V's AR/VR edge partition: NVDLA 128 PEs / 4 GB/s,
	// Shi-diannao 896 PEs / 12 GB/s.
	h, err := accel.New("maelstrom", accel.Edge, []accel.Partition{
		{Style: dataflow.NVDLA, PEs: 128, BWGBps: 4},
		{Style: dataflow.ShiDiannao, PEs: 896, BWGBps: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestScheduleSmallWorkloadValid(t *testing.T) {
	h := maelstromEdge(t)
	w := workload.MustNew("small", []workload.Entry{
		{Model: "mobilenetv1", Batches: 2},
		{Model: "brq-handpose", Batches: 1},
	})
	s := MustNew(newCache(), DefaultOptions())
	sch, err := s.Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
	if sch.MakespanCycles <= 0 || sch.EnergyPJ <= 0 {
		t.Error("non-positive schedule metrics")
	}
	if len(sch.Assignments) != w.TotalLayers() {
		t.Errorf("assignments %d != layers %d", len(sch.Assignments), w.TotalLayers())
	}
	if sch.SchedulingTime <= 0 {
		t.Error("scheduling time not recorded")
	}
}

func TestScheduleAllWorkloadsAllOrderings(t *testing.T) {
	h := maelstromEdge(t)
	cache := newCache()
	for _, w := range workload.Evaluated() {
		for _, ord := range []Ordering{BreadthFirst, DepthFirst} {
			opts := DefaultOptions()
			opts.Ordering = ord
			s := MustNew(cache, opts)
			sch, err := s.Schedule(h, w)
			if err != nil {
				t.Fatalf("%s/%v: %v", w.Name, ord, err)
			}
			if err := sch.Validate(); err != nil {
				t.Errorf("%s/%v: %v", w.Name, ord, err)
			}
		}
	}
}

// TestLayerParallelismReducesLatency: the HDA's latency hiding
// (§III-B) — a multi-instance workload on a 2-way HDA must finish
// sooner than the sum of per-layer best latencies run sequentially,
// because independent models overlap.
func TestLayerParallelismReducesLatency(t *testing.T) {
	h := maelstromEdge(t)
	cache := newCache()
	w := workload.MustNew("par", []workload.Entry{{Model: "mobilenetv1", Batches: 4}})
	s := MustNew(cache, DefaultOptions())
	sch, err := s.Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential lower bound: every layer on its own best sub-acc, one
	// at a time.
	var sequential int64
	for _, in := range w.Instances {
		for i := range in.Model.Layers {
			best := int64(1) << 62
			for a := range h.Subs {
				c := cache.Estimate(&in.Model.Layers[i], h.Subs[a].Style, h.Subs[a].HW)
				if c.Cycles < best {
					best = c.Cycles
				}
			}
			sequential += best
		}
	}
	if sch.MakespanCycles >= sequential {
		t.Errorf("no latency hiding: makespan %d >= sequential %d", sch.MakespanCycles, sequential)
	}
}

// TestPreferenceAssignment: with balancing disabled, FC-heavy layers
// land on the NVDLA sub-accelerator and large-spatial layers on the
// Shi-diannao one (§IV-D dataflow-preference-based assignment).
func TestPreferenceAssignment(t *testing.T) {
	h := maelstromEdge(t)
	opts := DefaultOptions()
	opts.LoadBalanceFactor = inf()
	opts.PostProcess = false
	s := MustNew(newCache(), opts)
	w := workload.MustNew("pref", []workload.Entry{
		{Model: "brq-handpose", Batches: 1}, // FC trunk
		{Model: "unet", Batches: 1},         // giant spatial convs
	})
	sch, err := s.Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	fcOnNVDLA, fcTotal := 0, 0
	convOnShi, convTotal := 0, 0
	for _, a := range sch.Assignments {
		in := w.Instances[a.Instance]
		l := &in.Model.Layers[a.Layer]
		if in.Model.Name == "brq-handpose" && l.Op.String() == "FC" {
			fcTotal++
			if h.Subs[a.SubAcc].Style == dataflow.NVDLA {
				fcOnNVDLA++
			}
		}
		if in.Model.Name == "unet" && l.Y >= 100 {
			convTotal++
			if h.Subs[a.SubAcc].Style == dataflow.ShiDiannao {
				convOnShi++
			}
		}
	}
	if fcTotal == 0 || convTotal == 0 {
		t.Fatal("test workload lost its probe layers")
	}
	if fcOnNVDLA*2 < fcTotal {
		t.Errorf("only %d/%d FC layers on NVDLA", fcOnNVDLA, fcTotal)
	}
	if convOnShi*2 < convTotal {
		t.Errorf("only %d/%d large spatial convs on Shi-diannao", convOnShi, convTotal)
	}
}

// TestHeraldBeatsGreedy: the paper's scheduler-efficacy result (§V-B):
// Herald's load-balanced, post-processed schedules must have lower EDP
// than the naive greedy scheduler on a Maelstrom design.
func TestHeraldBeatsGreedy(t *testing.T) {
	h := maelstromEdge(t)
	cache := newCache()
	w := workload.ARVRA()

	herald := MustNew(cache, DefaultOptions())
	greedy := MustNew(cache, GreedyOptions())

	hs, err := herald.Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := greedy.Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := hs.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := gs.Validate(); err != nil {
		t.Fatal(err)
	}
	if hs.EDP(1.0) >= gs.EDP(1.0) {
		t.Errorf("Herald EDP %.4g not better than greedy %.4g", hs.EDP(1.0), gs.EDP(1.0))
	}
}

func TestSingleSubAccIsSequential(t *testing.T) {
	fda, err := accel.NewFDA(accel.Edge, dataflow.NVDLA)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.MustNew("seq", []workload.Entry{{Model: "mobilenetv1", Batches: 1}})
	s := MustNew(newCache(), DefaultOptions())
	sch, err := s.Schedule(fda, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, a := range sch.Assignments {
		sum += a.Cost.Cycles
	}
	if sch.MakespanCycles != sum {
		t.Errorf("single-sub schedule should be dense: makespan %d != busy %d", sch.MakespanCycles, sum)
	}
	if u := sch.Utilization(); u[0] < 0.999 {
		t.Errorf("utilization %v, want ~1", u)
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := DefaultOptions()
	bad.LoadBalanceFactor = 0.5
	if _, err := New(newCache(), bad); err == nil {
		t.Error("LbF < 1 should be rejected")
	}
	bad = DefaultOptions()
	bad.LookAhead = -1
	if _, err := New(newCache(), bad); err == nil {
		t.Error("negative look-ahead should be rejected")
	}
	if MetricEDP.String() != "edp" || BreadthFirst.String() != "breadth-first" {
		t.Error("stringers broken")
	}
}

func TestScheduleRejectsEmptyInputs(t *testing.T) {
	s := MustNew(newCache(), DefaultOptions())
	h := maelstromEdge(t)
	if _, err := s.Schedule(nil, workload.ARVRA()); err == nil {
		t.Error("nil HDA accepted")
	}
	if _, err := s.Schedule(h, nil); err == nil {
		t.Error("nil workload accepted")
	}
}

// TestScheduleInvariants property-checks schedule legality across
// random HDA partitions, workload mixes and scheduler options.
func TestScheduleInvariants(t *testing.T) {
	cache := newCache()
	models := []string{"mobilenetv1", "brq-handpose", "mobilenetv2", "resnet50", "gnmt"}
	styles := dataflow.AllStyles()
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random 2- or 3-way partition of the edge class.
		n := 2 + r.Intn(2)
		parts := make([]accel.Partition, n)
		peLeft, bwLeft := accel.Edge.PEs, accel.Edge.BWGBps
		for i := 0; i < n-1; i++ {
			pe := 64 * (1 + r.Intn(peLeft/64-(n-1-i)))
			bw := float64(1 + r.Intn(int(bwLeft)-(n-1-i))) // at least 1 GB/s each
			parts[i] = accel.Partition{Style: styles[r.Intn(len(styles))], PEs: pe, BWGBps: bw}
			peLeft -= pe
			bwLeft -= bw
		}
		parts[n-1] = accel.Partition{Style: styles[r.Intn(len(styles))], PEs: peLeft, BWGBps: bwLeft}
		h, err := accel.New("rand", accel.Edge, parts)
		if err != nil {
			t.Logf("partition rejected: %v", err)
			return false
		}
		// Random workload of 1-3 entries.
		var entries []workload.Entry
		for i := 0; i <= r.Intn(2); i++ {
			entries = append(entries, workload.Entry{Model: models[r.Intn(len(models))], Batches: 1 + r.Intn(2)})
		}
		w, err := workload.New("rand", entries)
		if err != nil {
			return false
		}
		opts := DefaultOptions()
		if r.Intn(2) == 0 {
			opts.Ordering = DepthFirst
		}
		if r.Intn(3) == 0 {
			opts.LoadBalanceFactor = 1.0 + 4*r.Float64()
		}
		opts.PostProcess = r.Intn(2) == 0
		s := MustNew(cache, opts)
		sch, err := s.Schedule(h, w)
		if err != nil {
			t.Logf("schedule failed: %v", err)
			return false
		}
		if err := sch.Validate(); err != nil {
			t.Logf("invalid schedule: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPostProcessNeverRegresses: the Fig. 9 pass must not increase the
// makespan (it only accepts improving or neutral moves).
func TestPostProcessNeverRegresses(t *testing.T) {
	h := maelstromEdge(t)
	cache := newCache()
	w := workload.ARVRB()

	noPost := DefaultOptions()
	noPost.PostProcess = false
	base, err := MustNew(cache, noPost).Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	post, err := MustNew(cache, DefaultOptions()).Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	if post.MakespanCycles > base.MakespanCycles {
		t.Errorf("post-processing regressed makespan: %d > %d", post.MakespanCycles, base.MakespanCycles)
	}
	if err := post.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	h := maelstromEdge(t)
	w := workload.MustNew("v", []workload.Entry{{Model: "brq-handpose", Batches: 1}})
	s := MustNew(newCache(), DefaultOptions())
	sch, err := s.Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}

	// Dependence violation.
	bad := *sch
	bad.Assignments = append([]Assignment(nil), sch.Assignments...)
	for i := range bad.Assignments {
		if bad.Assignments[i].Layer == 1 {
			bad.Assignments[i].Start = 0
			bad.Assignments[i].End = bad.Assignments[i].Cost.Cycles
		}
	}
	if err := bad.Validate(); err == nil {
		t.Error("Validate missed a dependence/overlap violation")
	}

	// Missing layer.
	bad2 := *sch
	bad2.Assignments = sch.Assignments[:len(sch.Assignments)-1]
	if err := bad2.Validate(); err == nil {
		t.Error("Validate missed a missing layer")
	}

	// Energy mismatch.
	bad3 := *sch
	bad3.EnergyPJ = sch.EnergyPJ * 2
	if err := bad3.Validate(); err == nil {
		t.Error("Validate missed an energy mismatch")
	}
}

func TestWorkloadTableII(t *testing.T) {
	a := workload.ARVRA()
	if a.NumInstances() != 10 {
		t.Errorf("AR/VR-A instances = %d, want 10 (2+4+4)", a.NumInstances())
	}
	b := workload.ARVRB()
	if b.NumInstances() != 12 {
		t.Errorf("AR/VR-B instances = %d, want 12 (2+2+4+2+2)", b.NumInstances())
	}
	m := workload.MLPerf(1)
	if m.NumInstances() != 5 {
		t.Errorf("MLPerf instances = %d, want 5", m.NumInstances())
	}
	m8 := workload.MLPerf(8)
	if m8.NumInstances() != 40 {
		t.Errorf("MLPerf-b8 instances = %d, want 40", m8.NumInstances())
	}
	if b.TotalLayers() <= a.TotalLayers()/2 {
		t.Error("AR/VR-B should be comparable in size to AR/VR-A")
	}
	if _, err := workload.New("bad", nil); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := workload.New("bad", []workload.Entry{{Model: "nope", Batches: 1}}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := workload.New("bad", []workload.Entry{{Model: "unet", Batches: 0}}); err == nil {
		t.Error("zero batches accepted")
	}
	single, err := workload.SingleDNN("unet", 4)
	if err != nil || single.NumInstances() != 4 {
		t.Errorf("SingleDNN: %v, %d instances", err, single.NumInstances())
	}
	if got := a.Instances[0].Name(); got != "resnet50#1" {
		t.Errorf("instance name = %q", got)
	}
}
