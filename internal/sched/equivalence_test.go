package sched

import (
	"sort"
	"testing"

	"repro/internal/accel"
	"repro/internal/maestro"
	"repro/internal/workload"
)

// This file carries a reference implementation of the Fig. 8 main loop
// exactly as the repository's original (pre-optimization) scheduler
// wrote it: a freshly-allocated, sort.Slice-ranked candidate list per
// layer, a linear scan over free/ready values for the next event, and
// a full rescan of a flat memory ledger per commit attempt. The
// production scheduler replaced all three (scratch insertion ranking,
// event min-heap, per-sub-accelerator interval ledger with prefix
// sums) as pure performance refactors — so on any workload the two
// must produce identical schedules, assignment for assignment.

type refState struct {
	free      []int64
	busy      []int64
	nextLayer []int
	ready     []int64
	order     []int
	prio      []int
	running   []runSlot
	prune     int64

	assignments []Assignment
	energyPJ    float64
	remaining   int
}

func refSchedule(t *testing.T, cache *maestro.Cache, opts Options, h *accel.HDA, insts []workload.Instance) *refState {
	t.Helper()
	st := &refState{
		free: make([]int64, len(h.Subs)),
		busy: make([]int64, len(h.Subs)),
	}
	for i, in := range insts {
		st.nextLayer = append(st.nextLayer, 0)
		st.ready = append(st.ready, in.ArrivalCycle)
		st.order = append(st.order, i)
		p := 0
		if i < len(opts.Priorities) {
			p = opts.Priorities[i]
		}
		st.prio = append(st.prio, p)
		st.remaining += in.Model.NumLayers()
	}
	sort.SliceStable(st.order, func(i, j int) bool {
		return st.prio[st.order[i]] > st.prio[st.order[j]]
	})

	var cycle int64
	for st.remaining > 0 {
		if cycle > st.prune {
			st.prune = cycle
		}
		assignedInst := -1
		for _, inst := range st.order {
			li := st.nextLayer[inst]
			if li >= insts[inst].Model.NumLayers() {
				continue
			}
			if st.ready[inst] > cycle {
				continue
			}
			if refTryAssign(cache, opts, h, insts, st, cycle, inst, li) {
				assignedInst = inst
				break
			}
		}
		if assignedInst >= 0 {
			refRearrange(opts, st, assignedInst)
			continue
		}
		next, ok := refNextEvent(st, cycle)
		if !ok {
			t.Fatalf("reference scheduler deadlocked at cycle %d", cycle)
		}
		cycle = next
	}
	return st
}

func refTryAssign(cache *maestro.Cache, opts Options, h *accel.HDA, insts []workload.Instance, st *refState, cycle int64, inst, li int) bool {
	layer := &insts[inst].Model.Layers[li]

	type cand struct {
		acc    int
		cost   maestro.Cost
		metric float64
		finish int64
	}
	cands := make([]cand, len(h.Subs))
	for a := range h.Subs {
		c := cache.Estimate(layer, h.Subs[a].Style, h.Subs[a].HW)
		cands[a] = cand{
			acc: a, cost: c,
			metric: opts.Metric.value(&c),
			finish: max(cycle, st.free[a]) + c.Cycles,
		}
	}
	if refImbalanced(opts, st, cycle) {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].finish != cands[j].finish {
				return cands[i].finish < cands[j].finish
			}
			if cands[i].metric != cands[j].metric {
				return cands[i].metric < cands[j].metric
			}
			return cands[i].acc < cands[j].acc
		})
	} else {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].metric != cands[j].metric {
				return cands[i].metric < cands[j].metric
			}
			return cands[i].acc < cands[j].acc
		})
	}

	for _, c := range cands {
		startT := max(cycle, st.free[c.acc])
		endT := startT + c.cost.Cycles
		if !refMemOK(h, st, startT, endT, c.cost.OccupancyBytes) {
			continue
		}
		st.free[c.acc] = endT
		st.busy[c.acc] += c.cost.Cycles
		st.ready[inst] = endT
		st.nextLayer[inst]++
		st.remaining--
		st.energyPJ += c.cost.EnergyPJ()
		st.running = append(st.running, runSlot{start: startT, end: endT, occ: c.cost.OccupancyBytes})
		st.assignments = append(st.assignments, Assignment{
			Instance: inst, Layer: li, SubAcc: c.acc,
			Start: startT, End: endT, Cost: &c.cost,
		})
		return true
	}
	return false
}

func refImbalanced(opts Options, st *refState, cycle int64) bool {
	lbf := opts.LoadBalanceFactor
	if lbf >= inf() {
		return false
	}
	var lo, hi int64
	for i, f := range st.free {
		d := f - cycle
		if d < 0 {
			d = 0
		}
		if i == 0 || d < lo {
			lo = d
		}
		if i == 0 || d > hi {
			hi = d
		}
	}
	if hi == 0 {
		return false
	}
	if lo <= 0 {
		return true
	}
	return float64(hi) > lbf*float64(lo)
}

func refMemOK(h *accel.HDA, st *refState, startT, endT, occ int64) bool {
	live := st.running[:0]
	var sum int64
	for _, r := range st.running {
		if r.end <= st.prune {
			continue
		}
		live = append(live, r)
		if r.end > startT && r.start < endT {
			sum += r.occ
		}
	}
	st.running = live
	return sum+occ <= h.Class.GlobalBufBytes
}

func refRearrange(opts Options, st *refState, inst int) {
	if opts.Ordering == DepthFirst {
		return
	}
	pos := -1
	for i, v := range st.order {
		if v == inst {
			pos = i
			break
		}
	}
	if pos < 0 {
		return
	}
	p := st.prio[inst]
	end := pos
	for end+1 < len(st.order) && st.prio[st.order[end+1]] == p {
		end++
	}
	copy(st.order[pos:end], st.order[pos+1:end+1])
	st.order[end] = inst
}

func refNextEvent(st *refState, cycle int64) (int64, bool) {
	var next int64
	found := false
	consider := func(t int64) {
		if t > cycle && (!found || t < next) {
			next, found = t, true
		}
	}
	for _, t := range st.free {
		consider(t)
	}
	for _, inst := range st.order {
		consider(st.ready[inst])
	}
	return next, found
}

// TestSchedulerMatchesReference runs the optimized scheduler and the
// reference implementation over the paper's AR/VR and MLPerf
// workloads under several configurations and requires bit-identical
// assignment sequences (post-processing disabled: the reference only
// covers the Fig. 8 loop, which is everything the optimization
// touched).
func TestSchedulerMatchesReference(t *testing.T) {
	h := maelstromEdge(t)
	cache := newCache()

	workloads := []*workload.Workload{
		workload.ARVRA(),
		workload.ARVRB(),
		workload.MLPerf(1),
	}
	mkOpts := func(mutate func(*Options)) Options {
		o := DefaultOptions()
		o.PostProcess = false
		if mutate != nil {
			mutate(&o)
		}
		return o
	}
	configs := map[string]Options{
		"default":     mkOpts(nil),
		"depth-first": mkOpts(func(o *Options) { o.Ordering = DepthFirst }),
		"greedy":      func() Options { o := GreedyOptions(); o.PostProcess = false; return o }(),
		"latency":     mkOpts(func(o *Options) { o.Metric = MetricLatency }),
		"tight-lbf":   mkOpts(func(o *Options) { o.LoadBalanceFactor = 1.05 }),
	}

	for name, opts := range configs {
		for _, w := range workloads {
			t.Run(name+"/"+w.Name, func(t *testing.T) {
				s := MustNew(cache, opts)
				got, err := s.Schedule(h, w)
				if err != nil {
					t.Fatal(err)
				}
				want := refSchedule(t, cache, opts, h, w.Instances)

				if len(got.Assignments) != len(want.assignments) {
					t.Fatalf("assignment count %d != reference %d", len(got.Assignments), len(want.assignments))
				}
				for i := range want.assignments {
					g, r := got.Assignments[i], want.assignments[i]
					if g.Instance != r.Instance || g.Layer != r.Layer || g.SubAcc != r.SubAcc ||
						g.Start != r.Start || g.End != r.End {
						t.Fatalf("assignment %d diverged:\n got  %d/%d on %d @ [%d,%d)\n want %d/%d on %d @ [%d,%d)",
							i, g.Instance, g.Layer, g.SubAcc, g.Start, g.End,
							r.Instance, r.Layer, r.SubAcc, r.Start, r.End)
					}
				}
				if got.EnergyPJ != want.energyPJ {
					t.Errorf("energy %v != reference %v", got.EnergyPJ, want.energyPJ)
				}
				var refSpan int64
				for _, a := range want.assignments {
					if a.End > refSpan {
						refSpan = a.End
					}
				}
				if got.MakespanCycles != refSpan {
					t.Errorf("makespan %d != reference %d", got.MakespanCycles, refSpan)
				}
			})
		}
	}
}
