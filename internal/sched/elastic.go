package sched

// Elastic intra-HDA partitioning: layer-boundary preemption
// (checkpoint/resume of an admitted instance via the Extend rollback
// machinery and the interval memory ledger) and PE reassignment
// (re-sizing the sub-accelerator slices between committed layers,
// re-costing every not-yet-executed layer on the new slice sizes).
// This is the dynamic-resource-partitioning model of arxiv 2302.10806
// grafted onto the incremental scheduling path: commitments stay
// non-revocable for layers that have started by the boundary, and
// everything after the boundary is revocable.

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/accel"
)

// ErrNothingToPreempt reports that every committed layer of the
// instance starts before the preemption boundary, so there is no
// revocable suffix — the instance effectively finishes first.
var ErrNothingToPreempt = errors.New("sched: no layer starts at or after the preemption boundary")

// Checkpoint is a preempted instance's resume token: which layers ran
// to completion before the boundary and what the rollback released.
// It is produced by Preempt and consumed by exactly one Resume.
type Checkpoint struct {
	Instance    int   // global instance index (Placement.Instance)
	NextLayer   int   // first layer left unexecuted at the boundary
	ResumeCycle int64 // completion cycle of the kept prefix (arrival if empty)

	LayersRolledBack int     // committed layers revoked by the preemption
	FreedBusyCycles  int64   // execution cycles released back to the subs
	FreedEnergyPJ    float64 // energy un-spent by the rollback
}

// Preempt checkpoints the instance at the layer boundary `at`: every
// committed layer starting at or after the boundary is rolled back —
// its interval leaves the per-sub timelines and the memory ledger, its
// busy cycles and energy are refunded — and the instance is suspended
// (removed from the visitation order, so later Extends never touch its
// remaining layers) until Resume. Layers already started by the
// boundary run to completion, which is exactly the layer-boundary
// preemption model: the checkpoint is implicit in the committed
// prefix, no architectural state is saved.
//
// Instances that are part of a fused chain cannot be preempted (their
// handoff buffers tie them to live peers); ErrNothingToPreempt is
// returned when the instance finishes before the boundary.
func (inc *Incremental) Preempt(instance int, at int64) (Checkpoint, error) {
	if instance < 0 || instance >= len(inc.insts) {
		return Checkpoint{}, fmt.Errorf("sched: preempt of unknown instance %d", instance)
	}
	if _, dup := inc.susp[instance]; dup {
		return Checkpoint{}, fmt.Errorf("sched: instance %d is already preempted", instance)
	}
	st := inc.st
	if st.pred[instance] >= 0 || st.succ[instance] >= 0 {
		return Checkpoint{}, fmt.Errorf("sched: instance %d is part of a fused chain and cannot be preempted", instance)
	}
	// The boundary can never precede the admission floor: slots ending
	// at or before the floor may already have been pruned from the
	// ledger, and resumed work must arrive at or after it anyway.
	if at < inc.floor {
		at = inc.floor
	}

	// Partition the instance's committed layers at the boundary. Layer
	// starts are strictly increasing in layer order (dependence), so
	// the rolled-back set is a contiguous suffix.
	nl := inc.insts[instance].Model.NumLayers()
	var (
		removed     []Assignment
		freedBusy   int64
		freedEnergy float64
	)
	firstRolled := nl
	resumeCycle := inc.insts[instance].ArrivalCycle
	for i := range st.assignments {
		a := st.assignments[i]
		if a.Instance != instance {
			continue
		}
		if a.Start >= at {
			removed = append(removed, a)
			if a.Layer < firstRolled {
				firstRolled = a.Layer
			}
			freedBusy += a.Cost.Cycles
			freedEnergy += a.Cost.Energy.Total()
		} else if a.End > resumeCycle {
			resumeCycle = a.End
		}
	}
	if len(removed) == 0 {
		return Checkpoint{}, ErrNothingToPreempt
	}
	if firstRolled+len(removed) != nl {
		return Checkpoint{}, fmt.Errorf("sched: instance %d rollback is not a layer suffix (first %d + %d removed != %d layers)",
			instance, firstRolled, len(removed), nl)
	}
	kept := st.assignments[:0]
	for i := range st.assignments {
		a := st.assignments[i]
		if a.Instance == instance && a.Start >= at {
			continue
		}
		kept = append(kept, a)
	}
	st.assignments = kept

	// Remove the rolled-back intervals from the per-sub memory ledger
	// and rebuild its occupancy prefix sums. The boundary sits at or
	// above the prune floor, so every removed slot is still present.
	accs := make([]int, 0, len(st.free))
	for _, a := range removed {
		dup := false
		for _, acc := range accs {
			dup = dup || acc == a.SubAcc
		}
		if !dup {
			accs = append(accs, a.SubAcc)
		}
	}
	lg := &st.ledger
	for _, acc := range accs {
		slots := lg.slots[acc][:0]
		for _, sl := range lg.slots[acc] {
			drop := false
			for _, a := range removed {
				if a.SubAcc == acc && a.Start == sl.start && a.End == sl.end {
					drop = true
					break
				}
			}
			if !drop {
				slots = append(slots, sl)
			}
		}
		lg.slots[acc] = slots
		p := append(lg.pre[acc][:0], 0)
		for _, sl := range slots {
			p = append(p, p[len(p)-1]+sl.occ)
		}
		lg.pre[acc] = p
		lg.head[acc] = 0
		lg.prune(acc, st.prune)
	}

	// Rewind the per-sub timelines: free shrinks to the end of the
	// last surviving commit on each touched sub (the layer boundary),
	// busy and energy refund the rolled-back execution.
	frontier := make([]int64, len(st.free))
	for i := range st.assignments {
		a := &st.assignments[i]
		if a.End > frontier[a.SubAcc] {
			frontier[a.SubAcc] = a.End
		}
	}
	for _, acc := range accs {
		st.free[acc] = frontier[acc]
	}
	for _, a := range removed {
		st.busy[a.SubAcc] -= a.Cost.Cycles
	}
	st.energyPJ -= freedEnergy

	// Suspend: record the resume point and leave the visitation order,
	// so retire/Extend skip the instance entirely until Resume.
	st.nextLayer[instance] = firstRolled
	st.ready[instance] = resumeCycle
	order := st.order[:0]
	for _, o := range st.order {
		if o != instance {
			order = append(order, o)
		}
	}
	st.order = order

	cp := Checkpoint{
		Instance:         instance,
		NextLayer:        firstRolled,
		ResumeCycle:      resumeCycle,
		LayersRolledBack: len(removed),
		FreedBusyCycles:  freedBusy,
		FreedEnergyPJ:    freedEnergy,
	}
	if inc.susp == nil {
		inc.susp = make(map[int]Checkpoint)
	}
	inc.susp[instance] = cp
	return cp, nil
}

// Resume schedules a preempted instance's remaining layers against the
// committed timelines — possibly on re-sized sub-accelerator slices if
// a Reassign happened in between — and returns the placement of the
// resumed suffix (StartCycle/FinishCycle/BusyCycles/EnergyPJ cover the
// resumed layers only; ArrivalCycle is the instance's original
// arrival). The suffix may not start before the checkpoint's kept
// prefix completed, before `at`, or before the admission floor. A
// failed Resume rolls the schedule back and leaves the instance
// suspended, exactly like a failed Extend.
func (inc *Incremental) Resume(cp Checkpoint, priority int, at int64) (Placement, error) {
	stored, ok := inc.susp[cp.Instance]
	if !ok {
		return Placement{}, fmt.Errorf("sched: instance %d is not preempted", cp.Instance)
	}
	if stored.NextLayer != cp.NextLayer {
		return Placement{}, fmt.Errorf("sched: stale checkpoint for instance %d (next layer %d, suspended at %d)",
			cp.Instance, cp.NextLayer, stored.NextLayer)
	}
	st := inc.st
	if at < inc.floor {
		at = inc.floor
	}
	start := st.ready[cp.Instance] // kept-prefix completion
	if at > start {
		start = at
	}

	undo := st.checkpoint()
	st.retire(inc.insts)
	st.prio[cp.Instance] = priority
	st.order = append(st.order, cp.Instance)
	sort.SliceStable(st.order, func(i, j int) bool {
		return st.prio[st.order[i]] > st.prio[st.order[j]]
	})
	st.remaining += inc.insts[cp.Instance].Model.NumLayers() - cp.NextLayer
	st.ready[cp.Instance] = start
	st.prune = inc.floor
	delete(inc.susp, cp.Instance)

	mark := len(st.assignments)
	if err := inc.s.run(inc.h, inc.insts, st, start, false); err != nil {
		st.restore(undo)
		inc.susp[cp.Instance] = stored
		return Placement{}, err
	}

	pl := Placement{
		Instance:     cp.Instance,
		ArrivalCycle: inc.insts[cp.Instance].ArrivalCycle,
		StartCycle:   -1,
	}
	for i := mark; i < len(st.assignments); i++ {
		a := &st.assignments[i]
		if pl.StartCycle < 0 || a.Start < pl.StartCycle {
			pl.StartCycle = a.Start
		}
		if a.End > pl.FinishCycle {
			pl.FinishCycle = a.End
		}
		pl.BusyCycles += a.Cost.Cycles
		pl.EnergyPJ += a.Cost.Energy.Total()
	}
	return pl, nil
}

// Preempted returns the currently suspended instance indices in
// ascending order.
func (inc *Incremental) Preempted() []int {
	out := make([]int, 0, len(inc.susp))
	for i := range inc.susp { //herald:nondet collected then sorted below
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Reassign re-sizes the schedule's sub-accelerator slices in place:
// the HDA is rebuilt over the same class with the given partitions
// (sub count fixed — growing/shrinking the number of slices is a
// migration, not a reassignment) and every admitted instance's cost
// rows are re-resolved against the new slice sizes. Committed layers
// keep their historical interned costs, so the swap is exactly a layer
// boundary: in-flight layers finish on the old slices' cost model,
// everything scheduled afterwards — resumed suffixes and future
// admissions — is costed on the new one. The per-sub timelines, the
// memory ledger and the admission floor carry over untouched.
func (inc *Incremental) Reassign(parts []accel.Partition) (*accel.HDA, error) {
	if len(parts) != len(inc.h.Subs) {
		return nil, fmt.Errorf("sched: reassign with %d partitions on a %d-sub HDA (sub count is fixed; migrate instead)",
			len(parts), len(inc.h.Subs))
	}
	nh, err := accel.New(inc.h.Name, inc.h.Class, parts)
	if err != nil {
		return nil, err
	}
	inc.h = nh
	st := inc.st
	st.costs = inc.s.tableFor(nh)
	for i := range st.rows {
		ct, ok := st.costs[inc.insts[i].Model]
		if !ok {
			ct = inc.s.costCols(nh, st.costs, inc.insts[i].Model)
		}
		st.rows[i] = ct
	}
	return nh, nil
}
