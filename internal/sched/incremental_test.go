package sched

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/dnn"
	"repro/internal/energy"
	"repro/internal/maestro"
	"repro/internal/workload"
)

func incTestHDA(t testing.TB) *accel.HDA {
	t.Helper()
	h, err := accel.New("inc-test", accel.Edge, []accel.Partition{
		{Style: dataflow.NVDLA, PEs: 512, BWGBps: 8},
		{Style: dataflow.ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func incTestScheduler(t testing.TB) *Scheduler {
	t.Helper()
	opts := DefaultOptions()
	opts.PostProcess = false // incremental commits are non-revocable
	return MustNew(maestro.NewCache(energy.Default28nm()), opts)
}

func mustModel(t testing.TB, name string) *dnn.Model {
	t.Helper()
	m, err := dnn.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestIncrementalMatchesBatch: admitting the whole workload in one
// Extend at cycle 0 must reproduce the batch scheduler's assignments
// exactly (both run the Fig. 8 loop; post-processing disabled).
func TestIncrementalMatchesBatch(t *testing.T) {
	h := incTestHDA(t)
	s := incTestScheduler(t)
	w := workload.MustNew("inc-batch", []workload.Entry{
		{Model: "mobilenetv1", Batches: 2},
		{Model: "brq-handpose", Batches: 2},
	})

	batch, err := s.Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}

	inc, err := s.Incremental(h, "inc-batch")
	if err != nil {
		t.Fatal(err)
	}
	adms := make([]Admission, len(w.Instances))
	for i, in := range w.Instances {
		adms[i] = Admission{Instance: in}
	}
	if _, err := inc.Extend(adms); err != nil {
		t.Fatal(err)
	}
	snap := inc.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(snap.Assignments) != len(batch.Assignments) {
		t.Fatalf("incremental committed %d assignments, batch %d", len(snap.Assignments), len(batch.Assignments))
	}
	for i := range snap.Assignments {
		a, b := snap.Assignments[i], batch.Assignments[i]
		a.Cost, b.Cost = nil, nil
		if a != b {
			t.Fatalf("assignment %d differs: incremental %+v vs batch %+v", i, snap.Assignments[i], batch.Assignments[i])
		}
	}
	if snap.MakespanCycles != batch.MakespanCycles {
		t.Errorf("makespan %d != batch %d", snap.MakespanCycles, batch.MakespanCycles)
	}
}

// TestIncrementalStepwise: admissions arriving over time extend the
// schedule; every intermediate snapshot is a valid schedule, and
// placements report consistent per-request latencies.
func TestIncrementalStepwise(t *testing.T) {
	h := incTestHDA(t)
	s := incTestScheduler(t)
	inc, err := s.Incremental(h, "inc-step")
	if err != nil {
		t.Fatal(err)
	}
	mobilenet := mustModel(t, "mobilenetv1")
	handpose := mustModel(t, "brq-handpose")

	var arrival int64
	total := 0
	for round := 0; round < 4; round++ {
		adms := []Admission{
			{Instance: workload.Instance{Model: mobilenet, Batch: round + 1, ArrivalCycle: arrival}},
			{Instance: workload.Instance{Model: handpose, Batch: round + 1, ArrivalCycle: arrival + 1000}, Priority: 1},
		}
		ps, err := inc.Extend(adms)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(ps) != len(adms) {
			t.Fatalf("round %d: %d placements for %d admissions", round, len(ps), len(adms))
		}
		for i, p := range ps {
			if p.StartCycle < adms[i].Instance.ArrivalCycle {
				t.Errorf("round %d: placement %d starts %d before arrival %d", round, i, p.StartCycle, adms[i].Instance.ArrivalCycle)
			}
			if p.FinishCycle <= p.StartCycle {
				t.Errorf("round %d: placement %d empty interval [%d,%d)", round, i, p.StartCycle, p.FinishCycle)
			}
			if p.LatencyCycles() < p.BusyCycles {
				t.Errorf("round %d: latency %d below busy cycles %d", round, p.LatencyCycles(), p.BusyCycles)
			}
			if p.QueueCycles() < 0 {
				t.Errorf("round %d: negative queueing %d", round, p.QueueCycles())
			}
		}
		total += len(adms)
		if inc.NumInstances() != total {
			t.Fatalf("round %d: %d instances, want %d", round, inc.NumInstances(), total)
		}
		snap := inc.Snapshot()
		if err := snap.Validate(); err != nil {
			t.Fatalf("round %d: invalid snapshot: %v", round, err)
		}
		// Later arrivals keep the clock moving (requests trickle in
		// while earlier ones execute).
		arrival += 2_000_000
	}
}

// TestIncrementalMemoryLedger: a later batch arriving before the
// previous batch's completion must still respect the shared-buffer
// constraint — the ledger must not have pruned slots that overlap it.
func TestIncrementalMemoryLedger(t *testing.T) {
	h := incTestHDA(t)
	s := incTestScheduler(t)
	inc, err := s.Incremental(h, "inc-mem")
	if err != nil {
		t.Fatal(err)
	}
	unet := mustModel(t, "unet")
	adms := []Admission{{Instance: workload.Instance{Model: unet, Batch: 1}}}
	if _, err := inc.Extend(adms); err != nil {
		t.Fatal(err)
	}
	first := inc.Snapshot().MakespanCycles
	// Admit three more UNets midway through the first one's execution.
	mid := first / 2
	var more []Admission
	for b := 2; b <= 4; b++ {
		more = append(more, Admission{Instance: workload.Instance{Model: unet, Batch: b, ArrivalCycle: mid}})
	}
	if _, err := inc.Extend(more); err != nil {
		t.Fatal(err)
	}
	snap := inc.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatalf("post-overlap snapshot invalid: %v", err)
	}
	if snap.PeakOccupancyBytes() > h.Class.GlobalBufBytes {
		t.Fatalf("peak occupancy %d exceeds buffer %d", snap.PeakOccupancyBytes(), h.Class.GlobalBufBytes)
	}
}

// TestIncrementalPriority: within one admission batch, a
// higher-priority instance is served first when both are ready.
func TestIncrementalPriority(t *testing.T) {
	h := incTestHDA(t)
	s := incTestScheduler(t)
	inc, err := s.Incremental(h, "inc-prio")
	if err != nil {
		t.Fatal(err)
	}
	m := mustModel(t, "mobilenetv1")
	ps, err := inc.Extend([]Admission{
		{Instance: workload.Instance{Model: m, Batch: 1}, Priority: 0},
		{Instance: workload.Instance{Model: m, Batch: 2}, Priority: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ps[1].StartCycle > ps[0].StartCycle {
		t.Errorf("high-priority instance starts at %d, after low-priority %d", ps[1].StartCycle, ps[0].StartCycle)
	}
	if ps[1].FinishCycle > ps[0].FinishCycle {
		t.Errorf("high-priority instance finishes at %d, after low-priority %d", ps[1].FinishCycle, ps[0].FinishCycle)
	}
}

// TestIncrementalFloor: arrivals before the admission floor are
// rejected, and the floor ratchets up with admitted batches.
func TestIncrementalFloor(t *testing.T) {
	h := incTestHDA(t)
	s := incTestScheduler(t)
	inc, err := s.Incremental(h, "inc-floor")
	if err != nil {
		t.Fatal(err)
	}
	m := mustModel(t, "brq-handpose")
	if _, err := inc.Extend([]Admission{
		{Instance: workload.Instance{Model: m, Batch: 1, ArrivalCycle: 5000}},
	}); err != nil {
		t.Fatal(err)
	}
	if inc.Floor() != 5000 {
		t.Errorf("floor = %d, want 5000", inc.Floor())
	}
	if _, err := inc.Extend([]Admission{
		{Instance: workload.Instance{Model: m, Batch: 2, ArrivalCycle: 4999}},
	}); err == nil {
		t.Error("arrival below the admission floor accepted")
	}
}

// TestIncrementalExtendRollback: a failed Extend (a layer that can
// never fit the global buffer deadlocks the assignment loop) must
// leave the incremental schedule exactly as it was — a later, valid
// Extend succeeds (regression: a failed admission used to leave
// partial state that poisoned every subsequent Extend).
func TestIncrementalExtendRollback(t *testing.T) {
	// A hand-built HDA whose sub-accelerator L1 exceeds the shared
	// global buffer: big layers pin an occupancy slice (capped at L1)
	// that can never fit, which is the only way the assignment loop
	// can dead-end. accel.New never produces this shape, so build the
	// struct directly.
	h := &accel.HDA{
		Name:  "rollback",
		Class: accel.Class{Name: "tiny-buf", PEs: 512, BWGBps: 8, GlobalBufBytes: 4096},
		Subs: []accel.SubAccelerator{{
			Name:  "acc1-NVDLA",
			Style: dataflow.NVDLA,
			HW:    maestro.HW{PEs: 512, BWGBps: 8, L2Bytes: 1 << 20, L1Bytes: 1 << 20},
		}},
	}
	s := incTestScheduler(t)
	inc, err := s.Incremental(h, "inc-rollback")
	if err != nil {
		t.Fatal(err)
	}
	// Seed with a tiny model (occupancy fits the 4 KiB buffer) so
	// there is committed state to protect.
	m := &dnn.Model{Name: "tiny", Layers: []dnn.Layer{{
		Op: dnn.Conv2D, K: 1, C: 1, Y: 4, X: 4, R: 1, S: 1, Stride: 1, Pad: 0,
	}}}
	if _, err := inc.Extend([]Admission{{Instance: workload.Instance{Model: m, Batch: 1}}}); err != nil {
		t.Fatal(err)
	}
	before := inc.Snapshot()
	floorBefore := inc.Floor()

	// A layer whose occupancy slice (L1-capped at 1 MiB) can never
	// fit the 4 KiB global buffer.
	giant := &dnn.Model{Name: "giant", Layers: []dnn.Layer{{
		Op: dnn.Conv2D, K: 512, C: 512, Y: 512, X: 512, R: 3, S: 3, Stride: 1, Pad: 1,
	}}}
	if _, err := inc.Extend([]Admission{{Instance: workload.Instance{Model: giant, Batch: 1}}}); err == nil {
		t.Fatal("un-schedulable model admitted")
	}
	if inc.NumInstances() != before.Workload.NumInstances() {
		t.Fatalf("failed Extend leaked instances: %d, want %d", inc.NumInstances(), before.Workload.NumInstances())
	}
	if inc.Floor() != floorBefore {
		t.Errorf("failed Extend moved the floor: %d -> %d", floorBefore, inc.Floor())
	}
	after := inc.Snapshot()
	if len(after.Assignments) != len(before.Assignments) || after.MakespanCycles != before.MakespanCycles {
		t.Fatalf("failed Extend changed committed state: %d/%d assignments, makespan %d/%d",
			len(after.Assignments), len(before.Assignments), after.MakespanCycles, before.MakespanCycles)
	}

	// The schedule must still accept and serve valid work.
	ps, err := inc.Extend([]Admission{{Instance: workload.Instance{Model: m, Batch: 2}}})
	if err != nil {
		t.Fatalf("valid Extend after rollback failed: %v", err)
	}
	if len(ps) != 1 || ps[0].FinishCycle <= ps[0].StartCycle {
		t.Fatalf("bad placement after rollback: %+v", ps)
	}
	if err := inc.Snapshot().Validate(); err != nil {
		t.Fatalf("snapshot invalid after rollback+extend: %v", err)
	}
}

// TestIncrementalRejectsOptionPriorities: the incremental path takes
// per-admission priorities only.
func TestIncrementalRejectsOptionPriorities(t *testing.T) {
	opts := DefaultOptions()
	opts.Priorities = []int{1, 2}
	s := MustNew(maestro.NewCache(energy.Default28nm()), opts)
	if _, err := s.Incremental(incTestHDA(t), "x"); err == nil {
		t.Error("Options.Priorities accepted by incremental path")
	}
}
