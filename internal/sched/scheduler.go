package sched

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"repro/internal/accel"
	"repro/internal/dnn"
	"repro/internal/maestro"
	"repro/internal/workload"
)

// Scheduler generates layer execution schedules for HDAs using a
// shared cost-model cache.
//
// A Scheduler is NOT safe for concurrent use: it keeps a private
// unsynchronized L0 cost cache and scratch buffers so the steady-state
// assignment loop performs no heap allocations and no lock
// operations. Create one Scheduler per goroutine; cross-goroutine
// reuse of cost-model results happens through the shared (sharded)
// maestro.Cache they all sit in front of.
type Scheduler struct {
	cache *maestro.Cache
	opts  Options

	// tables is the scheduler's L0 cost cache: per HDA, each model
	// resolves to its per-sub-accelerator columns of interned cost
	// pointers plus precomputed ranking metrics (see costTable). The
	// assignment loop indexes these columns instead of hashing a full
	// (shape, style, HW) key per query — the same results as the
	// shared sharded cache, minus both the locks and the hashing.
	// Columns resolve once per (HDA, model) through the shared cache,
	// and the columns themselves are interned process-wide, so sibling
	// DSE partitions that share a sub-accelerator config never re-walk
	// the cost model.
	tables map[*accel.HDA]map[*dnn.Model]costTable

	// batch is the reusable run state of the whole-workload path: one
	// Schedule call's timelines, ledger, heap and scratch buffers are
	// recycled by the next call, so a DSE sweep's per-partition
	// allocation is the assignments that escape into the returned
	// Schedule, not the entire loop state.
	batch *runState

	// sim is the post-processing trial scratch (see post.go).
	sim simState

	// spare is a recycled assignment buffer (see Recycle).
	spare []Assignment
}

// New returns a scheduler over the given cost cache.
func New(cache *maestro.Cache, opts Options) (*Scheduler, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{
		cache:  cache,
		opts:   opts,
		tables: make(map[*accel.HDA]map[*dnn.Model]costTable),
	}, nil
}

// costTable is one (HDA, model) resolution: the interned per-sub
// cost columns (cols[a][layer]) and the scheduler metric of each
// entry (metric[a][layer]), precomputed so the hot ranking loop reads
// a float instead of re-deriving EDP per scheduling step. The values
// are the exact floats Metric.value produces — computing them once
// is bit-identical to computing them every step.
type costTable struct {
	cols   [][]*maestro.Cost
	metric [][]float64
}

// MustNew is New for statically-valid options.
func MustNew(cache *maestro.Cache, opts Options) *Scheduler {
	s, err := New(cache, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Options returns the scheduler's configuration.
func (s *Scheduler) Options() Options { return s.opts }

// maxTables bounds the per-HDA cost-column tables a scheduler retains.
// Tables are keyed by HDA pointer, so entries for discarded HDAs can
// never be re-hit; a scheduler fed a stream of fresh HDAs (a user-
// driven re-partitioning loop) would otherwise grow without bound.
// Eviction drops everything — tables rebuild cheaply through the
// shared interned column cache — and the cap is sized above any
// realistic sweep (a dse worker caches one HDA per partition so its
// tables stay warm across re-sweeps; wiping them mid-sweep would
// silently forfeit exactly that reuse, hence maxTables matches the
// sweeper's own memo cap).
const maxTables = 4096

// tableFor returns (creating if needed) the per-model cost-column
// table of one HDA.
func (s *Scheduler) tableFor(h *accel.HDA) map[*dnn.Model]costTable {
	t := s.tables[h]
	if t == nil {
		if len(s.tables) >= maxTables {
			clear(s.tables)
		}
		t = make(map[*dnn.Model]costTable)
		s.tables[h] = t
	}
	return t
}

// costCols returns model m's cost table on HDA h, resolving the
// columns through the shared interned column cache (and deriving the
// metric columns) on the model's first appearance.
func (s *Scheduler) costCols(h *accel.HDA, t map[*dnn.Model]costTable, m *dnn.Model) costTable {
	if ct, ok := t[m]; ok {
		return ct
	}
	ct := costTable{
		cols:   make([][]*maestro.Cost, len(h.Subs)),
		metric: make([][]float64, len(h.Subs)),
	}
	for a := range h.Subs {
		col := s.cache.CostColumn(m, h.Subs[a].Style, h.Subs[a].HW)
		ct.cols[a] = col
		mv := make([]float64, len(col))
		for li, c := range col {
			mv[li] = s.opts.Metric.value(c)
		}
		ct.metric[a] = mv
	}
	t[m] = ct
	return ct
}

// Prewarm resolves the cost columns of every model in w on HDA h
// without scheduling anything, so a later Schedule/Incremental run (or
// a DSE bound computation sharing the same interned columns) starts
// with a hot L0 table — useful for serving cold-start and for sweep
// handles that keep per-worker schedulers across searches.
func (s *Scheduler) Prewarm(h *accel.HDA, w *workload.Workload) {
	if h == nil || w == nil {
		return
	}
	t := s.tableFor(h)
	for i := range w.Instances {
		s.costCols(h, t, w.Instances[i].Model)
	}
}

// Recycle returns a schedule's assignment storage to the scheduler for
// reuse by a later Schedule call. Only safe when the caller owns the
// schedule and is dropping its last reference (a best-only DSE sweep
// discarding a losing design point); the schedule's Assignments are
// nilled to make accidental reuse loud.
func (s *Scheduler) Recycle(sch *Schedule) {
	if sch == nil || sch.Assignments == nil {
		return
	}
	if cap(sch.Assignments) > cap(s.spare) {
		s.spare = sch.Assignments[:0]
	}
	sch.Assignments = nil
}

// takeAssignments returns an empty assignment buffer with capacity for
// n commits, preferring the recycled spare over a fresh allocation.
func (s *Scheduler) takeAssignments(n int) []Assignment {
	if cap(s.spare) >= n {
		buf := s.spare[:0]
		s.spare = nil
		return buf
	}
	return make([]Assignment, 0, n)
}

// Schedule runs the Fig. 8 layer assignment and ordering algorithm
// followed (if enabled) by the Fig. 9 post-processing pass.
func (s *Scheduler) Schedule(h *accel.HDA, w *workload.Workload) (*Schedule, error) {
	if h == nil || len(h.Subs) == 0 {
		return nil, fmt.Errorf("sched: nil or empty HDA")
	}
	if w == nil || len(w.Instances) == 0 {
		return nil, fmt.Errorf("sched: nil or empty workload")
	}
	start := time.Now() //herald:nondet SchedulingTime is a diagnostic; placement never reads the wall clock

	sch, err := s.assign(h, w)
	if err != nil {
		return nil, err
	}
	if s.opts.PostProcess && len(h.Subs) > 1 {
		if improved, err := s.postProcess(h, w, sch); err == nil && improved != nil {
			sch = improved
		}
	}
	sch.SchedulingTime = time.Since(start) //herald:nondet SchedulingTime is a diagnostic; placement never reads the wall clock
	return sch, nil
}

// runSlot is one committed execution interval in the memory ledger.
type runSlot struct {
	start, end int64
	occ        int64
}

// ledger is the shared-buffer memory ledger: committed assignment
// intervals, kept per sub-accelerator. Per-sub-accelerator commits are
// serial (each start is at least the previous end), so within one
// sub-accelerator both starts and ends are non-decreasing — an overlap
// query reduces to two binary searches plus an occupancy prefix-sum
// difference, instead of the full-ledger rescan per commit attempt
// the original implementation did.
type ledger struct {
	slots [][]runSlot // per sub-acc, sorted by start AND end
	pre   [][]int64   // pre[a][i] = total occupancy of slots[a][:i]
	head  []int       // per sub-acc: first slot not yet pruned
}

func (lg *ledger) init(nAcc int) {
	lg.slots = make([][]runSlot, nAcc)
	lg.pre = make([][]int64, nAcc)
	lg.head = make([]int, nAcc)
	for a := range lg.pre {
		lg.pre[a] = []int64{0}
	}
}

// reset empties the ledger for a fresh run on an nAcc-way HDA, keeping
// the slot/prefix capacity earlier runs grew.
func (lg *ledger) reset(nAcc int) {
	if len(lg.slots) != nAcc {
		lg.init(nAcc)
		return
	}
	for a := range lg.slots {
		if lg.slots[a] != nil {
			lg.slots[a] = lg.slots[a][:0]
		}
		lg.pre[a] = append(lg.pre[a][:0], 0)
		lg.head[a] = 0
	}
}

// grow pre-sizes each sub-accelerator's slot array for n upcoming
// commits (the batch path knows the workload size up front).
func (lg *ledger) grow(n int) {
	for a := range lg.slots {
		if lg.slots[a] == nil {
			lg.slots[a] = make([]runSlot, 0, n)
			lg.pre[a] = append(make([]int64, 0, n+1), 0)
		}
	}
}

// add appends one committed interval (starts are non-decreasing per
// sub-accelerator by construction).
func (lg *ledger) add(acc int, sl runSlot) {
	lg.slots[acc] = append(lg.slots[acc], sl)
	p := lg.pre[acc]
	lg.pre[acc] = append(p, p[len(p)-1]+sl.occ)
}

// prune advances the head past slots ending at or before floor (they
// can never overlap future work) and compacts the backing arrays once
// the dead prefix dominates, so a long-lived incremental schedule's
// ledger tracks the live window, not all history.
func (lg *ledger) prune(acc int, floor int64) {
	sl := lg.slots[acc]
	h := lg.head[acc]
	for h < len(sl) && sl[h].end <= floor {
		h++
	}
	lg.head[acc] = h
	if h >= 64 && 2*h >= len(sl) {
		lg.slots[acc] = sl[:copy(sl, sl[h:])]
		p := lg.pre[acc]
		lg.pre[acc] = p[:copy(p, p[h:])]
		lg.head[acc] = 0
	}
}

// overlap returns the summed occupancy of the sub-accelerator's slots
// whose execution interval truly overlaps [startT, endT).
func (lg *ledger) overlap(acc int, startT, endT int64) int64 {
	sl := lg.slots[acc]
	// First slot with end > startT (ends are non-decreasing).
	lo, hi := lg.head[acc], len(sl)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sl[mid].end > startT {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	first := lo
	// First slot with start >= endT (starts are non-decreasing).
	hi = len(sl)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sl[mid].start >= endT {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lg.pre[acc][lo] - lg.pre[acc][first]
}

// clone deep-copies the ledger (checkpoint support).
func (lg *ledger) clone() ledger {
	c := ledger{
		slots: make([][]runSlot, len(lg.slots)),
		pre:   make([][]int64, len(lg.pre)),
		head:  append([]int(nil), lg.head...),
	}
	for a := range lg.slots {
		c.slots[a] = append([]runSlot(nil), lg.slots[a]...)
		c.pre[a] = append([]int64(nil), lg.pre[a]...)
	}
	return c
}

// event is one entry of the completion/readiness min-heap. Entries
// are validated lazily at pop time against the live free/ready
// values, so a superseded entry costs one pop instead of a heap
// deletion. A commit produces a single event carrying both the
// sub-accelerator and the instance whose times advanced to t (they
// are equal by construction): the entry stays valid while either
// live value still matches, exactly as the two separate entries it
// replaces would, at half the heap traffic. Seed entries carry only
// one side (the other index is -1).
type event struct {
	t    int64
	acc  int32 // sub-accelerator whose free[acc] == t, or -1
	inst int32 // instance whose ready[inst] == t, or -1
}

// candidate is one (sub-accelerator, cost) pair under ranking in
// tryAssign. It carries the interned cost pointer: ranking shuffles
// 32-byte entries, not ~250-byte Cost structs.
type candidate struct {
	acc    int
	finish int64
	metric float64
	cost   *maestro.Cost
}

// rankedBefore reports whether c ranks strictly before o: by earliest
// completion when the load-balancing feedback is active, by the
// preference metric otherwise, with the sub-accelerator index as the
// final tie-break. The order is strict and total, so any correct sort
// of candidates is unique.
func (c *candidate) rankedBefore(o *candidate, byFinish bool) bool {
	if byFinish && c.finish != o.finish {
		return c.finish < o.finish
	}
	if c.metric != o.metric {
		return c.metric < o.metric
	}
	return c.acc < o.acc
}

// handoff is one inter-segment activation buffer: a pipeline
// predecessor's final output occupying the shared global buffer from
// the predecessor's completion (start) until the successor's first
// layer starts (end; -1 while the successor has not started). succ
// names the waiting successor instance.
type handoff struct {
	start, end int64
	occ        int64
	succ       int32
}

// runState is the mutable state of the Fig. 8 main loop. It is also
// the persistent state of the incremental scheduling path: the
// per-sub-accelerator timelines, the memory ledger and the committed
// assignments survive across Extend calls, so a new admission is
// scheduled against everything already committed.
type runState struct {
	free      []int64 // per sub-accelerator: next free cycle
	busy      []int64 // per sub-accelerator: total busy cycles
	nextLayer []int   // per instance: next unscheduled layer
	ready     []int64 // per instance: completion time of its last layer
	order     []int   // instance visitation order (rearranged per Ordering)
	prio      []int   // per instance: QoS priority (higher first)
	pred      []int32 // per instance: pipeline predecessor (-1 = none)
	succ      []int32 // per instance: pipeline successor (-1 = none)
	ledger    ledger  // committed assignments not yet pruned (memory ledger)

	// handoffs are the live inter-segment activation buffers (see
	// handoff). The slice holds one entry per in-flight fused chain at
	// most, is empty whenever no admission carried a predecessor, and
	// released entries are dropped once they fall behind the prune
	// floor.
	handoffs []handoff

	// prune is the memory-ledger prune floor: slots ending at or
	// before it can never overlap future work. The batch path advances
	// it with the loop cycle; the incremental path pins it to the
	// admission floor, because a later Extend may legally place work
	// at cycles earlier than where this run's loop ended.
	prune int64

	// events is the completion/readiness min-heap behind nextEvent;
	// reseeded at the start of every run (see seedEvents). cands is
	// tryAssign's scratch ranking buffer. Both are reused so the
	// steady-state assignment loop allocates nothing.
	events []event
	cands  []candidate

	// costs is this run's HDA cost-column table (see Scheduler.tableFor)
	// and rows its per-instance resolution: rows[i] is instance i's
	// model cost table (cols[a][layer] + metric[a][layer]), so the hot
	// loop indexes arrays instead of performing any cache lookup at
	// all.
	costs map[*dnn.Model]costTable
	rows  []costTable

	assignments []Assignment
	energyPJ    float64
	remaining   int
}

// newRunState returns an empty run state for an nAcc-way HDA.
func newRunState(nAcc int) *runState {
	st := &runState{
		free: make([]int64, nAcc),
		busy: make([]int64, nAcc),
	}
	st.ledger.init(nAcc)
	return st
}

// reset rewinds a reusable run state for a fresh batch run on an
// nAcc-way HDA: every array is emptied in place (capacity kept from
// earlier runs) except assignments, which escaped into the previous
// run's Schedule and must not be recycled.
func (st *runState) reset(nAcc int) {
	if len(st.free) != nAcc {
		st.free = make([]int64, nAcc)
		st.busy = make([]int64, nAcc)
	} else {
		for a := range st.free {
			st.free[a] = 0
			st.busy[a] = 0
		}
	}
	st.nextLayer = st.nextLayer[:0]
	st.ready = st.ready[:0]
	st.order = st.order[:0]
	st.prio = st.prio[:0]
	st.pred = st.pred[:0]
	st.succ = st.succ[:0]
	st.handoffs = st.handoffs[:0]
	st.rows = st.rows[:0]
	st.ledger.reset(nAcc)
	st.prune = 0
	st.events = st.events[:0]
	st.costs = nil
	st.assignments = nil
	st.energyPJ = 0
	st.remaining = 0
}

// addInstances appends instances (with priorities) to the run state;
// their first layers become ready at their arrival cycles.
func (st *runState) addInstances(insts []workload.Instance, prios []int) {
	for i, in := range insts {
		st.nextLayer = append(st.nextLayer, 0)
		st.ready = append(st.ready, in.ArrivalCycle)
		st.order = append(st.order, len(st.prio))
		p := 0
		if i < len(prios) {
			p = prios[i]
		}
		st.prio = append(st.prio, p)
		st.pred = append(st.pred, -1)
		st.succ = append(st.succ, -1)
		st.remaining += in.Model.NumLayers()
	}
	// QoS priorities: visit higher-priority instances first; the
	// Ordering heuristic arbitrates within a priority band (stable
	// sort preserves the previous visitation order).
	sort.SliceStable(st.order, func(i, j int) bool {
		return st.prio[st.order[i]] > st.prio[st.order[j]]
	})
}

// link wires one admission batch's pipeline precedence into the run
// state (addInstances must have run first). A predecessor that is
// already complete hands its output over immediately: the successor
// cannot become ready before the predecessor's recorded completion,
// and the activation has occupied the global buffer since then.
func (st *runState) link(base int, adms []Admission, insts []workload.Instance) {
	for i, a := range adms {
		if a.After == 0 {
			continue
		}
		p, sc := a.After-1, base+i
		st.pred[sc] = int32(p)
		st.succ[p] = int32(sc)
		if st.nextLayer[p] >= insts[p].Model.NumLayers() {
			if st.ready[p] > st.ready[sc] {
				st.ready[sc] = st.ready[p]
			}
			st.handoffs = append(st.handoffs, handoff{
				start: st.ready[p], end: -1,
				occ:  outputBytes(insts[p].Model),
				succ: int32(sc),
			})
		}
	}
}

// unlink clears the successor links a failed Extend set on
// pre-existing instances (restore truncates the batch's own entries,
// but cannot see cross-batch writes).
func (st *runState) unlink(base int, adms []Admission) {
	for _, a := range adms {
		if a.After != 0 && a.After-1 < base {
			st.succ[a.After-1] = -1
		}
	}
}

// closeHandoff releases a successor's incoming handoff buffer: the
// predecessor's output leaves the global buffer once the successor's
// first layer starts consuming it.
func (st *runState) closeHandoff(inst int, startT int64) {
	for i := range st.handoffs {
		if st.handoffs[i].succ == int32(inst) && st.handoffs[i].end < 0 {
			st.handoffs[i].end = startT
			return
		}
	}
}

// handoffOverlap sums the inter-segment activation buffers live during
// [startT, endT), skipping the querying instance's own incoming buffer
// (its input is what the layer consumes, not an extra resident), and
// dropping released buffers that fell behind the prune floor.
func (st *runState) handoffOverlap(inst int, startT, endT int64) int64 {
	var sum int64
	live := st.handoffs[:0]
	for _, h := range st.handoffs {
		if h.end >= 0 && h.end <= st.prune {
			continue
		}
		live = append(live, h)
		if int(h.succ) == inst {
			continue
		}
		if h.start < endT && (h.end < 0 || h.end > startT) {
			sum += h.occ
		}
	}
	st.handoffs = live
	return sum
}

// outputBytes returns the size of a model's final output activation —
// the inter-segment handoff buffer a fused successor consumes. Element
// counts double as bytes, matching the cost model's activation traffic
// convention.
func outputBytes(m *dnn.Model) int64 {
	return m.Layers[len(m.Layers)-1].OutputElems()
}

// checkpointState captures everything a failed incremental run must
// roll back: whole copies of the state run() mutates in place, and
// lengths of the append-only per-instance arrays. The event heap is
// not captured — every run reseeds it.
type checkpointState struct {
	free, busy []int64
	order      []int
	ledger     ledger
	handoffs   []handoff
	nInsts     int // nextLayer/ready/prio length
	nAssign    int
	remaining  int
	energyPJ   float64
	prune      int64
}

// checkpoint snapshots the run state (cost: O(subs + active + ledger)).
func (st *runState) checkpoint() checkpointState {
	return checkpointState{
		free:      append([]int64(nil), st.free...),
		busy:      append([]int64(nil), st.busy...),
		order:     append([]int(nil), st.order...),
		ledger:    st.ledger.clone(),
		handoffs:  append([]handoff(nil), st.handoffs...),
		nInsts:    len(st.nextLayer),
		nAssign:   len(st.assignments),
		remaining: st.remaining,
		energyPJ:  st.energyPJ,
		prune:     st.prune,
	}
}

// restore rewinds the run state to a checkpoint.
func (st *runState) restore(c checkpointState) {
	st.free = c.free
	st.busy = c.busy
	st.order = c.order
	st.ledger = c.ledger
	st.handoffs = c.handoffs
	st.nextLayer = st.nextLayer[:c.nInsts]
	st.ready = st.ready[:c.nInsts]
	st.prio = st.prio[:c.nInsts]
	st.pred = st.pred[:c.nInsts]
	st.succ = st.succ[:c.nInsts]
	if len(st.rows) > c.nInsts {
		st.rows = st.rows[:c.nInsts]
	}
	st.assignments = st.assignments[:c.nAssign]
	st.remaining = c.remaining
	st.energyPJ = c.energyPJ
	st.prune = c.prune
}

// retire drops fully-scheduled instances from the visitation order so
// a long-lived incremental schedule's per-admission cost tracks the
// number of *active* instances, not every instance ever admitted.
func (st *runState) retire(insts []workload.Instance) {
	active := st.order[:0]
	for _, inst := range st.order {
		if st.nextLayer[inst] < insts[inst].Model.NumLayers() {
			active = append(active, inst)
		}
	}
	st.order = active
}

// assign is the whole-workload entry point of Fig. 8: it rewinds the
// scheduler's reusable batch run state, admits every instance, and
// drains it with run. Only the assignments (which escape into the
// returned Schedule) are freshly allocated per call.
func (s *Scheduler) assign(h *accel.HDA, w *workload.Workload) (*Schedule, error) {
	n := len(w.Instances)
	if len(s.opts.Priorities) > 0 && len(s.opts.Priorities) != n {
		return nil, fmt.Errorf("sched: %d priorities for %d instances", len(s.opts.Priorities), n)
	}
	if s.batch == nil {
		s.batch = newRunState(len(h.Subs))
	}
	st := s.batch
	st.reset(len(h.Subs))
	st.costs = s.tableFor(h)
	st.addInstances(w.Instances, s.opts.Priorities)
	st.assignments = s.takeAssignments(st.remaining)
	st.ledger.grow(st.remaining)

	if err := s.run(h, w.Instances, st, 0, true); err != nil {
		return nil, err
	}
	return s.finalize(h, w, st), nil
}

// run is the direct codification of Fig. 8's main loop: it drains
// st.remaining layers of insts, starting the scheduling clock at the
// given cycle. advancePrune moves the memory-ledger prune floor along
// with the clock (valid only when no later run may revisit earlier
// cycles, i.e. the batch path).
func (s *Scheduler) run(h *accel.HDA, insts []workload.Instance, st *runState, cycle int64, advancePrune bool) error {
	// Resolve each (new) instance's cost table up front: the loop
	// body then reads costs by array index only.
	for i := len(st.rows); i < len(insts); i++ {
		ct, ok := st.costs[insts[i].Model]
		if !ok {
			ct = s.costCols(h, st.costs, insts[i].Model)
		}
		st.rows = append(st.rows, ct)
	}
	// The heap peaks at the seed entries plus one push per commit;
	// reserving that up front keeps the drain reallocation-free.
	if need := len(st.free) + len(st.order) + st.remaining; cap(st.events) < need {
		st.events = make([]event, 0, need)
	}
	st.seedEvents()
	for st.remaining > 0 {
		if advancePrune && cycle > st.prune {
			st.prune = cycle
		}
		assignedInst := -1
		for _, inst := range st.order {
			li := st.nextLayer[inst]
			if li >= insts[inst].Model.NumLayers() {
				continue
			}
			// Pipeline precedence: a fused successor may not start
			// until its predecessor instance has fully committed (its
			// completion then raises ready below).
			if p := st.pred[inst]; p >= 0 && st.nextLayer[p] < insts[p].Model.NumLayers() {
				continue
			}
			// Dependence condition: the previous layer of this model
			// instance must be complete at the current cycle.
			if st.ready[inst] > cycle {
				continue
			}
			if s.tryAssign(h, insts, st, cycle, inst, li) {
				assignedInst = inst
				break
			}
		}
		if assignedInst >= 0 {
			s.rearrange(st, assignedInst)
			continue
		}
		// Failed to schedule anything at this cycle: defer execution to
		// the next completion event (Fig. 8's nextLayerCompletionTime).
		next, ok := st.nextEvent(cycle)
		if !ok {
			return fmt.Errorf("sched: no schedulable layer and no pending event at cycle %d (memory deadlock?)", cycle)
		}
		cycle = next
	}
	return nil
}

// tryAssign evaluates the layer on every sub-accelerator, ranks them by
// the configured metric, and assigns to the best candidate satisfying
// the memory and load-balancing conditions (falling back to the best
// memory-feasible candidate when balancing rejects all).
func (s *Scheduler) tryAssign(h *accel.HDA, insts []workload.Instance, st *runState, cycle int64, inst, li int) bool {
	ct := st.rows[inst]
	nAcc := len(h.Subs)

	// Dataflow-preference-based assignment by default; when the load
	// across sub-accelerators is unbalanced, the feedback loop instead
	// ranks by earliest completion time — the alternative assignment
	// that reduces overall cost (§IV-D's global load-balancing).
	byFinish := s.imbalanced(st, cycle)

	if cap(st.cands) < nAcc {
		st.cands = make([]candidate, 0, nAcc)
	}
	cands := st.cands[:0]
	for a := 0; a < nAcc; a++ {
		c := ct.cols[a][li]
		nc := candidate{
			acc: a, cost: c,
			metric: ct.metric[a][li],
			finish: max(cycle, st.free[a]) + c.Cycles,
		}
		// Insertion-ordered ranking into the scratch buffer:
		// sub-accelerator counts are tiny, so this replaces a
		// sort.Slice call (and its per-layer closure allocations).
		i := len(cands)
		cands = append(cands, nc)
		for i > 0 && nc.rankedBefore(&cands[i-1], byFinish) {
			cands[i] = cands[i-1]
			i--
		}
		cands[i] = nc
	}

	for i := range cands {
		c := &cands[i]
		startT := max(cycle, st.free[c.acc])
		endT := startT + c.cost.Cycles
		if !s.memOK(h, st, inst, startT, endT, c.cost.OccupancyBytes) {
			continue
		}
		st.free[c.acc] = endT
		st.busy[c.acc] += c.cost.Cycles
		st.ready[inst] = endT
		st.nextLayer[inst]++
		st.remaining--
		st.energyPJ += c.cost.Energy.Total()
		st.ledger.add(c.acc, runSlot{start: startT, end: endT, occ: c.cost.OccupancyBytes})
		st.pushEvent(endT, c.acc, inst)
		st.assignments = append(st.assignments, Assignment{
			Instance: inst, Layer: li, SubAcc: c.acc,
			Start: startT, End: endT, Cost: c.cost,
		})
		if li == 0 && st.pred[inst] >= 0 {
			// First layer of a fused successor: release the incoming
			// handoff buffer at its start.
			st.closeHandoff(inst, startT)
		}
		if li+1 == insts[inst].Model.NumLayers() {
			if sc := st.succ[inst]; sc >= 0 {
				// Last layer of a fused predecessor: the successor
				// becomes ready at completion, and the output
				// activation occupies the buffer until it starts.
				if endT > st.ready[sc] {
					st.ready[sc] = endT
				}
				st.handoffs = append(st.handoffs, handoff{
					start: endT, end: -1,
					occ:  outputBytes(insts[inst].Model),
					succ: sc,
				})
			}
		}
		return true
	}
	return false // no memory-feasible sub-accelerator at this cycle; defer
}

// imbalanced implements the unbalanced-load detector of §IV-D: the
// largest *pending* work (queue depth beyond the current cycle) across
// sub-accelerators divided by the smallest exceeds the user's maximum
// allowed load-unbalancing factor. While balanced, assignment follows
// pure dataflow preference; once unbalanced, the feedback loop
// switches to completion-time-aware assignment. A sub-accelerator
// sitting idle while another has a queue is the canonical imbalance.
func (s *Scheduler) imbalanced(st *runState, cycle int64) bool {
	lbf := s.opts.LoadBalanceFactor
	if lbf >= inf() {
		return false
	}
	var lo, hi int64
	for i, f := range st.free {
		d := f - cycle
		if d < 0 {
			d = 0
		}
		if i == 0 || d < lo {
			lo = d
		}
		if i == 0 || d > hi {
			hi = d
		}
	}
	if hi == 0 {
		return false // everything idle: pure preference
	}
	if lo <= 0 {
		return true // someone idle while someone else queues
	}
	return float64(hi) > lbf*float64(lo)
}

// memOK checks the global-memory-size condition: the sum of buffer
// occupancies of all assignments whose execution interval truly
// overlaps the candidate's [startT, endT), plus the live inter-segment
// handoff buffers, plus the new layer's occupancy, must fit the shared
// global buffer. The ledger prunes incrementally by the
// monotonically-advancing prune floor (in the incremental path the
// floor lags the loop cycle, because future admissions may place work
// before where this run's clock ended).
func (s *Scheduler) memOK(h *accel.HDA, st *runState, inst int, startT, endT, occ int64) bool {
	sum := occ
	for a := range st.ledger.slots {
		st.ledger.prune(a, st.prune)
		sum += st.ledger.overlap(a, startT, endT)
	}
	if len(st.handoffs) > 0 {
		sum += st.handoffOverlap(inst, startT, endT)
	}
	return sum <= h.Class.GlobalBufBytes
}

// rearrange applies the layer-ordering strategy after a successful
// assignment (Fig. 8's rearrange(MD)).
func (s *Scheduler) rearrange(st *runState, inst int) {
	if s.opts.Ordering == DepthFirst {
		return // keep draining the same model
	}
	// Breadth-first: rotate the just-served instance to the back of
	// its priority band (the global back when no priorities are set).
	pos := -1
	for i, v := range st.order {
		if v == inst {
			pos = i
			break
		}
	}
	if pos < 0 {
		return
	}
	p := st.prio[inst]
	end := pos
	for end+1 < len(st.order) && st.prio[st.order[end+1]] == p {
		end++
	}
	copy(st.order[pos:end], st.order[pos+1:end+1])
	st.order[end] = inst
}

// seedEvents rebuilds the event heap from the live timeline state:
// one completion entry per sub-accelerator and one readiness entry
// per visitable instance. run() reseeds once per drain — within a run
// the scheduling clock is monotone (so pop-side discards are final),
// but a later incremental Extend may restart the clock earlier, which
// a stale heap must not survive.
func (st *runState) seedEvents() {
	st.events = st.events[:0]
	for a, t := range st.free {
		st.pushEvent(t, a, -1)
	}
	for _, inst := range st.order {
		st.pushEvent(st.ready[inst], -1, inst)
	}
}

// pushEvent sifts a new event into the min-heap.
func (st *runState) pushEvent(t int64, acc, inst int) {
	ev := append(st.events, event{t: t, acc: int32(acc), inst: int32(inst)})
	i := len(ev) - 1
	for i > 0 {
		p := (i - 1) / 2
		if ev[p].t <= ev[i].t {
			break
		}
		ev[p], ev[i] = ev[i], ev[p]
		i = p
	}
	st.events = ev
}

// popEvent removes and returns the minimum event.
func (st *runState) popEvent() event {
	ev := st.events
	top := ev[0]
	n := len(ev) - 1
	ev[0] = ev[n]
	ev = ev[:n]
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && ev[r].t < ev[c].t {
			c = r
		}
		if ev[i].t <= ev[c].t {
			break
		}
		ev[i], ev[c] = ev[c], ev[i]
		i = c
	}
	st.events = ev
	return top
}

// nextEvent returns the earliest completion or readiness event after
// the given cycle. Entries that no longer match the live free/ready
// value (superseded by a later commit) or that sit at or before the
// clock are discarded as they surface — within a run the clock is
// monotone, so neither kind can become relevant again.
func (st *runState) nextEvent(cycle int64) (int64, bool) {
	for len(st.events) > 0 {
		e := st.events[0]
		live := e.acc >= 0 && st.free[e.acc] == e.t ||
			e.inst >= 0 && st.ready[e.inst] == e.t
		st.popEvent()
		if !live || e.t <= cycle {
			continue
		}
		return e.t, true
	}
	return 0, false
}

// finalize converts run state into a Schedule with aggregate metrics.
// The busy cycles are copied out: st may be the scheduler's reusable
// batch scratch, which the next Schedule call rewinds.
func (s *Scheduler) finalize(h *accel.HDA, w *workload.Workload, st *runState) *Schedule {
	sch := &Schedule{
		HDA:           h,
		Workload:      w,
		Assignments:   st.assignments,
		EnergyPJ:      st.energyPJ,
		SubBusyCycles: append([]int64(nil), st.busy...),
	}
	for i := range sch.Assignments {
		if e := sch.Assignments[i].End; e > sch.MakespanCycles {
			sch.MakespanCycles = e
		}
	}
	return sch
}

// occEvent is one entry of the peak-occupancy sweep: an encoded key
// (cycle << 1, releases before claims at the same cycle) and an
// occupancy delta.
type occEvent struct {
	key int64 // t<<1 | kind: release (end) = 0, claim (start) = 1
	d   int64
}

// peakOccupancySweep sweeps assignment intervals and returns the
// maximum concurrent global-buffer occupancy. Events sort by an
// encoded key through the generic sort, avoiding sort.Slice's
// reflection-based swaps. It runs only for schedules whose peak is
// actually read (see Schedule.PeakOccupancyBytes) plus Validate, so
// it allocates its own event buffer.
func peakOccupancySweep(as []Assignment) int64 {
	evs := make([]occEvent, 0, 2*len(as))
	for i := range as {
		evs = append(evs,
			occEvent{key: as[i].Start<<1 | 1, d: as[i].Cost.OccupancyBytes},
			occEvent{key: as[i].End << 1, d: -as[i].Cost.OccupancyBytes})
	}
	slices.SortFunc(evs, func(a, b occEvent) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
	var cur, peak int64
	for _, e := range evs {
		cur += e.d
		if cur > peak {
			peak = cur
		}
	}
	return peak
}
