package sched

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/accel"
	"repro/internal/maestro"
	"repro/internal/workload"
)

// Scheduler generates layer execution schedules for HDAs using a
// shared cost-model cache.
type Scheduler struct {
	cache *maestro.Cache
	opts  Options
}

// New returns a scheduler over the given cost cache.
func New(cache *maestro.Cache, opts Options) (*Scheduler, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{cache: cache, opts: opts}, nil
}

// MustNew is New for statically-valid options.
func MustNew(cache *maestro.Cache, opts Options) *Scheduler {
	s, err := New(cache, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Options returns the scheduler's configuration.
func (s *Scheduler) Options() Options { return s.opts }

// Schedule runs the Fig. 8 layer assignment and ordering algorithm
// followed (if enabled) by the Fig. 9 post-processing pass.
func (s *Scheduler) Schedule(h *accel.HDA, w *workload.Workload) (*Schedule, error) {
	if h == nil || len(h.Subs) == 0 {
		return nil, fmt.Errorf("sched: nil or empty HDA")
	}
	if w == nil || len(w.Instances) == 0 {
		return nil, fmt.Errorf("sched: nil or empty workload")
	}
	start := time.Now()

	sch, err := s.assign(h, w)
	if err != nil {
		return nil, err
	}
	if s.opts.PostProcess && len(h.Subs) > 1 {
		if improved, err := s.postProcess(h, w, sch); err == nil && improved != nil {
			sch = improved
		}
	}
	sch.SchedulingTime = time.Since(start)
	return sch, nil
}

// runState is the mutable state of the Fig. 8 main loop. It is also
// the persistent state of the incremental scheduling path: the
// per-sub-accelerator timelines, the memory ledger and the committed
// assignments survive across Extend calls, so a new admission is
// scheduled against everything already committed.
type runState struct {
	free      []int64   // per sub-accelerator: next free cycle
	busy      []int64   // per sub-accelerator: total busy cycles
	nextLayer []int     // per instance: next unscheduled layer
	ready     []int64   // per instance: completion time of its last layer
	order     []int     // instance visitation order (rearranged per Ordering)
	prio      []int     // per instance: QoS priority (higher first)
	running   []runSlot // committed assignments not yet pruned (memory ledger)

	// prune is the memory-ledger prune floor: slots ending at or
	// before it can never overlap future work. The batch path advances
	// it with the loop cycle; the incremental path pins it to the
	// admission floor, because a later Extend may legally place work
	// at cycles earlier than where this run's loop ended.
	prune int64

	assignments []Assignment
	energyPJ    float64
	remaining   int
}

// addInstances appends instances (with priorities) to the run state;
// their first layers become ready at their arrival cycles.
func (st *runState) addInstances(insts []workload.Instance, prios []int) {
	for i, in := range insts {
		st.nextLayer = append(st.nextLayer, 0)
		st.ready = append(st.ready, in.ArrivalCycle)
		st.order = append(st.order, len(st.prio))
		p := 0
		if i < len(prios) {
			p = prios[i]
		}
		st.prio = append(st.prio, p)
		st.remaining += in.Model.NumLayers()
	}
	// QoS priorities: visit higher-priority instances first; the
	// Ordering heuristic arbitrates within a priority band (stable
	// sort preserves the previous visitation order).
	sort.SliceStable(st.order, func(i, j int) bool {
		return st.prio[st.order[i]] > st.prio[st.order[j]]
	})
}

// checkpointState captures everything a failed incremental run must
// roll back: whole copies of the slices run() mutates in place, and
// lengths of the append-only per-instance arrays.
type checkpointState struct {
	free, busy []int64
	order      []int
	running    []runSlot
	nInsts     int // nextLayer/ready/prio length
	nAssign    int
	remaining  int
	energyPJ   float64
	prune      int64
}

// checkpoint snapshots the run state (cost: O(subs + active + ledger)).
func (st *runState) checkpoint() checkpointState {
	return checkpointState{
		free:      append([]int64(nil), st.free...),
		busy:      append([]int64(nil), st.busy...),
		order:     append([]int(nil), st.order...),
		running:   append([]runSlot(nil), st.running...),
		nInsts:    len(st.nextLayer),
		nAssign:   len(st.assignments),
		remaining: st.remaining,
		energyPJ:  st.energyPJ,
		prune:     st.prune,
	}
}

// restore rewinds the run state to a checkpoint.
func (st *runState) restore(c checkpointState) {
	st.free = c.free
	st.busy = c.busy
	st.order = c.order
	st.running = c.running
	st.nextLayer = st.nextLayer[:c.nInsts]
	st.ready = st.ready[:c.nInsts]
	st.prio = st.prio[:c.nInsts]
	st.assignments = st.assignments[:c.nAssign]
	st.remaining = c.remaining
	st.energyPJ = c.energyPJ
	st.prune = c.prune
}

// retire drops fully-scheduled instances from the visitation order so
// a long-lived incremental schedule's per-admission cost tracks the
// number of *active* instances, not every instance ever admitted.
func (st *runState) retire(insts []workload.Instance) {
	active := st.order[:0]
	for _, inst := range st.order {
		if st.nextLayer[inst] < insts[inst].Model.NumLayers() {
			active = append(active, inst)
		}
	}
	st.order = active
}

type runSlot struct {
	start, end int64
	occ        int64
}

// assign is the whole-workload entry point of Fig. 8: it builds fresh
// run state for every instance and drains it with run.
func (s *Scheduler) assign(h *accel.HDA, w *workload.Workload) (*Schedule, error) {
	n := len(w.Instances)
	if len(s.opts.Priorities) > 0 && len(s.opts.Priorities) != n {
		return nil, fmt.Errorf("sched: %d priorities for %d instances", len(s.opts.Priorities), n)
	}
	st := &runState{
		free: make([]int64, len(h.Subs)),
		busy: make([]int64, len(h.Subs)),
	}
	st.addInstances(w.Instances, s.opts.Priorities)
	st.assignments = make([]Assignment, 0, st.remaining)

	if err := s.run(h, w.Instances, st, 0, true); err != nil {
		return nil, err
	}
	return s.finalize(h, w, st), nil
}

// run is the direct codification of Fig. 8's main loop: it drains
// st.remaining layers of insts, starting the scheduling clock at the
// given cycle. advancePrune moves the memory-ledger prune floor along
// with the clock (valid only when no later run may revisit earlier
// cycles, i.e. the batch path).
func (s *Scheduler) run(h *accel.HDA, insts []workload.Instance, st *runState, cycle int64, advancePrune bool) error {
	for st.remaining > 0 {
		if advancePrune && cycle > st.prune {
			st.prune = cycle
		}
		assignedInst := -1
		for _, inst := range st.order {
			li := st.nextLayer[inst]
			if li >= insts[inst].Model.NumLayers() {
				continue
			}
			// Dependence condition: the previous layer of this model
			// instance must be complete at the current cycle.
			if st.ready[inst] > cycle {
				continue
			}
			if s.tryAssign(h, insts, st, cycle, inst, li) {
				assignedInst = inst
				break
			}
		}
		if assignedInst >= 0 {
			s.rearrange(st, assignedInst)
			continue
		}
		// Failed to schedule anything at this cycle: defer execution to
		// the next completion event (Fig. 8's nextLayerCompletionTime).
		next, ok := s.nextEvent(st, cycle)
		if !ok {
			return fmt.Errorf("sched: no schedulable layer and no pending event at cycle %d (memory deadlock?)", cycle)
		}
		cycle = next
	}
	return nil
}

// tryAssign evaluates the layer on every sub-accelerator, ranks them by
// the configured metric, and assigns to the best candidate satisfying
// the memory and load-balancing conditions (falling back to the best
// memory-feasible candidate when balancing rejects all).
func (s *Scheduler) tryAssign(h *accel.HDA, insts []workload.Instance, st *runState, cycle int64, inst, li int) bool {
	layer := &insts[inst].Model.Layers[li]

	type cand struct {
		acc    int
		cost   maestro.Cost
		metric float64
		finish int64
	}
	cands := make([]cand, len(h.Subs))
	for a := range h.Subs {
		c := s.cache.Estimate(layer, h.Subs[a].Style, h.Subs[a].HW)
		cands[a] = cand{
			acc: a, cost: c,
			metric: s.opts.Metric.value(c),
			finish: max64(cycle, st.free[a]) + c.Cycles,
		}
	}
	// Dataflow-preference-based assignment by default; when the load
	// across sub-accelerators is unbalanced, the feedback loop instead
	// ranks by earliest completion time — the alternative assignment
	// that reduces overall cost (§IV-D's global load-balancing).
	if s.imbalanced(st, cycle) {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].finish != cands[j].finish {
				return cands[i].finish < cands[j].finish
			}
			if cands[i].metric != cands[j].metric {
				return cands[i].metric < cands[j].metric
			}
			return cands[i].acc < cands[j].acc
		})
	} else {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].metric != cands[j].metric {
				return cands[i].metric < cands[j].metric
			}
			return cands[i].acc < cands[j].acc
		})
	}

	commit := func(c cand) bool {
		startT := max64(cycle, st.free[c.acc])
		endT := startT + c.cost.Cycles
		if !s.memOK(h, st, startT, endT, c.cost.OccupancyBytes) {
			return false
		}
		st.free[c.acc] = endT
		st.busy[c.acc] += c.cost.Cycles
		st.ready[inst] = endT
		st.nextLayer[inst]++
		st.remaining--
		st.energyPJ += c.cost.EnergyPJ()
		st.running = append(st.running, runSlot{start: startT, end: endT, occ: c.cost.OccupancyBytes})
		st.assignments = append(st.assignments, Assignment{
			Instance: inst, Layer: li, SubAcc: c.acc,
			Start: startT, End: endT, Cost: c.cost,
		})
		return true
	}

	for _, c := range cands {
		if commit(c) {
			return true
		}
	}
	return false // no memory-feasible sub-accelerator at this cycle; defer
}

// imbalanced implements the unbalanced-load detector of §IV-D: the
// largest *pending* work (queue depth beyond the current cycle) across
// sub-accelerators divided by the smallest exceeds the user's maximum
// allowed load-unbalancing factor. While balanced, assignment follows
// pure dataflow preference; once unbalanced, the feedback loop
// switches to completion-time-aware assignment. A sub-accelerator
// sitting idle while another has a queue is the canonical imbalance.
func (s *Scheduler) imbalanced(st *runState, cycle int64) bool {
	lbf := s.opts.LoadBalanceFactor
	if lbf >= inf() {
		return false
	}
	var lo, hi int64
	for i, f := range st.free {
		d := f - cycle
		if d < 0 {
			d = 0
		}
		if i == 0 || d < lo {
			lo = d
		}
		if i == 0 || d > hi {
			hi = d
		}
	}
	if hi == 0 {
		return false // everything idle: pure preference
	}
	if lo <= 0 {
		return true // someone idle while someone else queues
	}
	return float64(hi) > lbf*float64(lo)
}

// memOK checks the global-memory-size condition: the sum of buffer
// occupancies of all assignments whose execution interval truly
// overlaps the candidate's [startT, endT), plus the new layer's
// occupancy, must fit the shared global buffer. Slots are pruned by
// the monotonically-advancing prune floor (startT of a later commit
// may be smaller than a queued earlier one, so pruning by startT
// would undercount; in the incremental path the floor additionally
// lags the loop cycle, because future admissions may place work
// before where this run's clock ended).
func (s *Scheduler) memOK(h *accel.HDA, st *runState, startT, endT, occ int64) bool {
	live := st.running[:0]
	var sum int64
	for _, r := range st.running {
		if r.end <= st.prune {
			continue // can never overlap future work: prune
		}
		live = append(live, r)
		if r.end > startT && r.start < endT {
			sum += r.occ
		}
	}
	st.running = live
	return sum+occ <= h.Class.GlobalBufBytes
}

// rearrange applies the layer-ordering strategy after a successful
// assignment (Fig. 8's rearrange(MD)).
func (s *Scheduler) rearrange(st *runState, inst int) {
	if s.opts.Ordering == DepthFirst {
		return // keep draining the same model
	}
	// Breadth-first: rotate the just-served instance to the back of
	// its priority band (the global back when no priorities are set).
	pos := -1
	for i, v := range st.order {
		if v == inst {
			pos = i
			break
		}
	}
	if pos < 0 {
		return
	}
	p := st.prio[inst]
	end := pos
	for end+1 < len(st.order) && st.prio[st.order[end+1]] == p {
		end++
	}
	copy(st.order[pos:end], st.order[pos+1:end+1])
	st.order[end] = inst
}

// nextEvent returns the earliest completion or readiness event after
// the given cycle.
func (s *Scheduler) nextEvent(st *runState, cycle int64) (int64, bool) {
	var next int64
	found := false
	consider := func(t int64) {
		if t > cycle && (!found || t < next) {
			next, found = t, true
		}
	}
	for _, t := range st.free {
		consider(t)
	}
	// Only unfinished instances can produce readiness events; going
	// through the visitation order keeps this O(active) after retire.
	for _, inst := range st.order {
		consider(st.ready[inst])
	}
	return next, found
}

// finalize converts run state into a Schedule with aggregate metrics.
func (s *Scheduler) finalize(h *accel.HDA, w *workload.Workload, st *runState) *Schedule {
	sch := &Schedule{
		HDA:           h,
		Workload:      w,
		Assignments:   st.assignments,
		EnergyPJ:      st.energyPJ,
		SubBusyCycles: st.busy,
	}
	for i := range sch.Assignments {
		if e := sch.Assignments[i].End; e > sch.MakespanCycles {
			sch.MakespanCycles = e
		}
	}
	sch.PeakOccupancyBytes = peakOccupancy(sch.Assignments)
	return sch
}

// peakOccupancy sweeps assignment intervals and returns the maximum
// concurrent global-buffer occupancy.
func peakOccupancy(as []Assignment) int64 {
	type ev struct {
		t   int64
		d   int64
		end bool
	}
	evs := make([]ev, 0, 2*len(as))
	for i := range as {
		evs = append(evs,
			ev{t: as[i].Start, d: as[i].Cost.OccupancyBytes},
			ev{t: as[i].End, d: -as[i].Cost.OccupancyBytes, end: true})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].end && !evs[j].end // process releases before claims
	})
	var cur, peak int64
	for _, e := range evs {
		cur += e.d
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
