//go:build !race

package sched

import (
	"testing"

	"repro/internal/workload"
)

// TestSchedulerAllocationBudget pins the steady-state assignment loop
// at zero heap allocations per layer assignment: with a warm cost
// cache, a full scheduling pass may allocate only per-run setup (run
// state, event heap seed, the result Schedule), never per layer. The
// budget is enforced two ways: an absolute per-pass cap far below the
// workload's layer count, and the requirement that scheduling ~9x
// more layers does not allocate more.
//
// (Excluded under -race: the race runtime adds bookkeeping
// allocations that AllocsPerRun would count.)
func TestSchedulerAllocationBudget(t *testing.T) {
	h := maelstromEdge(t)
	cache := newCache()
	opts := DefaultOptions()
	opts.PostProcess = false // measure the Fig. 8 loop itself

	small := workload.MustNew("alloc-small", []workload.Entry{
		{Model: "brq-handpose", Batches: 1},
	})
	big := workload.ARVRB() // 438 layers

	s := MustNew(cache, opts)
	// Warm every cache level (shared, scheduler cost rows).
	for _, w := range []*workload.Workload{small, big} {
		if _, err := s.Schedule(h, w); err != nil {
			t.Fatal(err)
		}
	}

	measure := func(w *workload.Workload) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := s.Schedule(h, w); err != nil {
				t.Fatal(err)
			}
		})
	}
	smallAllocs := measure(small)
	bigAllocs := measure(big)

	layers := int64(big.TotalLayers())
	// Per-run setup costs a few dozen allocations; anything linear in
	// the layer count means the inner loop regressed.
	const budget = 64
	if bigAllocs > budget {
		t.Errorf("full pass over %d layers allocates %.0f times (budget %d): inner loop is no longer allocation-free",
			layers, bigAllocs, budget)
	}
	// The big workload schedules ~9x the layers of the small one; an
	// allocation-free inner loop keeps the per-pass counts within
	// setup noise of each other.
	if bigAllocs > smallAllocs+16 {
		t.Errorf("allocations scale with workload size: %.0f (%d layers) vs %.0f (%d layers)",
			bigAllocs, layers, smallAllocs, int64(small.TotalLayers()))
	}
	if perLayer := bigAllocs / float64(layers); perLayer >= 0.5 {
		t.Errorf("%.3f allocs per layer assignment, want ~0", perLayer)
	}
}
