package sched

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/maestro"
	"repro/internal/workload"
)

// extractSeqs converts a schedule into per-sub-accelerator item
// sequences in start order (assignments are already in commit order,
// which is start order per sub-accelerator).
func extractSeqs(h *accel.HDA, sch *Schedule) [][]item {
	seqs := make([][]item, len(h.Subs))
	for _, a := range sch.Assignments {
		seqs[a.SubAcc] = append(seqs[a.SubAcc], item{inst: a.Instance, layer: a.Layer})
	}
	return seqs
}

// simulate executes fixed per-sub-accelerator sequences and returns
// the resulting schedule (no re-assignment decisions; used to evaluate
// post-processing reorders). Each round it commits the sequence head
// with the earliest feasible start time, respecting dependence, memory
// and sub-accelerator serialization. Returns an error when the
// sequences cross-block (which a reorder can introduce; callers then
// revert). PeakOccupancyBytes is left unset: postProcess evaluates
// trials by makespan and flow time only, and fills the peak in once
// for the surviving schedule.
func (s *Scheduler) simulate(h *accel.HDA, w *workload.Workload, seqs [][]item) (*Schedule, error) {
	n := len(w.Instances)
	free := make([]int64, len(h.Subs))
	busy := make([]int64, len(h.Subs))
	pos := make([]int, len(h.Subs))
	nextLayer := make([]int, n)
	ready := make([]int64, n)
	for i, in := range w.Instances {
		ready[i] = in.ArrivalCycle
	}
	var running []runSlot
	table := s.tableFor(h)
	nAcc := len(h.Subs)
	costAt := func(a int, it item) *maestro.Cost {
		m := w.Instances[it.inst].Model
		row, ok := table[m]
		if !ok {
			row = s.costRow(h, table, m)
		}
		return row[it.layer*nAcc+a]
	}

	total := 0
	for a := range seqs {
		total += len(seqs[a])
	}
	assignments := make([]Assignment, 0, total)
	var energy float64

	for committed := 0; committed < total; {
		bestAcc := -1
		var bestStart int64
		for a := range seqs {
			if pos[a] >= len(seqs[a]) {
				continue
			}
			it := seqs[a][pos[a]]
			if it.layer != nextLayer[it.inst] {
				continue // blocked on a predecessor queued elsewhere
			}
			startT := max(free[a], ready[it.inst])
			cost := costAt(a, it)
			startT, ok := memFeasibleStart(h, running, startT, cost.Cycles, cost.OccupancyBytes)
			if !ok {
				continue
			}
			if bestAcc < 0 || startT < bestStart {
				bestAcc = a
				bestStart = startT
			}
		}
		if bestAcc < 0 {
			return nil, fmt.Errorf("sched: simulate: sequences cross-block after %d of %d commits", committed, total)
		}

		a := bestAcc
		it := seqs[a][pos[a]]
		cost := costAt(a, it)
		end := bestStart + cost.Cycles
		pos[a]++
		nextLayer[it.inst]++
		free[a] = end
		busy[a] += cost.Cycles
		ready[it.inst] = end
		energy += cost.Energy.Total()
		running = pruneSlots(running, bestStart)
		running = append(running, runSlot{start: bestStart, end: end, occ: cost.OccupancyBytes})
		assignments = append(assignments, Assignment{
			Instance: it.inst, Layer: it.layer, SubAcc: a,
			Start: bestStart, End: end, Cost: *cost,
		})
		committed++
	}

	sch := &Schedule{
		HDA: h, Workload: w,
		Assignments:   assignments,
		EnergyPJ:      energy,
		SubBusyCycles: busy,
	}
	for i := range assignments {
		if e := assignments[i].End; e > sch.MakespanCycles {
			sch.MakespanCycles = e
		}
	}
	return sch, nil
}

// pruneSlots drops slots that ended at or before t. Safe here because
// simulate commits in non-decreasing start order (it always picks the
// earliest feasible start).
func pruneSlots(running []runSlot, t int64) []runSlot {
	live := running[:0]
	for _, r := range running {
		if r.end > t {
			live = append(live, r)
		}
	}
	return live
}

// memFeasibleStart returns the earliest start >= startT at which the
// occupancy fits the global buffer for the layer's whole duration,
// delaying past running completions as needed.
func memFeasibleStart(h *accel.HDA, running []runSlot, startT, dur, occ int64) (int64, bool) {
	for iter := 0; iter <= len(running)+1; iter++ {
		endT := startT + dur
		var sum int64
		var nextEnd int64
		haveNext := false
		for _, r := range running {
			if r.end > startT {
				if r.start < endT {
					sum += r.occ
				}
				if !haveNext || r.end < nextEnd {
					nextEnd, haveNext = r.end, true
				}
			}
		}
		if sum+occ <= h.Class.GlobalBufBytes {
			return startT, true
		}
		if !haveNext {
			return 0, false // cannot fit even alone (should not happen: occ <= buffer)
		}
		startT = nextEnd
	}
	return 0, false
}

// postProcess implements Fig. 9: walk each sub-accelerator's sequence;
// wherever an idle gap follows an assignment, look ahead up to
// LookAhead positions for a layer that could have started at the gap
// and hoist it. A hoist is kept only if re-simulation confirms the
// makespan does not regress (and never reorders layers of the same
// instance, which would violate the dependence chain).
func (s *Scheduler) postProcess(h *accel.HDA, w *workload.Workload, sch *Schedule) (*Schedule, error) {
	if s.opts.LookAhead <= 0 {
		return sch, nil
	}
	seqs := extractSeqs(h, sch)
	cur := sch
	moves := 0

	// timeline maps each (instance, layer) to its assignment index in
	// cur.Assignments (indices, not copies: Assignment embeds a full
	// Cost and this map is rebuilt after every accepted move).
	timeline := func(sc *Schedule) map[item]int {
		m := make(map[item]int, len(sc.Assignments))
		for i := range sc.Assignments {
			a := &sc.Assignments[i]
			m[item{a.Instance, a.Layer}] = i
		}
		return m
	}
	tl := timeline(cur)

	for a := range seqs {
		for i := 0; i+1 < len(seqs[a]) && moves < s.opts.MaxPostMoves; i++ {
			hereEnd := cur.Assignments[tl[seqs[a][i]]].End
			nextStart := cur.Assignments[tl[seqs[a][i+1]]].Start
			if nextStart-hereEnd <= 0 {
				continue
			}
			// Search the look-ahead window for a hoistable layer.
			for la := 2; la <= s.opts.LookAhead+1 && i+la < len(seqs[a]); la++ {
				j := i + la
				cand := seqs[a][j]
				if sameInstanceBetween(seqs[a], i+1, j, cand.inst) {
					break // a predecessor of cand sits in the window; stop
				}
				// Quick test: the candidate must be startable at the
				// gap — its model predecessor complete (or, for a
				// first layer, its instance arrived) by the gap start.
				if cand.layer > 0 {
					pred, ok := tl[item{cand.inst, cand.layer - 1}]
					if !ok || cur.Assignments[pred].End > hereEnd {
						continue
					}
				} else if w.Instances[cand.inst].ArrivalCycle > hereEnd {
					continue
				}
				moves++
				trial := hoist(seqs, a, i+1, j)
				newSch, err := s.simulate(h, w, trial)
				if err != nil || newSch.MakespanCycles > cur.MakespanCycles ||
					flowTime(newSch) > flowTime(cur) {
					continue // revert (seqs unchanged; trial was a copy)
				}
				seqs = trial
				cur = newSch
				tl = timeline(cur)
				break
			}
		}
	}
	if cur != sch {
		// Simulated schedules defer the peak-occupancy sweep (see
		// simulate); materialize it for the one that survived.
		cur.PeakOccupancyBytes = peakOccupancy(cur.Assignments)
	}
	return cur, nil
}

// flowTime sums per-instance completion times — the guard that keeps
// post-processing from trading one instance's response time for
// another's idle slot without improving the makespan.
func flowTime(s *Schedule) int64 {
	finish := make([]int64, len(s.Workload.Instances))
	for i := range s.Assignments {
		a := &s.Assignments[i]
		if a.End > finish[a.Instance] {
			finish[a.Instance] = a.End
		}
	}
	var sum int64
	for _, f := range finish {
		sum += f
	}
	return sum
}

// sameInstanceBetween reports whether seq[from:to] contains a layer of
// the given instance (which would be an earlier layer — sequences
// preserve per-instance order — and therefore a dependence blocker).
func sameInstanceBetween(seq []item, from, to int, inst int) bool {
	for k := from; k < to; k++ {
		if seq[k].inst == inst {
			return true
		}
	}
	return false
}

// hoist returns a deep-copied sequence set with seq[acc][j] moved to
// position `to` (shifting the window right by one).
func hoist(seqs [][]item, acc, to, j int) [][]item {
	out := make([][]item, len(seqs))
	for a := range seqs {
		out[a] = append([]item(nil), seqs[a]...)
	}
	moved := out[acc][j]
	copy(out[acc][to+1:j+1], out[acc][to:j])
	out[acc][to] = moved
	return out
}
