package sched

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/maestro"
	"repro/internal/workload"
)

// simState is the scheduler's reusable post-processing scratch: the
// per-trial simulation arrays, a double-buffered assignment store (the
// next trial writes the buffer the surviving schedule does not hold),
// and the hoist/flow-time buffers. Post-processing runs up to
// MaxPostMoves trial simulations per schedule; without this scratch a
// DSE sweep re-allocated every trial's whole state per design point.
type simState struct {
	free, busy []int64
	pos        []int
	nextLayer  []int
	ready      []int64
	running    []runSlot
	rows       []costTable // per-instance cost-table resolution

	// assignBuf double-buffers trial assignments: buf[cur] is written
	// by the next simulate call, the other half may be held by the
	// surviving schedule. postProcess detaches the survivor with a copy
	// before returning.
	assignBuf [2][]Assignment
	cur       int

	trialSeqs [][]item // hoist scratch, swapped with the live seqs on acceptance
	liveSeqs  [][]item // extractSeqs scratch (the live set between swaps)
	finish    []int64  // flowTime scratch
	timeline  map[item]int
}

// extractSeqs converts a schedule into per-sub-accelerator item
// sequences in start order (assignments are already in commit order,
// which is start order per sub-accelerator). The sequences live in
// scheduler scratch, reused across post-processing passes.
func (s *Scheduler) extractSeqs(h *accel.HDA, sch *Schedule) [][]item {
	seqs := s.sim.liveSeqs
	if len(seqs) != len(h.Subs) {
		seqs = make([][]item, len(h.Subs))
	}
	for a := range seqs {
		if seqs[a] != nil {
			seqs[a] = seqs[a][:0]
		}
	}
	for _, a := range sch.Assignments {
		seqs[a.SubAcc] = append(seqs[a.SubAcc], item{inst: a.Instance, layer: a.Layer})
	}
	s.sim.liveSeqs = seqs
	return seqs
}

// simulate executes fixed per-sub-accelerator sequences and returns
// the resulting schedule (no re-assignment decisions; used to evaluate
// post-processing reorders). Each round it commits the sequence head
// with the earliest feasible start time, respecting dependence, memory
// and sub-accelerator serialization. Returns an error when the
// sequences cross-block (which a reorder can introduce; callers then
// revert). Peak occupancy stays lazy (Schedule.PeakOccupancyBytes):
// postProcess evaluates trials by makespan and flow time only. The
// returned schedule's assignments live in the scheduler's trial
// scratch until detached.
func (s *Scheduler) simulate(h *accel.HDA, w *workload.Workload, seqs [][]item) (*Schedule, error) {
	n := len(w.Instances)
	nAcc := len(h.Subs)
	sim := &s.sim
	sim.free = resetInt64(sim.free, nAcc)
	sim.busy = resetInt64(sim.busy, nAcc)
	sim.pos = resetInt(sim.pos, nAcc)
	sim.nextLayer = resetInt(sim.nextLayer, n)
	sim.ready = resetInt64(sim.ready, n)
	sim.running = sim.running[:0]
	free, busy, pos, nextLayer, ready := sim.free, sim.busy, sim.pos, sim.nextLayer, sim.ready
	if cap(sim.rows) < n {
		sim.rows = make([]costTable, n)
	}
	rows := sim.rows[:n]
	table := s.tableFor(h)
	for i, in := range w.Instances {
		ready[i] = in.ArrivalCycle
		rows[i] = s.costCols(h, table, in.Model)
	}
	costAt := func(a int, it item) *maestro.Cost {
		return rows[it.inst].cols[a][it.layer]
	}

	total := 0
	for a := range seqs {
		total += len(seqs[a])
	}
	if cap(sim.assignBuf[sim.cur]) < total {
		sim.assignBuf[sim.cur] = make([]Assignment, 0, total)
	}
	assignments := sim.assignBuf[sim.cur][:0]
	var energy float64

	for committed := 0; committed < total; {
		bestAcc := -1
		var bestStart int64
		for a := range seqs {
			if pos[a] >= len(seqs[a]) {
				continue
			}
			it := seqs[a][pos[a]]
			if it.layer != nextLayer[it.inst] {
				continue // blocked on a predecessor queued elsewhere
			}
			startT := max(free[a], ready[it.inst])
			cost := costAt(a, it)
			startT, ok := memFeasibleStart(h, sim.running, startT, cost.Cycles, cost.OccupancyBytes)
			if !ok {
				continue
			}
			if bestAcc < 0 || startT < bestStart {
				bestAcc = a
				bestStart = startT
			}
		}
		if bestAcc < 0 {
			return nil, fmt.Errorf("sched: simulate: sequences cross-block after %d of %d commits", committed, total)
		}

		a := bestAcc
		it := seqs[a][pos[a]]
		cost := costAt(a, it)
		end := bestStart + cost.Cycles
		pos[a]++
		nextLayer[it.inst]++
		free[a] = end
		busy[a] += cost.Cycles
		ready[it.inst] = end
		energy += cost.Energy.Total()
		sim.running = pruneSlots(sim.running, bestStart)
		sim.running = append(sim.running, runSlot{start: bestStart, end: end, occ: cost.OccupancyBytes})
		assignments = append(assignments, Assignment{
			Instance: it.inst, Layer: it.layer, SubAcc: a,
			Start: bestStart, End: end, Cost: cost,
		})
		committed++
	}
	sim.assignBuf[sim.cur] = assignments

	sch := &Schedule{
		HDA: h, Workload: w,
		Assignments:   assignments,
		EnergyPJ:      energy,
		SubBusyCycles: append([]int64(nil), busy...),
	}
	for i := range assignments {
		if e := assignments[i].End; e > sch.MakespanCycles {
			sch.MakespanCycles = e
		}
	}
	return sch, nil
}

// resetInt64 returns a zeroed int64 slice of length n, reusing buf's
// capacity when possible.
func resetInt64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// resetInt is resetInt64 for int slices.
func resetInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// pruneSlots drops slots that ended at or before t. Safe here because
// simulate commits in non-decreasing start order (it always picks the
// earliest feasible start).
func pruneSlots(running []runSlot, t int64) []runSlot {
	live := running[:0]
	for _, r := range running {
		if r.end > t {
			live = append(live, r)
		}
	}
	return live
}

// memFeasibleStart returns the earliest start >= startT at which the
// occupancy fits the global buffer for the layer's whole duration,
// delaying past running completions as needed.
func memFeasibleStart(h *accel.HDA, running []runSlot, startT, dur, occ int64) (int64, bool) {
	for iter := 0; iter <= len(running)+1; iter++ {
		endT := startT + dur
		var sum int64
		var nextEnd int64
		haveNext := false
		for _, r := range running {
			if r.end > startT {
				if r.start < endT {
					sum += r.occ
				}
				if !haveNext || r.end < nextEnd {
					nextEnd, haveNext = r.end, true
				}
			}
		}
		if sum+occ <= h.Class.GlobalBufBytes {
			return startT, true
		}
		if !haveNext {
			return 0, false // cannot fit even alone (should not happen: occ <= buffer)
		}
		startT = nextEnd
	}
	return 0, false
}

// postProcess implements Fig. 9: walk each sub-accelerator's sequence;
// wherever an idle gap follows an assignment, look ahead up to
// LookAhead positions for a layer that could have started at the gap
// and hoist it. A hoist is kept only if re-simulation confirms the
// makespan does not regress (and never reorders layers of the same
// instance, which would violate the dependence chain).
func (s *Scheduler) postProcess(h *accel.HDA, w *workload.Workload, sch *Schedule) (*Schedule, error) {
	if s.opts.LookAhead <= 0 {
		return sch, nil
	}
	seqs := s.extractSeqs(h, sch)
	cur := sch
	moves := 0

	// timeline maps each (instance, layer) to its assignment index in
	// cur.Assignments (indices, not copies; the scratch map is rebuilt
	// after every accepted move).
	if s.sim.timeline == nil {
		s.sim.timeline = make(map[item]int, len(sch.Assignments))
	}
	tl := s.sim.timeline
	timeline := func(sc *Schedule) {
		clear(tl)
		for i := range sc.Assignments {
			a := &sc.Assignments[i]
			tl[item{a.Instance, a.Layer}] = i
		}
	}
	timeline(cur)

	for a := range seqs {
		for i := 0; i+1 < len(seqs[a]) && moves < s.opts.MaxPostMoves; i++ {
			hereEnd := cur.Assignments[tl[seqs[a][i]]].End
			nextStart := cur.Assignments[tl[seqs[a][i+1]]].Start
			if nextStart-hereEnd <= 0 {
				continue
			}
			// Search the look-ahead window for a hoistable layer.
			for la := 2; la <= s.opts.LookAhead+1 && i+la < len(seqs[a]); la++ {
				j := i + la
				cand := seqs[a][j]
				if sameInstanceBetween(seqs[a], i+1, j, cand.inst) {
					break // a predecessor of cand sits in the window; stop
				}
				// Quick test: the candidate must be startable at the
				// gap — its model predecessor complete (or, for a
				// first layer, its instance arrived) by the gap start.
				if cand.layer > 0 {
					pred, ok := tl[item{cand.inst, cand.layer - 1}]
					if !ok || cur.Assignments[pred].End > hereEnd {
						continue
					}
				} else if w.Instances[cand.inst].ArrivalCycle > hereEnd {
					continue
				}
				moves++
				trial := s.hoist(seqs, a, i+1, j)
				newSch, err := s.simulate(h, w, trial)
				if err != nil || newSch.MakespanCycles > cur.MakespanCycles ||
					s.flowTime(newSch) > s.flowTime(cur) {
					continue // revert (seqs unchanged; trial was scratch)
				}
				// Accept: the trial sequences become live (the old live
				// set becomes the next hoist scratch), and the trial
				// assignment buffer is retired from the double buffer
				// while cur holds it.
				s.sim.trialSeqs, seqs = seqs, trial
				s.sim.liveSeqs = seqs
				s.sim.cur = 1 - s.sim.cur
				cur = newSch
				timeline(cur)
				break
			}
		}
	}
	if cur != sch {
		// cur's assignments live in the trial scratch; detach them.
		// The superseded input schedule is dropped right here, so its
		// assignment storage goes back to the scheduler.
		cur.Assignments = append([]Assignment(nil), cur.Assignments...)
		s.Recycle(sch)
	}
	return cur, nil
}

// flowTime sums per-instance completion times — the guard that keeps
// post-processing from trading one instance's response time for
// another's idle slot without improving the makespan.
func (s *Scheduler) flowTime(sc *Schedule) int64 {
	s.sim.finish = resetInt64(s.sim.finish, len(sc.Workload.Instances))
	finish := s.sim.finish
	for i := range sc.Assignments {
		a := &sc.Assignments[i]
		if a.End > finish[a.Instance] {
			finish[a.Instance] = a.End
		}
	}
	var sum int64
	for _, f := range finish {
		sum += f
	}
	return sum
}

// sameInstanceBetween reports whether seq[from:to] contains a layer of
// the given instance (which would be an earlier layer — sequences
// preserve per-instance order — and therefore a dependence blocker).
func sameInstanceBetween(seq []item, from, to int, inst int) bool {
	for k := from; k < to; k++ {
		if seq[k].inst == inst {
			return true
		}
	}
	return false
}

// hoist returns the sequence set with seq[acc][j] moved to position
// `to` (shifting the window right by one), written into the
// scheduler's reusable trial-sequence scratch — the caller must treat
// the result as invalidated by the next hoist unless it swaps the
// scratch out (see postProcess).
func (s *Scheduler) hoist(seqs [][]item, acc, to, j int) [][]item {
	out := s.sim.trialSeqs
	if len(out) != len(seqs) {
		out = make([][]item, len(seqs))
	}
	for a := range seqs {
		out[a] = append(out[a][:0], seqs[a]...)
	}
	s.sim.trialSeqs = out
	moved := out[acc][j]
	copy(out[acc][to+1:j+1], out[acc][to:j])
	out[acc][to] = moved
	return out
}
