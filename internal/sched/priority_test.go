package sched

import (
	"testing"

	"repro/internal/workload"
)

// finishOf returns the completion cycle of the given instance.
func finishOf(s *Schedule, inst int) int64 {
	var f int64
	for _, a := range s.Assignments {
		if a.Instance == inst && a.End > f {
			f = a.End
		}
	}
	return f
}

// TestPrioritiesPullInstancesForward: with two identical UNet
// instances competing for the same sub-accelerators, the prioritized
// one must finish no later than it does with priorities reversed —
// and strictly earlier than its twin in the same run.
func TestPrioritiesPullInstancesForward(t *testing.T) {
	h := maelstromEdge(t)
	cache := newCache()
	w := workload.MustNew("qos", []workload.Entry{{Model: "unet", Batches: 2}})

	run := func(priorities []int) *Schedule {
		opts := DefaultOptions()
		opts.Priorities = priorities
		s := MustNew(cache, opts)
		sch, err := s.Schedule(h, w)
		if err != nil {
			t.Fatal(err)
		}
		if err := sch.Validate(); err != nil {
			t.Fatal(err)
		}
		return sch
	}

	favor0 := run([]int{10, 1})
	if f0, f1 := finishOf(favor0, 0), finishOf(favor0, 1); f0 >= f1 {
		t.Errorf("prioritized instance 0 finished at %d, twin at %d", f0, f1)
	}
	favor1 := run([]int{1, 10})
	if f1, f0 := finishOf(favor1, 1), finishOf(favor1, 0); f1 >= f0 {
		t.Errorf("prioritized instance 1 finished at %d, twin at %d", f1, f0)
	}
}

// TestPrioritiesPreserveLegality: priorities change ordering, never
// correctness; and nil priorities reproduce the default schedule.
func TestPrioritiesPreserveLegality(t *testing.T) {
	h := maelstromEdge(t)
	cache := newCache()
	w := workload.ARVRA()

	opts := DefaultOptions()
	opts.Priorities = []int{5, 5, 9, 9, 9, 9, 1, 1, 1, 1} // unet instances urgent
	s := MustNew(cache, opts)
	sch, err := s.Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}

	base := MustNew(cache, DefaultOptions())
	bs, err := base.Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	nilPrio := DefaultOptions()
	nilPrio.Priorities = nil
	again, err := MustNew(cache, nilPrio).Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	if bs.MakespanCycles != again.MakespanCycles || bs.EnergyPJ != again.EnergyPJ {
		t.Error("nil priorities should reproduce the default schedule")
	}
}

// TestPrioritiesLengthMismatch: a wrong-length priority vector is a
// caller bug and must be rejected.
func TestPrioritiesLengthMismatch(t *testing.T) {
	h := maelstromEdge(t)
	w := workload.ARVRA() // 10 instances
	opts := DefaultOptions()
	opts.Priorities = []int{1, 2, 3}
	s := MustNew(newCache(), opts)
	if _, err := s.Schedule(h, w); err == nil {
		t.Error("mismatched priority vector accepted")
	}
}
