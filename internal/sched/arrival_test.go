package sched

import (
	"testing"

	"repro/internal/workload"
)

// TestPeriodicArrivalsRespected: instances of a periodic stream must
// not start before their arrival cycle, and the schedule must stay
// legal.
func TestPeriodicArrivalsRespected(t *testing.T) {
	h := maelstromEdge(t)
	const period = 50_000_000 // 50 ms at 1 GHz
	w := workload.MustNew("stream", []workload.Entry{
		{Model: "mobilenetv1", Batches: 4, PeriodCycles: period},
	})
	s := MustNew(newCache(), DefaultOptions())
	sch, err := s.Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, a := range sch.Assignments {
		if a.Layer == 0 {
			if arr := w.Instances[a.Instance].ArrivalCycle; a.Start < arr {
				t.Errorf("instance %d layer 0 starts %d before arrival %d", a.Instance, a.Start, arr)
			}
		}
	}
	// The last frame arrives at 3x period; the makespan must reflect
	// the stream (it cannot beat the last arrival).
	if sch.MakespanCycles < 3*period {
		t.Errorf("makespan %d below the last arrival %d", sch.MakespanCycles, 3*period)
	}
}

// TestPeriodicVsBurst: a periodic stream with a generous period must
// achieve per-frame latency close to the isolated single-frame
// latency (no queueing), while a burst (period 0) of the same frames
// queues and finishes later per frame on average.
func TestPeriodicVsBurst(t *testing.T) {
	h := maelstromEdge(t)
	cache := newCache()
	s := MustNew(cache, DefaultOptions())

	single, err := s.Schedule(h, workload.MustNew("one", []workload.Entry{
		{Model: "mobilenetv1", Batches: 1},
	}))
	if err != nil {
		t.Fatal(err)
	}
	frame := single.MakespanCycles

	period := 4 * frame // no overlap pressure
	stream, err := s.Schedule(h, workload.MustNew("stream", []workload.Entry{
		{Model: "mobilenetv1", Batches: 3, PeriodCycles: period},
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Each frame's response time (finish - arrival) stays near the
	// isolated frame latency.
	finish := make([]int64, 3)
	for _, a := range stream.Assignments {
		if a.End > finish[a.Instance] {
			finish[a.Instance] = a.End
		}
	}
	for i, f := range finish {
		resp := f - stream.Workload.Instances[i].ArrivalCycle
		if resp > frame*3/2 {
			t.Errorf("frame %d response %d far above isolated latency %d", i, resp, frame)
		}
	}
	if err := stream.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadRejectsNegativePeriod: input validation.
func TestWorkloadRejectsNegativePeriod(t *testing.T) {
	if _, err := workload.New("bad", []workload.Entry{
		{Model: "unet", Batches: 2, PeriodCycles: -1},
	}); err == nil {
		t.Error("negative period accepted")
	}
}
