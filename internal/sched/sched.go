// Package sched implements Herald's layer execution scheduler
// (§IV-D, Figs. 7–9): dataflow-preference-based assignment of layers
// onto HDA sub-accelerators with load-balancing feedback, depth- or
// breadth-first initial layer ordering, dependence and global-memory
// constraints with deferred execution, and the look-ahead
// post-processing pass that removes idle gaps. A naive greedy
// scheduler (always the locally-best sub-accelerator, no balancing, no
// post-processing) is provided as the baseline of the paper's
// scheduler-efficacy study.
package sched

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/accel"
	"repro/internal/maestro"
	"repro/internal/workload"
)

// Metric selects the per-layer cost the scheduler minimizes when
// ranking sub-accelerators (§IV-D: "users can select the metric").
type Metric int

const (
	// MetricEDP ranks by per-layer energy-delay product (default).
	MetricEDP Metric = iota
	// MetricLatency ranks by per-layer latency.
	MetricLatency
	// MetricEnergy ranks by per-layer energy.
	MetricEnergy
)

// String names the metric (flag spelling).
func (m Metric) String() string {
	switch m {
	case MetricEDP:
		return "edp"
	case MetricLatency:
		return "latency"
	case MetricEnergy:
		return "energy"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// value extracts the metric from a cost at a 1 GHz reference clock.
// It takes the interned pointer and mirrors the Cost value-receiver
// arithmetic exactly (same operation order, hence bit-equal results)
// without copying the struct per ranking step.
func (m Metric) value(c *maestro.Cost) float64 {
	switch m {
	case MetricLatency:
		return float64(c.Cycles)
	case MetricEnergy:
		return c.Energy.Total()
	default:
		// Cost.EDP(1.0): EnergyPJ() * 1e-12 * Seconds(1.0).
		return c.Energy.Total() * 1e-12 * (float64(c.Cycles) / 1e9)
	}
}

// Ordering selects the initial layer ordering heuristic (§IV-D).
type Ordering int

const (
	// BreadthFirst interleaves layer execution across models,
	// maximizing the independent work available to sub-accelerators
	// (default for multi-DNN workloads).
	BreadthFirst Ordering = iota
	// DepthFirst schedules all layers of one model before moving on.
	DepthFirst
)

// String names the ordering heuristic.
func (o Ordering) String() string {
	if o == DepthFirst {
		return "depth-first"
	}
	return "breadth-first"
}

// Options configures the Herald scheduler.
type Options struct {
	Metric   Metric
	Ordering Ordering

	// LoadBalanceFactor (LbF) is the maximum allowed load-unbalancing
	// factor: the largest total busy time across sub-accelerators
	// divided by the smallest (§IV-D). Assignments that would exceed
	// it are diverted to the next-best sub-accelerator; if every
	// alternative violates it, the best fit is used anyway (the
	// feedback loop is a heuristic, not a hard constraint).
	// +Inf disables balancing. Values < 1 are invalid.
	LoadBalanceFactor float64

	// LookAhead is the post-processing search depth of Fig. 9.
	LookAhead int

	// PostProcess enables the Fig. 9 idle-time-elimination pass.
	PostProcess bool

	// MaxPostMoves bounds the number of reorder attempts during
	// post-processing (keeps DSE sweeps fast).
	MaxPostMoves int

	// Priorities optionally assigns a QoS priority to each workload
	// instance (same indexing as Workload.Instances; higher is more
	// urgent). When ready layers compete, higher-priority instances
	// are served first; equal priorities follow the Ordering
	// heuristic. Nil or all-equal priorities reduce to the paper's
	// behavior. This extends the paper's per-subtask processing-rate
	// modeling (§V-A assigns batch counts per sub-task) with
	// latency-criticality, e.g. hand tracking ahead of classification
	// in an AR/VR frame.
	Priorities []int
}

// DefaultOptions returns Herald's standard configuration: EDP metric,
// breadth-first ordering, load balancing at 1.5, post-processing with
// look-ahead 4.
func DefaultOptions() Options {
	return Options{
		Metric:            MetricEDP,
		Ordering:          BreadthFirst,
		LoadBalanceFactor: 1.5,
		LookAhead:         4,
		PostProcess:       true,
		MaxPostMoves:      64,
	}
}

// GreedyOptions returns the baseline greedy scheduler of §V-B's
// scheduler-efficacy study: every layer goes to the sub-accelerator
// with the least per-layer EDP, with no load balancing and no
// post-processing.
func GreedyOptions() Options {
	return Options{
		Metric:            MetricEDP,
		Ordering:          DepthFirst,
		LoadBalanceFactor: inf(),
		LookAhead:         0,
		PostProcess:       false,
	}
}

func inf() float64 { return math.Inf(1) }

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.LoadBalanceFactor < 1 {
		return fmt.Errorf("sched: load-balance factor must be >= 1 (got %g)", o.LoadBalanceFactor)
	}
	if o.LookAhead < 0 || o.MaxPostMoves < 0 {
		return fmt.Errorf("sched: look-ahead and max post moves must be >= 0")
	}
	return nil
}

// Assignment places one layer of one workload instance on one
// sub-accelerator over [Start, End) cycles.
type Assignment struct {
	Instance int // index into Workload.Instances
	Layer    int // index into the instance's model layers
	SubAcc   int // index into HDA.Subs

	Start, End int64

	// Cost is the interned cost-model entry for this (layer,
	// sub-accelerator) pair. It points into the shared maestro cache
	// (an Assignment used to embed the ~300-byte Cost by value, which
	// dominated DSE sweep allocations) and must not be modified.
	Cost *maestro.Cost
}

// Schedule is a complete layer execution schedule of a workload on an
// HDA, with its aggregate cost metrics.
type Schedule struct {
	HDA      *accel.HDA
	Workload *workload.Workload

	// Assignments in commit order (non-decreasing Start).
	Assignments []Assignment

	MakespanCycles int64
	EnergyPJ       float64
	SubBusyCycles  []int64

	// SchedulingTime is the wall-clock time the scheduler itself took
	// (Table VII's "Scheduling Time").
	SchedulingTime time.Duration

	// peakPlus1 caches the lazily-computed peak occupancy plus one
	// (see PeakOccupancyBytes); 0 means not yet computed. Accessed
	// with atomic free functions (not an atomic.Int64, whose noCopy
	// would forbid the value copies tests and callers legitimately
	// make of finished schedules).
	peakPlus1 int64
}

// PeakOccupancyBytes returns the schedule's maximum concurrent
// global-buffer occupancy. It is computed on first use and cached: a
// DSE sweep discards almost every schedule it produces without ever
// reading the peak, and the O(n log n) interval sweep was a
// measurable slice of per-point cost. The cache is a single atomic so
// a schedule shared across goroutines (stats exporters, trace
// writers) stays race-free — concurrent first readers may both run
// the sweep, but it is deterministic, so they store the same value.
func (s *Schedule) PeakOccupancyBytes() int64 {
	if v := atomic.LoadInt64(&s.peakPlus1); v > 0 {
		return v - 1
	}
	peak := peakOccupancySweep(s.Assignments)
	atomic.StoreInt64(&s.peakPlus1, peak+1)
	return peak
}

// LatencySeconds converts the makespan to seconds at the given clock.
func (s *Schedule) LatencySeconds(clockGHz float64) float64 {
	if clockGHz <= 0 {
		clockGHz = 1.0
	}
	return float64(s.MakespanCycles) / (clockGHz * 1e9)
}

// EnergyMJ returns total energy in millijoules.
func (s *Schedule) EnergyMJ() float64 { return s.EnergyPJ * 1e-9 }

// EDP returns the schedule's energy-delay product in joule-seconds.
func (s *Schedule) EDP(clockGHz float64) float64 {
	return s.EnergyPJ * 1e-12 * s.LatencySeconds(clockGHz)
}

// EnergyBreakdown aggregates the schedule's energy by memory-hierarchy
// level (MAC, RF, local interconnect, global buffer, DRAM, context) —
// the view that explains *why* an organization wins or loses energy
// (e.g. the RDA's flexibility tax, or NVDLA's DRAM re-streaming on
// activation-heavy layers).
func (s *Schedule) EnergyBreakdown() maestro.EnergyBreakdown {
	var b maestro.EnergyBreakdown
	for _, a := range s.Assignments {
		e := a.Cost.Energy
		b.MAC += e.MAC
		b.RF += e.RF
		b.NoC += e.NoC
		b.Buffer += e.Buffer
		b.DRAM += e.DRAM
		b.Context += e.Context
	}
	return b
}

// Utilization returns each sub-accelerator's busy fraction of the
// makespan.
func (s *Schedule) Utilization() []float64 {
	out := make([]float64, len(s.SubBusyCycles))
	if s.MakespanCycles == 0 {
		return out
	}
	for i, b := range s.SubBusyCycles {
		out[i] = float64(b) / float64(s.MakespanCycles)
	}
	return out
}

// item identifies one layer of one instance in per-sub-accelerator
// sequences.
type item struct {
	inst, layer int
}
