package sched

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/workload"
)

// TestSingleLayerWorkload: the degenerate one-layer case must produce
// a one-assignment schedule on the preferred sub-accelerator.
func TestSingleLayerWorkload(t *testing.T) {
	h := maelstromEdge(t)
	w := workload.MustNew("one", []workload.Entry{{Model: "gnmt", Batches: 1}})
	// gnmt has 19 layers; build a truly single-layer model instead via
	// handpose? Use the smallest zoo model (brq-handpose, 11 layers)
	// and assert count correctness; true single-layer coverage comes
	// from the synthetic below.
	s := MustNew(newCache(), DefaultOptions())
	sch, err := s.Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Assignments) != w.TotalLayers() {
		t.Fatalf("assignments %d != %d", len(sch.Assignments), w.TotalLayers())
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestManyTinyInstances: 64 instances of a small model stress the
// ordering rotation, the memory ledger pruning, and the event queue.
func TestManyTinyInstances(t *testing.T) {
	h := maelstromEdge(t)
	w := workload.MustNew("swarm", []workload.Entry{{Model: "brq-handpose", Batches: 64}})
	s := MustNew(newCache(), DefaultOptions())
	sch, err := s.Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
	// With 64 independent chains, both sub-accelerators must see work.
	for i, busy := range sch.SubBusyCycles {
		if busy == 0 {
			t.Errorf("sub-accelerator %d never used across 64 instances", i)
		}
	}
}

// TestRepeatHeavyWorkload: GNMT-only workloads exercise the Repeat
// path end to end (timesteps scale cycles but not spatial extents).
func TestRepeatHeavyWorkload(t *testing.T) {
	h := maelstromEdge(t)
	w := workload.MustNew("rnn", []workload.Entry{{Model: "gnmt", Batches: 3}})
	s := MustNew(newCache(), DefaultOptions())
	sch, err := s.Schedule(h, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
	// GNMT is channel-parallel work: the NVDLA sub-accelerator must
	// carry the bulk of it.
	if sch.SubBusyCycles[0] < sch.SubBusyCycles[1] {
		t.Errorf("GNMT should lean on NVDLA: busy %v", sch.SubBusyCycles)
	}
}

// TestThreeWayHDASchedules: a 3-way HDA with all styles must schedule
// every workload legally.
func TestThreeWayHDASchedules(t *testing.T) {
	h, err := accel.New("3way", accel.Mobile, []accel.Partition{
		{Style: dataflow.NVDLA, PEs: 2048, BWGBps: 32},
		{Style: dataflow.ShiDiannao, PEs: 1024, BWGBps: 16},
		{Style: dataflow.Eyeriss, PEs: 1024, BWGBps: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := MustNew(newCache(), DefaultOptions())
	for _, w := range workload.Evaluated() {
		sch, err := s.Schedule(h, w)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if err := sch.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

// TestEnergyBreakdownSumsToTotal: the per-level aggregation must equal
// the schedule's total energy.
func TestEnergyBreakdownSumsToTotal(t *testing.T) {
	h := maelstromEdge(t)
	s := MustNew(newCache(), DefaultOptions())
	sch, err := s.Schedule(h, workload.ARVRA())
	if err != nil {
		t.Fatal(err)
	}
	b := sch.EnergyBreakdown()
	if diff := b.Total() - sch.EnergyPJ; diff > 1 || diff < -1 {
		t.Errorf("breakdown total %g != schedule energy %g", b.Total(), sch.EnergyPJ)
	}
	if b.MAC <= 0 || b.RF <= 0 || b.DRAM <= 0 {
		t.Error("breakdown components missing")
	}
	if b.Context != 0 {
		t.Error("no context penalties configured, yet context energy nonzero")
	}
}

// TestDeterminism: scheduling is a pure function of its inputs — two
// runs must produce identical schedules (the DSE's reproducibility
// rests on this).
func TestDeterminism(t *testing.T) {
	h := maelstromEdge(t)
	cache := newCache()
	s := MustNew(cache, DefaultOptions())
	a, err := s.Schedule(h, workload.ARVRB())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Schedule(h, workload.ARVRB())
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanCycles != b.MakespanCycles || a.EnergyPJ != b.EnergyPJ {
		t.Fatal("schedules differ across identical runs")
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}

// TestTightMemorySerializes: shrinking the global buffer must not
// break legality — only force the memory condition to defer layers.
func TestTightMemorySerializes(t *testing.T) {
	tight := accel.Edge
	tight.GlobalBufBytes = 1 << 20 // 1 MiB
	h, err := accel.New("tight", tight, []accel.Partition{
		{Style: dataflow.NVDLA, PEs: 512, BWGBps: 8},
		{Style: dataflow.ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := MustNew(newCache(), DefaultOptions())
	sch, err := s.Schedule(h, workload.MustNew("m", []workload.Entry{{Model: "unet", Batches: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
	if sch.PeakOccupancyBytes() > tight.GlobalBufBytes {
		t.Errorf("peak occupancy %d exceeds tight buffer %d", sch.PeakOccupancyBytes(), tight.GlobalBufBytes)
	}
}
