package sched

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/workload"
)

// Incremental is the online scheduling path: instead of receiving the
// whole workload up front (Schedule), model instances are admitted in
// arrival order and each admission extends the committed schedule in
// place. The per-sub-accelerator timelines, the shared-buffer memory
// ledger and all committed assignments persist across Extend calls, so
// a new request is placed against everything already running — the
// serving-time counterpart of Fig. 8's compile-time loop.
//
// Commitments are non-revocable: the Fig. 9 post-processing pass does
// not run (it reorders already-issued work, which an online engine
// cannot do). Instance priorities are supplied per admission rather
// than through Options.Priorities.
type Incremental struct {
	s     *Scheduler
	h     *accel.HDA
	st    *runState
	insts []workload.Instance
	name  string

	// floor is the admission floor: every later admission must arrive
	// at or after it, which is what makes memory-ledger pruning safe
	// (slots ending before the floor can never overlap future work).
	floor int64

	// susp holds the suspended (preempted, not yet resumed) instances
	// by global index; see Preempt/Resume in elastic.go. Suspended
	// instances are out of the visitation order, so Extend never
	// schedules their remaining layers.
	susp map[int]Checkpoint
}

// Incremental starts an empty incremental schedule on the given HDA.
// The scheduler's Options.Priorities must be unset; incremental
// priorities are per-admission.
func (s *Scheduler) Incremental(h *accel.HDA, name string) (*Incremental, error) {
	if h == nil || len(h.Subs) == 0 {
		return nil, fmt.Errorf("sched: nil or empty HDA")
	}
	if len(s.opts.Priorities) > 0 {
		return nil, fmt.Errorf("sched: incremental scheduling takes per-admission priorities, not Options.Priorities")
	}
	st := newRunState(len(h.Subs))
	st.costs = s.tableFor(h)
	return &Incremental{
		s:    s,
		h:    h,
		name: name,
		st:   st,
	}, nil
}

// Admission is one model instance being admitted to an incremental
// schedule, with its QoS priority (higher is more urgent).
type Admission struct {
	Instance workload.Instance
	Priority int

	// After optionally makes this admission a pipeline successor: the
	// value is 1 + the global instance index (Placement.Instance) of
	// the predecessor, so the zero value means "no predecessor". The
	// admitted instance's first layer cannot start before the
	// predecessor's last layer completes, and the predecessor's output
	// activation occupies the shared global buffer from its completion
	// until the successor's first layer starts (the inter-segment
	// handoff buffer). A predecessor may be in the same batch (at an
	// earlier position) or already admitted by an earlier Extend; each
	// instance can have at most one successor.
	After int
}

// Placement reports where one admitted instance landed.
type Placement struct {
	Instance     int   // global instance index (stable across Extends)
	ArrivalCycle int64 // when the instance became ready
	StartCycle   int64 // first layer start
	FinishCycle  int64 // last layer end
	BusyCycles   int64 // sum of the instance's layer execution cycles
	EnergyPJ     float64
}

// LatencyCycles is the instance's response time: completion relative
// to arrival (queueing + execution).
func (p Placement) LatencyCycles() int64 { return p.FinishCycle - p.ArrivalCycle }

// QueueCycles is the time the instance waited before its first layer
// was issued.
func (p Placement) QueueCycles() int64 { return p.StartCycle - p.ArrivalCycle }

// Floor returns the current admission floor: the minimum arrival
// cycle Extend accepts.
func (inc *Incremental) Floor() int64 { return inc.floor }

// Prewarm resolves the cost columns of every model in w on the
// schedule's HDA without admitting anything, so the first real
// admissions start with a hot L0 table. A fleet migration prewarms
// the new generation's engines with the observed mix — the cost-cache
// locality handover that keeps post-migration admission latency flat.
func (inc *Incremental) Prewarm(w *workload.Workload) { inc.s.Prewarm(inc.h, w) }

// NumInstances returns the number of admitted instances so far.
func (inc *Incremental) NumInstances() int { return len(inc.insts) }

// Extend admits the given instances, schedules every one of their
// layers against the committed timelines, and returns one Placement
// per admission (in admission order). Arrivals must be at or after
// Floor; arrivals within a batch may be in any order.
func (inc *Incremental) Extend(adms []Admission) ([]Placement, error) {
	if len(adms) == 0 {
		return nil, nil
	}
	base := len(inc.insts)
	minArrival := adms[0].Instance.ArrivalCycle
	for i, a := range adms {
		if a.Instance.Model == nil || a.Instance.Model.NumLayers() == 0 {
			return nil, fmt.Errorf("sched: admission with nil or empty model")
		}
		if a.Instance.ArrivalCycle < inc.floor {
			return nil, fmt.Errorf("sched: admission arrives at cycle %d, before the admission floor %d",
				a.Instance.ArrivalCycle, inc.floor)
		}
		if a.Instance.ArrivalCycle < minArrival {
			minArrival = a.Instance.ArrivalCycle
		}
		if a.After != 0 {
			p := a.After - 1
			if p < 0 || p >= base+i {
				return nil, fmt.Errorf("sched: admission %d names predecessor %d, want an earlier instance in [0, %d)",
					base+i, p, base+i)
			}
			taken := p < base && inc.st.succ[p] >= 0
			for j := 0; j < i && !taken; j++ {
				taken = adms[j].After == a.After
			}
			if taken {
				return nil, fmt.Errorf("sched: predecessor instance %d already has a successor", p)
			}
		}
	}
	batch := make([]workload.Instance, len(adms))
	prios := make([]int, len(adms))
	for i, a := range adms {
		batch[i] = a.Instance
		prios[i] = a.Priority
	}
	// Snapshot the mutable state so a failed run (e.g. a layer whose
	// occupancy can never fit the global buffer) rolls back cleanly
	// instead of poisoning every future Extend.
	undo := inc.st.checkpoint()
	inc.st.retire(inc.insts) // completed instances leave the hot loop
	inc.insts = append(inc.insts, batch...)
	inc.st.addInstances(batch, prios)
	inc.st.link(base, adms, inc.insts)
	inc.st.prune = inc.floor

	mark := len(inc.st.assignments)
	if err := inc.s.run(inc.h, inc.insts, inc.st, minArrival, false); err != nil {
		inc.st.restore(undo)
		inc.st.unlink(base, adms)
		inc.insts = inc.insts[:base]
		return nil, err
	}
	inc.floor = max(inc.floor, minArrival)

	// Aggregate the new assignments into per-admission placements.
	// Every pre-existing instance was already complete, so the new
	// assignments belong exclusively to this batch.
	out := make([]Placement, len(adms))
	for i := range adms {
		out[i] = Placement{
			Instance:     base + i,
			ArrivalCycle: adms[i].Instance.ArrivalCycle,
			StartCycle:   -1,
		}
	}
	added := inc.st.assignments[mark:]
	for i := range added {
		a := &added[i]
		p := &out[a.Instance-base]
		if p.StartCycle < 0 || a.Start < p.StartCycle {
			p.StartCycle = a.Start
		}
		if a.End > p.FinishCycle {
			p.FinishCycle = a.End
		}
		p.BusyCycles += a.Cost.Cycles
		p.EnergyPJ += a.Cost.Energy.Total()
	}
	return out, nil
}

// Snapshot materializes the committed schedule so far as a regular
// Schedule (over a synthesized workload holding every admitted
// instance), suitable for Validate, trace export and Gantt rendering.
func (inc *Incremental) Snapshot() *Schedule {
	w := &workload.Workload{
		Name:      inc.name,
		Instances: append([]workload.Instance(nil), inc.insts...),
	}
	sch := &Schedule{
		HDA:           inc.h,
		Workload:      w,
		Assignments:   append([]Assignment(nil), inc.st.assignments...),
		EnergyPJ:      inc.st.energyPJ,
		SubBusyCycles: append([]int64(nil), inc.st.busy...),
	}
	for i := range sch.Assignments {
		if e := sch.Assignments[i].End; e > sch.MakespanCycles {
			sch.MakespanCycles = e
		}
	}
	return sch
}
