package sched

import (
	"fmt"
	"sort"
)

// Validate checks every structural invariant of a schedule: complete
// coverage (each layer of each instance scheduled exactly once),
// per-instance dependence order, per-sub-accelerator serialization,
// the global memory-size constraint, and aggregate-metric consistency.
// The scheduler's tests treat this as the ground-truth legality oracle
// (§III-A: "a scheduler must check if generated schedules are valid in
// terms of layer dependence and memory constraints").
func (s *Schedule) Validate() error {
	if s.HDA == nil || s.Workload == nil {
		return fmt.Errorf("sched: schedule missing HDA or workload")
	}

	// Coverage.
	want := 0
	for _, in := range s.Workload.Instances {
		want += in.Model.NumLayers()
	}
	if len(s.Assignments) != want {
		return fmt.Errorf("sched: %d assignments, workload has %d layers", len(s.Assignments), want)
	}
	seen := make(map[item]int, len(s.Assignments))
	for i, a := range s.Assignments {
		if a.Instance < 0 || a.Instance >= len(s.Workload.Instances) {
			return fmt.Errorf("sched: assignment %d: instance %d out of range", i, a.Instance)
		}
		if a.Layer < 0 || a.Layer >= s.Workload.Instances[a.Instance].Model.NumLayers() {
			return fmt.Errorf("sched: assignment %d: layer %d out of range", i, a.Layer)
		}
		if a.SubAcc < 0 || a.SubAcc >= len(s.HDA.Subs) {
			return fmt.Errorf("sched: assignment %d: sub-accelerator %d out of range", i, a.SubAcc)
		}
		if a.End <= a.Start && a.Cost.Cycles > 0 {
			return fmt.Errorf("sched: assignment %d: empty interval [%d,%d)", i, a.Start, a.End)
		}
		if a.End-a.Start != a.Cost.Cycles {
			return fmt.Errorf("sched: assignment %d: duration %d != cost cycles %d", i, a.End-a.Start, a.Cost.Cycles)
		}
		key := item{a.Instance, a.Layer}
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("sched: layer %v scheduled twice (assignments %d and %d)", key, prev, i)
		}
		seen[key] = i
	}

	// Dependence: within an instance, layer l must start at or after
	// layer l-1 ends; the first layer must respect the instance's
	// arrival time (periodic-stream workloads). Iterate assignments
	// rather than the seen map so the first violation reported is
	// deterministic when a schedule breaks several constraints at once.
	for idx, a := range s.Assignments {
		key := item{a.Instance, a.Layer}
		if key.layer == 0 {
			if arr := s.Workload.Instances[key.inst].ArrivalCycle; s.Assignments[idx].Start < arr {
				return fmt.Errorf("sched: instance %d starts %d before its arrival %d",
					key.inst, s.Assignments[idx].Start, arr)
			}
			continue
		}
		predIdx, ok := seen[item{key.inst, key.layer - 1}]
		if !ok {
			return fmt.Errorf("sched: layer %v scheduled without predecessor", key)
		}
		if s.Assignments[idx].Start < s.Assignments[predIdx].End {
			return fmt.Errorf("sched: dependence violation: %v starts %d before predecessor ends %d",
				key, s.Assignments[idx].Start, s.Assignments[predIdx].End)
		}
	}

	// Serialization: per sub-accelerator, intervals must not overlap.
	perAcc := make([][]Assignment, len(s.HDA.Subs))
	for _, a := range s.Assignments {
		perAcc[a.SubAcc] = append(perAcc[a.SubAcc], a)
	}
	for acc, as := range perAcc {
		sort.Slice(as, func(i, j int) bool { return as[i].Start < as[j].Start })
		for i := 1; i < len(as); i++ {
			if as[i].Start < as[i-1].End {
				return fmt.Errorf("sched: sub-accelerator %d: overlapping assignments at %d < %d",
					acc, as[i].Start, as[i-1].End)
			}
		}
	}

	// Memory: peak concurrent occupancy within the shared buffer.
	if peak := peakOccupancySweep(s.Assignments); peak > s.HDA.Class.GlobalBufBytes {
		return fmt.Errorf("sched: peak occupancy %d exceeds global buffer %d", peak, s.HDA.Class.GlobalBufBytes)
	}

	// Aggregates.
	var makespan int64
	var energy float64
	busy := make([]int64, len(s.HDA.Subs))
	for _, a := range s.Assignments {
		if a.End > makespan {
			makespan = a.End
		}
		energy += a.Cost.EnergyPJ()
		busy[a.SubAcc] += a.Cost.Cycles
	}
	if makespan != s.MakespanCycles {
		return fmt.Errorf("sched: makespan %d != recomputed %d", s.MakespanCycles, makespan)
	}
	if diff := energy - s.EnergyPJ; diff > 1 || diff < -1 {
		return fmt.Errorf("sched: energy %g != recomputed %g", s.EnergyPJ, energy)
	}
	for a := range busy {
		if busy[a] != s.SubBusyCycles[a] {
			return fmt.Errorf("sched: sub %d busy %d != recomputed %d", a, s.SubBusyCycles[a], busy[a])
		}
	}
	return nil
}
