package sched

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/dnn"
	"repro/internal/maestro"
	"repro/internal/workload"
)

// elasticInc builds an incremental schedule on the standard two-sub
// test HDA with one high-priority and one low-priority co-running
// instance, returning the schedule and the two placements.
func elasticInc(t *testing.T) (*Incremental, []Placement) {
	t.Helper()
	s := incTestScheduler(t)
	inc, err := s.Incremental(incTestHDA(t), "elastic")
	if err != nil {
		t.Fatal(err)
	}
	ps, err := inc.Extend([]Admission{
		{Instance: workload.Instance{Model: mustModel(t, "brq-handpose"), Batch: 1}, Priority: 2},
		{Instance: workload.Instance{Model: mustModel(t, "mobilenetv1"), Batch: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return inc, ps
}

// countLayers tallies (instance, layer) occurrences across the
// committed assignments.
func countLayers(sch *Schedule) map[[2]int]int {
	seen := make(map[[2]int]int)
	for _, a := range sch.Assignments {
		seen[[2]int{a.Instance, a.Layer}]++
	}
	return seen
}

// TestPreemptResume: preempting a low-priority instance at a
// mid-schedule layer boundary rolls back exactly the layer suffix
// starting at or after the boundary, refunds its busy cycles and
// energy, and a Resume re-schedules exactly those layers — the final
// schedule validates with every layer run exactly once.
func TestPreemptResume(t *testing.T) {
	inc, ps := elasticInc(t)
	vic := ps[1]
	nl := mustModel(t, "mobilenetv1").NumLayers()
	boundary := (vic.StartCycle + vic.FinishCycle) / 2

	cp, err := inc.Preempt(1, boundary)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Instance != 1 || cp.NextLayer <= 0 || cp.NextLayer >= nl {
		t.Fatalf("checkpoint should split the %d layers mid-way: %+v", nl, cp)
	}
	if cp.LayersRolledBack != nl-cp.NextLayer {
		t.Fatalf("rolled back %d layers, want %d", cp.LayersRolledBack, nl-cp.NextLayer)
	}
	if cp.FreedBusyCycles <= 0 || cp.FreedBusyCycles >= vic.BusyCycles {
		t.Fatalf("freed %d busy cycles, want in (0, %d)", cp.FreedBusyCycles, vic.BusyCycles)
	}
	if got := inc.Preempted(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Preempted() = %v, want [1]", got)
	}

	// The committed suffix is gone: no assignment of the victim starts
	// at or after the boundary, and the high-priority co-runner keeps
	// all of its layers.
	mid := inc.Snapshot()
	var vicKept, hiKept int
	for _, a := range mid.Assignments {
		switch a.Instance {
		case 1:
			vicKept++
			if a.Start >= boundary {
				t.Fatalf("assignment %d/%d@%d survived past the boundary %d", a.Instance, a.Layer, a.Start, boundary)
			}
		case 0:
			hiKept++
		}
	}
	if vicKept != cp.NextLayer {
		t.Fatalf("victim keeps %d committed layers, want the %d-layer prefix", vicKept, cp.NextLayer)
	}
	if hiKept != mustModel(t, "brq-handpose").NumLayers() {
		t.Fatalf("co-runner lost layers: %d kept", hiKept)
	}

	pl, err := inc.Resume(cp, 0, boundary)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Instance != 1 || pl.StartCycle < cp.ResumeCycle || pl.FinishCycle <= pl.StartCycle {
		t.Fatalf("bad resumed placement: %+v (resume cycle %d)", pl, cp.ResumeCycle)
	}
	// Same partition, same interned costs: the resumed suffix costs
	// exactly what the rollback freed.
	if pl.BusyCycles != cp.FreedBusyCycles {
		t.Fatalf("resumed busy %d != freed %d on an unchanged partition", pl.BusyCycles, cp.FreedBusyCycles)
	}
	if len(inc.Preempted()) != 0 {
		t.Fatalf("instance still suspended after Resume: %v", inc.Preempted())
	}

	final := inc.Snapshot()
	if err := final.Validate(); err != nil {
		t.Fatalf("schedule invalid after preempt+resume: %v", err)
	}
	for key, n := range countLayers(final) {
		if n != 1 {
			t.Fatalf("layer %v scheduled %d times", key, n)
		}
	}

	// A resumed instance is preemptible again.
	if _, err := inc.Preempt(1, (pl.StartCycle+pl.FinishCycle)/2); err != nil {
		t.Fatalf("re-preemption after resume failed: %v", err)
	}
}

// TestPreemptWholeInstance: a boundary at the victim's first layer
// start rolls back the entire instance — the checkpoint resumes from
// layer 0 at the original arrival.
func TestPreemptWholeInstance(t *testing.T) {
	inc, ps := elasticInc(t)
	cp, err := inc.Preempt(1, ps[1].StartCycle)
	if err != nil {
		t.Fatal(err)
	}
	if cp.NextLayer != 0 || cp.ResumeCycle != ps[1].ArrivalCycle {
		t.Fatalf("whole-instance checkpoint %+v, want next layer 0 at arrival %d", cp, ps[1].ArrivalCycle)
	}
	if cp.FreedBusyCycles != ps[1].BusyCycles {
		t.Fatalf("freed %d busy cycles, want the full %d", cp.FreedBusyCycles, ps[1].BusyCycles)
	}
	if _, err := inc.Resume(cp, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := inc.Snapshot().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptErrors: unknown instances, boundaries past the finish,
// double preemption, stale resume tokens and fused-chain members are
// all rejected without touching the schedule.
func TestPreemptErrors(t *testing.T) {
	inc, ps := elasticInc(t)
	before := goldenFingerprint(inc.Snapshot())

	if _, err := inc.Preempt(99, 0); err == nil {
		t.Error("unknown instance preempted")
	}
	if _, err := inc.Preempt(1, ps[1].FinishCycle+1); !errors.Is(err, ErrNothingToPreempt) {
		t.Errorf("boundary past finish: got %v, want ErrNothingToPreempt", err)
	}
	if _, err := inc.Resume(Checkpoint{Instance: 1}, 0, 0); err == nil {
		t.Error("resume of a non-preempted instance accepted")
	}
	if got := goldenFingerprint(inc.Snapshot()); got != before {
		t.Fatalf("rejected preemptions mutated the schedule: %s -> %s", before, got)
	}

	cp, err := inc.Preempt(1, (ps[1].StartCycle+ps[1].FinishCycle)/2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Preempt(1, ps[1].StartCycle); err == nil {
		t.Error("double preemption accepted")
	}
	stale := cp
	stale.NextLayer++
	if _, err := inc.Resume(stale, 0, 0); err == nil {
		t.Error("stale checkpoint accepted")
	}
	if _, err := inc.Resume(cp, 0, 0); err != nil {
		t.Fatal(err)
	}

	// Fused-chain members are pinned by their handoff buffers.
	s := incTestScheduler(t)
	chain, err := s.Incremental(incTestHDA(t), "chain")
	if err != nil {
		t.Fatal(err)
	}
	tiny := &dnn.Model{Name: "tiny", Layers: []dnn.Layer{{
		Op: dnn.Conv2D, K: 1, C: 1, Y: 4, X: 4, R: 1, S: 1, Stride: 1, Pad: 0,
	}}}
	if _, err := chain.Extend([]Admission{
		{Instance: workload.Instance{Model: tiny, Batch: 1}},
		{Instance: workload.Instance{Model: tiny, Batch: 2}, After: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Preempt(0, 0); err == nil {
		t.Error("fused predecessor preempted")
	}
	if _, err := chain.Preempt(1, 0); err == nil {
		t.Error("fused successor preempted")
	}
}

// TestResumeOnReassignedSlice: preempt a co-running instance, re-size
// the sub-accelerator slices (Reassign), and resume — the suffix is
// re-costed on the new slice sizes while the committed prefix keeps
// its history, and the combined schedule stays valid.
func TestResumeOnReassignedSlice(t *testing.T) {
	inc, ps := elasticInc(t)
	cp, err := inc.Preempt(1, (ps[1].StartCycle+ps[1].FinishCycle)/2)
	if err != nil {
		t.Fatal(err)
	}

	nh, err := inc.Reassign([]accel.Partition{
		{Style: dataflow.NVDLA, PEs: 768, BWGBps: 12},
		{Style: dataflow.ShiDiannao, PEs: 256, BWGBps: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if nh.Subs[0].HW.PEs != 768 || nh.Subs[1].HW.PEs != 256 {
		t.Fatalf("reassigned HDA has wrong slices: %v", nh)
	}

	pl, err := inc.Resume(cp, 0, cp.ResumeCycle)
	if err != nil {
		t.Fatal(err)
	}
	// The suffix now runs on different slice sizes, so its cost must
	// differ from what the rollback freed (768/256 vs 512/512).
	if pl.BusyCycles == cp.FreedBusyCycles {
		t.Errorf("resumed busy %d identical to the pre-reassign cost; re-costing did not happen", pl.BusyCycles)
	}
	final := inc.Snapshot()
	if final.HDA != nh {
		t.Fatal("snapshot does not carry the reassigned HDA")
	}
	if err := final.Validate(); err != nil {
		t.Fatalf("schedule invalid after reassign+resume: %v", err)
	}

	// A fresh admission also lands on the new slices.
	if _, err := inc.Extend([]Admission{
		{Instance: workload.Instance{Model: mustModel(t, "mobilenetv1"), Batch: 2, ArrivalCycle: inc.Floor()}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := inc.Snapshot().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestReassignErrors: sub-count changes and Definition-1-violating
// partitions are rejected, and rejection leaves costs untouched.
func TestReassignErrors(t *testing.T) {
	inc, _ := elasticInc(t)
	if _, err := inc.Reassign([]accel.Partition{{Style: dataflow.NVDLA, PEs: 1024, BWGBps: 16}}); err == nil {
		t.Error("sub-count change accepted (that is a migration)")
	}
	if _, err := inc.Reassign([]accel.Partition{
		{Style: dataflow.NVDLA, PEs: 512, BWGBps: 8},
		{Style: dataflow.ShiDiannao, PEs: 768, BWGBps: 8},
	}); err == nil {
		t.Error("partition violating the class PE sum accepted")
	}
	// The schedule still extends identically to a control that never
	// saw the rejected calls.
	ctl, _ := elasticInc(t)
	adm := []Admission{{Instance: workload.Instance{Model: mustModel(t, "mobilenetv1"), Batch: 2, ArrivalCycle: 0}}}
	got, err := inc.Extend(adm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ctl.Extend(adm)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Fatalf("rejected Reassign perturbed scheduling: %+v vs %+v", got[0], want[0])
	}
}

// TestReassignIdentityNoop: reassigning to the identical partition
// leaves every subsequent placement bit-identical to a control run.
func TestReassignIdentityNoop(t *testing.T) {
	inc, _ := elasticInc(t)
	ctl, _ := elasticInc(t)
	if _, err := inc.Reassign([]accel.Partition{
		{Style: dataflow.NVDLA, PEs: 512, BWGBps: 8},
		{Style: dataflow.ShiDiannao, PEs: 512, BWGBps: 8},
	}); err != nil {
		t.Fatal(err)
	}
	adm := []Admission{{Instance: workload.Instance{Model: mustModel(t, "unet"), Batch: 1, ArrivalCycle: 500_000}}}
	got, err := inc.Extend(adm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ctl.Extend(adm)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Fatalf("identity reassign changed placement: %+v vs %+v", got[0], want[0])
	}
	if goldenFingerprint(inc.Snapshot()) != goldenFingerprint(ctl.Snapshot()) {
		t.Fatal("identity reassign changed the committed schedule")
	}
}

// TestElasticOffBitIdentity: with elasticity unused the incremental
// path must reproduce the committed golden fingerprint bit for bit —
// the elastic machinery may not perturb a schedule that never calls
// it. This re-runs TestGoldenIncremental's exact scenario and diffs
// the full schedule fingerprint (assignment intervals, makespan span
// and total energy) against the committed constant.
func TestElasticOffBitIdentity(t *testing.T) {
	h := maelstromEdge(t)
	s := MustNew(newCache(), DefaultOptions())
	inc, err := s.Incremental(h, "golden")
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]Admission{
		{
			{Instance: workload.Instance{Model: mustModel(t, "brq-handpose"), Batch: 1}, Priority: 1},
			{Instance: workload.Instance{Model: mustModel(t, "mobilenetv1"), Batch: 1}},
		},
		{
			{Instance: workload.Instance{Model: mustModel(t, "unet"), Batch: 1, ArrivalCycle: 1_000_000}},
		},
		{
			{Instance: workload.Instance{Model: mustModel(t, "resnet50"), Batch: 1, ArrivalCycle: 2_000_000}, Priority: 2},
			{Instance: workload.Instance{Model: mustModel(t, "fl-depthnet"), Batch: 1, ArrivalCycle: 2_000_000}},
		},
	}
	for i, b := range batches {
		if _, err := inc.Extend(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	got := goldenFingerprint(inc.Snapshot())
	const want = "3804a91625d98c00|span=281869269|e=232863776071.920"
	if got != want {
		t.Errorf("elastic-off schedule drifted from the committed fingerprint:\n got %s\nwant %s", got, want)
	}
}

// TestExtendRollbackMidBatch: when a later admission of a batch is
// un-schedulable, the whole batch rolls back — including the earlier
// admissions' already-committed layers — and the schedule state is bit
// identical to before the call.
func TestExtendRollbackMidBatch(t *testing.T) {
	h := &accel.HDA{
		Name:  "rollback-mid",
		Class: accel.Class{Name: "tiny-buf", PEs: 512, BWGBps: 8, GlobalBufBytes: 4096},
		Subs: []accel.SubAccelerator{{
			Name:  "acc1-NVDLA",
			Style: dataflow.NVDLA,
			HW:    maestro.HW{PEs: 512, BWGBps: 8, L2Bytes: 1 << 20, L1Bytes: 1 << 20},
		}},
	}
	s := incTestScheduler(t)
	inc, err := s.Incremental(h, "mid-batch")
	if err != nil {
		t.Fatal(err)
	}
	tiny := &dnn.Model{Name: "tiny", Layers: []dnn.Layer{{
		Op: dnn.Conv2D, K: 1, C: 1, Y: 4, X: 4, R: 1, S: 1, Stride: 1, Pad: 0,
	}}}
	giant := &dnn.Model{Name: "giant", Layers: []dnn.Layer{{
		Op: dnn.Conv2D, K: 512, C: 512, Y: 512, X: 512, R: 3, S: 3, Stride: 1, Pad: 1,
	}}}
	if _, err := inc.Extend([]Admission{{Instance: workload.Instance{Model: tiny, Batch: 1}}}); err != nil {
		t.Fatal(err)
	}
	before := goldenFingerprint(inc.Snapshot())

	// The tiny leading admission is schedulable on its own; the giant
	// trailing one dead-ends the run, which must revert both.
	_, err = inc.Extend([]Admission{
		{Instance: workload.Instance{Model: tiny, Batch: 2}},
		{Instance: workload.Instance{Model: giant, Batch: 1}},
	})
	if err == nil {
		t.Fatal("un-schedulable batch admitted")
	}
	if inc.NumInstances() != 1 {
		t.Fatalf("mid-batch rollback leaked instances: %d, want 1", inc.NumInstances())
	}
	if got := goldenFingerprint(inc.Snapshot()); got != before {
		t.Fatalf("mid-batch rollback left committed state dirty:\n got %s\nwant %s", got, before)
	}
	// The schedulable half still admits cleanly afterwards.
	if _, err := inc.Extend([]Admission{{Instance: workload.Instance{Model: tiny, Batch: 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := inc.Snapshot().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestExtendRollbackPostCommit: a failing Extend after several
// committed batches leaves the schedule extending exactly like a
// control that never saw the failure (timelines, ledger and floor all
// rewound, not just the assignment list).
func TestExtendRollbackPostCommit(t *testing.T) {
	h := &accel.HDA{
		Name:  "rollback-post",
		Class: accel.Class{Name: "tiny-buf", PEs: 512, BWGBps: 8, GlobalBufBytes: 4096},
		Subs: []accel.SubAccelerator{{
			Name:  "acc1-NVDLA",
			Style: dataflow.NVDLA,
			HW:    maestro.HW{PEs: 512, BWGBps: 8, L2Bytes: 1 << 20, L1Bytes: 1 << 20},
		}},
	}
	tiny := &dnn.Model{Name: "tiny", Layers: []dnn.Layer{{
		Op: dnn.Conv2D, K: 1, C: 1, Y: 4, X: 4, R: 1, S: 1, Stride: 1, Pad: 0,
	}}}
	giant := &dnn.Model{Name: "giant", Layers: []dnn.Layer{{
		Op: dnn.Conv2D, K: 512, C: 512, Y: 512, X: 512, R: 3, S: 3, Stride: 1, Pad: 1,
	}}}
	s := incTestScheduler(t)
	inc, err := s.Incremental(h, "post-commit")
	if err != nil {
		t.Fatal(err)
	}
	sc := incTestScheduler(t)
	ctl, err := sc.Incremental(h, "post-commit")
	if err != nil {
		t.Fatal(err)
	}
	for b := 1; b <= 3; b++ {
		adm := []Admission{{Instance: workload.Instance{Model: tiny, Batch: b, ArrivalCycle: int64(b) * 10}}}
		if _, err := inc.Extend(adm); err != nil {
			t.Fatal(err)
		}
		if _, err := ctl.Extend(adm); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := inc.Extend([]Admission{{Instance: workload.Instance{Model: giant, Batch: 1, ArrivalCycle: 40}}}); err == nil {
		t.Fatal("un-schedulable admission accepted")
	}
	adm := []Admission{{Instance: workload.Instance{Model: tiny, Batch: 4, ArrivalCycle: 50}}}
	got, err := inc.Extend(adm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ctl.Extend(adm)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Fatalf("post-rollback placement diverged from control: %+v vs %+v", got[0], want[0])
	}
	if goldenFingerprint(inc.Snapshot()) != goldenFingerprint(ctl.Snapshot()) {
		t.Fatal("post-rollback schedule diverged from control")
	}
}

// TestExtendRollbackOpenHandoff: a failing Extend whose admissions
// created fused links and opened handoff buffers reverts both — the
// predecessor's successor slot frees up and the handoff leaves the
// ledger — so a valid successor can still attach afterwards.
func TestExtendRollbackOpenHandoff(t *testing.T) {
	h := &accel.HDA{
		Name:  "rollback-handoff",
		Class: accel.Class{Name: "tiny-buf", PEs: 512, BWGBps: 8, GlobalBufBytes: 4096},
		Subs: []accel.SubAccelerator{{
			Name:  "acc1-NVDLA",
			Style: dataflow.NVDLA,
			HW:    maestro.HW{PEs: 512, BWGBps: 8, L2Bytes: 1 << 20, L1Bytes: 1 << 20},
		}},
	}
	s := incTestScheduler(t)
	inc, err := s.Incremental(h, "handoff-rollback")
	if err != nil {
		t.Fatal(err)
	}
	tiny := &dnn.Model{Name: "tiny", Layers: []dnn.Layer{{
		Op: dnn.Conv2D, K: 1, C: 1, Y: 4, X: 4, R: 1, S: 1, Stride: 1, Pad: 0,
	}}}
	giant := &dnn.Model{Name: "giant", Layers: []dnn.Layer{{
		Op: dnn.Conv2D, K: 512, C: 512, Y: 512, X: 512, R: 3, S: 3, Stride: 1, Pad: 1,
	}}}
	if _, err := inc.Extend([]Admission{{Instance: workload.Instance{Model: tiny, Batch: 1}}}); err != nil {
		t.Fatal(err)
	}
	before := goldenFingerprint(inc.Snapshot())

	// The batch links a successor to the committed predecessor (the
	// completed predecessor opens its handoff buffer immediately at
	// link time) and then dead-ends on the giant member: both the link
	// and the open handoff must roll back.
	_, err = inc.Extend([]Admission{
		{Instance: workload.Instance{Model: tiny, Batch: 2}, After: 1},
		{Instance: workload.Instance{Model: giant, Batch: 1}},
	})
	if err == nil {
		t.Fatal("un-schedulable batch admitted")
	}
	if got := goldenFingerprint(inc.Snapshot()); got != before {
		t.Fatalf("handoff rollback left committed state dirty:\n got %s\nwant %s", got, before)
	}
	// The predecessor's successor slot must be free again: attaching a
	// new successor succeeds (a leaked link would reject it).
	if _, err := inc.Extend([]Admission{
		{Instance: workload.Instance{Model: tiny, Batch: 3}, After: 1},
	}); err != nil {
		t.Fatalf("successor slot leaked by the failed batch: %v", err)
	}
	if err := inc.Snapshot().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptConservationSeeded is the scheduler half of the
// preemption conservation property: across seeded random
// preempt/resume points on a multi-tenant stream, every admitted layer
// ends up scheduled exactly once, the schedule validates (dependence,
// serialization, the memory ledger's occupancy bound), and the per-sub
// busy/energy aggregates stay consistent with the assignments.
func TestPreemptConservationSeeded(t *testing.T) {
	models := []*dnn.Model{mustModel(t, "mobilenetv1"), mustModel(t, "brq-handpose")}
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		s := incTestScheduler(t)
		inc, err := s.Incremental(incTestHDA(t), "conserve")
		if err != nil {
			t.Fatal(err)
		}
		type token struct {
			cp   Checkpoint
			prio int
		}
		var suspended []token
		placed := make(map[int]Placement)
		arrival := int64(0)
		for i := 0; i < 14; i++ {
			arrival += int64(rng.Intn(2_000_000))
			prio := rng.Intn(3)
			ps, err := inc.Extend([]Admission{{
				Instance: workload.Instance{Model: models[rng.Intn(len(models))], Batch: i + 1, ArrivalCycle: arrival},
				Priority: prio,
			}})
			if err != nil {
				t.Fatalf("seed %d extend %d: %v", seed, i, err)
			}
			placed[ps[0].Instance] = ps[0]

			// Sometimes preempt a random live instance at a random
			// point of its span; sometimes resume a suspended one.
			if rng.Intn(2) == 0 {
				victim := rng.Intn(inc.NumInstances())
				pl, live := placed[victim]
				if live {
					at := pl.StartCycle + rng.Int63n(max(1, pl.FinishCycle-pl.StartCycle))
					cp, err := inc.Preempt(victim, at)
					switch {
					case err == nil:
						suspended = append(suspended, token{cp, rng.Intn(3)})
						delete(placed, victim)
					case errors.Is(err, ErrNothingToPreempt):
						// finished before the boundary; fine
					default:
						t.Fatalf("seed %d preempt %d@%d: %v", seed, victim, at, err)
					}
				}
			}
			if len(suspended) > 0 && rng.Intn(3) == 0 {
				tk := suspended[0]
				suspended = suspended[1:]
				pl, err := inc.Resume(tk.cp, tk.prio, inc.Floor())
				if err != nil {
					t.Fatalf("seed %d resume %d: %v", seed, tk.cp.Instance, err)
				}
				placed[pl.Instance] = pl
			}
		}
		for _, tk := range suspended {
			if _, err := inc.Resume(tk.cp, tk.prio, inc.Floor()); err != nil {
				t.Fatalf("seed %d final resume %d: %v", seed, tk.cp.Instance, err)
			}
		}
		final := inc.Snapshot()
		if err := final.Validate(); err != nil {
			t.Fatalf("seed %d: final schedule invalid: %v", seed, err)
		}
		for key, n := range countLayers(final) {
			if n != 1 {
				t.Fatalf("seed %d: layer %v scheduled %d times", seed, key, n)
			}
		}
	}
}
