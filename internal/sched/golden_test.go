package sched

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/workload"
)

// goldenFingerprint reduces a schedule to a deterministic fingerprint:
// an FNV-1a hash over the exact assignment sequence (instance, layer,
// sub-accelerator, start, end) plus the headline aggregates. Any
// scheduler change that alters a single assignment, start cycle, or
// tie-break shows up as a different fingerprint.
func goldenFingerprint(sch *Schedule) string {
	h := fnv.New64a()
	for _, a := range sch.Assignments {
		fmt.Fprintf(h, "%d/%d@%d:%d-%d;", a.Instance, a.Layer, a.SubAcc, a.Start, a.End)
	}
	return fmt.Sprintf("%016x|span=%d|e=%.3f", h.Sum64(), sch.MakespanCycles, sch.EnergyPJ)
}

// TestGoldenSchedules pins the scheduler's output on the paper's
// workloads to fingerprints captured from the original (pre-
// optimization) implementation. The allocation-free hot loop, the
// event heap and the interval memory ledger are pure performance
// refactors: they must reproduce these schedules bit for bit.
func TestGoldenSchedules(t *testing.T) {
	h := maelstromEdge(t)
	cache := newCache()

	cases := []struct {
		name string
		w    *workload.Workload
		opts Options
		want string
	}{
		{"arvr-a/default", workload.ARVRA(), DefaultOptions(), "4540f1039f3f69f8|span=817907422|e=790939673565.440"},
		{"arvr-b/default", workload.ARVRB(), DefaultOptions(), "f3f7ec6b10ac3864|span=462191551|e=465914416518.880"},
		{"mlperf-1/default", workload.MLPerf(1), DefaultOptions(), "21985aa585750d17|span=1061063704|e=415430375118.080"},
		{"arvr-b/greedy", workload.ARVRB(), GreedyOptions(), "54f40ef51689632c|span=751136310|e=468544892279.519"},
		{"arvr-b/depth-first", workload.ARVRB(), func() Options {
			o := DefaultOptions()
			o.Ordering = DepthFirst
			return o
		}(), "f3f7ec6b10ac3864|span=462191551|e=465914416518.880"},
		{"arvr-a/no-post", workload.ARVRA(), func() Options {
			o := DefaultOptions()
			o.PostProcess = false
			return o
		}(), "4540f1039f3f69f8|span=817907422|e=790939673565.440"},
		{"mlperf-2/latency-metric", workload.MLPerf(2), func() Options {
			o := DefaultOptions()
			o.Metric = MetricLatency
			return o
		}(), "e7aca5b432dd6c9d|span=2107595904|e=830923998858.240"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := MustNew(cache, tc.opts)
			sch, err := s.Schedule(h, tc.w)
			if err != nil {
				t.Fatal(err)
			}
			got := goldenFingerprint(sch)
			if got != tc.want {
				t.Errorf("schedule fingerprint changed:\n got %s\nwant %s", got, tc.want)
			}
		})
	}
}

// TestGoldenIncremental pins the online (incremental) path the same
// way: three admission batches with mixed priorities must land exactly
// where the original implementation put them.
func TestGoldenIncremental(t *testing.T) {
	h := maelstromEdge(t)
	s := MustNew(newCache(), DefaultOptions())
	inc, err := s.Incremental(h, "golden")
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]Admission{
		{
			{Instance: workload.Instance{Model: mustModel(t, "brq-handpose"), Batch: 1}, Priority: 1},
			{Instance: workload.Instance{Model: mustModel(t, "mobilenetv1"), Batch: 1}},
		},
		{
			{Instance: workload.Instance{Model: mustModel(t, "unet"), Batch: 1, ArrivalCycle: 1_000_000}},
		},
		{
			{Instance: workload.Instance{Model: mustModel(t, "resnet50"), Batch: 1, ArrivalCycle: 2_000_000}, Priority: 2},
			{Instance: workload.Instance{Model: mustModel(t, "fl-depthnet"), Batch: 1, ArrivalCycle: 2_000_000}},
		},
	}
	for i, b := range batches {
		if _, err := inc.Extend(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	got := goldenFingerprint(inc.Snapshot())
	const want = "3804a91625d98c00|span=281869269|e=232863776071.920"
	if got != want {
		t.Errorf("incremental fingerprint changed:\n got %s\nwant %s", got, want)
	}
}
