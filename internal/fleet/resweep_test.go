package fleet

import (
	"context"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/dse"
	"repro/internal/serve"
	"repro/internal/workload"
)

func resweepFleet(t *testing.T, n int) *Fleet {
	t.Helper()
	cache := newTestCache()
	sp := dse.Space{
		Class:   accel.Edge,
		Styles:  []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao},
		PEUnits: 4, BWUnits: 2,
	}
	opts := dse.DefaultOptions()
	opts.BestOnly = true
	opts.Prune = true
	sw, err := dse.NewSweeper(cache, sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	fopts := DefaultOptions()
	fopts.Sweeper = sw
	f, err := Replicated(cache, testHDA(t), n, fopts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestObservedMix: the dispatcher's per-model counts become a
// normalized deterministic workload.
func TestObservedMix(t *testing.T) {
	f := resweepFleet(t, 2)
	if mix := f.ObservedMix("mix"); mix != nil {
		t.Fatalf("mix before any traffic: %v", mix)
	}
	reqs := append(skewedRequests(2),
		serve.Request{Tenant: "light", Model: "mobilenetv1", ArrivalCycle: 0},
		serve.Request{Tenant: "light", Model: "mobilenetv1", ArrivalCycle: 0},
		serve.Request{Tenant: "light", Model: "mobilenetv1", ArrivalCycle: 0})
	for _, r := range reqs {
		tk, err := f.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	mix := f.ObservedMix("mix")
	if mix == nil {
		t.Fatal("no mix after traffic")
	}
	// 2 resnet50 : 5 mobilenetv1 -> min=2 -> resnet 1, mobilenet
	// round(5/2)=3 (nearest, not ceiling: a 9:8 mix must stay ~1:1).
	want := map[string]int{"mobilenetv1": 3, "resnet50": 1}
	got := map[string]int{}
	for _, in := range mix.Instances {
		got[in.Model.Name]++
	}
	for m, n := range want {
		if got[m] != n {
			t.Errorf("mix[%s] = %d batches, want %d (full mix %v)", m, got[m], n, got)
		}
	}
	if _, err := f.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestResweepObservedMix: a fleet with a sweeper re-runs the search on
// its own traffic and returns a servable best partition; repeated
// probes on the same history are identical (warm sweep state must not
// change the answer).
func TestResweepObservedMix(t *testing.T) {
	f := resweepFleet(t, 2)
	if _, err := f.Resweep(nil); err == nil || !strings.Contains(err.Error(), "no traffic") {
		t.Fatalf("resweep before traffic: %v", err)
	}
	for _, r := range skewedRequests(2) {
		tk, err := f.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	res1, err := f.Resweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Best.HDA == nil || res1.Best.HDA.NumSubs() != 2 {
		t.Fatalf("resweep best: %v", res1.Best.HDA)
	}
	if res1.Explored+res1.Pruned == 0 {
		t.Error("resweep covered no partitions")
	}
	res2, err := f.Resweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Best.HDA.String() != res2.Best.HDA.String() || res1.Best.EDP != res2.Best.EDP {
		t.Errorf("repeated resweep differs: %v vs %v", res1.Best.HDA, res2.Best.HDA)
	}
	if _, err := f.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestResweepExplicitWorkload: an explicit workload overrides the
// observed mix, and a fleet without a sweeper refuses.
func TestResweepExplicitWorkload(t *testing.T) {
	f := resweepFleet(t, 1)
	w := workload.MustNew("explicit", []workload.Entry{{Model: "unet", Batches: 1}})
	res, err := f.Resweep(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Schedule == nil {
		t.Error("resweep best has no schedule")
	}
	if _, err := f.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	bare := testFleet(t, newTestCache(), 1, CostAware)
	if _, err := bare.Resweep(w); err == nil || !strings.Contains(err.Error(), "no sweeper") {
		t.Errorf("sweeper-less resweep: %v", err)
	}
	if _, err := bare.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
