// Package fleet is Herald's multi-HDA serving tier: N replica serving
// engines — homogeneous replicas of one DSE-picked HDA, or
// heterogeneous replicas taken from the top-K DSE design points
// (dse.Result.TopK) — behind a dispatcher with pluggable routing
// policies. One serve.Engine over one fixed HDA schedules at most one
// accelerator's worth of work; a fleet scales serving throughput
// near-linearly by running independent engines over a shared
// maestro.Cache, so cost-model results computed by any replica are
// reused by every other.
//
// Routing policies:
//
//   - RoundRobin cycles through replicas in dispatch order.
//   - LeastOutstanding probes every engine's live load (serve.Load)
//     and dispatches to the replica with the smallest committed
//     backlog.
//   - CostAware estimates each replica's completion time (ETA) for
//     the candidate model — the dispatcher-side horizon of work
//     already routed there, plus the model's best-case busy cycles on
//     that replica's sub-accelerators from the shared cost cache —
//     and picks the minimum. On heterogeneous fleets this routes each
//     model toward the replica whose dataflow mix runs it fastest;
//     on homogeneous fleets it is work-aware load balancing (a skewed
//     heavy/light request mix defeats round-robin's aliasing).
//
// RoundRobin and CostAware dispatch decisions are serialized and
// depend only on the submission sequence (never on wall-clock or
// goroutine timing), so a fixed request sequence always produces the
// same replica assignment — replayable capacity planning.
// LeastOutstanding is the exception: it probes live engine state, so
// its assignments depend on how far each engine's scheduling
// goroutine has progressed.
//
// A fleet equipped with a dse.Sweeper (Options.Sweeper) additionally
// supports Resweep: re-running the hardware-partition search on the
// observed tenant mix against warm sweep state. This is the probe the
// roadmap's dynamic-repartitioning controller builds on — it reports
// what partition today's traffic would pick, without acting on it.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/accel"
	"repro/internal/dnn"
	"repro/internal/dse"
	"repro/internal/maestro"
	"repro/internal/serve"
	"repro/internal/workload"
)

// Policy selects how submissions are routed across replicas.
type Policy int

const (
	// RoundRobin dispatches to replicas cyclically in submission order.
	RoundRobin Policy = iota
	// LeastOutstanding dispatches to the replica with the least
	// committed work (live engine backlog probe).
	LeastOutstanding
	// CostAware dispatches to the replica with the earliest estimated
	// completion time for the candidate model (default).
	CostAware
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastOutstanding:
		return "least-outstanding"
	case CostAware:
		return "cost-aware"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy resolves a routing policy by name.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "round-robin", "rr":
		return RoundRobin, nil
	case "least-outstanding", "lo":
		return LeastOutstanding, nil
	case "cost-aware", "eta":
		return CostAware, nil
	}
	return 0, fmt.Errorf("fleet: unknown policy %q (want round-robin, least-outstanding, cost-aware)", name)
}

// Options configures a fleet.
type Options struct {
	// Serve configures every replica engine identically.
	Serve serve.Options
	// Policy selects the routing policy (default CostAware).
	Policy Policy

	// Sweeper optionally equips the fleet with a reusable DSE handle
	// over the partition space its HDAs came from. It is what makes
	// Resweep possible: re-running the partition search on the
	// observed tenant mix against warm schedulers and memo tables —
	// the probe a dynamic-repartitioning controller periodically
	// fires to learn whether workload drift has moved the optimum.
	Sweeper *dse.Sweeper
}

// DefaultOptions returns a cost-aware fleet over the serving-engine
// defaults.
func DefaultOptions() Options {
	return Options{Serve: serve.DefaultOptions(), Policy: CostAware}
}

// replica is one serving engine plus the dispatcher's bookkeeping.
type replica struct {
	id     int
	hda    *accel.HDA
	engine *serve.Engine

	// inflight counts requests dispatched but not yet finished,
	// decremented by the engine's OnRequestDone hook (runs on the
	// engine's scheduling goroutine, hence atomic).
	inflight atomic.Int64

	// Dispatcher state, under Fleet.mu.
	dispatched int64
	// horizon is the cost-aware ETA ledger: the estimated completion
	// cycle of all work routed to this replica so far.
	horizon int64
	// est memoizes each model's best-case busy cycles on this HDA.
	est map[*dnn.Model]int64
}

// estCycles returns the model's best-case busy cycles on this
// replica's HDA — every layer on its cheapest sub-accelerator, via
// the shared cost cache. Steady state is one map hit per dispatch.
// Fleet.mu held.
func (r *replica) estCycles(cache *maestro.Cache, model *dnn.Model) int64 {
	if model == nil {
		return 0
	}
	if v, ok := r.est[model]; ok {
		return v
	}
	var total int64
	for li := range model.Layers {
		best := int64(math.MaxInt64)
		for _, sub := range r.hda.Subs {
			if c := cache.EstimateRef(&model.Layers[li], sub.Style, sub.HW).Cycles; c < best {
				best = c
			}
		}
		total += best
	}
	r.est[model] = total
	return total
}

// Fleet dispatches inference requests across replica serving engines.
type Fleet struct {
	cache  *maestro.Cache
	policy Policy
	start  time.Time

	replicas []*replica

	// mu serializes dispatch decisions (and guards the dispatcher
	// bookkeeping), which is what makes routing deterministic for a
	// fixed submission sequence.
	mu       sync.Mutex
	rrNext   int
	draining bool

	// modelCounts tracks accepted submissions per model name (under
	// mu) — the observed tenant mix Resweep searches over.
	modelCounts map[string]int64

	// resweepMu serializes Resweep calls: a dse.Sweeper is a reusable
	// handle but not safe for concurrent sweeps.
	resweepMu sync.Mutex
	sweeper   *dse.Sweeper
}

// New starts one serving engine per HDA, all sharing one cost cache.
// Passing the same *accel.HDA several times builds a homogeneous
// fleet (see Replicated); distinct HDAs — e.g. the top-K points of a
// dse.Search — build a heterogeneous one.
func New(cache *maestro.Cache, hdas []*accel.HDA, opts Options) (*Fleet, error) {
	if cache == nil {
		return nil, fmt.Errorf("fleet: nil cost cache")
	}
	if len(hdas) == 0 {
		return nil, fmt.Errorf("fleet: needs at least one replica HDA")
	}
	if opts.Policy < RoundRobin || opts.Policy > CostAware {
		return nil, fmt.Errorf("fleet: unknown policy %d", int(opts.Policy))
	}
	f := &Fleet{
		cache:       cache,
		policy:      opts.Policy,
		start:       time.Now(),
		modelCounts: make(map[string]int64),
		sweeper:     opts.Sweeper,
	}
	for i, h := range hdas {
		r := &replica{id: i, hda: h, est: make(map[*dnn.Model]int64)}
		so := opts.Serve
		userHook := so.OnRequestDone
		so.OnRequestDone = func(rec serve.Record) {
			r.inflight.Add(-1)
			if userHook != nil {
				userHook(rec)
			}
		}
		eng, err := serve.New(cache, h, so)
		if err != nil {
			// Stop the engines already started before reporting.
			for _, started := range f.replicas {
				_, _ = started.engine.Drain(context.Background())
			}
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		r.engine = eng
		f.replicas = append(f.replicas, r)
	}
	return f, nil
}

// Replicated starts a homogeneous fleet: n replica engines of one HDA.
func Replicated(cache *maestro.Cache, hda *accel.HDA, n int, opts Options) (*Fleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("fleet: needs n >= 1 replicas (got %d)", n)
	}
	hdas := make([]*accel.HDA, n)
	for i := range hdas {
		hdas[i] = hda
	}
	return New(cache, hdas, opts)
}

// Policy returns the fleet's routing policy.
func (f *Fleet) Policy() Policy { return f.policy }

// Size returns the number of replicas.
func (f *Fleet) Size() int { return len(f.replicas) }

// Engine returns replica i's serving engine (for per-replica probes
// and HTTP delegation).
func (f *Fleet) Engine(i int) *serve.Engine { return f.replicas[i].engine }

// Ticket tracks a dispatched submission and the replica serving it.
type Ticket struct {
	*serve.Ticket
	Replica int
}

// Submit routes one request to a replica under the fleet's policy and
// admits it there. The returned ticket carries the serving replica's
// index. Dispatch bookkeeping is only committed for accepted
// submissions, so a rejected request (unknown model, full tenant
// queue) does not skew future routing.
func (f *Fleet) Submit(req serve.Request) (*Ticket, error) {
	// Unknown models resolve to nil: the picked engine rejects and
	// accounts them, and a zero cost estimate keeps routing sound.
	model, _ := dnn.ByName(req.Model)

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.draining {
		return nil, serve.ErrDraining
	}
	r, eta := f.pickLocked(model, req.ArrivalCycle)
	// Count the dispatch before the engine sees it: the engine's
	// scheduling goroutine can finish the request (and decrement
	// inflight via the hook) before Submit even returns.
	r.inflight.Add(1)
	ticket, err := r.engine.Submit(req)
	if err != nil {
		r.inflight.Add(-1)
		return nil, err
	}
	r.dispatched++
	if model != nil {
		f.modelCounts[model.Name]++
	}
	if f.policy == CostAware {
		r.horizon = eta
	}
	if f.policy == RoundRobin {
		f.rrNext++
	}
	return &Ticket{Ticket: ticket, Replica: r.id}, nil
}

// pickLocked chooses the replica for one submission and, for the
// cost-aware policy, returns the ETA to commit to its horizon. Ties
// break toward the lower replica index. f.mu held.
func (f *Fleet) pickLocked(model *dnn.Model, arrival int64) (*replica, int64) {
	switch f.policy {
	case LeastOutstanding:
		best, bestLoad := f.replicas[0], f.replicas[0].engine.Load()
		for _, r := range f.replicas[1:] {
			ld := r.engine.Load()
			if ld.BacklogCycles < bestLoad.BacklogCycles ||
				(ld.BacklogCycles == bestLoad.BacklogCycles && ld.Pending < bestLoad.Pending) {
				best, bestLoad = r, ld
			}
		}
		return best, 0
	case CostAware:
		// "Now" arrivals (negative) estimate from cycle 0: the horizon
		// term dominates and wall-clock must not enter dispatch (it
		// would break replayability).
		if arrival < 0 {
			arrival = 0
		}
		var best *replica
		var bestETA int64
		for _, r := range f.replicas {
			eta := max(r.horizon, arrival) + r.estCycles(f.cache, model)
			if best == nil || eta < bestETA {
				best, bestETA = r, eta
			}
		}
		return best, bestETA
	default: // RoundRobin
		return f.replicas[f.rrNext%len(f.replicas)], 0
	}
}

// ReplicaStats is one replica's slice of the fleet statistics.
type ReplicaStats struct {
	Replica    int    `json:"replica"`
	HDA        string `json:"hda"`
	Dispatched int64  `json:"dispatched"`
	Inflight   int64  `json:"inflight"`
	// HorizonCycles is the cost-aware dispatcher's completion-time
	// estimate for everything routed here (0 under other policies).
	HorizonCycles int64       `json:"horizon_cycles"`
	Engine        serve.Stats `json:"engine"`
}

// Stats is a fleet-wide snapshot: per-replica engine statistics plus
// tenant aggregates merged across replicas.
type Stats struct {
	Policy        string  `json:"policy"`
	Replicas      int     `json:"replicas"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed,omitempty"`
	Rejected  int64 `json:"rejected,omitempty"`
	Pending   int64 `json:"pending"`

	// MakespanCycles is the slowest replica's committed horizon —
	// replicas run in parallel in simulated time, so fleet throughput
	// is total completions over the maximum makespan, not the sum.
	MakespanCycles   int64   `json:"makespan_cycles"`
	SimThroughputRPS float64 `json:"sim_throughput_rps"`

	// Tenants aggregates each tenant across every replica; latency
	// percentiles are computed over the merged sample windows (they
	// cannot be derived from per-replica percentiles).
	Tenants []serve.TenantStats `json:"tenants"`

	PerReplica []ReplicaStats `json:"per_replica"`
}

// Stats returns the current fleet-wide statistics.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	st := Stats{
		Policy:        f.policy.String(),
		Replicas:      len(f.replicas),
		UptimeSeconds: time.Since(f.start).Seconds(),
	}
	dispatched := make([]int64, len(f.replicas))
	horizons := make([]int64, len(f.replicas))
	for i, r := range f.replicas {
		dispatched[i] = r.dispatched
		horizons[i] = r.horizon
	}
	f.mu.Unlock()

	type agg struct {
		serve.TenantWindow
		latencies []int64
	}
	tenants := make(map[string]*agg)
	var clockGHz float64
	for i, r := range f.replicas {
		es := r.engine.Stats()
		clockGHz = es.ClockGHz
		st.Submitted += es.Submitted
		st.Completed += es.Completed
		st.Failed += es.Failed
		st.Rejected += es.Rejected
		st.Pending += es.Pending
		if es.MakespanCycles > st.MakespanCycles {
			st.MakespanCycles = es.MakespanCycles
		}
		st.PerReplica = append(st.PerReplica, ReplicaStats{
			Replica:       i,
			HDA:           r.hda.Name,
			Dispatched:    dispatched[i],
			Inflight:      r.inflight.Load(),
			HorizonCycles: horizons[i],
			Engine:        es,
		})
		for _, w := range r.engine.TenantWindows() {
			a := tenants[w.Tenant]
			if a == nil {
				a = &agg{TenantWindow: serve.TenantWindow{Tenant: w.Tenant}}
				tenants[a.Tenant] = a
			}
			a.Submitted += w.Submitted
			a.Completed += w.Completed
			a.Failed += w.Failed
			a.Rejected += w.Rejected
			a.SLATracked += w.SLATracked
			a.SLAViolations += w.SLAViolations
			a.LatencySum += w.LatencySum
			a.QueueSum += w.QueueSum
			a.EnergyPJ += w.EnergyPJ
			a.latencies = append(a.latencies, w.Latencies...)
		}
	}

	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := tenants[name]
		ts := serve.TenantStats{
			Tenant:        a.Tenant,
			Submitted:     a.Submitted,
			Completed:     a.Completed,
			Failed:        a.Failed,
			Rejected:      a.Rejected,
			SLATracked:    a.SLATracked,
			SLAViolations: a.SLAViolations,
			EnergyPJ:      a.EnergyPJ,
		}
		if a.Completed > 0 {
			sort.Slice(a.latencies, func(i, j int) bool { return a.latencies[i] < a.latencies[j] })
			ts.MeanLatencyCycles = a.LatencySum / a.Completed
			ts.P50LatencyCycles = serve.Percentile(a.latencies, 50)
			ts.P95LatencyCycles = serve.Percentile(a.latencies, 95)
			ts.P99LatencyCycles = serve.Percentile(a.latencies, 99)
			ts.MeanQueueCycles = a.QueueSum / a.Completed
		}
		st.Tenants = append(st.Tenants, ts)
	}

	if st.MakespanCycles > 0 && clockGHz > 0 {
		simSeconds := float64(st.MakespanCycles) / (clockGHz * 1e9)
		st.SimThroughputRPS = float64(st.Completed) / simSeconds
	}
	return st
}

// ObservedMix snapshots the fleet's served traffic as a workload: one
// entry per model the dispatcher accepted, batch counts scaled to the
// smallest observed share (min positive count = 1 batch, others
// rounded to the nearest ratio — ceiling rounding would turn a 9:8
// mix into a 2:1 probe) and capped at maxMixBatches so a probe sweep
// stays cheap regardless of absolute traffic volume. Returns nil when
// nothing has been observed yet. The mix is deterministic for a fixed
// submission history.
func (f *Fleet) ObservedMix(name string) *workload.Workload {
	f.mu.Lock()
	counts := make(map[string]int64, len(f.modelCounts))
	for m, n := range f.modelCounts {
		counts[m] = n
	}
	f.mu.Unlock()
	if len(counts) == 0 {
		return nil
	}
	names := make([]string, 0, len(counts))
	minCount := int64(0)
	for m, n := range counts {
		names = append(names, m)
		if minCount == 0 || n < minCount {
			minCount = n
		}
	}
	sort.Strings(names)
	entries := make([]workload.Entry, 0, len(names))
	for _, m := range names {
		b := int((counts[m] + minCount/2) / minCount) // round to nearest share
		if b < 1 {
			b = 1
		}
		if b > maxMixBatches {
			b = maxMixBatches
		}
		entries = append(entries, workload.Entry{Model: m, Batches: b})
	}
	w, err := workload.New(name, entries)
	if err != nil {
		return nil // defensive: counted models come from the zoo
	}
	return w
}

// maxMixBatches caps each model's batch count in ObservedMix: the mix
// is a representative ratio, not a replay, and probe sweeps must stay
// cheap under heavy traffic.
const maxMixBatches = 8

// Resweep re-runs the fleet's partition search (Options.Sweeper) on
// workload w — or on the observed tenant mix when w is nil — and
// returns the search result. It only reports what partition the
// current traffic would pick; acting on it (spawning replicas on the
// winner and draining the old ones) is the dynamic-repartitioning
// controller's job, which builds on this probe. Sweeps are serialized
// but do not block dispatch.
func (f *Fleet) Resweep(w *workload.Workload) (*dse.Result, error) {
	if f.sweeper == nil {
		return nil, fmt.Errorf("fleet: no sweeper configured (set Options.Sweeper to enable Resweep)")
	}
	if w == nil {
		if w = f.ObservedMix("observed-mix"); w == nil {
			return nil, fmt.Errorf("fleet: no traffic observed yet")
		}
	}
	f.resweepMu.Lock()
	defer f.resweepMu.Unlock()
	return f.sweeper.Sweep(w)
}

// Drain stops admissions, fans the drain out to every replica, joins
// them, and returns the final fleet statistics.
func (f *Fleet) Drain(ctx context.Context) (Stats, error) {
	f.mu.Lock()
	f.draining = true
	f.mu.Unlock()

	errs := make([]error, len(f.replicas))
	var wg sync.WaitGroup
	for i, r := range f.replicas {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			if _, err := r.engine.Drain(ctx); err != nil {
				errs[i] = fmt.Errorf("fleet: replica %d drain: %w", i, err)
			}
		}(i, r)
	}
	wg.Wait()
	return f.Stats(), errors.Join(errs...)
}
