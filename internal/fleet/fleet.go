// Package fleet is Herald's multi-HDA serving tier: N replica serving
// engines — homogeneous replicas of one DSE-picked HDA, or
// heterogeneous replicas taken from the top-K DSE design points
// (dse.Result.TopK) — behind a dispatcher with pluggable routing
// policies. One serve.Engine over one fixed HDA schedules at most one
// accelerator's worth of work; a fleet scales serving throughput
// near-linearly by running independent engines over a shared
// maestro.Cache, so cost-model results computed by any replica are
// reused by every other.
//
// Routing policies:
//
//   - RoundRobin cycles through replicas in dispatch order.
//   - LeastOutstanding probes every engine's live load (serve.Load)
//     and dispatches to the replica with the smallest committed
//     backlog.
//   - CostAware estimates each replica's completion time (ETA) for
//     the candidate model — the dispatcher-side horizon of work
//     already routed there, plus the model's best-case busy cycles on
//     that replica's sub-accelerators from the shared cost cache —
//     and picks the minimum. On heterogeneous fleets this routes each
//     model toward the replica whose dataflow mix runs it fastest;
//     on homogeneous fleets it is work-aware load balancing (a skewed
//     heavy/light request mix defeats round-robin's aliasing).
//
// RoundRobin and CostAware dispatch decisions are serialized and
// depend only on the submission sequence (never on wall-clock or
// goroutine timing), so a fixed request sequence always produces the
// same replica assignment — replayable capacity planning.
// LeastOutstanding is the exception: it probes live engine state, so
// its assignments depend on how far each engine's scheduling
// goroutine has progressed.
//
// A fleet equipped with a dse.Sweeper (Options.Sweeper) additionally
// supports Resweep: re-running the hardware-partition search on the
// observed tenant mix against warm sweep state. Resweep only reports
// what partition today's traffic would pick; acting on it is the
// Controller's job.
//
// # Dynamic repartitioning
//
// The Controller closes the probe→action gap. Each Step re-sweeps the
// observed mix, evaluates the serving partition on that same mix, and
// — when the sweep winner beats it by a configurable objective
// threshold for enough consecutive probes (hysteresis), outside a
// post-migration cooldown — executes a live migration via
// Fleet.Migrate: a new generation of replica engines is built on the
// winning partition (prewarmed with the mix so the cost-cache
// locality hands over), dispatch atomically switches to them, and the
// old generation is quiesced (admissions stop, in-flight requests
// finish) and retired. No request is lost or double-served: requests
// dispatched before the switch complete on their original engine, and
// every retired engine's statistics fold into the fleet aggregates.
//
// Dispatch stays deterministic across migrations: a fixed submission
// sequence with Controller.Step calls at fixed points always produces
// the same replica assignments, the same decisions, and the same
// final partition (replayable capacity planning, probed by the
// deterministic-replay tests).
//
// # Fault tolerance
//
// The fleet assumes replicas fail. A FaultPlan (Options.Faults)
// injects cycle-scheduled crashes, stalls, admission-failure bursts
// and recoveries, clocked by submission arrival cycles so chaos runs
// replay bit-identically. The dispatcher tracks per-replica health: a
// consecutive-failure circuit breaker with half-open probing routes
// around replicas that stop admitting, and stall detection over the
// cost-aware work-horizon ledger flags gray failures. A crash
// extracts the dead replica's queued requests (serve.Engine.Crash)
// and fails them over onto survivors under a per-request attempt
// budget — the conservation invariant (no request lost or
// double-served) holds across any crash point, including a fused
// segment chain whose serving replica dies mid-chain. Overload sheds
// at admission: when the best ETA already blows a request's SLA
// budget and its tenant is at or above the fair share of outstanding
// work, the request is rejected with a ShedError (HTTP 429 +
// Retry-After) instead of deepening the backlog. See fault.go; every
// decision lands in a replayable decision log (Decisions, Health).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/accel"
	"repro/internal/dnn"
	"repro/internal/dse"
	"repro/internal/maestro"
	"repro/internal/serve"
	"repro/internal/workload"
)

// Policy selects how submissions are routed across replicas.
type Policy int

const (
	// RoundRobin dispatches to replicas cyclically in submission order.
	RoundRobin Policy = iota
	// LeastOutstanding dispatches to the replica with the least
	// committed work (live engine backlog probe).
	LeastOutstanding
	// CostAware dispatches to the replica with the earliest estimated
	// completion time for the candidate model (default).
	CostAware
)

// String names the policy as the flag/stats surface spells it.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastOutstanding:
		return "least-outstanding"
	case CostAware:
		return "cost-aware"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy resolves a routing policy by name.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "round-robin", "rr":
		return RoundRobin, nil
	case "least-outstanding", "lo":
		return LeastOutstanding, nil
	case "cost-aware", "eta":
		return CostAware, nil
	}
	return 0, fmt.Errorf("fleet: unknown policy %q (want round-robin, least-outstanding, cost-aware)", name)
}

// Options configures a fleet.
type Options struct {
	// Serve configures every replica engine identically.
	Serve serve.Options
	// Policy selects the routing policy (default CostAware).
	Policy Policy

	// Sweeper optionally equips the fleet with a reusable DSE handle
	// over the partition space its HDAs came from. It is what makes
	// Resweep possible: re-running the partition search on the
	// observed tenant mix against warm schedulers and memo tables —
	// the probe a dynamic-repartitioning controller periodically
	// fires to learn whether workload drift has moved the optimum.
	Sweeper *dse.Sweeper

	// Plans maps model names to fusion plans (dse.Result.SegmentPlans).
	// When set, the FLEET owns fusion: a request whose model has a
	// multi-segment plan is decomposed at dispatch — each segment is
	// routed independently (so the horizon ledger can move a segment to
	// another replica when its ETA favors it), chained by completion
	// (segment k+1's arrival is segment k's finish cycle), and merged
	// into one record under one ticket. Replica engines then receive
	// plain segment submissions (their own Plans are stripped to avoid
	// double decomposition). Leave nil and set Serve.Plans instead to
	// fuse within each replica engine (scheduler precedence + handoff
	// buffers, no cross-replica segment routing).
	Plans map[string]dse.SegmentPlan

	// MixHalfLife sets the observed-mix decay half-life, in accepted
	// submissions: each model's mix weight halves every MixHalfLife
	// subsequent accepted submissions, so ObservedMix (and with it the
	// repartitioning controller's probes) tracks recent traffic
	// instead of all-time history. Models decayed below 1% of the
	// total weight drop out of the mix. 0 disables decay (all-time
	// counts, the legacy behavior).
	MixHalfLife int

	// Faults optionally injects a deterministic fault schedule (crash,
	// stall, admission-failure burst, recover), clocked by submission
	// arrival cycles. Nil serves fault-free.
	Faults *FaultPlan

	// Health tunes failure detection, failover budgets and overload
	// shedding; the zero value uses detection defaults with the opt-in
	// features (stall detection, shedding) off.
	Health HealthOptions

	// OnAccept, when set, is called once per accepted submission with
	// the normalized request — model name resolved, live-clock
	// arrivals pinned to an explicit cycle — and the fusion-plan id
	// ("model/segments", "" when unfused). It fires under the dispatch
	// lock, so callback order is exactly the fleet's acceptance order;
	// trace capture (internal/capture) hooks here. Callbacks must be
	// fast and must not call back into the fleet. Rejected and shed
	// submissions do not fire it.
	OnAccept func(req serve.Request, plan string)

	// StartPaused starts every replica engine paused — including
	// engines rebuilt by fault recovery and spawned by Migrate. The
	// replay harness (internal/replay) sets it to pin batch
	// composition: work admitted while paused forms a static queue, so
	// the scheduling rounds after ResumeAll see identical queues run
	// to run, making latency percentiles (not just counters and
	// decisions) bit-reproducible. Live serving leaves it false.
	StartPaused bool
}

// DefaultOptions returns a cost-aware fleet over the serving-engine
// defaults.
func DefaultOptions() Options {
	return Options{Serve: serve.DefaultOptions(), Policy: CostAware}
}

// replica is one serving engine plus the dispatcher's bookkeeping.
type replica struct {
	id     int
	gen    int // the migration generation that created it
	hda    *accel.HDA
	engine *serve.Engine

	// inflight counts requests dispatched but not yet finished,
	// decremented by the engine's OnRequestDone hook (runs on the
	// engine's scheduling goroutine, hence atomic).
	inflight atomic.Int64

	// Dispatcher state, under Fleet.mu.
	dispatched int64
	// horizon is the cost-aware ETA ledger: the estimated completion
	// cycle of all work routed to this replica so far.
	horizon int64
	// est memoizes each model's best-case busy cycles on this HDA.
	est map[*dnn.Model]int64

	// Fault-layer state (see fault.go), under Fleet.mu.
	health healthState
	// stall scales this replica's cost estimates — the injected
	// slowdown factor (1 = nominal).
	stall float64
	// admitFails is the remaining injected admission-failure burst.
	admitFails int
	// consecFails is the circuit breaker's failure streak.
	consecFails int
	// openedSeq is the fleet dispatch sequence at which the breaker
	// last opened (the half-open probe window counts from here).
	openedSeq int64

	// handler lazily builds the engine's HTTP API for /v1/replicas/{i}
	// delegation (replica sets change across migrations, so handlers
	// are per-replica, not snapshotted at Fleet.Handler time).
	handlerOnce sync.Once
	handler     http.Handler
}

// httpHandler returns (building on first use) the replica engine's
// HTTP API.
func (r *replica) httpHandler() http.Handler {
	r.handlerOnce.Do(func() { r.handler = r.engine.Handler() })
	return r.handler
}

// estCycles returns the model's best-case busy cycles on this
// replica's HDA — every layer on its cheapest sub-accelerator, via
// the shared cost cache. Steady state is one map hit per dispatch.
// Fleet.mu held.
func (r *replica) estCycles(cache *maestro.Cache, model *dnn.Model) int64 {
	if model == nil {
		return 0
	}
	if v, ok := r.est[model]; ok {
		return v
	}
	var total int64
	for li := range model.Layers {
		best := int64(math.MaxInt64)
		for _, sub := range r.hda.Subs {
			if c := cache.EstimateRef(&model.Layers[li], sub.Style, sub.HW).Cycles; c < best {
				best = c
			}
		}
		total += best
	}
	r.est[model] = total
	return total
}

// Fleet dispatches inference requests across replica serving engines.
type Fleet struct {
	cache     *maestro.Cache
	policy    Policy
	serveOpts serve.Options
	start     time.Time
	// onAccept is the capture hook (Options.OnAccept); startPaused
	// makes every spawned engine start frozen (Options.StartPaused).
	// Both construction-set, immutable afterwards.
	onAccept    func(req serve.Request, plan string)
	startPaused bool

	// mu serializes dispatch decisions (and guards the dispatcher
	// bookkeeping), which is what makes routing deterministic for a
	// fixed submission sequence.
	mu       sync.Mutex
	replicas []*replica // the active generation: the only dispatch targets; guarded by mu
	// retiring holds previous-generation replicas that are quiesced
	// but still finishing in-flight work; once drained they fold into
	// history and are dropped. Guarded by mu.
	retiring []*replica
	// history accumulates the final statistics of fully-retired
	// generations so fleet aggregates never lose a served request.
	// Guarded by mu.
	history    retiredHistory
	rrNext     int   // guarded by mu
	draining   bool  // guarded by mu
	generation int   // guarded by mu
	migrations int64 // guarded by mu
	nextID     int   // guarded by mu

	// mix tracks accepted submissions per model name (under mu) — the
	// observed tenant mix Resweep searches over. With MixHalfLife set,
	// entries decay exponentially per accepted submission (lazily, at
	// mixTick distance); with decay 1 the weights are exact counts.
	mix      map[string]*mixEntry // guarded by mu
	mixTick  int64                // guarded by mu
	mixDecay float64              // per-submission multiplier; 1 = no decay (construction-set, immutable)

	// plans is the fleet-owned fusion table (Options.Plans).
	plans map[string]dse.SegmentPlan
	// chainWG tracks in-flight fused chain goroutines; Drain waits on
	// it before quiescing engines, so every accepted chain finishes
	// submitting (and serving) its segments.
	chainWG sync.WaitGroup
	// segStats / crossHandoffs accumulate fleet-level fused counters
	// (under mu). Engines in a fleet-fused deployment see only plain
	// segment submissions, so these are the only fused counters.
	segStats      serve.SegmentStats // guarded by mu
	crossHandoffs int64              // guarded by mu

	// resweepMu serializes Resweep calls: a dse.Sweeper is a reusable
	// handle but not safe for concurrent sweeps.
	resweepMu sync.Mutex
	sweeper   *dse.Sweeper

	// ctrlMu guards the attached repartitioning controller (set by
	// NewController, read by the HTTP status endpoint).
	ctrlMu     sync.Mutex
	controller *Controller // guarded by ctrlMu

	// Fault-tolerance state (see fault.go), under mu. The fault clock
	// (faultCycle) advances only with submission arrival cycles;
	// dispatchSeq counts routing decisions (the breaker's probe window
	// is measured in it).
	health         HealthOptions    // construction-set limits, immutable afterwards
	faults         []FaultEvent     // guarded by mu
	faultNext      int              // guarded by mu
	faultCycle     int64            // guarded by mu
	dispatchSeq    int64            // guarded by mu
	failedReplicas []*replica       // crashed, awaiting FaultRecover; guarded by mu
	decisions      []FaultDecision  // guarded by mu
	decSeq         int              // guarded by mu
	shed           int64            // guarded by mu
	shedT          map[string]int64 // guarded by mu
	failovers      int64            // guarded by mu
	crashes        int64            // guarded by mu
	recoveries     int64            // guarded by mu
	breakerTrips   int64            // guarded by mu
	// lostFailed counts crash-orphaned requests no survivor could take
	// (terminal fleet-side failures). Their engines erased them, so
	// aggregates add lostFailed to both Submitted and Failed to keep
	// conservation exact.
	// Guarded by mu.
	lostFailed  int64
	lostFailedT map[string]int64 // guarded by mu

	// outMu guards the failover queue and the per-tenant outstanding
	// counts. Lock order: mu → outMu. Ticket resolution takes only
	// outMu, so completion hooks may fire while mu is held — crash
	// extraction relies on this to have lostQ complete before
	// failover runs.
	outMu     sync.Mutex
	lostQ     []*dispatch      // guarded by outMu
	tenantOut map[string]int64 // guarded by outMu
}

// retiredHistory is the folded statistics of retired and
// crash-recovered engines.
type retiredHistory struct {
	replicas                               int
	submitted, completed, failed, rejected int64
	pending                                int64 // requests lost to a cancelled drain (should stay 0)
	lost                                   int64 // crash-extracted requests (failover re-admits them)
	preemptions, resumes, reassigns        int64 // elastic counters of retired engines
	makespan                               int64
	tenants                                map[string]*serve.TenantWindow
}

// New starts one serving engine per HDA, all sharing one cost cache.
// Passing the same *accel.HDA several times builds a homogeneous
// fleet (see Replicated); distinct HDAs — e.g. the top-K points of a
// dse.Search — build a heterogeneous one.
func New(cache *maestro.Cache, hdas []*accel.HDA, opts Options) (*Fleet, error) {
	if cache == nil {
		return nil, fmt.Errorf("fleet: nil cost cache")
	}
	if len(hdas) == 0 {
		return nil, fmt.Errorf("fleet: needs at least one replica HDA")
	}
	if opts.Policy < RoundRobin || opts.Policy > CostAware {
		return nil, fmt.Errorf("fleet: unknown policy %d", int(opts.Policy))
	}
	if opts.MixHalfLife < 0 {
		return nil, fmt.Errorf("fleet: MixHalfLife must be >= 0 (got %d)", opts.MixHalfLife)
	}
	f := &Fleet{
		cache:       cache,
		policy:      opts.Policy,
		serveOpts:   opts.Serve,
		start:       time.Now(), //herald:nondet uptime diagnostics only; dispatch and the fault clock run on arrival_cycle
		mix:         make(map[string]*mixEntry),
		mixDecay:    1,
		sweeper:     opts.Sweeper,
		plans:       opts.Plans,
		health:      opts.Health.withDefaults(),
		shedT:       make(map[string]int64),
		lostFailedT: make(map[string]int64),
		tenantOut:   make(map[string]int64),
		onAccept:    opts.OnAccept,
		startPaused: opts.StartPaused,
	}
	if opts.Faults != nil && len(opts.Faults.Events) > 0 {
		// Re-validate and re-sort: callers may hand-build the plan
		// instead of going through NewFaultPlan.
		fp, err := NewFaultPlan(opts.Faults.Events)
		if err != nil {
			return nil, err
		}
		f.faults = fp.Events
	}
	if opts.MixHalfLife > 0 {
		f.mixDecay = math.Exp2(-1 / float64(opts.MixHalfLife))
	}
	if len(f.plans) > 0 {
		// Fleet-owned fusion: engines must not decompose again.
		f.serveOpts.Plans = nil
	}
	rs, err := f.buildReplicas(hdas)
	if err != nil {
		return nil, err
	}
	for i, r := range rs {
		r.id = i
	}
	f.replicas = rs
	f.nextID = len(rs)
	return f, nil
}

// buildReplicas constructs one engine per HDA (generation and ids are
// assigned by the caller). On any failure the already-started engines
// are drained before the error is reported, so a failed build leaks
// no goroutines.
func (f *Fleet) buildReplicas(hdas []*accel.HDA) ([]*replica, error) {
	rs := make([]*replica, 0, len(hdas))
	for i, h := range hdas {
		r := &replica{hda: h, est: make(map[*dnn.Model]int64), stall: 1}
		so := f.serveOpts
		userHook := so.OnRequestDone
		so.OnRequestDone = func(rec serve.Record) {
			r.inflight.Add(-1)
			if userHook != nil {
				userHook(rec)
			}
		}
		eng, err := serve.New(f.cache, h, so)
		if err != nil {
			for _, started := range rs {
				_, _ = started.engine.Drain(context.Background())
			}
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		if f.startPaused {
			eng.Pause()
		}
		r.engine = eng
		rs = append(rs, r)
	}
	return rs, nil
}

// Replicated starts a homogeneous fleet: n replica engines of one HDA.
func Replicated(cache *maestro.Cache, hda *accel.HDA, n int, opts Options) (*Fleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("fleet: needs n >= 1 replicas (got %d)", n)
	}
	hdas := make([]*accel.HDA, n)
	for i := range hdas {
		hdas[i] = hda
	}
	return New(cache, hdas, opts)
}

// Policy returns the fleet's routing policy.
func (f *Fleet) Policy() Policy { return f.policy }

// Size returns the number of active replicas.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.replicas)
}

// Generation returns the current replica generation: 0 at startup,
// incremented by every completed Migrate.
func (f *Fleet) Generation() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.generation
}

// Engine returns active replica i's serving engine (for per-replica
// probes and tests; HTTP delegation resolves replicas by id instead,
// which stays stable across migrations).
func (f *Fleet) Engine(i int) *serve.Engine {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.replicas[i].engine
}

// ActiveHDAs returns the partitions the active generation serves on
// (one entry per replica, in replica order).
func (f *Fleet) ActiveHDAs() []*accel.HDA {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*accel.HDA, len(f.replicas))
	for i, r := range f.replicas {
		out[i] = r.hda
	}
	return out
}

// replicaByID resolves a live (active or retiring) replica by id.
func (f *Fleet) replicaByID(id int) *replica {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.replicas {
		if r.id == id {
			return r
		}
	}
	for _, r := range f.retiring {
		if r.id == id {
			return r
		}
	}
	for _, r := range f.failedReplicas {
		if r.id == id {
			return r
		}
	}
	return nil
}

// Ticket tracks a dispatched submission and the replica serving it.
// Every accepted ticket resolves exactly once — even if its replica
// crashes, the failover path either re-admits the request elsewhere
// or terminates it with a failed record — so a submitter waiting on
// Done never hangs on a dead replica.
type Ticket struct {
	// ID is the request's record id on its first replica engine (a
	// failed-over request keeps this id on the fleet surface; its
	// final record carries the surviving engine's own id).
	ID int64
	// Replica is the replica the request was first dispatched to —
	// for a fused chain, the replica of its first segment. Failover
	// may move the request; Served reports where it ended up.
	Replica int

	// served is the final serving replica (-1 until resolution, and
	// for requests that failed without being served); rec is the final
	// record. Both are fully written before done closes.
	served int
	rec    *serve.Record
	done   chan struct{}
}

// Done is closed when the request (all segments, for a fused chain)
// has been scheduled or failed.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the request completes or ctx is cancelled, and
// returns the final record. A fused chain's record carries one
// SegmentRecord per plan segment with the serving replica of each.
func (t *Ticket) Wait(ctx context.Context) (serve.Record, error) {
	select {
	case <-t.done:
		return *t.rec, nil
	case <-ctx.Done():
		return serve.Record{}, ctx.Err()
	}
}

// Served returns the replica that finally served the request: equal
// to Replica in the common case, a survivor's id after a crash
// failover, the last segment's replica for a fused chain, and -1 for
// a request that terminated unserved. Valid once Done is closed.
func (t *Ticket) Served() int {
	select {
	case <-t.done:
		return t.served
	default:
		return -1
	}
}

// dispatch is one unfused request's dispatcher-side lifetime: the
// submission, its fleet ticket, and the attempt budget consumed so
// far. Its resolve method is the request's engine completion hook —
// a terminal record closes the ticket, a StatusLost record (replica
// crash) queues the dispatch for failover instead.
type dispatch struct {
	f     *Fleet
	req   serve.Request
	model *dnn.Model
	t     *Ticket
	// attempts counts admissions (initial + failovers), under f.mu.
	attempts int
	// replica is the latest admission's replica id, written under f.mu
	// before the engine sees the request (so resolve reads it safely).
	replica int
}

// resolve is the engine-side completion hook: it runs on the serving
// engine's scheduling goroutine (or the Crash caller's) and must not
// take f.mu (crash extraction fires it with f.mu held).
func (d *dispatch) resolve(rec serve.Record) {
	if rec.Status == serve.StatusLost {
		// The serving replica crashed with the request still queued;
		// park it for the crash handler's failover pass.
		d.f.outMu.Lock()
		d.f.lostQ = append(d.f.lostQ, d)
		d.f.outMu.Unlock()
		return
	}
	d.f.tenantOutDec(d.req.Tenant)
	d.t.rec = &rec
	d.t.served = d.replica
	close(d.t.done)
}

// tenantOutDec retires one outstanding request from the shed-fairness
// ledger.
func (f *Fleet) tenantOutDec(tenant string) {
	f.outMu.Lock()
	if f.tenantOut[tenant]--; f.tenantOut[tenant] <= 0 {
		delete(f.tenantOut, tenant)
	}
	f.outMu.Unlock()
}

// tenantOutInc admits one outstanding request into the shed-fairness
// ledger. Incremented before the engine sees the request: completion
// hooks can fire before dispatch even returns.
func (f *Fleet) tenantOutInc(tenant string) {
	f.outMu.Lock()
	f.tenantOut[tenant]++
	f.outMu.Unlock()
}

// Submit routes one request to a replica under the fleet's policy and
// admits it there. The returned ticket carries the serving replica's
// index. Dispatch bookkeeping is only committed for accepted
// submissions, so a rejected request (unknown model, full tenant
// queue) does not skew future routing.
//
// A model with a multi-segment plan (Options.Plans) is decomposed at
// dispatch: segment 0 is routed and admitted synchronously, and a
// chain goroutine routes each later segment when its predecessor's
// completion cycle is known — to the replica whose ETA then wins, so
// a busy first-choice replica loses later segments to idle ones.
// Because later segments dispatch on completion, their replica
// assignment (unlike unfused dispatch) depends on engine progress.
func (f *Fleet) Submit(req serve.Request) (*Ticket, error) {
	// Unknown models resolve to nil: the picked engine rejects and
	// accounts them, and a zero cost estimate keeps routing sound.
	model, _ := dnn.ByName(req.Model)
	if model != nil {
		if plan, ok := f.plans[model.Name]; ok && plan.NumSegments() > 1 {
			return f.submitFused(req, model, plan)
		}
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.draining {
		return nil, serve.ErrDraining
	}
	f.advanceFaultsLocked(max(req.ArrivalCycle, 0))
	if f.shedEnabled(req) {
		if eta, ok := f.bestETALocked(model, req.ArrivalCycle); ok {
			if err := f.shedLocked(req, eta); err != nil {
				return nil, err
			}
		}
	}
	d := &dispatch{f: f, req: req, model: model,
		t: &Ticket{Replica: -1, served: -1, done: make(chan struct{})}}
	f.tenantOutInc(req.Tenant)
	if err := f.dispatchLocked(d); err != nil {
		f.tenantOutDec(req.Tenant)
		return nil, err
	}
	if model != nil {
		f.mixAdd(model.Name)
		if f.onAccept != nil {
			f.onAccept(f.acceptedLocked(req, model), "")
		}
	}
	return d.t, nil
}

// acceptedLocked normalizes an accepted submission for the OnAccept
// capture hook: the model name canonicalized and a live-clock arrival
// pinned to an explicit cycle, so a captured trace always replays
// deterministically even though the capturing run was wall-clock
// driven. f.mu held.
func (f *Fleet) acceptedLocked(req serve.Request, model *dnn.Model) serve.Request {
	req.Model = model.Name
	if req.ArrivalCycle < 0 {
		ghz := f.serveOpts.ClockGHz
		if ghz <= 0 {
			ghz = 1
		}
		//herald:nondet live-mode arrival fallback by design; bit-reproducible replays pass explicit arrival_cycle
		req.ArrivalCycle = int64(time.Since(f.start).Seconds() * ghz * 1e9)
	}
	return req
}

// dispatchLocked admits one tracked request on a replica chosen under
// the routing policy, rotating to the next-best replica on every
// replica-attributable admission failure (full queue, draining engine,
// injected fault) while feeding the circuit breaker. It returns an
// error only when the request cannot be admitted anywhere: a client
// error from the first engine that evaluated it, or ErrNoReplicas
// once every eligible replica has been tried. f.mu held.
func (f *Fleet) dispatchLocked(d *dispatch) error {
	f.dispatchSeq++
	cycle := f.faultCycle
	var tried map[int]bool
	for {
		r, eta, err := f.pickLocked(d.model, d.req.ArrivalCycle, tried)
		if err != nil {
			return err
		}
		if tried == nil {
			tried = make(map[int]bool)
		}
		tried[r.id] = true
		if r.admitFails > 0 {
			r.admitFails--
			f.noteFailureLocked(r, cycle, "injected admission fault")
			continue
		}
		// Publish the serving replica and count the dispatch before the
		// engine sees the request: its scheduling goroutine can finish
		// it (firing resolve and the inflight hook) before this returns.
		d.replica = r.id
		r.inflight.Add(1)
		ticket, err := r.engine.SubmitTracked(d.req, d.resolve)
		if err != nil {
			r.inflight.Add(-1)
			if retryableAdmit(err) {
				f.noteFailureLocked(r, cycle, err.Error())
				continue
			}
			return err
		}
		f.noteSuccessLocked(r, cycle)
		d.attempts++
		if d.t.ID == 0 {
			d.t.ID = ticket.ID
			d.t.Replica = r.id
		}
		r.dispatched++
		if f.policy == CostAware {
			r.horizon = eta
		}
		if f.policy == RoundRobin {
			f.rrNext++
		}
		return nil
	}
}

// submitFused decomposes one request into its plan's segments,
// dispatches segment 0, and hands the rest to a chain goroutine.
func (f *Fleet) submitFused(req serve.Request, model *dnn.Model, plan dse.SegmentPlan) (*Ticket, error) {
	segs, err := plan.Slices(model)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}

	f.mu.Lock()
	if f.draining {
		f.mu.Unlock()
		return nil, serve.ErrDraining
	}
	f.advanceFaultsLocked(max(req.ArrivalCycle, 0))
	if f.shedEnabled(req) {
		if eta, ok := f.bestETALocked(segs[0], req.ArrivalCycle); ok {
			if err := f.shedLocked(req, eta); err != nil {
				f.mu.Unlock()
				return nil, err
			}
		}
	}
	f.tenantOutInc(req.Tenant)
	r, first, err := f.dispatchSegmentLocked(req, req.ArrivalCycle, segs[0])
	if err != nil {
		f.mu.Unlock()
		f.tenantOutDec(req.Tenant)
		return nil, err
	}
	f.mixAdd(model.Name)
	if f.onAccept != nil {
		f.onAccept(f.acceptedLocked(req, model), fmt.Sprintf("%s/%d", model.Name, len(segs)))
	}
	f.segStats.FusedRequests++
	f.segStats.Segments += int64(len(segs))
	f.chainWG.Add(1)
	f.mu.Unlock()

	t := &Ticket{ID: first.ID, Replica: r.id, served: -1, done: make(chan struct{})}
	go f.runChain(t, req, model, segs, first, r.id)
	return t, nil
}

// dispatchSegmentLocked routes one segment model under the fleet's
// policy and admits it to the picked engine via SubmitModel (segment
// models are interned slices, not zoo entries). The segment request
// carries the chain's tenant and priority but no SLA — the SLA is a
// request-level contract, checked on the merged record. Like
// dispatchLocked it rotates to the next-best replica on
// replica-attributable admission failures, feeding the breaker. f.mu
// held.
func (f *Fleet) dispatchSegmentLocked(req serve.Request, arrival int64, sm *dnn.Model) (*replica, *serve.Ticket, error) {
	f.dispatchSeq++
	cycle := f.faultCycle
	var tried map[int]bool
	for {
		r, eta, err := f.pickLocked(sm, arrival, tried)
		if err != nil {
			return nil, nil, err
		}
		if tried == nil {
			tried = make(map[int]bool)
		}
		tried[r.id] = true
		if r.admitFails > 0 {
			r.admitFails--
			f.noteFailureLocked(r, cycle, "injected admission fault")
			continue
		}
		r.inflight.Add(1)
		ticket, err := r.engine.SubmitModel(serve.Request{
			Tenant:       req.Tenant,
			Priority:     req.Priority,
			ArrivalCycle: arrival,
		}, sm)
		if err != nil {
			r.inflight.Add(-1)
			if retryableAdmit(err) {
				f.noteFailureLocked(r, cycle, err.Error())
				continue
			}
			return nil, nil, err
		}
		f.noteSuccessLocked(r, cycle)
		r.dispatched++
		if f.policy == CostAware {
			r.horizon = eta
		}
		if f.policy == RoundRobin {
			f.rrNext++
		}
		return r, ticket, nil
	}
}

// runChain drives one fused request's segments 1..n-1: wait for the
// predecessor's completion, then route the successor with the
// predecessor's finish cycle as its arrival (completion-paced
// pipelining — the cross-replica analogue of the scheduler's
// precedence edge). It assembles the merged record and closes the
// ticket when the last segment lands or the chain breaks.
//
// If a segment's serving replica crashes before scheduling it (the
// segment resolves StatusLost), the chain re-routes that segment —
// and with it the rest of the chain — to a survivor, keeping the same
// pipeline arrival (its predecessor's finish cycle), under the same
// per-request attempt budget as unfused failover. Only when the
// budget is exhausted or no survivor can take the segment does the
// chain terminate with a failed record.
func (f *Fleet) runChain(t *Ticket, req serve.Request, model *dnn.Model, segs []*dnn.Model, first *serve.Ticket, firstReplica int) {
	defer f.chainWG.Done()
	n := len(segs)
	rec := &serve.Record{
		ID:       t.ID,
		Tenant:   req.Tenant,
		Model:    model.Name,
		Priority: req.Priority,
		Status:   serve.StatusDone,
		// Resolved below from segment 0 (the engine resolves "now"
		// arrivals on admission).
		ArrivalCycle: req.ArrivalCycle,
		SLACycles:    req.SLACycles,
		Segments:     make([]serve.SegmentRecord, 0, n),
	}
	completed := int64(0)
	cross := int64(0)
	attempts := 1 // admissions consumed, shared across the whole chain
	cur, curReplica := first, firstReplica
	curArrival := req.ArrivalCycle
	for k := 0; k < n; k++ {
		srec, _ := cur.Wait(context.Background())
		if srec.Status == serve.StatusLost {
			// The serving replica crashed with this segment still
			// queued. Try to re-route it to a survivor at the same
			// pipeline arrival.
			if attempts >= f.health.MaxAttempts {
				srec.Err = fmt.Sprintf("replica %d crashed; attempt budget exhausted (%d admissions)",
					curReplica, attempts)
			} else {
				f.mu.Lock()
				r, ticket, err := f.dispatchSegmentLocked(req, curArrival, segs[k])
				if err == nil {
					attempts++
					f.failovers++
					f.noteDecisionLocked(max(curArrival, 0), "failover", r.id,
						fmt.Sprintf("fused request %d (tenant %q) segment %d re-admitted, attempt %d",
							t.ID, req.Tenant, k, attempts))
					f.mu.Unlock()
					if r.id != curReplica {
						cross++
					}
					cur, curReplica = ticket, r.id
					k--
					continue
				}
				f.mu.Unlock()
				srec.Err = fmt.Sprintf("replica %d crashed; failover failed: %s", curReplica, err)
			}
		}
		if k == 0 {
			rec.ArrivalCycle = srec.ArrivalCycle
		}
		sr := serve.SegmentRecord{
			Index:   k,
			Model:   srec.Model,
			Replica: curReplica,
		}
		if srec.Status != serve.StatusDone {
			sr.Err = srec.Err
			rec.Segments = append(rec.Segments, sr)
			rec.Status = serve.StatusFailed
			rec.Err = fmt.Sprintf("segment %d on replica %d: %s", k, curReplica, srec.Err)
			break
		}
		completed++
		sr.Instance = srec.Instance
		sr.StartCycle = srec.StartCycle
		sr.FinishCycle = srec.FinishCycle
		sr.BusyCycles = srec.BusyCycles
		sr.EnergyPJ = srec.EnergyPJ
		rec.Segments = append(rec.Segments, sr)
		rec.BusyCycles += srec.BusyCycles
		rec.EnergyPJ += srec.EnergyPJ
		if k == n-1 {
			break
		}
		curArrival = srec.FinishCycle
		f.mu.Lock()
		r, ticket, err := f.dispatchSegmentLocked(req, curArrival, segs[k+1])
		f.mu.Unlock()
		if err != nil {
			rec.Status = serve.StatusFailed
			rec.Err = fmt.Sprintf("segment %d: %s", k+1, err)
			break
		}
		if r.id != curReplica {
			cross++
		}
		cur, curReplica = ticket, r.id
	}

	if rec.Status == serve.StatusDone {
		firstSeg, lastSeg := rec.Segments[0], rec.Segments[n-1]
		rec.Instance = firstSeg.Instance
		rec.StartCycle = firstSeg.StartCycle
		rec.FinishCycle = lastSeg.FinishCycle
		rec.LatencyCycles = lastSeg.FinishCycle - rec.ArrivalCycle
		rec.QueueCycles = firstSeg.StartCycle - rec.ArrivalCycle
		if rec.SLACycles > 0 {
			rec.SLAViolated = rec.LatencyCycles > rec.SLACycles
		}
	}

	f.mu.Lock()
	f.segStats.SegmentsCompleted += completed
	f.crossHandoffs += cross
	if rec.Status == serve.StatusDone {
		f.segStats.FusedCompleted++
		firstSeg, lastSeg := rec.Segments[0], rec.Segments[n-1]
		f.segStats.SegmentSpanCycles += lastSeg.FinishCycle - firstSeg.StartCycle
		f.segStats.SegmentBusyCycles += rec.BusyCycles
		for k := 1; k < n; k++ {
			f.segStats.HandoffBubbleCycles += rec.Segments[k].StartCycle - rec.Segments[k-1].FinishCycle
		}
	} else {
		f.segStats.FusedFailed++
		// Segments past the break never reached an engine; they count
		// as failed so segment conservation holds at the fleet level.
		f.segStats.SegmentsFailed += int64(n) - completed
	}
	f.mu.Unlock()

	f.tenantOutDec(req.Tenant)
	t.rec = rec
	if rec.Status == serve.StatusDone {
		t.served = curReplica
	}
	close(t.done)
}

// mixAdd counts one accepted submission of a model into the observed
// mix, applying the pending exponential decay lazily. f.mu held.
func (f *Fleet) mixAdd(name string) {
	f.mixTick++
	e := f.mix[name]
	if e == nil {
		e = &mixEntry{}
		f.mix[name] = e
	}
	if f.mixDecay < 1 && f.mixTick > e.tick {
		e.w *= math.Pow(f.mixDecay, float64(f.mixTick-e.tick))
	}
	e.w++
	e.tick = f.mixTick
}

// mixEntry is one model's decayed submission weight, valid as of tick
// (lazy decay: the weight is brought forward when touched or read).
type mixEntry struct {
	w    float64
	tick int64
}

// etaLocked is one replica's cost-aware completion estimate for a
// model arriving at the given cycle: the horizon of work already
// routed there (or the arrival, whichever is later) plus the model's
// best-case busy cycles, scaled by any injected stall. Returns 0
// under the other policies (they keep no horizon). f.mu held.
func (f *Fleet) etaLocked(r *replica, model *dnn.Model, arrival int64) int64 {
	if f.policy != CostAware {
		return 0
	}
	// "Now" arrivals (negative) estimate from cycle 0: the horizon
	// term dominates and wall-clock must not enter dispatch (it
	// would break replayability).
	if arrival < 0 {
		arrival = 0
	}
	return max(r.horizon, arrival) + stallCycles(r.estCycles(f.cache, model), r.stall)
}

// bestETALocked is the minimum cost-aware ETA any eligible replica
// offers the model — what the admission controller compares against
// the SLA budget. ok is false when no replica is eligible. f.mu held.
func (f *Fleet) bestETALocked(model *dnn.Model, arrival int64) (int64, bool) {
	elig, _ := f.eligibleLocked(nil)
	if len(elig) == 0 {
		return 0, false
	}
	best := int64(math.MaxInt64)
	for _, r := range elig {
		if eta := f.etaLocked(r, model, arrival); eta < best {
			best = eta
		}
	}
	return best, true
}

// pickLocked chooses the replica for one submission among the
// eligible set (active, not breaker-open, not in tried) and, for the
// cost-aware policy, returns the ETA to commit to its horizon. A
// half-open replica takes priority as the breaker's probe. Ties break
// toward the lower replica position; with every replica healthy the
// eligible set is exactly f.replicas, so routing is unchanged from
// the fault-free dispatcher. f.mu held.
func (f *Fleet) pickLocked(model *dnn.Model, arrival int64, tried map[int]bool) (*replica, int64, error) {
	elig, probe := f.eligibleLocked(tried)
	if len(elig) == 0 {
		return nil, 0, ErrNoReplicas
	}
	if probe != nil {
		// The half-open breaker's single probe request: route it to the
		// recovering replica regardless of policy so the breaker can
		// close (or re-open) promptly.
		return probe, f.etaLocked(probe, model, arrival), nil
	}
	switch f.policy {
	case LeastOutstanding:
		best, bestLoad := elig[0], elig[0].engine.Load()
		for _, r := range elig[1:] {
			ld := r.engine.Load()
			if ld.BacklogCycles < bestLoad.BacklogCycles ||
				(ld.BacklogCycles == bestLoad.BacklogCycles && ld.Pending < bestLoad.Pending) {
				best, bestLoad = r, ld
			}
		}
		return best, 0, nil
	case CostAware:
		var best *replica
		var bestETA int64
		for _, r := range elig {
			eta := f.etaLocked(r, model, arrival)
			if best == nil || eta < bestETA {
				best, bestETA = r, eta
			}
		}
		return best, bestETA, nil
	default: // RoundRobin
		return elig[f.rrNext%len(elig)], 0, nil
	}
}

// ReplicaStats is one replica's slice of the fleet statistics.
type ReplicaStats struct {
	Replica int `json:"replica"`
	// Generation is the migration generation that created the replica
	// (0 = the fleet's original engines).
	Generation int    `json:"generation"`
	HDA        string `json:"hda"`
	// Retiring marks a previous-generation replica that no longer
	// receives dispatches but is still finishing in-flight work.
	Retiring   bool  `json:"retiring"`
	Dispatched int64 `json:"dispatched"`
	Inflight   int64 `json:"inflight"`
	// HorizonCycles is the cost-aware dispatcher's completion-time
	// estimate for everything routed here (0 under other policies).
	HorizonCycles int64 `json:"horizon_cycles"`
	// Health is the dispatcher-side health state: healthy, degraded
	// (stall detection), breaker-open, breaker-half-open or crashed.
	Health string `json:"health"`
	// StallFactor is the injected slowdown multiplier (omitted at 1);
	// ConsecutiveFailures is the breaker's current failure streak.
	StallFactor         float64     `json:"stall_factor,omitempty"` //herald:jsonzero a valid stall factor is > 1; unset means not stalled
	ConsecutiveFailures int         `json:"consecutive_failures"`
	Engine              serve.Stats `json:"engine"`
}

// Stats is a fleet-wide snapshot: per-replica engine statistics plus
// tenant aggregates merged across replicas — including retiring and
// retired generations, so no served request ever drops out of the
// aggregates across a repartition.
type Stats struct {
	Policy        string  `json:"policy"`
	Replicas      int     `json:"replicas"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Generation counts completed migrations; RetiredReplicas counts
	// fully-drained previous-generation engines folded into the
	// aggregates.
	Generation      int   `json:"generation"`
	Migrations      int64 `json:"migrations"`
	RetiredReplicas int   `json:"retired_replicas"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	Pending   int64 `json:"pending"`

	// Fault-tolerance counters. Shed counts arrivals turned away by
	// admission control; Failovers counts crash-orphaned requests (or
	// chain segments) re-admitted on survivors; Lost counts requests
	// extracted by replica crashes (each either failed over — counted
	// once on its survivor — or terminally failed); BreakerTrips
	// counts circuit-breaker opens. FailedReplicas is the current
	// number of crashed replicas awaiting recovery.
	Shed           int64 `json:"shed"`
	Failovers      int64 `json:"failovers"`
	Lost           int64 `json:"lost"`
	Crashes        int64 `json:"crashes"`
	Recoveries     int64 `json:"recoveries"`
	BreakerTrips   int64 `json:"breaker_trips"`
	FailedReplicas int   `json:"failed_replicas"`

	// Elastic counters summed across live engines and folded history:
	// preempted placements, successful resumptions, and per-engine PE
	// reassignments (one ReassignAll counts once per replica).
	Preemptions int64 `json:"preemptions"`
	Resumes     int64 `json:"resumes"`
	PEReassigns int64 `json:"pe_reassigns"`

	// MakespanCycles is the slowest replica's committed horizon —
	// replicas run in parallel in simulated time, so fleet throughput
	// is total completions over the maximum makespan, not the sum.
	MakespanCycles   int64   `json:"makespan_cycles"`
	SimThroughputRPS float64 `json:"sim_throughput_rps"`

	// Segments reports fleet-level fused-serving counters: requests
	// the dispatcher decomposed into segment chains, their segment
	// outcomes, and the pipeline-overlap cycle sums. (Engine-level
	// fusion counters, if any replica engine fuses internally, are
	// visible in PerReplica[i].Engine.Segments.)
	Segments serve.SegmentStats `json:"segments"`
	// CrossReplicaHandoffs counts chain hops where a segment was
	// routed to a different replica than its predecessor — the
	// dispatches where the horizon-ledger ETA overruled locality.
	CrossReplicaHandoffs int64 `json:"cross_replica_handoffs"`

	// Tenants aggregates each tenant across every replica; latency
	// percentiles are computed over the merged sample windows (they
	// cannot be derived from per-replica percentiles).
	Tenants []serve.TenantStats `json:"tenants"`

	// PerReplica covers the live replicas: the active generation plus
	// any still-retiring ones. Fully-retired engines appear only in
	// the folded aggregates.
	PerReplica []ReplicaStats `json:"per_replica"`
}

// addWindow merges one tenant window into the aggregation map.
func addWindow(tenants map[string]*serve.TenantWindow, w *serve.TenantWindow) {
	a := tenants[w.Tenant]
	if a == nil {
		a = &serve.TenantWindow{Tenant: w.Tenant}
		tenants[w.Tenant] = a
	}
	a.Add(w)
}

// Stats returns the current fleet-wide statistics.
func (f *Fleet) Stats() Stats {
	tenants := make(map[string]*serve.TenantWindow)

	// Snapshot the live replica set and fold the retired history under
	// the dispatch lock; engine probes run on the snapshot afterwards
	// (an engine outlives its membership in f.replicas, so reading it
	// after unlock is safe even if a migration swaps the set).
	type rsnap struct {
		r                   *replica
		retiring            bool
		dispatched, horizon int64
		health              string
		stall               float64
		consecFails         int
	}
	f.mu.Lock()
	st := Stats{
		Policy:               f.policy.String(),
		Replicas:             len(f.replicas),
		UptimeSeconds:        time.Since(f.start).Seconds(), //herald:nondet wall-clock uptime is reporting-only
		Generation:           f.generation,
		Migrations:           f.migrations,
		RetiredReplicas:      f.history.replicas,
		Submitted:            f.history.submitted + f.lostFailed,
		Completed:            f.history.completed,
		Failed:               f.history.failed + f.lostFailed,
		Rejected:             f.history.rejected,
		Pending:              f.history.pending,
		Lost:                 f.history.lost,
		Shed:                 f.shed,
		Failovers:            f.failovers,
		Crashes:              f.crashes,
		Recoveries:           f.recoveries,
		BreakerTrips:         f.breakerTrips,
		FailedReplicas:       len(f.failedReplicas),
		Preemptions:          f.history.preemptions,
		Resumes:              f.history.resumes,
		PEReassigns:          f.history.reassigns,
		MakespanCycles:       f.history.makespan,
		Segments:             f.segStats,
		CrossReplicaHandoffs: f.crossHandoffs,
	}
	minH := f.minHorizonLocked()
	snaps := make([]rsnap, 0, len(f.replicas)+len(f.retiring)+len(f.failedReplicas))
	for _, r := range f.replicas {
		snaps = append(snaps, rsnap{r: r, dispatched: r.dispatched, horizon: r.horizon,
			health: f.healthStringLocked(r, minH), stall: r.stall, consecFails: r.consecFails})
	}
	for _, r := range f.retiring {
		snaps = append(snaps, rsnap{r: r, retiring: true, dispatched: r.dispatched, horizon: r.horizon,
			health: r.health.String()})
	}
	for _, r := range f.failedReplicas {
		snaps = append(snaps, rsnap{r: r, dispatched: r.dispatched, horizon: r.horizon,
			health: r.health.String()})
	}
	//herald:nondet additive per-tenant merge; latencies are sorted before percentiles, sums commute
	for _, w := range f.history.tenants {
		addWindow(tenants, w)
	}
	shedT := make(map[string]int64, len(f.shedT))
	maps.Copy(shedT, f.shedT)
	lostFailedT := make(map[string]int64, len(f.lostFailedT))
	maps.Copy(lostFailedT, f.lostFailedT)
	f.mu.Unlock()

	var clockGHz float64
	for _, sn := range snaps {
		r := sn.r
		es := r.engine.Stats()
		clockGHz = es.ClockGHz
		st.Submitted += es.Submitted
		st.Completed += es.Completed
		st.Failed += es.Failed
		st.Rejected += es.Rejected
		st.Pending += es.Pending
		st.Lost += es.Lost
		st.Preemptions += es.Preemptions
		st.Resumes += es.Resumes
		st.PEReassigns += es.PEReassigns
		if es.MakespanCycles > st.MakespanCycles {
			st.MakespanCycles = es.MakespanCycles
		}
		rs := ReplicaStats{
			Replica:             r.id,
			Generation:          r.gen,
			HDA:                 r.hda.Name,
			Retiring:            sn.retiring,
			Dispatched:          sn.dispatched,
			Inflight:            r.inflight.Load(),
			HorizonCycles:       sn.horizon,
			Health:              sn.health,
			ConsecutiveFailures: sn.consecFails,
			Engine:              es,
		}
		if sn.stall > 1 {
			rs.StallFactor = sn.stall
		}
		st.PerReplica = append(st.PerReplica, rs)
		for _, w := range r.engine.TenantWindows() {
			addWindow(tenants, &w)
		}
	}

	// Crash-orphaned requests that terminally failed were erased from
	// their engines; count them per tenant on both sides of the
	// conservation equation. Shed tenants get a row even if no engine
	// ever saw them.
	//herald:nondet additive per-tenant counters into a map; emission below iterates sorted names
	for tn, c := range lostFailedT {
		w := tenants[tn]
		if w == nil {
			w = &serve.TenantWindow{Tenant: tn}
			tenants[tn] = w
		}
		w.Submitted += c
		w.Failed += c
	}
	//herald:nondet set insertion only; emission below iterates sorted names
	for tn := range shedT {
		if tenants[tn] == nil {
			tenants[tn] = &serve.TenantWindow{Tenant: tn}
		}
	}

	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := tenants[name]
		ts := serve.TenantStats{
			Tenant:        a.Tenant,
			Submitted:     a.Submitted,
			Completed:     a.Completed,
			Failed:        a.Failed,
			Rejected:      a.Rejected,
			Shed:          shedT[name],
			SLATracked:    a.SLATracked,
			SLAViolations: a.SLAViolations,
			EnergyPJ:      a.EnergyPJ,
		}
		if a.Completed > 0 {
			sort.Slice(a.Latencies, func(i, j int) bool { return a.Latencies[i] < a.Latencies[j] })
			ts.MeanLatencyCycles = a.LatencySum / a.Completed
			ts.P50LatencyCycles = serve.Percentile(a.Latencies, 50)
			ts.P95LatencyCycles = serve.Percentile(a.Latencies, 95)
			ts.P99LatencyCycles = serve.Percentile(a.Latencies, 99)
			ts.MeanQueueCycles = a.QueueSum / a.Completed
		}
		st.Tenants = append(st.Tenants, ts)
	}

	if st.MakespanCycles > 0 && clockGHz > 0 {
		simSeconds := float64(st.MakespanCycles) / (clockGHz * 1e9)
		st.SimThroughputRPS = float64(st.Completed) / simSeconds
	}
	return st
}

// ObservedMix snapshots the fleet's served traffic as a workload: one
// entry per model the dispatcher accepted, batch counts scaled to the
// smallest observed share (min positive weight = 1 batch, others
// rounded to the nearest ratio — ceiling rounding would turn a 9:8
// mix into a 2:1 probe) and capped at maxMixBatches so a probe sweep
// stays cheap regardless of absolute traffic volume. Returns nil when
// nothing has been observed yet. The mix is deterministic for a fixed
// submission history.
//
// With Options.MixHalfLife set, each model's weight is its
// exponentially-decayed submission count, and models decayed below
// mixDropFraction of the total are dropped: a model that dominated an
// hour ago but vanished from traffic stops steering repartitioning
// probes. Without decay the weights are exact all-time counts and
// nothing is dropped (legacy behavior, bit-identical mixes).
func (f *Fleet) ObservedMix(name string) *workload.Workload {
	f.mu.Lock()
	// Accumulate weights in sorted key order: total is a float sum, and
	// float addition is order-dependent, so iterating the map directly
	// would let Go's randomized iteration order perturb the
	// mixDropFraction threshold — and with it the probe mix and the
	// controller's replayed decisions — in the last bit.
	models := make([]string, 0, len(f.mix))
	for m := range f.mix {
		models = append(models, m)
	}
	sort.Strings(models)
	weights := make(map[string]float64, len(f.mix))
	var total float64
	for _, m := range models {
		e := f.mix[m]
		w := e.w
		if f.mixDecay < 1 && f.mixTick > e.tick {
			w *= math.Pow(f.mixDecay, float64(f.mixTick-e.tick))
		}
		weights[m] = w
		total += w
	}
	decayed := f.mixDecay < 1
	f.mu.Unlock()
	if len(weights) == 0 {
		return nil
	}
	names := make([]string, 0, len(weights))
	minW := 0.0
	for _, m := range models {
		w := weights[m]
		if decayed && w < mixDropFraction*total {
			continue
		}
		names = append(names, m)
		if minW == 0 || w < minW {
			minW = w
		}
	}
	if len(names) == 0 {
		return nil
	}
	entries := make([]workload.Entry, 0, len(names))
	for _, m := range names {
		b := int(weights[m]/minW + 0.5) // round to nearest share
		if b < 1 {
			b = 1
		}
		if b > maxMixBatches {
			b = maxMixBatches
		}
		entries = append(entries, workload.Entry{Model: m, Batches: b})
	}
	w, err := workload.New(name, entries)
	if err != nil {
		return nil // defensive: counted models come from the zoo
	}
	return w
}

// mixDropFraction drops models whose decayed weight fell below this
// fraction of the total observed weight (decayed mixes only).
const mixDropFraction = 0.01

// maxMixBatches caps each model's batch count in ObservedMix: the mix
// is a representative ratio, not a replay, and probe sweeps must stay
// cheap under heavy traffic.
const maxMixBatches = 8

// Resweep re-runs the fleet's partition search (Options.Sweeper) on
// workload w — or on the observed tenant mix when w is nil — and
// returns the search result. It only reports what partition the
// current traffic would pick; acting on it (spawning replicas on the
// winner and draining the old ones) is the dynamic-repartitioning
// controller's job, which builds on this probe. Sweeps are serialized
// but do not block dispatch.
func (f *Fleet) Resweep(w *workload.Workload) (*dse.Result, error) {
	if f.sweeper == nil {
		return nil, fmt.Errorf("fleet: no sweeper configured (set Options.Sweeper to enable Resweep)")
	}
	if w == nil {
		if w = f.ObservedMix("observed-mix"); w == nil {
			return nil, fmt.Errorf("fleet: no traffic observed yet")
		}
	}
	f.resweepMu.Lock()
	defer f.resweepMu.Unlock()
	return f.sweeper.Sweep(w)
}

// ResetMix clears the observed per-model traffic counters, so the
// next ObservedMix/Resweep reflects only traffic accepted after the
// reset. The repartitioning controller resets the mix after every
// migration: the history that justified the previous partition must
// not immediately argue against the one just installed.
func (f *Fleet) ResetMix() {
	f.mu.Lock()
	clear(f.mix)
	f.mixTick = 0
	f.mu.Unlock()
}

// Migrate replaces the active replicas with a new generation serving
// the given HDAs — the live-repartitioning primitive the Controller
// drives. The sequence is spawn → switch → drain → fold:
//
//  1. New engines are built on the target partitions (and prewarmed
//     with the given workload mix, if non-nil, so their scheduler
//     tables inherit the traffic's cost-cache locality). A build
//     failure leaves the fleet untouched.
//  2. Under the dispatch lock, routing atomically switches to the new
//     generation (fresh horizons, round-robin cursor reset). Requests
//     already dispatched stay on their original engine.
//  3. The old generation is quiesced — every old engine stops
//     admitting at once — then joined: each finishes its in-flight
//     and queued requests. No request is lost or double-served.
//  4. Each drained engine's final statistics fold into the fleet
//     history, and the engine is dropped.
//
// If ctx expires mid-drain the un-drained replicas stay in the
// retiring set (their statistics remain live) and a later Drain picks
// them up. Migrating a draining fleet fails with serve.ErrDraining.
func (f *Fleet) Migrate(ctx context.Context, hdas []*accel.HDA, prewarm *workload.Workload) error {
	if len(hdas) == 0 {
		return fmt.Errorf("fleet: migration needs at least one replica HDA")
	}
	rs, err := f.buildReplicas(hdas)
	if err != nil {
		return err
	}
	for _, r := range rs {
		r.engine.Prewarm(prewarm)
	}

	f.mu.Lock()
	if f.draining {
		f.mu.Unlock()
		for _, r := range rs {
			_, _ = r.engine.Drain(context.Background())
		}
		return serve.ErrDraining
	}
	old := f.replicas
	f.generation++
	f.migrations++
	for _, r := range rs {
		r.id = f.nextID
		f.nextID++
		r.gen = f.generation
	}
	f.replicas = rs
	f.rrNext = 0
	f.retiring = append(f.retiring, old...)
	f.mu.Unlock()

	// Stop the whole old generation's admissions before waiting on
	// any single engine, then join.
	for _, r := range old {
		r.engine.Quiesce()
	}
	var errs []error
	for _, r := range old {
		select {
		case <-r.engine.Done():
			f.fold(r)
		case <-ctx.Done():
			errs = append(errs, fmt.Errorf("fleet: replica %d drain: %w", r.id, ctx.Err()))
		}
	}
	return errors.Join(errs...)
}

// fold moves a fully-drained retired replica's final statistics into
// the fleet history and drops the engine from the retiring set.
func (f *Fleet) fold(r *replica) {
	es := r.engine.Stats()
	windows := r.engine.TenantWindows()

	f.mu.Lock()
	defer f.mu.Unlock()
	f.foldStatsLocked(es, windows)
	for i, rr := range f.retiring {
		if rr == r {
			f.retiring = append(f.retiring[:i], f.retiring[i+1:]...)
			break
		}
	}
}

// foldStatsLocked accumulates one retired (or crash-recovered)
// engine's final statistics into the fleet history. f.mu held — safe
// even though Stats/TenantWindows take the engine's own locks, because
// an engine never takes f.mu. Crash recovery folds under f.mu so the
// old engine's numbers and the replacement replica appear atomically.
func (f *Fleet) foldStatsLocked(es serve.Stats, windows []serve.TenantWindow) {
	h := &f.history
	if h.tenants == nil {
		h.tenants = make(map[string]*serve.TenantWindow)
	}
	h.replicas++
	h.submitted += es.Submitted
	h.completed += es.Completed
	h.failed += es.Failed
	h.rejected += es.Rejected
	h.pending += es.Pending
	h.lost += es.Lost
	h.preemptions += es.Preemptions
	h.resumes += es.Resumes
	h.reassigns += es.PEReassigns
	if es.MakespanCycles > h.makespan {
		h.makespan = es.MakespanCycles
	}
	for i := range windows {
		addWindow(h.tenants, &windows[i])
		// The folded window is a sliding window like the per-engine
		// ones: keep the most recent samples, bounded across any
		// number of retired generations.
		t := h.tenants[windows[i].Tenant]
		if n := len(t.Latencies); n > maxHistoryLatencies {
			t.Latencies = append(t.Latencies[:0], t.Latencies[n-maxHistoryLatencies:]...)
		}
	}
}

// maxHistoryLatencies bounds each tenant's folded latency window
// across retired generations (matches the per-engine window scale).
const maxHistoryLatencies = 4096

// Drain stops admissions, waits for in-flight fused chains to finish
// submitting (and serving) their segments, fans the drain out to every
// live replica (active and still-retiring), joins them, and returns
// the final fleet statistics. The chain wait comes first: engines must
// not be quiesced while accepted chains still have segments to submit,
// or those tickets could never resolve.
func (f *Fleet) Drain(ctx context.Context) (Stats, error) {
	f.mu.Lock()
	f.draining = true
	f.mu.Unlock()
	f.chainWG.Wait()

	f.mu.Lock()
	live := make([]*replica, 0, len(f.replicas)+len(f.retiring)+len(f.failedReplicas))
	live = append(live, f.replicas...)
	live = append(live, f.retiring...)
	// Crashed engines are already stopped; joining them is immediate
	// but keeps the error surface uniform.
	live = append(live, f.failedReplicas...)
	f.mu.Unlock()

	errs := make([]error, len(live))
	var wg sync.WaitGroup
	for i, r := range live {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			if _, err := r.engine.Drain(ctx); err != nil {
				errs[i] = fmt.Errorf("fleet: replica %d drain: %w", r.id, err)
			}
		}(i, r)
	}
	wg.Wait()
	return f.Stats(), errors.Join(errs...)
}
