package fleet

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/dse"
	"repro/internal/energy"
	"repro/internal/maestro"
	"repro/internal/serve"
	"repro/internal/workload"
)

func newTestCache() *maestro.Cache { return maestro.NewCache(energy.Default28nm()) }

func testHDA(t testing.TB) *accel.HDA {
	t.Helper()
	h, err := accel.New("fleet-test", accel.Edge, []accel.Partition{
		{Style: dataflow.NVDLA, PEs: 512, BWGBps: 8},
		{Style: dataflow.ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func testFleet(t testing.TB, cache *maestro.Cache, n int, p Policy) *Fleet {
	t.Helper()
	opts := DefaultOptions()
	opts.Policy = p
	f, err := Replicated(cache, testHDA(t), n, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// skewedRequests builds the alternating heavy/light request sequence:
// an expensive model and a cheap one interleaved 1:1, the aliasing
// pattern that defeats round-robin dispatch on even-sized fleets.
func skewedRequests(pairs int) []serve.Request {
	var reqs []serve.Request
	for i := 0; i < pairs; i++ {
		reqs = append(reqs,
			serve.Request{Tenant: "heavy", Model: "resnet50", ArrivalCycle: 0},
			serve.Request{Tenant: "light", Model: "mobilenetv1", ArrivalCycle: 0},
		)
	}
	return reqs
}

// driveSequential submits the sequence one by one (deterministic
// dispatch), then waits for every completion, then drains.
func driveSequential(t *testing.T, f *Fleet, reqs []serve.Request) ([]int, Stats) {
	t.Helper()
	var tickets []*Ticket
	replicas := make([]int, 0, len(reqs))
	for i, req := range reqs {
		tk, err := f.Submit(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		tickets = append(tickets, tk)
		replicas = append(replicas, tk.Replica)
	}
	for i, tk := range tickets {
		rec, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if rec.Status != serve.StatusDone {
			t.Fatalf("request %d: status %q err %q", i, rec.Status, rec.Err)
		}
	}
	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return replicas, st
}

// TestFleetDispatchDeterminism: a fixed submission sequence must
// produce the identical replica assignment on every run — dispatch
// depends only on the sequence, never on wall-clock or goroutine
// timing.
func TestFleetDispatchDeterminism(t *testing.T) {
	for _, policy := range []Policy{RoundRobin, CostAware} {
		t.Run(policy.String(), func(t *testing.T) {
			cache := newTestCache()
			reqs := skewedRequests(10)
			first, _ := driveSequential(t, testFleet(t, cache, 3, policy), reqs)
			second, _ := driveSequential(t, testFleet(t, cache, 3, policy), reqs)
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("request %d dispatched to replica %d on run 1 but %d on run 2\nrun1 %v\nrun2 %v",
						i, first[i], second[i], first, second)
				}
			}
		})
	}
}

// TestFleetDrain: Drain fans out to every replica, joins them, and
// the drained fleet refuses new work.
func TestFleetDrain(t *testing.T) {
	f := testFleet(t, newTestCache(), 3, RoundRobin)
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := f.Submit(serve.Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: int64(i) * 100_000}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != n || st.Pending != 0 {
		t.Fatalf("drained stats: %+v", st)
	}
	var dispatched int64
	for _, rs := range st.PerReplica {
		dispatched += rs.Dispatched
		if rs.Inflight != 0 {
			t.Errorf("replica %d: %d inflight after drain", rs.Replica, rs.Inflight)
		}
	}
	if dispatched != n {
		t.Errorf("dispatched %d across replicas, want %d", dispatched, n)
	}
	if _, err := f.Submit(serve.Request{Tenant: "a", Model: "mobilenetv1"}); !errors.Is(err, serve.ErrDraining) {
		t.Errorf("submit after drain: %v, want ErrDraining", err)
	}
	// Draining twice is idempotent.
	if _, err := f.Drain(context.Background()); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestFleetScaling: 4 replicas must serve at least 3x the simulated
// throughput of a single engine on the same request sequence (the
// replicas run in parallel in simulated time, so fleet throughput is
// completions over the slowest replica's makespan).
func TestFleetScaling(t *testing.T) {
	cache := newTestCache()
	reqs := make([]serve.Request, 0, 48)
	for i := 0; i < 48; i++ {
		tenant := []string{"a", "b"}[i%2]
		reqs = append(reqs, serve.Request{Tenant: tenant, Model: "mobilenetv1", ArrivalCycle: 0})
	}
	_, single := driveSequential(t, testFleet(t, cache, 1, RoundRobin), reqs)
	_, quad := driveSequential(t, testFleet(t, cache, 4, RoundRobin), reqs)

	if single.Completed != 48 || quad.Completed != 48 {
		t.Fatalf("completions: single %d quad %d", single.Completed, quad.Completed)
	}
	if single.SimThroughputRPS <= 0 || quad.SimThroughputRPS <= 0 {
		t.Fatalf("degenerate throughput: single %g quad %g", single.SimThroughputRPS, quad.SimThroughputRPS)
	}
	scaling := quad.SimThroughputRPS / single.SimThroughputRPS
	if scaling < 3 {
		t.Errorf("4-replica fleet scales only %.2fx over a single engine (single %.1f req/s, quad %.1f req/s), want >= 3x",
			scaling, single.SimThroughputRPS, quad.SimThroughputRPS)
	}
}

// TestCostAwareBeatsRoundRobin: on a skewed heavy/light mix over an
// even-sized fleet, round-robin aliases every heavy request onto the
// same replica while cost-aware ETA routing balances actual work —
// the heavy tenant's p99 (and the fleet-wide worst p99) must be
// strictly lower under cost-aware dispatch.
func TestCostAwareBeatsRoundRobin(t *testing.T) {
	cache := newTestCache()
	reqs := skewedRequests(15)
	rrAssign, rr := driveSequential(t, testFleet(t, cache, 2, RoundRobin), reqs)
	caAssign, ca := driveSequential(t, testFleet(t, cache, 2, CostAware), reqs)

	// Sanity: round-robin really aliases (all heavy on replica 0).
	for i := 0; i < len(rrAssign); i += 2 {
		if rrAssign[i] != 0 {
			t.Fatalf("round-robin aliasing assumption broken: heavy request %d on replica %d", i, rrAssign[i])
		}
	}
	// Cost-aware must have split the heavy requests.
	heavySplit := map[int]int{}
	for i := 0; i < len(caAssign); i += 2 {
		heavySplit[caAssign[i]]++
	}
	if len(heavySplit) < 2 {
		t.Errorf("cost-aware routed every heavy request to one replica: %v", heavySplit)
	}

	p99 := func(st Stats, tenant string) int64 {
		for _, ts := range st.Tenants {
			if ts.Tenant == tenant {
				return ts.P99LatencyCycles
			}
		}
		t.Fatalf("tenant %s missing from %+v", tenant, st.Tenants)
		return 0
	}
	rrHeavy, caHeavy := p99(rr, "heavy"), p99(ca, "heavy")
	if caHeavy >= rrHeavy {
		t.Errorf("cost-aware heavy-tenant p99 %d >= round-robin %d; ETA routing should beat aliased round-robin",
			caHeavy, rrHeavy)
	}
	worst := func(st Stats) int64 {
		var w int64
		for _, ts := range st.Tenants {
			if ts.P99LatencyCycles > w {
				w = ts.P99LatencyCycles
			}
		}
		return w
	}
	if worst(ca) >= worst(rr) {
		t.Errorf("cost-aware worst p99 %d >= round-robin %d", worst(ca), worst(rr))
	}
}

// TestLeastOutstanding: the probe-based policy routes away from the
// replica with committed backlog.
func TestLeastOutstanding(t *testing.T) {
	f := testFleet(t, newTestCache(), 2, LeastOutstanding)
	t1, err := f.Submit(serve.Request{Tenant: "a", Model: "resnet50", ArrivalCycle: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Replica t1.Replica now has a committed backlog; the next request
	// must land on the other replica.
	t2, err := f.Submit(serve.Request{Tenant: "a", Model: "resnet50", ArrivalCycle: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if t1.Replica == t2.Replica {
		t.Errorf("least-outstanding sent both requests to replica %d despite its backlog", t1.Replica)
	}
	if _, err := f.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestFleetStatsAggregation: tenant statistics merge across replicas
// — counts sum, percentiles come from the merged windows, and the
// per-replica breakdown is complete.
func TestFleetStatsAggregation(t *testing.T) {
	f := testFleet(t, newTestCache(), 3, RoundRobin)
	reqs := make([]serve.Request, 0, 30)
	for i := 0; i < 30; i++ {
		tenant := []string{"arvr", "mlperf"}[i%2]
		model := []string{"brq-handpose", "mobilenetv1"}[i%2]
		reqs = append(reqs, serve.Request{Tenant: tenant, Model: model, SLACycles: 1 << 50, ArrivalCycle: int64(i) * 50_000})
	}
	_, st := driveSequential(t, f, reqs)

	if st.Replicas != 3 || len(st.PerReplica) != 3 {
		t.Fatalf("replica breakdown: %+v", st)
	}
	if len(st.Tenants) != 2 {
		t.Fatalf("%d merged tenants, want 2: %+v", len(st.Tenants), st.Tenants)
	}
	for _, ts := range st.Tenants {
		if ts.Completed != 15 {
			t.Errorf("tenant %s: completed %d, want 15 (merged across replicas)", ts.Tenant, ts.Completed)
		}
		if ts.P50LatencyCycles <= 0 || ts.P99LatencyCycles < ts.P50LatencyCycles {
			t.Errorf("tenant %s: degenerate merged percentiles %+v", ts.Tenant, ts)
		}
		if ts.SLATracked != 15 || ts.SLAViolations != 0 {
			t.Errorf("tenant %s: SLA accounting %+v", ts.Tenant, ts)
		}
	}
	// Each round-robin replica saw 10 of the 30 requests.
	for _, rs := range st.PerReplica {
		if rs.Dispatched != 10 {
			t.Errorf("replica %d: dispatched %d, want 10", rs.Replica, rs.Dispatched)
		}
		if rs.Engine.Completed != 10 {
			t.Errorf("replica %d: engine completed %d, want 10", rs.Replica, rs.Engine.Completed)
		}
	}
	if st.MakespanCycles <= 0 || st.SimThroughputRPS <= 0 {
		t.Errorf("aggregate throughput: %+v", st)
	}
}

// TestHeterogeneousTopKFleet: a fleet over the top-K points of a DSE
// search serves across distinct partitions, and cost-aware dispatch
// still completes everything.
func TestHeterogeneousTopKFleet(t *testing.T) {
	cache := newTestCache()
	w := workload.ARVRA()
	res, err := dse.Search(cache, dse.Space{
		Class:   accel.Edge,
		Styles:  []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao},
		PEUnits: 4, BWUnits: 2,
	}, w, dse.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopK(dse.ObjectiveLatency, 2)
	if len(top) != 2 {
		t.Fatalf("TopK returned %d points", len(top))
	}
	opts := DefaultOptions()
	opts.Policy = CostAware
	f, err := New(cache, []*accel.HDA{top[0].HDA, top[1].HDA}, opts)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]serve.Request, 0, 12)
	for i := 0; i < 12; i++ {
		model := []string{"unet", "mobilenetv2", "brq-handpose"}[i%3]
		reqs = append(reqs, serve.Request{Tenant: "arvr", Model: model, ArrivalCycle: 0})
	}
	_, st := driveSequential(t, f, reqs)
	if st.Completed != 12 || st.Failed != 0 {
		t.Fatalf("heterogeneous fleet stats: %+v", st)
	}
	names := map[string]bool{}
	for _, rs := range st.PerReplica {
		names[rs.HDA] = true
	}
	if len(names) != 2 {
		t.Errorf("expected 2 distinct replica HDAs, got %v", names)
	}
}

// TestFleetValidation covers constructor errors.
func TestFleetValidation(t *testing.T) {
	cache := newTestCache()
	if _, err := New(nil, []*accel.HDA{testHDA(t)}, DefaultOptions()); err == nil {
		t.Error("nil cache accepted")
	}
	if _, err := New(cache, nil, DefaultOptions()); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := Replicated(cache, testHDA(t), 0, DefaultOptions()); err == nil {
		t.Error("0 replicas accepted")
	}
	bad := DefaultOptions()
	bad.Policy = Policy(99)
	if _, err := Replicated(cache, testHDA(t), 1, bad); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(cache, []*accel.HDA{nil}, DefaultOptions()); err == nil {
		t.Error("nil replica HDA accepted")
	}
}

// TestParsePolicy covers the flag-facing parser.
func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]Policy{
		"round-robin": RoundRobin, "rr": RoundRobin,
		"least-outstanding": LeastOutstanding, "lo": LeastOutstanding,
		"cost-aware": CostAware, "eta": CostAware,
	} {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("unknown policy name accepted")
	}
	for _, p := range []Policy{RoundRobin, LeastOutstanding, CostAware, Policy(42)} {
		if p.String() == "" {
			t.Errorf("empty String for %d", int(p))
		}
	}
}

// TestOnRequestDoneChain: a user hook installed on Options.Serve still
// fires alongside the fleet's own in-flight bookkeeping.
func TestOnRequestDoneChain(t *testing.T) {
	done := make(chan serve.Record, 4)
	opts := DefaultOptions()
	opts.Serve.OnRequestDone = func(rec serve.Record) { done <- rec }
	f, err := Replicated(newTestCache(), testHDA(t), 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.Submit(serve.Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(done)
	n := 0
	for rec := range done {
		n++
		if rec.Status != serve.StatusDone {
			t.Errorf("hook saw %+v", rec)
		}
	}
	if n != 2 {
		t.Errorf("user hook fired %d times, want 2", n)
	}
}

// TestNilHDAError double-checks New's error path names the replica.
func TestNilHDAError(t *testing.T) {
	_, err := New(newTestCache(), []*accel.HDA{testHDA(t), nil}, DefaultOptions())
	if err == nil {
		t.Fatal("nil second HDA accepted")
	}
	if !strings.Contains(err.Error(), "replica 1") {
		t.Errorf("error %q does not name the failing replica", err)
	}
}
