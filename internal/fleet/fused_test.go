package fleet

// Tests of fleet-level fusion (segment chains dispatched across
// replicas) and the decayed observed mix.

import (
	"context"
	"sync"
	"testing"

	"repro/internal/dnn"
	"repro/internal/dse"
	"repro/internal/maestro"
	"repro/internal/serve"
)

// fleetPlans computes multi-segment plans for the named models on the
// fleet test HDA.
func fleetPlans(t testing.TB, cache *maestro.Cache, names ...string) map[string]dse.SegmentPlan {
	t.Helper()
	h := testHDA(t)
	plans := make(map[string]dse.SegmentPlan)
	for _, name := range names {
		m, err := dnn.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := dse.PlanSegments(cache, h, m, dse.ObjectiveEDP, 4)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumSegments() < 2 {
			t.Fatalf("%s does not split on the test HDA", name)
		}
		plans[name] = p
	}
	return plans
}

func fusedFleet(t testing.TB, cache *maestro.Cache, n int, plans map[string]dse.SegmentPlan) *Fleet {
	t.Helper()
	opts := DefaultOptions()
	opts.Plans = plans
	f, err := Replicated(cache, testHDA(t), n, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFleetFusedDispatch: a fused request dispatched through the
// fleet resolves to one merged record whose segments respect
// completion-paced precedence, each carrying its serving replica, and
// the fleet's fused counters conserve.
func TestFleetFusedDispatch(t *testing.T) {
	cache := newTestCache()
	plans := fleetPlans(t, cache, "mobilenetv2", "mobilenetv1")
	f := fusedFleet(t, cache, 2, plans)

	const reqsPerModel = 8
	var tickets []*Ticket
	for i := 0; i < reqsPerModel; i++ {
		for _, model := range []string{"mobilenetv2", "mobilenetv1"} {
			tk, err := f.Submit(serve.Request{
				Tenant: "ar", Model: model, SLACycles: 1 << 50,
				ArrivalCycle: int64(i) * 400_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			tickets = append(tickets, tk)
		}
	}
	for i, tk := range tickets {
		rec, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rec.Status != serve.StatusDone {
			t.Fatalf("request %d: %q err %q", i, rec.Status, rec.Err)
		}
		if len(rec.Segments) != plans[rec.Model].NumSegments() {
			t.Fatalf("request %d: %d segments, want %d", i, len(rec.Segments), plans[rec.Model].NumSegments())
		}
		for k, sr := range rec.Segments {
			if sr.FinishCycle <= sr.StartCycle {
				t.Errorf("request %d segment %d: degenerate [%d,%d]", i, k, sr.StartCycle, sr.FinishCycle)
			}
			if k > 0 && sr.StartCycle < rec.Segments[k-1].FinishCycle {
				t.Errorf("request %d segment %d starts %d before predecessor finish %d",
					i, k, sr.StartCycle, rec.Segments[k-1].FinishCycle)
			}
			if sr.Replica < 0 || sr.Replica > 1 {
				t.Errorf("request %d segment %d: replica %d", i, k, sr.Replica)
			}
		}
		if rec.FinishCycle != rec.Segments[len(rec.Segments)-1].FinishCycle {
			t.Errorf("request %d: finish %d != last segment", i, rec.FinishCycle)
		}
		if tk.Replica != rec.Segments[0].Replica {
			t.Errorf("request %d: ticket replica %d != first segment %d", i, tk.Replica, rec.Segments[0].Replica)
		}
	}

	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sg := st.Segments
	wantFused := int64(2 * reqsPerModel)
	if sg.FusedRequests != wantFused || sg.FusedCompleted != wantFused || sg.FusedFailed != 0 {
		t.Errorf("fused counters %+v, want %d completed", sg, wantFused)
	}
	wantSegs := int64(reqsPerModel * (plans["mobilenetv2"].NumSegments() + plans["mobilenetv1"].NumSegments()))
	if sg.Segments != wantSegs || sg.SegmentsCompleted != wantSegs || sg.SegmentsFailed != 0 {
		t.Errorf("segment counters %+v, want %d", sg, wantSegs)
	}
	if st.CrossReplicaHandoffs < 0 || st.CrossReplicaHandoffs > wantSegs-wantFused {
		t.Errorf("cross-replica handoffs %d out of range [0,%d]", st.CrossReplicaHandoffs, wantSegs-wantFused)
	}
	if sg.SegmentSpanCycles < sg.SegmentBusyCycles {
		t.Errorf("span %d < busy %d", sg.SegmentSpanCycles, sg.SegmentBusyCycles)
	}
}

// TestFleetFusedMigrateStraddle: requests whose segment chains
// straddle a Migrate generation swap must complete — early segments
// drain cleanly on the old generation, later segments land on the new
// one (or the old one pre-quiesce), and no chain is lost or
// double-served.
func TestFleetFusedMigrateStraddle(t *testing.T) {
	cache := newTestCache()
	plans := fleetPlans(t, cache, "mobilenetv2")
	f := fusedFleet(t, cache, 2, plans)

	const n = 12
	var wg sync.WaitGroup
	recs := make([]serve.Record, n)
	for i := 0; i < n; i++ {
		tk, err := f.Submit(serve.Request{
			Tenant: "ar", Model: "mobilenetv2", ArrivalCycle: int64(i) * 200_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, tk *Ticket) {
			defer wg.Done()
			recs[i], _ = tk.Wait(context.Background())
		}(i, tk)
	}

	// Swap generations while chains are in flight.
	if err := f.Migrate(context.Background(), nil, nil); err == nil {
		t.Fatal("empty migration accepted")
	}
	if err := f.Migrate(context.Background(), f.ActiveHDAs(), nil); err != nil {
		t.Fatal(err)
	}
	if f.Generation() != 1 {
		t.Fatalf("generation %d after migrate", f.Generation())
	}
	wg.Wait()

	oldIDs := map[int]bool{0: true, 1: true}
	for i, rec := range recs {
		if rec.Status != serve.StatusDone {
			t.Fatalf("request %d: %q err %q", i, rec.Status, rec.Err)
		}
		// Once a chain hops to the new generation it must not hop back
		// to a retired replica: old-generation engines quiesce at the
		// swap, so a later segment landing there would have been
		// rejected, not served.
		seenNew := false
		for k, sr := range rec.Segments {
			isOld := oldIDs[sr.Replica]
			if seenNew && isOld {
				t.Errorf("request %d segment %d went back to retired replica %d", i, k, sr.Replica)
			}
			if !isOld {
				seenNew = true
			}
		}
	}

	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments.FusedCompleted != n || st.Segments.FusedFailed != 0 {
		t.Errorf("fused counters after straddle: %+v", st.Segments)
	}
	wantSegs := int64(n * plans["mobilenetv2"].NumSegments())
	if st.Segments.SegmentsCompleted != wantSegs {
		t.Errorf("segments completed %d, want %d", st.Segments.SegmentsCompleted, wantSegs)
	}
}

// TestObservedMixDecay: with a half-life configured, the observed mix
// tracks recent traffic — 90 submissions of A followed by 30 of B
// must weight B above A (all-time counts would say 3:1 the other
// way), and a model decayed below the drop fraction leaves the mix.
func TestObservedMixDecay(t *testing.T) {
	opts := DefaultOptions()
	opts.MixHalfLife = 10
	f, err := Replicated(newTestCache(), testHDA(t), 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Drain(context.Background())

	count := func(mix map[string]int, model string) int { return mix[model] }
	snapshot := func() map[string]int {
		m := map[string]int{}
		w := f.ObservedMix("mix")
		if w == nil {
			return m
		}
		for i := range w.Instances {
			m[w.Instances[i].Model.Name]++
		}
		return m
	}

	f.mu.Lock()
	for i := 0; i < 90; i++ {
		f.mixAdd("resnet50")
	}
	for i := 0; i < 30; i++ {
		f.mixAdd("mobilenetv1")
	}
	f.mu.Unlock()

	mix := snapshot()
	if count(mix, "mobilenetv1") <= count(mix, "resnet50") {
		t.Errorf("decayed mix %v: recent mobilenetv1 must outweigh stale resnet50", mix)
	}
	if count(mix, "resnet50") < 1 {
		t.Errorf("decayed mix %v: resnet50 still above the drop fraction here", mix)
	}

	// Decay resnet50 far below 1% of the total: it must drop out.
	f.mu.Lock()
	for i := 0; i < 600; i++ {
		f.mixAdd("mobilenetv1")
	}
	f.mu.Unlock()
	mix = snapshot()
	if count(mix, "resnet50") != 0 {
		t.Errorf("mix %v: resnet50 should have decayed out", mix)
	}
	if count(mix, "mobilenetv1") == 0 {
		t.Errorf("mix %v: live model missing", mix)
	}

	// Half-life 0 keeps the legacy all-time behavior: 90:30 -> 3:1.
	f2, err := Replicated(newTestCache(), testHDA(t), 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Drain(context.Background())
	f2.mu.Lock()
	for i := 0; i < 90; i++ {
		f2.mixAdd("resnet50")
	}
	for i := 0; i < 30; i++ {
		f2.mixAdd("mobilenetv1")
	}
	f2.mu.Unlock()
	legacy := map[string]int{}
	w := f2.ObservedMix("mix")
	if w == nil {
		t.Fatal("no legacy mix")
	}
	for i := range w.Instances {
		legacy[w.Instances[i].Model.Name]++
	}
	if legacy["resnet50"] != 3 || legacy["mobilenetv1"] != 1 {
		t.Errorf("legacy mix %v, want resnet50:3 mobilenetv1:1", legacy)
	}
}

// TestControllerConsumesDecayedMix: a controller attached to a
// half-life fleet probes the decayed mix — after traffic shifts, the
// probe's mix string reflects the recent model, not the stale one.
func TestControllerConsumesDecayedMix(t *testing.T) {
	f := resweepFleet(t, 1)
	f.mixDecay = 0.933 // half-life ~10 submissions, set directly for the probe

	f.mu.Lock()
	for i := 0; i < 90; i++ {
		f.mixAdd("resnet50")
	}
	for i := 0; i < 600; i++ {
		f.mixAdd("mobilenetv1")
	}
	f.mu.Unlock()

	c, err := NewController(f, ControllerOptions{Threshold: 1e9}) // never migrate
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.Mix != "mobilenetv1:1" {
		t.Errorf("controller probed mix %q, want the decayed mobilenetv1:1", d.Mix)
	}
	if _, err := f.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
