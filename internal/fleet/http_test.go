package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
)

func fleetServer(t *testing.T) (*Fleet, *httptest.Server) {
	t.Helper()
	f := testFleet(t, newTestCache(), 2, CostAware)
	srv := httptest.NewServer(f.Handler())
	t.Cleanup(srv.Close)
	return f, srv
}

func doJSON(t *testing.T, method, url string, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s %s: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestFleetHTTPEndToEnd drives the fleet API: dispatch (sync + async),
// fleet-wide stats, per-replica delegation, and drain.
func TestFleetHTTPEndToEnd(t *testing.T) {
	_, srv := fleetServer(t)

	var health map[string]any
	if code := doJSON(t, "GET", srv.URL+"/v1/healthz", "", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health["replicas"] != float64(2) || health["policy"] != "cost-aware" {
		t.Fatalf("healthz: %v", health)
	}

	// Synchronous dispatch carries the serving replica; an explicit
	// cycle-0 arrival survives the fleet front end too.
	var rec DispatchRecord
	code := doJSON(t, "POST", srv.URL+"/v1/requests",
		`{"tenant":"arvr","model":"brq-handpose","arrival_cycle":0,"wait":true}`, &rec)
	if code != http.StatusOK || rec.Status != serve.StatusDone {
		t.Fatalf("sync dispatch: code %d rec %+v", code, rec)
	}
	if rec.Replica < 0 || rec.Replica >= 2 {
		t.Fatalf("bad replica %d", rec.Replica)
	}
	if rec.ArrivalCycle != 0 {
		t.Errorf("explicit arrival 0 rewritten to %d", rec.ArrivalCycle)
	}

	// Asynchronous dispatch acknowledges with id + replica.
	var ack DispatchAck
	if code := doJSON(t, "POST", srv.URL+"/v1/requests",
		`{"tenant":"arvr","model":"mobilenetv1","arrival_cycle":0}`, &ack); code != http.StatusAccepted {
		t.Fatalf("async dispatch: %d", code)
	}
	if ack.ID <= 0 || ack.Status != serve.StatusQueued {
		t.Fatalf("ack %+v", ack)
	}

	// The async request is inspectable through its replica's delegated
	// API (possibly still queued; both endpoints must resolve).
	if code := doJSON(t, "GET", fmt.Sprintf("%s/v1/replicas/%d/healthz", srv.URL, ack.Replica), "", nil); code != http.StatusOK {
		t.Errorf("replica healthz delegation: %d", code)
	}
	if code := doJSON(t, "GET", fmt.Sprintf("%s/v1/replicas/%d/requests/%d", srv.URL, ack.Replica, ack.ID), "", nil); code != http.StatusOK {
		t.Errorf("replica request-lookup delegation: %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/replicas/7/healthz", "", nil); code != http.StatusNotFound {
		t.Errorf("out-of-range replica: %d, want 404", code)
	}

	var models struct {
		Models []string `json:"models"`
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/models", "", &models); code != http.StatusOK || len(models.Models) == 0 {
		t.Fatalf("models: %d %v", code, models)
	}

	var final Stats
	if code := doJSON(t, "POST", srv.URL+"/v1/drain", "", &final); code != http.StatusOK {
		t.Fatalf("drain: %d", code)
	}
	if final.Completed != 2 || final.Pending != 0 {
		t.Fatalf("final stats: %+v", final)
	}

	var st Stats
	if code := doJSON(t, "GET", srv.URL+"/v1/fleet/stats", "", &st); code != http.StatusOK || st.Replicas != 2 {
		t.Fatalf("fleet stats: %d %+v", code, st)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/stats", "", &st); code != http.StatusOK {
		t.Fatalf("stats alias: %d", code)
	}

	// A drained fleet refuses new work with 503: it is going away, so
	// retrying against it is futile (429 is reserved for retryable
	// overload — full queues and shed arrivals).
	if code := doJSON(t, "POST", srv.URL+"/v1/requests",
		`{"tenant":"x","model":"mobilenetv1"}`, nil); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain dispatch: %d, want 503", code)
	}
}

// TestFleetHTTPBadRequests covers malformed dispatches.
func TestFleetHTTPBadRequests(t *testing.T) {
	_, srv := fleetServer(t)
	if code := doJSON(t, "POST", srv.URL+"/v1/requests", `{not json`, nil); code != http.StatusBadRequest {
		t.Errorf("garbage body: %d, want 400", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/requests", `{"tenant":"a","model":"not-a-model"}`, nil); code != http.StatusBadRequest {
		t.Errorf("unknown model: %d, want 400", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/requests", `{"model":"mobilenetv1"}`, nil); code != http.StatusBadRequest {
		t.Errorf("missing tenant: %d, want 400", code)
	}
}

// TestFleetHTTPDecisions: GET /v1/fleet/decisions exposes the
// fault-handling decision log on its own, with the stall factor and
// admit-fail count surviving the JSON round trip — exactly what an
// operator feeds to ExportFaultPlan to re-run an incident offline.
func TestFleetHTTPDecisions(t *testing.T) {
	opts := DefaultOptions()
	opts.Faults = mustPlan(t,
		FaultEvent{Cycle: 100, Replica: 0, Kind: FaultStall, Factor: 4},
		FaultEvent{Cycle: 200, Replica: 1, Kind: FaultAdmitFail, Count: 2},
	)
	f := faultFleet(t, opts)
	srv := httptest.NewServer(f.Handler())
	t.Cleanup(srv.Close)

	// An empty log decodes as an empty (not absent) array.
	var log DecisionLog
	if code := doJSON(t, "GET", srv.URL+"/v1/fleet/decisions", "", &log); code != http.StatusOK {
		t.Fatalf("decisions: %d", code)
	}
	if len(log.Decisions) != 0 {
		t.Fatalf("decision log before traffic: %+v", log.Decisions)
	}

	// Advance the fault clock past both events.
	var rec DispatchRecord
	if code := doJSON(t, "POST", srv.URL+"/v1/requests",
		`{"tenant":"a","model":"mobilenetv1","arrival_cycle":500,"wait":true}`, &rec); code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/fleet/decisions", "", &log); code != http.StatusOK {
		t.Fatalf("decisions: %d", code)
	}
	if len(log.Decisions) != 2 {
		t.Fatalf("decision log: %+v", log.Decisions)
	}
	if d := log.Decisions[0]; d.Kind != "stall" || d.Factor != 4 {
		t.Errorf("stall decision lost its factor over HTTP: %+v", d)
	}
	if d := log.Decisions[1]; d.Kind != "admit-fail" || d.Count != 2 {
		t.Errorf("admit-fail decision lost its count over HTTP: %+v", d)
	}

	// The exported log reconstructs the injected plan.
	p, err := ExportFaultPlan(log.Decisions)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatFaultPlan(p), "100:0:stall:4,200:1:admit-fail:2"; got != want {
		t.Errorf("exported plan %q, want %q", got, want)
	}
}
