package fleet

import (
	"encoding/json"
	"testing"
)

// requireKeys marshals v and fails if any of the listed JSON keys is
// absent — the regression the jsonzero analyzer guards against:
// omitempty on a numeric or bool field silently drops the zero value,
// making "counter is 0" indistinguishable from "field not reported".
func requireKeys(t *testing.T, v any, keys ...string) {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	for _, k := range keys {
		if _, ok := m[k]; !ok {
			t.Errorf("%T: zero-valued field %q missing from JSON %s", v, k, raw)
		}
	}
}

// TestZeroValuedStatsFieldsSurviveJSON pins the jsonzero triage for
// this package: every counter and flag below is meaningful at zero
// and must round-trip through JSON even when zero.
func TestZeroValuedStatsFieldsSurviveJSON(t *testing.T) {
	requireKeys(t, Stats{},
		"migrations", "retired_replicas", "failed", "rejected", "shed",
		"failovers", "lost", "crashes", "recoveries", "breaker_trips",
		"failed_replicas")
	requireKeys(t, ReplicaStats{},
		"retiring", "consecutive_failures", "dispatched", "inflight")
	requireKeys(t, ReplicaHealth{},
		"consecutive_failures", "pending_admit_faults", "horizon_cycles")
	requireKeys(t, Decision{}, "explored", "pruned")
}
