package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/dnn"
	"repro/internal/serve"
)

// DispatchAck acknowledges an asynchronous fleet submission.
type DispatchAck struct {
	ID      int64        `json:"id"`
	Replica int          `json:"replica"`
	Status  serve.Status `json:"status"`
}

// DispatchRecord is a request's final record plus the replica that
// served it.
type DispatchRecord struct {
	serve.Record
	Replica int `json:"replica"`
}

type httpError struct {
	Error string `json:"error"`
}

// Handler returns the fleet's JSON-over-HTTP API:
//
//	POST /v1/requests              dispatch a request via the routing
//	                               policy (serve.SubmitRequest body;
//	                               responses carry the replica index)
//	GET  /v1/fleet/stats           fleet-wide aggregate + per-replica
//	GET  /v1/stats                 alias of /v1/fleet/stats
//	GET  /v1/fleet/repartition     repartitioning controller status
//	                               (404 when no controller is attached)
//	POST /v1/drain                 drain every replica, final stats
//	GET  /v1/models                servable model zoo
//	GET  /v1/healthz               liveness (replica count, policy)
//	ANY  /v1/replicas/{i}/{rest}   delegate to replica i's engine API
//	                               (e.g. /v1/replicas/0/requests/7,
//	                               /v1/replicas/2/schedule)
//
// Replica ids are stable across migrations (each new generation takes
// fresh ids); delegation resolves the replica at request time, so a
// still-retiring replica stays inspectable until it is folded.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/requests", f.handleSubmit)
	mux.HandleFunc("GET /v1/fleet/stats", f.handleStats)
	mux.HandleFunc("GET /v1/stats", f.handleStats)
	mux.HandleFunc("GET /v1/fleet/repartition", f.handleRepartition)
	mux.HandleFunc("POST /v1/drain", f.handleDrain)
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"models": dnn.Names()})
	})
	mux.HandleFunc("GET /v1/healthz", f.handleHealthz)
	mux.HandleFunc("/v1/replicas/{replica}/{rest...}", f.handleReplica)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (f *Fleet) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req serve.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{fmt.Sprintf("bad request body: %v", err)})
		return
	}
	req.Normalize()
	ticket, err := f.Submit(req.Request)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, serve.ErrDraining) || errors.Is(err, serve.ErrQueueFull) {
			code = http.StatusTooManyRequests
		}
		writeJSON(w, code, httpError{err.Error()})
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, DispatchAck{ID: ticket.ID, Replica: ticket.Replica, Status: serve.StatusQueued})
		return
	}
	rec, err := ticket.Wait(r.Context())
	if err != nil {
		writeJSON(w, http.StatusRequestTimeout, httpError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, DispatchRecord{Record: rec, Replica: ticket.Replica})
}

func (f *Fleet) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.Stats())
}

func (f *Fleet) handleDrain(w http.ResponseWriter, r *http.Request) {
	st, err := f.Drain(r.Context())
	if err != nil {
		writeJSON(w, http.StatusRequestTimeout, httpError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (f *Fleet) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         true,
		"replicas":   f.Size(),
		"generation": f.Generation(),
		"policy":     f.Policy().String(),
		"uptime":     time.Since(f.start).String(),
	})
}

// handleRepartition reports the attached repartitioning controller's
// status: lifecycle state, migration count, and the last decision.
func (f *Fleet) handleRepartition(w http.ResponseWriter, r *http.Request) {
	f.ctrlMu.Lock()
	c := f.controller
	f.ctrlMu.Unlock()
	if c == nil {
		writeJSON(w, http.StatusNotFound, httpError{"no repartitioning controller attached (start one with fleet.NewController / heraldd -repartition)"})
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

// handleReplica delegates /v1/replicas/{i}/{rest} to replica i's own
// engine API by rewriting the path to /v1/{rest} — the whole
// per-engine surface (request lookup, schedule export, per-replica
// stats) stays reachable through the fleet front end. Replicas are
// resolved by id at request time, so the surface follows migrations.
func (f *Fleet) handleReplica(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("replica"))
	var rep *replica
	if err == nil {
		rep = f.replicaByID(id)
	}
	if rep == nil {
		writeJSON(w, http.StatusNotFound, httpError{fmt.Sprintf(
			"no live replica %q (the id may belong to a retired generation; the fleet is at generation %d)",
			r.PathValue("replica"), f.Generation())})
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/v1/" + r.PathValue("rest")
	rep.httpHandler().ServeHTTP(w, r2)
}
