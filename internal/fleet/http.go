package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/dnn"
	"repro/internal/serve"
)

// DispatchAck acknowledges an asynchronous fleet submission.
type DispatchAck struct {
	ID      int64        `json:"id"`
	Replica int          `json:"replica"`
	Status  serve.Status `json:"status"`
}

// DispatchRecord is a request's final record plus the replica that
// served it.
type DispatchRecord struct {
	serve.Record
	Replica int `json:"replica"`
}

// httpError is the JSON error body of every fleet endpoint. Code is a
// stable machine-readable discriminator shared with the engine
// surface (bad_request, queue_full, draining, not_found, timeout)
// plus the fleet-only codes shed and no_replicas.
type httpError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// writeError emits the JSON error body, adding a Retry-After header
// to retryable rejections: retryAfter seconds when positive, else 1
// second for any 429.
func writeError(w http.ResponseWriter, status int, code, msg string, retryAfter int) {
	if retryAfter < 1 && status == http.StatusTooManyRequests {
		retryAfter = 1
	}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	writeJSON(w, status, httpError{Error: msg, Code: code})
}

// submitErrorStatus maps a fleet Submit error onto the engine error
// contract plus the fleet-only rejections: a shed request is
// retryable overload (429, Retry-After from the shed decision), a
// fleet with no eligible replica is unavailable (503).
func submitErrorStatus(err error) (status int, code string, retryAfter int) {
	var shed *ShedError
	switch {
	case errors.As(err, &shed):
		return http.StatusTooManyRequests, "shed", shed.RetryAfterSeconds
	case errors.Is(err, ErrNoReplicas):
		return http.StatusServiceUnavailable, "no_replicas", 0
	}
	status, code = serve.SubmitErrorStatus(err)
	return status, code, 0
}

// Handler returns the fleet's JSON-over-HTTP API:
//
//	POST /v1/requests              dispatch a request via the routing
//	                               policy (serve.SubmitRequest body;
//	                               responses carry the replica index)
//	GET  /v1/fleet/stats           fleet-wide aggregate + per-replica
//	GET  /v1/stats                 alias of /v1/fleet/stats
//	GET  /v1/fleet/health          per-replica health, fault counters,
//	                               and the fault-handling decision log
//	GET  /v1/fleet/decisions       the fault-handling decision log on
//	                               its own (export an incident; see
//	                               ExportFaultPlan)
//	GET  /v1/fleet/repartition     repartitioning controller status
//	                               (404 when no controller is attached)
//	POST /v1/drain                 drain every replica, final stats
//	GET  /v1/models                servable model zoo
//	GET  /v1/healthz               liveness (replica count, policy)
//	ANY  /v1/replicas/{i}/{rest}   delegate to replica i's engine API
//	                               (e.g. /v1/replicas/0/requests/7,
//	                               /v1/replicas/2/schedule)
//
// Replica ids are stable across migrations (each new generation takes
// fresh ids); delegation resolves the replica at request time, so a
// still-retiring replica stays inspectable until it is folded.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/requests", f.handleSubmit)
	mux.HandleFunc("GET /v1/fleet/stats", f.handleStats)
	mux.HandleFunc("GET /v1/stats", f.handleStats)
	mux.HandleFunc("GET /v1/fleet/health", f.handleHealth)
	mux.HandleFunc("GET /v1/fleet/decisions", f.handleDecisions)
	mux.HandleFunc("GET /v1/fleet/repartition", f.handleRepartition)
	mux.HandleFunc("POST /v1/drain", f.handleDrain)
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"models": dnn.Names()})
	})
	mux.HandleFunc("GET /v1/healthz", f.handleHealthz)
	mux.HandleFunc("/v1/replicas/{replica}/{rest...}", f.handleReplica)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (f *Fleet) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req serve.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad request body: %v", err), 0)
		return
	}
	req.Normalize()
	ticket, err := f.Submit(req.Request)
	if err != nil {
		status, code, retryAfter := submitErrorStatus(err)
		writeError(w, status, code, err.Error(), retryAfter)
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, DispatchAck{ID: ticket.ID, Replica: ticket.Replica, Status: serve.StatusQueued})
		return
	}
	rec, err := ticket.Wait(r.Context())
	if err != nil {
		writeError(w, http.StatusRequestTimeout, "timeout", err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusOK, DispatchRecord{Record: rec, Replica: ticket.Served()})
}

func (f *Fleet) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.Stats())
}

func (f *Fleet) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.Health())
}

// DecisionLog is the GET /v1/fleet/decisions payload: the bounded
// fault-handling decision log on its own, without the per-replica
// health detail GET /v1/fleet/health wraps around it. An operator
// exports it, feeds it to ExportFaultPlan (heraldplay -faults), and
// re-runs the incident offline.
type DecisionLog struct {
	// Decisions is the retained log, oldest first. The log is bounded
	// (older halves are dropped past the cap), so Seq of the first
	// entry tells a consumer whether decisions were evicted.
	Decisions []FaultDecision `json:"decisions"`
}

func (f *Fleet) handleDecisions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, DecisionLog{Decisions: f.Decisions()})
}

func (f *Fleet) handleDrain(w http.ResponseWriter, r *http.Request) {
	st, err := f.Drain(r.Context())
	if err != nil {
		writeError(w, http.StatusRequestTimeout, "timeout", err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (f *Fleet) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         true,
		"replicas":   f.Size(),
		"generation": f.Generation(),
		"policy":     f.Policy().String(),
		"uptime":     time.Since(f.start).String(), //herald:nondet wall-clock uptime is reporting-only
	})
}

// handleRepartition reports the attached repartitioning controller's
// status: lifecycle state, migration count, and the last decision.
func (f *Fleet) handleRepartition(w http.ResponseWriter, r *http.Request) {
	f.ctrlMu.Lock()
	c := f.controller
	f.ctrlMu.Unlock()
	if c == nil {
		writeError(w, http.StatusNotFound, "not_found",
			"no repartitioning controller attached (start one with fleet.NewController / heraldd -repartition)", 0)
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

// handleReplica delegates /v1/replicas/{i}/{rest} to replica i's own
// engine API by rewriting the path to /v1/{rest} — the whole
// per-engine surface (request lookup, schedule export, per-replica
// stats) stays reachable through the fleet front end. Replicas are
// resolved by id at request time, so the surface follows migrations.
func (f *Fleet) handleReplica(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("replica"))
	var rep *replica
	if err == nil {
		rep = f.replicaByID(id)
	}
	if rep == nil {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf(
			"no live replica %q (the id may belong to a retired generation; the fleet is at generation %d)",
			r.PathValue("replica"), f.Generation()), 0)
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/v1/" + r.PathValue("rest")
	rep.httpHandler().ServeHTTP(w, r2)
}
