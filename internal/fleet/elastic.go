package fleet

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/accel"
	"repro/internal/dnn"
	"repro/internal/dse"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/workload"
)

// ElasticAction is the outcome of one elastic-controller step.
type ElasticAction string

// Elastic controller step outcomes.
const (
	// ElasticNoTraffic: no mix observed yet; nothing to evaluate.
	ElasticNoTraffic ElasticAction = "no-traffic"
	// ElasticHold: no neighbor partition clears the threshold.
	ElasticHold ElasticAction = "hold"
	// ElasticReassigned: every active replica's slices were re-sized
	// in place (cheap intra-HDA move, no generation change).
	ElasticReassigned ElasticAction = "reassigned"
	// ElasticPreempted: SLA risk triggered preemption of low-priority
	// work, but no reassignment was warranted this step.
	ElasticPreempted ElasticAction = "preempted"
	// ElasticMigrated: drift persisted beyond the escalation budget and
	// the optimum is not reachable by re-slicing, so the controller
	// escalated to a full generation migration.
	ElasticMigrated ElasticAction = "migrated"
)

// ElasticOptions tunes the elastic controller. The zero value selects
// the defaults.
type ElasticOptions struct {
	// ReassignThreshold is the minimum fractional objective improvement
	// a neighbor partition (one PE quantum moved between two subs) must
	// offer over the serving partition to trigger a reassignment. 0
	// selects the default 0.02 — deliberately lower than the migration
	// controller's 0.05, because a reassignment is cheap: committed
	// layers finish untouched and no generation drains.
	ReassignThreshold float64

	// PEQuantum is how many PEs one reassignment moves between two
	// sub-accelerators (bandwidth moves proportionally, keeping the
	// Definition 1 sums exact). 0 selects class PEs / 16 (min 1).
	PEQuantum int

	// EscalateAfter is how many consecutive hold steps with persistent
	// unreachable drift (the fleet sweeper's winner beats the serving
	// partition by >= EscalateThreshold but differs in sub count or
	// styles, so no sequence of reassignments reaches it) the
	// controller tolerates before escalating to Fleet.Migrate. 0
	// selects the default 3. Escalation requires the fleet to have a
	// sweeper (Options.Sweeper); without one the controller never
	// migrates.
	EscalateAfter int

	// EscalateThreshold is the minimum fractional improvement the sweep
	// winner must sustain to count as drift. 0 selects the default
	// 0.10 (2x the migration controller's default threshold — a
	// migration out of the elastic loop must be clearly worth a drain).
	EscalateThreshold float64

	// PreemptBelow, when > 0, arms the SLA-risk trigger: a step that
	// observes new SLA violations since the previous step preempts up
	// to PreemptMax requests with priority strictly below PreemptBelow
	// on each replica (the engines must run with serve.Options.Elastic
	// set, or preemption is a no-op).
	PreemptBelow int

	// PreemptMax caps preemptions per replica per step. 0 selects the
	// default 2.
	PreemptMax int

	// Objective selects the comparison metric; the default follows the
	// fleet sweeper's objective when one is configured, else EDP.
	Objective dse.Objective

	// Logf, when set, receives one line per step.
	Logf func(format string, args ...any)
}

func (o ElasticOptions) withDefaults() ElasticOptions {
	if o.ReassignThreshold == 0 {
		o.ReassignThreshold = 0.02
	}
	if o.EscalateAfter <= 0 {
		o.EscalateAfter = 3
	}
	if o.EscalateThreshold == 0 {
		o.EscalateThreshold = 0.10
	}
	if o.PreemptMax <= 0 {
		o.PreemptMax = 2
	}
	return o
}

// ElasticDecision records one elastic-controller step. The value
// fields carry no omitempty: 0 is a legitimate objective reading or
// counter, and a decision consumer must be able to distinguish it from
// an absent field.
type ElasticDecision struct {
	Step   int           `json:"step"`
	Action ElasticAction `json:"action"`
	// Generation is the fleet generation after the step (it changes
	// only on escalation).
	Generation int `json:"generation"`

	// Mix is the probed workload, empty under ElasticNoTraffic.
	Mix string `json:"mix,omitempty"`

	// Serving/Candidate describe the comparison: the serving
	// partition's objective value on the mix vs. the best neighbor
	// partition's (one PE quantum moved between two subs).
	Serving        string  `json:"serving,omitempty"`
	Candidate      string  `json:"candidate,omitempty"`
	Objective      string  `json:"objective,omitempty"`
	ServingValue   float64 `json:"serving_value"`
	CandidateValue float64 `json:"candidate_value"`
	// Improvement is the candidate's fractional gain over the serving
	// partition ((serving-candidate)/serving).
	Improvement float64 `json:"improvement"`

	// Reassigned counts replicas re-sliced this step; Preempted counts
	// requests preempted by the SLA-risk trigger this step.
	Reassigned int `json:"reassigned"`
	Preempted  int `json:"preempted"`

	// DriftStreak is the consecutive count of unreachable-drift holds
	// feeding the escalation budget.
	DriftStreak int `json:"drift_streak"`
}

// String renders the decision as a one-line log entry.
func (d ElasticDecision) String() string {
	switch d.Action {
	case ElasticNoTraffic:
		return fmt.Sprintf("elastic step %d: no traffic observed yet", d.Step)
	case ElasticReassigned:
		return fmt.Sprintf("elastic step %d: REASSIGNED %d replicas to %s: %s %.4g -> %.4g on %s (%+.1f%%; preempted %d)",
			d.Step, d.Reassigned, d.Candidate, d.Objective, d.ServingValue, d.CandidateValue, d.Mix,
			-100*d.Improvement, d.Preempted)
	case ElasticMigrated:
		return fmt.Sprintf("elastic step %d: ESCALATED to migration (gen %d) after drift streak %d on %s",
			d.Step, d.Generation, d.DriftStreak, d.Mix)
	}
	return fmt.Sprintf("elastic step %d: %s: serving %s, best neighbor %s (%s %.4g vs %.4g, %+.1f%% on %s; preempted %d, drift %d)",
		d.Step, d.Action, d.Serving, d.Candidate, d.Objective, d.ServingValue, d.CandidateValue,
		100*d.Improvement, d.Mix, d.Preempted, d.DriftStreak)
}

// ElasticController is the intra-HDA counterpart of the migration
// Controller: each Step probes the observed mix, evaluates neighbor
// partitions (one PE quantum moved between two sub-accelerators) on a
// private scheduler, and executes the cheapest sufficient action —
// preempt low-priority work when SLA risk appears, re-slice every
// active replica in place when a neighbor partition clears the
// threshold, and only escalate to a full Fleet.Migrate when the
// sweeper's winner stays out of reach of re-slicing for EscalateAfter
// consecutive steps. Steps are serialized; replay harnesses call Step
// at deterministic quiesce boundaries, so the same trace with Steps at
// the same points yields the same decision sequence.
type ElasticController struct {
	f    *Fleet
	opts ElasticOptions
	obj  dse.Objective

	// stepMu serializes Step calls and guards the private scheduler (a
	// sched.Scheduler is single-goroutine).
	stepMu sync.Mutex
	s      *sched.Scheduler // guarded by stepMu

	// mu guards the published state below. Writes happen only inside
	// Step (under stepMu); Status readers may arrive concurrently.
	mu             sync.Mutex
	steps          int              // guarded by mu
	reassigns      int              // guarded by mu
	preempts       int              // guarded by mu
	migrations     int              // guarded by mu
	driftStreak    int              // guarded by mu
	lastViolations int64            // guarded by mu
	last           *ElasticDecision // guarded by mu
}

// NewElasticController attaches an elastic controller to a fleet. A
// sweeper is optional: without one the controller reassigns and
// preempts but never escalates to a migration.
func NewElasticController(f *Fleet, opts ElasticOptions) (*ElasticController, error) {
	if f == nil {
		return nil, fmt.Errorf("fleet: elastic controller needs a fleet")
	}
	if opts.ReassignThreshold < 0 || opts.EscalateThreshold < 0 {
		return nil, fmt.Errorf("fleet: elastic thresholds must be >= 0")
	}
	if opts.PreemptBelow > 0 && !f.serveOpts.Elastic {
		return nil, fmt.Errorf("fleet: the SLA-risk preemption trigger needs elastic engines (set Options.Serve.Elastic)")
	}
	opts = opts.withDefaults()
	obj := opts.Objective
	schedOpts := f.serveOpts.Sched
	if f.sweeper != nil {
		if opts.Objective == dse.ObjectiveEDP {
			obj = f.sweeper.Options().Objective
		}
		schedOpts = f.sweeper.Options().Sched
	}
	schedOpts.Priorities = nil
	return &ElasticController{
		f:    f,
		opts: opts,
		obj:  obj,
		s:    sched.MustNew(f.cache, schedOpts),
	}, nil
}

// ElasticStatus is a point-in-time elastic-controller snapshot.
type ElasticStatus struct {
	Steps       int `json:"steps"`
	Reassigns   int `json:"reassigns"`
	Preemptions int `json:"preemptions"`
	Migrations  int `json:"migrations"`
	// DriftStreak is the current escalation streak; no omitempty — 0
	// ("no drift") is the state a dashboard most wants to confirm.
	DriftStreak int              `json:"drift_streak"`
	Last        *ElasticDecision `json:"last,omitempty"`
}

// Status returns the controller's current state snapshot.
func (c *ElasticController) Status() ElasticStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ElasticStatus{
		Steps:       c.steps,
		Reassigns:   c.reassigns,
		Preemptions: c.preempts,
		Migrations:  c.migrations,
		DriftStreak: c.driftStreak,
	}
	if c.last != nil {
		d := *c.last
		st.Last = &d
	}
	return st
}

// Migrations returns how many escalated migrations the controller has
// executed.
func (c *ElasticController) Migrations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.migrations
}

// Step runs one elastic control iteration: SLA-risk preemption first
// (lowest-cost relief), then the neighbor-partition evaluation, then —
// only on a hold with persistent unreachable drift — the escalation
// check. Calling Step at deterministic points of a fixed submission
// trace yields a deterministic decision sequence.
func (c *ElasticController) Step(ctx context.Context) (ElasticDecision, error) {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()

	d := ElasticDecision{Step: c.steps, Objective: c.obj.String()} //herald:nolock single-writer read: steps is written only inside Step, and stepMu serializes Steps
	c.setState(func() { c.steps++ })
	d.Generation = c.f.Generation()

	// SLA-risk trigger: new violations since the last step preempt
	// low-priority placements, freeing committed future capacity for
	// the latency-critical tenants that are already missing targets.
	if c.opts.PreemptBelow > 0 {
		viol := c.totalViolations()
		prev := c.lastViolations //herald:nolock single-writer read under stepMu (see the state-fields comment above)
		c.setState(func() { c.lastViolations = viol })
		if viol > prev {
			d.Preempted = c.f.PreemptBelow(c.opts.PreemptBelow, c.opts.PreemptMax)
			c.setState(func() { c.preempts += d.Preempted })
		}
	}

	mix := c.f.ObservedMix("observed-mix")
	if mix == nil {
		d.Action = ElasticNoTraffic
		if d.Preempted > 0 {
			d.Action = ElasticPreempted
		}
		return c.finish(d), nil
	}
	d.Mix = mixString(mix)

	serving := c.f.ActiveHDAs()
	if len(serving) == 0 {
		return d, fmt.Errorf("fleet: no active replicas to evaluate")
	}
	cur := serving[0]
	d.Serving = cur.String()
	servingValue, err := c.evaluate(cur, mix)
	if err != nil {
		return d, err
	}
	d.ServingValue = servingValue

	bestParts, bestValue, bestHDA, err := c.bestNeighbor(cur, mix)
	if err != nil {
		return d, err
	}
	d.CandidateValue = bestValue
	if bestHDA != nil {
		d.Candidate = bestHDA.String()
	}
	if servingValue > 0 && bestHDA != nil {
		d.Improvement = (servingValue - bestValue) / servingValue
	}

	if bestParts != nil && d.Improvement >= c.opts.ReassignThreshold {
		n, err := c.f.ReassignAll(bestParts)
		if err != nil {
			return d, fmt.Errorf("fleet: reassigning to %s: %w", d.Candidate, err)
		}
		d.Reassigned = n
		d.Action = ElasticReassigned
		c.setState(func() {
			c.reassigns++
			c.driftStreak = 0
		})
		return c.finish(d), nil
	}

	d.Action = ElasticHold
	if d.Preempted > 0 {
		d.Action = ElasticPreempted
	}

	// Escalation: re-slicing has nothing to offer; if the sweeper's
	// winner is structurally out of reach (different sub count or
	// styles) and keeps clearing the escalation threshold, migrate.
	if c.f.sweeper != nil {
		res, err := c.f.Resweep(mix)
		if err != nil {
			return d, err
		}
		wv := c.obj.Value(res.Best)
		drift := servingValue > 0 &&
			(servingValue-wv)/servingValue >= c.opts.EscalateThreshold &&
			!res.Best.HDA.SamePartition(cur) &&
			!reachableBySlicing(cur, res.Best.HDA)
		if !drift {
			c.setState(func() { c.driftStreak = 0 })
			return c.finish(d), nil
		}
		c.setState(func() { c.driftStreak++ })
		d.DriftStreak = c.driftStreak //herald:nolock single-writer read under stepMu (see the state-fields comment above)
		if d.DriftStreak < c.opts.EscalateAfter {
			return c.finish(d), nil
		}
		hdas := make([]*accel.HDA, len(serving))
		for i := range hdas {
			hdas[i] = res.Best.HDA
		}
		migErr := c.f.Migrate(ctx, hdas, mix)
		if migErr != nil && c.f.Generation() == d.Generation {
			return d, fmt.Errorf("fleet: escalated migration to %s failed: %w", res.Best.HDA, migErr)
		}
		c.f.ResetMix()
		c.setState(func() {
			c.migrations++
			c.driftStreak = 0
		})
		d.Action = ElasticMigrated
		d.Generation = c.f.Generation()
		d.DriftStreak = 0
		d = c.finish(d)
		if migErr != nil {
			return d, fmt.Errorf("fleet: escalated to %s, but draining the retired generation was interrupted: %w", res.Best.HDA, migErr)
		}
		return d, nil
	}
	return c.finish(d), nil
}

// Run drives Step on a ticker until ctx is cancelled — the daemon form
// of the control loop (heraldd -elastic). Errors are logged (via
// Options.Logf) and do not stop the loop: a transient probe failure
// must not kill the controller.
func (c *ElasticController) Run(ctx context.Context, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if _, err := c.Step(ctx); err != nil && c.opts.Logf != nil {
				c.opts.Logf("elastic step failed: %v", err)
			}
		}
	}
}

// setState applies a state mutation under the read lock, keeping
// Status race-free while Step runs.
func (c *ElasticController) setState(mutate func()) {
	c.mu.Lock()
	mutate()
	c.mu.Unlock()
}

// finish records the decision as the controller's latest and logs it.
func (c *ElasticController) finish(d ElasticDecision) ElasticDecision {
	c.mu.Lock()
	d.DriftStreak = c.driftStreak
	last := d
	c.last = &last
	c.mu.Unlock()
	if c.opts.Logf != nil {
		c.opts.Logf("%s", d)
	}
	return d
}

// totalViolations sums SLA violations across every live replica and
// the folded history. Called under stepMu.
func (c *ElasticController) totalViolations() int64 {
	st := c.f.Stats()
	var v int64
	for _, t := range st.Tenants {
		v += t.SLAViolations
	}
	return v
}

// evaluate schedules the mix on one partition with the private
// scheduler and returns the objective value. Step only: c.stepMu held.
func (c *ElasticController) evaluate(h *accel.HDA, mix *workload.Workload) (float64, error) {
	sch, err := c.s.Schedule(h, mix)
	if err != nil {
		return 0, fmt.Errorf("fleet: evaluating partition %s: %w", h, err)
	}
	v := c.obj.Value(dse.Point{
		HDA:        h,
		Schedule:   sch,
		LatencySec: sch.LatencySeconds(1.0),
		EnergyMJ:   sch.EnergyMJ(),
		EDP:        sch.EDP(1.0),
	})
	c.s.Recycle(sch)
	return v, nil
}

// bestNeighbor evaluates every partition one PE quantum away from the
// serving one (each ordered (from, to) sub pair, bandwidth moving
// proportionally) and returns the best candidate. The candidate order
// is the deterministic double loop, so ties resolve identically run to
// run. Step only: c.stepMu held.
func (c *ElasticController) bestNeighbor(cur *accel.HDA, mix *workload.Workload) ([]accel.Partition, float64, *accel.HDA, error) {
	q := c.opts.PEQuantum
	if q <= 0 {
		q = cur.Class.PEs / 16
		if q < 1 {
			q = 1
		}
	}
	bwq := cur.Class.BWGBps * float64(q) / float64(cur.Class.PEs)

	var (
		bestParts []accel.Partition
		bestHDA   *accel.HDA
		best      = math.Inf(1)
	)
	for from := range cur.Subs {
		for to := range cur.Subs {
			if from == to || cur.Subs[from].HW.PEs-q < 1 || cur.Subs[from].HW.BWGBps-bwq <= 0 {
				continue
			}
			parts := make([]accel.Partition, len(cur.Subs))
			for i, s := range cur.Subs {
				parts[i] = accel.Partition{Style: s.Style, PEs: s.HW.PEs, BWGBps: s.HW.BWGBps}
			}
			parts[from].PEs -= q
			parts[from].BWGBps -= bwq
			parts[to].PEs += q
			parts[to].BWGBps += bwq
			h, err := accel.New(cur.Name, cur.Class, parts)
			if err != nil {
				return nil, 0, nil, fmt.Errorf("fleet: building neighbor partition: %w", err)
			}
			v, err := c.evaluate(h, mix)
			if err != nil {
				return nil, 0, nil, err
			}
			if v < best {
				best, bestParts, bestHDA = v, parts, h
			}
		}
	}
	if bestHDA == nil {
		return nil, 0, nil, nil // single-sub HDA or quantum too large: no neighbors
	}
	return bestParts, best, bestHDA, nil
}

// reachableBySlicing reports whether target could be reached from cur
// by PE reassignments alone: same class, same sub count, same styles
// in order. Anything else needs a migration.
func reachableBySlicing(cur, target *accel.HDA) bool {
	if cur.Class.Name != target.Class.Name || len(cur.Subs) != len(target.Subs) {
		return false
	}
	for i := range cur.Subs {
		if cur.Subs[i].Style != target.Subs[i].Style {
			return false
		}
	}
	return true
}

// ReassignAll re-slices every active replica to the given partitions
// at its current layer boundary (serve.Engine.Reassign) and refreshes
// the dispatcher's per-replica state that depends on slice sizes (the
// cost-estimate memo). All replicas are validated before any is
// touched, so a sub-count mismatch on a heterogeneous fleet leaves the
// fleet unchanged. Returns the number of replicas reassigned.
func (f *Fleet) ReassignAll(parts []accel.Partition) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.draining {
		return 0, serve.ErrDraining
	}
	for _, r := range f.replicas {
		if len(parts) != len(r.hda.Subs) {
			return 0, fmt.Errorf("fleet: replica %d has %d subs, reassignment has %d partitions (migrate instead)",
				r.id, len(r.hda.Subs), len(parts))
		}
	}
	n := 0
	for _, r := range f.replicas {
		if err := r.engine.Reassign(parts); err != nil {
			return n, fmt.Errorf("fleet: replica %d: %w", r.id, err)
		}
		r.hda = r.engine.HDA()
		// The cost-estimate memo keys on slice sizes; drop it so the
		// horizon ledger re-learns the new slices.
		r.est = make(map[*dnn.Model]int64)
		n++
	}
	return n, nil
}

// PreemptBelow preempts up to maxPerReplica requests with priority
// strictly below the threshold on every active replica (see
// serve.Engine.Preempt) and returns the total preempted. Engines
// without serve.Options.Elastic preempt nothing.
func (f *Fleet) PreemptBelow(priority, maxPerReplica int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, r := range f.replicas {
		n += r.engine.Preempt(priority, maxPerReplica)
	}
	return n
}
