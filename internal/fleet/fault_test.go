package fleet

// Tests of the fault-tolerance layer: deterministic fault injection,
// crash failover with the conservation invariant, the circuit
// breaker, overload shedding and stall detection.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

func faultFleet(t *testing.T, opts Options) *Fleet {
	t.Helper()
	f, err := Replicated(newTestCache(), testHDA(t), 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustPlan(t *testing.T, events ...FaultEvent) *FaultPlan {
	t.Helper()
	p, err := NewFaultPlan(events)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// waitPending polls until the engine holds exactly want queued
// requests — how the tests stage a deterministic pre-crash state on a
// paused replica.
func waitPending(t *testing.T, e *serve.Engine, want int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for e.Stats().Pending != want {
		if time.Now().After(deadline) {
			t.Fatalf("pending %d never reached %d", e.Stats().Pending, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// consSnap is the deterministic slice of the final fleet statistics —
// the counters a replayed fault scenario must reproduce exactly
// (latency percentiles depend on engine batch composition, which is
// wall-time sensitive, so they are excluded).
type consSnap struct {
	Submitted, Completed, Failed, Lost         int64
	Shed, Failovers, Crashes, BreakerTrips     int64
	FailedReplicas                             int
	Fused, FusedCompleted, Segs, SegsCompleted int64
}

func snapOf(st Stats) consSnap {
	return consSnap{
		Submitted: st.Submitted, Completed: st.Completed, Failed: st.Failed, Lost: st.Lost,
		Shed: st.Shed, Failovers: st.Failovers, Crashes: st.Crashes, BreakerTrips: st.BreakerTrips,
		FailedReplicas: st.FailedReplicas,
		Fused:          st.Segments.FusedRequests, FusedCompleted: st.Segments.FusedCompleted,
		Segs: st.Segments.Segments, SegsCompleted: st.Segments.SegmentsCompleted,
	}
}

// crashScenario stages the acceptance scenario: a two-replica fleet
// with a FaultPlan crashing replica 0 mid-flight, one plain request
// and one fused chain segment queued on the dying replica, both
// failed over to the survivor. Returns the decision log and the
// deterministic stats slice for replay comparison.
func crashScenario(t *testing.T) ([]FaultDecision, consSnap) {
	t.Helper()
	const crashCycle = 1_000_000
	cache := newTestCache()
	plans := fleetPlans(t, cache, "mobilenetv2")
	opts := DefaultOptions()
	opts.Policy = RoundRobin // position-based routing: fully deterministic
	opts.Plans = plans
	opts.Faults = mustPlan(t, FaultEvent{Cycle: crashCycle, Replica: 0, Kind: FaultCrash})
	f, err := Replicated(cache, testHDA(t), 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng0 := f.replicas[0].engine
	eng0.Pause() // replica 0 admits but never schedules: its queue is the doomed set

	// Round-robin position 0: the plain doomed request lands on the
	// paused replica 0 and stays queued.
	doomed, err := f.Submit(serve.Request{Tenant: "a", Model: "mobilenetv1", SLACycles: 1 << 50})
	if err != nil {
		t.Fatal(err)
	}
	if doomed.Replica != 0 {
		t.Fatalf("doomed request routed to %d, want paused replica 0", doomed.Replica)
	}

	// Round-robin position 1: the fused chain's segment 0 lands on the
	// live replica 1 and completes; the chain then routes segment 1 to
	// position 0 — the paused replica — where it queues behind the
	// doomed request. The chain is now dying mid-chain.
	fused, err := f.Submit(serve.Request{Tenant: "ar", Model: "mobilenetv2", SLACycles: 1 << 50})
	if err != nil {
		t.Fatal(err)
	}
	if fused.Replica != 1 {
		t.Fatalf("fused segment 0 routed to %d, want replica 1", fused.Replica)
	}
	waitPending(t, eng0, 2) // doomed + the chain's segment 1

	// The trigger arrival advances the fault clock past the crash
	// cycle: replica 0 dies, both queued requests are extracted as
	// lost, and failover re-admits them on replica 1 — the plain one
	// synchronously under the dispatch lock, the chain's segment when
	// the chain wakes.
	trigger, err := f.Submit(serve.Request{
		Tenant: "t", Model: "mobilenetv1", ArrivalCycle: crashCycle, SLACycles: 1 << 50,
	})
	if err != nil {
		t.Fatal(err)
	}

	for name, tk := range map[string]*Ticket{"doomed": doomed, "fused": fused, "trigger": trigger} {
		rec, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rec.Status != serve.StatusDone {
			t.Fatalf("%s: status %q err %q, want done", name, rec.Status, rec.Err)
		}
	}
	// No double-service and no lost work: the failed-over request was
	// served exactly once, by the survivor.
	if got := doomed.Served(); got != 1 {
		t.Fatalf("doomed request served by %d, want survivor 1", got)
	}
	rec, _ := doomed.Wait(context.Background())
	if rec.ArrivalCycle != crashCycle {
		t.Fatalf("re-admission arrival %d, want clamp to crash cycle %d", rec.ArrivalCycle, crashCycle)
	}
	frec, _ := fused.Wait(context.Background())
	if len(frec.Segments) != plans["mobilenetv2"].NumSegments() {
		t.Fatalf("chain finished %d segments, want %d", len(frec.Segments), plans["mobilenetv2"].NumSegments())
	}
	for k, sr := range frec.Segments[1:] {
		if sr.Replica != 1 {
			t.Fatalf("post-crash segment %d served by %d, want survivor 1", k+1, sr.Replica)
		}
	}

	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Conservation: every admission is completed or failed, nothing
	// pending, and the two extracted requests were each re-served
	// exactly once (Lost records the extractions, not a leak).
	if st.Submitted != st.Completed+st.Failed || st.Pending != 0 {
		t.Fatalf("conservation violated: submitted %d != completed %d + failed %d (pending %d)",
			st.Submitted, st.Completed, st.Failed, st.Pending)
	}
	if st.Failed != 0 || st.Lost != 2 || st.Crashes != 1 || st.Failovers != 2 {
		t.Fatalf("fault counters: %+v", snapOf(st))
	}
	if st.Segments.FusedCompleted != 1 || st.Segments.FusedFailed != 0 {
		t.Fatalf("fused conservation: %+v", st.Segments)
	}

	dec := f.Decisions()
	var kinds []string
	for _, d := range dec {
		kinds = append(kinds, d.Kind)
	}
	if want := []string{"crash", "failover", "failover"}; !reflect.DeepEqual(kinds, want) {
		t.Fatalf("decision kinds %v, want %v", kinds, want)
	}
	if dec[0].Replica != 0 || dec[0].Cycle != crashCycle {
		t.Fatalf("crash decision %+v", dec[0])
	}
	return dec, snapOf(st)
}

// TestFaultCrashFailoverConservation is the acceptance scenario: a
// seeded FaultPlan kills a replica mid-flight (one plain request and
// one mid-chain fused segment queued on it), every request is still
// served exactly once, and the whole run — failover decisions and
// final statistics — replays bit-identically a second time.
func TestFaultCrashFailoverConservation(t *testing.T) {
	dec1, st1 := crashScenario(t)
	dec2, st2 := crashScenario(t)
	if !reflect.DeepEqual(dec1, dec2) {
		t.Errorf("decision logs differ across replays:\n  first: %+v\n second: %+v", dec1, dec2)
	}
	if st1 != st2 {
		t.Errorf("final stats differ across replays:\n  first: %+v\n second: %+v", st1, st2)
	}
}

// TestFaultAttemptBudget: with MaxAttempts 1 an orphaned request may
// not be re-admitted — it fails fast with a terminal fleet-side
// record, and the fleet aggregates still conserve (the synthesized
// failure counts in both Submitted and Failed).
func TestFaultAttemptBudget(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy = RoundRobin
	opts.Health = HealthOptions{MaxAttempts: 1}
	opts.Faults = mustPlan(t, FaultEvent{Cycle: 1000, Replica: 0, Kind: FaultCrash})
	f := faultFleet(t, opts)
	eng0 := f.replicas[0].engine
	eng0.Pause()

	doomed, err := f.Submit(serve.Request{Tenant: "dd", Model: "mobilenetv1"})
	if err != nil {
		t.Fatal(err)
	}
	waitPending(t, eng0, 1)
	if _, err := f.Submit(serve.Request{Tenant: "t", Model: "mobilenetv1", ArrivalCycle: 1000}); err != nil {
		t.Fatal(err)
	}

	rec, err := doomed.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != serve.StatusFailed || !strings.Contains(rec.Err, "attempt budget") {
		t.Fatalf("over-budget request: status %q err %q", rec.Status, rec.Err)
	}
	if doomed.Served() != -1 {
		t.Fatalf("failed request reports serving replica %d", doomed.Served())
	}

	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != st.Completed+st.Failed || st.Failed != 1 || st.Failovers != 0 || st.Lost != 1 {
		t.Fatalf("budget-exhausted conservation: %+v", snapOf(st))
	}
	for _, ts := range st.Tenants {
		if ts.Tenant == "dd" && (ts.Submitted != 1 || ts.Failed != 1) {
			t.Fatalf("tenant dd window: %+v", ts)
		}
	}
	var sawFail bool
	for _, d := range f.Decisions() {
		if d.Kind == "failover-fail" {
			sawFail = true
		}
	}
	if !sawFail {
		t.Fatal("no failover-fail decision logged")
	}
}

// TestFaultBreakerLifecycle drives the circuit breaker through its
// full cycle with an injected admission-failure burst: open after the
// failure threshold, half-open probe after the probe window, re-open
// on a failed probe, close on a successful one — all deterministic in
// the dispatch sequence, with the victim taking no traffic while open.
func TestFaultBreakerLifecycle(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy = RoundRobin
	opts.Health = HealthOptions{FailureThreshold: 2, ProbeAfter: 2}
	opts.Faults = mustPlan(t, FaultEvent{Cycle: 0, Replica: 0, Kind: FaultAdmitFail, Count: 3})
	f := faultFleet(t, opts)

	// Round-robin alternation tries replica 0 on every other dispatch:
	// failures 1 and 2 open the breaker, the window elapses, the probe
	// burns the last injected fault and re-opens, the next probe
	// succeeds and closes it.
	wantReplica := []int{1, 1, 1, 1, 1, 1, 0}
	var tickets []*Ticket
	for i, want := range wantReplica {
		tk, err := f.Submit(serve.Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: int64(i + 1)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if tk.Replica != want {
			t.Fatalf("submit %d routed to %d, want %d", i, tk.Replica, want)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		if rec, err := tk.Wait(context.Background()); err != nil || rec.Status != serve.StatusDone {
			t.Fatalf("request %d: %v %+v", i, err, rec)
		}
	}

	var kinds []string
	for _, d := range f.Decisions() {
		kinds = append(kinds, d.Kind)
	}
	want := []string{"admit-fail", "breaker-open", "breaker-probe", "breaker-reopen", "breaker-probe", "breaker-close"}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("breaker decisions %v, want %v", kinds, want)
	}

	rep := f.Health()
	for _, rh := range rep.Replicas {
		if rh.Health != "healthy" {
			t.Errorf("replica %d health %q after close, want healthy", rh.Replica, rh.Health)
		}
	}
	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.BreakerTrips != 1 || st.Completed != int64(len(wantReplica)) {
		t.Fatalf("final: trips %d completed %d", st.BreakerTrips, st.Completed)
	}
}

// TestFaultShedFairness: with admission control on, an arrival whose
// best ETA already blows its SLA budget is shed with a Retry-After —
// but only when its tenant is at or above the fair share of
// outstanding work. A tenant below fair share is spared even when the
// backlog (built by someone else) makes its SLA unmeetable.
func TestFaultShedFairness(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy = CostAware
	opts.Health = HealthOptions{ShedSLAFactor: 1}
	f, err := Replicated(newTestCache(), testHDA(t), 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	f.replicas[0].engine.Pause() // keep the backlog outstanding

	// Tenant "heavy" builds the backlog: three expensive requests with
	// budgets loose enough to admit.
	var tickets []*Ticket
	for i := 0; i < 3; i++ {
		tk, err := f.Submit(serve.Request{Tenant: "heavy", Model: "resnet50", ArrivalCycle: 0, SLACycles: 1 << 50})
		if err != nil {
			t.Fatalf("backlog %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}

	// A tight-SLA arrival from the flooding tenant is shed.
	_, err = f.Submit(serve.Request{Tenant: "heavy", Model: "resnet50", ArrivalCycle: 0, SLACycles: 1})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("flooding tenant not shed: %v", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("shed rejection is %T, want *ShedError", err)
	}
	if shed.Tenant != "heavy" || shed.RetryAfterSeconds < 1 || shed.ETACycles <= shed.BudgetCycles {
		t.Fatalf("shed error fields: %+v", shed)
	}

	// The same hopeless SLA from a tenant with zero outstanding work
	// is spared: it did not build the backlog.
	light, err := f.Submit(serve.Request{Tenant: "light", Model: "mobilenetv1", ArrivalCycle: 0, SLACycles: 1})
	if err != nil {
		t.Fatalf("below-fair-share tenant shed: %v", err)
	}
	tickets = append(tickets, light)

	f.replicas[0].engine.Resume()
	for i, tk := range tickets {
		if rec, err := tk.Wait(context.Background()); err != nil || rec.Status != serve.StatusDone {
			t.Fatalf("request %d: %v %+v", i, err, rec)
		}
	}
	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed != 1 || st.Completed != 4 {
		t.Fatalf("shed %d completed %d, want 1 and 4", st.Shed, st.Completed)
	}
	for _, ts := range st.Tenants {
		switch ts.Tenant {
		case "heavy":
			if ts.Shed != 1 || ts.Completed != 3 {
				t.Errorf("heavy tenant: %+v", ts)
			}
		case "light":
			if ts.Shed != 0 || ts.Completed != 1 {
				t.Errorf("light tenant: %+v", ts)
			}
		}
	}
	var sawShed bool
	for _, d := range f.Decisions() {
		if d.Kind == "shed" {
			sawShed = true
		}
	}
	if !sawShed {
		t.Fatal("no shed decision logged")
	}
}

// TestFaultStallDiversion: an injected stall is a gray failure — the
// replica stays up, but cost-aware routing sees its estimates scaled
// and drains traffic to the healthy replica.
func TestFaultStallDiversion(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy = CostAware
	opts.Faults = mustPlan(t, FaultEvent{Cycle: 0, Replica: 0, Kind: FaultStall, Factor: 50})
	f := faultFleet(t, opts)

	for i := 0; i < 3; i++ {
		tk, err := f.Submit(serve.Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if tk.Replica != 1 {
			t.Fatalf("request %d routed to stalled replica (%d)", i, tk.Replica)
		}
	}
	rep := f.Health()
	if len(rep.Replicas) != 2 || rep.Replicas[0].StallFactor != 50 {
		t.Fatalf("health report stall factor: %+v", rep.Replicas)
	}
	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range st.PerReplica {
		if rs.Replica == 0 && rs.StallFactor != 50 {
			t.Errorf("replica 0 stats stall factor %g, want 50", rs.StallFactor)
		}
	}
}

// TestStallDetectionDegraded: with StallFactor detection on, a
// replica whose work horizon towers over the fleet minimum reports
// "degraded" on the health surface — no injected fault needed, the
// signal comes from the dispatcher's own ledger.
func TestStallDetectionDegraded(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy = CostAware
	opts.Health = HealthOptions{StallFactor: 2}
	f := faultFleet(t, opts)

	// An expensive model on replica 0, a cheap one on replica 1: the
	// horizons diverge far past the 2x detection threshold.
	heavy, err := f.Submit(serve.Request{Tenant: "a", Model: "resnet50", ArrivalCycle: 0})
	if err != nil {
		t.Fatal(err)
	}
	light, err := f.Submit(serve.Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: 0})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Replica != 0 || light.Replica != 1 {
		t.Fatalf("routing: heavy %d light %d, want 0 and 1", heavy.Replica, light.Replica)
	}

	rep := f.Health()
	if rep.Replicas[0].Health != "degraded" {
		t.Errorf("towering-horizon replica health %q, want degraded", rep.Replicas[0].Health)
	}
	if rep.Replicas[1].Health != "healthy" {
		t.Errorf("baseline replica health %q, want healthy", rep.Replicas[1].Health)
	}
	if _, err := f.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestFaultRecovery: a crashed replica is rebuilt by a scheduled
// recover event — same id, fresh engine, prior completions folded
// into the aggregates — and rejoins the dispatch rotation.
func TestFaultRecovery(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy = RoundRobin
	opts.Faults = mustPlan(t,
		FaultEvent{Cycle: 1000, Replica: 0, Kind: FaultCrash},
		FaultEvent{Cycle: 2000, Replica: 0, Kind: FaultRecover},
	)
	f := faultFleet(t, opts)

	// Pre-crash work on both replicas, completed before the crash so
	// the fold has something to preserve.
	for i := 0; i < 2; i++ {
		tk, err := f.Submit(serve.Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: 0})
		if err != nil {
			t.Fatal(err)
		}
		if rec, err := tk.Wait(context.Background()); err != nil || rec.Status != serve.StatusDone {
			t.Fatalf("pre-crash %d: %v %+v", i, err, rec)
		}
	}

	// Crash fires: replica 0 (idle, nothing queued) leaves the set.
	if _, err := f.Submit(serve.Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: 1000}); err != nil {
		t.Fatal(err)
	}
	rep := f.Health()
	if len(rep.Replicas) != 1 || len(rep.Failed) != 1 || rep.Failed[0].Health != "crashed" {
		t.Fatalf("post-crash health: %+v", rep)
	}

	// Recover fires before this submission routes: replica 0 is rebuilt
	// and the round-robin rotation (at position 1 of the now-two-strong
	// set, where the rebuilt engine sits) hands it the request at once.
	tk, err := f.Submit(serve.Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Replica != 0 {
		t.Fatalf("post-recovery rotation skipped the rebuilt replica: %d", tk.Replica)
	}
	if _, err := f.Submit(serve.Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: 2001}); err != nil {
		t.Fatal(err)
	}
	rep = f.Health()
	if len(rep.Replicas) != 2 || len(rep.Failed) != 0 {
		t.Fatalf("post-recovery health: %+v", rep)
	}
	for _, rh := range rep.Replicas {
		if rh.Health != "healthy" {
			t.Errorf("replica %d health %q after recovery", rh.Replica, rh.Health)
		}
	}

	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The crashed engine's pre-crash completion survived the rebuild.
	if st.Submitted != 5 || st.Completed != 5 || st.Crashes != 1 || st.Recoveries != 1 || st.FailedReplicas != 0 {
		t.Fatalf("final stats after recovery: %+v", snapOf(st))
	}
}

// TestFaultNoReplicas: when the last replica crashes, submissions are
// refused with ErrNoReplicas (HTTP 503) instead of hanging, and the
// fleet still drains cleanly.
func TestFaultNoReplicas(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy = RoundRobin
	opts.Faults = mustPlan(t, FaultEvent{Cycle: 100, Replica: 0, Kind: FaultCrash})
	f, err := Replicated(newTestCache(), testHDA(t), 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := f.Submit(serve.Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := tk.Wait(context.Background()); err != nil || rec.Status != serve.StatusDone {
		t.Fatalf("pre-crash request: %v %+v", err, rec)
	}

	// The trigger submission itself finds no survivor to land on.
	if _, err := f.Submit(serve.Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: 100}); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("crash-trigger submit: %v, want ErrNoReplicas", err)
	}
	if _, err := f.Submit(serve.Request{Tenant: "a", Model: "mobilenetv1", ArrivalCycle: 101}); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("post-crash submit: %v, want ErrNoReplicas", err)
	}

	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 || st.Crashes != 1 || st.FailedReplicas != 1 || st.Replicas != 0 {
		t.Fatalf("all-crashed stats: %+v", snapOf(st))
	}
}

// TestParseFaultPlan covers the -faults flag syntax and validation.
func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("2000:1:admit-fail:3, 1000:0:stall:4 ,3000:0:crash,5000:0:recover")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 4 {
		t.Fatalf("%d events, want 4", len(p.Events))
	}
	// Sorted by cycle regardless of spec order.
	want := []FaultEvent{
		{Cycle: 1000, Replica: 0, Kind: FaultStall, Factor: 4},
		{Cycle: 2000, Replica: 1, Kind: FaultAdmitFail, Count: 3},
		{Cycle: 3000, Replica: 0, Kind: FaultCrash},
		{Cycle: 5000, Replica: 0, Kind: FaultRecover},
	}
	if !reflect.DeepEqual(p.Events, want) {
		t.Fatalf("events %+v, want %+v", p.Events, want)
	}

	for _, bad := range []string{
		"",
		"1000:0",
		"1000:0:explode",
		"-5:0:crash",
		"1000:-1:crash",
		"1000:0:stall",      // missing factor
		"1000:0:stall:1",    // factor must exceed 1
		"1000:0:admit-fail", // missing count
		"1000:0:admit-fail:0",
		"x:0:crash",
		"1000:y:crash",
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q accepted, want error", bad)
		}
	}
}

// TestExportFormatFaultPlan: ExportFaultPlan keeps exactly the
// injectable decisions (derived ones — failovers, breaker transitions,
// sheds — are consequences of the schedule, not part of it) and
// FormatFaultPlan round-trips with ParseFaultPlan.
func TestExportFormatFaultPlan(t *testing.T) {
	decs := []FaultDecision{
		{Seq: 0, Cycle: 100, Replica: 0, Kind: "stall", Factor: 2.5},
		{Seq: 1, Cycle: 150, Replica: 1, Kind: "failover"}, // derived: skipped
		{Seq: 2, Cycle: 200, Replica: 1, Kind: "admit-fail", Count: 3},
		{Seq: 3, Cycle: 250, Replica: 0, Kind: "breaker-open"}, // derived: skipped
		{Seq: 4, Cycle: 300, Replica: 0, Kind: "crash"},
		{Seq: 5, Cycle: 400, Replica: 0, Kind: "recover"},
	}
	p, err := ExportFaultPlan(decs)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 4 {
		t.Fatalf("exported %d events, want 4: %+v", len(p.Events), p.Events)
	}
	spec := FormatFaultPlan(p)
	if spec != "100:0:stall:2.5,200:1:admit-fail:3,300:0:crash,400:0:recover" {
		t.Fatalf("formatted plan %q", spec)
	}
	back, err := ParseFaultPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Fatalf("format/parse round trip diverged:\n%+v\n%+v", back, p)
	}

	// A log of only derived decisions exports no plan at all.
	none, err := ExportFaultPlan([]FaultDecision{{Cycle: 5, Kind: "shed"}})
	if err != nil || none != nil {
		t.Fatalf("derived-only log: (%v, %v), want (nil, nil)", none, err)
	}
}
