package fleet

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/serve"
)

// elasticFleet builds a 2-replica fleet on the given start partition
// with elastic engines and an attached elastic controller. No sweeper
// unless added via fopts, so the controller can never escalate.
func elasticFleet(t testing.TB, start *accel.HDA, eopts ElasticOptions, fopts ...func(*Options)) (*Fleet, *ElasticController) {
	t.Helper()
	opts := DefaultOptions()
	opts.Serve.Elastic = true
	for _, fo := range fopts {
		fo(&opts)
	}
	f, err := Replicated(newTestCache(), start, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewElasticController(f, eopts)
	if err != nil {
		t.Fatal(err)
	}
	return f, c
}

// TestElasticReassignsOnSkewedMix: a fleet serving the even 512/512
// split under mobilenet-dominated traffic re-slices in place to the
// mobilenet-optimal 768/256 neighbor (PEQuantum 256 puts it one move
// away) — same generation, zero migrations, and requests submitted
// after the reassignment still complete and conserve.
func TestElasticReassignsOnSkewedMix(t *testing.T) {
	f, c := elasticFleet(t, testHDA(t), ElasticOptions{PEQuantum: 256})

	waitAll(t, submitN(t, f, "mobile", "mobilenetv1", 6))
	d, err := c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ElasticReassigned {
		t.Fatalf("step on skewed mix: %+v", d)
	}
	if d.Reassigned != 2 {
		t.Fatalf("reassigned %d replicas, want 2", d.Reassigned)
	}
	if d.Improvement < c.opts.ReassignThreshold {
		t.Fatalf("reassignment below threshold: %+v", d)
	}
	if f.Generation() != 0 || c.Migrations() != 0 {
		t.Fatalf("reassignment changed generation (%d) or migrated (%d)", f.Generation(), c.Migrations())
	}
	for _, h := range f.ActiveHDAs() {
		if h.SamePartition(testHDA(t)) {
			t.Fatalf("active partition unchanged: %v", h)
		}
		if got := h.Subs[0].HW.PEs + h.Subs[1].HW.PEs; got != accel.Edge.PEs {
			t.Fatalf("Definition 1 broken after reassignment: %d PEs", got)
		}
	}

	waitAll(t, submitN(t, f, "mobile", "mobilenetv1", 4))
	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 10 || st.Completed != 10 || st.Failed != 0 || st.Pending != 0 {
		t.Fatalf("conservation across reassignment: %+v", st)
	}
	if st.PEReassigns != 2 {
		t.Fatalf("fleet stats count %d reassigns, want 2", st.PEReassigns)
	}
	if cs := c.Status(); cs.Reassigns != 1 || cs.Migrations != 0 {
		t.Fatalf("controller status: %+v", cs)
	}
}

// TestElasticStepDeterministic: the same submission trace with Step
// calls at the same points yields the identical decision sequence and
// final partition, run to run.
func TestElasticStepDeterministic(t *testing.T) {
	type outcome struct {
		decisions []ElasticDecision
		final     string
	}
	run := func() outcome {
		f, c := elasticFleet(t, testHDA(t), ElasticOptions{PEQuantum: 256})
		var o outcome
		step := func() {
			d, err := c.Step(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			o.decisions = append(o.decisions, d)
		}
		step() // no traffic
		waitAll(t, submitN(t, f, "mobile", "mobilenetv1", 5))
		step() // reassign toward the mobilenet-optimal slice
		waitAll(t, submitN(t, f, "mobile", "mobilenetv1", 3))
		step() // hold (already optimal in the neighbor set) or reassign again
		if _, err := f.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		o.final = f.ActiveHDAs()[0].String()
		return o
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("elastic steps diverged:\nrun1 %+v\nrun2 %+v", a, b)
	}
	if a.decisions[0].Action != ElasticNoTraffic {
		t.Fatalf("first step saw traffic: %+v", a.decisions[0])
	}
	if a.decisions[1].Action != ElasticReassigned {
		t.Fatalf("second step did not reassign: %+v", a.decisions[1])
	}
}

// TestElasticNoSweeperNeverMigrates: without a fleet sweeper the
// controller has no escalation path — steps hold or reassign but the
// generation never moves, no matter how long the mix disagrees with
// the serving partition.
func TestElasticNoSweeperNeverMigrates(t *testing.T) {
	f, c := elasticFleet(t, testHDA(t), ElasticOptions{EscalateAfter: 1})
	waitAll(t, submitN(t, f, "arvr", "unet", 6))
	for i := 0; i < 4; i++ {
		d, err := c.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if d.Action == ElasticMigrated {
			t.Fatalf("step %d escalated without a sweeper: %+v", i, d)
		}
	}
	if f.Generation() != 0 || c.Migrations() != 0 {
		t.Fatalf("sweeperless controller migrated: gen %d, migrations %d", f.Generation(), c.Migrations())
	}
	if _, err := f.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestElasticControllerValidation: the SLA-risk preemption trigger
// needs elastic engines; thresholds must be non-negative.
func TestElasticControllerValidation(t *testing.T) {
	f, err := Replicated(newTestCache(), testHDA(t), 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Drain(context.Background())
	if _, err := NewElasticController(f, ElasticOptions{PreemptBelow: 1}); err == nil ||
		!strings.Contains(err.Error(), "Elastic") {
		t.Errorf("preemption trigger on non-elastic engines accepted: %v", err)
	}
	if _, err := NewElasticController(f, ElasticOptions{ReassignThreshold: -1}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := NewElasticController(nil, ElasticOptions{}); err == nil {
		t.Error("nil fleet accepted")
	}
	if _, err := NewElasticController(f, ElasticOptions{}); err != nil {
		t.Errorf("reassign-only controller on non-elastic engines rejected: %v", err)
	}
}

// TestFleetReassignAllValidation: a partition-count mismatch is
// rejected before any replica is touched, so the fleet keeps serving
// its current slices.
func TestFleetReassignAllValidation(t *testing.T) {
	f, _ := elasticFleet(t, testHDA(t), ElasticOptions{})
	before := f.ActiveHDAs()[0].String()
	if _, err := f.ReassignAll([]accel.Partition{
		{Style: dataflow.NVDLA, PEs: accel.Edge.PEs, BWGBps: accel.Edge.BWGBps},
	}); err == nil {
		t.Fatal("sub-count mismatch accepted")
	}
	if got := f.ActiveHDAs()[0].String(); got != before {
		t.Fatalf("failed reassignment mutated the fleet: %s -> %s", before, got)
	}

	n, err := f.ReassignAll([]accel.Partition{
		{Style: dataflow.NVDLA, PEs: 768, BWGBps: 12},
		{Style: dataflow.ShiDiannao, PEs: 256, BWGBps: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("reassigned %d replicas, want 2", n)
	}
	waitAll(t, submitN(t, f, "mobile", "mobilenetv1", 3))
	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.PEReassigns != 2 || st.Completed != 3 {
		t.Fatalf("post-reassign stats: %+v", st)
	}
}

// TestFleetPreemptBelow: fleet-wide preemption revokes only work below
// the priority threshold, the revoked requests resume and complete,
// and conservation holds across the preempt/resume cycle.
func TestFleetPreemptBelow(t *testing.T) {
	f, _ := elasticFleet(t, testHDA(t), ElasticOptions{})

	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := f.Submit(serve.Request{Tenant: "batch", Model: "mobilenetv1", Priority: 0, ArrivalCycle: 0})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	tk, err := f.Submit(serve.Request{Tenant: "urgent", Model: "mobilenetv1", Priority: 5, ArrivalCycle: 0})
	if err != nil {
		t.Fatal(err)
	}
	tickets = append(tickets, tk)
	waitAll(t, tickets)

	n := f.PreemptBelow(3, 8)
	if n != 4 {
		t.Fatalf("preempted %d requests, want the 4 low-priority ones", n)
	}
	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Preemptions != 4 || st.Resumes != 4 {
		t.Fatalf("preemption counters: %+v", st)
	}
	if st.Submitted != 5 || st.Completed != 5 || st.Failed != 0 || st.Pending != 0 {
		t.Fatalf("conservation across preempt/resume: %+v", st)
	}
}
