package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/dse"
	"repro/internal/maestro"
	"repro/internal/serve"
)

// The controller tests run in the Edge 4/2 partition space over
// NVDLA + Shi-diannao, which has exactly two distinct EDP winners:
// mobilenet-dominated mixes pick NVDLA:768/Shi-diannao:256 and
// unet-dominated mixes pick NVDLA:512/Shi-diannao:512 (the workloads'
// EDP gaps are ~7% and ~11%, both past the 5% default threshold).
func partition31(t testing.TB) *accel.HDA {
	t.Helper()
	h, err := accel.New("p31", accel.Edge, []accel.Partition{
		{Style: dataflow.NVDLA, PEs: 768, BWGBps: 8},
		{Style: dataflow.ShiDiannao, PEs: 256, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func partition22(t testing.TB) *accel.HDA {
	t.Helper()
	return testHDA(t) // NVDLA:512 + Shi-diannao:512
}

// controllerFleet builds a 2-replica fleet on start with a sweeper
// over the two-winner space and an attached controller.
func controllerFleet(t testing.TB, cache *maestro.Cache, start *accel.HDA, copts ControllerOptions, fopts ...func(*Options)) (*Fleet, *Controller) {
	t.Helper()
	sp := dse.Space{
		Class:   accel.Edge,
		Styles:  []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao},
		PEUnits: 4, BWUnits: 2,
	}
	dopts := dse.DefaultOptions()
	dopts.BestOnly = true
	dopts.Prune = true
	sw, err := dse.NewSweeper(cache, sp, dopts)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Sweeper = sw
	for _, fo := range fopts {
		fo(&opts)
	}
	f, err := Replicated(cache, start, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(f, copts)
	if err != nil {
		t.Fatal(err)
	}
	return f, c
}

// submitN submits n requests of one model (explicit cycle-0 arrivals,
// deterministic dispatch) and returns the tickets without waiting.
func submitN(t testing.TB, f *Fleet, tenant, model string, n int) []*Ticket {
	t.Helper()
	out := make([]*Ticket, 0, n)
	for i := 0; i < n; i++ {
		tk, err := f.Submit(serve.Request{Tenant: tenant, Model: model, ArrivalCycle: 0})
		if err != nil {
			t.Fatalf("submit %s #%d: %v", model, i, err)
		}
		out = append(out, tk)
	}
	return out
}

func waitAll(t testing.TB, tickets []*Ticket) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, tk := range tickets {
		rec, err := tk.Wait(ctx)
		if err != nil {
			t.Fatalf("ticket %d (replica %d): %v", i, tk.Replica, err)
		}
		if rec.Status != serve.StatusDone {
			t.Fatalf("ticket %d: status %q err %q", i, rec.Status, rec.Err)
		}
	}
}

// TestControllerMigratesOnMixShift is the tentpole end-to-end path:
// a fleet serving the mobilenet-optimal partition sees its traffic
// shift to unet, and one controller step spawns the unet-optimal
// generation, drains the old one mid-flight, and hands over — with
// no request lost or double-served, and every count conserved in the
// fleet statistics.
func TestControllerMigratesOnMixShift(t *testing.T) {
	cache := newTestCache()
	var hookFires atomic.Int64
	f, c := controllerFleet(t, cache, partition31(t), ControllerOptions{Confirm: 1, Cooldown: 2},
		func(o *Options) {
			o.Serve.OnRequestDone = func(serve.Record) { hookFires.Add(1) }
		})

	// Phase 1: mobilenet traffic on the mobilenet-optimal partition —
	// the controller must hold.
	phase1 := submitN(t, f, "mobile", "mobilenetv1", 6)
	waitAll(t, phase1)
	d, err := c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionHold {
		t.Fatalf("step on optimal partition: %+v", d)
	}
	if f.Generation() != 0 {
		t.Fatalf("generation moved on hold: %d", f.Generation())
	}

	// Phase 2: the mix shifts to unet. Submit WITHOUT waiting so the
	// migration drains engines with queued work in flight.
	phase2 := submitN(t, f, "arvr", "unet", 6)
	d, err = c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionMigrated {
		t.Fatalf("step after mix shift: %+v", d)
	}
	if d.Improvement < 0.05 {
		t.Errorf("migration below threshold: %+v", d)
	}
	if f.Generation() != 1 || c.Migrations() != 1 {
		t.Fatalf("generation %d migrations %d after migration", f.Generation(), c.Migrations())
	}
	for _, h := range f.ActiveHDAs() {
		if h.String() != d.WinnerHDA {
			t.Fatalf("active partition %v, want the sweep winner %s", h, d.WinnerHDA)
		}
		if h.SamePartition(partition31(t)) {
			t.Fatalf("migration kept the old partition %v", h)
		}
	}

	// The in-flight phase-2 requests completed on the retired
	// generation (the drain inside Migrate finished them).
	waitAll(t, phase2)
	for _, tk := range phase2 {
		if tk.Replica > 1 {
			t.Errorf("pre-migration request served by new-generation replica %d", tk.Replica)
		}
	}

	// Phase 3: post-migration traffic lands on the new generation.
	phase3 := submitN(t, f, "arvr", "unet", 4)
	waitAll(t, phase3)
	for _, tk := range phase3 {
		if tk.Replica < 2 {
			t.Errorf("post-migration request served by retired replica %d", tk.Replica)
		}
	}

	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(phase1) + len(phase2) + len(phase3))
	if st.Submitted != total || st.Completed != total || st.Failed != 0 || st.Pending != 0 {
		t.Fatalf("conservation across migration: submitted %d completed %d failed %d pending %d, want %d",
			st.Submitted, st.Completed, st.Failed, st.Pending, total)
	}
	if got := hookFires.Load(); got != total {
		t.Fatalf("completion hook fired %d times for %d requests (lost or double-served)", got, total)
	}
	if st.Generation != 1 || st.RetiredReplicas != 2 || len(st.PerReplica) != 2 {
		t.Fatalf("generation accounting: %+v", st)
	}
	for _, rs := range st.PerReplica {
		if rs.Generation != 1 || rs.Retiring {
			t.Errorf("live replica %+v, want generation-1 active", rs)
		}
	}
	// Tenant aggregates must span the retired generation too.
	var mobile, arvr int64
	for _, ts := range st.Tenants {
		switch ts.Tenant {
		case "mobile":
			mobile = ts.Completed
		case "arvr":
			arvr = ts.Completed
		}
	}
	if mobile != 6 || arvr != 10 {
		t.Fatalf("tenant completions across generations: mobile %d arvr %d", mobile, arvr)
	}
}

// TestControllerDeterministicReplay: the same submission trace with
// controller steps at the same points produces the identical decision
// sequence and the identical final partition, run to run.
func TestControllerDeterministicReplay(t *testing.T) {
	type outcome struct {
		actions  []Action
		winners  []string
		assigned [][]int
		final    string
		gen      int
	}
	run := func() outcome {
		cache := newTestCache()
		f, c := controllerFleet(t, cache, partition31(t), ControllerOptions{Confirm: 2, Cooldown: 2})
		var o outcome
		step := func() {
			d, err := c.Step(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			o.actions = append(o.actions, d.Action)
			o.winners = append(o.winners, d.WinnerHDA)
		}
		record := func(tks []*Ticket) {
			ids := make([]int, len(tks))
			for i, tk := range tks {
				ids[i] = tk.Replica
			}
			o.assigned = append(o.assigned, ids)
		}
		record(submitN(t, f, "mobile", "mobilenetv1", 4))
		step()
		record(submitN(t, f, "arvr", "unet", 6))
		step() // confirming (streak 1 of 2)
		step() // migrated
		record(submitN(t, f, "arvr", "unet", 3))
		if _, err := f.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		o.final = f.ActiveHDAs()[0].String()
		o.gen = f.Generation()
		return o
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\nrun1 %+v\nrun2 %+v", a, b)
	}
	if a.gen != 1 || a.actions[len(a.actions)-1] != ActionMigrated {
		t.Fatalf("trace did not end in a migration: %+v", a)
	}
	if a.final != a.winners[len(a.winners)-1] {
		t.Fatalf("final partition %q is not the last sweep winner %q", a.final, a.winners[len(a.winners)-1])
	}
}

// TestControllerHysteresisNoFlapOnOscillation: an oscillating mix
// never agrees on one winner for Confirm consecutive probes, so the
// controller never migrates.
func TestControllerHysteresisNoFlapOnOscillation(t *testing.T) {
	cache := newTestCache()
	f, c := controllerFleet(t, cache, partition31(t), ControllerOptions{Confirm: 2, Cooldown: 2})
	for cycle := 0; cycle < 3; cycle++ {
		// Unet phase: candidate appears (streak 1)...
		waitAll(t, submitN(t, f, "arvr", "unet", 3))
		d, err := c.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if d.Action != ActionConfirming {
			t.Fatalf("cycle %d unet phase: %+v", cycle, d)
		}
		f.ResetMix()
		// ...mobilenet phase: serving is optimal again, streak resets.
		waitAll(t, submitN(t, f, "mobile", "mobilenetv1", 3))
		d, err = c.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if d.Action != ActionHold {
			t.Fatalf("cycle %d mobilenet phase: %+v", cycle, d)
		}
		f.ResetMix()
	}
	if c.Migrations() != 0 || f.Generation() != 0 {
		t.Fatalf("oscillating mix caused %d migrations (gen %d)", c.Migrations(), f.Generation())
	}
	if _, err := f.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestControllerCooldownBlocksFlapBack: immediately after a migration
// the mix swings back, but the cooldown window refuses to act on the
// counter-candidate; only after the cooldown expires (and the
// candidate persists) may the fleet move again.
func TestControllerCooldownBlocksFlapBack(t *testing.T) {
	cache := newTestCache()
	f, c := controllerFleet(t, cache, partition31(t), ControllerOptions{Confirm: 1, Cooldown: 2})

	// Shift to unet: migrate to the unet optimum (generation 1).
	waitAll(t, submitN(t, f, "arvr", "unet", 4))
	d, err := c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionMigrated || f.Generation() != 1 {
		t.Fatalf("initial migration: %+v (gen %d)", d, f.Generation())
	}

	// The mix swings straight back to mobilenet — a flap candidate
	// (it beats the serving unet partition by >5%), but the cooldown
	// must hold the fleet where it is.
	for i := 0; i < 2; i++ {
		waitAll(t, submitN(t, f, "mobile", "mobilenetv1", 3))
		d, err = c.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if d.Action != ActionCooldown {
			t.Fatalf("cooldown step %d: %+v", i, d)
		}
		if f.Generation() != 1 {
			t.Fatalf("cooldown step %d migrated (gen %d)", i, f.Generation())
		}
	}

	// Cooldown expired and the candidate persists: now it may act —
	// the flap rate is bounded at one migration per Cooldown+Confirm
	// probes, never a step-to-step oscillation.
	d, err = c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionMigrated || f.Generation() != 2 {
		t.Fatalf("post-cooldown step: %+v (gen %d)", d, f.Generation())
	}
	if c.Migrations() != 2 {
		t.Fatalf("migrations %d, want 2", c.Migrations())
	}
	if _, err := f.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestControllerValidationAndStatus covers constructor errors, the
// status snapshot, and the no-traffic step.
func TestControllerValidationAndStatus(t *testing.T) {
	bare := testFleet(t, newTestCache(), 1, CostAware)
	if _, err := NewController(bare, ControllerOptions{}); err == nil || !strings.Contains(err.Error(), "sweeper") {
		t.Errorf("sweeper-less controller: %v", err)
	}
	if _, err := bare.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := NewController(nil, ControllerOptions{}); err == nil {
		t.Error("nil fleet accepted")
	}

	cache := newTestCache()
	f, c := controllerFleet(t, cache, partition22(t), ControllerOptions{Threshold: 0.03})
	if _, err := NewController(f, ControllerOptions{Threshold: -1}); err == nil {
		t.Error("negative threshold accepted")
	}

	st := c.Status()
	if st.State != "stable" || st.Steps != 0 || st.Threshold != 0.03 || st.Confirm != 2 || st.Cooldown != 3 {
		t.Fatalf("fresh status: %+v", st)
	}
	d, err := c.Step(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionNoTraffic {
		t.Fatalf("step without traffic: %+v", d)
	}
	st = c.Status()
	if st.Steps != 1 || st.Last == nil || st.Last.Action != ActionNoTraffic {
		t.Fatalf("status after step: %+v", st)
	}
	if _, err := f.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateDirect covers the Fleet.Migrate primitive without the
// controller: validation, the draining guard, and replica-count
// changes across a migration.
func TestMigrateDirect(t *testing.T) {
	cache := newTestCache()
	f := testFleet(t, cache, 2, CostAware)
	if err := f.Migrate(context.Background(), nil, nil); err == nil {
		t.Error("empty migration accepted")
	}

	// Grow from 2 to 3 replicas on a new partition mid-service.
	waitAll(t, submitN(t, f, "a", "mobilenetv1", 4))
	p31 := partition31(t)
	if err := f.Migrate(context.Background(), []*accel.HDA{p31, p31, p31}, nil); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 3 || f.Generation() != 1 {
		t.Fatalf("size %d gen %d after migration", f.Size(), f.Generation())
	}
	waitAll(t, submitN(t, f, "a", "mobilenetv1", 3))
	st, err := f.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 7 || st.RetiredReplicas != 2 {
		t.Fatalf("post-migration stats: %+v", st)
	}

	// A draining fleet refuses migrations.
	if err := f.Migrate(context.Background(), []*accel.HDA{p31}, nil); err != serve.ErrDraining {
		t.Errorf("migrate after drain: %v, want ErrDraining", err)
	}
}

// TestRepartitionHTTPStatus: the controller status endpoint reports
// 404 without a controller and the live state machine with one; the
// replica delegation surface follows a migration.
func TestRepartitionHTTPStatus(t *testing.T) {
	f := testFleet(t, newTestCache(), 1, CostAware)
	srv := httptest.NewServer(f.Handler())
	t.Cleanup(srv.Close)
	if code := doJSON(t, "GET", srv.URL+"/v1/fleet/repartition", "", nil); code != http.StatusNotFound {
		t.Errorf("status without controller: %d, want 404", code)
	}
	if _, err := f.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	cache := newTestCache()
	f2, c := controllerFleet(t, cache, partition31(t), ControllerOptions{Confirm: 1, Cooldown: 1})
	srv2 := httptest.NewServer(f2.Handler())
	t.Cleanup(srv2.Close)

	var st ControllerStatus
	if code := doJSON(t, "GET", srv2.URL+"/v1/fleet/repartition", "", &st); code != http.StatusOK || st.State != "stable" {
		t.Fatalf("controller status: %d %+v", code, st)
	}

	waitAll(t, submitN(t, f2, "arvr", "unet", 4))
	if d, err := c.Step(context.Background()); err != nil || d.Action != ActionMigrated {
		t.Fatalf("migration step: %+v %v", d, err)
	}
	if code := doJSON(t, "GET", srv2.URL+"/v1/fleet/repartition", "", &st); code != http.StatusOK || st.Migrations != 1 || st.State != "cooldown" {
		t.Fatalf("post-migration status: %d %+v", code, st)
	}
	// New-generation replicas (ids 2+) are reachable; retired ids 404.
	if code := doJSON(t, "GET", srv2.URL+"/v1/replicas/2/healthz", "", nil); code != http.StatusOK {
		t.Errorf("new-generation delegation: %d", code)
	}
	if code := doJSON(t, "GET", srv2.URL+"/v1/replicas/0/healthz", "", nil); code != http.StatusNotFound {
		t.Errorf("retired replica delegation: %d, want 404", code)
	}
	if _, err := f2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDecisionStatusJSONRoundTrip: zero-valued comparison and
// hysteresis fields must survive marshal/unmarshal — serving_value,
// winner_value, streak and cooldown_left carry no omitempty, so a
// zero reading is emitted as an explicit 0, not dropped, and a client
// can tell "comparison read 0" apart from a missing field.
func TestDecisionStatusJSONRoundTrip(t *testing.T) {
	d := Decision{Step: 3, Action: ActionHold, Generation: 1, Mix: "unet:1"}
	db, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var draw map[string]any
	if err := json.Unmarshal(db, &draw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"serving_value", "winner_value", "streak", "cooldown_left"} {
		if _, ok := draw[key]; !ok {
			t.Errorf("decision JSON drops zero-valued %q: %s", key, db)
		}
	}
	var dback Decision
	if err := json.Unmarshal(db, &dback); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dback, d) {
		t.Errorf("decision round trip: %+v != %+v", dback, d)
	}

	st := ControllerStatus{State: "stable", Steps: 5, Threshold: 0.05, Confirm: 2, Cooldown: 3}
	sb, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var sraw map[string]any
	if err := json.Unmarshal(sb, &sraw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"streak", "cooldown_left"} {
		if _, ok := sraw[key]; !ok {
			t.Errorf("status JSON drops zero-valued %q: %s", key, sb)
		}
	}
	var sback ControllerStatus
	if err := json.Unmarshal(sb, &sback); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sback, st) {
		t.Errorf("status round trip: %+v != %+v", sback, st)
	}
}
