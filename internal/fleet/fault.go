package fleet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/accel"
	"repro/internal/serve"
)

// This file is the fleet's fault-tolerance layer: deterministic fault
// injection (FaultPlan), per-replica health tracking (circuit breaker
// with half-open probing, stall detection over the work-horizon
// ledger), crash failover with the conservation invariant (no request
// lost or double-served), and SLA-driven overload shedding. Everything
// here is clocked by submission arrival cycles under the dispatch
// lock — wall time never enters — so a fixed request trace plus a
// fixed FaultPlan replays to identical failover decisions.

// Sentinel errors of the fault-tolerance layer.
var (
	// ErrNoReplicas rejects a dispatch when no active replica can take
	// it (all crashed or breaker-open). HTTP maps it to 503.
	ErrNoReplicas = errors.New("fleet: no replicas available")
	// ErrShed is the sentinel every ShedError unwraps to. HTTP maps it
	// to 429 with a Retry-After header.
	ErrShed = errors.New("fleet: request shed")
	// ErrReplicaFault marks an injected admission failure (FaultAdmitFail)
	// — visible only in breaker decision logs, never returned to
	// submitters (the dispatcher retries another replica).
	ErrReplicaFault = errors.New("fleet: injected replica admission fault")
)

// ShedError rejects an arrival the admission controller shed: the best
// achievable completion estimate already blew the request's SLA budget
// and the tenant was at or above its fair share of outstanding work.
type ShedError struct {
	// Tenant is the shed request's tenant.
	Tenant string
	// ETACycles is the best completion-cycle estimate across replicas.
	ETACycles int64
	// BudgetCycles is the admission bound it exceeded
	// (ShedSLAFactor × the request's SLACycles).
	BudgetCycles int64
	// RetryAfterSeconds is the suggested client backoff: the excess
	// lateness converted to wall seconds at the serving clock.
	RetryAfterSeconds int
}

// Error renders the shed rejection.
func (e *ShedError) Error() string {
	return fmt.Sprintf("fleet: request shed: tenant %q best ETA %d cycles exceeds the %d-cycle admission budget (retry after %ds)",
		e.Tenant, e.ETACycles, e.BudgetCycles, e.RetryAfterSeconds)
}

// Unwrap makes errors.Is(err, ErrShed) hold for every ShedError.
func (e *ShedError) Unwrap() error { return ErrShed }

// FaultKind enumerates the injectable replica fault events.
type FaultKind int

const (
	// FaultCrash abruptly kills a replica: its engine stops, queued
	// requests are extracted and failed over to survivors.
	FaultCrash FaultKind = iota
	// FaultStall slows a replica by a cycle factor: the dispatcher's
	// cost estimate for it scales by Factor, so cost-aware routing
	// drains traffic away from it (a gray failure — the committed
	// schedule itself is untouched, keeping replays bit-identical).
	FaultStall
	// FaultAdmitFail makes the replica's next Count admission attempts
	// fail transiently — the burst that exercises the circuit breaker.
	FaultAdmitFail
	// FaultRecover heals a replica: a crashed one is rebuilt as a
	// fresh engine on the same HDA (same id), a stalled or
	// breaker-open one has its health state reset.
	FaultRecover
)

// String names the kind as ParseFaultPlan spells it.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultStall:
		return "stall"
	case FaultAdmitFail:
		return "admit-fail"
	case FaultRecover:
		return "recover"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultEvent is one cycle-scheduled fault against one replica.
type FaultEvent struct {
	// Cycle is when the event fires on the fault clock — the maximum
	// submission arrival cycle the dispatcher has seen. An event is
	// applied (in plan order) the moment a submission at or past its
	// cycle arrives, before that submission is routed.
	Cycle int64 `json:"cycle"`
	// Replica is the target replica id (stable across migrations).
	Replica int `json:"replica"`
	// Kind selects the fault.
	Kind FaultKind `json:"kind"`
	// Factor is the stall slowdown multiplier (FaultStall, > 1).
	Factor float64 `json:"factor,omitempty"` //herald:jsonzero only stall events carry a factor; 0 is never a valid factor
	// Count is the injected admission-failure burst length
	// (FaultAdmitFail, >= 1).
	Count int `json:"count,omitempty"` //herald:jsonzero only admit-fail events carry a count; 0 is never a valid count
}

// FaultPlan is a deterministic schedule of fault events, replayable
// alongside a fixed arrival trace: the fault clock advances only with
// submission arrival cycles, so the same trace plus the same plan
// yields the same crashes at the same points in the dispatch sequence.
type FaultPlan struct {
	// Events fire in ascending cycle order (ties keep plan order).
	Events []FaultEvent
}

// NewFaultPlan validates the events and returns a plan with them
// stably sorted by cycle.
func NewFaultPlan(events []FaultEvent) (*FaultPlan, error) {
	sorted := append([]FaultEvent(nil), events...)
	for i, ev := range sorted {
		if ev.Cycle < 0 {
			return nil, fmt.Errorf("fleet: fault event %d: cycle must be >= 0 (got %d)", i, ev.Cycle)
		}
		if ev.Replica < 0 {
			return nil, fmt.Errorf("fleet: fault event %d: replica must be >= 0 (got %d)", i, ev.Replica)
		}
		switch ev.Kind {
		case FaultCrash, FaultRecover:
		case FaultStall:
			if ev.Factor <= 1 {
				return nil, fmt.Errorf("fleet: fault event %d: stall factor must be > 1 (got %g)", i, ev.Factor)
			}
		case FaultAdmitFail:
			if ev.Count < 1 {
				return nil, fmt.Errorf("fleet: fault event %d: admit-fail count must be >= 1 (got %d)", i, ev.Count)
			}
		default:
			return nil, fmt.Errorf("fleet: fault event %d: unknown kind %d", i, int(ev.Kind))
		}
	}
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Cycle < sorted[j].Cycle })
	return &FaultPlan{Events: sorted}, nil
}

// ParseFaultPlan parses the heraldd -faults flag syntax: a
// comma-separated list of "cycle:replica:kind[:arg]" events, where
// kind is crash, stall (arg = slowdown factor > 1), admit-fail
// (arg = burst length >= 1) or recover. Example:
//
//	"1000:0:stall:4,2000:1:admit-fail:3,3000:0:crash,5000:0:recover"
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	var events []FaultEvent
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		fields := strings.Split(item, ":")
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("fleet: fault %q: want cycle:replica:kind[:arg]", item)
		}
		cycle, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: fault %q: bad cycle: %v", item, err)
		}
		rep, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("fleet: fault %q: bad replica: %v", item, err)
		}
		ev := FaultEvent{Cycle: cycle, Replica: rep}
		switch fields[2] {
		case "crash":
			ev.Kind = FaultCrash
		case "stall":
			ev.Kind = FaultStall
			if len(fields) != 4 {
				return nil, fmt.Errorf("fleet: fault %q: stall needs a factor arg", item)
			}
			if ev.Factor, err = strconv.ParseFloat(fields[3], 64); err != nil {
				return nil, fmt.Errorf("fleet: fault %q: bad stall factor: %v", item, err)
			}
		case "admit-fail":
			ev.Kind = FaultAdmitFail
			if len(fields) != 4 {
				return nil, fmt.Errorf("fleet: fault %q: admit-fail needs a count arg", item)
			}
			if ev.Count, err = strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("fleet: fault %q: bad admit-fail count: %v", item, err)
			}
		case "recover":
			ev.Kind = FaultRecover
		default:
			return nil, fmt.Errorf("fleet: fault %q: unknown kind %q (want crash, stall, admit-fail, recover)", item, fields[2])
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("fleet: empty fault plan %q", spec)
	}
	return NewFaultPlan(events)
}

// ExportFaultPlan reconstructs a runnable FaultPlan from a
// fault-handling decision log: injected-fault applications (crash,
// stall, admit-fail, recover) become schedule events again, so a live
// incident's Decisions() — or the payload of GET /v1/fleet/decisions —
// can be re-run offline against a candidate configuration
// (heraldplay -faults). Derived decisions (failovers, breaker
// transitions, sheds) are consequences of the schedule, not part of
// it, and are skipped. Returns (nil, nil) when the log holds no
// injectable events.
func ExportFaultPlan(decs []FaultDecision) (*FaultPlan, error) {
	var events []FaultEvent
	for _, d := range decs {
		ev := FaultEvent{Cycle: d.Cycle, Replica: d.Replica}
		switch d.Kind {
		case "crash":
			ev.Kind = FaultCrash
		case "stall":
			ev.Kind = FaultStall
			ev.Factor = d.Factor
		case "admit-fail":
			ev.Kind = FaultAdmitFail
			ev.Count = d.Count
		case "recover":
			ev.Kind = FaultRecover
		default:
			continue
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		return nil, nil
	}
	return NewFaultPlan(events)
}

// FormatFaultPlan renders a plan in ParseFaultPlan's flag syntax
// ("cycle:replica:kind[:arg],..."), so an exported incident can be
// handed straight to a -faults flag. FormatFaultPlan and
// ParseFaultPlan round-trip.
func FormatFaultPlan(p *FaultPlan) string {
	if p == nil || len(p.Events) == 0 {
		return ""
	}
	items := make([]string, len(p.Events))
	for i, ev := range p.Events {
		switch ev.Kind {
		case FaultStall:
			items[i] = fmt.Sprintf("%d:%d:stall:%g", ev.Cycle, ev.Replica, ev.Factor)
		case FaultAdmitFail:
			items[i] = fmt.Sprintf("%d:%d:admit-fail:%d", ev.Cycle, ev.Replica, ev.Count)
		default:
			items[i] = fmt.Sprintf("%d:%d:%s", ev.Cycle, ev.Replica, ev.Kind)
		}
	}
	return strings.Join(items, ",")
}

// HealthOptions tunes failure detection, failover budgets and overload
// shedding. The zero value is safe: detection thresholds default to
// sane values and the opt-in features (stall detection, shedding) stay
// off, so a fleet without faults routes exactly as before.
type HealthOptions struct {
	// FailureThreshold is the consecutive replica-attributable
	// admission failures (queue-full, draining, injected faults —
	// never client errors) that open a replica's circuit breaker
	// (default 3).
	FailureThreshold int
	// ProbeAfter is how many fleet dispatches after opening before an
	// open breaker goes half-open and admits one probe request
	// (default 8).
	ProbeAfter int
	// StallFactor flags a replica degraded when its dispatch horizon
	// exceeds StallFactor × the smallest positive horizon in the
	// active set — stall detection over the work ledger the cost-aware
	// policy already keeps. 0 disables detection (default).
	StallFactor float64
	// MaxAttempts is the per-request admission budget, counting the
	// initial dispatch and every crash failover: a request that has
	// been admitted MaxAttempts times and is orphaned again fails fast
	// instead of cycling through a dying fleet (default 3).
	MaxAttempts int
	// ShedSLAFactor turns on admission control (cost-aware fleets,
	// SLA-carrying requests): an arrival whose best ETA lateness
	// exceeds ShedSLAFactor × its SLACycles is shed with a 429 +
	// Retry-After — unless its tenant is below the fair share of
	// outstanding work, so one flooding tenant cannot get the others
	// shed. 0 disables shedding (default).
	ShedSLAFactor float64
}

// withDefaults fills the detection defaults, leaving opt-in features
// (StallFactor, ShedSLAFactor) at their explicit values.
func (h HealthOptions) withDefaults() HealthOptions {
	if h.FailureThreshold <= 0 {
		h.FailureThreshold = 3
	}
	if h.ProbeAfter <= 0 {
		h.ProbeAfter = 8
	}
	if h.MaxAttempts <= 0 {
		h.MaxAttempts = 3
	}
	return h
}

// healthState is a replica's dispatcher-side health.
type healthState int

const (
	healthHealthy healthState = iota
	// healthOpen: the circuit breaker tripped; no dispatches until the
	// half-open probe window.
	healthOpen
	// healthHalfOpen: the breaker admits one probe request; success
	// closes it, failure re-opens it.
	healthHalfOpen
	// healthCrashed: the replica's engine crashed (FaultCrash); it
	// takes no dispatches until a FaultRecover rebuilds it.
	healthCrashed
)

// String names the state as the stats surface spells it.
func (h healthState) String() string {
	switch h {
	case healthHealthy:
		return "healthy"
	case healthOpen:
		return "breaker-open"
	case healthHalfOpen:
		return "breaker-half-open"
	case healthCrashed:
		return "crashed"
	}
	return fmt.Sprintf("healthState(%d)", int(h))
}

// FaultDecision is one entry of the fleet's fault-handling decision
// log: fault applications, breaker transitions, failovers and sheds,
// in the order the dispatcher took them. For a fixed submission trace
// and FaultPlan the log replays identically.
type FaultDecision struct {
	// Seq orders decisions (1-based, monotonic).
	Seq int `json:"seq"`
	// Cycle is the fault-clock cycle the decision was taken at.
	Cycle int64 `json:"cycle"`
	// Kind is the decision type: crash, stall, admit-fail, recover,
	// failover, failover-fail, shed, breaker-open, breaker-reopen,
	// breaker-probe, breaker-close.
	Kind string `json:"kind"`
	// Replica is the replica acted on (-1 when not replica-specific).
	Replica int `json:"replica"`
	// Detail is the human-readable rationale.
	Detail string `json:"detail,omitempty"`
	// Factor carries a stall decision's injected slowdown factor, so
	// ExportFaultPlan can turn the log back into a runnable plan.
	Factor float64 `json:"factor,omitempty"` //herald:jsonzero only stall decisions carry a factor; 0 is never a valid factor
	// Count carries an admit-fail decision's burst length (see Factor).
	Count int `json:"count,omitempty"` //herald:jsonzero only admit-fail decisions carry a count; 0 is never a valid count
}

// maxDecisions bounds the retained decision log; older halves are
// dropped once exceeded.
const maxDecisions = 4096

// noteDecisionLocked appends one decision log entry and returns a
// pointer to it so callers can attach structured parameters (Factor,
// Count); the pointer must not outlive f.mu. f.mu held.
func (f *Fleet) noteDecisionLocked(cycle int64, kind string, replica int, detail string) *FaultDecision {
	f.decSeq++
	if len(f.decisions) >= maxDecisions {
		keep := f.decisions[len(f.decisions)-maxDecisions/2:]
		f.decisions = append(f.decisions[:0], keep...)
	}
	f.decisions = append(f.decisions, FaultDecision{
		Seq: f.decSeq, Cycle: cycle, Kind: kind, Replica: replica, Detail: detail,
	})
	return &f.decisions[len(f.decisions)-1]
}

// Decisions returns a copy of the fault-handling decision log.
func (f *Fleet) Decisions() []FaultDecision {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FaultDecision(nil), f.decisions...)
}

// advanceFaultsLocked advances the fault clock to cycle and applies
// every scheduled event that has come due, in plan order. The clock is
// monotonic and driven only by submission arrival cycles under the
// dispatch lock — wall time never enters — so a fixed trace replays
// the same faults at the same points in the dispatch sequence. f.mu
// held.
func (f *Fleet) advanceFaultsLocked(cycle int64) {
	if cycle > f.faultCycle {
		f.faultCycle = cycle
	}
	for f.faultNext < len(f.faults) && f.faults[f.faultNext].Cycle <= f.faultCycle {
		ev := f.faults[f.faultNext]
		f.faultNext++
		f.applyFaultLocked(ev)
	}
}

// activeByID resolves an active replica by id. f.mu held.
func (f *Fleet) activeByID(id int) *replica {
	for _, r := range f.replicas {
		if r.id == id {
			return r
		}
	}
	return nil
}

// applyFaultLocked applies one due fault event. f.mu held.
func (f *Fleet) applyFaultLocked(ev FaultEvent) {
	switch ev.Kind {
	case FaultCrash:
		f.applyCrashLocked(ev)
	case FaultStall:
		r := f.activeByID(ev.Replica)
		if r == nil {
			f.noteDecisionLocked(ev.Cycle, "stall", ev.Replica, "replica not active; ignored").Factor = ev.Factor
			return
		}
		r.stall = ev.Factor
		f.noteDecisionLocked(ev.Cycle, "stall", r.id, fmt.Sprintf("cost estimates scaled by %g", ev.Factor)).Factor = ev.Factor
	case FaultAdmitFail:
		r := f.activeByID(ev.Replica)
		if r == nil {
			f.noteDecisionLocked(ev.Cycle, "admit-fail", ev.Replica, "replica not active; ignored").Count = ev.Count
			return
		}
		r.admitFails += ev.Count
		f.noteDecisionLocked(ev.Cycle, "admit-fail", r.id, fmt.Sprintf("next %d admissions will fail", ev.Count)).Count = ev.Count
	case FaultRecover:
		f.applyRecoverLocked(ev)
	}
}

// applyCrashLocked kills an active replica: it is removed from the
// dispatch set, its engine crashes (extracting every queued request as
// StatusLost and firing their resolution hooks synchronously), and the
// orphaned requests fail over to survivors. f.mu held.
func (f *Fleet) applyCrashLocked(ev FaultEvent) {
	idx := -1
	for i, r := range f.replicas {
		if r.id == ev.Replica {
			idx = i
			break
		}
	}
	if idx < 0 {
		f.noteDecisionLocked(ev.Cycle, "crash", ev.Replica, "replica not active; ignored")
		return
	}
	r := f.replicas[idx]
	f.replicas = append(f.replicas[:idx], f.replicas[idx+1:]...)
	f.failedReplicas = append(f.failedReplicas, r)
	r.health = healthCrashed
	f.crashes++
	// Crash fires every lost request's resolve hook before returning,
	// so lostQ is complete for this event when failover runs. Safe
	// under f.mu: resolution takes only outMu, and the engine never
	// takes f.mu.
	lost := r.engine.Crash()
	f.noteDecisionLocked(ev.Cycle, "crash", r.id, fmt.Sprintf("%d queued requests extracted", lost))
	f.failoverLocked(ev.Cycle)
}

// failoverLocked re-admits every request the last crash orphaned
// (their resolve callbacks queued them on lostQ) onto survivors, in
// the crashed engine's deterministic extraction order. A request over
// its attempt budget, or with no survivor left to take it, fails fast
// with a terminal fleet-side record. f.mu held.
func (f *Fleet) failoverLocked(cycle int64) {
	f.outMu.Lock()
	q := f.lostQ
	f.lostQ = nil
	f.outMu.Unlock()
	for _, d := range q {
		// A re-admission cannot arrive before the crash that caused it.
		if d.req.ArrivalCycle >= 0 && d.req.ArrivalCycle < cycle {
			d.req.ArrivalCycle = cycle
		}
		if d.attempts >= f.health.MaxAttempts {
			f.failTicketLocked(d, cycle, fmt.Sprintf("attempt budget exhausted (%d admissions)", d.attempts))
			continue
		}
		if err := f.dispatchLocked(d); err != nil {
			f.failTicketLocked(d, cycle, err.Error())
			continue
		}
		f.failovers++
		f.noteDecisionLocked(cycle, "failover", d.replica,
			fmt.Sprintf("request %d (tenant %q) re-admitted, attempt %d", d.t.ID, d.req.Tenant, d.attempts))
	}
}

// failTicketLocked terminates a failed-over request that no replica
// could take: its ticket resolves with a fleet-synthesized failed
// record. The request is no longer in any engine's accounting (the
// crash rolled it back), so fleet aggregates count it via lostFailed —
// added to both Submitted and Failed, keeping conservation exact. f.mu
// held.
func (f *Fleet) failTicketLocked(d *dispatch, cycle int64, reason string) {
	f.lostFailed++
	f.lostFailedT[d.req.Tenant]++
	f.outMu.Lock()
	if f.tenantOut[d.req.Tenant]--; f.tenantOut[d.req.Tenant] <= 0 {
		delete(f.tenantOut, d.req.Tenant)
	}
	f.outMu.Unlock()
	rec := serve.Record{
		ID:           d.t.ID,
		Tenant:       d.req.Tenant,
		Model:        d.req.Model,
		Priority:     d.req.Priority,
		Status:       serve.StatusFailed,
		ArrivalCycle: d.req.ArrivalCycle,
		SLACycles:    d.req.SLACycles,
		Err:          "failover: " + reason,
	}
	d.t.rec = &rec
	d.t.served = -1
	close(d.t.done)
	f.noteDecisionLocked(cycle, "failover-fail", -1,
		fmt.Sprintf("request %d (tenant %q): %s", d.t.ID, d.req.Tenant, reason))
}

// applyRecoverLocked heals a replica: a crashed one is rebuilt as a
// fresh engine on the same HDA under the same id (the old engine's
// final statistics fold into the fleet history first, so its served
// requests never drop out of the aggregates); a stalled, fault-laden
// or breaker-open replica just has its health state reset. f.mu held.
func (f *Fleet) applyRecoverLocked(ev FaultEvent) {
	for i, r := range f.failedReplicas {
		if r.id != ev.Replica {
			continue
		}
		rs, err := f.buildReplicas([]*accel.HDA{r.hda})
		if err != nil {
			f.noteDecisionLocked(ev.Cycle, "recover", ev.Replica, "engine rebuild failed: "+err.Error())
			return
		}
		f.failedReplicas = append(f.failedReplicas[:i], f.failedReplicas[i+1:]...)
		f.foldStatsLocked(r.engine.Stats(), r.engine.TenantWindows())
		nr := rs[0]
		nr.id = r.id
		nr.gen = f.generation
		f.replicas = append(f.replicas, nr)
		f.recoveries++
		f.noteDecisionLocked(ev.Cycle, "recover", r.id, "crashed replica rebuilt on "+r.hda.Name)
		return
	}
	r := f.activeByID(ev.Replica)
	if r == nil {
		f.noteDecisionLocked(ev.Cycle, "recover", ev.Replica, "replica not found; ignored")
		return
	}
	r.stall = 1
	r.admitFails = 0
	r.consecFails = 0
	r.health = healthHealthy
	f.recoveries++
	f.noteDecisionLocked(ev.Cycle, "recover", r.id, "health state reset")
}

// noteFailureLocked records one replica-attributable admission failure
// on the breaker: consecutive failures past the threshold open it; a
// failed half-open probe re-opens it. Client-attributable rejections
// (unknown model, infeasible layers) never reach here. f.mu held.
func (f *Fleet) noteFailureLocked(r *replica, cycle int64, reason string) {
	r.consecFails++
	switch r.health {
	case healthHalfOpen:
		r.health = healthOpen
		r.openedSeq = f.dispatchSeq
		f.noteDecisionLocked(cycle, "breaker-reopen", r.id, "probe failed: "+reason)
	case healthOpen, healthCrashed:
	default:
		if r.consecFails >= f.health.FailureThreshold {
			r.health = healthOpen
			r.openedSeq = f.dispatchSeq
			f.breakerTrips++
			f.noteDecisionLocked(cycle, "breaker-open", r.id,
				fmt.Sprintf("%d consecutive failures, last: %s", r.consecFails, reason))
		}
	}
}

// noteSuccessLocked records a successful admission: the failure streak
// resets and a half-open breaker closes. f.mu held.
func (f *Fleet) noteSuccessLocked(r *replica, cycle int64) {
	if r.health == healthHalfOpen {
		f.noteDecisionLocked(cycle, "breaker-close", r.id, "probe succeeded")
	}
	r.consecFails = 0
	if r.health == healthOpen || r.health == healthHalfOpen {
		r.health = healthHealthy
	}
}

// eligibleLocked filters the active set for dispatch: breaker-open
// replicas are skipped until their probe window elapses (they then go
// half-open), and the first half-open replica is returned as the
// designated probe target. Order follows f.replicas, so a fully
// healthy fleet picks exactly as it did before this layer existed.
// f.mu held.
func (f *Fleet) eligibleLocked(tried map[int]bool) (elig []*replica, probe *replica) {
	for _, r := range f.replicas {
		if tried != nil && tried[r.id] {
			continue
		}
		if r.health == healthOpen {
			if f.dispatchSeq-r.openedSeq < int64(f.health.ProbeAfter) {
				continue
			}
			r.health = healthHalfOpen
			f.noteDecisionLocked(f.faultCycle, "breaker-probe", r.id,
				fmt.Sprintf("half-open after %d dispatches", f.dispatchSeq-r.openedSeq))
		}
		if r.health == healthHalfOpen && probe == nil {
			probe = r
		}
		elig = append(elig, r)
	}
	return elig, probe
}

// stallCycles scales a cost estimate by a replica's injected stall
// factor. A nominal replica (factor 1) passes the estimate through
// bit-exactly, preserving pre-fault routing decisions.
func stallCycles(est int64, stall float64) int64 {
	if stall <= 1 {
		return est
	}
	return int64(float64(est) * stall)
}

// shedEnabled reports whether the admission controller applies to this
// request: shedding is opt-in (ShedSLAFactor), needs the cost-aware
// ETA machinery, and only governs SLA-carrying requests.
func (f *Fleet) shedEnabled(req serve.Request) bool {
	return f.policy == CostAware && f.health.ShedSLAFactor > 0 && req.SLACycles > 0
}

// shedLocked decides whether to shed one arrival given the best ETA
// any replica offers it: if the lateness (ETA minus arrival) exceeds
// ShedSLAFactor × SLACycles, the SLA is already unmeetable at
// admission time — serving the request would only push every later one
// further out. Fairness: a tenant strictly below the average
// outstanding load is spared (its traffic is not what built the
// backlog), so shedding lands on the tenants flooding the fleet. f.mu
// held.
func (f *Fleet) shedLocked(req serve.Request, eta int64) error {
	if !f.shedEnabled(req) {
		return nil
	}
	arrival := max(req.ArrivalCycle, 0)
	lateness := eta - arrival
	budget := int64(float64(req.SLACycles) * f.health.ShedSLAFactor)
	if lateness <= budget {
		return nil
	}
	f.outMu.Lock()
	out := f.tenantOut[req.Tenant]
	var total int64
	//herald:nondet exact integer sum; order cannot change the result
	for _, v := range f.tenantOut {
		total += v
	}
	n := int64(len(f.tenantOut))
	f.outMu.Unlock()
	if n > 0 && out*n < total {
		return nil // below fair share: spare this tenant
	}
	clock := f.serveOpts.ClockGHz
	if clock <= 0 {
		clock = 1
	}
	retry := int(math.Ceil(float64(lateness-budget) / (clock * 1e9)))
	if retry < 1 {
		retry = 1
	}
	f.shed++
	f.shedT[req.Tenant]++
	f.noteDecisionLocked(arrival, "shed", -1,
		fmt.Sprintf("tenant %q: lateness %d exceeds budget %d (%.3g x SLA %d), outstanding %d of %d",
			req.Tenant, lateness, budget, f.health.ShedSLAFactor, req.SLACycles, out, total))
	return &ShedError{Tenant: req.Tenant, ETACycles: eta, BudgetCycles: budget, RetryAfterSeconds: retry}
}

// retryableAdmit reports whether an engine admission error is
// replica-attributable (worth trying another replica and noting on the
// breaker) as opposed to a client error that would fail everywhere.
func retryableAdmit(err error) bool {
	return errors.Is(err, serve.ErrQueueFull) || errors.Is(err, serve.ErrDraining)
}

// ReplicaHealth is one replica's health slice of the fleet's fault
// surface.
type ReplicaHealth struct {
	// Replica is the stable replica id; HDA names its partition.
	Replica int    `json:"replica"`
	HDA     string `json:"hda"`
	// Health is the dispatcher-side state: healthy, degraded,
	// breaker-open, breaker-half-open or crashed.
	Health string `json:"health"`
	// StallFactor is the injected slowdown multiplier (omitted at 1).
	StallFactor float64 `json:"stall_factor,omitempty"` //herald:jsonzero a valid stall factor is > 1; unset means not stalled
	// ConsecutiveFailures is the current breaker failure streak.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// PendingAdmitFaults is the remaining injected admission-failure
	// burst.
	PendingAdmitFaults int `json:"pending_admit_faults"`
	// HorizonCycles is the dispatcher's completion-time ledger for the
	// replica — what stall detection reads.
	HorizonCycles int64 `json:"horizon_cycles"`
}

// HealthReport is the GET /v1/fleet/health payload: per-replica health
// (active and crashed), the fault-handling counters, and the decision
// log.
type HealthReport struct {
	// Replicas covers the active dispatch set; Failed the crashed
	// replicas awaiting recovery.
	Replicas []ReplicaHealth `json:"replicas"`
	Failed   []ReplicaHealth `json:"failed,omitempty"`
	// Counters, mirroring Stats.
	Shed         int64 `json:"shed"`
	Failovers    int64 `json:"failovers"`
	Crashes      int64 `json:"crashes"`
	Recoveries   int64 `json:"recoveries"`
	BreakerTrips int64 `json:"breaker_trips"`
	// Decisions is the fault-handling decision log (bounded).
	Decisions []FaultDecision `json:"decisions"`
}

// healthString renders a replica's health, folding in stall detection:
// an otherwise-healthy replica whose horizon exceeds StallFactor × the
// smallest positive active horizon reports "degraded". f.mu held.
func (f *Fleet) healthStringLocked(r *replica, minHorizon int64) string {
	if r.health == healthHealthy && f.health.StallFactor > 0 && minHorizon > 0 &&
		float64(r.horizon) > f.health.StallFactor*float64(minHorizon) {
		return "degraded"
	}
	return r.health.String()
}

// minHorizonLocked returns the smallest positive dispatch horizon in
// the active set (0 when none) — stall detection's baseline. f.mu
// held.
func (f *Fleet) minHorizonLocked() int64 {
	var m int64
	for _, r := range f.replicas {
		if r.horizon > 0 && (m == 0 || r.horizon < m) {
			m = r.horizon
		}
	}
	return m
}

// PauseReplica freezes one active replica's engine scheduling while
// still admitting work to its queue — maintenance mode, and the chaos
// harness's instrument for staging a deterministic pre-crash queue. A
// subsequent FaultCrash extracts exactly the requests admitted since
// the pause.
func (f *Fleet) PauseReplica(id int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.activeByID(id)
	if r == nil {
		return fmt.Errorf("fleet: replica %d not active", id)
	}
	r.engine.Pause()
	return nil
}

// ResumeReplica releases a PauseReplica freeze.
func (f *Fleet) ResumeReplica(id int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.activeByID(id)
	if r == nil {
		return fmt.Errorf("fleet: replica %d not active", id)
	}
	r.engine.Resume()
	return nil
}

// PauseAll freezes every active replica engine's scheduling while
// still admitting work (see PauseReplica). With Options.StartPaused
// it is the replay harness's window-boundary instrument: pause,
// submit a window of the trace, ResumeAll, wait — the queues each
// scheduling round sees are then identical run to run, making batch
// composition (and with it latency percentiles) bit-reproducible.
func (f *Fleet) PauseAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.replicas {
		r.engine.Pause()
	}
}

// ResumeAll lifts PauseAll (and Options.StartPaused), waking every
// active replica engine.
func (f *Fleet) ResumeAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.replicas {
		r.engine.Resume()
	}
}

// Health snapshots the fleet's fault surface: per-replica health,
// fault counters and the decision log.
func (f *Fleet) Health() HealthReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	rep := HealthReport{
		Shed:         f.shed,
		Failovers:    f.failovers,
		Crashes:      f.crashes,
		Recoveries:   f.recoveries,
		BreakerTrips: f.breakerTrips,
		Decisions:    append([]FaultDecision(nil), f.decisions...),
	}
	minH := f.minHorizonLocked()
	for _, r := range f.replicas {
		rh := ReplicaHealth{
			Replica:             r.id,
			HDA:                 r.hda.Name,
			Health:              f.healthStringLocked(r, minH),
			ConsecutiveFailures: r.consecFails,
			PendingAdmitFaults:  r.admitFails,
			HorizonCycles:       r.horizon,
		}
		if r.stall > 1 {
			rh.StallFactor = r.stall
		}
		rep.Replicas = append(rep.Replicas, rh)
	}
	for _, r := range f.failedReplicas {
		rep.Failed = append(rep.Failed, ReplicaHealth{
			Replica: r.id, HDA: r.hda.Name, Health: r.health.String(), HorizonCycles: r.horizon,
		})
	}
	return rep
}
