package fleet

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/accel"
	"repro/internal/dse"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Action is the outcome of one controller step.
type Action string

// Controller step outcomes.
const (
	// ActionNoTraffic: nothing observed since the last mix reset, so
	// there is no mix to probe.
	ActionNoTraffic Action = "no-traffic"
	// ActionHold: the serving partition is already the sweep winner,
	// or the winner's improvement is below the threshold.
	ActionHold Action = "hold"
	// ActionConfirming: the winner beats the threshold but has not yet
	// persisted for Confirm consecutive probes (hysteresis).
	ActionConfirming Action = "confirming"
	// ActionCooldown: a winner beats the threshold but the controller
	// is inside the post-migration cooldown and will not act.
	ActionCooldown Action = "cooldown"
	// ActionMigrated: the fleet live-migrated to the winning partition.
	ActionMigrated Action = "migrated"
)

// ControllerOptions tunes the repartitioning state machine. The zero
// value selects the defaults.
type ControllerOptions struct {
	// Threshold is the minimum fractional objective improvement the
	// sweep winner must offer over the serving partition to be a
	// migration candidate: 0.05 means "at least 5% better" (under the
	// sweeper's objective — EDP, latency or energy). 0 selects the
	// default 0.05; to migrate on any improvement at all, set a tiny
	// positive value (e.g. 1e-9).
	Threshold float64

	// Confirm is how many consecutive probes must agree on the same
	// winning partition (each beating the threshold) before the
	// controller migrates. Values above 1 are the hysteresis that
	// keeps a noisy mix from triggering a migration off one probe.
	// 0 selects the default 2.
	Confirm int

	// Cooldown is how many probes after a migration are observation
	// only: candidates are reported (ActionCooldown) but never acted
	// on, and they accumulate no confirmation streak. Together with
	// Confirm this bounds the worst-case flap rate to one migration
	// per Cooldown+Confirm probes. 0 selects the default 3; negative
	// disables the cooldown entirely.
	Cooldown int

	// Replicas is the replica count after a migration; 0 keeps the
	// current active replica count.
	Replicas int

	// Logf, when set, receives one line per step (Run also uses it).
	Logf func(format string, args ...any)
}

func (o ControllerOptions) withDefaults() ControllerOptions {
	if o.Threshold == 0 {
		o.Threshold = 0.05
	}
	if o.Confirm <= 0 {
		o.Confirm = 2
	}
	switch {
	case o.Cooldown == 0:
		o.Cooldown = 3
	case o.Cooldown < 0:
		o.Cooldown = 0
	}
	return o
}

// Decision records one controller step: what the probe saw and what
// the state machine did about it.
type Decision struct {
	Step   int    `json:"step"`
	Action Action `json:"action"`
	// Generation is the fleet generation after the step.
	Generation int `json:"generation"`

	// Mix is the probed workload (model×batches), empty under
	// ActionNoTraffic.
	Mix string `json:"mix,omitempty"`

	// Serving/Winner describe the comparison: the best active
	// partition's objective value on the mix vs. the sweep winner's.
	// ServingValue and WinnerValue must not carry omitempty: an
	// objective value of exactly 0 is a legitimate reading, and a
	// client watching decisions cannot distinguish a dropped field
	// from "no comparison ran" without it.
	ServingHDA   string  `json:"serving_hda,omitempty"`
	WinnerHDA    string  `json:"winner_hda,omitempty"`
	Objective    string  `json:"objective,omitempty"`
	ServingValue float64 `json:"serving_value"`
	WinnerValue  float64 `json:"winner_value"`
	// Improvement is the winner's fractional gain over the serving
	// partition ((serving-winner)/serving); negative means the
	// serving partition is better.
	Improvement float64 `json:"improvement"`

	// Streak / CooldownLeft expose the hysteresis state after the
	// step. No omitempty: streak 0 ("no candidate") and cooldown 0
	// ("free to act") are meaningful states a dashboard must see.
	Streak       int `json:"streak"`
	CooldownLeft int `json:"cooldown_left"`

	// Explored/Pruned are the probe sweep's coverage counters.
	Explored int `json:"explored"`
	Pruned   int `json:"pruned"`
}

// String renders the decision as a one-line log entry.
func (d Decision) String() string {
	switch d.Action {
	case ActionNoTraffic:
		return fmt.Sprintf("repartition step %d: no traffic observed yet", d.Step)
	case ActionMigrated:
		return fmt.Sprintf("repartition step %d: MIGRATED to %s (gen %d): %s %.4g -> %.4g on %s (%+.1f%%; cooldown %d)",
			d.Step, d.WinnerHDA, d.Generation, d.Objective, d.ServingValue, d.WinnerValue, d.Mix,
			-100*d.Improvement, d.CooldownLeft)
	}
	return fmt.Sprintf("repartition step %d: %s (gen %d): serving %s, winner %s (%s %.4g vs %.4g, %+.1f%% on %s; streak %d, cooldown %d)",
		d.Step, d.Action, d.Generation, d.ServingHDA, d.WinnerHDA, d.Objective,
		d.ServingValue, d.WinnerValue, 100*d.Improvement, d.Mix, d.Streak, d.CooldownLeft)
}

// ControllerStatus is a point-in-time controller snapshot (the
// GET /v1/fleet/repartition payload).
type ControllerStatus struct {
	// State is the lifecycle phase: "stable", "confirming" (a
	// candidate is accumulating its streak) or "cooldown".
	State      string  `json:"state"`
	Steps      int     `json:"steps"`
	Migrations int     `json:"migrations"`
	Threshold  float64 `json:"threshold"`
	Confirm    int     `json:"confirm"`
	Cooldown   int     `json:"cooldown"`

	// No omitempty: zero streak/cooldown are the steady state, and a
	// status consumer must be able to read them as such.
	Streak       int `json:"streak"`
	CooldownLeft int `json:"cooldown_left"`

	// Last is the most recent decision (nil before the first step).
	Last *Decision `json:"last,omitempty"`
}

// Controller is the dynamic-repartitioning state machine: the piece
// that acts on the Resweep probe. Each Step runs
//
//	probe -> compare -> (hysteresis/cooldown) -> migrate
//
// re-sweeping the partition search on the fleet's observed tenant
// mix, evaluating the serving partition on that same mix with the
// same scheduler configuration (apples to apples), and executing
// Fleet.Migrate when the winner's improvement clears the threshold
// for Confirm consecutive probes outside a cooldown. After a
// migration the observed mix resets, so subsequent decisions reflect
// post-migration traffic only.
//
// A Controller is safe for concurrent use, but steps are serialized;
// Run drives Step on a ticker for daemon deployments, while tests and
// replay tools call Step directly at deterministic points — the same
// submission trace with Steps at the same points always reaches the
// same final partition.
type Controller struct {
	f    *Fleet
	opts ControllerOptions
	obj  dse.Objective

	// stepMu serializes Step calls (and guards the scheduler below —
	// a sched.Scheduler is single-goroutine). It is held across a
	// migration's drain, which can take a while; the state fields are
	// therefore guarded separately so Status stays responsive during
	// exactly the window an operator wants to watch.
	stepMu sync.Mutex
	s      *sched.Scheduler // guarded by stepMu

	// mu guards the published state below. Writes happen only inside
	// Step (under stepMu); Status/Migrations read concurrently.
	mu           sync.Mutex
	steps        int       // guarded by mu
	migrations   int       // guarded by mu
	cooldownLeft int       // guarded by mu
	pendingKey   string    // partition string of the candidate being confirmed; guarded by mu
	streak       int       // guarded by mu
	last         *Decision // guarded by mu
}

// NewController attaches a repartitioning controller to a fleet. The
// fleet must have been built with Options.Sweeper — the controller
// probes through it and inherits its search objective and scheduler
// configuration.
func NewController(f *Fleet, opts ControllerOptions) (*Controller, error) {
	if f == nil {
		return nil, fmt.Errorf("fleet: controller needs a fleet")
	}
	if f.sweeper == nil {
		return nil, fmt.Errorf("fleet: controller needs a fleet with a sweeper (set Options.Sweeper)")
	}
	if opts.Threshold < 0 {
		return nil, fmt.Errorf("fleet: controller threshold must be >= 0 (got %g)", opts.Threshold)
	}
	opts = opts.withDefaults()
	c := &Controller{
		f:    f,
		opts: opts,
		obj:  f.sweeper.Options().Objective,
		s:    sched.MustNew(f.cache, f.sweeper.Options().Sched),
	}
	f.ctrlMu.Lock()
	f.controller = c
	f.ctrlMu.Unlock()
	return c, nil
}

// Status returns the controller's current state snapshot.
func (c *Controller) Status() ControllerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ControllerStatus{
		State:        "stable",
		Steps:        c.steps,
		Migrations:   c.migrations,
		Threshold:    c.opts.Threshold,
		Confirm:      c.opts.Confirm,
		Cooldown:     c.opts.Cooldown,
		Streak:       c.streak,
		CooldownLeft: c.cooldownLeft,
	}
	switch {
	case c.cooldownLeft > 0:
		st.State = "cooldown"
	case c.streak > 0:
		st.State = "confirming"
	}
	if c.last != nil {
		d := *c.last
		st.Last = &d
	}
	return st
}

// Migrations returns how many migrations the controller has executed.
func (c *Controller) Migrations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.migrations
}

// Step runs one control iteration and returns its decision. Steps are
// serialized; a step that migrates blocks until the retiring
// generation has drained (ctx bounds that wait; Status stays
// readable throughout). Calling Step at deterministic points of a
// fixed submission trace yields a deterministic decision sequence.
//
// If ctx expires while the retiring generation drains, the migration
// itself has still happened — the fleet serves the new generation,
// the un-drained replicas stay in the retiring set (a later Drain
// completes them), and the controller commits its post-migration
// state before reporting the interrupted drain as an error, so
// controller and fleet can never desync.
func (c *Controller) Step(ctx context.Context) (Decision, error) {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()

	// State fields are written only here (under stepMu), so lock-free
	// reads are safe; every write goes through setState so Status's
	// locked reads are too.
	d := Decision{Step: c.steps, Objective: c.obj.String()} //herald:nolock single-writer read: steps is written only inside Step, and stepMu serializes Steps
	c.setState(func() { c.steps++ })

	mix := c.f.ObservedMix("observed-mix")
	if mix == nil {
		d.Action = ActionNoTraffic
		d.Generation = c.f.Generation()
		return c.finish(d), nil
	}
	d.Mix = mixString(mix)

	res, err := c.f.Resweep(mix)
	if err != nil {
		return d, err
	}
	d.WinnerHDA = res.Best.HDA.String()
	d.WinnerValue = c.obj.Value(res.Best)
	d.Explored, d.Pruned = res.Explored, res.Pruned

	servingHDA, servingValue, err := c.servingValue(mix)
	if err != nil {
		return d, err
	}
	d.ServingHDA = servingHDA.String()
	d.ServingValue = servingValue
	if servingValue > 0 {
		d.Improvement = (servingValue - d.WinnerValue) / servingValue
	}
	d.Generation = c.f.Generation()

	// Cooldown: observe, report, never act — and accumulate no streak,
	// so the cooldown and confirmation windows are strictly serial.
	if c.cooldownLeft > 0 { //herald:nolock single-writer read under stepMu (see the state-fields comment above)
		c.setState(func() {
			c.cooldownLeft--
			c.streak, c.pendingKey = 0, ""
		})
		if res.Best.HDA.SamePartition(servingHDA) || d.Improvement < c.opts.Threshold {
			d.Action = ActionHold
		} else {
			d.Action = ActionCooldown
		}
		return c.finish(d), nil
	}

	if res.Best.HDA.SamePartition(servingHDA) || d.Improvement < c.opts.Threshold {
		d.Action = ActionHold
		c.setState(func() { c.streak, c.pendingKey = 0, "" })
		return c.finish(d), nil
	}

	// A candidate cleared the threshold: it must be the same partition
	// for Confirm consecutive probes before the fleet moves.
	c.setState(func() {
		if key := d.WinnerHDA; key == c.pendingKey {
			c.streak++
		} else {
			c.pendingKey = key
			c.streak = 1
		}
	})
	if c.streak < c.opts.Confirm { //herald:nolock single-writer read under stepMu (see the state-fields comment above)
		d.Action = ActionConfirming
		return c.finish(d), nil
	}

	// Act: spawn the new generation on the winner, hand the mix over
	// for prewarming, drain and retire the old one.
	n := c.opts.Replicas
	if n <= 0 {
		n = len(c.f.ActiveHDAs())
	}
	hdas := make([]*accel.HDA, n)
	for i := range hdas {
		hdas[i] = res.Best.HDA
	}
	migErr := c.f.Migrate(ctx, hdas, mix)
	if migErr != nil && c.f.Generation() == d.Generation {
		// The swap never happened (replica build failed): the fleet is
		// untouched; the candidate streak survives for the next probe.
		return d, fmt.Errorf("fleet: migration to %s failed: %w", d.WinnerHDA, migErr)
	}
	// The fleet switched generations — even if the old generation's
	// drain was cut short, commit the post-migration state now.
	c.f.ResetMix()
	c.setState(func() {
		c.migrations++
		c.cooldownLeft = c.opts.Cooldown
		c.streak, c.pendingKey = 0, ""
	})
	d.Action = ActionMigrated
	d.Generation = c.f.Generation()
	d = c.finish(d)
	if migErr != nil {
		return d, fmt.Errorf("fleet: migrated to %s, but draining the retired generation was interrupted (it will finish in the background or on Drain): %w", d.WinnerHDA, migErr)
	}
	return d, nil
}

// setState applies a state mutation under the read lock, keeping
// Status race-free while Step runs.
func (c *Controller) setState(mutate func()) {
	c.mu.Lock()
	mutate()
	c.mu.Unlock()
}

// finish records the decision as the controller's latest, copies the
// hysteresis state into it, and logs it.
func (c *Controller) finish(d Decision) Decision {
	c.mu.Lock()
	d.Streak = c.streak
	d.CooldownLeft = c.cooldownLeft
	last := d
	c.last = &last
	c.mu.Unlock()
	if c.opts.Logf != nil {
		c.opts.Logf("%s", d)
	}
	return d
}

// servingValue evaluates the probed mix on every distinct active
// partition with the sweeper's scheduler configuration and returns
// the best one — the objective value the current fleet could achieve
// on that mix, the fair baseline for the sweep winner. Called from
// Step only: c.stepMu held.
func (c *Controller) servingValue(mix *workload.Workload) (*accel.HDA, float64, error) {
	hdas := c.f.ActiveHDAs()
	var bestHDA *accel.HDA
	best := math.Inf(1)
	for i, h := range hdas {
		dup := false
		for _, seen := range hdas[:i] {
			if h.SamePartition(seen) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		sch, err := c.s.Schedule(h, mix)
		if err != nil {
			return nil, 0, fmt.Errorf("fleet: evaluating serving partition %s: %w", h, err)
		}
		v := c.obj.Value(dse.Point{
			HDA:        h,
			Schedule:   sch,
			LatencySec: sch.LatencySeconds(1.0),
			EnergyMJ:   sch.EnergyMJ(),
			EDP:        sch.EDP(1.0),
		})
		c.s.Recycle(sch)
		if v < best {
			best, bestHDA = v, h
		}
	}
	if bestHDA == nil {
		return nil, 0, fmt.Errorf("fleet: no active partition to evaluate")
	}
	return bestHDA, best, nil
}

// mixString renders a workload as "model×batches + ..." for logs.
func mixString(w *workload.Workload) string {
	counts := make(map[string]int)
	var order []string
	for i := range w.Instances {
		name := w.Instances[i].Model.Name
		if counts[name] == 0 {
			order = append(order, name)
		}
		counts[name]++
	}
	s := ""
	for i, name := range order {
		if i > 0 {
			s += "+"
		}
		s += fmt.Sprintf("%s:%d", name, counts[name])
	}
	return s
}

// Run drives Step on a ticker until ctx is cancelled — the daemon
// form of the control loop (heraldd -repartition). Errors are logged
// (via Options.Logf) and do not stop the loop: a transient probe
// failure must not kill the controller.
func (c *Controller) Run(ctx context.Context, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if _, err := c.Step(ctx); err != nil && c.opts.Logf != nil {
				c.opts.Logf("repartition step failed: %v", err)
			}
		}
	}
}
