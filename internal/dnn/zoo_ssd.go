package dnn

// ssdHead appends the SSD extra feature layers and per-feature-map
// detection heads to a backbone builder. featMaps lists the (channels,
// rows) of each feature map used for prediction, in trunk order; the
// first entries reference backbone activations (modeled via setShape),
// the later ones are produced by the extra layers appended here.
// anchors is the per-location anchor count; classes the detector's
// class count (loc head predicts 4 box offsets per anchor).
func ssdHead(b *builder, extra []extraLayer, featMaps []featMap, anchors, classes int) {
	for i, e := range extra {
		b.pw("extra"+itoa(i+1)+"a", e.mid, 1)
		b.push(Layer{Name: "extra" + itoa(i+1) + "b", Op: Conv2D,
			K: e.out, C: b.c, Y: b.y, X: b.x, R: 3, S: 3, Stride: e.stride, Pad: e.pad})
	}
	for i, f := range featMaps {
		b.setShape(f.c, f.y, f.y)
		b.conv("loc"+itoa(i+1), anchors*4, 3, 1)
		b.setShape(f.c, f.y, f.y)
		b.conv("conf"+itoa(i+1), anchors*classes, 3, 1)
	}
}

type extraLayer struct {
	mid, out, stride, pad int
}

type featMap struct {
	c, y int
}

// SSDResNet34 builds the MLPerf-inference SSD-ResNet34 ("SSD-Large")
// object detector: a ResNet-34 trunk at 1200×1200 input, four extra
// feature stages, and six detection-head pairs over feature maps from
// 150×150 down to 3×3. 53 compute layers, dominated by the
// high-resolution backbone (~100 GMACs).
func SSDResNet34() *Model {
	b := resNet34Backbone("ssd-resnet34", 1200)
	extra := []extraLayer{
		{256, 512, 2, 1},
		{256, 512, 2, 1},
		{128, 256, 2, 1},
		{128, 256, 2, 1},
	}
	// Feature maps: backbone C3 (38 rows at 1200/32≈38 after stage 4),
	// then the extra stages. MLPerf SSD-ResNet34 predicts from maps of
	// 50/25/13/7/4(≈3) rows at 1200 input; we use the shapes produced
	// by our trunk.
	feats := []featMap{
		{256, 75}, // backbone stage-3 output (1200/16)
		{512, 38}, // backbone stage-4 output
		{512, 19}, {512, 10}, {256, 5}, {256, 3},
	}
	ssdHead(b, extra, feats, 6, 81)
	return b.model()
}

// SSDMobileNetV1 builds the MLPerf-inference SSD-MobileNetV1
// ("SSD-Small") detector: a MobileNet-V1 trunk at 300×300 input, four
// extra feature stages, and six detection-head pairs from 19×19 down
// to 1×1. 47 compute layers, ~1.2 GMACs.
func SSDMobileNetV1() *Model {
	b := mobileNetV1Backbone("ssd-mobilenetv1", 300)
	extra := []extraLayer{
		{256, 512, 2, 1},
		{128, 256, 2, 1},
		{128, 256, 2, 1},
		{64, 128, 2, 1},
	}
	feats := []featMap{
		{512, 19},  // backbone conv11 output
		{1024, 10}, // backbone conv13 output
		{512, 5}, {256, 3}, {256, 2}, {128, 1},
	}
	ssdHead(b, extra, feats, 6, 91)
	return b.model()
}
