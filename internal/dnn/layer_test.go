package dnn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOutDims(t *testing.T) {
	tests := []struct {
		name       string
		l          Layer
		outY, outX int
	}{
		{"same-pad stride1", Layer{Op: Conv2D, K: 8, C: 8, Y: 56, X: 56, R: 3, S: 3, Stride: 1, Pad: 1}, 56, 56},
		{"same-pad stride2", Layer{Op: Conv2D, K: 8, C: 8, Y: 56, X: 56, R: 3, S: 3, Stride: 2, Pad: 1}, 28, 28},
		{"valid conv", Layer{Op: Conv2D, K: 8, C: 8, Y: 580, X: 580, R: 3, S: 3, Stride: 1}, 578, 578},
		{"7x7 stem", Layer{Op: Conv2D, K: 64, C: 3, Y: 224, X: 224, R: 7, S: 7, Stride: 2, Pad: 3}, 112, 112},
		{"fc", Layer{Op: FC, K: 10, C: 100, Y: 1, X: 1, R: 1, S: 1, Stride: 1}, 1, 1},
		{"upconv 2x", Layer{Op: UpConv, K: 8, C: 16, Y: 28, X: 28, R: 2, S: 2, Stride: 2}, 56, 56},
		{"pw stride2", Layer{Op: PWConv, K: 8, C: 8, Y: 9, X: 9, R: 1, S: 1, Stride: 2}, 5, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.l.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if got := tc.l.OutY(); got != tc.outY {
				t.Errorf("OutY = %d, want %d", got, tc.outY)
			}
			if got := tc.l.OutX(); got != tc.outX {
				t.Errorf("OutX = %d, want %d", got, tc.outX)
			}
		})
	}
}

func TestMACs(t *testing.T) {
	conv := Layer{Op: Conv2D, K: 64, C: 32, Y: 56, X: 56, R: 3, S: 3, Stride: 1, Pad: 1}
	want := int64(64) * 32 * 56 * 56 * 9
	if got := conv.MACs(); got != want {
		t.Errorf("conv MACs = %d, want %d", got, want)
	}

	dw := Layer{Op: DWConv, K: 32, C: 32, Y: 56, X: 56, R: 3, S: 3, Stride: 1, Pad: 1}
	wantDW := int64(32) * 56 * 56 * 9
	if got := dw.MACs(); got != wantDW {
		t.Errorf("dwconv MACs = %d, want %d (no C accumulation)", got, wantDW)
	}

	fc := Layer{Op: FC, K: 1000, C: 2048, Y: 1, X: 1, R: 1, S: 1, Stride: 1}
	if got := fc.MACs(); got != 1000*2048 {
		t.Errorf("fc MACs = %d, want %d", got, 1000*2048)
	}

	rep := fc
	rep.Repeat = 25
	if got := rep.MACs(); got != 25*1000*2048 {
		t.Errorf("repeated fc MACs = %d, want %d", got, 25*1000*2048)
	}

	up := Layer{Op: UpConv, K: 8, C: 16, Y: 10, X: 10, R: 2, S: 2, Stride: 2}
	wantUp := int64(8) * 16 * 10 * 10 * 4
	if got := up.MACs(); got != wantUp {
		t.Errorf("upconv MACs = %d, want %d", got, wantUp)
	}
}

func TestTensorSizes(t *testing.T) {
	l := Layer{Op: Conv2D, K: 64, C: 32, Y: 56, X: 56, R: 3, S: 3, Stride: 2, Pad: 1}
	if got := l.InputElems(); got != 32*56*56 {
		t.Errorf("InputElems = %d", got)
	}
	if got := l.WeightElems(); got != 64*32*9 {
		t.Errorf("WeightElems = %d", got)
	}
	if got := l.OutputElems(); got != int64(64)*28*28 {
		t.Errorf("OutputElems = %d", got)
	}

	dw := Layer{Op: DWConv, K: 32, C: 32, Y: 56, X: 56, R: 3, S: 3, Stride: 1, Pad: 1}
	if got := dw.WeightElems(); got != 32*9 {
		t.Errorf("dw WeightElems = %d, want %d", got, 32*9)
	}
}

func TestValidateRejectsBadLayers(t *testing.T) {
	bad := []Layer{
		{Op: Conv2D, K: 0, C: 3, Y: 8, X: 8, R: 3, S: 3, Stride: 1, Pad: 1},
		{Op: Conv2D, K: 8, C: 3, Y: 0, X: 8, R: 3, S: 3, Stride: 1, Pad: 1},
		{Op: Conv2D, K: 8, C: 3, Y: 8, X: 8, R: 3, S: 3, Stride: 0, Pad: 1},
		{Op: Conv2D, K: 8, C: 3, Y: 8, X: 8, R: 3, S: 3, Stride: 1, Pad: -1},
		{Op: DWConv, K: 16, C: 8, Y: 8, X: 8, R: 3, S: 3, Stride: 1, Pad: 1}, // K != C
		{Op: PWConv, K: 8, C: 8, Y: 8, X: 8, R: 3, S: 3, Stride: 1, Pad: 1},  // not 1x1
		{Op: FC, K: 8, C: 8, Y: 2, X: 1, R: 1, S: 1, Stride: 1},              // spatial FC
		{Op: Conv2D, K: 8, C: 8, Y: 2, X: 2, R: 5, S: 5, Stride: 1, Pad: 0},  // filter > input
		{Op: Conv2D, K: 8, C: 8, Y: 8, X: 8, R: 3, S: 3, Stride: 1, Repeat: -1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted invalid layer", i, l)
		}
	}
}

func TestChannelActivationRatio(t *testing.T) {
	stem := Layer{Op: Conv2D, K: 64, C: 3, Y: 224, X: 224, R: 7, S: 7, Stride: 2, Pad: 3}
	if r := stem.ChannelActivationRatio(); r < 0.013 || r > 0.014 {
		t.Errorf("stem ratio = %f, want ~0.0134 (Table I ResNet50 min)", r)
	}
	fc := Layer{Op: FC, K: 1000, C: 1280, Y: 1, X: 1, R: 1, S: 1, Stride: 1}
	if r := fc.ChannelActivationRatio(); r != 1280 {
		t.Errorf("fc ratio = %f, want 1280 (Table I MobileNetV2 max)", r)
	}
}

func TestShapeKeyIdentity(t *testing.T) {
	a := Layer{Name: "a", Op: Conv2D, K: 8, C: 3, Y: 8, X: 8, R: 3, S: 3, Stride: 1, Pad: 1}
	b := a
	b.Name = "b"
	if a.Key() != b.Key() {
		t.Error("same shape with different names should share a ShapeKey")
	}
	c := a
	c.Stride = 2
	if a.Key() == c.Key() {
		t.Error("different strides must produce distinct ShapeKeys")
	}
	// Repeat 0 and 1 are the same shape.
	d, e := a, a
	d.Repeat = 0
	e.Repeat = 1
	if d.Key() != e.Key() {
		t.Error("Repeat 0 and 1 must normalize to the same ShapeKey")
	}
}

// genLayer produces a random valid layer for property tests.
func genLayer(r *rand.Rand) Layer {
	ops := []Op{Conv2D, PWConv, DWConv, FC, UpConv}
	op := ops[r.Intn(len(ops))]
	l := Layer{Op: op, Stride: 1 + r.Intn(2), Repeat: 1}
	switch op {
	case FC:
		l.K, l.C = 1+r.Intn(4096), 1+r.Intn(4096)
		l.Y, l.X, l.R, l.S, l.Stride = 1, 1, 1, 1, 1
	case PWConv:
		l.K, l.C = 1+r.Intn(512), 1+r.Intn(512)
		l.Y = 1 + r.Intn(128)
		l.X = 1 + r.Intn(128)
		l.R, l.S = 1, 1
	case DWConv:
		ch := 1 + r.Intn(512)
		l.K, l.C = ch, ch
		l.R, l.S = 3, 3
		l.Y = 3 + r.Intn(128)
		l.X = 3 + r.Intn(128)
		l.Pad = 1
	case UpConv:
		l.K, l.C = 1+r.Intn(256), 1+r.Intn(256)
		l.R, l.S = 2, 2
		l.Stride = 2
		l.Y = 1 + r.Intn(64)
		l.X = 1 + r.Intn(64)
	default:
		l.K, l.C = 1+r.Intn(256), 1+r.Intn(256)
		l.R, l.S = 3, 3
		l.Pad = 1
		l.Y = 3 + r.Intn(128)
		l.X = 3 + r.Intn(128)
	}
	return l
}

// TestLayerInvariants property-checks structural invariants over random
// valid layers: positive outputs and MACs, MACs consistent with a
// direct loop-nest product, and DWConv never exceeding the equivalent
// CONV2D cost.
func TestLayerInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := genLayer(r)
		if err := l.Validate(); err != nil {
			t.Logf("generated invalid layer: %v", err)
			return false
		}
		if l.OutY() < 1 || l.OutX() < 1 {
			return false
		}
		if l.MACs() < 1 {
			return false
		}
		// MACs must match the loop-nest product.
		var want int64
		switch l.Op {
		case DWConv:
			want = int64(l.K) * int64(l.OutY()) * int64(l.OutX()) * int64(l.R) * int64(l.S)
		case UpConv:
			want = int64(l.K) * int64(l.C) * int64(l.Y) * int64(l.X) * int64(l.R) * int64(l.S)
		default:
			want = int64(l.K) * int64(l.C) * int64(l.OutY()) * int64(l.OutX()) * int64(l.R) * int64(l.S)
		}
		if l.MACs() != want {
			return false
		}
		// Footprints are positive.
		return l.InputElems() > 0 && l.WeightElems() > 0 && l.OutputElems() > 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	if Conv2D.String() != "CONV2D" || DWConv.String() != "DWCONV" || UpConv.String() != "UPCONV" {
		t.Error("Op names must match the paper's spelling")
	}
	if Op(99).String() != "Op(99)" {
		t.Error("out-of-range Op should degrade gracefully")
	}
}
