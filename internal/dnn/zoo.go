package dnn

import (
	"fmt"
	"sort"
	"sync"
)

// zooBuilders maps canonical model names to their generators. Names
// follow the paper's spelling (Tables I & II).
var zooBuilders = map[string]func() *Model{
	"resnet50":        ResNet50,
	"mobilenetv1":     MobileNetV1,
	"mobilenetv2":     MobileNetV2,
	"unet":            UNet,
	"brq-handpose":    BrQHandposeNet,
	"fl-depthnet":     FocalLengthDepthNet,
	"ssd-resnet34":    SSDResNet34,
	"ssd-mobilenetv1": SSDMobileNetV1,
	"gnmt":            GNMT,
}

var (
	zooMu    sync.Mutex
	zooCache = map[string]*Model{}
)

// ByName returns the named model from the zoo. Models are built once
// and cached; callers must treat the returned model as immutable.
func ByName(name string) (*Model, error) {
	zooMu.Lock()
	defer zooMu.Unlock()
	if m, ok := zooCache[name]; ok {
		return m, nil
	}
	build, ok := zooBuilders[name]
	if !ok {
		return nil, fmt.Errorf("dnn: unknown model %q (have %v)", name, Names())
	}
	m := build()
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("dnn: zoo model %q failed validation: %w", name, err)
	}
	zooCache[name] = m
	return m, nil
}

// MustByName is ByName for static names; it panics on unknown models.
func MustByName(name string) *Model {
	m, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Names returns the sorted list of model names in the zoo.
func Names() []string {
	names := make([]string, 0, len(zooBuilders))
	for n := range zooBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
