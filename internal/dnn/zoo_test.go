package dnn

import (
	"strings"
	"testing"
)

func TestZooAllModelsValidate(t *testing.T) {
	for _, name := range Names() {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.MACs() <= 0 {
			t.Errorf("%s: non-positive MAC count", name)
		}
	}
}

func TestZooByNameUnknown(t *testing.T) {
	if _, err := ByName("not-a-model"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestZooCachesModels(t *testing.T) {
	a := MustByName("resnet50")
	b := MustByName("resnet50")
	if a != b {
		t.Error("zoo should cache and return the same model instance")
	}
}

func TestZooLayerCounts(t *testing.T) {
	// The paper's per-instance layer counts: ResNet50 has 54 compute
	// layers, UNet 23 (§V, Table VII layer accounting). Our other
	// models use the canonical published layer structure.
	counts := map[string]int{
		"resnet50":        54,
		"unet":            23,
		"mobilenetv1":     28,
		"mobilenetv2":     53,
		"brq-handpose":    11,
		"fl-depthnet":     25,
		"gnmt":            19,
		"ssd-resnet34":    53,
		"ssd-mobilenetv1": 47,
	}
	for name, want := range counts {
		m := MustByName(name)
		if got := m.NumLayers(); got != want {
			t.Errorf("%s: %d layers, want %d", name, got, want)
		}
	}
}

func TestZooMACBallparks(t *testing.T) {
	// Published MAC counts for the classification networks; the zoo
	// must land within 15% (structural fidelity check).
	ballparks := map[string]struct {
		want int64
		tol  float64
	}{
		"resnet50":    {4_100_000_000, 0.15},
		"mobilenetv1": {569_000_000, 0.15},
		"mobilenetv2": {310_000_000, 0.20},
	}
	for name, bp := range ballparks {
		m := MustByName(name)
		got := float64(m.MACs())
		lo := float64(bp.want) * (1 - bp.tol)
		hi := float64(bp.want) * (1 + bp.tol)
		if got < lo || got > hi {
			t.Errorf("%s: %.0f MACs, want within [%.0f, %.0f]", name, got, lo, hi)
		}
	}
	// UNet at 580x580 with valid convolutions is tens of GMACs — the
	// workload-size asymmetry behind Figure 2's axis scales.
	if unet := MustByName("unet"); unet.MACs() < 10*MustByName("resnet50").MACs() {
		t.Errorf("unet MACs (%d) should dwarf resnet50 (%d)", unet.MACs(), MustByName("resnet50").MACs())
	}
}

// TestTableIRatios verifies the channel-activation size ratio
// statistics of Table I for each AR/VR model. Minima are engineered to
// match exactly (input-layer shapes); maxima and medians must land on
// the values the paper reports (within rounding) or their documented
// neighborhoods.
func TestTableIRatios(t *testing.T) {
	type want struct {
		min, max     float64
		minTol       float64
		maxTol       float64
		medianWithin [2]float64
	}
	wants := map[string]want{
		// Table I: MobileNetV2 min 0.013, max 1280.
		"mobilenetv2": {min: 3.0 / 224, max: 1280, minTol: 0.001, maxTol: 0, medianWithin: [2]float64{1, 40}},
		// Table I reports ResNet50 max 292.571 (2048/7, the last conv
		// stage); our stats additionally see the 2048-channel FC
		// classifier input (ratio 2048), so the model max is 2048. The
		// 2048/7 conv-stage ratio is asserted separately below.
		"resnet50": {min: 3.0 / 224, max: 2048, minTol: 0.001, maxTol: 0, medianWithin: [2]float64{4, 40}},
		// Table I: UNet min 0.002 (1/580), max 34.133 (1024/30).
		"unet": {min: 1.0 / 580, max: 1024.0 / 30, minTol: 0.0005, maxTol: 0.1, medianWithin: [2]float64{0.5, 6}},
		// Table I: Br-Q Handpose min 0.016 (1/64), median and max 1024.
		"brq-handpose": {min: 1.0 / 64, max: 1024, minTol: 0.0005, maxTol: 0, medianWithin: [2]float64{1023, 1025}},
		// Table I: Focal-Length DepthNet min 0.013, max 4096.
		"fl-depthnet": {min: 3.0 / 224, max: 4096, minTol: 0.001, maxTol: 0, medianWithin: [2]float64{1, 40}},
	}
	for name, w := range wants {
		m := MustByName(name)
		st := m.RatioStats()
		if diff := st.Min - w.min; diff < -w.minTol || diff > w.minTol {
			t.Errorf("%s: min ratio %.4f, want %.4f (Table I)", name, st.Min, w.min)
		}
		if w.maxTol == 0 {
			if st.Max != w.max {
				t.Errorf("%s: max ratio %.3f, want %.3f (Table I)", name, st.Max, w.max)
			}
		} else if st.Max < w.max*(1-w.maxTol) || st.Max > w.max*(1+w.maxTol) {
			t.Errorf("%s: max ratio %.3f, want ~%.3f (Table I)", name, st.Max, w.max)
		}
		if st.Median < w.medianWithin[0] || st.Median > w.medianWithin[1] {
			t.Errorf("%s: median ratio %.3f outside expected band %v", name, st.Median, w.medianWithin)
		}
	}

	// Table I's ResNet50 maximum of 292.571 = 2048/7: the deepest conv
	// stage must see 2048 input channels on a 7-row activation.
	resnet := MustByName("resnet50")
	var found bool
	for i := range resnet.Layers {
		l := &resnet.Layers[i]
		if l.Op != FC && l.C == 2048 && l.Y == 7 {
			found = true
		}
	}
	if !found {
		t.Error("resnet50 lacks the 2048-channel 7-row conv stage behind Table I's 292.571 ratio")
	}
}

// TestTableIOperators verifies each model uses the operator families
// Table I lists for it.
func TestTableIOperators(t *testing.T) {
	has := func(ops []Op, o Op) bool {
		for _, x := range ops {
			if x == o {
				return true
			}
		}
		return false
	}
	mobv2 := MustByName("mobilenetv2").Ops()
	for _, o := range []Op{Conv2D, PWConv, DWConv} {
		if !has(mobv2, o) {
			t.Errorf("mobilenetv2 missing %s (Table I)", o)
		}
	}
	resnet := MustByName("resnet50").Ops()
	for _, o := range []Op{Conv2D, FC} {
		if !has(resnet, o) {
			t.Errorf("resnet50 missing %s (Table I)", o)
		}
	}
	unet := MustByName("unet").Ops()
	for _, o := range []Op{Conv2D, UpConv} {
		if !has(unet, o) {
			t.Errorf("unet missing %s (Table I)", o)
		}
	}
	depth := MustByName("fl-depthnet").Ops()
	for _, o := range []Op{Conv2D, FC, UpConv} {
		if !has(depth, o) {
			t.Errorf("fl-depthnet missing %s (Table I)", o)
		}
	}
	hand := MustByName("brq-handpose").Ops()
	for _, o := range []Op{Conv2D, FC} {
		if !has(hand, o) {
			t.Errorf("brq-handpose missing %s (Table I)", o)
		}
	}
}

// TestSectionVBParallelismQuotes verifies the two workload-wide
// parallelism extremes quoted in §V-B: maximum channel parallelism
// 16.8M from Focal-Length DepthNet's FC layer 2, and maximum activation
// parallelism 334.1K from UNet's first convolution.
func TestSectionVBParallelismQuotes(t *testing.T) {
	depth := MustByName("fl-depthnet")
	if got := depth.MaxChannelParallelism(); got != 4096*4096 {
		t.Errorf("fl-depthnet max channel parallelism = %d, want %d (16.8M, FC layer 2)", got, 4096*4096)
	}
	unet := MustByName("unet")
	if got := unet.MaxActivationParallelism(); got != 578*578 {
		t.Errorf("unet max activation parallelism = %d, want %d (334.1K, CONV layer 1)", got, 578*578)
	}
	// And the FC-layer-2 identification: the 4096x4096 GEMM.
	var found bool
	for i := range depth.Layers {
		l := &depth.Layers[i]
		if l.Op == FC && l.K == 4096 && l.C == 4096 {
			found = true
		}
	}
	if !found {
		t.Error("fl-depthnet should contain the 4096x4096 FC layer")
	}
}

func TestModelStructuralDetails(t *testing.T) {
	unet := MustByName("unet")
	first := &unet.Layers[0]
	if first.OutY() != 578 || first.OutX() != 578 {
		t.Errorf("unet conv1 output = %dx%d, want 578x578", first.OutY(), first.OutX())
	}
	if len(unet.SkipEdges) != 4 {
		t.Errorf("unet should have 4 concat skip edges, got %d", len(unet.SkipEdges))
	}

	resnet := MustByName("resnet50")
	last := &resnet.Layers[len(resnet.Layers)-1]
	if last.Op != FC || last.K != 1000 || last.C != 2048 {
		t.Errorf("resnet50 classifier = %v, want FC 2048->1000", last)
	}
	if len(resnet.SkipEdges) != 12 {
		t.Errorf("resnet50 should have 12 identity skip edges, got %d", len(resnet.SkipEdges))
	}

	gnmt := MustByName("gnmt")
	for i := range gnmt.Layers {
		if gnmt.Layers[i].Repeat != gnmtSeqLen {
			t.Errorf("gnmt layer %d Repeat = %d, want %d", i, gnmt.Layers[i].Repeat, gnmtSeqLen)
		}
	}
}

func TestLayerNamesUnique(t *testing.T) {
	for _, name := range Names() {
		m := MustByName(name)
		seen := map[string]bool{}
		for i := range m.Layers {
			ln := m.Layers[i].Name
			if seen[ln] {
				t.Errorf("%s: duplicate layer name %q", name, ln)
			}
			seen[ln] = true
			if !strings.HasPrefix(ln, m.Name+"/") {
				t.Errorf("%s: layer name %q not namespaced by model", name, ln)
			}
		}
	}
}
