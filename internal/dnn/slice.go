package dnn

import (
	"fmt"
	"sync"
)

// sliceKey identifies one contiguous sub-model of one parent model.
type sliceKey struct {
	m        *Model
	from, to int
}

// slices interns sub-models so repeated cuts of the same parent return
// the same *Model pointer. Pointer stability is load-bearing: the cost
// caches (maestro column interning, the scheduler's L0 tables) key by
// model pointer, so a serving engine admitting thousands of fused
// requests resolves each segment's costs once, not per request.
var slices sync.Map // sliceKey -> *Model

// Slice returns the contiguous sub-model m.Layers[from:to), named
// "parent[from:to]", sharing the parent's layer storage. The full
// range returns the parent itself. Skip edges fully inside the range
// are kept (re-indexed); edges crossing a cut are dropped — the linear
// chain subsumes their ordering, and a fused serving path re-imposes
// cross-segment order through scheduling precedence. Results are
// interned: equal (m, from, to) triples return the same pointer.
func Slice(m *Model, from, to int) (*Model, error) {
	if m == nil {
		return nil, fmt.Errorf("dnn: slice of nil model")
	}
	if from < 0 || to > len(m.Layers) || from >= to {
		return nil, fmt.Errorf("dnn: model %q slice [%d:%d) out of range (0..%d)", m.Name, from, to, len(m.Layers))
	}
	if from == 0 && to == len(m.Layers) {
		return m, nil
	}
	key := sliceKey{m: m, from: from, to: to}
	if v, ok := slices.Load(key); ok {
		return v.(*Model), nil
	}
	sub := &Model{
		Name:   fmt.Sprintf("%s[%d:%d]", m.Name, from, to),
		Layers: m.Layers[from:to:to],
	}
	for _, e := range m.SkipEdges {
		if e[0] >= from && e[1] < to {
			sub.SkipEdges = append(sub.SkipEdges, [2]int{e[0] - from, e[1] - from})
		}
	}
	// LoadOrStore keeps the interned pointer unique under concurrent
	// first cuts of the same range.
	v, _ := slices.LoadOrStore(key, sub)
	return v.(*Model), nil
}
