package dnn

import "testing"

// sliceFixture is a 6-layer chain with skip edges chosen so a middle
// cut exercises all three edge fates: dropped-before, kept-inside
// (re-indexed), and dropped-crossing.
func sliceFixture() *Model {
	m := &Model{Name: "slice-fixture"}
	for i := 0; i < 6; i++ {
		m.Layers = append(m.Layers, Layer{
			Op: Conv2D, K: 8, C: 8, Y: 8, X: 8, R: 3, S: 3, Stride: 1, Pad: 1,
		})
	}
	m.SkipEdges = [][2]int{{0, 2}, {1, 4}, {3, 5}}
	return m
}

func TestSliceBasics(t *testing.T) {
	m := sliceFixture()

	full, err := Slice(m, 0, m.NumLayers())
	if err != nil {
		t.Fatal(err)
	}
	if full != m {
		t.Error("full-range slice should return the parent model itself")
	}

	sub, err := Slice(m, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Name != "slice-fixture[1:5]" {
		t.Errorf("slice name = %q, want %q", sub.Name, "slice-fixture[1:5]")
	}
	if sub.NumLayers() != 4 {
		t.Fatalf("slice has %d layers, want 4", sub.NumLayers())
	}
	if &sub.Layers[0] != &m.Layers[1] {
		t.Error("slice should share the parent's layer storage, not copy it")
	}
	// {0,2} starts before the cut, {3,5} crosses the right cut: both
	// dropped. {1,4} is fully inside and re-indexes to {0,3}.
	if len(sub.SkipEdges) != 1 || sub.SkipEdges[0] != [2]int{0, 3} {
		t.Errorf("slice skip edges = %v, want [[0 3]]", sub.SkipEdges)
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("slice should validate: %v", err)
	}
}

func TestSliceInterning(t *testing.T) {
	m := sliceFixture()
	a, err := Slice(m, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Slice(m, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("equal (model, from, to) should return the same interned pointer")
	}
	c, err := Slice(m, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("distinct ranges must not alias")
	}
	// A different parent with the same range is a different slice.
	other := sliceFixture()
	d, err := Slice(other, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("slices of distinct parent models must not alias")
	}
}

func TestSliceErrors(t *testing.T) {
	m := sliceFixture()
	if _, err := Slice(nil, 0, 1); err == nil {
		t.Error("nil model should error")
	}
	for _, r := range [][2]int{{-1, 2}, {0, 7}, {3, 3}, {4, 2}} {
		if _, err := Slice(m, r[0], r[1]); err == nil {
			t.Errorf("range [%d:%d) should error", r[0], r[1])
		}
	}
}
