package dnn

// BrQHandposeNet builds the hand-pose estimation network named "Br-Q
// HandposeNet" in Table I (after Madadi et al., end-to-end global-to-
// local CNN hand pose recovery from depth). A single-channel 64×64
// depth crop passes through a five-stage convolutional encoder and a
// deep fully-connected regressor of 1024-unit layers predicting 21 3D
// joints. 11 compute layers.
//
// The shape statistics reproduce Table I's row: minimum
// channel-activation ratio 1/64 ≈ 0.016 at the input, median and
// maximum 1024 from the FC trunk.
func BrQHandposeNet() *Model {
	b := newBuilder("brq-handpose", 1, 64, 64)
	b.conv("enc1", 32, 3, 1)
	b.conv("enc2", 64, 3, 2)
	b.conv("enc3", 128, 3, 2)
	b.conv("enc4", 256, 3, 2)
	b.conv("enc5", 256, 3, 2)
	b.pool(2) // 4×4 → 2×2: flatten to 1024 features
	for i := 1; i <= 5; i++ {
		b.fc("fc"+itoa(i), 1024)
	}
	b.fc("joints", 63) // 21 joints × (x,y,z)
	return b.model()
}

// FocalLengthDepthNet builds the monocular depth-estimation network of
// Table I (after He, Wang & Hu, "learning depth from single images with
// deep neural network embedding focal length"): a VGG-16-style encoder
// on a 224×224×3 image, a 4096-unit fully-connected middle embedding
// the focal length, and an up-convolutional decoder restoring the
// 224×224 depth map. 25 compute layers.
//
// The middle's second FC layer is 4096→4096: its K·C = 16.8M is the
// "maximum channel parallelism (FC layer 2, Focal Length DepthNet)"
// quoted in §V-B, and its channel-activation ratio of 4096 is the
// Table I maximum for this model. The first encoder convolution gives
// the minimum 3/224 ≈ 0.013.
func FocalLengthDepthNet() *Model {
	b := newBuilder("fl-depthnet", 3, 224, 224)
	// VGG-16 encoder (13 convolutions).
	b.conv("enc1a", 64, 3, 1)
	b.conv("enc1b", 64, 3, 1)
	b.pool(2)
	b.conv("enc2a", 128, 3, 1)
	b.conv("enc2b", 128, 3, 1)
	b.pool(2)
	b.conv("enc3a", 256, 3, 1)
	b.conv("enc3b", 256, 3, 1)
	b.conv("enc3c", 256, 3, 1)
	b.pool(2)
	b.conv("enc4a", 512, 3, 1)
	b.conv("enc4b", 512, 3, 1)
	b.conv("enc4c", 512, 3, 1)
	b.pool(2)
	b.conv("enc5a", 512, 3, 1)
	b.conv("enc5b", 512, 3, 1)
	b.conv("enc5c", 512, 3, 1)
	b.pool(2)

	// FC middle. fc1 is realized as a 7×7 valid convolution (the
	// standard "FC-as-conv" formulation), fc2 is the 4096×4096 GEMM.
	b.convValid("fc1-conv", 4096, 7, 1)
	b.fc("fc2", 4096)
	b.fc("fc3", 64*7*7)
	b.setShape(64, 7, 7)

	// Up-convolutional decoder back to 224×224.
	b.up("up1", 512, 2, 2) // 14×14
	b.conv("dec1", 512, 3, 1)
	b.up("up2", 256, 2, 2) // 28×28
	b.conv("dec2", 256, 3, 1)
	b.up("up3", 128, 2, 2) // 56×56
	b.conv("dec3", 128, 3, 1)
	b.up("up4", 64, 2, 2) // 112×112
	b.up("up5", 32, 2, 2) // 224×224
	b.pw("depth", 1, 1)
	return b.model()
}
