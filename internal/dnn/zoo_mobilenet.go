package dnn

// MobileNetV2 builds the MobileNet-V2 classification network (Sandler
// et al.) at 224×224×3 input: a 3×3 stem, 17 inverted-residual blocks,
// a final 1×1 expansion to 1280 channels, and a 1000-way classifier.
// 53 compute layers, ~310 MMACs. The Table I object-detection backbone
// with the extreme channel-activation ratio spread (3/224 ≈ 0.013 at
// the stem, 1280/1 at the classifier input) and depth-wise layers that
// punish channel-parallel dataflows.
func MobileNetV2() *Model {
	b := newBuilder("mobilenetv2", 3, 224, 224)
	b.conv("stem", 32, 3, 2)

	// First block: no expansion (t=1).
	b.dw("dw-b1", 3, 1)
	b.pw("proj-b1", 16, 1)

	type group struct {
		n, out, stride int
	}
	// (repeat count, output channels, first-block stride) per the
	// MobileNetV2 paper's Table 2, expansion factor t=6 throughout.
	groups := []group{
		{2, 24, 2}, {3, 32, 2}, {4, 64, 2},
		{3, 96, 1}, {3, 160, 2}, {1, 320, 1},
	}
	blk := 1
	for _, g := range groups {
		for i := 0; i < g.n; i++ {
			blk++
			stride := 1
			if i == 0 {
				stride = g.stride
			}
			entry := b.idx()
			residual := stride == 1 && b.c == g.out
			b.pw("expand-b"+itoa(blk), b.c*6, 1)
			b.dw("dw-b"+itoa(blk), 3, stride)
			b.pw("proj-b"+itoa(blk), g.out, 1)
			if residual {
				b.skipFrom(entry)
			}
		}
	}
	b.pw("head", 1280, 1)
	b.globalPool()
	b.fc("fc1000", 1000)
	return b.model()
}

// MobileNetV1 builds the MobileNet-V1 classification network (Howard et
// al.) at 224×224×3: a 3×3 stem, 13 depth-wise-separable blocks
// (DW + PW each), and a 1000-way classifier. 28 compute layers,
// ~569 MMACs. Used by the MLPerf workload (Table II).
func MobileNetV1() *Model {
	b := newBuilder("mobilenetv1", 3, 224, 224)
	b.conv("stem", 32, 3, 2)

	type block struct {
		out, stride int
	}
	blocks := []block{
		{64, 1},
		{128, 2}, {128, 1},
		{256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	for i, bl := range blocks {
		b.dw("dw-b"+itoa(i+1), 3, bl.stride)
		b.pw("pw-b"+itoa(i+1), bl.out, 1)
	}
	b.globalPool()
	b.fc("fc1000", 1000)
	return b.model()
}

// mobileNetV1Backbone builds the MobileNet-V1 trunk (no classifier) at
// the given input resolution, for the SSD-MobileNetV1 detector.
func mobileNetV1Backbone(name string, input int) *builder {
	b := newBuilder(name, 3, input, input)
	b.conv("stem", 32, 3, 2)
	type block struct {
		out, stride int
	}
	blocks := []block{
		{64, 1},
		{128, 2}, {128, 1},
		{256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	for i, bl := range blocks {
		b.dw("dw-b"+itoa(i+1), 3, bl.stride)
		b.pw("pw-b"+itoa(i+1), bl.out, 1)
	}
	return b
}
