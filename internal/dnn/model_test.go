package dnn

import (
	"testing"
)

func TestModelValidate(t *testing.T) {
	empty := &Model{Name: "empty"}
	if err := empty.Validate(); err == nil {
		t.Error("empty model should fail validation")
	}

	bad := &Model{Name: "bad", Layers: []Layer{
		{Op: Conv2D, K: 8, C: 3, Y: 8, X: 8, R: 3, S: 3, Stride: 1, Pad: 1},
	}, SkipEdges: [][2]int{{0, 5}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range skip edge should fail validation")
	}

	badOrder := &Model{Name: "bad2", Layers: []Layer{
		{Op: Conv2D, K: 8, C: 3, Y: 8, X: 8, R: 3, S: 3, Stride: 1, Pad: 1},
		{Op: Conv2D, K: 8, C: 8, Y: 8, X: 8, R: 3, S: 3, Stride: 1, Pad: 1},
	}, SkipEdges: [][2]int{{1, 1}}}
	if err := badOrder.Validate(); err == nil {
		t.Error("non-forward skip edge should fail validation")
	}
}

func TestModelAggregates(t *testing.T) {
	m := &Model{Name: "m", Layers: []Layer{
		{Op: Conv2D, K: 4, C: 2, Y: 8, X: 8, R: 3, S: 3, Stride: 1, Pad: 1},
		{Op: FC, K: 10, C: 4 * 8 * 8, Y: 1, X: 1, R: 1, S: 1, Stride: 1},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	wantMACs := int64(4*2*8*8*9) + int64(10*4*8*8)
	if got := m.MACs(); got != wantMACs {
		t.Errorf("MACs = %d, want %d", got, wantMACs)
	}
	wantW := int64(4*2*9) + int64(10*4*8*8)
	if got := m.WeightElems(); got != wantW {
		t.Errorf("WeightElems = %d, want %d", got, wantW)
	}
	ops := m.Ops()
	if len(ops) != 2 || ops[0] != Conv2D || ops[1] != FC {
		t.Errorf("Ops = %v, want [CONV2D FC]", ops)
	}
}

func TestRatioStatsOddEven(t *testing.T) {
	mk := func(cs ...int) *Model {
		m := &Model{Name: "r"}
		for _, c := range cs {
			m.Layers = append(m.Layers, Layer{Op: PWConv, K: 8, C: c, Y: 1, X: 1, R: 1, S: 1, Stride: 1})
		}
		return m
	}
	odd := mk(1, 2, 4) // ratios 1,2,4 (Y=1)
	if st := odd.RatioStats(); st.Min != 1 || st.Median != 2 || st.Max != 4 {
		t.Errorf("odd stats = %+v", st)
	}
	even := mk(1, 2, 4, 8)
	if st := even.RatioStats(); st.Median != 3 {
		t.Errorf("even median = %f, want 3 (midpoint)", st.Median)
	}
	var none Model
	if st := none.RatioStats(); st != (RatioStats{}) {
		t.Errorf("empty stats = %+v, want zero", st)
	}
}

func TestBuilderShapeTracking(t *testing.T) {
	b := newBuilder("t", 3, 32, 32)
	b.conv("c1", 16, 3, 2) // -> 16x16
	if b.y != 16 || b.c != 16 {
		t.Fatalf("after conv: c=%d y=%d", b.c, b.y)
	}
	b.pool(2) // -> 8x8
	if b.y != 8 {
		t.Fatalf("after pool: y=%d", b.y)
	}
	b.dw("d1", 3, 1)
	if b.c != 16 {
		t.Fatalf("dw should preserve channels, c=%d", b.c)
	}
	b.up("u1", 8, 2, 2) // -> 16x16
	if b.y != 16 || b.c != 8 {
		t.Fatalf("after up: c=%d y=%d", b.c, b.y)
	}
	b.globalPool()
	b.fc("f1", 10)
	m := b.model()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	fc := m.Layers[len(m.Layers)-1]
	if fc.C != 8 {
		t.Errorf("fc input channels = %d, want 8 (flattened 8x1x1)", fc.C)
	}
}

func TestMaxParallelismHelpers(t *testing.T) {
	m := &Model{Name: "p", Layers: []Layer{
		{Op: Conv2D, K: 8, C: 4, Y: 32, X: 32, R: 3, S: 3, Stride: 1, Pad: 1}, // ch par 32, act par 1024
		{Op: DWConv, K: 512, C: 512, Y: 8, X: 8, R: 3, S: 3, Stride: 1, Pad: 1},
	}}
	if got := m.MaxChannelParallelism(); got != 512 {
		t.Errorf("MaxChannelParallelism = %d, want 512 (dwconv counts K only)", got)
	}
	if got := m.MaxActivationParallelism(); got != 1024 {
		t.Errorf("MaxActivationParallelism = %d, want 1024", got)
	}
}
