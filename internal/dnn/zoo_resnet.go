package dnn

// ResNet50 builds the ResNet-50 classification network (He et al.) at
// 224×224×3 input: a 7×7 stem, four bottleneck stages of [3,4,6,3]
// blocks, and a 1000-way FC classifier. 54 compute layers (53 conv +
// 1 FC), ~4.1 GMACs — the deep-channel classification workload of
// Table I (channel-activation ratio up to 2048/7 ≈ 292.6 before the
// classifier).
func ResNet50() *Model {
	b := newBuilder("resnet50", 3, 224, 224)
	b.conv("stem", 64, 7, 2)
	b.pool(2) // 3×3 max-pool stride 2

	type stage struct {
		blocks, mid, out, stride int
	}
	stages := []stage{
		{3, 64, 256, 1},
		{4, 128, 512, 2},
		{6, 256, 1024, 2},
		{3, 512, 2048, 2},
	}
	for si, st := range stages {
		for blk := 0; blk < st.blocks; blk++ {
			stride := 1
			if blk == 0 {
				stride = st.stride
			}
			entry := b.idx()
			inC, inY, inX := b.c, b.y, b.x
			b.pw(stageName("reduce", si, blk), st.mid, 1)
			b.conv(stageName("conv3", si, blk), st.mid, 3, stride)
			b.pw(stageName("expand", si, blk), st.out, 1)
			if blk == 0 {
				// Projection shortcut: 1×1 conv matching channels and
				// stride (counted as a compute layer, as in the
				// paper's 54-layer ResNet-50).
				proj := Layer{Name: stageName("proj", si, blk), Op: PWConv,
					K: st.out, C: inC, Y: inY, X: inX, R: 1, S: 1, Stride: stride}
				c, y, x := b.c, b.y, b.x
				b.push(proj)
				b.setShape(c, y, x) // main path continues from expand output
			} else if entry >= 0 {
				b.skipFrom(entry)
			}
		}
	}
	b.globalPool()
	b.fc("fc1000", 1000)
	return b.model()
}

// resNet34Backbone builds the convolutional trunk of ResNet-34 (basic
// blocks, no classifier) at the given square input resolution. Used by
// the SSD-ResNet34 detector.
func resNet34Backbone(name string, input int) *builder {
	b := newBuilder(name, 3, input, input)
	b.conv("stem", 64, 7, 2)
	b.pool(2)
	type stage struct {
		blocks, out, stride int
	}
	stages := []stage{{3, 64, 1}, {4, 128, 2}, {6, 256, 2}, {3, 512, 2}}
	for si, st := range stages {
		for blk := 0; blk < st.blocks; blk++ {
			stride := 1
			if blk == 0 {
				stride = st.stride
			}
			entry := b.idx()
			b.conv(stageName("a", si, blk), st.out, 3, stride)
			b.conv(stageName("b", si, blk), st.out, 3, 1)
			if blk != 0 && entry >= 0 {
				b.skipFrom(entry)
			}
		}
	}
	return b
}

func stageName(kind string, stage, block int) string {
	return kind + "-s" + itoa(stage+1) + "b" + itoa(block+1)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
