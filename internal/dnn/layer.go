// Package dnn provides the DNN workload substrate for the Herald/HDA
// reproduction: an analytical representation of neural-network layers
// (shapes and operator types, no weights) and generators for the nine
// networks the paper evaluates (Table I and Table II).
//
// A Layer records the six canonical convolution dimensions used by the
// paper's loop-nest notation (Fig. 4): K output channels, C input
// channels, Y×X input activation, R×S filter. All derived quantities
// (output shape, MAC count, tensor footprints, the channel-activation
// size ratio of Table I) are computed analytically.
package dnn

import (
	"errors"
	"fmt"
)

// Op enumerates the layer operator types that appear in the paper's
// workloads (Table I: CONV2D, PWCONV, DWCONV, FC, UPCONV; GNMT adds
// recurrent cells which are modeled as repeated FC/GEMM layers).
type Op int

const (
	// Conv2D is a standard 2D convolution accumulating across input
	// channels.
	Conv2D Op = iota
	// PWConv is a point-wise (1×1) convolution.
	PWConv
	// DWConv is a depth-wise convolution: one filter per channel, no
	// accumulation across input channels (K == C).
	DWConv
	// FC is a fully-connected (GEMM) layer; Y=X=R=S=1.
	FC
	// UpConv is an up-scale (transposed / fractionally-strided)
	// convolution that multiplies spatial resolution by Stride.
	UpConv
)

var opNames = [...]string{"CONV2D", "PWCONV", "DWCONV", "FC", "UPCONV"}

// String returns the paper's name for the operator.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// Layer is the shape of one DNN layer. Dimension names follow the
// paper's loop-nest notation (Fig. 4).
type Layer struct {
	Name string
	Op   Op

	K int // output channels (number of filters)
	C int // input channels
	Y int // input activation height (rows)
	X int // input activation width (columns)
	R int // filter height
	S int // filter width

	// Stride is the convolution stride for Conv2D/PWConv/DWConv, or the
	// up-scaling factor for UpConv. Must be >= 1.
	Stride int

	// Pad is the symmetric spatial padding applied on each border.
	// Classification networks typically use "same" padding (Pad=R/2);
	// UNet famously uses valid convolutions (Pad=0).
	Pad int

	// Repeat is the number of sequential invocations of the layer with
	// identical shape (used for RNN timesteps in GNMT). The invocations
	// are serially dependent, so Repeat scales compute, traffic and
	// latency but does not expose extra spatial parallelism. Zero is
	// treated as 1.
	Repeat int
}

// reps returns the effective repeat count (>= 1).
func (l *Layer) reps() int64 {
	if l.Repeat <= 1 {
		return 1
	}
	return int64(l.Repeat)
}

// OutY returns the output activation height.
func (l *Layer) OutY() int { return outDim(l.Op, l.Y, l.R, l.Stride, l.Pad) }

// OutX returns the output activation width.
func (l *Layer) OutX() int { return outDim(l.Op, l.X, l.S, l.Stride, l.Pad) }

func outDim(op Op, in, filt, stride, pad int) int {
	if stride < 1 {
		stride = 1
	}
	if op == UpConv {
		return in * stride
	}
	o := (in+2*pad-filt)/stride + 1
	if o < 1 {
		o = 1
	}
	return o
}

// MACs returns the number of multiply-accumulate operations performed
// by the layer (including Repeat). Depth-wise convolution does not
// accumulate across input channels, so its MAC count omits the C
// factor. Up-scale convolution is counted input-centrically (each input
// pixel is multiplied by the full R×S kernel), which equals the
// transposed-convolution arithmetic cost.
func (l *Layer) MACs() int64 {
	var m int64
	switch l.Op {
	case DWConv:
		m = int64(l.K) * int64(l.OutY()) * int64(l.OutX()) * int64(l.R) * int64(l.S)
	case UpConv:
		m = int64(l.K) * int64(l.C) * int64(l.Y) * int64(l.X) * int64(l.R) * int64(l.S)
	default:
		m = int64(l.K) * int64(l.C) * int64(l.OutY()) * int64(l.OutX()) * int64(l.R) * int64(l.S)
	}
	return m * l.reps()
}

// InputElems returns the number of input activation elements (one
// invocation, Repeat excluded: repeated invocations stream fresh
// inputs, which callers account for via Repeat-aware traffic methods).
func (l *Layer) InputElems() int64 { return int64(l.C) * int64(l.Y) * int64(l.X) }

// WeightElems returns the number of filter weight elements.
func (l *Layer) WeightElems() int64 {
	if l.Op == DWConv {
		return int64(l.K) * int64(l.R) * int64(l.S)
	}
	return int64(l.K) * int64(l.C) * int64(l.R) * int64(l.S)
}

// OutputElems returns the number of output activation elements (one
// invocation).
func (l *Layer) OutputElems() int64 {
	return int64(l.K) * int64(l.OutY()) * int64(l.OutX())
}

// TotalInputElems returns input elements across all Repeat invocations.
func (l *Layer) TotalInputElems() int64 { return l.InputElems() * l.reps() }

// TotalOutputElems returns output elements across all Repeat invocations.
func (l *Layer) TotalOutputElems() int64 { return l.OutputElems() * l.reps() }

// ChannelActivationRatio is the layer-shape abstraction used in
// Table I: the number of input channels divided by the input activation
// height. Large ratios indicate deep-channel, small-spatial layers (late
// classification layers, FC); small ratios indicate shallow-channel,
// large-spatial layers (early layers, segmentation decoders).
func (l *Layer) ChannelActivationRatio() float64 {
	y := l.Y
	if y < 1 {
		y = 1
	}
	return float64(l.C) / float64(y)
}

// Validate reports whether the layer dimensions are structurally
// consistent.
func (l *Layer) Validate() error {
	switch {
	case l.K < 1 || l.C < 1:
		return fmt.Errorf("dnn: layer %q: channels must be >= 1 (K=%d C=%d)", l.Name, l.K, l.C)
	case l.Y < 1 || l.X < 1:
		return fmt.Errorf("dnn: layer %q: activation must be >= 1 (Y=%d X=%d)", l.Name, l.Y, l.X)
	case l.R < 1 || l.S < 1:
		return fmt.Errorf("dnn: layer %q: filter must be >= 1 (R=%d S=%d)", l.Name, l.R, l.S)
	case l.Stride < 1:
		return fmt.Errorf("dnn: layer %q: stride must be >= 1 (got %d)", l.Name, l.Stride)
	case l.Pad < 0:
		return fmt.Errorf("dnn: layer %q: pad must be >= 0 (got %d)", l.Name, l.Pad)
	case l.Repeat < 0:
		return fmt.Errorf("dnn: layer %q: repeat must be >= 0 (got %d)", l.Name, l.Repeat)
	}
	switch l.Op {
	case DWConv:
		if l.K != l.C {
			return fmt.Errorf("dnn: layer %q: depth-wise convolution requires K == C (K=%d C=%d)", l.Name, l.K, l.C)
		}
	case PWConv:
		if l.R != 1 || l.S != 1 {
			return fmt.Errorf("dnn: layer %q: point-wise convolution requires 1x1 filter (R=%d S=%d)", l.Name, l.R, l.S)
		}
	case FC:
		if l.Y != 1 || l.X != 1 || l.R != 1 || l.S != 1 {
			return fmt.Errorf("dnn: layer %q: FC requires Y=X=R=S=1", l.Name)
		}
	}
	if l.Op != UpConv && l.Y+2*l.Pad < l.R {
		return fmt.Errorf("dnn: layer %q: filter rows exceed padded input (Y=%d Pad=%d R=%d)", l.Name, l.Y, l.Pad, l.R)
	}
	if l.Op != UpConv && l.X+2*l.Pad < l.S {
		return fmt.Errorf("dnn: layer %q: filter cols exceed padded input (X=%d Pad=%d S=%d)", l.Name, l.X, l.Pad, l.S)
	}
	return nil
}

// String renders the layer in a compact, readable form.
func (l *Layer) String() string {
	return fmt.Sprintf("%s %s K%d C%d %dx%d f%dx%d s%d p%d -> %dx%d",
		l.Name, l.Op, l.K, l.C, l.Y, l.X, l.R, l.S, l.Stride, l.Pad, l.OutY(), l.OutX())
}

// ShapeKey returns a canonical identity for the layer shape, ignoring
// the name. Layers with equal ShapeKeys have identical cost on any
// accelerator, which cost-model callers exploit for caching.
type ShapeKey struct {
	Op                  Op
	K, C, Y, X, R, S    int
	Stride, Pad, Repeat int
}

// Key returns the layer's ShapeKey.
func (l *Layer) Key() ShapeKey {
	rep := l.Repeat
	if rep <= 1 {
		rep = 1
	}
	return ShapeKey{l.Op, l.K, l.C, l.Y, l.X, l.R, l.S, l.Stride, l.Pad, rep}
}

// ErrEmptyModel is returned by Model.Validate for models with no layers.
var ErrEmptyModel = errors.New("dnn: model has no layers")
