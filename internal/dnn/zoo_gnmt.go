package dnn

// gnmtSeqLen is the sequence length used to model GNMT translation
// (MLPerf inference uses variable-length sentences; 25 tokens is the
// benchmark's average-scale operating point).
const gnmtSeqLen = 25

// GNMT builds the Google Neural Machine Translation model used by the
// MLPerf workload, following the standard MAESTRO treatment of RNNs:
// each LSTM layer is a fully-connected GEMM over the concatenated
// (input, hidden) vector producing the four gate pre-activations, and
// executes once per timestep (Repeat = sequence length). Timesteps are
// serially dependent, so the Repeat field scales compute and traffic
// without exposing spatial parallelism — which is exactly why GNMT
// strongly prefers channel-parallel (NVDLA-style) dataflows in the
// paper's MLPerf results.
//
// Structure: 8 encoder LSTM layers, 8 decoder LSTM layers (hidden size
// 1024), a 2-layer attention MLP, and the 32K-vocabulary projection.
// 19 compute layers.
func GNMT() *Model {
	const hidden = 1024
	const vocab = 32000
	b := newBuilder("gnmt", 2*hidden, 1, 1)
	for i := 1; i <= 8; i++ {
		b.fcRepeat("enc-lstm"+itoa(i), 4*hidden, gnmtSeqLen)
		b.setShape(2*hidden, 1, 1) // next layer consumes (input, hidden)
	}
	for i := 1; i <= 8; i++ {
		b.fcRepeat("dec-lstm"+itoa(i), 4*hidden, gnmtSeqLen)
		b.setShape(2*hidden, 1, 1)
	}
	b.setShape(hidden, 1, 1)
	b.fcRepeat("attn-score", hidden, gnmtSeqLen)
	b.fcRepeat("attn-mix", hidden, gnmtSeqLen)
	b.fcRepeat("vocab-proj", vocab, gnmtSeqLen)
	return b.model()
}
