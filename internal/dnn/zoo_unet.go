package dnn

// UNet builds the U-Net segmentation network (Ronneberger et al.) with
// valid (unpadded) 3×3 convolutions at 580×580×1 input: a four-stage
// contracting path, a 1024-channel bottleneck, a four-stage expanding
// path with 2×2 up-convolutions and skip concatenations, and a final
// 1×1 segmentation head. 23 compute layers (matching the paper's
// per-instance UNet layer count), ~65 GMACs.
//
// The 580×580 input makes the first convolution's output 578×578 =
// 334,084 activations — the "maximum activation parallelism 334.1K
// (CONV layer 1, UNet)" quoted in §V-B. The bottleneck's 1024 channels
// at 30 rows give the Table I maximum channel-activation ratio of
// 1024/30 ≈ 34.13; the 1-channel input at 580 rows gives the minimum
// ≈ 0.002.
func UNet() *Model {
	b := newBuilder("unet", 1, 580, 580)

	// Contracting path. Each stage: two valid 3×3 convs, then 2×2 pool.
	// Skip sources (the second conv of each stage) feed the expanding
	// path concatenations.
	encOut := make([]int, 0, 4)
	encC := make([]int, 0, 4)
	for i, ch := range []int{64, 128, 256, 512} {
		b.convValid("enc"+itoa(i+1)+"a", ch, 3, 1)
		b.convValid("enc"+itoa(i+1)+"b", ch, 3, 1)
		encOut = append(encOut, b.idx())
		encC = append(encC, ch)
		b.pool(2)
	}

	// Bottleneck.
	b.convValid("bott-a", 1024, 3, 1)
	b.convValid("bott-b", 1024, 3, 1)

	// Expanding path. Each stage: 2×2 up-convolution halving channels,
	// concatenation with the (cropped) encoder feature map, then two
	// valid 3×3 convs.
	for i := 3; i >= 0; i-- {
		ch := encC[i]
		b.up("up"+itoa(i+1), ch, 2, 2)
		// Concatenate with encoder skip: channels double; spatial shape
		// stays at the up-convolution output (encoder map is cropped).
		b.skipFrom(encOut[i])
		b.setShape(2*ch, b.y, b.x)
		b.convValid("dec"+itoa(i+1)+"a", ch, 3, 1)
		b.convValid("dec"+itoa(i+1)+"b", ch, 3, 1)
	}

	// 1×1 segmentation head (2 classes in the original U-Net).
	b.pw("head", 2, 1)
	return b.model()
}
