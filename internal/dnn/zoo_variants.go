package dnn

// This file extends the zoo beyond the paper's nine evaluated networks
// with the standard variants a workload library needs in practice:
// width-scaled MobileNets (the MobileNet papers' width multiplier),
// the smaller ResNet classifiers, and the VGG-16 backbone the
// Focal-Length DepthNet encoder is based on. They let users compose
// custom workloads at different compute scales without leaving the
// library.

// MobileNetV1Width builds MobileNet-V1 with a width multiplier
// (0 < width <= 1); MobileNetV1() is the width-1.0 instance.
func MobileNetV1Width(width float64) *Model {
	scale := func(ch int) int { return scaleChannels(ch, width) }
	b := newBuilder(nameWithWidth("mobilenetv1", width), 3, 224, 224)
	b.conv("stem", scale(32), 3, 2)
	type block struct {
		out, stride int
	}
	blocks := []block{
		{64, 1},
		{128, 2}, {128, 1},
		{256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	for i, bl := range blocks {
		b.dw("dw-b"+itoa(i+1), 3, bl.stride)
		b.pw("pw-b"+itoa(i+1), scale(bl.out), 1)
	}
	b.globalPool()
	b.fc("fc1000", 1000)
	return b.model()
}

// MobileNetV2Width builds MobileNet-V2 with a width multiplier.
func MobileNetV2Width(width float64) *Model {
	scale := func(ch int) int { return scaleChannels(ch, width) }
	b := newBuilder(nameWithWidth("mobilenetv2", width), 3, 224, 224)
	b.conv("stem", scale(32), 3, 2)
	b.dw("dw-b1", 3, 1)
	b.pw("proj-b1", scale(16), 1)
	type group struct {
		n, out, stride int
	}
	groups := []group{
		{2, 24, 2}, {3, 32, 2}, {4, 64, 2},
		{3, 96, 1}, {3, 160, 2}, {1, 320, 1},
	}
	blk := 1
	for _, g := range groups {
		out := scale(g.out)
		for i := 0; i < g.n; i++ {
			blk++
			stride := 1
			if i == 0 {
				stride = g.stride
			}
			entry := b.idx()
			residual := stride == 1 && b.c == out
			b.pw("expand-b"+itoa(blk), b.c*6, 1)
			b.dw("dw-b"+itoa(blk), 3, stride)
			b.pw("proj-b"+itoa(blk), out, 1)
			if residual {
				b.skipFrom(entry)
			}
		}
	}
	// The head does not scale below 1280 in the reference model.
	head := 1280
	if width > 1 {
		head = scaleChannels(head, width)
	}
	b.pw("head", head, 1)
	b.globalPool()
	b.fc("fc1000", 1000)
	return b.model()
}

// ResNet18 builds the 18-layer basic-block ResNet classifier at
// 224×224×3 (17 convs + FC).
func ResNet18() *Model { return basicResNet("resnet18", []int{2, 2, 2, 2}) }

// ResNet34 builds the 34-layer basic-block ResNet classifier at
// 224×224×3 (33 convs + FC) — the classifier variant of the
// SSD-ResNet34 trunk.
func ResNet34() *Model { return basicResNet("resnet34", []int{3, 4, 6, 3}) }

func basicResNet(name string, blocks []int) *Model {
	b := newBuilder(name, 3, 224, 224)
	b.conv("stem", 64, 7, 2)
	b.pool(2)
	outs := []int{64, 128, 256, 512}
	for si, n := range blocks {
		for blk := 0; blk < n; blk++ {
			stride := 1
			if blk == 0 && si > 0 {
				stride = 2
			}
			entry := b.idx()
			b.conv(stageName("a", si, blk), outs[si], 3, stride)
			b.conv(stageName("b", si, blk), outs[si], 3, 1)
			if blk != 0 && entry >= 0 {
				b.skipFrom(entry)
			}
		}
	}
	b.globalPool()
	b.fc("fc1000", 1000)
	return b.model()
}

// VGG16 builds the 16-layer VGG classifier at 224×224×3 (13 convs +
// 3 FC) — the encoder family behind the Focal-Length DepthNet.
func VGG16() *Model {
	b := newBuilder("vgg16", 3, 224, 224)
	cfg := []struct{ n, ch int }{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	for si, st := range cfg {
		for i := 0; i < st.n; i++ {
			b.conv("conv"+itoa(si+1)+string(rune('a'+i)), st.ch, 3, 1)
		}
		b.pool(2)
	}
	b.fc("fc1", 4096)
	b.fc("fc2", 4096)
	b.fc("fc1000", 1000)
	return b.model()
}

// scaleChannels applies a width multiplier, rounding to the nearest
// multiple of 8 (the MobileNet convention), never below 8.
func scaleChannels(ch int, width float64) int {
	v := int(float64(ch)*width + 4)
	v -= v % 8
	if v < 8 {
		v = 8
	}
	return v
}

func nameWithWidth(base string, width float64) string {
	switch width {
	case 1.0:
		return base
	case 0.75:
		return base + "-0.75"
	case 0.5:
		return base + "-0.5"
	case 0.25:
		return base + "-0.25"
	}
	return base + "-w"
}

func init() {
	zooBuilders["resnet18"] = ResNet18
	zooBuilders["resnet34"] = ResNet34
	zooBuilders["vgg16"] = VGG16
	zooBuilders["mobilenetv1-0.5"] = func() *Model { return MobileNetV1Width(0.5) }
	zooBuilders["mobilenetv1-0.25"] = func() *Model { return MobileNetV1Width(0.25) }
	zooBuilders["mobilenetv2-0.5"] = func() *Model { return MobileNetV2Width(0.5) }
}
