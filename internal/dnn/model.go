package dnn

import (
	"fmt"
	"sort"
)

// Model is an ordered list of layers forming one DNN. Layer execution
// follows the paper's dependence heuristic (§IV-D): layers within a
// model form a (mostly) linear dependence chain; layers of different
// models are independent. Skip connections and concatenations are
// recorded in SkipEdges for documentation and validation but do not
// add scheduling freedom beyond the linear chain (they only ever point
// backwards).
type Model struct {
	Name   string
	Layers []Layer

	// SkipEdges records non-linear dataflow edges (residual additions,
	// UNet concatenations) as (from, to) layer-index pairs with
	// from < to. They are informational: the linear chain already
	// subsumes their ordering constraints.
	SkipEdges [][2]int
}

// Validate checks every layer and the structural consistency of skip
// edges.
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("%w (model %q)", ErrEmptyModel, m.Name)
	}
	for i := range m.Layers {
		if err := m.Layers[i].Validate(); err != nil {
			return fmt.Errorf("model %q layer %d: %w", m.Name, i, err)
		}
	}
	for _, e := range m.SkipEdges {
		if e[0] < 0 || e[1] >= len(m.Layers) || e[0] >= e[1] {
			return fmt.Errorf("dnn: model %q: invalid skip edge %v", m.Name, e)
		}
	}
	return nil
}

// NumLayers returns the number of layers.
func (m *Model) NumLayers() int { return len(m.Layers) }

// MACs returns the total multiply-accumulate count of the model.
func (m *Model) MACs() int64 {
	var t int64
	for i := range m.Layers {
		t += m.Layers[i].MACs()
	}
	return t
}

// WeightElems returns the total number of weight elements.
func (m *Model) WeightElems() int64 {
	var t int64
	for i := range m.Layers {
		t += m.Layers[i].WeightElems()
	}
	return t
}

// Ops returns the set of distinct operator types used by the model, in
// ascending Op order (mirrors Table I's "Layer Operations" column).
func (m *Model) Ops() []Op {
	seen := map[Op]bool{}
	for i := range m.Layers {
		seen[m.Layers[i].Op] = true
	}
	ops := make([]Op, 0, len(seen))
	for o := range seen {
		ops = append(ops, o)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	return ops
}

// RatioStats summarizes the channel-activation size ratio distribution
// of a model, as reported per model in Table I.
type RatioStats struct {
	Min, Median, Max float64
}

// RatioStats computes the Table I shape-heterogeneity statistics over
// the model's layers.
func (m *Model) RatioStats() RatioStats {
	if len(m.Layers) == 0 {
		return RatioStats{}
	}
	rs := make([]float64, len(m.Layers))
	for i := range m.Layers {
		rs[i] = m.Layers[i].ChannelActivationRatio()
	}
	sort.Float64s(rs)
	med := rs[len(rs)/2]
	if len(rs)%2 == 0 {
		med = (rs[len(rs)/2-1] + rs[len(rs)/2]) / 2
	}
	return RatioStats{Min: rs[0], Median: med, Max: rs[len(rs)-1]}
}

// MaxChannelParallelism returns the largest K*C product over the
// model's layers that accumulate across channels (the paper's §V-B
// "maximum channel parallelism": the parallelism an NVDLA-style
// dataflow could theoretically exploit).
func (m *Model) MaxChannelParallelism() int64 {
	var best int64
	for i := range m.Layers {
		l := &m.Layers[i]
		var p int64
		if l.Op == DWConv {
			p = int64(l.K)
		} else {
			p = int64(l.K) * int64(l.C)
		}
		if p > best {
			best = p
		}
	}
	return best
}

// MaxActivationParallelism returns the largest OutY*OutX product over
// the model's layers (the paper's "maximum activation parallelism":
// what a Shi-diannao-style dataflow could exploit).
func (m *Model) MaxActivationParallelism() int64 {
	var best int64
	for i := range m.Layers {
		l := &m.Layers[i]
		p := int64(l.OutY()) * int64(l.OutX())
		if p > best {
			best = p
		}
	}
	return best
}

// builder accumulates layers while tracking the running activation
// shape, so zoo definitions read like network definitions.
type builder struct {
	name   string
	layers []Layer
	skips  [][2]int
	c      int // current channels
	y, x   int // current activation shape
}

func newBuilder(name string, channels, y, x int) *builder {
	return &builder{name: name, c: channels, y: y, x: x}
}

func (b *builder) idx() int { return len(b.layers) - 1 }

func (b *builder) push(l Layer) {
	l.Name = fmt.Sprintf("%s/%02d-%s", b.name, len(b.layers), l.Name)
	b.layers = append(b.layers, l)
	b.c = l.K
	b.y = l.OutY()
	b.x = l.OutX()
}

// conv adds a standard convolution with "same" padding.
func (b *builder) conv(name string, k, r, stride int) {
	b.push(Layer{Name: name, Op: Conv2D, K: k, C: b.c, Y: b.y, X: b.x, R: r, S: r, Stride: stride, Pad: r / 2})
}

// convValid adds a convolution with no padding (UNet-style).
func (b *builder) convValid(name string, k, r, stride int) {
	b.push(Layer{Name: name, Op: Conv2D, K: k, C: b.c, Y: b.y, X: b.x, R: r, S: r, Stride: stride, Pad: 0})
}

// pw adds a 1×1 point-wise convolution.
func (b *builder) pw(name string, k, stride int) {
	b.push(Layer{Name: name, Op: PWConv, K: k, C: b.c, Y: b.y, X: b.x, R: 1, S: 1, Stride: stride})
}

// dw adds a depth-wise convolution with "same" padding.
func (b *builder) dw(name string, r, stride int) {
	b.push(Layer{Name: name, Op: DWConv, K: b.c, C: b.c, Y: b.y, X: b.x, R: r, S: r, Stride: stride, Pad: r / 2})
}

// fc adds a fully-connected layer, flattening the current activation.
func (b *builder) fc(name string, k int) {
	in := b.c * b.y * b.x
	b.push(Layer{Name: name, Op: FC, K: k, C: in, Y: 1, X: 1, R: 1, S: 1, Stride: 1})
}

// fcRepeat adds a fully-connected layer executed `rep` sequential times
// (RNN timesteps).
func (b *builder) fcRepeat(name string, k, rep int) {
	in := b.c * b.y * b.x
	b.push(Layer{Name: name, Op: FC, K: k, C: in, Y: 1, X: 1, R: 1, S: 1, Stride: 1, Repeat: rep})
}

// up adds an up-scale (transposed) convolution that multiplies spatial
// resolution by `factor`.
func (b *builder) up(name string, k, r, factor int) {
	b.push(Layer{Name: name, Op: UpConv, K: k, C: b.c, Y: b.y, X: b.x, R: r, S: r, Stride: factor})
}

// pool downsamples the running activation shape without adding a layer
// (pooling is excluded from the paper's layer counts; its compute is
// negligible).
func (b *builder) pool(factor int) {
	b.y /= factor
	b.x /= factor
	if b.y < 1 {
		b.y = 1
	}
	if b.x < 1 {
		b.x = 1
	}
}

// globalPool collapses the activation to 1×1.
func (b *builder) globalPool() { b.y, b.x = 1, 1 }

// setShape overrides the running activation shape (used after concat or
// crop operations that change channels without a compute layer).
func (b *builder) setShape(c, y, x int) { b.c, b.y, b.x = c, y, x }

// skip records a skip edge from layer index `from` to the next layer to
// be pushed.
func (b *builder) skipFrom(from int) {
	b.skips = append(b.skips, [2]int{from, len(b.layers)})
}

func (b *builder) model() *Model {
	return &Model{Name: b.name, Layers: b.layers, SkipEdges: b.skips}
}
