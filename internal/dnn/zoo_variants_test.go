package dnn

import "testing"

func TestVariantZooModelsValidate(t *testing.T) {
	names := []string{"resnet18", "resnet34", "vgg16",
		"mobilenetv1-0.5", "mobilenetv1-0.25", "mobilenetv2-0.5"}
	for _, name := range names {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestVariantLayerCounts(t *testing.T) {
	counts := map[string]int{
		"resnet18": 18, // 17 convs + fc
		"resnet34": 34, // 33 convs + fc
		"vgg16":    16, // 13 convs + 3 fc
	}
	for name, want := range counts {
		if got := MustByName(name).NumLayers(); got != want {
			t.Errorf("%s: %d layers, want %d", name, got, want)
		}
	}
}

func TestVariantMACBallparks(t *testing.T) {
	// Published MAC counts: ResNet18 ~1.8G, ResNet34 ~3.6G, VGG16
	// ~15.5G, MobileNetV1-0.5 ~150M.
	ballparks := map[string]struct {
		want int64
		tol  float64
	}{
		"resnet18":        {1_800_000_000, 0.15},
		"resnet34":        {3_600_000_000, 0.15},
		"vgg16":           {15_500_000_000, 0.15},
		"mobilenetv1-0.5": {150_000_000, 0.25},
	}
	for name, bp := range ballparks {
		got := float64(MustByName(name).MACs())
		lo, hi := float64(bp.want)*(1-bp.tol), float64(bp.want)*(1+bp.tol)
		if got < lo || got > hi {
			t.Errorf("%s: %.0f MACs, want within [%.0f, %.0f]", name, got, lo, hi)
		}
	}
}

func TestWidthScalingMonotone(t *testing.T) {
	full := MobileNetV1Width(1.0)
	half := MobileNetV1Width(0.5)
	quarter := MobileNetV1Width(0.25)
	if !(quarter.MACs() < half.MACs() && half.MACs() < full.MACs()) {
		t.Errorf("width scaling not monotone: %d, %d, %d",
			quarter.MACs(), half.MACs(), full.MACs())
	}
	// Width 1.0 must be the canonical model.
	if full.MACs() != MustByName("mobilenetv1").MACs() {
		t.Error("width-1.0 variant diverges from the canonical MobileNetV1")
	}
	if full.Name != "mobilenetv1" {
		t.Errorf("width-1.0 name = %q", full.Name)
	}
}

func TestScaleChannels(t *testing.T) {
	cases := []struct {
		ch    int
		width float64
		want  int
	}{
		{64, 1.0, 64}, {64, 0.5, 32}, {64, 0.25, 16},
		{1024, 0.5, 512}, {32, 0.25, 8}, {8, 0.25, 8}, // floor at 8
	}
	for _, c := range cases {
		if got := scaleChannels(c.ch, c.width); got != c.want {
			t.Errorf("scaleChannels(%d, %g) = %d, want %d", c.ch, c.width, got, c.want)
		}
	}
}

func TestVariantsComposeIntoWorkloads(t *testing.T) {
	// The variants exist to compose custom workloads: check one ratio
	// property — a half-width network has ~4x fewer MACs per pw layer
	// but identical spatial shapes.
	full := MustByName("mobilenetv2")
	half := MustByName("mobilenetv2-0.5")
	if full.NumLayers() != half.NumLayers() {
		t.Fatalf("layer counts differ: %d vs %d", full.NumLayers(), half.NumLayers())
	}
	for i := range full.Layers {
		f, h := &full.Layers[i], &half.Layers[i]
		if f.Y != h.Y || f.X != h.X || f.Stride != h.Stride {
			t.Errorf("layer %d: spatial shape diverged", i)
		}
	}
}
