package dse

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/energy"
	"repro/internal/maestro"
	"repro/internal/workload"
)

// TestTopK: the top-K extraction is sorted best-first under the
// objective, agrees with Best at k=1, and clamps k to the cloud.
func TestTopK(t *testing.T) {
	cache := maestro.NewCache(energy.Default28nm())
	sp := Space{
		Class:   accel.Edge,
		Styles:  []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao},
		PEUnits: 4, BWUnits: 2,
	}
	res, err := Search(cache, sp, workload.ARVRA(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("tiny cloud: %d points", len(res.Points))
	}

	for _, obj := range []Objective{ObjectiveEDP, ObjectiveLatency, ObjectiveEnergy} {
		top := res.TopK(obj, 3)
		if len(top) != 3 {
			t.Fatalf("%s: TopK(3) returned %d", obj, len(top))
		}
		for i := 1; i < len(top); i++ {
			if obj.value(top[i]) < obj.value(top[i-1]) {
				t.Errorf("%s: TopK not sorted: %g before %g", obj, obj.value(top[i-1]), obj.value(top[i]))
			}
		}
	}

	// k=1 under the search objective is exactly Best.
	best := res.TopK(ObjectiveEDP, 1)
	if len(best) != 1 || best[0].HDA != res.Best.HDA {
		t.Errorf("TopK(EDP, 1) = %v, want Best %v", best[0].HDA, res.Best.HDA)
	}

	if got := res.TopK(ObjectiveEDP, len(res.Points)+10); len(got) != len(res.Points) {
		t.Errorf("oversized k returned %d of %d points", len(got), len(res.Points))
	}
	if res.TopK(ObjectiveEDP, 0) != nil || res.TopK(ObjectiveEDP, -1) != nil {
		t.Error("k <= 0 should return nil")
	}

	// TopK must not mutate the cloud's enumeration order.
	res2, err := Search(maestro.NewCache(energy.Default28nm()), sp, workload.ARVRA(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Points {
		if res.Points[i].EDP != res2.Points[i].EDP {
			t.Fatalf("point %d reordered after TopK", i)
		}
	}
}
