package dse

import (
	"reflect"
	"testing"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/dnn"
)

// segTestHDA is the two-dataflow edge substrate the fusion search cuts
// against: MobileNets alternate depthwise/pointwise preference across
// it, so plans should split.
func segTestHDA(t testing.TB) *accel.HDA {
	t.Helper()
	h, err := accel.New("seg-test", accel.Edge, []accel.Partition{
		{Style: dataflow.NVDLA, PEs: 512, BWGBps: 8},
		{Style: dataflow.ShiDiannao, PEs: 512, BWGBps: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestPlanSegmentsTilesAndPins(t *testing.T) {
	cache := testCache()
	h := segTestHDA(t)
	m := dnn.MustByName("mobilenetv2")

	p, err := PlanSegments(cache, h, m, ObjectiveEDP, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model != m.Name {
		t.Errorf("plan model = %q, want %q", p.Model, m.Name)
	}
	if p.NumSegments() < 2 {
		t.Fatalf("mobilenetv2 should split on a two-dataflow HDA, got %d segments", p.NumSegments())
	}
	if p.NumSegments() > 4 {
		t.Fatalf("plan exceeds maxSegments: %d > 4", p.NumSegments())
	}

	// Segments tile the layers exactly and carry consistent aggregates.
	var chain int64
	perSub := make(map[int]int64)
	next := 0
	for i, sg := range p.Segments {
		if sg.From != next || sg.To <= sg.From {
			t.Fatalf("segment %d covers [%d,%d), want to start at %d", i, sg.From, sg.To, next)
		}
		if sg.SubAcc < 0 || sg.SubAcc >= len(h.Subs) {
			t.Fatalf("segment %d pinned to sub %d of %d", i, sg.SubAcc, len(h.Subs))
		}
		if i > 0 && sg.SubAcc == p.Segments[i-1].SubAcc {
			t.Errorf("segments %d and %d both pin to sub %d: cut buys no dataflow change", i-1, i, sg.SubAcc)
		}
		if sg.Cycles <= 0 || sg.EnergyPJ <= 0 {
			t.Errorf("segment %d has non-positive cost: %d cycles, %f pJ", i, sg.Cycles, sg.EnergyPJ)
		}
		chain += sg.Cycles
		perSub[sg.SubAcc] += sg.Cycles
		next = sg.To
	}
	if next != m.NumLayers() {
		t.Fatalf("plan covers %d of %d layers", next, m.NumLayers())
	}
	if chain != p.ChainCycles {
		t.Errorf("ChainCycles = %d, want segment sum %d", p.ChainCycles, chain)
	}
	var period int64
	for _, c := range perSub {
		if c > period {
			period = c
		}
	}
	if period != p.PeriodCycles {
		t.Errorf("PeriodCycles = %d, want max per-sub sum %d", p.PeriodCycles, period)
	}
	if p.PeriodCycles > p.ChainCycles {
		t.Errorf("period %d exceeds chain latency %d", p.PeriodCycles, p.ChainCycles)
	}

	// Slices resolves the same tiling through the interned cuts.
	subs, err := p.Slices(m)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sm := range subs {
		total += sm.NumLayers()
	}
	if len(subs) != p.NumSegments() || total != m.NumLayers() {
		t.Errorf("Slices: %d models over %d layers, want %d over %d",
			len(subs), total, p.NumSegments(), m.NumLayers())
	}
}

func TestPlanSegmentsDeterministic(t *testing.T) {
	cache := testCache()
	h := segTestHDA(t)
	m := dnn.MustByName("mobilenetv1")
	a, err := PlanSegments(cache, h, m, ObjectiveEDP, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanSegments(cache, h, m, ObjectiveEDP, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeat search diverged:\n  %+v\n  %+v", a, b)
	}
}

func TestPlanSegmentsUnfused(t *testing.T) {
	cache := testCache()
	m := dnn.MustByName("mobilenetv2")

	// maxSegments <= 1 forces the whole-model plan even when the HDA
	// could split it.
	p, err := PlanSegments(cache, segTestHDA(t), m, ObjectiveEDP, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSegments() != 1 || p.Segments[0].From != 0 || p.Segments[0].To != m.NumLayers() {
		t.Errorf("maxSegments=1 plan = %+v, want one whole-model segment", p.Segments)
	}
	if p.PeriodCycles != p.ChainCycles {
		t.Errorf("one-segment plan: period %d != chain %d", p.PeriodCycles, p.ChainCycles)
	}

	// A single-sub HDA has no dataflow boundary to cut at.
	fda, err := accel.NewFDA(accel.Edge, dataflow.NVDLA)
	if err != nil {
		t.Fatal(err)
	}
	p, err = PlanSegments(cache, fda, m, ObjectiveEDP, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSegments() != 1 {
		t.Errorf("single-sub HDA plan has %d segments, want 1", p.NumSegments())
	}
}

func TestPlanSegmentsErrors(t *testing.T) {
	cache := testCache()
	m := dnn.MustByName("mobilenetv1")
	if _, err := PlanSegments(cache, nil, m, ObjectiveEDP, 4); err == nil {
		t.Error("nil HDA should error")
	}
	if _, err := PlanSegments(cache, segTestHDA(t), nil, ObjectiveEDP, 4); err == nil {
		t.Error("nil model should error")
	}
}

func TestSlicesValidation(t *testing.T) {
	m := dnn.MustByName("mobilenetv1")
	L := m.NumLayers()

	if _, err := (SegmentPlan{}).Slices(nil); err == nil {
		t.Error("nil model should error")
	}
	bad := []SegmentPlan{
		{Segments: []Segment{{From: 1, To: L}}},                      // misses layer 0
		{Segments: []Segment{{From: 0, To: 3}, {From: 4, To: L}}},    // gap at layer 3
		{Segments: []Segment{{From: 0, To: 3}, {From: 2, To: L}}},    // overlap
		{Segments: []Segment{{From: 0, To: L - 1}}},                  // short coverage
		{Segments: []Segment{{From: 0, To: 3}, {From: 3, To: L + 1}}}, // past the end
	}
	for i, p := range bad {
		if _, err := p.Slices(m); err == nil {
			t.Errorf("bad plan %d (%+v) should fail validation", i, p.Segments)
		}
	}

	good := SegmentPlan{Segments: []Segment{{From: 0, To: 3}, {From: 3, To: L}}}
	subs, err := good.Slices(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 || subs[0].NumLayers() != 3 || subs[1].NumLayers() != L-3 {
		t.Errorf("good plan sliced to %d models", len(subs))
	}
}
