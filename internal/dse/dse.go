// Package dse implements Herald's hardware-resource-partitioning
// design space exploration (§IV-C): given an accelerator class, a set
// of sub-accelerator dataflow styles, and a workload, it enumerates PE
// and bandwidth partitions (Definition 1), schedules the workload on
// each point with Herald's scheduler, and reports the full design
// cloud, the latency-energy Pareto front, and the best-EDP design.
// Exhaustive search at user-set granularity is the default; binary
// sampling and random search trade optimality for speed, as in the
// paper.
//
// The sweep machinery is built for repeated online use, not just
// design time: enumeration streams through a bounded channel (memory
// O(workers), not O(space)); Options.BestOnly drops the design cloud;
// Options.Prune skips scheduling partitions whose objective lower
// bound (bound.go) provably cannot win; and a reusable Sweeper handle
// (sweeper.go) keeps schedulers, HDAs and memo tables warm across
// sweeps — the substrate for fleet.Resweep's dynamic-repartitioning
// probes and the fleet Controller that acts on them.
//
// Key types: Space (the searchable partition space), Options
// (strategy, objective, BestOnly/Prune sweep modes), Point (one
// evaluated design), Result (cloud, Pareto front, Best, and the
// Explored/Pruned coverage counters), Sweeper (the warm reusable
// handle). Search is the one-shot convenience over NewSweeper+Sweep.
// Determinism guarantee: for a fixed (space, options, workload),
// Best is bit-identical across runs, worker counts, and
// pruned/unpruned modes (ties break toward the earlier enumeration
// index; see prune_equiv_test.go) — which is what lets a serving
// fleet compare sweep winners across probes by value.
package dse

import (
	"fmt"
	"sort"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/maestro"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Strategy selects how the partition space is sampled.
type Strategy int

const (
	// Exhaustive enumerates every partition at the configured
	// granularity (the paper's default).
	Exhaustive Strategy = iota
	// Binary restricts each share to power-of-two unit counts,
	// "which significantly reduces the search time at the cost of
	// possible loss of globally optimal design points" (§IV-C).
	Binary
	// Random samples a fixed number of partitions uniformly (seeded,
	// reproducible).
	Random
)

// String names the strategy (flag spelling).
func (s Strategy) String() string {
	switch s {
	case Exhaustive:
		return "exhaustive"
	case Binary:
		return "binary"
	case Random:
		return "random"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Space describes the searchable HDA design space for one class and
// one style combination.
type Space struct {
	Class  accel.Class
	Styles []dataflow.Style

	// PEUnits and BWUnits set the search granularity: the class's PEs
	// (bandwidth) are divided into this many equal units distributed
	// across sub-accelerators, each receiving at least one. Zero
	// selects the defaults (16 PE units, 8 BW units).
	PEUnits int
	BWUnits int
}

// Defaults fills zero-valued granularities.
func (sp Space) withDefaults() Space {
	if sp.PEUnits == 0 {
		sp.PEUnits = 16
	}
	if sp.BWUnits == 0 {
		sp.BWUnits = 8
	}
	return sp
}

// Validate reports whether the space is searchable.
func (sp Space) Validate() error {
	if err := sp.Class.Validate(); err != nil {
		return err
	}
	if len(sp.Styles) < 1 {
		return fmt.Errorf("dse: space needs at least one sub-accelerator style")
	}
	sp = sp.withDefaults()
	if len(sp.Styles) > sp.PEUnits || len(sp.Styles) > sp.BWUnits {
		return fmt.Errorf("dse: %d sub-accelerators exceed the %d PE / %d BW units",
			len(sp.Styles), sp.PEUnits, sp.BWUnits)
	}
	if sp.Class.PEs%sp.PEUnits != 0 {
		return fmt.Errorf("dse: class PEs %d not divisible into %d units", sp.Class.PEs, sp.PEUnits)
	}
	for _, st := range sp.Styles {
		if !st.Valid() {
			return fmt.Errorf("dse: invalid style in space")
		}
	}
	return nil
}

// Objective selects what Result.Best minimizes (§IV-D: "users can
// select the metric (e.g., EDP, energy, latency, and so on)").
type Objective int

const (
	// ObjectiveEDP minimizes the energy-delay product (default).
	ObjectiveEDP Objective = iota
	// ObjectiveLatency minimizes the schedule makespan.
	ObjectiveLatency
	// ObjectiveEnergy minimizes total energy.
	ObjectiveEnergy
)

// String names the objective (flag spelling).
func (o Objective) String() string {
	switch o {
	case ObjectiveLatency:
		return "latency"
	case ObjectiveEnergy:
		return "energy"
	default:
		return "edp"
	}
}

// Value extracts the objective's value from an evaluated point.
// Exported so callers ranking a design point outside a search — the
// fleet's repartitioning controller comparing the serving partition
// against a sweep winner — use the search's own convention.
func (o Objective) Value(p Point) float64 { return o.value(p) }

// value extracts the objective from a point.
func (o Objective) value(p Point) float64 {
	switch o {
	case ObjectiveLatency:
		return p.LatencySec
	case ObjectiveEnergy:
		return p.EnergyMJ
	default:
		return p.EDP
	}
}

// Options configures a search.
type Options struct {
	Strategy  Strategy
	Objective Objective
	Samples   int   // number of random samples (Random strategy); 0 = 32
	Seed      int64 // random-search seed

	Sched sched.Options

	// Workers bounds the scheduling goroutines; 0 = GOMAXPROCS.
	Workers int

	// BestOnly drops the per-point design cloud: Result.Points and
	// Result.Pareto stay nil (TopK over the cloud is unavailable) and
	// only Best plus the Explored/Pruned counters are returned. Sweep
	// memory becomes O(workers) instead of O(space) — the right mode
	// for online re-sweeps that only need the winning partition.
	BestOnly bool

	// Prune enables bound-based pruning: partitions whose objective
	// lower bound (computed from cost-model columns alone, no
	// scheduling) cannot beat the best value seen so far are skipped.
	// Pruning provably never changes Best (see bound.go). It requires
	// BestOnly — when the full design cloud / Pareto front is
	// requested, pruning is automatically disabled, because skipped
	// points could be cloud or front members.
	Prune bool

	// MaxSegments adds the segment-cut search axis: after the partition
	// sweep picks Best, every distinct workload model's fusion cuts are
	// searched on the winning HDA (see PlanSegments) and the winners
	// returned in Result.SegmentPlans, each with at most this many
	// segments. The cut search is a per-model post-pass over the
	// already-interned cost columns — it never alters which partitions
	// are scheduled or pruned, so the partition sweep (Best, Explored,
	// Pruned, and all prune decisions) stays bit-identical to a
	// cut-free search. 0 or 1 disables the axis (unfused plans).
	MaxSegments int
}

// DefaultOptions returns an exhaustive search with Herald's default
// scheduler.
func DefaultOptions() Options {
	return Options{Strategy: Exhaustive, Sched: sched.DefaultOptions()}
}

// Point is one evaluated design: a concrete HDA partition with its
// optimized schedule and aggregate costs (one dot in Fig. 6 / Fig. 11).
type Point struct {
	HDA      *accel.HDA
	Schedule *sched.Schedule

	LatencySec float64
	EnergyMJ   float64
	EDP        float64 // joule-seconds at 1 GHz
}

// Result is the outcome of a search.
type Result struct {
	Space  Space
	Points []Point // in deterministic enumeration order; nil under BestOnly
	Best   Point   // minimizes Options.Objective (EDP by default)
	Pareto []Point // latency-energy non-dominated set, by latency; nil under BestOnly

	// Explored counts fully-scheduled partitions; Pruned counts those
	// the objective lower bound skipped. Explored+Pruned is the whole
	// enumerated space (Pruned is always 0 unless Prune && BestOnly).
	Explored int
	Pruned   int

	// SegmentPlans maps each distinct workload model to its winning
	// fusion cut on Best.HDA; nil unless Options.MaxSegments > 1.
	SegmentPlans map[string]SegmentPlan
}

// Search explores the space, scheduling workload w on every candidate
// partition, and returns the evaluated design cloud. It is the
// one-shot form of NewSweeper + Sweep; callers that re-sweep (serving
// fleets probing repartitioning) should hold a Sweeper instead.
func Search(cache *maestro.Cache, sp Space, w *workload.Workload, opts Options) (*Result, error) {
	sw, err := NewSweeper(cache, sp, opts)
	if err != nil {
		return nil, err
	}
	return sw.Sweep(w)
}

// TopK returns the k best evaluated points under the objective, best
// first, breaking ties toward the earlier enumeration index (the same
// convention as Result.Best, so TopK(o, 1)[0] == Best when o is the
// search objective). k beyond the design cloud returns every point;
// k <= 0 (or a BestOnly result, which retains no cloud) returns nil.
// Heterogeneous serving fleets take their replica HDAs from this
// list: the runner-up partitions trade the bootstrap workload's
// optimum for dataflow diversity.
func (r *Result) TopK(o Objective, k int) []Point {
	if k <= 0 || len(r.Points) == 0 {
		return nil
	}
	if k > len(r.Points) {
		k = len(r.Points)
	}
	idx := make([]int, len(r.Points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return betterPoint(o, r.Points[idx[a]], idx[a], r.Points[idx[b]], idx[b])
	})
	out := make([]Point, k)
	for i := 0; i < k; i++ {
		out[i] = r.Points[idx[i]]
	}
	return out
}

// betterPoint reports whether point p (at enumeration index pi) beats
// q (at qi) under the objective, breaking ties toward the earlier
// index so parallel searches reproduce the sequential choice.
func betterPoint(o Objective, p Point, pi int, q Point, qi int) bool {
	pv, qv := o.value(p), o.value(q)
	if pv != qv {
		return pv < qv
	}
	return pi < qi
}

// ParetoFront returns the latency-energy non-dominated subset of the
// points, sorted by latency ascending (energy ascending within equal
// latency). The scan is sort + single pass — O(n log n), never the
// O(n²) pairwise-dominance test — and sorts an index array so the
// points themselves are copied once, straight into the front.
func ParetoFront(points []Point) []Point {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := &points[idx[a]], &points[idx[b]]
		if pa.LatencySec != pb.LatencySec {
			return pa.LatencySec < pb.LatencySec
		}
		return pa.EnergyMJ < pb.EnergyMJ
	})
	var front []Point
	bestE := 0.0
	for _, i := range idx {
		p := &points[i]
		if len(front) == 0 || p.EnergyMJ < bestE {
			front = append(front, *p)
			bestE = p.EnergyMJ
		}
	}
	return front
}
