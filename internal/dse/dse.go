// Package dse implements Herald's hardware-resource-partitioning
// design space exploration (§IV-C): given an accelerator class, a set
// of sub-accelerator dataflow styles, and a workload, it enumerates PE
// and bandwidth partitions (Definition 1), schedules the workload on
// each point with Herald's scheduler, and reports the full design
// cloud, the latency-energy Pareto front, and the best-EDP design.
// Exhaustive search at user-set granularity is the default; binary
// sampling and random search trade optimality for speed, as in the
// paper.
package dse

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/maestro"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Strategy selects how the partition space is sampled.
type Strategy int

const (
	// Exhaustive enumerates every partition at the configured
	// granularity (the paper's default).
	Exhaustive Strategy = iota
	// Binary restricts each share to power-of-two unit counts,
	// "which significantly reduces the search time at the cost of
	// possible loss of globally optimal design points" (§IV-C).
	Binary
	// Random samples a fixed number of partitions uniformly (seeded,
	// reproducible).
	Random
)

func (s Strategy) String() string {
	switch s {
	case Exhaustive:
		return "exhaustive"
	case Binary:
		return "binary"
	case Random:
		return "random"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Space describes the searchable HDA design space for one class and
// one style combination.
type Space struct {
	Class  accel.Class
	Styles []dataflow.Style

	// PEUnits and BWUnits set the search granularity: the class's PEs
	// (bandwidth) are divided into this many equal units distributed
	// across sub-accelerators, each receiving at least one. Zero
	// selects the defaults (16 PE units, 8 BW units).
	PEUnits int
	BWUnits int
}

// Defaults fills zero-valued granularities.
func (sp Space) withDefaults() Space {
	if sp.PEUnits == 0 {
		sp.PEUnits = 16
	}
	if sp.BWUnits == 0 {
		sp.BWUnits = 8
	}
	return sp
}

// Validate reports whether the space is searchable.
func (sp Space) Validate() error {
	if err := sp.Class.Validate(); err != nil {
		return err
	}
	if len(sp.Styles) < 1 {
		return fmt.Errorf("dse: space needs at least one sub-accelerator style")
	}
	sp = sp.withDefaults()
	if len(sp.Styles) > sp.PEUnits || len(sp.Styles) > sp.BWUnits {
		return fmt.Errorf("dse: %d sub-accelerators exceed the %d PE / %d BW units",
			len(sp.Styles), sp.PEUnits, sp.BWUnits)
	}
	if sp.Class.PEs%sp.PEUnits != 0 {
		return fmt.Errorf("dse: class PEs %d not divisible into %d units", sp.Class.PEs, sp.PEUnits)
	}
	for _, st := range sp.Styles {
		if !st.Valid() {
			return fmt.Errorf("dse: invalid style in space")
		}
	}
	return nil
}

// Objective selects what Result.Best minimizes (§IV-D: "users can
// select the metric (e.g., EDP, energy, latency, and so on)").
type Objective int

const (
	// ObjectiveEDP minimizes the energy-delay product (default).
	ObjectiveEDP Objective = iota
	// ObjectiveLatency minimizes the schedule makespan.
	ObjectiveLatency
	// ObjectiveEnergy minimizes total energy.
	ObjectiveEnergy
)

func (o Objective) String() string {
	switch o {
	case ObjectiveLatency:
		return "latency"
	case ObjectiveEnergy:
		return "energy"
	default:
		return "edp"
	}
}

// value extracts the objective from a point.
func (o Objective) value(p Point) float64 {
	switch o {
	case ObjectiveLatency:
		return p.LatencySec
	case ObjectiveEnergy:
		return p.EnergyMJ
	default:
		return p.EDP
	}
}

// Options configures a search.
type Options struct {
	Strategy  Strategy
	Objective Objective
	Samples   int   // number of random samples (Random strategy); 0 = 32
	Seed      int64 // random-search seed

	Sched sched.Options

	// Workers bounds the scheduling goroutines; 0 = GOMAXPROCS.
	Workers int
}

// DefaultOptions returns an exhaustive search with Herald's default
// scheduler.
func DefaultOptions() Options {
	return Options{Strategy: Exhaustive, Sched: sched.DefaultOptions()}
}

// Point is one evaluated design: a concrete HDA partition with its
// optimized schedule and aggregate costs (one dot in Fig. 6 / Fig. 11).
type Point struct {
	HDA      *accel.HDA
	Schedule *sched.Schedule

	LatencySec float64
	EnergyMJ   float64
	EDP        float64 // joule-seconds at 1 GHz
}

// Result is the outcome of a search.
type Result struct {
	Space  Space
	Points []Point // in deterministic enumeration order
	Best   Point   // minimizes Options.Objective (EDP by default)
	Pareto []Point // latency-energy non-dominated set, by latency
}

// Search explores the space, scheduling workload w on every candidate
// partition, and returns the evaluated design cloud.
func Search(cache *maestro.Cache, sp Space, w *workload.Workload, opts Options) (*Result, error) {
	if w == nil || len(w.Instances) == 0 {
		return nil, fmt.Errorf("dse: nil or empty workload")
	}
	sp = sp.withDefaults()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Sched.Validate(); err != nil {
		return nil, err
	}

	parts, err := enumerate(sp, opts)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("dse: empty partition set for %s", sp.Class.Name)
	}

	points := make([]Point, len(parts))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(parts) {
		workers = len(parts)
	}

	// Each worker owns one scheduler (with its private L0 cost cache
	// and scratch state) for its whole share of the space, tracks its
	// local best point as results stream in, and checks the shared
	// stop flag so one failed partition short-circuits the rest of the
	// enumeration instead of burning the full space.
	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	bestIdx := make([]int, workers)
	work := make(chan int)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			s := sched.MustNew(cache, opts.Sched)
			best := -1
			for i := range work {
				if stop.Load() {
					continue // drain the channel without evaluating
				}
				p, err := evaluate(s, sp, w, parts[i], i)
				if err != nil {
					stop.Store(true)
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				points[i] = p
				if best < 0 || betterPoint(opts.Objective, p, i, points[best], best) {
					best = i
				}
			}
			bestIdx[wk] = best
		}(wk)
	}
	for i := range parts {
		if stop.Load() {
			break
		}
		work <- i
	}
	close(work)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}

	// Merge the workers' streamed bests: lowest objective, earliest
	// enumeration index on ties (identical to a sequential scan).
	res := &Result{Space: sp, Points: points}
	best := -1
	for _, bi := range bestIdx {
		if bi < 0 {
			continue
		}
		if best < 0 || betterPoint(opts.Objective, points[bi], bi, points[best], best) {
			best = bi
		}
	}
	res.Best = points[best]
	res.Pareto = ParetoFront(points)
	return res, nil
}

// TopK returns the k best evaluated points under the objective, best
// first, breaking ties toward the earlier enumeration index (the same
// convention as Result.Best, so TopK(o, 1)[0] == Best when o is the
// search objective). k beyond the design cloud returns every point;
// k <= 0 returns nil. Heterogeneous serving fleets take their replica
// HDAs from this list: the runner-up partitions trade the bootstrap
// workload's optimum for dataflow diversity.
func (r *Result) TopK(o Objective, k int) []Point {
	if k <= 0 || len(r.Points) == 0 {
		return nil
	}
	if k > len(r.Points) {
		k = len(r.Points)
	}
	idx := make([]int, len(r.Points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return betterPoint(o, r.Points[idx[a]], idx[a], r.Points[idx[b]], idx[b])
	})
	out := make([]Point, k)
	for i := 0; i < k; i++ {
		out[i] = r.Points[idx[i]]
	}
	return out
}

// betterPoint reports whether point p (at enumeration index pi) beats
// q (at qi) under the objective, breaking ties toward the earlier
// index so parallel searches reproduce the sequential choice.
func betterPoint(o Objective, p Point, pi int, q Point, qi int) bool {
	pv, qv := o.value(p), o.value(q)
	if pv != qv {
		return pv < qv
	}
	return pi < qi
}

// evaluate builds the HDA for one partition and schedules the workload
// on it with the calling worker's scheduler.
func evaluate(s *sched.Scheduler, sp Space, w *workload.Workload, part []int, idx int) (Point, error) {
	peUnit := sp.Class.PEs / sp.PEUnits
	bwUnit := sp.Class.BWGBps / float64(sp.BWUnits)
	n := len(sp.Styles)
	ps := make([]accel.Partition, n)
	for i := 0; i < n; i++ {
		ps[i] = accel.Partition{
			Style:  sp.Styles[i],
			PEs:    part[i] * peUnit,
			BWGBps: float64(part[n+i]) * bwUnit,
		}
	}
	h, err := accel.New(fmt.Sprintf("hda-%d", idx), sp.Class, ps)
	if err != nil {
		return Point{}, err
	}
	schd, err := s.Schedule(h, w)
	if err != nil {
		return Point{}, err
	}
	return Point{
		HDA:        h,
		Schedule:   schd,
		LatencySec: schd.LatencySeconds(1.0),
		EnergyMJ:   schd.EnergyMJ(),
		EDP:        schd.EDP(1.0),
	}, nil
}

// ParetoFront returns the latency-energy non-dominated subset of the
// points, sorted by latency ascending.
func ParetoFront(points []Point) []Point {
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].LatencySec != sorted[j].LatencySec {
			return sorted[i].LatencySec < sorted[j].LatencySec
		}
		return sorted[i].EnergyMJ < sorted[j].EnergyMJ
	})
	var front []Point
	bestE := 0.0
	for _, p := range sorted {
		if len(front) == 0 || p.EnergyMJ < bestE {
			front = append(front, p)
			bestE = p.EnergyMJ
		}
	}
	return front
}

// enumerate lists partitions as unit-count vectors: part[0:n] are PE
// units per sub-accelerator, part[n:2n] are BW units; each entry >= 1,
// sums equal the unit totals.
func enumerate(sp Space, opts Options) ([][]int, error) {
	n := len(sp.Styles)
	peComps := compositions(sp.PEUnits, n)
	bwComps := compositions(sp.BWUnits, n)

	switch opts.Strategy {
	case Binary:
		// The Binary strategy keeps only all-power-of-two shares. Some
		// granularities admit no such composition at all (e.g. 7 units
		// across 2 sub-accelerators: no pair of powers of two sums to
		// 7), which would otherwise surface as a confusing generic
		// "empty partition set" failure.
		if peComps = filterPow2(peComps); len(peComps) == 0 {
			return nil, binaryEmptyErr("PE", sp.PEUnits, n)
		}
		if bwComps = filterPow2(bwComps); len(bwComps) == 0 {
			return nil, binaryEmptyErr("bandwidth", sp.BWUnits, n)
		}
	case Random:
		k := opts.Samples
		if k <= 0 {
			k = 32
		}
		return randomPartitions(sp, k, opts.Seed), nil
	}

	out := make([][]int, 0, len(peComps)*len(bwComps))
	for _, pe := range peComps {
		for _, bw := range bwComps {
			part := make([]int, 2*n)
			copy(part, pe)
			copy(part[n:], bw)
			out = append(out, part)
		}
	}
	return out, nil
}

// binaryEmptyErr names the Binary pow2 constraint when it filters a
// resource's composition space to nothing. The suggested granularity
// is the smallest power of two >= units: any power-of-two total >= n
// splits greedily into n power-of-two parts (Space.Validate already
// guarantees units >= n).
func binaryEmptyErr(resource string, units, n int) error {
	pow2 := 1
	for pow2 < units {
		pow2 <<= 1
	}
	return fmt.Errorf("dse: Binary strategy requires every sub-accelerator's share to be a power of two, "+
		"but %d %s units cannot be split into %d power-of-two parts; "+
		"use a pow2-friendly granularity (e.g. %d units) or the Exhaustive/Random strategy",
		units, resource, n, pow2)
}

// compositions enumerates all ways to write `total` as an ordered sum
// of n parts, each >= 1.
func compositions(total, n int) [][]int {
	if n == 1 {
		return [][]int{{total}}
	}
	var out [][]int
	cur := make([]int, n)
	var rec func(pos, left int)
	rec = func(pos, left int) {
		if pos == n-1 {
			cur[pos] = left
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := 1; v <= left-(n-1-pos); v++ {
			cur[pos] = v
			rec(pos+1, left-v)
		}
	}
	rec(0, total)
	return out
}

// filterPow2 keeps compositions whose entries are all powers of two.
func filterPow2(comps [][]int) [][]int {
	var out [][]int
	for _, c := range comps {
		ok := true
		for _, v := range c {
			if v&(v-1) != 0 {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// randomPartitions samples k unit-count vectors uniformly from the
// composition space (with replacement; deterministic for a seed).
func randomPartitions(sp Space, k int, seed int64) [][]int {
	n := len(sp.Styles)
	r := rand.New(rand.NewSource(seed))
	sample := func(total int) []int {
		// Stars-and-bars: choose n-1 distinct cut points.
		cuts := r.Perm(total - 1)[: n-1 : n-1]
		sort.Ints(cuts)
		parts := make([]int, n)
		prev := 0
		for i, c := range cuts {
			parts[i] = c + 1 - prev
			prev = c + 1
		}
		parts[n-1] = total - prev
		return parts
	}
	out := make([][]int, k)
	for i := 0; i < k; i++ {
		part := make([]int, 2*n)
		copy(part, sample(sp.PEUnits))
		copy(part[n:], sample(sp.BWUnits))
		out[i] = part
	}
	return out
}
