package dse

import (
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/energy"
	"repro/internal/maestro"
	"repro/internal/workload"
)

// TestSearchFailFast: when a partition evaluation errors (here: a
// priority vector that cannot match the workload), the worker pool
// must short-circuit instead of evaluating the whole space, and
// Search must surface the error.
func TestSearchFailFast(t *testing.T) {
	cache := maestro.NewCache(energy.Default28nm())
	w := workload.MustNew("ff", []workload.Entry{{Model: "mobilenetv1", Batches: 2}})
	sp := Space{
		Class:  accel.Edge,
		Styles: []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao},
		// 15 PE x 7 BW compositions = 105 points: big enough that a
		// full evaluation would dwarf a short-circuited one.
		PEUnits: 16, BWUnits: 8,
	}
	opts := DefaultOptions()
	opts.Sched.Priorities = []int{1} // 1 priority, 2 instances: every evaluate fails

	start := time.Now()
	_, err := Search(cache, sp, w, opts)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Search succeeded with an invalid priority vector")
	}

	// Reference: how long does the full healthy space take? The failed
	// search must not have paid anything close to it (each worker may
	// finish its in-flight evaluation, nothing more).
	opts.Sched.Priorities = nil
	healthyStart := time.Now()
	if _, err := Search(cache, sp, w, opts); err != nil {
		t.Fatal(err)
	}
	healthy := time.Since(healthyStart)
	if elapsed > healthy {
		t.Errorf("failed search took %v, longer than evaluating the whole space (%v): no short-circuit", elapsed, healthy)
	}
}

// TestSearchWorkerCountInvariance: the streamed per-worker Best
// tracking and its merge must reproduce the sequential scan's result
// (lowest objective, earliest enumeration index on ties) for any
// worker count.
func TestSearchWorkerCountInvariance(t *testing.T) {
	cache := maestro.NewCache(energy.Default28nm())
	w := workload.MustNew("inv", []workload.Entry{
		{Model: "mobilenetv1", Batches: 1},
		{Model: "brq-handpose", Batches: 1},
	})
	sp := Space{
		Class:   accel.Edge,
		Styles:  []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao},
		PEUnits: 8, BWUnits: 4,
	}

	var ref *Result
	for _, workers := range []int{1, 2, 7} {
		opts := DefaultOptions()
		opts.Workers = workers
		res, err := Search(cache, sp, w, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Points) != len(ref.Points) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(res.Points), len(ref.Points))
		}
		for i := range res.Points {
			if res.Points[i].EDP != ref.Points[i].EDP ||
				res.Points[i].LatencySec != ref.Points[i].LatencySec ||
				res.Points[i].EnergyMJ != ref.Points[i].EnergyMJ {
				t.Fatalf("workers=%d: point %d differs from workers=1", workers, i)
			}
		}
		if res.Best.HDA.Name != ref.Best.HDA.Name || res.Best.EDP != ref.Best.EDP {
			t.Errorf("workers=%d: best %s (EDP %g) != reference best %s (EDP %g)",
				workers, res.Best.HDA.Name, res.Best.EDP, ref.Best.HDA.Name, ref.Best.EDP)
		}
		if len(res.Pareto) != len(ref.Pareto) {
			t.Errorf("workers=%d: Pareto size %d != %d", workers, len(res.Pareto), len(ref.Pareto))
		}
	}
}
