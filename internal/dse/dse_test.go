package dse

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/energy"
	"repro/internal/maestro"
	"repro/internal/sched"
	"repro/internal/workload"
)

func testCache() *maestro.Cache { return maestro.NewCache(energy.Default28nm()) }

func smallWorkload() *workload.Workload {
	return workload.MustNew("dse-test", []workload.Entry{
		{Model: "mobilenetv1", Batches: 2},
		{Model: "brq-handpose", Batches: 2},
	})
}

func edgeSpace() Space {
	return Space{
		Class:   accel.Edge,
		Styles:  []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao},
		PEUnits: 8,
		BWUnits: 4,
	}
}

func TestCompositions(t *testing.T) {
	cases := []struct {
		total, n, count int
	}{
		{8, 2, 7}, // (1,7)...(7,1)
		{16, 2, 15},
		{8, 3, 21}, // C(7,2)
		{4, 1, 1},
		{3, 3, 1},
	}
	for _, c := range cases {
		got := compositions(c.total, c.n)
		if len(got) != c.count {
			t.Errorf("compositions(%d,%d) = %d entries, want %d", c.total, c.n, len(got), c.count)
		}
		for _, comp := range got {
			sum := 0
			for _, v := range comp {
				if v < 1 {
					t.Errorf("composition %v has part < 1", comp)
				}
				sum += v
			}
			if sum != c.total {
				t.Errorf("composition %v sums to %d, want %d", comp, sum, c.total)
			}
		}
	}
}

func TestFilterPow2(t *testing.T) {
	in := compositions(8, 2)
	out := filterPow2(in)
	// valid: (4,4) plus pairs with a non-pow2 partner excluded:
	// (1,7)x (2,6)x (3,5)x (4,4)ok (5,3)x (6,2)x (7,1)x
	if len(out) != 1 || out[0][0] != 4 {
		t.Errorf("filterPow2(8,2) = %v, want [[4 4]]", out)
	}
	out16 := filterPow2(compositions(16, 2))
	// (8,8) only? (4,12)x (12,4)x (2,14)x (16,0) not enumerated.
	if len(out16) != 1 {
		t.Errorf("filterPow2(16,2) = %v", out16)
	}
}

func TestSearchExhaustive(t *testing.T) {
	res, err := Search(testCache(), edgeSpace(), smallWorkload(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if want := 7 * 3; len(res.Points) != want {
		t.Errorf("explored %d points, want %d (7 PE splits x 3 BW splits)", len(res.Points), want)
	}
	for i, p := range res.Points {
		if p.HDA == nil || p.Schedule == nil {
			t.Fatalf("point %d incomplete", i)
		}
		if err := p.Schedule.Validate(); err != nil {
			t.Errorf("point %d: %v", i, err)
		}
		if p.EDP <= 0 || p.LatencySec <= 0 || p.EnergyMJ <= 0 {
			t.Errorf("point %d: non-positive metrics %+v", i, p)
		}
		if p.EDP < res.Best.EDP {
			t.Errorf("Best is not minimal: point %d EDP %g < best %g", i, p.EDP, res.Best.EDP)
		}
	}
	if len(res.Pareto) < 1 {
		t.Fatal("empty Pareto front")
	}
	// Pareto front must be sorted by latency with strictly decreasing
	// energy, and must contain the best-EDP point... not necessarily;
	// but every front point must be non-dominated.
	for i := 1; i < len(res.Pareto); i++ {
		if res.Pareto[i].LatencySec < res.Pareto[i-1].LatencySec {
			t.Error("Pareto front not sorted by latency")
		}
		if res.Pareto[i].EnergyMJ >= res.Pareto[i-1].EnergyMJ {
			t.Error("Pareto front energy not strictly decreasing")
		}
	}
	for _, fp := range res.Pareto {
		for _, p := range res.Points {
			if p.LatencySec < fp.LatencySec && p.EnergyMJ < fp.EnergyMJ {
				t.Errorf("front point (%.4g,%.4g) dominated by (%.4g,%.4g)",
					fp.LatencySec, fp.EnergyMJ, p.LatencySec, p.EnergyMJ)
			}
		}
	}
}

func TestSearchBinarySubsetOfExhaustive(t *testing.T) {
	cache := testCache()
	w := smallWorkload()
	ex, err := Search(cache, edgeSpace(), w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Strategy = Binary
	bin, err := Search(cache, edgeSpace(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin.Points) >= len(ex.Points) {
		t.Errorf("binary (%d) should explore fewer points than exhaustive (%d)", len(bin.Points), len(ex.Points))
	}
	// The binary best can't beat the exhaustive best.
	if bin.Best.EDP < ex.Best.EDP*0.999999 {
		t.Errorf("binary best %g beats exhaustive best %g", bin.Best.EDP, ex.Best.EDP)
	}
}

func TestSearchRandomDeterministic(t *testing.T) {
	cache := testCache()
	w := smallWorkload()
	opts := DefaultOptions()
	opts.Strategy = Random
	opts.Samples = 6
	opts.Seed = 42
	a, err := Search(cache, edgeSpace(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != 6 {
		t.Errorf("random explored %d, want 6", len(a.Points))
	}
	b, err := Search(cache, edgeSpace(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i].EDP != b.Points[i].EDP {
			t.Error("random search not reproducible for a fixed seed")
		}
	}
}

func TestSearchRejectsBadInputs(t *testing.T) {
	cache := testCache()
	w := smallWorkload()
	if _, err := Search(cache, edgeSpace(), nil, DefaultOptions()); err == nil {
		t.Error("nil workload accepted")
	}
	bad := edgeSpace()
	bad.Styles = nil
	if _, err := Search(cache, bad, w, DefaultOptions()); err == nil {
		t.Error("empty styles accepted")
	}
	bad = edgeSpace()
	bad.PEUnits = 3 // 1024 % 3 != 0
	if _, err := Search(cache, bad, w, DefaultOptions()); err == nil {
		t.Error("non-divisible granularity accepted")
	}
	bad = edgeSpace()
	bad.Styles = []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao, dataflow.Eyeriss}
	bad.BWUnits = 2
	if _, err := Search(cache, bad, w, DefaultOptions()); err == nil {
		t.Error("more subs than BW units accepted")
	}
	o := DefaultOptions()
	o.Sched.LoadBalanceFactor = 0
	if _, err := Search(cache, edgeSpace(), w, o); err == nil {
		t.Error("invalid sched options accepted")
	}
}

// TestFigure6Shape reproduces Figure 6's headline: on a 2-way
// NVDLA+Shi-diannao HDA, the even PE split is not the optimum — a
// skewed partition has lower EDP.
func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("DSE sweep in -short mode")
	}
	cache := testCache()
	// Edge class keeps the sweep fast; Fig. 6 uses cloud but the
	// non-trivial-partition property is scale-independent.
	sp := Space{
		Class:   accel.Edge,
		Styles:  []dataflow.Style{dataflow.ShiDiannao, dataflow.NVDLA},
		PEUnits: 8,
		BWUnits: 2, // naive bandwidth halving, as in Fig. 6
	}
	opts := DefaultOptions()
	res, err := Search(cache, sp, workload.ARVRA(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Find the even-PE point (4/4 units with the even BW split).
	var even *Point
	for i := range res.Points {
		h := res.Points[i].HDA
		if h.Subs[0].HW.PEs == h.Subs[1].HW.PEs && h.Subs[0].HW.BWGBps == h.Subs[1].HW.BWGBps {
			even = &res.Points[i]
		}
	}
	if even == nil {
		t.Fatal("even split missing from exhaustive sweep")
	}
	if res.Best.EDP >= even.EDP {
		t.Errorf("even PE split should be sub-optimal: best %.4g vs even %.4g (Fig. 6)", res.Best.EDP, even.EDP)
	}
	best := res.Best.HDA
	if best.Subs[0].HW.PEs == best.Subs[1].HW.PEs {
		t.Error("best partition is the even split; Fig. 6 expects a skewed optimum")
	}
}

func TestStrategyString(t *testing.T) {
	if Exhaustive.String() != "exhaustive" || Binary.String() != "binary" || Random.String() != "random" {
		t.Error("strategy names")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy should stringify")
	}
}

// TestSearchThreeWay exercises the 3-sub-accelerator composition space
// (the paper's NVDLA+Shi+Eyeriss HDA).
func TestSearchThreeWay(t *testing.T) {
	sp := Space{
		Class:   accel.Edge,
		Styles:  []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao, dataflow.Eyeriss},
		PEUnits: 4,
		BWUnits: 3,
	}
	res, err := Search(testCache(), sp, smallWorkload(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// compositions(4,3) = C(3,2) = 3; compositions(3,3) = 1.
	if len(res.Points) != 3 {
		t.Errorf("points = %d, want 3", len(res.Points))
	}
	for _, p := range res.Points {
		if p.HDA.NumSubs() != 3 {
			t.Error("not a 3-way HDA")
		}
		if err := p.Schedule.Validate(); err != nil {
			t.Error(err)
		}
	}
}

// TestSearchSingleWorker: Workers=1 must produce identical results to
// the parallel default (determinism across worker counts).
func TestSearchSingleWorker(t *testing.T) {
	cache := testCache()
	w := smallWorkload()
	par, err := Search(cache, edgeSpace(), w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Workers = 1
	seq, err := Search(cache, edgeSpace(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Points) != len(seq.Points) {
		t.Fatal("point counts differ")
	}
	for i := range par.Points {
		if par.Points[i].EDP != seq.Points[i].EDP {
			t.Fatalf("point %d differs across worker counts", i)
		}
	}
}

var _ = sched.DefaultOptions // keep import if unused in some builds
