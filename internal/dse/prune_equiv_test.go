package dse

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/dataflow"
	"repro/internal/workload"
)

// The equivalence guard of the pruned sweep (same spirit as the
// scheduler's golden/equivalence tests): over the seed spaces, every
// strategy and every objective, a pruned BestOnly search must return a
// Best point bit-identical to the unpruned full search's, and a Prune
// request without BestOnly must fall back to full evaluation with
// identical Points, TopK and Pareto front.

func equivSpaces() []Space {
	return []Space{
		edgeSpace(), // 2-way, 8x4
		{Class: accel.Edge,
			Styles:  []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao, dataflow.Eyeriss},
			PEUnits: 8, BWUnits: 4}, // 3-way
		{Class: accel.Mobile,
			Styles:  []dataflow.Style{dataflow.ShiDiannao, dataflow.NVDLA},
			PEUnits: 8, BWUnits: 8}, // pow2-friendly for Binary
	}
}

func samePoint(t *testing.T, label string, a, b Point) {
	t.Helper()
	if a.HDA.Name != b.HDA.Name || a.HDA.String() != b.HDA.String() {
		t.Errorf("%s: HDA %v (%s) != %v (%s)", label, a.HDA, a.HDA.Name, b.HDA, b.HDA.Name)
	}
	if a.LatencySec != b.LatencySec || a.EnergyMJ != b.EnergyMJ || a.EDP != b.EDP {
		t.Errorf("%s: metrics (%g,%g,%g) != (%g,%g,%g)",
			label, a.LatencySec, a.EnergyMJ, a.EDP, b.LatencySec, b.EnergyMJ, b.EDP)
	}
}

func TestPrunedSearchEquivalence(t *testing.T) {
	cache := testCache()
	w := workload.MustNew("equiv", []workload.Entry{
		{Model: "mobilenetv1", Batches: 2},
		{Model: "brq-handpose", Batches: 1},
	})
	for _, sp := range equivSpaces() {
		for _, strat := range []Strategy{Exhaustive, Binary, Random} {
			for _, obj := range []Objective{ObjectiveEDP, ObjectiveLatency, ObjectiveEnergy} {
				label := sp.Class.Name + "/" + strat.String() + "/" + obj.String()

				base := DefaultOptions()
				base.Strategy = strat
				base.Objective = obj
				base.Samples = 10
				base.Seed = 5

				full, err := Search(cache, sp, w, base)
				if err != nil {
					t.Fatalf("%s: unpruned: %v", label, err)
				}

				// Pruned best-only search: identical Best.
				pruned := base
				pruned.Prune = true
				pruned.BestOnly = true
				fast, err := Search(cache, sp, w, pruned)
				if err != nil {
					t.Fatalf("%s: pruned: %v", label, err)
				}
				samePoint(t, label+"/best", fast.Best, full.Best)
				samePoint(t, label+"/best-vs-top1", fast.Best, full.TopK(obj, 1)[0])
				if fast.Explored+fast.Pruned != full.Explored {
					t.Errorf("%s: pruned coverage %d+%d != space %d",
						label, fast.Explored, fast.Pruned, full.Explored)
				}
				if fast.Points != nil || fast.Pareto != nil {
					t.Errorf("%s: BestOnly retained a cloud (%d points, %d front)",
						label, len(fast.Points), len(fast.Pareto))
				}

				// Prune without BestOnly: the full front is requested, so
				// pruning must disable itself and everything matches.
				cloud := base
				cloud.Prune = true
				wide, err := Search(cache, sp, w, cloud)
				if err != nil {
					t.Fatalf("%s: prune-with-cloud: %v", label, err)
				}
				if wide.Pruned != 0 {
					t.Errorf("%s: pruning fired (%d) despite a requested Pareto front", label, wide.Pruned)
				}
				if len(wide.Points) != len(full.Points) {
					t.Fatalf("%s: cloud %d points != %d", label, len(wide.Points), len(full.Points))
				}
				for i := range full.Points {
					samePoint(t, label+"/cloud", wide.Points[i], full.Points[i])
				}
				if len(wide.Pareto) != len(full.Pareto) {
					t.Fatalf("%s: Pareto %d != %d", label, len(wide.Pareto), len(full.Pareto))
				}
				for i := range full.Pareto {
					samePoint(t, label+"/pareto", wide.Pareto[i], full.Pareto[i])
				}
				wantTop := full.TopK(obj, 3)
				gotTop := wide.TopK(obj, 3)
				for i := range wantTop {
					samePoint(t, label+"/topk", gotTop[i], wantTop[i])
				}
			}
		}
	}
}

// TestBoundIsSound: on every point of a full sweep, the objective
// lower bound must not exceed the point's true objective — the
// property the pruning-identity argument rests on.
func TestBoundIsSound(t *testing.T) {
	cache := testCache()
	w := smallWorkload()
	sp := edgeSpace()
	for _, obj := range []Objective{ObjectiveEDP, ObjectiveLatency, ObjectiveEnergy} {
		opts := DefaultOptions()
		opts.Objective = obj
		sw, err := NewSweeper(cache, sp, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sw.Sweep(w)
		if err != nil {
			t.Fatal(err)
		}
		wk := sw.workers[0]
		i := 0
		streamPartitions(sw.sp, sw.opts, func(idx int, part []int) bool {
			key := wk.partKey(part)
			h, err := wk.hda(sw.sp, key, part, idx)
			if err != nil {
				t.Fatal(err)
			}
			v := obj.value(res.Points[idx])
			if bound := wk.lowerBound(obj, h, key, w); bound > v {
				t.Errorf("%s: point %d bound %g exceeds objective %g", obj, idx, bound, v)
			}
			i++
			return true
		})
		if i != len(res.Points) {
			t.Fatalf("checked %d of %d points", i, len(res.Points))
		}
	}
}

// TestPrunedSweepPrunes: on the seed space the bound must actually
// fire for a meaningful share of the partitions (otherwise the fast
// path is dead weight) — and the winner must still match.
func TestPrunedSweepPrunes(t *testing.T) {
	cache := testCache()
	w := smallWorkload()
	opts := DefaultOptions()
	opts.Prune = true
	opts.BestOnly = true
	res, err := Search(cache, edgeSpace(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned == 0 {
		t.Logf("warning: bound pruned nothing on the seed space (explored %d)", res.Explored)
	}
	if res.Explored+res.Pruned != 21 {
		t.Errorf("coverage %d+%d != 21", res.Explored, res.Pruned)
	}
}
