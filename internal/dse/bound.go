package dse

import (
	"math"
	"sync/atomic"

	"repro/internal/accel"
	"repro/internal/dnn"
	"repro/internal/maestro"
	"repro/internal/workload"
)

// Bound-based pruning (Options.Prune): before scheduling a partition,
// the sweep computes lower bounds on the objective from cost-model
// columns alone — no scheduling — and skips the full evaluation when
// a bound cannot beat the best value any worker has seen so far.
//
// The bound uses each sub-accelerator's actual substrate columns —
// the very columns the scheduler needs anyway, so when it fails to
// prune, the cost-model work is reused by the evaluation. (A cheaper
// bandwidth-independent tier — every sub-accelerator priced at the
// full class bandwidth — was tried and pruned nothing: shared-NoC
// shares are small enough that full-bandwidth latencies flatten the
// whole space below any real objective value.)
//
// Soundness. For any legal schedule on a partition:
//
//   - every layer executes on some sub-accelerator, so its cycles
//     (energy) are >= the minimum across that partition's
//     sub-accelerators of the layer's cost-model cycles (energy);
//   - an instance's layers form a dependence chain, so its completion
//     is >= arrival + the sum of its per-layer cycle minima, and the
//     makespan >= the maximum of that over instances;
//   - every assigned cycle occupies one of nAcc sub-accelerators
//     within [0, makespan], so makespan >= ceil(sum of all per-layer
//     cycle minima / nAcc);
//   - total energy >= the sum of per-layer energy minima. The energy
//     sum is scaled by (1 - 1e-9) to absorb float summation-order
//     differences against the scheduler's commit-order accumulation
//     (the terms are exact per-layer minima; only association
//     differs, which is orders of magnitude below the slack).
//
// The objective bounds compose from these: latency uses the cycle
// bound at the same 1 GHz conversion Point uses; energy uses the
// energy bound; EDP multiplies the two (IEEE multiplication of
// positive values is monotone, so the product of lower bounds is a
// lower bound of the product).
//
// Why pruning provably cannot change Best: a partition is skipped only
// when some valid bound > current-best value. Since current-best >=
// the true optimum v*, a skipped partition has objective >= bound >
// v* — it is not an optimum. Every partition achieving v* has bound
// <= v* <= current-best at any moment, so it is always evaluated; the
// best-value set is evaluated in full and the earliest-index tie-break
// reproduces the unpruned choice exactly. (The skip test is strictly
// ">": with ">=", a partition whose bound coincides with its own
// optimal objective could be skipped after another optimum was found,
// losing the index tie-break.)

// energySlack absorbs summation-order float differences between the
// bound's per-layer energy sum and the scheduler's commit-order sum.
const energySlack = 1 - 1e-9

// bestTracker shares the lowest objective value seen across sweep
// workers (float64 bits in an atomic, updated by CAS-min on the
// decoded values; objective values are non-negative).
type bestTracker struct {
	bits atomic.Uint64
}

func newBestTracker() *bestTracker {
	t := &bestTracker{}
	t.bits.Store(math.Float64bits(math.Inf(1)))
	return t
}

func (t *bestTracker) load() float64 { return math.Float64frombits(t.bits.Load()) }

// offer lowers the shared best to v if v is smaller (CAS-min loop).
func (t *bestTracker) offer(v float64) {
	for {
		old := t.bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if t.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// modelBound is one model's scheduling-free summary on one substrate
// set: the dependence-chain cycle bound (sum over layers of the
// cheapest sub-accelerator's cycles) and the matching per-layer
// energy-minimum sum. Worker-private memoization makes repeated
// re-sweeps (fleet.Resweep, figure sweeps over several workloads)
// reuse the arithmetic; the cost columns underneath are interned in
// the shared maestro cache.
type modelBound struct {
	chainCycles int64
	energyPJ    float64
}

// boundKey identifies a memoized model bound: the packed unit vector
// of the partition plus the interned model.
type boundKey struct {
	part  string
	model *dnn.Model
}

// minsOver folds per-layer cycle/energy minima across a column set
// into a modelBound.
func minsOver(cols [][]*maestro.Cost, layers int) modelBound {
	var mb modelBound
	for li := 0; li < layers; li++ {
		minC := cols[0][li].Cycles
		minE := cols[0][li].Energy.Total()
		for a := 1; a < len(cols); a++ {
			if c := cols[a][li].Cycles; c < minC {
				minC = c
			}
			if e := cols[a][li].Energy.Total(); e < minE {
				minE = e
			}
		}
		mb.chainCycles += minC
		mb.energyPJ += minE
	}
	return mb
}

// aggregate folds per-instance model bounds into the objective bound.
func aggregate(o Objective, w *workload.Workload, nAcc int, mbOf func(*dnn.Model) modelBound) float64 {
	var maxChain, totalCycles int64
	var totalE float64
	for i := range w.Instances {
		in := &w.Instances[i]
		mb := mbOf(in.Model)
		if c := in.ArrivalCycle + mb.chainCycles; c > maxChain {
			maxChain = c
		}
		totalCycles += mb.chainCycles
		totalE += mb.energyPJ
	}
	n := int64(nAcc)
	if perAcc := (totalCycles + n - 1) / n; perAcc > maxChain {
		maxChain = perAcc
	}
	latLB := float64(maxChain) / 1e9 // Point.LatencySec at the 1 GHz reference
	energyLB := totalE * energySlack
	switch o {
	case ObjectiveLatency:
		return latLB
	case ObjectiveEnergy:
		return energyLB * 1e-9 // Point.EnergyMJ
	default: // EDP, joule-seconds: EnergyPJ * 1e-12 * LatencySec
		return energyLB * 1e-12 * latLB
	}
}

// lowerBound computes the objective bound from each sub-accelerator's
// actual substrate columns (the ones a subsequent evaluation reuses),
// memoized per (partition, model).
func (wk *sweepWorker) lowerBound(o Objective, h *accel.HDA, part string, w *workload.Workload) float64 {
	return aggregate(o, w, len(h.Subs), func(m *dnn.Model) modelBound {
		key := boundKey{part: part, model: m}
		if mb, ok := wk.bounds[key]; ok {
			return mb
		}
		mb := minsOver(wk.colsFor(h, m), len(m.Layers))
		wk.bounds[key] = mb
		return mb
	})
}
