package dse

import (
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/dataflow"
)

// TestBinaryEmptyCompositionError: a granularity with no
// all-power-of-two composition must fail with an error naming the
// Binary pow2 constraint, not the generic "empty partition set"
// (regression: enumerate used to silently filter to nothing).
func TestBinaryEmptyCompositionError(t *testing.T) {
	sp := edgeSpace()
	sp.BWUnits = 7 // 7 = no sum of two powers of two
	opts := DefaultOptions()
	opts.Strategy = Binary
	_, err := Search(testCache(), sp, smallWorkload(), opts)
	if err == nil {
		t.Fatal("Binary search over an un-splittable granularity succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "power of two") {
		t.Errorf("error does not name the pow2 constraint: %q", msg)
	}
	if strings.Contains(msg, "empty partition set") {
		t.Errorf("still the generic empty-partition error: %q", msg)
	}
	if !strings.Contains(msg, "7 bandwidth units") {
		t.Errorf("error does not name the offending granularity: %q", msg)
	}

	// A PE-side failure must be detected too (mobile: 4096 PEs are
	// divisible by 7... they are not; use 2 styles with PEUnits 11 on
	// a divisible budget). 11 has no 2-part pow2 composition and
	// divides nothing pow2-sized, so build a custom class.
	spPE := Space{
		Class:   accel.Class{Name: "custom", PEs: 1100, BWGBps: 16, GlobalBufBytes: 4 << 20},
		Styles:  []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao},
		PEUnits: 11,
		BWUnits: 4,
	}
	_, err = Search(testCache(), spPE, smallWorkload(), opts)
	if err == nil || !strings.Contains(err.Error(), "11 PE units") {
		t.Errorf("PE-side pow2 failure not named: %v", err)
	}
}

// TestBinaryStillWorksOnPow2Friendly: the detection must not reject
// granularities that do have pow2 compositions.
func TestBinaryStillWorksOnPow2Friendly(t *testing.T) {
	opts := DefaultOptions()
	opts.Strategy = Binary
	res, err := Search(testCache(), edgeSpace(), smallWorkload(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
}

// checkComposition asserts a partition's unit vectors are valid
// compositions: every share >= 1 and the halves sum to the unit
// totals.
func checkComposition(t *testing.T, sp Space, part []int) {
	t.Helper()
	n := len(sp.Styles)
	if len(part) != 2*n {
		t.Fatalf("partition length %d, want %d", len(part), 2*n)
	}
	sumPE, sumBW := 0, 0
	for i := 0; i < n; i++ {
		if part[i] < 1 {
			t.Errorf("PE share %d < 1 in %v", part[i], part)
		}
		if part[n+i] < 1 {
			t.Errorf("BW share %d < 1 in %v", part[n+i], part)
		}
		sumPE += part[i]
		sumBW += part[n+i]
	}
	if sumPE != sp.PEUnits {
		t.Errorf("PE shares sum to %d, want %d (%v)", sumPE, sp.PEUnits, part)
	}
	if sumBW != sp.BWUnits {
		t.Errorf("BW shares sum to %d, want %d (%v)", sumBW, sp.BWUnits, part)
	}
}

// TestRandomSameSeedIdentical: a fixed Seed must reproduce the exact
// partition sequence and the same Best point.
func TestRandomSameSeedIdentical(t *testing.T) {
	sp := edgeSpace()
	opts := DefaultOptions()
	opts.Strategy = Random
	opts.Samples = 12
	opts.Seed = 99

	partsA, err := enumerate(sp.withDefaults(), opts)
	if err != nil {
		t.Fatal(err)
	}
	partsB, err := enumerate(sp.withDefaults(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(partsA) != 12 || len(partsB) != 12 {
		t.Fatalf("sampled %d/%d partitions, want 12", len(partsA), len(partsB))
	}
	for i := range partsA {
		for j := range partsA[i] {
			if partsA[i][j] != partsB[i][j] {
				t.Fatalf("partition %d differs across same-seed runs: %v vs %v", i, partsA[i], partsB[i])
			}
		}
	}

	cache := testCache()
	resA, err := Search(cache, sp, smallWorkload(), opts)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Search(cache, sp, smallWorkload(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Best.EDP != resB.Best.EDP || resA.Best.HDA.String() != resB.Best.HDA.String() {
		t.Errorf("Best differs across same-seed runs: %v vs %v", resA.Best.HDA, resB.Best.HDA)
	}
}

// TestRandomSeedsValidCompositions: across many seeds, every sampled
// partition must be a valid composition — including the degenerate
// PEUnits == len(Styles) space where each sub-accelerator gets
// exactly one unit.
func TestRandomSeedsValidCompositions(t *testing.T) {
	spaces := []Space{
		edgeSpace(),
		{ // PEUnits == len(Styles): the only composition is (1,1)
			Class:   accel.Edge,
			Styles:  []dataflow.Style{dataflow.NVDLA, dataflow.ShiDiannao},
			PEUnits: 2,
			BWUnits: 2,
		},
	}
	opts := DefaultOptions()
	opts.Strategy = Random
	opts.Samples = 8
	for _, sp := range spaces {
		sp = sp.withDefaults()
		for seed := int64(0); seed < 20; seed++ {
			opts.Seed = seed
			parts, err := enumerate(sp, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(parts) != opts.Samples {
				t.Fatalf("seed %d: %d partitions, want %d", seed, len(parts), opts.Samples)
			}
			for _, part := range parts {
				checkComposition(t, sp, part)
			}
		}
	}

	// The degenerate space must survive a full Search too.
	res, err := Search(testCache(), spaces[1], smallWorkload(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.HDA.Subs[0].HW.PEs != accel.Edge.PEs/2 || p.HDA.Subs[1].HW.PEs != accel.Edge.PEs/2 {
			t.Errorf("PEUnits==len(Styles): uneven forced split %v", p.HDA)
		}
	}
}

// TestObjectiveLatencyPicksLatencyMinimal: with ObjectiveLatency the
// search's Best must be exactly the latency-minimal explored point
// (regression for the Result.Best doc that claimed "minimum EDP"
// unconditionally).
func TestObjectiveLatencyPicksLatencyMinimal(t *testing.T) {
	opts := DefaultOptions()
	opts.Objective = ObjectiveLatency
	res, err := Search(testCache(), edgeSpace(), smallWorkload(), opts)
	if err != nil {
		t.Fatal(err)
	}
	minLat := res.Points[0].LatencySec
	for _, p := range res.Points {
		if p.LatencySec < minLat {
			minLat = p.LatencySec
		}
	}
	if res.Best.LatencySec != minLat {
		t.Errorf("Best latency %g, want the minimal %g", res.Best.LatencySec, minLat)
	}
}
