package dse

import "testing"

// TestObjectiveSelection: the Best point must minimize the configured
// objective, and the three objectives must be able to disagree (the
// Pareto trade-off exists).
func TestObjectiveSelection(t *testing.T) {
	cache := testCache()
	w := smallWorkload()
	bests := map[Objective]Point{}
	for _, obj := range []Objective{ObjectiveEDP, ObjectiveLatency, ObjectiveEnergy} {
		opts := DefaultOptions()
		opts.Objective = obj
		res, err := Search(cache, edgeSpace(), w, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Points {
			if obj.value(p) < obj.value(res.Best) {
				t.Errorf("%v: best not minimal (%g < %g)", obj, obj.value(p), obj.value(res.Best))
			}
		}
		bests[obj] = res.Best
	}
	// The latency-optimal point cannot have lower latency than itself
	// but the energy winner should not beat it on latency.
	if bests[ObjectiveEnergy].LatencySec < bests[ObjectiveLatency].LatencySec {
		t.Error("energy-optimal point beats the latency-optimal point on latency")
	}
	if bests[ObjectiveLatency].EnergyMJ < bests[ObjectiveEnergy].EnergyMJ {
		t.Error("latency-optimal point beats the energy-optimal point on energy")
	}
}

func TestObjectiveString(t *testing.T) {
	if ObjectiveEDP.String() != "edp" || ObjectiveLatency.String() != "latency" || ObjectiveEnergy.String() != "energy" {
		t.Error("objective names")
	}
}
