package dse

import (
	"sync/atomic"
	"testing"

	"repro/internal/workload"
)

// TestSweeperReuse: repeated Sweep calls on one handle must return
// identical results (warm HDA/cost/bound memos must not change
// anything), including across different workloads.
func TestSweeperReuse(t *testing.T) {
	cache := testCache()
	opts := DefaultOptions()
	opts.Prune = true
	opts.BestOnly = true
	sw, err := NewSweeper(cache, edgeSpace(), opts)
	if err != nil {
		t.Fatal(err)
	}

	wA := smallWorkload()
	wB := workload.MustNew("shifted", []workload.Entry{
		{Model: "mobilenetv1", Batches: 1},
		{Model: "unet", Batches: 1},
	})

	coldA, err := sw.Sweep(wA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Sweep(wB); err != nil { // interleave another mix
		t.Fatal(err)
	}
	warmA, err := sw.Sweep(wA)
	if err != nil {
		t.Fatal(err)
	}
	samePoint(t, "cold-vs-warm", warmA.Best, coldA.Best)
	if warmA.Explored+warmA.Pruned != coldA.Explored+coldA.Pruned {
		t.Errorf("coverage changed across reuse: %d+%d vs %d+%d",
			warmA.Explored, warmA.Pruned, coldA.Explored, coldA.Pruned)
	}

	// The warm sweep must reuse cached HDAs: the same partition must
	// resolve to the same pointer within a worker.
	wk := sw.workers[0]
	part := []int{4, 4, 2, 2}
	h1, err := wk.hda(sw.sp, wk.partKey(part), part, 0)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := wk.hda(sw.sp, wk.partKey(part), part, 99)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("worker rebuilt a cached HDA")
	}
}

// TestSweeperBestOnlyKeepsSchedule: the retained Best point must carry
// its schedule even when the cloud is dropped (core.Design needs it).
func TestSweeperBestOnlyKeepsSchedule(t *testing.T) {
	opts := DefaultOptions()
	opts.BestOnly = true
	res, err := Search(testCache(), edgeSpace(), smallWorkload(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Schedule == nil {
		t.Fatal("BestOnly Best has no schedule")
	}
	if err := res.Best.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepRaceHammer exercises the memo/bound paths under maximum
// worker parallelism — the sweep-local tables are worker-private by
// construction and must stay that way (run under `make race`).
func TestSweepRaceHammer(t *testing.T) {
	cache := testCache()
	for _, bestOnly := range []bool{false, true} {
		opts := DefaultOptions()
		opts.Workers = 8
		opts.Prune = true
		opts.BestOnly = bestOnly
		sw, err := NewSweeper(cache, edgeSpace(), opts)
		if err != nil {
			t.Fatal(err)
		}
		var ref atomic.Pointer[Point]
		for round := 0; round < 3; round++ {
			res, err := sw.Sweep(smallWorkload())
			if err != nil {
				t.Fatal(err)
			}
			if prev := ref.Load(); prev != nil {
				samePoint(t, "race-hammer", res.Best, *prev)
			}
			best := res.Best
			ref.Store(&best)
		}
	}
}

// TestSearchWorkersClamped: more workers than partitions must not
// break anything (the pool idles, results unchanged).
func TestSearchWorkersClamped(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 64
	res, err := Search(testCache(), edgeSpace(), smallWorkload(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 21 || res.Explored != 21 {
		t.Errorf("explored %d points (cloud %d), want 21", res.Explored, len(res.Points))
	}
}
