package dse

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/accel"
	"repro/internal/dnn"
	"repro/internal/maestro"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Sweeper is a reusable handle over one (space, options) search
// configuration: per-worker schedulers with warm L0 cost tables, a
// partition→HDA cache (stable HDA pointers keep those tables hot
// across sweeps), and the bound memos behind Options.Prune. Build one
// with NewSweeper and call Sweep repeatedly — a serving fleet holds a
// Sweeper so re-running the partition search on an observed workload
// mix (fleet.Resweep) costs a warm sweep, not a cold one.
//
// A Sweeper is NOT safe for concurrent Sweep calls (each call uses the
// whole worker pool); serialize externally.
type Sweeper struct {
	cache *maestro.Cache
	sp    Space
	opts  Options

	workers []*sweepWorker
}

// sweepWorker is one worker's private state: a scheduler (with its own
// scratch and L0 tables) plus the sweep-local memo tables. Everything
// here is touched by exactly one goroutine per Sweep — the memo tables
// are worker-private rather than shared, which is what keeps the memo
// paths race-free under the chunked work distribution.
type sweepWorker struct {
	cache *maestro.Cache
	s     *sched.Scheduler

	// hdas caches built partitions by packed unit vector, so repeated
	// sweeps (and sibling evaluations) reuse HDA pointers — and with
	// them the scheduler's per-HDA cost tables.
	hdas map[string]*accel.HDA

	// cols caches per-(HDA, model) sub-accelerator cost columns for the
	// bound path (interned columns from the shared maestro cache).
	cols map[colsKey][][]*maestro.Cost

	// bounds memoizes the bound tiers' per-(substrate-set, model)
	// summaries (see bound.go).
	bounds map[boundKey]modelBound

	// keyBuf is the partition-key packing scratch.
	keyBuf []byte
}

type colsKey struct {
	h *accel.HDA
	m *dnn.Model
}

// NewSweeper validates the space and search options and builds the
// worker pool (opts.Workers, defaulting to GOMAXPROCS).
func NewSweeper(cache *maestro.Cache, sp Space, opts Options) (*Sweeper, error) {
	sp = sp.withDefaults()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Sched.Validate(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sw := &Sweeper{cache: cache, sp: sp, opts: opts}
	for i := 0; i < workers; i++ {
		sw.workers = append(sw.workers, &sweepWorker{
			cache:  cache,
			s:      sched.MustNew(cache, opts.Sched),
			hdas:   make(map[string]*accel.HDA),
			cols:   make(map[colsKey][][]*maestro.Cost),
			bounds: make(map[boundKey]modelBound),
		})
	}
	return sw, nil
}

// Space returns the sweeper's (defaulted) search space.
func (sw *Sweeper) Space() Space { return sw.sp }

// Options returns the sweeper's search options.
func (sw *Sweeper) Options() Options { return sw.opts }

// chunkSize is the number of partitions handed to a worker per channel
// receive: big enough to amortize channel traffic, small enough that
// the tail of the sweep still load-balances across the pool.
const chunkSize = 8

// chunk is one work unit: consecutive partitions starting at base.
type chunk struct {
	base  int
	parts [][]int
	buf   []int // backing storage for parts
}

// Sweep explores the space for workload w. Pruning (Options.Prune) is
// active only when Options.BestOnly is also set: a full design cloud /
// Pareto front needs every point evaluated, so cloud-producing sweeps
// silently fall back to exhaustive evaluation.
func (sw *Sweeper) Sweep(w *workload.Workload) (*Result, error) {
	if w == nil || len(w.Instances) == 0 {
		return nil, fmt.Errorf("dse: nil or empty workload")
	}
	total, err := spaceSize(sw.sp, sw.opts)
	if err != nil {
		return nil, err
	}
	if total == 0 {
		return nil, fmt.Errorf("dse: empty partition set for %s", sw.sp.Class.Name)
	}

	workers := len(sw.workers)
	if workers > total {
		workers = total
	}
	prune := sw.opts.Prune && sw.opts.BestOnly

	var points []Point
	if !sw.opts.BestOnly {
		points = make([]Point, total)
	}

	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		pruned   atomic.Int64
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		stop.Store(true)
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	best := newBestTracker()

	// bests[k] is worker k's streamed local best: the lowest objective
	// value with the earliest enumeration index, plus the retained
	// point (the design cloud may not exist in BestOnly mode).
	type localBest struct {
		idx   int
		point Point
	}
	bests := make([]localBest, workers)
	for k := range bests {
		bests[k].idx = -1
	}

	work := make(chan chunk, workers)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			wk := sw.workers[k]
			lb := &bests[k]
			for ch := range work {
				for ci, part := range ch.parts {
					if stop.Load() {
						break // drain remaining chunks without evaluating
					}
					idx := ch.base + ci
					key := wk.partKey(part)
					h, err := wk.hda(sw.sp, key, part, idx)
					if err != nil {
						fail(err)
						break
					}
					if prune {
						// The bound reads the same substrate columns the
						// evaluation below would, so a failed prune wastes
						// only the aggregation arithmetic.
						if b := wk.lowerBound(sw.opts.Objective, h, key, w); b > best.load() {
							pruned.Add(1)
							continue
						}
					}
					p, err := wk.evaluate(h, w)
					if err != nil {
						fail(err)
						break
					}
					if points != nil {
						points[idx] = p
					}
					v := sw.opts.Objective.value(p)
					if lb.idx < 0 || v < sw.opts.Objective.value(lb.point) ||
						(v == sw.opts.Objective.value(lb.point) && idx < lb.idx) {
						if points == nil && lb.idx >= 0 {
							// BestOnly: the dethroned point is dropped here
							// and nowhere else — recycle its storage.
							wk.s.Recycle(lb.point.Schedule)
						}
						lb.idx, lb.point = idx, p
					} else if points == nil {
						wk.s.Recycle(p.Schedule)
					}
					if prune {
						best.offer(v)
					}
				}
			}
		}(k)
	}

	// Producer: stream the enumeration into bounded chunks. Memory in
	// flight is O(workers × chunkSize), independent of the space.
	n := len(sw.sp.Styles)
	var cur chunk
	flush := func() bool {
		if len(cur.parts) == 0 {
			return true
		}
		if stop.Load() {
			return false
		}
		work <- cur
		cur = chunk{}
		return true
	}
	streamPartitions(sw.sp, sw.opts, func(idx int, part []int) bool {
		if cur.parts == nil {
			cur.base = idx
			cur.parts = make([][]int, 0, chunkSize)
			cur.buf = make([]int, 0, chunkSize*2*n)
		}
		cur.buf = append(cur.buf, part...)
		cur.parts = append(cur.parts, cur.buf[len(cur.buf)-2*n:])
		if len(cur.parts) == chunkSize {
			return flush()
		}
		return true
	})
	flush()
	close(work)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}

	// Merge the workers' streamed bests: lowest objective, earliest
	// enumeration index on ties (identical to a sequential scan).
	res := &Result{
		Space:  sw.sp,
		Points: points,
		Pruned: int(pruned.Load()),
	}
	res.Explored = total - res.Pruned
	mi := -1
	for k := range bests {
		if bests[k].idx < 0 {
			continue
		}
		if mi < 0 || betterPoint(sw.opts.Objective, bests[k].point, bests[k].idx, bests[mi].point, bests[mi].idx) {
			mi = k
		}
	}
	if mi < 0 {
		return nil, fmt.Errorf("dse: no design point evaluated for %s", sw.sp.Class.Name)
	}
	res.Best = bests[mi].point
	if points != nil {
		res.Pareto = ParetoFront(points)
	}
	if sw.opts.MaxSegments > 1 {
		// Segment-cut axis: a per-model post-pass on the winning HDA
		// over the already-interned cost columns (see
		// Options.MaxSegments). Running it after the merge keeps the
		// partition sweep bit-identical to a cut-free search.
		plans, err := planWorkload(sw.cache, res.Best.HDA, w, sw.opts.Objective, sw.opts.MaxSegments)
		if err != nil {
			return nil, err
		}
		res.SegmentPlans = plans
	}
	return res, nil
}

// partKey packs a unit-count vector into a map key (2 bytes per
// entry; granularities are far below 1<<16 units).
func (wk *sweepWorker) partKey(part []int) string {
	buf := wk.keyBuf[:0]
	for _, v := range part {
		buf = append(buf, byte(v>>8), byte(v))
	}
	wk.keyBuf = buf
	return string(buf)
}

// maxWorkerMemo caps each worker's partition-keyed memo tables (HDAs,
// bound summaries, column sets). They deliberately cache the swept
// space across sweeps — that is what makes a warm Resweep cheap — but
// a fleet-held Sweeper over a huge space must not grow without bound,
// so past the cap everything is dropped and rebuilt through the
// shared caches. Matches sched.maxTables so the scheduler's per-HDA
// tables are evicted on the same scale.
const maxWorkerMemo = 4096

// hda returns (building and caching if needed) the HDA of one
// partition. The name carries the partition's enumeration index from
// its first appearance, matching the eager enumeration's naming.
func (wk *sweepWorker) hda(sp Space, key string, part []int, idx int) (*accel.HDA, error) {
	if h, ok := wk.hdas[key]; ok {
		return h, nil
	}
	if len(wk.hdas) >= maxWorkerMemo {
		// The cols/bounds memos key off the cached HDA pointers and
		// partition keys; drop all three together.
		clear(wk.hdas)
		clear(wk.cols)
		clear(wk.bounds)
	}
	peUnit := sp.Class.PEs / sp.PEUnits
	bwUnit := sp.Class.BWGBps / float64(sp.BWUnits)
	n := len(sp.Styles)
	ps := make([]accel.Partition, n)
	for i := 0; i < n; i++ {
		ps[i] = accel.Partition{
			Style:  sp.Styles[i],
			PEs:    part[i] * peUnit,
			BWGBps: float64(part[n+i]) * bwUnit,
		}
	}
	h, err := accel.New(fmt.Sprintf("hda-%d", idx), sp.Class, ps)
	if err != nil {
		return nil, err
	}
	wk.hdas[key] = h
	return h, nil
}

// colsFor resolves (memoizing) the per-sub-accelerator cost columns of
// model m on HDA h for the bound path. The columns are the same
// interned maestro entries the scheduler's L0 tables hold.
func (wk *sweepWorker) colsFor(h *accel.HDA, m *dnn.Model) [][]*maestro.Cost {
	key := colsKey{h: h, m: m}
	if cols, ok := wk.cols[key]; ok {
		return cols
	}
	cols := make([][]*maestro.Cost, len(h.Subs))
	for a := range h.Subs {
		cols[a] = wk.cache.CostColumn(m, h.Subs[a].Style, h.Subs[a].HW)
	}
	wk.cols[key] = cols
	return cols
}

// evaluate schedules the workload on one cached HDA with the worker's
// scheduler.
func (wk *sweepWorker) evaluate(h *accel.HDA, w *workload.Workload) (Point, error) {
	schd, err := wk.s.Schedule(h, w)
	if err != nil {
		return Point{}, err
	}
	return Point{
		HDA:        h,
		Schedule:   schd,
		LatencySec: schd.LatencySeconds(1.0),
		EnergyMJ:   schd.EnergyMJ(),
		EDP:        schd.EDP(1.0),
	}, nil
}
