package dse

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/dnn"
	"repro/internal/maestro"
	"repro/internal/workload"
)

// Segment is one contiguous layer range of a model pinned to one
// sub-accelerator: layers [From, To) run on HDA.Subs[SubAcc]. Cycles
// and EnergyPJ are the pinned execution cost of the range (cost-model
// sums; queueing excluded).
type Segment struct {
	From   int   `json:"from"`
	To     int   `json:"to"`
	SubAcc int   `json:"sub_acc"`
	Cycles int64 `json:"cycles"`

	EnergyPJ float64 `json:"energy_pj"`
}

// SegmentPlan is one model's winning fusion cut on a concrete HDA: an
// ordered partition of the model's layers into contiguous segments,
// each pinned to the sub-accelerator whose dataflow prefers it. A
// serving engine admits a fused request as one instance per segment
// chained by precedence, so segment k+1 of one request overlaps
// segment k of the next (see internal/serve).
type SegmentPlan struct {
	Model    string    `json:"model"`
	Segments []Segment `json:"segments"`

	// ChainCycles is the pinned end-to-end latency lower bound: the sum
	// of all segment cycles (one request's segments run sequentially).
	ChainCycles int64 `json:"chain_cycles"`

	// PeriodCycles is the pipeline initiation interval lower bound: the
	// largest total pinned cycles any one sub-accelerator carries. A
	// saturated stream of fused requests completes one request per
	// period, so the plan search minimizes this.
	PeriodCycles int64 `json:"period_cycles"`
}

// NumSegments returns the number of segments in the plan.
func (p SegmentPlan) NumSegments() int { return len(p.Segments) }

// Slices resolves the plan's interned segment models of m (dnn.Slice
// per segment), validating that the segments tile m's layers exactly:
// the first starts at layer 0, each starts where its predecessor
// ended, and the last ends at the final layer. Serving admission uses
// this as the single validation point before decomposing a request.
func (p SegmentPlan) Slices(m *dnn.Model) ([]*dnn.Model, error) {
	if m == nil {
		return nil, fmt.Errorf("dse: plan slices of nil model")
	}
	next := 0
	out := make([]*dnn.Model, len(p.Segments))
	for i, sg := range p.Segments {
		if sg.From != next {
			return nil, fmt.Errorf("dse: plan for %s: segment %d starts at layer %d, want %d", m.Name, i, sg.From, next)
		}
		sm, err := dnn.Slice(m, sg.From, sg.To)
		if err != nil {
			return nil, fmt.Errorf("dse: plan for %s: %w", m.Name, err)
		}
		out[i] = sm
		next = sg.To
	}
	if next != m.NumLayers() {
		return nil, fmt.Errorf("dse: plan for %s covers %d of %d layers", m.Name, next, m.NumLayers())
	}
	return out, nil
}

// segMetric mirrors sched.Metric.value for the objective's per-layer
// ranking: the scalar a cut search minimizes when pinning a layer
// range, using the same arithmetic (and hence the same floats) as the
// scheduler's preference ranking.
func segMetric(o Objective, c *maestro.Cost) float64 {
	switch o {
	case ObjectiveLatency:
		return float64(c.Cycles)
	case ObjectiveEnergy:
		return c.Energy.Total()
	default:
		return c.Energy.Total() * 1e-12 * (float64(c.Cycles) / 1e9)
	}
}

// PlanSegments searches model m's fusion cuts on HDA h: it enumerates
// the contiguous-segment partitions reachable by greedily merging the
// model's dataflow-preference runs (every layer starts in the segment
// of the sub-accelerator whose per-layer objective metric is lowest),
// costs each (segment, sub-accelerator) pair through the interned cost
// columns, and returns the plan with at most maxSegments segments that
// minimizes the pipeline period (ties: fewer segments, then smaller
// chain latency). maxSegments <= 1, or a single-sub HDA, yields the
// unfused one-segment plan.
//
// The search is deterministic for a fixed (HDA, model, objective,
// maxSegments): merge ties break toward the earlier cut index.
func PlanSegments(cache *maestro.Cache, h *accel.HDA, m *dnn.Model, o Objective, maxSegments int) (SegmentPlan, error) {
	if h == nil || len(h.Subs) == 0 {
		return SegmentPlan{}, fmt.Errorf("dse: nil or empty HDA")
	}
	if m == nil || m.NumLayers() == 0 {
		return SegmentPlan{}, fmt.Errorf("dse: nil or empty model")
	}
	nAcc := len(h.Subs)
	L := m.NumLayers()
	cols := make([][]*maestro.Cost, nAcc)
	for a := 0; a < nAcc; a++ {
		cols[a] = cache.CostColumn(m, h.Subs[a].Style, h.Subs[a].HW)
	}

	// Prefix sums per sub-accelerator: pinning cost of any layer range
	// becomes two lookups, so the merge loop never re-walks layers.
	metricPre := make([][]float64, nAcc)
	cyclePre := make([][]int64, nAcc)
	energyPre := make([][]float64, nAcc)
	for a := 0; a < nAcc; a++ {
		mp := make([]float64, L+1)
		cp := make([]int64, L+1)
		ep := make([]float64, L+1)
		for li := 0; li < L; li++ {
			c := cols[a][li]
			mp[li+1] = mp[li] + segMetric(o, c)
			cp[li+1] = cp[li] + c.Cycles
			ep[li+1] = ep[li] + c.Energy.Total()
		}
		metricPre[a], cyclePre[a], energyPre[a] = mp, cp, ep
	}
	// pin returns the best sub-accelerator for [from, to) and its
	// summed metric (tie: lower index, the scheduler's convention).
	pin := func(from, to int) (int, float64) {
		bestA, bestV := 0, metricPre[0][to]-metricPre[0][from]
		for a := 1; a < nAcc; a++ {
			if v := metricPre[a][to] - metricPre[a][from]; v < bestV {
				bestA, bestV = a, v
			}
		}
		return bestA, bestV
	}

	// Seed segments from the dataflow-preference runs: maximal layer
	// runs whose preferred sub-accelerator is constant.
	type seg struct {
		from, to int
	}
	var segs []seg
	prev := -1
	for li := 0; li < L; li++ {
		a, _ := pin(li, li+1)
		if a != prev {
			segs = append(segs, seg{from: li, to: li + 1})
			prev = a
		} else {
			segs[len(segs)-1].to = li + 1
		}
	}

	if maxSegments < 1 {
		maxSegments = 1
	}
	if nAcc == 1 {
		maxSegments = 1
	}

	build := func(segs []seg) SegmentPlan {
		p := SegmentPlan{Model: m.Name}
		perSub := make([]int64, nAcc)
		for _, sg := range segs {
			a, _ := pin(sg.from, sg.to)
			cyc := cyclePre[a][sg.to] - cyclePre[a][sg.from]
			p.Segments = append(p.Segments, Segment{
				From: sg.from, To: sg.to, SubAcc: a,
				Cycles:   cyc,
				EnergyPJ: energyPre[a][sg.to] - energyPre[a][sg.from],
			})
			p.ChainCycles += cyc
			perSub[a] += cyc
		}
		for _, c := range perSub {
			if c > p.PeriodCycles {
				p.PeriodCycles = c
			}
		}
		return p
	}
	// coalesce folds adjacent segments that pin to the same
	// sub-accelerator — a cut between them buys no dataflow change.
	// It compacts in place (callers pass a private copy).
	coalesce := func(segs []seg) []seg {
		out := segs[:0]
		for _, sg := range segs {
			if len(out) > 0 {
				pa, _ := pin(out[len(out)-1].from, out[len(out)-1].to)
				if a, _ := pin(sg.from, sg.to); a == pa {
					out[len(out)-1].to = sg.to
					continue
				}
			}
			out = append(out, sg)
		}
		return out
	}

	// Merge the preference runs down one cut at a time (cheapest
	// objective increase first, earlier cut on ties), capturing every
	// candidate plan with at most maxSegments segments along the way —
	// including the fully-merged single-segment (unfused) plan.
	cur := append([]seg(nil), segs...)
	var best SegmentPlan
	have := false
	consider := func(segs []seg) {
		c := coalesce(append([]seg(nil), segs...))
		if len(c) > maxSegments {
			return
		}
		p := build(c)
		if !have ||
			p.PeriodCycles < best.PeriodCycles ||
			(p.PeriodCycles == best.PeriodCycles && len(p.Segments) < len(best.Segments)) ||
			(p.PeriodCycles == best.PeriodCycles && len(p.Segments) == len(best.Segments) && p.ChainCycles < best.ChainCycles) {
			best, have = p, true
		}
	}
	consider(cur)
	for len(cur) > 1 {
		bi, bd := -1, 0.0
		for i := 0; i+1 < len(cur); i++ {
			_, vi := pin(cur[i].from, cur[i].to)
			_, vj := pin(cur[i+1].from, cur[i+1].to)
			_, vm := pin(cur[i].from, cur[i+1].to)
			if d := vm - vi - vj; bi < 0 || d < bd {
				bi, bd = i, d
			}
		}
		cur[bi].to = cur[bi+1].to
		cur = append(cur[:bi+1], cur[bi+2:]...)
		consider(cur)
	}
	return best, nil
}

// planWorkload computes the winning segment plan of every distinct
// model in w on HDA h (the per-model post-pass of a fused sweep).
func planWorkload(cache *maestro.Cache, h *accel.HDA, w *workload.Workload, o Objective, maxSegments int) (map[string]SegmentPlan, error) {
	plans := make(map[string]SegmentPlan)
	for i := range w.Instances {
		m := w.Instances[i].Model
		if _, ok := plans[m.Name]; ok {
			continue
		}
		p, err := PlanSegments(cache, h, m, o, maxSegments)
		if err != nil {
			return nil, err
		}
		plans[m.Name] = p
	}
	return plans, nil
}
